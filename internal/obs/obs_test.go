package obs

import (
	"strings"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	for k := Kind(0); k < numKinds; k++ {
		if tr.Enabled(k) {
			t.Fatalf("nil tracer Enabled(%v) = true", k)
		}
	}
	// None of these may panic.
	tr.Emit(Ev(KindHit, 0))
	tr.Reset()
	if tr.Len() != 0 {
		t.Errorf("nil tracer Len() = %d", tr.Len())
	}
	if tr.Events() != nil {
		t.Errorf("nil tracer Events() = %v", tr.Events())
	}
}

func TestTracerKindMask(t *testing.T) {
	tr := New(KindHit, KindBackward)
	for k := Kind(0); k < numKinds; k++ {
		want := k == KindHit || k == KindBackward
		if tr.Enabled(k) != want {
			t.Errorf("Enabled(%v) = %v, want %v", k, tr.Enabled(k), want)
		}
	}
	tr.Emit(Ev(KindHit, 0))
	tr.Emit(Ev(KindForward, 0)) // masked out
	tr.Emit(Ev(KindBackward, 1))
	ev := tr.Events()
	if len(ev) != 2 || ev[0].Kind != KindHit || ev[1].Kind != KindBackward {
		t.Fatalf("masked tracer recorded %v", ev)
	}

	all := New()
	for k := Kind(0); k < numKinds; k++ {
		if !all.Enabled(k) {
			t.Errorf("default tracer Enabled(%v) = false", k)
		}
	}
}

func TestTracerSeqAcrossReset(t *testing.T) {
	tr := New()
	tr.Emit(Ev(KindInject, ids.Client(0)))
	tr.Emit(Ev(KindDeliver, ids.Client(0)))
	ev := tr.Events()
	if ev[0].Seq != 1 || ev[1].Seq != 2 {
		t.Fatalf("seq = %d,%d, want 1,2", ev[0].Seq, ev[1].Seq)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tr.Len())
	}
	tr.Emit(Ev(KindInject, ids.Client(0)))
	if got := tr.Events()[0].Seq; got != 3 {
		t.Errorf("seq after reset = %d, want 3 (counter keeps running)", got)
	}
}

func TestEvClearsNodeReferences(t *testing.T) {
	e := Ev(KindForward, 2)
	if e.To != ids.None || e.Loc != ids.None {
		t.Errorf("Ev left To=%v Loc=%v, want None (NodeID zero value is Proxy[0])", e.To, e.Loc)
	}
}

func TestEventTime(t *testing.T) {
	if got := (Event{Seq: 7}).Time(); got != 7 {
		t.Errorf("clockless Time() = %d, want Seq 7", got)
	}
	if got := (Event{Seq: 7, At: 1234}).Time(); got != 1234 {
		t.Errorf("clocked Time() = %d, want At 1234", got)
	}
}

func TestUseWallClockStampsAt(t *testing.T) {
	tr := New()
	tr.UseWallClock()
	tr.Emit(Ev(KindInject, ids.Client(0)))
	tr.Emit(Event{Kind: KindDeliver, Node: ids.Client(0), At: 99, To: ids.None, Loc: ids.None})
	ev := tr.Events()
	if ev[0].At < 0 {
		t.Errorf("wall-clocked At = %d, want >= 0", ev[0].At)
	}
	if ev[1].At != 99 {
		t.Errorf("explicit At overwritten: got %d, want 99", ev[1].At)
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if strings.HasPrefix(s, "Kind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
		got, ok := ParseKind(s)
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v,%v, want %v,true", s, got, ok, k)
		}
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Error("ParseKind accepted an unknown name")
	}
	if s := Kind(200).String(); s != "Kind(200)" {
		t.Errorf("out-of-range kind String = %q", s)
	}
}

func TestOutcomeRoundTrip(t *testing.T) {
	cases := []struct {
		from, to     int
		ce, me, drop bool
	}{
		{0, 1, false, false, false},
		{3, 1, true, false, false},
		{2, 2, false, true, false},
		{1, 0, false, false, true},
		{3, 3, true, true, true},
	}
	for _, c := range cases {
		arg := EncodeOutcome(c.from, c.to, c.ce, c.me, c.drop)
		from, to, ce, me, drop := DecodeOutcome(arg)
		if from != c.from || to != c.to || ce != c.ce || me != c.me || drop != c.drop {
			t.Errorf("round trip %+v → arg %#x → (%d,%d,%v,%v,%v)", c, arg, from, to, ce, me, drop)
		}
	}
	if s := OutcomeString(EncodeOutcome(3, 1, true, false, false)); s != "single→caching (cache-evict)" {
		t.Errorf("OutcomeString = %q", s)
	}
	if s := OutcomeString(EncodeOutcome(0, 2, false, false, false)); s != "none→multiple" {
		t.Errorf("OutcomeString = %q", s)
	}
}

func TestArgStrings(t *testing.T) {
	if got := ForwardReasonString(ReasonSelfOrigin); got != "self-origin" {
		t.Errorf("ForwardReasonString = %q", got)
	}
	if got := ForwardReasonString(99); got != "reason(99)" {
		t.Errorf("ForwardReasonString fallback = %q", got)
	}
	if got := DropCauseString(DropLoss); got != "loss" {
		t.Errorf("DropCauseString = %q", got)
	}
	if got := DropCauseString(99); got != "cause(99)" {
		t.Errorf("DropCauseString fallback = %q", got)
	}
}
