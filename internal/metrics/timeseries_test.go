package metrics

import "testing"

func TestTimeSeriesNilReceiver(t *testing.T) {
	var ts *TimeSeries
	// Every feed method must be a no-op on a nil recorder.
	ts.Inject(1)
	ts.Complete(1, true, 2)
	ts.Timeout(1)
	ts.Retry(1)
	ts.Abandon(1)
	ts.Drop(1)
	ts.Finish(1)
	ts.SetOnRoll(func(*Bucket) {})
	if ts.Buckets() != nil {
		t.Errorf("nil recorder Buckets() = %v", ts.Buckets())
	}
}

func TestTimeSeriesBucketRolling(t *testing.T) {
	ts := NewTimeSeries(100)
	ts.Inject(10)
	ts.Complete(50, true, 2)
	ts.Inject(150) // rolls into [100,200)
	ts.Complete(160, false, 4)
	ts.Inject(170)
	ts.Finish(200)

	b := ts.Buckets()
	if len(b) != 2 {
		t.Fatalf("%d buckets, want 2", len(b))
	}
	b0, b1 := b[0], b[1]
	if b0.Start != 0 || b0.End != 100 || b1.Start != 100 || b1.End != 200 {
		t.Fatalf("bucket bounds [%d,%d) [%d,%d)", b0.Start, b0.End, b1.Start, b1.End)
	}
	if b0.Injected != 1 || b0.Completed != 1 || b0.Hits != 1 || b0.HopsSum != 2 {
		t.Errorf("bucket 0 = %+v", b0)
	}
	if b1.Injected != 2 || b1.Completed != 1 || b1.Hits != 0 || b1.HopsSum != 4 {
		t.Errorf("bucket 1 = %+v", b1)
	}
	if b0.HitRate() != 1 || b1.HitRate() != 0 {
		t.Errorf("hit rates %v,%v, want 1,0", b0.HitRate(), b1.HitRate())
	}
	if b1.MeanHops() != 4 {
		t.Errorf("bucket 1 MeanHops = %v, want 4", b1.MeanHops())
	}
}

func TestTimeSeriesGapTracking(t *testing.T) {
	ts := NewTimeSeries(1000)
	// Gaps between consecutive injections: 30, 10, 60.
	for _, at := range []int64{100, 130, 140, 200} {
		ts.Inject(at)
	}
	ts.Finish(1000)
	b := ts.Buckets()
	if len(b) != 1 {
		t.Fatalf("%d buckets, want 1", len(b))
	}
	g := b[0]
	if g.Gaps != 3 || g.GapSum != 100 || g.GapMin != 10 || g.GapMax != 60 {
		t.Errorf("gaps = count %d sum %d min %d max %d, want 3/100/10/60", g.Gaps, g.GapSum, g.GapMin, g.GapMax)
	}
	if g.MeanGap() != 100.0/3 {
		t.Errorf("MeanGap = %v", g.MeanGap())
	}
	// Gap tracking spans bucket boundaries: the first injection of a new
	// bucket still measures its distance to the previous one.
	ts2 := NewTimeSeries(100)
	ts2.Inject(90)
	ts2.Inject(110)
	ts2.Finish(200)
	bs := ts2.Buckets()
	if len(bs) != 2 || bs[1].Gaps != 1 || bs[1].GapSum != 20 {
		t.Errorf("cross-bucket gap: %+v", bs)
	}
}

func TestTimeSeriesSkipsEmptyWindows(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.Inject(5)
	ts.Inject(95) // seals eight empty windows in between
	ts.Finish(100)
	b := ts.Buckets()
	if len(b) != 10 {
		t.Fatalf("%d buckets, want 10 (empty windows are still sealed in order)", len(b))
	}
	var active int
	for _, x := range b {
		if x.Injected > 0 {
			active++
		}
	}
	if active != 2 {
		t.Errorf("%d active buckets, want 2", active)
	}
}

func TestTimeSeriesFinish(t *testing.T) {
	// Finish seals a non-empty partial window…
	ts := NewTimeSeries(100)
	ts.Inject(10)
	ts.Finish(50)
	if n := len(ts.Buckets()); n != 1 {
		t.Errorf("partial window: %d buckets, want 1", n)
	}
	// …but an untouched recorder stays empty.
	idle := NewTimeSeries(100)
	idle.Finish(500)
	if n := len(idle.Buckets()); n != 0 {
		t.Errorf("idle recorder: %d buckets, want 0", n)
	}
	// Double Finish does not duplicate the tail bucket.
	ts.Finish(50)
	if n := len(ts.Buckets()); n != 1 {
		t.Errorf("double Finish: %d buckets, want 1", n)
	}
}

func TestTimeSeriesOnRollSnapshots(t *testing.T) {
	ts := NewTimeSeries(100)
	ts.SetOnRoll(func(b *Bucket) {
		b.Occupancy = append(b.Occupancy, 7, 8)
		b.Cached = append(b.Cached, 3, 4)
	})
	ts.Inject(10)
	ts.Inject(110)
	ts.Finish(200)
	b := ts.Buckets()
	if len(b) != 2 {
		t.Fatalf("%d buckets, want 2", len(b))
	}
	for i, x := range b {
		if len(x.Occupancy) != 2 || x.Occupancy[0] != 7 || len(x.Cached) != 2 || x.Cached[1] != 4 {
			t.Errorf("bucket %d snapshot: occupancy %v cached %v", i, x.Occupancy, x.Cached)
		}
	}
}

func TestTimeSeriesFaultCounters(t *testing.T) {
	ts := NewTimeSeries(1000)
	ts.Drop(10)
	ts.Timeout(20)
	ts.Retry(30)
	ts.Abandon(40)
	ts.Finish(100)
	b := ts.Buckets()
	if len(b) != 1 {
		t.Fatalf("%d buckets, want 1", len(b))
	}
	if b[0].Drops != 1 || b[0].Timeouts != 1 || b[0].Retries != 1 || b[0].Abandoned != 1 {
		t.Errorf("fault counters = %+v", b[0])
	}
}
