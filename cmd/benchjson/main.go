// Command benchjson converts `go test -bench` output on stdin into a JSON
// record suitable for tracking benchmark results in the repository
// (BENCH_engine.json). Each benchmark line becomes one entry with its
// ns/op and allocs/op plus the git commit the numbers were measured at.
//
// Usage:
//
//	go test -bench 'BenchmarkVEngine|BenchmarkEngineADC' -run '^$' ./internal/sim/ | benchjson > BENCH_engine.json
//
// Lines that are not benchmark results (the goos/pkg header, PASS/ok
// trailers) pass through unparsed; anything that parses is recorded.
//
// The compare subcommand diffs two recorded files benchmark by benchmark:
//
//	benchjson compare old.json new.json            # old vs new
//	benchjson compare BENCH_tables.json            # embedded baseline vs file
//	benchjson compare -threshold 15 old.json new.json
//
// It prints per-benchmark ns/op and allocs/op deltas and exits non-zero
// when any shared benchmark slowed down by more than -threshold percent —
// the regression gate used by `make bench-compare` and the bench-smoke CI
// job.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iterations"`
	NsPerOp  float64 `json:"ns_per_op"`
	BytesOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric values (e.g. events/s, ns/event).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// File is the BENCH_engine.json schema.
type File struct {
	GitSHA    string `json:"git_sha"`
	Date      string `json:"date"`
	GoVersion string `json:"go_version,omitempty"`
	// NumCPU/GoMaxProcs describe the recording machine — without them a
	// parallel-scaling result (events/s at shards=4 on a single core) is
	// trivially misread. CPU is the model line `go test -bench` prints.
	NumCPU     int     `json:"num_cpu,omitempty"`
	GoMaxProcs int     `json:"gomaxprocs,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
	// Baseline embeds the pre-optimization numbers the current ones are
	// compared against (-baseline flag).
	Baseline *File `json:"baseline,omitempty"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		code, err := runCompare(os.Args[2:], os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		os.Exit(code)
	}
	sha := flag.String("sha", "", "record this commit instead of git rev-parse HEAD")
	baseline := flag.String("baseline", "", "embed this prior BENCH_engine.json as the baseline")
	flag.Parse()
	if err := run(*sha, *baseline); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runCompare implements the compare subcommand. Returns the process exit
// code: 0 when no benchmark regressed beyond the threshold, 1 otherwise.
func runCompare(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchjson compare", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 10,
		"fail (exit 1) when any benchmark's ns/op grows by more than this percentage")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	var old, cur *File
	switch fs.NArg() {
	case 1:
		// One file: compare its embedded baseline against its numbers.
		f, err := loadBenchFile(fs.Arg(0))
		if err != nil {
			return 2, err
		}
		if f.Baseline == nil {
			return 2, fmt.Errorf("%s has no embedded baseline; pass two files", fs.Arg(0))
		}
		old, cur = f.Baseline, f
	case 2:
		var err error
		if old, err = loadBenchFile(fs.Arg(0)); err != nil {
			return 2, err
		}
		if cur, err = loadBenchFile(fs.Arg(1)); err != nil {
			return 2, err
		}
	default:
		return 2, fmt.Errorf("usage: benchjson compare [-threshold pct] old.json [new.json]")
	}

	oldByName := make(map[string]Entry, len(old.Benchmarks))
	for _, e := range old.Benchmarks {
		oldByName[e.Name] = e
	}
	var names []string
	curByName := make(map[string]Entry, len(cur.Benchmarks))
	for _, e := range cur.Benchmarks {
		curByName[e.Name] = e
		if _, shared := oldByName[e.Name]; shared {
			names = append(names, e.Name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return 2, fmt.Errorf("no shared benchmarks between %s and %s", old.GitSHA, cur.GitSHA)
	}

	fmt.Fprintf(w, "old %s  new %s  (threshold %+.0f%% ns/op)\n", old.GitSHA, cur.GitSHA, *threshold)
	warnMachineMismatch(w, old, cur)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs\tnew allocs\tdelta\t")
	regressed := 0
	for _, name := range names {
		o, n := oldByName[name], curByName[name]
		nsDelta := pctDelta(o.NsPerOp, n.NsPerOp)
		mark := ""
		if nsDelta > *threshold {
			mark = "  REGRESSION"
			regressed++
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%s\t%.0f\t%.0f\t%s\t%s\n",
			name, o.NsPerOp, n.NsPerOp, fmtDelta(nsDelta),
			o.AllocsOp, n.AllocsOp, fmtDelta(pctDelta(o.AllocsOp, n.AllocsOp)), mark)
	}
	if err := tw.Flush(); err != nil {
		return 2, err
	}
	for _, e := range cur.Benchmarks {
		if _, shared := oldByName[e.Name]; !shared {
			fmt.Fprintf(w, "new only: %s  %.1f ns/op\n", e.Name, e.NsPerOp)
		}
	}
	for _, e := range old.Benchmarks {
		if _, shared := curByName[e.Name]; !shared {
			fmt.Fprintf(w, "old only: %s\n", e.Name)
		}
	}
	if regressed > 0 {
		fmt.Fprintf(w, "%d benchmark(s) regressed beyond %+.0f%%\n", regressed, *threshold)
		return 1, nil
	}
	return 0, nil
}

// warnMachineMismatch flags comparisons whose two sides were recorded on
// different machine shapes. A core-count or GOMAXPROCS change invalidates
// parallel-scaling deltas without making either file wrong, so this warns
// rather than fails; files recorded before the fields existed (zero values)
// are skipped.
func warnMachineMismatch(w io.Writer, old, cur *File) {
	if old.NumCPU != 0 && cur.NumCPU != 0 && old.NumCPU != cur.NumCPU {
		fmt.Fprintf(w, "warning: NumCPU differs (old %d, new %d) — deltas may reflect the machine, not the code\n",
			old.NumCPU, cur.NumCPU)
	}
	if old.GoMaxProcs != 0 && cur.GoMaxProcs != 0 && old.GoMaxProcs != cur.GoMaxProcs {
		fmt.Fprintf(w, "warning: GOMAXPROCS differs (old %d, new %d) — deltas may reflect the machine, not the code\n",
			old.GoMaxProcs, cur.GoMaxProcs)
	}
}

// pctDelta returns the percentage change from old to new; 0 when old is 0
// (nothing meaningful to report against a zero base).
func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func fmtDelta(pct float64) string {
	return fmt.Sprintf("%+.1f%%", pct)
}

func loadBenchFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &f, nil
}

func run(sha, baselinePath string) error {
	if sha == "" {
		sha = gitSHA()
	}
	out := File{
		GitSHA:     sha,
		Date:       time.Now().UTC().Format(time.RFC3339),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return err
		}
		var base File
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
		}
		base.Baseline = nil // one level of history only
		out.Baseline = &base
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "go: ") || strings.HasPrefix(line, "goos:") {
			continue
		}
		if v, ok := strings.CutPrefix(line, "go version "); ok {
			out.GoVersion = strings.Fields(v)[0]
			continue
		}
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			out.CPU = strings.TrimSpace(v)
			continue
		}
		if e, ok := parseBenchLine(line); ok {
			out.Benchmarks = append(out.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(out.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkVEngineADC-8  16  70250639 ns/op  4341913 events/s  22666666 B/op  197591 allocs/op
func parseBenchLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{
		Name:  trimProcsSuffix(fields[0]),
		Iters: iters,
	}
	// Results come as (value, unit) pairs after the iteration count.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesOp = v
		case "allocs/op":
			e.AllocsOp = v
		default:
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			e.Extra[unit] = v
		}
	}
	if e.NsPerOp == 0 {
		return Entry{}, false
	}
	return e, true
}

// trimProcsSuffix strips the numeric -N GOMAXPROCS suffix go test appends
// to benchmark names, so entries compare across machines.
func trimProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// gitSHA returns the current commit, or "unknown" outside a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
