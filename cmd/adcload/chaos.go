// Chaos-mode support for adcload: windowed availability accounting while a
// fault schedule (-chaos) kills, restarts and partitions farm proxies
// mid-run, and the derived report — availability per window, time-to-detect
// and time-to-recover per killed proxy. The schedule itself is parsed and
// played by internal/httpproxy (chaos.go there); this file is the client
// side of the experiment.
package main

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/adc-sim/adc/internal/httpproxy"
	"github.com/adc-sim/adc/internal/ids"
)

// availCell is one availability window's counters, updated lock-free by
// every worker.
type availCell struct {
	attempts atomic.Uint64
	failures atomic.Uint64
}

// availCounters buckets request outcomes into fixed wall-clock windows
// from run start. A shed (429) counts as success — the server answered;
// only transport errors and 5xx count against availability.
type availCounters struct {
	window time.Duration
	cells  []availCell
}

// newAvail sizes the window array for a run of the given duration; late
// stragglers land in the final cell.
func newAvail(window, duration time.Duration) *availCounters {
	n := int(duration/window) + 2
	return &availCounters{window: window, cells: make([]availCell, n)}
}

// record files one outcome at the given offset from run start.
func (a *availCounters) record(elapsed time.Duration, ok bool) {
	if a == nil {
		return
	}
	i := int(elapsed / a.window)
	if i < 0 {
		i = 0
	}
	if i >= len(a.cells) {
		i = len(a.cells) - 1
	}
	a.cells[i].attempts.Add(1)
	if !ok {
		a.cells[i].failures.Add(1)
	}
}

// availWindow is one availability sample of the report.
type availWindow struct {
	StartSec     float64 `json:"start_sec"`
	Attempts     uint64  `json:"attempts"`
	Failures     uint64  `json:"failures"`
	Availability float64 `json:"availability"`
}

// windows renders the non-empty cells.
func (a *availCounters) windows() []availWindow {
	var out []availWindow
	for i := range a.cells {
		att := a.cells[i].attempts.Load()
		if att == 0 {
			continue
		}
		fail := a.cells[i].failures.Load()
		out = append(out, availWindow{
			StartSec:     (time.Duration(i) * a.window).Seconds(),
			Attempts:     att,
			Failures:     fail,
			Availability: 1 - float64(fail)/float64(att),
		})
	}
	return out
}

// chaosEventReport is one applied schedule event.
type chaosEventReport struct {
	Action string  `json:"action"`
	Proxy  int     `json:"proxy,omitempty"`
	A      int     `json:"a,omitempty"`
	B      int     `json:"b,omitempty"`
	AtSec  float64 `json:"at_sec"`
	Err    string  `json:"error,omitempty"`
}

// chaosKillReport is the detection/recovery accounting for one killed
// proxy, derived from the farm's health-transition logs.
type chaosKillReport struct {
	Proxy        int     `json:"proxy"`
	KilledAtSec  float64 `json:"killed_at_sec"`
	RestartAtSec float64 `json:"restarted_at_sec,omitempty"`
	// TimeToDetectSec is kill → first peer marking the proxy down
	// (negative = never detected within the run).
	TimeToDetectSec float64 `json:"time_to_detect_sec"`
	// TimeToRecoverSec is restart → last peer marking the proxy up again
	// (negative = never fully recovered within the run).
	TimeToRecoverSec float64 `json:"time_to_recover_sec"`
	// Detections/Recoveries count peers that observed the transition.
	Detections int `json:"detections"`
	Recoveries int `json:"recoveries"`
}

// chaosReport is the chaos section of the run report.
type chaosReport struct {
	Spec    string             `json:"spec"`
	Events  []chaosEventReport `json:"events"`
	Kills   []chaosKillReport  `json:"kills,omitempty"`
	Windows []availWindow      `json:"windows"`
	// MinAvailability is the worst window; FinalAvailability covers the
	// last two windows — the "did it recover" number.
	MinAvailability   float64 `json:"min_availability"`
	FinalAvailability float64 `json:"final_availability"`
}

// buildChaosReport assembles the chaos section after the load has drained:
// the applied events, per-kill detect/recover times from the merged
// health-transition log, and the availability series.
func buildChaosReport(spec string, f *httpproxy.Farm, applied []httpproxy.AppliedChaos, start time.Time, avail *availCounters) *chaosReport {
	cr := &chaosReport{Spec: spec, Windows: avail.windows()}

	cr.MinAvailability = 1
	for _, w := range cr.Windows {
		if w.Availability < cr.MinAvailability {
			cr.MinAvailability = w.Availability
		}
	}
	if n := len(cr.Windows); n > 0 {
		last := cr.Windows[max(0, n-2):]
		var att, fail uint64
		for _, w := range last {
			att += w.Attempts
			fail += w.Failures
		}
		cr.FinalAvailability = 1 - float64(fail)/float64(att)
	}

	transitions := f.HealthTransitions()
	for _, ap := range applied {
		ev := chaosEventReport{Action: ap.Event.Action.String(), AtSec: ap.At.Seconds()}
		switch ap.Event.Action {
		case httpproxy.ChaosKill, httpproxy.ChaosRestart:
			ev.Proxy = ap.Event.Proxy
		default:
			ev.A, ev.B = ap.Event.A, ap.Event.B
		}
		if ap.Err != nil {
			ev.Err = ap.Err.Error()
		}
		cr.Events = append(cr.Events, ev)

		if ap.Event.Action != httpproxy.ChaosKill {
			continue
		}
		kr := chaosKillReport{
			Proxy:            ap.Event.Proxy,
			KilledAtSec:      ap.At.Seconds(),
			TimeToDetectSec:  -1,
			TimeToRecoverSec: -1,
		}
		killWall := start.Add(ap.At)
		var restartWall time.Time
		for _, other := range applied {
			if other.Event.Action == httpproxy.ChaosRestart && other.Event.Proxy == ap.Event.Proxy && other.At > ap.At {
				restartWall = start.Add(other.At)
				kr.RestartAtSec = other.At.Seconds()
				break
			}
		}
		peer := ids.NodeID(ap.Event.Proxy)
		for _, tr := range transitions {
			if tr.Peer != peer {
				continue
			}
			switch tr.To {
			case httpproxy.PeerDown:
				if !tr.At.Before(killWall) && (restartWall.IsZero() || tr.At.Before(restartWall)) {
					kr.Detections++
					if d := tr.At.Sub(killWall).Seconds(); kr.TimeToDetectSec < 0 || d < kr.TimeToDetectSec {
						kr.TimeToDetectSec = d
					}
				}
			case httpproxy.PeerUp:
				if !restartWall.IsZero() && !tr.At.Before(restartWall) {
					kr.Recoveries++
					// Recovery is complete when the LAST peer readmits
					// the proxy, so keep the max.
					if d := tr.At.Sub(restartWall).Seconds(); d > kr.TimeToRecoverSec {
						kr.TimeToRecoverSec = d
					}
				}
			}
		}
		cr.Kills = append(cr.Kills, kr)
	}
	return cr
}

// printChaos renders the chaos section of the text report.
func printChaos(w io.Writer, cr *chaosReport) {
	fmt.Fprintf(w, "\nchaos     %s\n", cr.Spec)
	for _, ev := range cr.Events {
		switch ev.Action {
		case "kill", "restart":
			fmt.Fprintf(w, "  %-9s p%d @ %.2fs", ev.Action, ev.Proxy, ev.AtSec)
		default:
			fmt.Fprintf(w, "  %-9s p%d:p%d @ %.2fs", ev.Action, ev.A, ev.B, ev.AtSec)
		}
		if ev.Err != "" {
			fmt.Fprintf(w, "  ERROR: %s", ev.Err)
		}
		fmt.Fprintln(w)
	}
	for _, k := range cr.Kills {
		fmt.Fprintf(w, "  proxy %d: detect %s (%d peers), recover %s (%d peers)\n",
			k.Proxy, secOrNever(k.TimeToDetectSec), k.Detections,
			secOrNever(k.TimeToRecoverSec), k.Recoveries)
	}
	fmt.Fprintf(w, "availability  min %.4f  final %.4f  (%d windows)\n",
		cr.MinAvailability, cr.FinalAvailability, len(cr.Windows))
}

func secOrNever(s float64) string {
	if s < 0 {
		return "never"
	}
	return fmt.Sprintf("%.0fms", s*1000)
}
