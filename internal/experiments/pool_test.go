package experiments

import (
	"context"
	"errors"
	"testing"
)

// stripElapsed zeroes the wall-clock field, the only one concurrent
// execution is allowed to perturb.
func stripElapsed(pts []SweepPoint) []SweepPoint {
	out := make([]SweepPoint, len(pts))
	copy(out, pts)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

func TestSweepParallelMatchesSequential(t *testing.T) {
	p := tinyProfile()
	p.Parallelism = 1
	want, err := Sweep(p, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seq := stripElapsed(want)
	for _, workers := range []int{2, 4} {
		p.Parallelism = workers
		got, err := Sweep(p, SweepOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		par := stripElapsed(got)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Errorf("workers=%d point %d: got %+v, want %+v", workers, i, par[i], seq[i])
			}
		}
	}
}

func TestBaselinesParallelMatchesSequential(t *testing.T) {
	p := tinyProfile()
	p.Parallelism = 1
	want, err := Baselines(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		p.Parallelism = workers
		got, err := Baselines(p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d point %d: got %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunPoolFirstErrorSkipsRemaining(t *testing.T) {
	boom := errors.New("boom")
	executed := 0
	// One worker makes execution strictly sequential: job 0 fails,
	// cancelling the pool before any later index can run.
	err := runPool(context.Background(), "test", 1, 8, nil, func(ctx context.Context, i int) (uint64, error) {
		executed++
		if i == 0 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if executed != 1 {
		t.Errorf("executed %d jobs after first error, want 1", executed)
	}
}

func TestRunPoolPropagatesErrorAcrossWorkers(t *testing.T) {
	boom := errors.New("boom")
	err := runPool(context.Background(), "test", 4, 16, nil, func(ctx context.Context, i int) (uint64, error) {
		if i == 3 {
			return 0, boom
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestRunPoolCancelledParent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	executed := 0
	err := runPool(ctx, "test", 2, 4, nil, func(ctx context.Context, i int) (uint64, error) {
		executed++
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if executed != 0 {
		t.Errorf("executed %d jobs under a cancelled parent, want 0", executed)
	}
}

func TestRunPoolProgressMonotonic(t *testing.T) {
	const n = 10
	var infos []ProgressInfo
	// Progress calls are serialized under the pool's mutex, so the
	// slice append needs no extra locking.
	err := runPool(context.Background(), "test", 4, n, func(info ProgressInfo) {
		if info.Total != n {
			t.Errorf("total = %d, want %d", info.Total, n)
		}
		if info.Workers != 4 {
			t.Errorf("workers = %d, want 4", info.Workers)
		}
		infos = append(infos, info)
	}, func(ctx context.Context, i int) (uint64, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != n {
		t.Fatalf("progress called %d times, want %d", len(infos), n)
	}
	for i, info := range infos {
		if info.Done != i+1 {
			t.Fatalf("progress sequence %v not monotonic", infos)
		}
		if info.Events != uint64(7*(i+1)) {
			t.Errorf("call %d: events = %d, want %d (cumulative)", i, info.Events, 7*(i+1))
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	p := Profile{Parallelism: 8}
	if got := p.workers(3); got != 3 {
		t.Errorf("workers clamp to job count: got %d, want 3", got)
	}
	p.Parallelism = 1
	if got := p.workers(5); got != 1 {
		t.Errorf("sequential profile: got %d workers, want 1", got)
	}
	p.Parallelism = 0
	if got := p.workers(5); got < 1 || got > 5 {
		t.Errorf("default width %d outside [1,5]", got)
	}
}
