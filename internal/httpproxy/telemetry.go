package httpproxy

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/promtext"
)

// Telemetry endpoints, registered on every proxy's mux alongside the
// /debug/* surface:
//
//	/metrics       Prometheus text exposition (internal/promtext)
//	/debug/trace   this proxy's span ring as an obs.SpanDump JSON document
//	/healthz       liveness probe, JSON with identity and build info
//
// /metrics snapshots the same counters as /debug/vars plus the per-stage
// latency histograms; cmd/adctop renders it live, the telemetry-smoke CI
// job lints it on every proxy.

const (
	metricsPath = "/metrics"
	tracePath   = "/debug/trace"
)

// stageBoundsUs are the finite bucket upper bounds (microseconds) /metrics
// exposes for the stage latency histograms. All are multiples of the
// underlying 50 µs bucket width, so stats.Histogram.CountBelow is exact at
// every bound; observations past 200 ms land only in +Inf.
var stageBoundsUs = []int{100, 250, 500, 1000, 2500, 5000, 10_000, 25_000, 50_000, 100_000, 200_000}

// peerStateGauge maps PeerState to the adc_peer_state gauge encoding.
func peerStateGauge(s PeerState) float64 { return float64(s) }

func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	stats := p.Stats()
	p.mu.Lock()
	localTime := p.localTime
	storeLen := len(p.store)
	peers := make([]ids.NodeID, len(p.peers))
	copy(peers, p.peers)
	replicated := p.replica != nil
	p.mu.Unlock()

	pw := promtext.NewWriter(w)
	counter := func(name, help string, v uint64) {
		pw.Counter(name, help)
		pw.Sample(float64(v))
	}
	gauge := func(name, help string, v float64) {
		pw.Gauge(name, help)
		pw.Sample(v)
	}

	pw.Gauge("adc_proxy_info", "Proxy identity and build info; value is always 1.")
	pw.Sample(1,
		promtext.L("proxy", p.id.String()),
		promtext.L("go", runtime.Version()),
		promtext.L("revision", buildRevision()),
	)
	gauge("adc_uptime_seconds", "Seconds since this proxy started.", time.Since(p.started).Seconds())

	counter("adc_requests_total", "Requests received (entry and forwarded hops).", stats.Requests)
	counter("adc_local_hits_total", "Requests answered from the local cache.", stats.LocalHits)
	counter("adc_replies_total", "Backwarding replies processed (Receive_Reply).", stats.RepliesSeen)
	pw.Counter("adc_forwards_total", "Upstream forwards by routing decision.")
	pw.Sample(float64(stats.ForwardLearned), promtext.L("route", "learned"))
	pw.Sample(float64(stats.ForwardRandom), promtext.L("route", "random"))
	pw.Sample(float64(stats.ForwardOrigin), promtext.L("route", "origin"))
	counter("adc_loops_detected_total", "Requests that arrived while already pending here.", stats.LoopsDetected)
	counter("adc_cache_insertions_total", "Promotions into the caching table.", stats.CacheInsertions)
	counter("adc_cache_evictions_total", "Demotions out of the caching table.", stats.CacheEvictions)
	counter("adc_shed_total", "Entry requests rejected 429 by admission control.", stats.Shed)
	counter("adc_coalesced_misses_total", "Entry misses that shared an in-flight upstream fetch.", stats.CoalescedMisses)
	counter("adc_stale_invalidated_total", "Mapping entries demoted because their location was down.", stats.StaleInvalidated)
	counter("adc_retried_fetches_total", "Entry-chain retries after a failed upstream chain.", stats.RetriedFetches)
	counter("adc_failover_origin_total", "Entry chains that fell back to a direct origin fetch.", stats.FailoverOrigin)
	counter("adc_breaker_denied_total", "Fetches rejected by an open circuit breaker.", stats.BreakerDenied)
	counter("adc_hedged_fetches_total", "Entry chains that started a parallel origin hedge.", stats.HedgedFetches)
	counter("adc_hedge_wins_total", "Hedged chains whose hedge answer was used.", stats.HedgeWins)
	if replicated {
		counter("adc_replica_pushes_total", "Hot-object replicas pushed to recent requesters.", stats.ReplicaPushes)
		counter("adc_replica_drops_total", "Cold replica copies shed.", stats.ReplicaDrops)
		counter("adc_replica_hits_total", "Local hits served from a pushed replica.", stats.ReplicaHits)
	}

	gauge("adc_cache_objects", "Payloads currently stored.", float64(storeLen))
	gauge("adc_queue_depth", "Entry requests waiting at the admission gate.", float64(p.gate.depth()))
	gauge("adc_local_time", "The proxy's logical clock (requests processed under lock).", float64(localTime))

	if m := p.health.Load(); m != nil {
		pw.Gauge("adc_peer_state", "Peer health: 0 up, 1 suspect, 2 down, 3 recovering.")
		for _, peer := range peers {
			if peer == p.id {
				continue
			}
			pw.Sample(peerStateGauge(m.state(peer)), promtext.L("peer", peer.String()))
		}
	}
	if p.breakers != nil {
		// Declared whenever breakers exist; series appear only while a
		// circuit is tripped (closed breakers are the silent default).
		pw.Gauge("adc_breaker_state", "Tripped circuit breakers: 1 half-open, 2 open.")
		for _, b := range p.breakers.snapshot() {
			v := 2.0
			if b.State == "half-open" {
				v = 1.0
			}
			pw.Sample(v, promtext.L("peer", b.Peer))
		}
	}
	if p.spans != nil {
		gauge("adc_trace_spans", "Spans buffered in the /debug/trace ring.", float64(p.spans.Len()))
		counter("adc_trace_spans_dropped_total", "Spans evicted from the bounded trace ring.", p.spans.Dropped())
	}

	pw.HistogramFamily("adc_stage_latency_seconds",
		"Serving latency by stage: server, gate_wait, flight_wait, forward, origin.")
	snap := p.stages.Snapshot()
	bounds := make([]float64, len(stageBoundsUs))
	for i, us := range stageBoundsUs {
		bounds[i] = float64(us) / 1e6
	}
	for st := metrics.Stage(0); st < metrics.NumStages; st++ {
		h := snap[st]
		cum := make([]uint64, len(stageBoundsUs))
		for i, us := range stageBoundsUs {
			cum[i] = h.CountBelow(us)
		}
		pw.Histogram(bounds, cum, h.Total(), float64(h.Sum())/1e6, promtext.L("stage", st.String()))
	}
	_ = pw.Flush()
}

// handleTrace serves the span ring as JSON (obs.SpanDump).
func (p *Proxy) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(p.TraceDump())
}

// ScrapeTraceDump fetches one proxy's /debug/trace over HTTP and stamps
// ScrapedUs with the scrape midpoint, so obs.MergeDumps can shift the
// dump's spans onto the scraper's clock to within half a round-trip.
// base is the proxy's base URL (Proxy.URL or any reachable address).
func ScrapeTraceDump(client *http.Client, base string) (obs.SpanDump, error) {
	before := time.Now().UnixMicro()
	resp, err := client.Get(strings.TrimRight(base, "/") + tracePath)
	if err != nil {
		return obs.SpanDump{}, fmt.Errorf("httpproxy: scrape %s: %w", base, err)
	}
	defer resp.Body.Close() //nolint:errcheck // read side
	if resp.StatusCode != http.StatusOK {
		return obs.SpanDump{}, fmt.Errorf("httpproxy: scrape %s: status %d", base, resp.StatusCode)
	}
	// The after-stamp must land before the (potentially slow) JSON parse of
	// a large ring, or parse time would masquerade as clock skew.
	body, err := io.ReadAll(resp.Body)
	after := time.Now().UnixMicro()
	if err != nil {
		return obs.SpanDump{}, fmt.Errorf("httpproxy: scrape %s: %w", base, err)
	}
	var d obs.SpanDump
	if err := json.Unmarshal(body, &d); err != nil {
		return obs.SpanDump{}, fmt.Errorf("httpproxy: scrape %s: %w", base, err)
	}
	d.ScrapedUs = (before + after) / 2
	return d, nil
}

// healthzBody is the /healthz response document. The health prober only
// checks the status code, so the body is free to carry identity — which
// lets an operator (or the chaos harness) confirm WHICH process answered
// on a port that may have been restarted.
type healthzBody struct {
	Status   string  `json:"status"`
	Proxy    string  `json:"proxy"`
	UptimeS  float64 `json:"uptime_s"`
	Go       string  `json:"go"`
	Revision string  `json:"revision,omitempty"`
}

// buildRevision returns the VCS revision baked into the binary, "" when
// built outside a checkout (go test, stripped builds).
var buildRevision = sync.OnceValue(func() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return ""
})

// handleHealthz is the liveness probe target: it answers before any lock,
// so it reports "process accepting connections", nothing more. The JSON
// body identifies the process; probers needing only liveness read the
// status code (the pre-JSON form returned bare "ok" — the prober accepts
// both).
func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(healthzBody{
		Status:   "ok",
		Proxy:    p.id.String(),
		UptimeS:  time.Since(p.started).Seconds(),
		Go:       runtime.Version(),
		Revision: buildRevision(),
	})
}

// Uptime reports how long this proxy has been running.
func (p *Proxy) Uptime() time.Duration { return time.Since(p.started) }
