package cluster

import (
	"testing"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/trace"
	"github.com/adc-sim/adc/internal/workload"
)

func testConfig(algo Algorithm) Config {
	return Config{
		Algorithm:  algo,
		NumProxies: 4,
		Tables:     core.Config{SingleSize: 256, MultipleSize: 256, CachingSize: 128},
		Seed:       11,
		Window:     100,
	}
}

func testWorkload(t *testing.T, total int) workload.Source {
	t.Helper()
	cfg := workload.DefaultConfig(total)
	cfg.PopulationSize = 200
	gen, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"valid adc", func(c *Config) {}, false},
		{"bad algorithm", func(c *Config) { c.Algorithm = 0 }, true},
		{"zero proxies", func(c *Config) { c.NumProxies = 0 }, true},
		{"negative clients", func(c *Config) { c.Clients = -1 }, true},
		{"negative maxhops", func(c *Config) { c.MaxHops = -1 }, true},
		{"bad tables", func(c *Config) { c.Tables.SingleSize = 0 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(ADC)
			tc.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tc.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
	// CARP only needs CachingSize.
	carpCfg := testConfig(CARP)
	carpCfg.Tables = core.Config{CachingSize: 10}
	if err := carpCfg.Validate(); err != nil {
		t.Errorf("CARP config with only CachingSize must validate: %v", err)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for s, want := range map[string]Algorithm{
		"adc": ADC, "carp": CARP, "hash": CARP, "hashing": CARP,
		"chash": CHash, "consistent": CHash,
	} {
		got, err := ParseAlgorithm(s)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("unknown algorithm must fail")
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []Algorithm{ADC, CARP, CHash, Hierarchical, Coordinator} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			res, err := Run(testConfig(algo), testWorkload(t, 4000))
			if err != nil {
				t.Fatal(err)
			}
			if res.Summary.Requests != 4000 {
				t.Errorf("requests = %d, want 4000", res.Summary.Requests)
			}
			if res.Summary.HitRate <= 0 || res.Summary.HitRate >= 1 {
				t.Errorf("hit rate = %v, want in (0,1)", res.Summary.HitRate)
			}
			if res.Summary.Hops < 2 {
				t.Errorf("hops = %v, want >= 2", res.Summary.Hops)
			}
			// Client-side miss accounting must equal the origin's
			// own resolution counter.
			misses := res.Summary.Requests - res.Summary.Hits
			if res.OriginResolved != misses {
				t.Errorf("origin resolved %d, client counted %d misses",
					res.OriginResolved, misses)
			}
			wantStats := 4
			if algo == Hierarchical || algo == Coordinator {
				wantStats = 5 // plus the root / the dispatcher
			}
			if len(res.ProxyStats) != wantStats {
				t.Errorf("proxy stats = %d entries, want %d", len(res.ProxyStats), wantStats)
			}
		})
	}
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	for _, algo := range []Algorithm{ADC, CARP} {
		a, err := Run(testConfig(algo), testWorkload(t, 3000))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(testConfig(algo), testWorkload(t, 3000))
		if err != nil {
			t.Fatal(err)
		}
		if a.Summary.Hits != b.Summary.Hits || a.Summary.Hops != b.Summary.Hops {
			t.Errorf("%v: repeated runs diverged: %+v vs %+v", algo, a.Summary, b.Summary)
		}
	}
}

func TestSequentialAndAgentRuntimesAgree(t *testing.T) {
	// DESIGN.md §10.5 / paper §V.1.2: the concurrent runtime must give
	// bit-identical metrics to the sequential engine under closed-loop
	// injection.
	for _, algo := range []Algorithm{ADC, CARP} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			seqCfg := testConfig(algo)
			seqCfg.Runtime = RuntimeSequential
			agtCfg := testConfig(algo)
			agtCfg.Runtime = RuntimeAgents

			seq, err := Run(seqCfg, testWorkload(t, 5000))
			if err != nil {
				t.Fatal(err)
			}
			agt, err := Run(agtCfg, testWorkload(t, 5000))
			if err != nil {
				t.Fatal(err)
			}
			if seq.Summary.Hits != agt.Summary.Hits {
				t.Errorf("hits differ: %d vs %d", seq.Summary.Hits, agt.Summary.Hits)
			}
			if seq.Summary.Hops != agt.Summary.Hops {
				t.Errorf("hops differ: %v vs %v", seq.Summary.Hops, agt.Summary.Hops)
			}
			if seq.OriginResolved != agt.OriginResolved {
				t.Errorf("origin counts differ: %d vs %d",
					seq.OriginResolved, agt.OriginResolved)
			}
		})
	}
}

func TestTCPRuntimeAgrees(t *testing.T) {
	// The paper's distributed-vs-single-host equivalence (§V.1.2), with
	// real sockets: TCP metrics must match the sequential engine.
	seqCfg := testConfig(ADC)
	tcpCfg := testConfig(ADC)
	tcpCfg.Runtime = RuntimeTCP

	seq, err := Run(seqCfg, testWorkload(t, 2000))
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := Run(tcpCfg, testWorkload(t, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Summary.Hits != tcp.Summary.Hits || seq.Summary.Hops != tcp.Summary.Hops {
		t.Errorf("TCP diverged from sequential: %+v vs %+v", tcp.Summary, seq.Summary)
	}
	if seq.OriginResolved != tcp.OriginResolved {
		t.Errorf("origin counts differ: %d vs %d", seq.OriginResolved, tcp.OriginResolved)
	}
}

func TestMultipleClients(t *testing.T) {
	cfg := testConfig(ADC)
	cfg.Clients = 3
	res, err := Run(cfg, testWorkload(t, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Requests != 3000 {
		t.Errorf("requests = %d, want 3000 across 3 clients", res.Summary.Requests)
	}
}

func TestMultipleClientsAgentsRuntime(t *testing.T) {
	cfg := testConfig(ADC)
	cfg.Clients = 3
	cfg.Runtime = RuntimeAgents
	res, err := Run(cfg, testWorkload(t, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Requests != 3000 {
		t.Errorf("requests = %d, want 3000", res.Summary.Requests)
	}
}

func TestSeriesCollection(t *testing.T) {
	cfg := testConfig(CARP)
	cfg.SampleEvery = 500
	res, err := Run(cfg, testWorkload(t, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Errorf("series points = %d, want 4", len(res.Series))
	}
}

func TestNilSource(t *testing.T) {
	if _, err := New(testConfig(ADC), nil); err == nil {
		t.Error("nil source must fail")
	}
}

func TestADCAccessors(t *testing.T) {
	c, err := New(testConfig(ADC), testWorkload(t, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.ADCProxies()) != 4 || len(c.CARPProxies()) != 0 {
		t.Error("ADC cluster proxies wrong")
	}
	if c.Origin() == nil || len(c.Clients()) != 1 {
		t.Error("origin/clients wiring wrong")
	}
}

func TestLoadBalance(t *testing.T) {
	// Self-organization should spread request load roughly evenly with
	// random entry (§I: "one single load-balanced proxy cache").
	cfg := testConfig(ADC)
	res, err := Run(cfg, testWorkload(t, 8000))
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, s := range res.ProxyStats {
		total += s.Requests
	}
	mean := total / uint64(len(res.ProxyStats))
	for i, s := range res.ProxyStats {
		if s.Requests < mean/2 || s.Requests > mean*2 {
			t.Errorf("proxy %d handled %d requests, mean %d — load unbalanced",
				i, s.Requests, mean)
		}
	}
}

func TestVirtualTimeRuntime(t *testing.T) {
	cfg := testConfig(ADC)
	cfg.Runtime = RuntimeVirtualTime
	res, err := Run(cfg, testWorkload(t, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MeanResponse <= 0 {
		t.Error("virtual-time run must record response times")
	}
	if res.Summary.MaxResponse < res.Summary.MeanResponse {
		t.Errorf("max response %v below mean %v",
			res.Summary.MaxResponse, res.Summary.MeanResponse)
	}
	// Behaviour must match the sequential engine exactly.
	seq, err := Run(testConfig(ADC), testWorkload(t, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Hits != seq.Summary.Hits {
		t.Errorf("virtual time changed behaviour: %d vs %d hits",
			res.Summary.Hits, seq.Summary.Hits)
	}
}

func TestOpenLoopCluster(t *testing.T) {
	cfg := testConfig(CARP)
	cfg.Runtime = RuntimeVirtualTime
	cfg.OpenLoopInterval = 7_000
	cfg.Poisson = true
	res, err := Run(cfg, testWorkload(t, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Requests != 3000 {
		t.Errorf("open loop completed %d requests", res.Summary.Requests)
	}
	if res.Summary.MeanResponse <= 0 {
		t.Error("open loop must record response times")
	}
	// Open loop off the virtual-time runtime is rejected.
	bad := testConfig(CARP)
	bad.OpenLoopInterval = 100
	if err := bad.Validate(); err == nil {
		t.Error("open loop on sequential runtime must fail validation")
	}
}

func TestMultiClientResponseMerging(t *testing.T) {
	cfg := testConfig(ADC)
	cfg.Runtime = RuntimeVirtualTime
	cfg.Clients = 3
	res, err := Run(cfg, testWorkload(t, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Requests != 3000 {
		t.Errorf("requests = %d", res.Summary.Requests)
	}
	if res.Summary.MeanResponse <= 0 || res.Summary.MaxResponse < res.Summary.MeanResponse {
		t.Errorf("merged response stats wrong: %+v", res.Summary)
	}
}

func TestProxyJoinMidRun(t *testing.T) {
	cfg := testConfig(ADC)
	cfg.JoinProxyAt = []uint64{4000}
	c, err := New(cfg, testWorkload(t, 8000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Requests != 8000 {
		t.Fatalf("requests = %d", res.Summary.Requests)
	}
	proxies := c.ADCProxies()
	if len(proxies) != 5 {
		t.Fatalf("cluster has %d proxies after join, want 5", len(proxies))
	}
	newcomer := proxies[4].Stats()
	if newcomer.Requests == 0 {
		t.Error("the joined proxy never received a request")
	}
	if newcomer.RepliesSeen == 0 {
		t.Error("the joined proxy never saw backwarding traffic")
	}
	// It should carry a meaningful share of the post-join load: it was
	// present for half the run, so expect at least ~5% of all requests.
	var total uint64
	for _, p := range proxies {
		total += p.Stats().Requests
	}
	if newcomer.Requests < total/20 {
		t.Errorf("joined proxy handled only %d of %d requests", newcomer.Requests, total)
	}
	for _, p := range proxies {
		if p.PendingLen() != 0 {
			t.Errorf("proxy %v has dangling pending state after churn", p.ID())
		}
	}
}

func TestProxyJoinDeterministic(t *testing.T) {
	run := func() uint64 {
		cfg := testConfig(ADC)
		cfg.JoinProxyAt = []uint64{2000}
		res, err := Run(cfg, testWorkload(t, 5000))
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.Hits
	}
	if a, b := run(), run(); a != b {
		t.Errorf("churn runs diverged: %d vs %d hits", a, b)
	}
}

func TestChurnValidation(t *testing.T) {
	base := testConfig(ADC)
	base.JoinProxyAt = []uint64{100}

	carpCfg := base
	carpCfg.Algorithm = CARP
	if err := carpCfg.Validate(); err == nil {
		t.Error("churn with CARP must fail")
	}
	agents := base
	agents.Runtime = RuntimeAgents
	if err := agents.Validate(); err == nil {
		t.Error("churn on the agents runtime must fail")
	}
	multi := base
	multi.Clients = 2
	if err := multi.Validate(); err == nil {
		t.Error("churn with multiple clients must fail")
	}
	bad := base
	bad.JoinProxyAt = []uint64{100, 100}
	if err := bad.Validate(); err == nil {
		t.Error("non-increasing join points must fail")
	}
	zero := base
	zero.JoinProxyAt = []uint64{0}
	if err := zero.Validate(); err == nil {
		t.Error("join at request 0 must fail")
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid churn config rejected: %v", err)
	}
}

func TestEntryPolicyPropagates(t *testing.T) {
	cfg := testConfig(ADC)
	cfg.EntryPolicy = sim.EntryFixed
	c, err := New(cfg, trace.NewSliceSource([]ids.ObjectID{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ProxyStats[0].Requests == 0 {
		t.Error("fixed entry policy must route everything through proxy 0 first")
	}
	for i := 1; i < 4; i++ {
		// Other proxies only see forwarded traffic; with 3 cold
		// objects they may see some, but proxy 0 must see all 3.
	}
	if res.ProxyStats[0].Requests < 3 {
		t.Errorf("proxy 0 saw %d requests, want >= 3", res.ProxyStats[0].Requests)
	}
}
