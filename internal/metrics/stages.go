package metrics

import (
	"sync"

	"github.com/adc-sim/adc/internal/stats"
)

// Stage names one phase of serving a request on the HTTP farm. The
// per-stage latency histograms behind every proxy's /metrics endpoint key
// on it, and cmd/adctop's p50/p99 columns are one Stage each.
type Stage uint8

const (
	// StageServer is the whole in-proxy handling of one incoming request,
	// entry or forwarded hop — the end-to-end server-side latency.
	StageServer Stage = iota
	// StageGateWait is time an entry request spent queued at the
	// admission gate before being served.
	StageGateWait
	// StageFlightWait is time a coalesced entry miss spent riding along
	// on another request's in-flight upstream fetch.
	StageFlightWait
	// StageForward is one upstream fetch to a peer proxy.
	StageForward
	// StageOrigin is one fetch to the origin server (direct misses,
	// failover fallbacks and hedges included).
	StageOrigin

	NumStages
)

// stageNames are the stable label values in /metrics output.
var stageNames = [NumStages]string{
	StageServer:     "server",
	StageGateWait:   "gate_wait",
	StageFlightWait: "flight_wait",
	StageForward:    "forward",
	StageOrigin:     "origin",
}

// String returns the stage's /metrics label value.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stage latency histogram shape: 50 µs buckets over 0–200 ms plus
// overflow, matching cmd/adcload's client-side histogram so server- and
// client-observed quantiles are directly comparable.
const (
	StageHistWidthUs = 50
	StageHistBuckets = 4000
)

// StageSet records per-stage latency histograms for one proxy. Observe is
// mutex-guarded and cheap (one lock, one bucket increment); handlers call
// it outside the proxy's table lock so metrics recording never serializes
// the fetch path.
type StageSet struct {
	mu    sync.Mutex
	hists [NumStages]*stats.Histogram
}

// NewStageSet builds a set with one histogram per stage.
func NewStageSet() *StageSet {
	s := &StageSet{}
	for i := range s.hists {
		s.hists[i] = stats.NewHistogram(StageHistBuckets, StageHistWidthUs)
	}
	return s
}

// Observe records one latency (in microseconds) for a stage. Safe on a
// nil set, which records nothing.
func (s *StageSet) Observe(stage Stage, us int64) {
	if s == nil || stage >= NumStages {
		return
	}
	s.mu.Lock()
	s.hists[stage].Add(int(us))
	s.mu.Unlock()
}

// Snapshot returns an independent copy of every stage's histogram,
// index-aligned with the Stage constants.
func (s *StageSet) Snapshot() [NumStages]*stats.Histogram {
	var out [NumStages]*stats.Histogram
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, h := range s.hists {
		c := stats.NewHistogram(StageHistBuckets, StageHistWidthUs)
		c.Merge(h)
		out[i] = c
	}
	return out
}
