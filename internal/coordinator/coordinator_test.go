package coordinator

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
)

func rig(t *testing.T, workers, cacheSize int) (*sim.Engine, *Coordinator, []*Worker) {
	t.Helper()
	eng := sim.NewEngine()
	var ws []*Worker
	var ids_ []ids.NodeID
	for i := 0; i < workers; i++ {
		w, err := NewWorker(ids.NodeID(i), cacheSize)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
		ids_ = append(ids_, w.ID())
		if err := eng.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	co, err := NewCoordinator(ids.NodeID(workers), ids_)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(co); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(sim.NewOrigin()); err != nil {
		t.Fatal(err)
	}
	return eng, co, ws
}

type sink struct {
	id      ids.NodeID
	replies []*msg.Reply
}

func (s *sink) ID() ids.NodeID { return s.id }
func (s *sink) Handle(_ sim.Context, m msg.Message) {
	if rep, ok := m.(*msg.Reply); ok {
		s.replies = append(s.replies, rep)
	}
}

func send(t *testing.T, eng *sim.Engine, s *sink, to ids.NodeID, obj ids.ObjectID, counter uint64) *msg.Reply {
	t.Helper()
	eng.Send(&msg.Request{
		To: to, ID: ids.NewRequestID(0, counter), Object: obj,
		Client: s.id, Sender: s.id,
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return s.replies[len(s.replies)-1]
}

func TestValidation(t *testing.T) {
	if _, err := NewCoordinator(ids.Origin, []ids.NodeID{0}); err == nil {
		t.Error("non-proxy coordinator ID must fail")
	}
	if _, err := NewCoordinator(1, nil); err == nil {
		t.Error("empty worker set must fail")
	}
	if _, err := NewWorker(ids.Origin, 4); err == nil {
		t.Error("non-proxy worker ID must fail")
	}
	if _, err := NewWorker(0, 0); err == nil {
		t.Error("zero cache must fail")
	}
}

func TestRoundRobinAssignment(t *testing.T) {
	eng, co, ws := rig(t, 3, 8)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 9; i++ {
		send(t, eng, s, co.ID(), ids.ObjectID(i), i)
	}
	for i, w := range ws {
		if w.Stats().Requests != 3 {
			t.Errorf("worker %d received %d requests, want 3", i, w.Stats().Requests)
		}
	}
}

func TestEverythingPassesTheCoordinator(t *testing.T) {
	eng, co, _ := rig(t, 2, 8)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	// Miss: c→co→w→o→w→co→c = 6 hops.
	rep := send(t, eng, s, co.ID(), 7, 1)
	if !rep.FromOrigin || rep.Hops != 6 {
		t.Errorf("miss = origin:%v hops:%d, want origin at 6", rep.FromOrigin, rep.Hops)
	}
	// Round-robin sends request 2 to the other worker (miss again);
	// request 3 lands back on worker 0: hit at 4 hops via coordinator.
	send(t, eng, s, co.ID(), 7, 2)
	rep = send(t, eng, s, co.ID(), 7, 3)
	if rep.FromOrigin || rep.Hops != 4 {
		t.Errorf("hit = origin:%v hops:%d, want hit at 4", rep.FromOrigin, rep.Hops)
	}
	st := co.Stats()
	if st.Requests != 3 || st.RepliesSeen != 3 {
		t.Errorf("coordinator saw %d requests / %d replies, want 3/3", st.Requests, st.RepliesSeen)
	}
}

func TestContentBlindDuplication(t *testing.T) {
	// The coordinator's weakness: the same object lands on every
	// worker, wasting capacity (what ADC's agreement avoids).
	eng, co, ws := rig(t, 3, 8)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 6; i++ {
		send(t, eng, s, co.ID(), 42, i)
	}
	copies := 0
	for _, w := range ws {
		if w.CacheLen() == 1 {
			copies++
		}
	}
	if copies != 3 {
		t.Errorf("object duplicated on %d workers, want all 3", copies)
	}
}
