// Package transport runs a proxy system over real TCP sockets: every node
// gets its own listener on the loopback interface and every hop travels
// through the kernel's network stack as a length-prefixed binary frame
// (internal/wire). This is the in-repo equivalent of the paper's
// distributed deployment — "we distributed the agents in such a fashion
// that each host runs exactly one ADC-agent" (§V.1.2) — and the testbed
// for its claim that distributed and single-process runs agree.
//
// The send path is built for sustained rates: each (sender, destination)
// pair owns a dedicated writer goroutine fed by a bounded frame queue.
// Senders encode outside any lock and enqueue; the writer dials outside
// the peer map's lock (one unreachable peer never blocks sends to the
// others), coalesces every frame already queued into a single write
// syscall, and on a broken connection redials with backoff and resends
// the pending batch instead of poisoning the connection cache. Delivery
// across a reconnect is therefore at-least-once; the protocol layers
// already tolerate duplicates (see ProxyStats.UnexpectedReplies).
package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/wire"
)

// Tunables of the send path.
const (
	// sendQueueDepth bounds the per-destination frame queue. A full
	// queue applies backpressure to the sender rather than dropping.
	sendQueueDepth = 4096
	// maxBatchBytes caps how many queued frames one write coalesces.
	maxBatchBytes = 64 << 10
	// redialAttempts bounds reconnection tries per batch before the
	// batch is dropped (counted in Dropped).
	redialAttempts = 10
	// redialDelay spaces reconnection attempts; together with
	// redialAttempts it defines the outage window a peer restart may
	// use (~200 ms) without losing traffic.
	redialDelay = 20 * time.Millisecond
)

// Network hosts a set of nodes, each behind its own TCP listener.
// Build with NewNetwork, add nodes with Register, then call Run.
type Network struct {
	endpoints map[ids.NodeID]*endpoint
	addrs     map[ids.NodeID]string
	wg        sync.WaitGroup
	quit      chan struct{}
	dropped   atomic.Uint64

	mu        sync.Mutex
	started   bool
	closed    bool
	onLinkErr func(from, to ids.NodeID)
}

// endpoint is one node's listener plus its outgoing peer links.
type endpoint struct {
	net  *Network
	node sim.Node
	ln   net.Listener

	// handleMu serializes Handle: a node is an agent with a single
	// logical mailbox even when several TCP peers deliver concurrently.
	handleMu sync.Mutex

	// peersMu guards only the link map; dialing happens in the links'
	// writer goroutines, never under this lock.
	peersMu sync.Mutex
	peers   map[ids.NodeID]*peerLink

	// acceptedMu tracks inbound connections so shutdown (and the
	// fault tests) can sever them.
	acceptedMu sync.Mutex
	accepted   map[net.Conn]struct{}
}

// peerLink is the sender half of one (endpoint, destination) pair.
type peerLink struct {
	addr string
	to   ids.NodeID
	ch   chan []byte

	// redials counts reconnect dials after the initial one; dropped
	// counts batches abandoned on this link. Both feed Stats.
	redials atomic.Uint64
	dropped atomic.Uint64

	// mu guards conn, which the writer goroutine owns; shutdown closes
	// it to unblock a writer stuck in Write.
	mu     sync.Mutex
	conn   net.Conn
	dialed bool // a connection has been established at least once
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		endpoints: make(map[ids.NodeID]*endpoint),
		addrs:     make(map[ids.NodeID]string),
		quit:      make(chan struct{}),
	}
}

// Register opens a loopback listener for n. It must be called before Run.
func (nw *Network) Register(n sim.Node) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.started {
		return errors.New("transport: Register after Run")
	}
	if _, dup := nw.endpoints[n.ID()]; dup {
		return fmt.Errorf("transport: duplicate node %v", n.ID())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("transport: listen for %v: %w", n.ID(), err)
	}
	nw.endpoints[n.ID()] = &endpoint{
		net:      nw,
		node:     n,
		ln:       ln,
		peers:    make(map[ids.NodeID]*peerLink),
		accepted: make(map[net.Conn]struct{}),
	}
	nw.addrs[n.ID()] = ln.Addr().String()
	return nil
}

// Addr returns the listen address of a registered node (test support).
func (nw *Network) Addr(id ids.NodeID) (string, bool) {
	a, ok := nw.addrs[id]
	return a, ok
}

// Dropped returns how many outgoing batches were abandoned because their
// destination stayed unreachable through the redial window.
func (nw *Network) Dropped() uint64 { return nw.dropped.Load() }

// OnLinkFailure registers fn, called whenever a link abandons a batch —
// its destination stayed unreachable through the whole redial window. This
// is the transport's signal to a health layer that a peer is gone, instead
// of silently redialing forever. fn runs on the failing link's writer
// goroutine: keep it fast and non-blocking. Pass nil to remove.
func (nw *Network) OnLinkFailure(fn func(from, to ids.NodeID)) {
	nw.mu.Lock()
	nw.onLinkErr = fn
	nw.mu.Unlock()
}

func (nw *Network) linkFailureFn() func(from, to ids.NodeID) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.onLinkErr
}

// LinkStats is one (sender, destination) link's cumulative counters plus
// its instantaneous queue depth. Redials counts re-established connections
// after the first (a restarting peer shows up here even when no batch was
// lost); Dropped counts batches this link abandoned.
type LinkStats struct {
	From       ids.NodeID `json:"from"`
	To         ids.NodeID `json:"to"`
	Redials    uint64     `json:"redials"`
	Dropped    uint64     `json:"dropped"`
	QueueDepth int        `json:"queue_depth"`
}

// Stats snapshots the network's health counters: the total dropped-batch
// count plus every established link's redials, drops and backlog, sorted
// by (From, To). Like QueueDepths, the snapshot is not atomic across
// links; each counter is exact at its own read.
type Stats struct {
	Dropped uint64      `json:"dropped"`
	Links   []LinkStats `json:"links"`
}

// Stats snapshots the network; see the Stats type.
func (nw *Network) Stats() Stats {
	st := Stats{Dropped: nw.dropped.Load()}
	for id, ep := range nw.endpoints {
		ep.peersMu.Lock()
		for dst, pl := range ep.peers {
			st.Links = append(st.Links, LinkStats{
				From:       id,
				To:         dst,
				Redials:    pl.redials.Load(),
				Dropped:    pl.dropped.Load(),
				QueueDepth: len(pl.ch),
			})
		}
		ep.peersMu.Unlock()
	}
	sort.Slice(st.Links, func(i, j int) bool {
		if st.Links[i].From != st.Links[j].From {
			return st.Links[i].From < st.Links[j].From
		}
		return st.Links[i].To < st.Links[j].To
	})
	return st
}

// QueueDepth is one (sender, destination) link's instantaneous backlog:
// how many encoded frames sit in its bounded send queue waiting for the
// writer goroutine. A persistently deep queue marks a link applying
// backpressure — the destination (or the path to it) cannot keep up.
type QueueDepth struct {
	From  ids.NodeID `json:"from"`
	To    ids.NodeID `json:"to"`
	Depth int        `json:"depth"`
}

// QueueDepths snapshots every established link's send-queue depth, sorted
// by (From, To) so consecutive snapshots line up. Links are created lazily
// on first send, so a pair that never communicated does not appear. The
// snapshot is not atomic across links; each depth is exact at its own read.
func (nw *Network) QueueDepths() []QueueDepth {
	var out []QueueDepth
	for id, ep := range nw.endpoints {
		ep.peersMu.Lock()
		for dst, pl := range ep.peers {
			out = append(out, QueueDepth{From: id, To: dst, Depth: len(pl.ch)})
		}
		ep.peersMu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Run starts the accept loops, injects Starter traffic, waits for done to
// close, then tears everything down. Like the other runtimes, node state
// is safe to read after Run returns.
func (nw *Network) Run(done <-chan struct{}) error {
	nw.mu.Lock()
	if nw.started {
		nw.mu.Unlock()
		return errors.New("transport: Run called twice")
	}
	nw.started = true
	nw.mu.Unlock()

	for _, ep := range nw.endpoints {
		ep := ep
		nw.wg.Add(1)
		go func() {
			defer nw.wg.Done()
			ep.acceptLoop()
		}()
	}

	// Inject initial traffic. Starters send through their own endpoint
	// so replies flow back over TCP.
	for _, ep := range nw.endpoints {
		if s, ok := ep.node.(sim.Starter); ok {
			s.Start(ep)
		}
	}

	<-done

	nw.mu.Lock()
	nw.closed = true
	nw.mu.Unlock()
	close(nw.quit)
	for _, ep := range nw.endpoints {
		ep.close()
	}
	nw.wg.Wait()
	return nil
}

func (nw *Network) isClosed() bool {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.closed
}

func (ep *endpoint) acceptLoop() {
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return // listener closed during shutdown
		}
		ep.acceptedMu.Lock()
		ep.accepted[conn] = struct{}{}
		ep.acceptedMu.Unlock()
		ep.net.wg.Add(1)
		go func() {
			defer ep.net.wg.Done()
			ep.readLoop(conn)
		}()
	}
}

func (ep *endpoint) readLoop(conn net.Conn) {
	defer func() {
		conn.Close() //nolint:errcheck // best-effort close on a read path
		ep.acceptedMu.Lock()
		delete(ep.accepted, conn)
		ep.acceptedMu.Unlock()
	}()
	for {
		m, err := wire.ReadMessage(conn)
		if err != nil {
			return // EOF or shutdown
		}
		ep.handleMu.Lock()
		ep.node.Handle(ep, m)
		ep.handleMu.Unlock()
	}
}

// severInbound force-closes every accepted connection — shutdown support,
// and the crash half of the reconnect tests (a peer restart severs all of
// its TCP sessions while the listener comes back).
func (ep *endpoint) severInbound() {
	ep.acceptedMu.Lock()
	defer ep.acceptedMu.Unlock()
	for conn := range ep.accepted {
		conn.Close() //nolint:errcheck // teardown path
	}
}

var _ sim.Context = (*endpoint)(nil)

// Send implements sim.Context. The message is encoded immediately (the
// caller may recycle it as soon as Send returns) and handed to the
// destination's writer goroutine. A full queue blocks — backpressure, not
// silent loss; shutdown unblocks it.
func (ep *endpoint) Send(m msg.Message) {
	sim.CountHop(m)
	pl := ep.linkTo(m.Dest())
	if pl == nil {
		// During shutdown sends can race teardown; outside shutdown an
		// unroutable destination is a wiring bug that surfaces as a
		// stalled closed loop in tests.
		return
	}
	frame, err := wire.AppendFrame(nil, m)
	if err != nil {
		return // unknown message type; nothing the wire can carry
	}
	select {
	case pl.ch <- frame:
	case <-ep.net.quit:
	}
}

// linkTo returns the (lazily created) writer link for dst. Only the map
// lookup happens under peersMu; dialing is the writer goroutine's job, so
// one slow or unreachable peer never blocks senders to the others.
func (ep *endpoint) linkTo(dst ids.NodeID) *peerLink {
	ep.peersMu.Lock()
	defer ep.peersMu.Unlock()
	if pl, ok := ep.peers[dst]; ok {
		return pl
	}
	if ep.net.isClosed() {
		return nil
	}
	addr, ok := ep.net.addrs[dst]
	if !ok {
		return nil
	}
	pl := &peerLink{addr: addr, to: dst, ch: make(chan []byte, sendQueueDepth)}
	ep.peers[dst] = pl
	ep.net.wg.Add(1)
	go func() {
		defer ep.net.wg.Done()
		ep.writeLoop(pl)
	}()
	return pl
}

// writeLoop drains one destination's queue: every frame already queued is
// coalesced into a single batched write (one syscall for many messages at
// high rate), and a broken connection is redialed with the whole batch
// resent.
func (ep *endpoint) writeLoop(pl *peerLink) {
	defer pl.closeConn()
	batch := make([]byte, 0, maxBatchBytes)
	for {
		var frame []byte
		select {
		case frame = <-pl.ch:
		case <-ep.net.quit:
			return
		}
		batch = append(batch[:0], frame...)
	coalesce:
		for len(batch) < maxBatchBytes {
			select {
			case more := <-pl.ch:
				batch = append(batch, more...)
			default:
				break coalesce
			}
		}
		if !ep.writeBatch(pl, batch) {
			ep.net.dropped.Add(1)
			pl.dropped.Add(1)
			if fn := ep.net.linkFailureFn(); fn != nil {
				fn(ep.node.ID(), pl.to)
			}
		}
	}
}

// writeBatch writes batch on the link's connection, dialing or redialing
// as needed. It reports whether the batch was written.
func (ep *endpoint) writeBatch(pl *peerLink, batch []byte) bool {
	for attempt := 0; attempt < redialAttempts; attempt++ {
		select {
		case <-ep.net.quit:
			return false
		default:
		}
		conn := pl.current()
		if conn == nil {
			c, err := net.Dial("tcp", pl.addr)
			if err != nil {
				time.Sleep(redialDelay)
				continue
			}
			if !pl.install(c, ep.net.quit) {
				c.Close() //nolint:errcheck // lost the shutdown race
				return false
			}
			conn = c
		}
		if _, err := conn.Write(batch); err == nil {
			return true
		}
		// Broken connection: drop it and retry with a fresh dial
		// instead of poisoning the link.
		pl.closeConn()
	}
	return false
}

// current returns the link's live connection, nil if none.
func (pl *peerLink) current() net.Conn {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.conn
}

// install adopts a freshly dialed connection unless shutdown has begun.
// Every connection after the link's first counts as a redial.
func (pl *peerLink) install(c net.Conn, quit <-chan struct{}) bool {
	select {
	case <-quit:
		return false
	default:
	}
	pl.mu.Lock()
	pl.conn = c
	if pl.dialed {
		pl.redials.Add(1)
	} else {
		pl.dialed = true
	}
	pl.mu.Unlock()
	return true
}

// closeConn severs the link's connection (write failure or shutdown).
func (pl *peerLink) closeConn() {
	pl.mu.Lock()
	conn := pl.conn
	pl.conn = nil
	pl.mu.Unlock()
	if conn != nil {
		conn.Close() //nolint:errcheck // teardown path
	}
}

func (ep *endpoint) close() {
	ep.ln.Close() //nolint:errcheck // shutdown path
	ep.severInbound()
	ep.peersMu.Lock()
	defer ep.peersMu.Unlock()
	for _, pl := range ep.peers {
		pl.closeConn()
	}
}
