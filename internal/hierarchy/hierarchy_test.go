package hierarchy

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
)

func rig(t *testing.T, leaves, cacheSize int) (*sim.Engine, []*Proxy, *Proxy) {
	t.Helper()
	eng := sim.NewEngine()
	rootID := ids.NodeID(leaves)
	var leafNodes []*Proxy
	for i := 0; i < leaves; i++ {
		p, err := New(Config{ID: ids.NodeID(i), Role: Leaf, Parent: rootID, CacheSize: cacheSize})
		if err != nil {
			t.Fatal(err)
		}
		leafNodes = append(leafNodes, p)
		if err := eng.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	root, err := New(Config{ID: rootID, Role: Root, CacheSize: cacheSize})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(root); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(sim.NewOrigin()); err != nil {
		t.Fatal(err)
	}
	return eng, leafNodes, root
}

type sink struct {
	id      ids.NodeID
	replies []*msg.Reply
}

func (s *sink) ID() ids.NodeID { return s.id }
func (s *sink) Handle(_ sim.Context, m msg.Message) {
	if rep, ok := m.(*msg.Reply); ok {
		s.replies = append(s.replies, rep)
	}
}

func send(t *testing.T, eng *sim.Engine, s *sink, to ids.NodeID, obj ids.ObjectID, counter uint64) *msg.Reply {
	t.Helper()
	eng.Send(&msg.Request{
		To: to, ID: ids.NewRequestID(0, counter), Object: obj,
		Client: s.id, Sender: s.id,
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return s.replies[len(s.replies)-1]
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{ID: ids.Origin, Role: Leaf, CacheSize: 4}); err == nil {
		t.Error("non-proxy ID must fail")
	}
	if _, err := New(Config{ID: 0, Role: Role(9), CacheSize: 4}); err == nil {
		t.Error("bad role must fail")
	}
	if _, err := New(Config{ID: 0, Role: Leaf}); err == nil {
		t.Error("zero cache must fail")
	}
}

func TestMissClimbsTreeAndPopulatesBothLevels(t *testing.T) {
	eng, leaves, root := rig(t, 2, 8)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	rep := send(t, eng, s, 0, 42, 1)
	if !rep.FromOrigin {
		t.Error("first request must come from the origin")
	}
	// client→leaf, leaf→root, root→origin + reply legs = 6 hops.
	if rep.Hops != 6 {
		t.Errorf("miss hops = %d, want 6", rep.Hops)
	}
	if leaves[0].CacheLen() != 1 || root.CacheLen() != 1 {
		t.Error("both the leaf and the root must cache the passing object")
	}
	if leaves[1].CacheLen() != 0 {
		t.Error("the other leaf must not cache")
	}
}

func TestLeafHitIsTwoHops(t *testing.T) {
	eng, _, _ := rig(t, 2, 8)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	send(t, eng, s, 0, 7, 1)
	rep := send(t, eng, s, 0, 7, 2)
	if rep.FromOrigin || rep.Hops != 2 {
		t.Errorf("leaf hit = origin:%v hops:%d, want hit with 2", rep.FromOrigin, rep.Hops)
	}
}

func TestSiblingBenefitsFromSharedParent(t *testing.T) {
	// The whole point of a hierarchy: leaf 1's miss is leaf 0's
	// earlier fetch, served by the shared root at 4 hops.
	eng, leaves, _ := rig(t, 2, 8)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	send(t, eng, s, 0, 7, 1)
	rep := send(t, eng, s, 1, 7, 2)
	if rep.FromOrigin {
		t.Error("sibling request must hit the shared parent")
	}
	if rep.Hops != 4 {
		t.Errorf("parent hit hops = %d, want 4", rep.Hops)
	}
	if leaves[1].CacheLen() != 1 {
		t.Error("second leaf must cache the passing object")
	}
}

func TestLRUChurnBounded(t *testing.T) {
	eng, leaves, root := rig(t, 1, 4)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		send(t, eng, s, 0, ids.ObjectID(i), i)
	}
	if leaves[0].CacheLen() > 4 || root.CacheLen() > 4 {
		t.Error("cache bounds violated")
	}
	if leaves[0].Stats().CacheEvictions == 0 {
		t.Error("no evictions under churn")
	}
}
