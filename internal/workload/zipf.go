// Package workload generates the synthetic request stream the experiments
// run against. The paper uses Web Polygraph's PolyMix-4 to create "a set of
// almost 4 million requests ... divided into three phases" (§V.1.6):
//
//	Phase 1 — fill:            ≈1.0 M requests, "almost no repetitions";
//	Phase 2 — request phase I: ≈1.5 M requests with web-like repetitions;
//	Phase 3 — request phase II: "repeats itself", i.e. replays phase 2.
//
// Polygraph itself is a live benchmarking appliance, not a library, so this
// package is the documented substitution (DESIGN.md §3): a deterministic,
// seeded generator with the same phase structure and a Zipf-like popularity
// skew, which is the empirically observed shape of web request streams
// (Breslau et al., the paper's ref [2]).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 1..N with probability proportional to 1/rank^alpha.
//
// math/rand's Zipf only supports exponents s > 1, but measured web streams
// have alpha ≈ 0.6–0.9 (ref [2]), so we sample from an explicit cumulative
// distribution with binary search: O(N) memory once, O(log N) per draw,
// deterministic for a given rand.Rand.
type Zipf struct {
	cdf   []float64
	alpha float64
}

// NewZipf builds a sampler over ranks 1..n with exponent alpha > 0.
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf population must be positive, got %d", n)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("workload: zipf exponent must be positive, got %v", alpha)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	// Normalise so the last bucket is exactly 1.
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1
	return &Zipf{cdf: cdf, alpha: alpha}, nil
}

// N returns the population size.
func (z *Zipf) N() int { return len(z.cdf) }

// Alpha returns the configured exponent.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Rank draws a rank in [0, N) — rank 0 is the most popular.
func (z *Zipf) Rank(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// HeadMass returns the probability mass of the k most popular ranks — the
// best possible hit rate of a cache holding exactly those k objects. The
// experiment tuning notes in EXPERIMENTS.md use this to sanity-check
// measured hit rates.
func (z *Zipf) HeadMass(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k >= len(z.cdf) {
		return 1
	}
	return z.cdf[k-1]
}
