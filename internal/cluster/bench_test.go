package cluster_test

import (
	"testing"

	"github.com/adc-sim/adc/internal/cluster"
	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/trace"
)

func benchTrace(n int) []ids.ObjectID {
	objs := make([]ids.ObjectID, n)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range objs {
		state = state*6364136223846793005 + 1442695040888963407
		objs[i] = ids.ObjectID(state % 1000)
	}
	return objs
}

func benchConfig(algo cluster.Algorithm, rt cluster.Runtime) cluster.Config {
	return cluster.Config{
		Algorithm:  algo,
		NumProxies: 5,
		Tables: core.Config{
			SingleSize:   2000,
			MultipleSize: 2000,
			CachingSize:  1000,
		},
		Seed:    1,
		Runtime: rt,
	}
}

// BenchmarkClusterRun measures one complete ADC simulation through the
// cluster layer on the sequential engine — the configuration every sweep
// point of the Figs. 13–15 experiments runs. Tracked in BENCH_engine.json.
func BenchmarkClusterRun(b *testing.B) {
	objs := benchTrace(20_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := cluster.Run(benchConfig(cluster.ADC, cluster.RuntimeSequential),
			trace.NewSliceSource(objs))
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.Requests != 20_000 {
			b.Fatalf("requests = %d", res.Summary.Requests)
		}
	}
}

// BenchmarkClusterRunVTime is the same simulation on the virtual-time
// engine, adding the event heap and latency model to the hot path.
func BenchmarkClusterRunVTime(b *testing.B) {
	objs := benchTrace(20_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := cluster.Run(benchConfig(cluster.ADC, cluster.RuntimeVirtualTime),
			trace.NewSliceSource(objs))
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.Requests != 20_000 {
			b.Fatalf("requests = %d", res.Summary.Requests)
		}
	}
}

// BenchmarkClusterRunCARP keeps the hashing baseline on the fast path too:
// CARP shares the identical dispatch and message machinery.
func BenchmarkClusterRunCARP(b *testing.B) {
	objs := benchTrace(20_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(benchConfig(cluster.CARP, cluster.RuntimeSequential),
			trace.NewSliceSource(objs)); err != nil {
			b.Fatal(err)
		}
	}
}
