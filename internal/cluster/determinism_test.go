package cluster

import (
	"reflect"
	"testing"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/trace"
)

// TestRunDeterminism asserts that two identically configured runs produce
// identical results. With multiple clients sharing the proxies' state and
// random streams, the Starter firing order is observable: engines must
// start clients in ascending NodeID order, not map-iteration order.
func TestRunDeterminism(t *testing.T) {
	for _, rt := range []Runtime{RuntimeSequential, RuntimeVirtualTime} {
		t.Run(rt.String(), func(t *testing.T) {
			objs := make([]ids.ObjectID, 4000)
			state := uint64(0xDEADBEEFCAFE)
			for i := range objs {
				state = state*6364136223846793005 + 1442695040888963407
				objs[i] = ids.ObjectID(state % 800)
			}
			run := func() *Result {
				res, err := Run(Config{
					Algorithm:   ADC,
					NumProxies:  5,
					Tables:      core.Config{SingleSize: 200, MultipleSize: 200, CachingSize: 100},
					Seed:        42,
					Clients:     3,
					SampleEvery: 500,
					Runtime:     rt,
				}, trace.NewSliceSource(objs))
				if err != nil {
					t.Fatal(err)
				}
				return res
			}

			a, b := run(), run()
			if a.Delivered == 0 || a.Delivered != b.Delivered {
				t.Errorf("delivered: run1 %d, run2 %d", a.Delivered, b.Delivered)
			}
			sa, sb := a.Summary, b.Summary
			sa.Elapsed, sb.Elapsed = 0, 0 // wall clock, legitimately differs
			if sa != sb {
				t.Errorf("summaries differ:\nrun1 %+v\nrun2 %+v", sa, sb)
			}
			if !reflect.DeepEqual(a.Series, b.Series) {
				t.Error("time series differ between identical runs")
			}
			if !reflect.DeepEqual(a.ProxyStats, b.ProxyStats) {
				t.Errorf("proxy stats differ:\nrun1 %+v\nrun2 %+v", a.ProxyStats, b.ProxyStats)
			}
		})
	}
}

// TestBackendDeterminism asserts that the ordered-table backend is
// unobservable in simulation results: the default btree (with the unified
// directory), the paper's sorted slice and the skip list must produce
// byte-identical summaries, time series and per-proxy statistics. This is
// the guard that lets the backend change default without perturbing any
// paper-reproduction number.
func TestBackendDeterminism(t *testing.T) {
	objs := make([]ids.ObjectID, 4000)
	state := uint64(0xDEADBEEFCAFE)
	for i := range objs {
		state = state*6364136223846793005 + 1442695040888963407
		objs[i] = ids.ObjectID(state % 800)
	}
	run := func(backend core.Backend) *Result {
		res, err := Run(Config{
			Algorithm:  ADC,
			NumProxies: 5,
			Tables: core.Config{
				SingleSize: 200, MultipleSize: 200, CachingSize: 100,
				Backend: backend,
			},
			Seed:        42,
			Clients:     3,
			SampleEvery: 500,
		}, trace.NewSliceSource(objs))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	ref := run(core.BackendSlice)
	for _, backend := range []core.Backend{core.BackendBTree, core.BackendSkipList} {
		t.Run(backend.String(), func(t *testing.T) {
			got := run(backend)
			sr, sg := ref.Summary, got.Summary
			sr.Elapsed, sg.Elapsed = 0, 0
			if sr != sg {
				t.Errorf("summaries differ:\nslice %+v\n%s %+v", sr, backend, sg)
			}
			if !reflect.DeepEqual(ref.Series, got.Series) {
				t.Error("time series differ across backends")
			}
			if !reflect.DeepEqual(ref.ProxyStats, got.ProxyStats) {
				t.Errorf("proxy stats differ:\nslice %+v\n%s %+v", ref.ProxyStats, backend, got.ProxyStats)
			}
		})
	}
}
