// Package httpproxy is a real HTTP proxy system built on the ADC
// algorithm — the paper's first future-work item ("the creation of a real
// proxy system based on the freely available Squid server", §VI), realised
// with net/http instead of Squid.
//
// Each proxy is an HTTP server; clients GET /obj/<id> from any proxy.
// Unlike the simulator (which, like the paper's testbed, "will not cache
// and transfer the actual objects data", §V.1), this farm moves real
// payload bytes: the caching table governs which payloads a proxy stores.
//
// HTTP's call stack plays the role of the backwarding path: a proxy that
// cannot resolve a request forwards it upstream with an http.Client call,
// and the response naturally retraces the chain of waiting handlers, each
// of which updates its mapping tables exactly as Receive_Reply does
// (Fig. 7). The ADC metadata travels in headers:
//
//	X-ADC-Request-ID   globally unique ID, for loop detection
//	X-ADC-Forwards     number of proxy forwards so far (max-hops bound)
//	X-ADC-Resolver     the agreed location (empty = origin data)
//	X-ADC-Cached       set once some proxy on the chain stores the object
//	X-ADC-Origin       marks payloads produced by the origin server
package httpproxy

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/proxy"
)

// Header names of the ADC-over-HTTP protocol.
const (
	HeaderRequestID = "X-Adc-Request-Id"
	HeaderForwards  = "X-Adc-Forwards"
	HeaderResolver  = "X-Adc-Resolver"
	HeaderCached    = "X-Adc-Cached"
	HeaderOrigin    = "X-Adc-Origin"
)

// objPathPrefix is the URL prefix objects are served under.
const objPathPrefix = "/obj/"

// ObjectURL returns the URL under base (a proxy or origin base URL) that
// serves obj — the client-side counterpart of the /obj/<id> route, for
// external drivers like cmd/adcload.
func ObjectURL(base string, obj ids.ObjectID) string {
	return base + objPathPrefix + strconv.FormatUint(uint64(obj), 10)
}

// parseObjectPath extracts the object ID from /obj/<id>.
func parseObjectPath(path string) (ids.ObjectID, error) {
	rest, ok := strings.CutPrefix(path, objPathPrefix)
	if !ok {
		return 0, fmt.Errorf("httpproxy: path %q not under %s", path, objPathPrefix)
	}
	v, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("httpproxy: bad object id %q: %w", rest, err)
	}
	return ids.ObjectID(v), nil
}

// Origin is the HTTP origin server: it can produce any object. Payloads
// are deterministic functions of the object ID so tests can verify
// end-to-end integrity through the proxy chain.
type Origin struct {
	ln  net.Listener
	srv *http.Server

	mu       sync.Mutex
	resolved uint64
	tracer   *obs.Tracer
}

// Payload returns the canonical payload of an object.
func Payload(obj ids.ObjectID) []byte {
	return []byte(fmt.Sprintf("object %d body: %x", uint64(obj), uint64(obj)*0x9E3779B97F4A7C15))
}

// NewOrigin starts an origin server on a loopback port.
func NewOrigin() (*Origin, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("httpproxy: origin listen: %w", err)
	}
	o := &Origin{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc(objPathPrefix, o.handle)
	o.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go o.srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on shutdown
	return o, nil
}

// URL returns the origin's base URL.
func (o *Origin) URL() string { return "http://" + o.ln.Addr().String() }

// Resolved returns how many requests the origin answered.
func (o *Origin) Resolved() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.resolved
}

// SetTracer installs the request tracer.
func (o *Origin) SetTracer(t *obs.Tracer) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.tracer = t
}

// Close shuts the origin down.
func (o *Origin) Close() error { return o.srv.Close() }

func (o *Origin) handle(w http.ResponseWriter, r *http.Request) {
	obj, err := parseObjectPath(r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	o.mu.Lock()
	o.resolved++
	tr := o.tracer
	o.mu.Unlock()
	if tr.Enabled(obs.KindOriginResolve) {
		e := obs.Ev(obs.KindOriginResolve, ids.Origin)
		e.Req = HashRequestID(r.Header.Get(HeaderRequestID))
		e.Obj = obj
		tr.Emit(e)
	}
	w.Header().Set(HeaderOrigin, "1")
	if _, err := w.Write(Payload(obj)); err != nil {
		return // client went away; nothing to do
	}
}

// Proxy is one ADC agent speaking HTTP. Handlers may run concurrently;
// the mapping tables and payload store are guarded by mu, which is never
// held across an upstream fetch (holding it would deadlock on forwarding
// loops, where the same proxy serves two requests of one chain).
//
// The serving path is production-shaped: upstream fetches go through the
// shared pooled transport (client.go), concurrent misses on one object
// collapse into a single upstream fetch (flight.go), and entry-request
// concurrency is bounded with load shedding (gate.go).
type Proxy struct {
	id      ids.NodeID
	ln      net.Listener
	srv     *http.Server
	client  *http.Client
	origin  string
	maxHops int

	gate     *gate
	flights  flightGroup
	coalesce bool

	// shed/coalesced are updated off-lock: shedding happens precisely
	// when mu is contended, and a follower's ride-along should not
	// serialize on the table lock just to count itself.
	shed      atomic.Uint64
	coalesced atomic.Uint64

	mu        sync.Mutex
	tables    *core.Tables
	store     map[ids.ObjectID][]byte
	pending   map[string]int
	rng       *rand.Rand
	peers     []ids.NodeID
	peerURL   map[ids.NodeID]string
	localTime int64
	stats     metrics.ProxyStats
	tracer    *obs.Tracer
	replica   *replicator        // nil = stock ADC (replication off)
	netVars   func() NetworkVars // optional transport-network section of /debug/vars
}

// Config assembles one HTTP proxy.
type Config struct {
	// ID is the proxy's node ID.
	ID ids.NodeID
	// Tables sizes the mapping tables.
	Tables core.Config
	// OriginURL is the origin server's base URL.
	OriginURL string
	// MaxHops bounds proxy forwarding (0 = unbounded).
	MaxHops int
	// Seed drives the random peer selection.
	Seed int64
	// MaxActive bounds concurrently served entry requests
	// (0 = defaultMaxActive, negative = unlimited).
	MaxActive int
	// MaxQueue bounds entry requests waiting for an active slot before
	// shedding kicks in (0 = defaultMaxQueue, negative = no queue).
	MaxQueue int
	// NoCoalesce disables miss coalescing (ablation and tests).
	NoCoalesce bool
	// Replication configures the hot-object replication controller
	// (see internal/proxy; zero value = stock ADC).
	Replication proxy.Replication
	// Client overrides the shared pooled HTTP client (tests).
	Client *http.Client
}

// NewProxy starts a proxy on a loopback port. Peers are introduced later
// via SetPeers (all proxies must exist before addresses are known).
func NewProxy(cfg Config) (*Proxy, error) {
	tables, err := core.NewTables(cfg.Tables)
	if err != nil {
		return nil, err
	}
	repCfg := cfg.Replication.Normalize()
	if err := repCfg.Validate(); err != nil {
		return nil, fmt.Errorf("httpproxy: proxy %v: %w", cfg.ID, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("httpproxy: proxy %v listen: %w", cfg.ID, err)
	}
	client := cfg.Client
	if client == nil {
		client = sharedClient
	}
	p := &Proxy{
		id:       cfg.ID,
		ln:       ln,
		client:   client,
		origin:   cfg.OriginURL,
		maxHops:  cfg.MaxHops,
		gate:     newGate(cfg.MaxActive, cfg.MaxQueue),
		coalesce: !cfg.NoCoalesce,
		tables:   tables,
		store:    make(map[ids.ObjectID][]byte),
		pending:  make(map[string]int),
		rng:      rand.New(rand.NewSource(cfg.Seed ^ (int64(cfg.ID)+1)*0x1F3B)),
		peerURL:  make(map[ids.NodeID]string),
	}
	if repCfg.Enabled {
		p.replica = newReplicator(repCfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc(objPathPrefix, p.handle)
	registerDebug(mux, p)
	p.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go p.srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on shutdown
	return p, nil
}

// Handler exposes the proxy's full mux (object path plus debug endpoints)
// for in-process serving, e.g. under httptest.
func (p *Proxy) Handler() http.Handler { return p.srv.Handler }

// SetTracer installs the request tracer.
func (p *Proxy) SetTracer(t *obs.Tracer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tracer = t
}

// URL returns the proxy's base URL.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// ID returns the proxy's node ID.
func (p *Proxy) ID() ids.NodeID { return p.id }

// SetPeers installs the full peer address book (including this proxy).
func (p *Proxy) SetPeers(urls map[ids.NodeID]string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.peers = p.peers[:0]
	for id := range urls {
		p.peers = append(p.peers, id)
	}
	// Deterministic order for the random selection.
	for i := 1; i < len(p.peers); i++ {
		for j := i; j > 0 && p.peers[j] < p.peers[j-1]; j-- {
			p.peers[j], p.peers[j-1] = p.peers[j-1], p.peers[j]
		}
	}
	p.peerURL = urls
	if p.replica != nil {
		p.replica.sizeLoad(p.peers)
	}
}

// Stats snapshots the proxy's counters, folding in the off-lock shed and
// coalescing counts.
func (p *Proxy) Stats() metrics.ProxyStats {
	p.mu.Lock()
	s := p.stats
	p.mu.Unlock()
	s.Shed = p.shed.Load()
	s.CoalescedMisses = p.coalesced.Load()
	return s
}

// QueueDepth reports how many entry requests are waiting for an admission
// slot right now.
func (p *Proxy) QueueDepth() int64 { return p.gate.depth() }

// CacheLen returns the number of stored payloads.
func (p *Proxy) CacheLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.store)
}

// Close shuts the proxy down.
func (p *Proxy) Close() error { return p.srv.Close() }

// handle is Receive_Request (Fig. 5) over HTTP.
func (p *Proxy) handle(w http.ResponseWriter, r *http.Request) {
	obj, err := parseObjectPath(r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reqID := r.Header.Get(HeaderRequestID)
	if reqID == "" {
		http.Error(w, "missing "+HeaderRequestID, http.StatusBadRequest)
		return
	}
	forwards, _ := strconv.Atoi(r.Header.Get(HeaderForwards))

	// Admission control at the edge: entry requests beyond the bounded
	// queue are shed with 429. Forwarded hops bypass the gate — they
	// already hold a slot at their entry proxy, and gating them
	// mid-chain could deadlock a chain revisiting a saturated proxy.
	if forwards == 0 {
		if !p.gate.enter() {
			p.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "proxy overloaded", http.StatusTooManyRequests)
			return
		}
		defer p.gate.leave()
	}

	// Decide under the lock: local hit, or where to forward.
	p.mu.Lock()
	p.localTime++
	p.stats.Requests++
	if p.replica != nil && p.localTime%p.replica.cfg.Window == 0 {
		p.rollWindowLocked()
	}
	if payload, ok := p.store[obj]; ok {
		p.stats.LocalHits++
		prevLoc := ids.None
		if p.replica != nil {
			p.noteHitLocked(obj)
			prevLoc, _ = p.tables.ForwardLocation(obj)
		}
		p.tables.Recycle(p.tables.Update(obj, p.id, p.localTime))
		var adv advertisement
		if p.replica != nil {
			adv = p.maybePushLocked(obj, prevLoc, parseNodeID(r.Header.Get(HeaderSender)))
		}
		if p.tracer.Enabled(obs.KindHit) {
			e := obs.Ev(obs.KindHit, p.id)
			e.Req = HashRequestID(reqID)
			e.Obj = obj
			e.Loc = p.id
			e.Hops = int32(forwards)
			p.tracer.Emit(e)
		}
		p.mu.Unlock()
		w.Header().Set(HeaderResolver, p.id.String())
		w.Header().Set(HeaderCached, "1")
		adv.set(w.Header())
		_, _ = w.Write(payload)
		return
	}
	looped := p.pending[reqID] > 0
	atMax := p.maxHops > 0 && forwards >= p.maxHops
	p.mu.Unlock()

	// Miss path. Entry requests coalesce: concurrent misses on one cold
	// object share a single upstream chain (see flight.go for why
	// forwarded hops must not join flights). Each waiter still runs its
	// own Receive_Reply below.
	var res flightResult
	if p.coalesce && forwards == 0 && !looped && !atMax {
		var shared bool
		res, shared = p.flights.do(obj, func() flightResult {
			return p.resolveMiss(obj, reqID, forwards, false, false)
		})
		if shared {
			p.coalesced.Add(1)
		}
	} else {
		res = p.resolveMiss(obj, reqID, forwards, looped, atMax)
	}

	if res.err != nil || res.status != http.StatusOK {
		if res.err != nil {
			http.Error(w, res.err.Error(), http.StatusBadGateway)
			return
		}
		http.Error(w, "upstream status", res.status)
		return
	}

	// Receive_Reply (Fig. 7): claim the resolver slot for origin data,
	// learn the location, cache if the tables promote the object.
	p.mu.Lock()
	p.stats.RepliesSeen++
	resolver := parseNodeID(res.hdr.Get(HeaderResolver))
	if resolver == ids.None {
		resolver = p.id
	}
	out := p.tables.Update(obj, resolver, p.localTime)
	if out.To == core.KindCaching {
		if out.From != core.KindCaching {
			p.stats.CacheInsertions++
		}
		p.store[obj] = res.body
	}
	if out.CacheEvicted != nil {
		p.stats.CacheEvictions++
		delete(p.store, out.CacheEvicted.Object)
	}
	outArg := obs.EncodeOutcome(int(out.From), int(out.To),
		out.CacheEvicted != nil, out.MultipleEvicted != nil, out.Dropped != nil)
	p.tables.Recycle(out) // last read of the outcome
	if p.replica != nil {
		p.learnReplicasLocked(obj, resolver, res.hdr, res.body)
	}
	cached := res.hdr.Get(HeaderCached) == "1"
	if !cached {
		if _, stillCached := p.store[obj]; stillCached {
			resolver = p.id
			cached = true
		}
	}
	if p.tracer.Enabled(obs.KindBackward) {
		e := obs.Ev(obs.KindBackward, p.id)
		e.Req = HashRequestID(reqID)
		e.Obj = obj
		e.Loc = resolver
		e.Hops = int32(forwards)
		e.Arg = outArg
		p.tracer.Emit(e)
	}
	p.mu.Unlock()

	w.Header().Set(HeaderResolver, resolver.String())
	if cached {
		w.Header().Set(HeaderCached, "1")
	}
	if res.hdr.Get(HeaderOrigin) == "1" {
		w.Header().Set(HeaderOrigin, "1")
	}
	propagateReplication(w.Header(), res.hdr)
	_, _ = w.Write(res.body)
}

// resolveMiss is the forwarding half of a miss: it registers the pending
// pass for loop detection, picks the upstream (Forward_Addr, Fig. 6),
// performs the fetch outside the lock (the chain may revisit us), and
// retires the pending pass. looped/atMax carry the entry decision so the
// stats and routing reason match what the caller observed.
func (p *Proxy) resolveMiss(obj ids.ObjectID, reqID string, forwards int, looped, atMax bool) flightResult {
	p.mu.Lock()
	p.pending[reqID]++
	var upstream string
	upNode := ids.Origin
	reason := obs.ReasonLoop
	switch {
	case looped, atMax:
		if looped {
			p.stats.LoopsDetected++
		} else {
			reason = obs.ReasonMaxHops
		}
		p.stats.ForwardOrigin++
		upstream = p.origin
	default:
		upstream, upNode, reason = p.forwardAddrLocked(obj)
	}
	if p.tracer.Enabled(obs.KindForward) {
		e := obs.Ev(obs.KindForward, p.id)
		e.Req = HashRequestID(reqID)
		e.Obj = obj
		e.To = upNode
		e.Hops = int32(forwards)
		e.Arg = reason
		p.tracer.Emit(e)
	}
	p.mu.Unlock()

	var res flightResult
	res.body, res.hdr, res.status, res.err = p.fetch(upstream, obj, reqID, forwards+1)

	p.mu.Lock()
	// Retire the stored backwarding pass.
	if n := p.pending[reqID]; n > 1 {
		p.pending[reqID] = n - 1
	} else {
		delete(p.pending, reqID)
	}
	p.mu.Unlock()
	return res
}

// forwardAddrLocked is Forward_Addr (Fig. 6); p.mu must be held. Besides
// the upstream URL it reports the destination node and the routing reason
// for the trace.
func (p *Proxy) forwardAddrLocked(obj ids.ObjectID) (string, ids.NodeID, int64) {
	if p.replica != nil {
		return p.forwardAddrReplicatedLocked(obj)
	}
	if loc, ok := p.tables.ForwardLocation(obj); ok {
		if loc == p.id {
			p.stats.ForwardOrigin++
			return p.origin, ids.Origin, obs.ReasonSelfOrigin
		}
		if url, known := p.peerURL[loc]; known {
			p.stats.ForwardLearned++
			return url, loc, obs.ReasonLearned
		}
	}
	p.stats.ForwardRandom++
	peer := p.peers[p.rng.Intn(len(p.peers))]
	return p.peerURL[peer], peer, obs.ReasonRandom
}

// fetch issues the upstream GET carrying the ADC headers.
func (p *Proxy) fetch(base string, obj ids.ObjectID, reqID string, forwards int) ([]byte, http.Header, int, error) {
	req, err := http.NewRequest(http.MethodGet, ObjectURL(base, obj), nil)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("httpproxy: build upstream request: %w", err)
	}
	req.Header.Set(HeaderRequestID, reqID)
	req.Header.Set(HeaderForwards, strconv.Itoa(forwards))
	if p.replica != nil {
		// Identify this proxy as the forwarding hop so a holder upstream
		// knows which recent requester a replica push should target.
		req.Header.Set(HeaderSender, p.id.String())
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("httpproxy: upstream fetch: %w", err)
	}
	defer resp.Body.Close() //nolint:errcheck // read side
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("httpproxy: read upstream body: %w", err)
	}
	return body, resp.Header, resp.StatusCode, nil
}

// parseNodeID reverses ids.NodeID.String for proxy IDs; anything else
// (empty, "Origin") maps to None.
func parseNodeID(s string) ids.NodeID {
	rest, ok := strings.CutPrefix(s, "Proxy[")
	if !ok {
		return ids.None
	}
	rest, ok = strings.CutSuffix(rest, "]")
	if !ok {
		return ids.None
	}
	v, err := strconv.Atoi(rest)
	if err != nil || v < 0 {
		return ids.None
	}
	return ids.NodeID(v)
}
