// Httpfarm: the paper's future-work "real proxy system" (§VI) — a farm of
// ADC proxies speaking actual HTTP on loopback ports, moving real payload
// bytes. Any HTTP client can talk to it; this example drives it with a
// synthetic workload and then fetches one object by hand with net/http.
//
//	go run ./examples/httpfarm
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"

	"github.com/adc-sim/adc"
)

func main() {
	farm, err := adc.NewHTTPFarm(adc.HTTPFarmConfig{
		Proxies:       4,
		SingleTable:   500,
		MultipleTable: 500,
		CachingTable:  200,
		Seed:          11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer farm.Close() //nolint:errcheck // example teardown

	// Drive it with a small synthetic workload (every request is a real
	// HTTP round trip, so keep it modest).
	workload, err := adc.NewWorkload(adc.WorkloadConfig{
		Requests:   3_000,
		Population: 80,
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}
	requests, hits, err := farm.Run(workload, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HTTP farm served %d requests, hit rate %.3f (origin answered %d)\n",
		requests, float64(hits)/float64(requests), farm.OriginResolved())

	// The farm is plain HTTP: fetch an object manually.
	url, err := farm.ProxyURL(0)
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodGet, url+"/obj/42", nil)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("X-Adc-Request-Id", "manual-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // example teardown
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET %s/obj/42\n", url)
	fmt.Printf("  X-Adc-Resolver: %s\n", resp.Header.Get("X-Adc-Resolver"))
	fmt.Printf("  X-Adc-Cached:   %q\n", resp.Header.Get("X-Adc-Cached"))
	fmt.Printf("  body:           %s\n", body)
}
