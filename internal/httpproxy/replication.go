package httpproxy

import (
	"net/http"
	"strconv"
	"strings"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/proxy"
)

// Hot-object replication over HTTP — the real-network mirror of the
// simulator's controller (internal/proxy/replication.go, the reference
// implementation; the protocol rationale lives there and in DESIGN.md).
// The mechanism maps one-to-one:
//
//   - The simulator piggybacks pushes and advertisements on backwarding
//     replies; here they ride the HTTP response headers, which retrace the
//     chain of waiting handlers just like the backwarding path.
//   - Reply.Replicas/Replicate/AvgHint become X-Adc-Replicas,
//     X-Adc-Replicate and X-Adc-Avg-Hint.
//   - The reply path's "first backwarding hop" (the recent requester a
//     push targets) is the downstream proxy, identified by X-Adc-Sender
//     on the upstream fetch.
//
// All controller state is guarded by the proxy's table lock (p.mu); the
// methods below require it held.

// Replication protocol headers (in addition to the stock ADC set).
const (
	// HeaderSender carries the forwarding proxy's ID on upstream
	// fetches, so a holder knows which recent requester to push to.
	HeaderSender = "X-Adc-Sender"
	// HeaderReplicas advertises the resolver's replica set on replies as
	// a comma-separated list of proxy IDs (may be empty).
	HeaderReplicas = "X-Adc-Replicas"
	// HeaderReplicate marks a reply whose replica advertisement is
	// authoritative (a holder spoke); set to "1".
	HeaderReplicate = "X-Adc-Replicate"
	// HeaderAvgHint carries the holder's moving-average inter-request
	// gap, the adoption seed for pushed replicas.
	HeaderAvgHint = "X-Adc-Avg-Hint"
)

// replicator is the per-proxy controller state, mirroring the simulator's
// struct of the same name. Maps are never iterated and slices kept sorted,
// so behaviour is independent of Go's map ordering.
type replicator struct {
	cfg proxy.Replication

	// hot counts local cache hits per object within the current window;
	// reset at every roll.
	hot map[ids.ObjectID]int

	// tracked is the sorted set of objects with replication involvement
	// here; trackedSet mirrors it for O(1) membership.
	tracked    []ids.ObjectID
	trackedSet map[ids.ObjectID]struct{}

	// held marks objects stored here as pushed replicas (ReplicaHits).
	held map[ids.ObjectID]struct{}

	// load estimates recent outgoing demand per peer (indexed by
	// NodeID), halved each window — the power-of-two-choices signal.
	load []uint64
}

func newReplicator(cfg proxy.Replication) *replicator {
	return &replicator{
		cfg:        cfg,
		hot:        make(map[ids.ObjectID]int),
		trackedSet: make(map[ids.ObjectID]struct{}),
		held:       make(map[ids.ObjectID]struct{}),
	}
}

// sizeLoad (re)sizes the per-peer load table for the given peer set.
func (r *replicator) sizeLoad(peers []ids.NodeID) {
	max := ids.NodeID(0)
	for _, p := range peers {
		if p > max {
			max = p
		}
	}
	if n := int(max) + 1; n > len(r.load) {
		r.load = append(r.load, make([]uint64, n-len(r.load))...)
	}
}

func (r *replicator) track(obj ids.ObjectID) {
	if _, ok := r.trackedSet[obj]; ok {
		return
	}
	r.trackedSet[obj] = struct{}{}
	i := 0
	for i < len(r.tracked) && r.tracked[i] < obj {
		i++
	}
	r.tracked = append(r.tracked, 0)
	copy(r.tracked[i+1:], r.tracked[i:])
	r.tracked[i] = obj
}

func (r *replicator) untrack(i int) {
	delete(r.trackedSet, r.tracked[i])
	delete(r.held, r.tracked[i])
	r.tracked = append(r.tracked[:i], r.tracked[i+1:]...)
}

func (r *replicator) addLoad(to ids.NodeID) {
	if int(to) < len(r.load) {
		r.load[to]++
	}
}

func (r *replicator) loadOf(n ids.NodeID) uint64 {
	if int(n) < len(r.load) {
		return r.load[n]
	}
	return 0
}

// advertisement is a holder's replica-set announcement, captured under the
// lock and written to response headers after it is released.
type advertisement struct {
	replicate bool
	replicas  []ids.NodeID
	avg       int64
}

// set writes the advertisement headers.
func (a advertisement) set(h http.Header) {
	if !a.replicate {
		return
	}
	h.Set(HeaderReplicate, "1")
	h.Set(HeaderReplicas, formatNodeList(a.replicas))
	if a.avg > 0 {
		h.Set(HeaderAvgHint, strconv.FormatInt(a.avg, 10))
	}
}

// propagateReplication copies an upstream reply's replica advertisement to
// the downstream response, so every proxy on the chain sees it — the HTTP
// equivalent of the reply retracing the backwarding path.
func propagateReplication(dst http.Header, src http.Header) {
	if src.Get(HeaderReplicate) != "1" {
		return
	}
	dst.Set(HeaderReplicate, "1")
	dst.Set(HeaderReplicas, src.Get(HeaderReplicas))
	if v := src.Get(HeaderAvgHint); v != "" {
		dst.Set(HeaderAvgHint, v)
	}
}

// formatNodeList renders a sorted node set as "Proxy[0],Proxy[2]".
func formatNodeList(nodes []ids.NodeID) string {
	var b strings.Builder
	for i, n := range nodes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n.String())
	}
	return b.String()
}

// parseNodeList reverses formatNodeList, dropping unparseable segments.
func parseNodeList(s string) []ids.NodeID {
	if s == "" {
		return nil
	}
	var out []ids.NodeID
	for _, part := range strings.Split(s, ",") {
		if n := parseNodeID(part); n != ids.None {
			out = append(out, n)
		}
	}
	return out
}

// noteHitLocked records a local cache hit for the controller.
func (p *Proxy) noteHitLocked(obj ids.ObjectID) {
	r := p.replica
	r.hot[obj]++
	if _, held := r.held[obj]; held {
		p.stats.ReplicaHits++
	}
}

// maybePushLocked decides, on the local-hit path, whether to push a replica
// of obj to the downstream requester (the proxy named by X-Adc-Sender), and
// builds the advertisement the response will carry. prevLoc is the entry's
// Location before the hit-path Update rewrote it to this proxy. Mirrors the
// simulator's maybePush.
func (p *Proxy) maybePushLocked(obj ids.ObjectID, prevLoc, target ids.NodeID) advertisement {
	r := p.replica
	if prevLoc.IsProxy() && prevLoc != p.id {
		if p.tables.AddReplica(obj, prevLoc, r.cfg.MaxReplicas) {
			r.track(obj)
		}
	}
	if r.hot[obj] >= r.cfg.HotThreshold && target.IsProxy() && target != p.id {
		if p.tables.AddReplica(obj, target, r.cfg.MaxReplicas) {
			p.stats.ReplicaPushes++
			r.track(obj)
		}
	}
	var adv advertisement
	if _, replicas, ok := p.tables.ForwardSet(obj); ok {
		// A holder's view of the set is authoritative: advertise even
		// when empty so stale remote beliefs are cleared. Copy — the
		// headers are written after p.mu is released.
		adv.replicate = true
		adv.replicas = append(adv.replicas, replicas...)
		if avg, ok := p.tables.AvgOf(obj); ok {
			adv.avg = avg
		}
		if len(replicas) > 0 {
			r.track(obj)
		}
	}
	return adv
}

// learnReplicasLocked folds an upstream reply's advertised replica set into
// the local entry and, when this proxy is a designated holder, adopts the
// passing payload into the store. Mirrors the simulator's learnReplicas;
// only authoritative (X-Adc-Replicate) replies touch the learned set.
func (p *Proxy) learnReplicasLocked(obj ids.ObjectID, resolver ids.NodeID, hdr http.Header, body []byte) {
	if hdr.Get(HeaderReplicate) != "1" {
		return
	}
	r := p.replica
	replicas := parseNodeList(hdr.Get(HeaderReplicas))
	avg, _ := strconv.ParseInt(hdr.Get(HeaderAvgHint), 10, 64)
	if core.ContainsNode(replicas, p.id) && !p.tables.IsCached(obj) {
		out, adopted := p.tables.ForceCache(obj, resolver, p.localTime, avg)
		p.recordOutcomeLocked(out)
		if adopted {
			p.store[obj] = body
			p.tables.SetReplicas(obj, replicas, p.id, r.cfg.MaxReplicas)
			r.held[obj] = struct{}{}
			r.track(obj)
			return
		}
	}
	p.tables.SetReplicas(obj, replicas, p.id, r.cfg.MaxReplicas)
	if p.tables.IsCached(obj) && len(replicas) > 0 {
		r.track(obj)
	}
}

// rollWindowLocked is the controller's decay step, run every cfg.Window
// received requests. Mirrors the simulator's rollWindow; the only addition
// is that demoting a copy out of the caching table also releases its
// payload bytes from the store.
func (p *Proxy) rollWindowLocked() {
	r := p.replica
	for i := range r.load {
		r.load[i] >>= 1
	}
	for i := 0; i < len(r.tracked); {
		obj := r.tracked[i]
		if !p.tables.IsCached(obj) {
			p.tables.ClearReplicas(obj)
			r.untrack(i)
			continue
		}
		if r.hot[obj] >= r.cfg.DropThreshold {
			i++
			continue
		}
		loc, replicas, _ := p.tables.ForwardSet(obj)
		anchor := p.id
		if loc.IsProxy() && loc < anchor {
			anchor = loc
		}
		for _, n := range replicas {
			if n < anchor {
				anchor = n
			}
		}
		if anchor == p.id {
			p.tables.ClearReplicas(obj)
			r.untrack(i)
			continue
		}
		out, dropped := p.tables.DropCached(obj, anchor)
		if dropped {
			p.stats.ReplicaDrops++
			p.recordOutcomeLocked(out)
		}
		r.untrack(i)
	}
	clear(r.hot)
}

// recordOutcomeLocked applies a table-update outcome's side effects: the
// cache counters, payload-store deletions for demoted residents, and entry
// recycling.
func (p *Proxy) recordOutcomeLocked(out core.Outcome) {
	if out.To == core.KindCaching && out.From != core.KindCaching {
		p.stats.CacheInsertions++
	}
	if out.CacheEvicted != nil {
		p.stats.CacheEvictions++
		delete(p.store, out.CacheEvicted.Object)
	}
	p.tables.Recycle(out)
}

// forwardAddrReplicatedLocked is Forward_Addr with location sets: among the
// entry's known holders the proxy picks by power-of-two-choices on its
// local per-peer load estimates, ties breaking to the lower proxy ID.
// Mirrors the simulator's forwardAddrReplicated. With health probing on,
// down holders are skipped; when every known holder is down the stale set
// is invalidated and the forward fails over like the stock path.
func (p *Proxy) forwardAddrReplicatedLocked(obj ids.ObjectID, entry bool) (string, ids.NodeID, int64) {
	r := p.replica
	m := p.health.Load()
	loc, replicas, ok := p.tables.ForwardSet(obj)
	if !ok {
		return p.randomReplicatedLocked(m)
	}
	var buf [9]ids.NodeID // MaxReplicas is small; 9 covers loc + 8 replicas
	cand := buf[:0]
	skippedDown := false
	if loc.IsProxy() && loc != p.id {
		if _, known := p.peerURL[loc]; known {
			if m.routable(loc) {
				cand = append(cand, loc)
			} else {
				skippedDown = true
			}
		}
	}
	for _, n := range replicas {
		if n == p.id || n == loc || len(cand) == len(buf) {
			continue
		}
		if _, known := p.peerURL[n]; known {
			if m.routable(n) {
				cand = append(cand, n)
			} else {
				skippedDown = true
			}
		}
	}
	if skippedDown && len(cand) == 0 {
		// Every known holder is down: demote the stale entry so later
		// requests relearn instead of re-resolving dead holders.
		if p.tables.Invalidate(obj) {
			p.stats.StaleInvalidated++
		}
		if entry {
			p.stats.ForwardOrigin++
			return p.origin, ids.Origin, obs.ReasonFailover
		}
		return p.randomReplicatedLocked(m)
	}
	switch len(cand) {
	case 0:
		// No other holder known: stock behaviour (a THIS entry whose
		// object is not stored here goes to the origin).
		p.stats.ForwardOrigin++
		return p.origin, ids.Origin, obs.ReasonSelfOrigin
	case 1:
		p.stats.ForwardLearned++
		r.addLoad(cand[0])
		return p.peerURL[cand[0]], cand[0], obs.ReasonLearned
	}
	i := p.rng.Intn(len(cand))
	j := p.rng.Intn(len(cand) - 1)
	if j >= i {
		j++
	}
	a, b := cand[i], cand[j]
	la, lb := r.loadOf(a), r.loadOf(b)
	if lb < la || (lb == la && b < a) {
		a = b
	}
	p.stats.ForwardLearned++
	r.addLoad(a)
	return p.peerURL[a], a, obs.ReasonLearned
}

// randomReplicatedLocked is the replicated path's random fallback,
// load-accounted like every replicated forward; when health probing says
// no peer is routable the origin is the only resolver left.
func (p *Proxy) randomReplicatedLocked(m *healthMonitor) (string, ids.NodeID, int64) {
	if peer, ok := p.pickPeerLocked(m); ok {
		p.stats.ForwardRandom++
		p.replica.addLoad(peer)
		return p.peerURL[peer], peer, obs.ReasonRandom
	}
	p.stats.ForwardOrigin++
	return p.origin, ids.Origin, obs.ReasonFailover
}
