package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/adc-sim/adc/internal/ids"
)

// Every Ordered test runs against both backends: the paper's sorted slice
// and the skip-list replacement it proposes as future work.
func forEachBackend(t *testing.T, capacity int, fn func(t *testing.T, tbl Ordered)) {
	t.Helper()
	for _, b := range []Backend{BackendBTree, BackendSlice, BackendSkipList, BackendList} {
		t.Run(b.String(), func(t *testing.T) {
			fn(t, NewOrdered(capacity, b))
		})
	}
}

// mkEntry builds an entry whose Key() equals key exactly (Avg=key, Last=0).
func mkEntry(obj ids.ObjectID, key int64) *Entry {
	return &Entry{Object: obj, Avg: key, Last: 0, Hits: 2}
}

func assertAscending(t *testing.T, tbl Ordered) {
	t.Helper()
	es := tbl.Entries()
	for i := 1; i < len(es); i++ {
		if less(es[i], es[i-1]) {
			t.Fatalf("entries out of order at %d: key %d before %d",
				i, es[i-1].Key(), es[i].Key())
		}
	}
}

func TestOrderedInsertKeepsOrder(t *testing.T) {
	forEachBackend(t, 10, func(t *testing.T, tbl Ordered) {
		keys := []int64{50, 10, 90, 30, 70, 20}
		for i, k := range keys {
			if evicted := tbl.Insert(mkEntry(ids.ObjectID(i+1), k)); evicted != nil {
				t.Fatalf("unexpected eviction below capacity")
			}
		}
		assertAscending(t, tbl)
		if tbl.Len() != len(keys) {
			t.Errorf("Len = %d, want %d", tbl.Len(), len(keys))
		}
		if wk, ok := tbl.WorstKey(); !ok || wk != 90 {
			t.Errorf("WorstKey = %d,%v, want 90,true", wk, ok)
		}
	})
}

func TestOrderedInsertEvictsWorstWhenFull(t *testing.T) {
	// §III.3.2: a full table only keeps the candidate if it beats the
	// worst entry; Insert's contract is "evict the worst, which may be
	// the candidate itself".
	forEachBackend(t, 3, func(t *testing.T, tbl Ordered) {
		tbl.Insert(mkEntry(1, 10))
		tbl.Insert(mkEntry(2, 20))
		tbl.Insert(mkEntry(3, 30))

		// A better candidate displaces the worst resident.
		evicted := tbl.Insert(mkEntry(4, 5))
		if evicted == nil || evicted.Object != 3 {
			t.Fatalf("evicted = %v, want object 3 (key 30)", evicted)
		}
		if !tbl.Contains(4) || tbl.Contains(3) {
			t.Error("table membership wrong after displacement")
		}

		// A worse candidate is evicted straight back out.
		evicted = tbl.Insert(mkEntry(5, 99))
		if evicted == nil || evicted.Object != 5 {
			t.Fatalf("evicted = %v, want the candidate itself", evicted)
		}
		if tbl.Contains(5) {
			t.Error("rejected candidate must not remain in the table")
		}
		assertAscending(t, tbl)
	})
}

func TestOrderedRemove(t *testing.T) {
	forEachBackend(t, 5, func(t *testing.T, tbl Ordered) {
		for i := 1; i <= 5; i++ {
			tbl.Insert(mkEntry(ids.ObjectID(i), int64(i*10)))
		}
		e := tbl.Remove(3)
		if e == nil || e.Object != 3 {
			t.Fatalf("Remove(3) = %v", e)
		}
		if tbl.Contains(3) || tbl.Len() != 4 {
			t.Error("remove left stale state")
		}
		if tbl.Remove(3) != nil {
			t.Error("double remove must return nil")
		}
		if tbl.Remove(42) != nil {
			t.Error("removing absent object must return nil")
		}
		assertAscending(t, tbl)
	})
}

func TestOrderedRemoveWorst(t *testing.T) {
	forEachBackend(t, 5, func(t *testing.T, tbl Ordered) {
		if tbl.RemoveWorst() != nil {
			t.Error("RemoveWorst on empty table must return nil")
		}
		tbl.Insert(mkEntry(1, 10))
		tbl.Insert(mkEntry(2, 30))
		tbl.Insert(mkEntry(3, 20))
		if e := tbl.RemoveWorst(); e == nil || e.Object != 2 {
			t.Fatalf("RemoveWorst = %v, want object 2 (key 30)", e)
		}
		if e := tbl.RemoveWorst(); e == nil || e.Object != 3 {
			t.Fatalf("RemoveWorst = %v, want object 3 (key 20)", e)
		}
		if e := tbl.RemoveWorst(); e == nil || e.Object != 1 {
			t.Fatalf("RemoveWorst = %v, want object 1", e)
		}
		if tbl.Len() != 0 {
			t.Errorf("Len = %d, want 0", tbl.Len())
		}
	})
}

func TestOrderedDuplicateKeys(t *testing.T) {
	// Equal keys are legal (two objects with the same request rhythm);
	// ties break by ObjectID and removal must hit the right object.
	forEachBackend(t, 10, func(t *testing.T, tbl Ordered) {
		tbl.Insert(mkEntry(7, 10))
		tbl.Insert(mkEntry(3, 10))
		tbl.Insert(mkEntry(5, 10))
		assertAscending(t, tbl)
		e := tbl.Remove(3)
		if e == nil || e.Object != 3 {
			t.Fatalf("Remove(3) with duplicate keys = %v", e)
		}
		if !tbl.Contains(7) || !tbl.Contains(5) {
			t.Error("wrong entry removed among duplicates")
		}
	})
}

func TestOrderedZeroCapacityRejectsAll(t *testing.T) {
	forEachBackend(t, 0, func(t *testing.T, tbl Ordered) {
		e := mkEntry(1, 10)
		if evicted := tbl.Insert(e); evicted != e {
			t.Errorf("zero-capacity Insert must bounce the candidate, got %v", evicted)
		}
		if tbl.Len() != 0 {
			t.Error("zero-capacity table must stay empty")
		}
		if _, ok := tbl.WorstKey(); ok {
			t.Error("WorstKey on empty table must report !ok")
		}
	})
}

func TestOrderedGet(t *testing.T) {
	forEachBackend(t, 4, func(t *testing.T, tbl Ordered) {
		tbl.Insert(mkEntry(9, 42))
		if e := tbl.Get(9); e == nil || e.Key() != 42 {
			t.Errorf("Get(9) = %v", e)
		}
		if tbl.Get(8) != nil {
			t.Error("Get of absent object must return nil")
		}
	})
}

// TestBackendsAgree drives both backends with an identical random workload
// and demands identical externally visible behaviour — the skip list is a
// drop-in replacement.
func TestBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ref := NewOrdered(16, BackendSlice)
	others := []Ordered{NewOrdered(16, BackendBTree), NewOrdered(16, BackendSkipList), NewOrdered(16, BackendList)}
	for i := 0; i < 5000; i++ {
		obj := ids.ObjectID(rng.Intn(64))
		switch rng.Intn(3) {
		case 0: // insert (fresh object only)
			if ref.Contains(obj) {
				continue
			}
			key := int64(rng.Intn(1000))
			e1 := ref.Insert(mkEntry(obj, key))
			for _, o := range others {
				e2 := o.Insert(mkEntry(obj, key))
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("step %d: eviction mismatch", i)
				}
				if e1 != nil && (e1.Object != e2.Object || e1.Key() != e2.Key()) {
					t.Fatalf("step %d: evicted %v vs %v", i, e1.Object, e2.Object)
				}
			}
		case 1: // remove
			e1 := ref.Remove(obj)
			for _, o := range others {
				e2 := o.Remove(obj)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("step %d: remove mismatch for %v", i, obj)
				}
			}
		case 2: // remove worst
			e1 := ref.RemoveWorst()
			for _, o := range others {
				e2 := o.RemoveWorst()
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("step %d: removeWorst mismatch", i)
				}
				if e1 != nil && (e1.Object != e2.Object) {
					t.Fatalf("step %d: removeWorst %v vs %v", i, e1.Object, e2.Object)
				}
			}
		}
		for _, o := range others {
			if ref.Len() != o.Len() {
				t.Fatalf("step %d: length mismatch %d vs %d", i, ref.Len(), o.Len())
			}
			k1, ok1 := ref.WorstKey()
			k2, ok2 := o.WorstKey()
			if ok1 != ok2 || k1 != k2 {
				t.Fatalf("step %d: worst key mismatch (%d,%v) vs (%d,%v)", i, k1, ok1, k2, ok2)
			}
		}
	}
	// Final full-order comparison.
	e1 := ref.Entries()
	for _, o := range others {
		e2 := o.Entries()
		if len(e1) != len(e2) {
			t.Fatalf("final length mismatch")
		}
		for i := range e1 {
			if e1[i].Object != e2[i].Object {
				t.Fatalf("final order mismatch at %d: %v vs %v", i, e1[i].Object, e2[i].Object)
			}
		}
	}
}

// TestOrderedPropertySortedAndBounded is invariant 1+2 of DESIGN.md §10 as a
// quick.Check property over both backends.
func TestOrderedPropertySortedAndBounded(t *testing.T) {
	for _, backend := range []Backend{BackendBTree, BackendSlice, BackendSkipList, BackendList} {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			prop := func(keys []int16, capSeed uint8) bool {
				capacity := int(capSeed%9) + 1
				tbl := NewOrdered(capacity, backend)
				for i, k := range keys {
					obj := ids.ObjectID(i)
					tbl.Insert(mkEntry(obj, int64(k)))
					if tbl.Len() > capacity {
						return false
					}
					es := tbl.Entries()
					for j := 1; j < len(es); j++ {
						if less(es[j], es[j-1]) {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}
