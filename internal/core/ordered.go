package core

import (
	"sort"

	"github.com/adc-sim/adc/internal/ids"
)

// Ordered is a bounded table kept in ascending order of Entry.Key — the
// shared shape of the multiple-table (§III.3.2) and the caching table
// (§III.3.3). "This order allows the simple identification of the object
// with the worst average time and quick insertions/deletions" (§III.3.2).
//
// An entry's Key must stay constant while it is stored; callers remove an
// entry, mutate it (CalcAverage, Location), and re-insert it, exactly as
// the paper's Update_Entry does.
//
// Backends keep no object index of their own: on the hot path the owning
// Tables resolves membership through its unified directory (one map probe
// for all three tables) and removes via RemoveEntry. The by-object methods
// (Contains, Get, Remove) search the backend's own structure — O(log n) is
// not possible without a key, so they are linear walks — and exist for the
// paper-faithful ablation path and for direct unit-testing of backends.
type Ordered interface {
	// Len returns the number of stored entries.
	Len() int
	// Cap returns the configured capacity.
	Cap() int
	// Contains reports whether obj has an entry.
	Contains(obj ids.ObjectID) bool
	// Get returns the entry for obj without removing it, or nil.
	Get(obj ids.ObjectID) *Entry
	// Remove takes the entry for obj out of the table; nil if absent.
	Remove(obj ids.ObjectID) *Entry
	// RemoveEntry takes a known-present entry out of the table without a
	// by-object search: the backend locates it by its (Key, Object)
	// position. The entry must currently be stored and its key unchanged
	// since insertion.
	RemoveEntry(e *Entry)
	// Insert places e at its ordered position (the paper's
	// InsertOrdered). If the table is full, the worst entry — the one
	// with the largest key, possibly e itself — is evicted and
	// returned; otherwise the return is nil.
	Insert(e *Entry) (evicted *Entry)
	// RemoveWorst evicts and returns the entry with the largest key
	// (the paper's RemoveLastEntry), or nil when empty.
	RemoveWorst() *Entry
	// WorstKey returns the largest key in the table; ok is false when
	// the table is empty.
	WorstKey() (key int64, ok bool)
	// Each calls fn for every entry in ascending key order until fn
	// returns false. It allocates nothing; the entries must not be
	// mutated or reinserted during the walk.
	Each(fn func(*Entry) bool)
	// Entries returns the entries in ascending key order. The slice is
	// freshly allocated; the entries are shared. Prefer Each on any
	// path that runs repeatedly.
	Entries() []*Entry
}

// Backend selects the data structure behind an Ordered table.
type Backend int

// Supported ordered-table backends.
const (
	// BackendBTree is the default: a bounded B-tree-like structure of
	// small sorted blocks keyed by (Key, Object). O(log n) search with
	// block-local memmoves, so reference-size tables (20k entries, §V.2)
	// never shift their whole backing array. It is the "more adapted
	// data structure [that] should provide speed-ups" the paper calls
	// for in §V.3.3, with the cache locality the skip list lacks.
	BackendBTree Backend = iota
	// BackendSlice is a sorted slice with binary search — the paper's
	// own structure ("insertion and deletion at the ordered
	// multiple-table is mostly operated by binary search algorithms",
	// §V.3.3). O(log n) search, O(n) insert/delete due to shifting.
	BackendSlice
	// BackendSkipList is a deterministic skip list. O(log n) for every
	// operation, pointer-chasing constants.
	BackendSkipList
	// BackendList is the fully paper-faithful sorted linked list with
	// element-wise search, used by the Fig. 15 timing reproduction.
	// O(n) everything; do not use outside that experiment.
	BackendList
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendBTree:
		return "btree"
	case BackendSlice:
		return "slice"
	case BackendSkipList:
		return "skiplist"
	case BackendList:
		return "list"
	default:
		return "unknown"
	}
}

// ParseBackend converts a backend name ("btree", "slice", "skiplist",
// "list") to its Backend; the empty string selects the default.
func ParseBackend(name string) (Backend, bool) {
	switch name {
	case "", "btree":
		return BackendBTree, true
	case "slice":
		return BackendSlice, true
	case "skiplist":
		return BackendSkipList, true
	case "list":
		return BackendList, true
	default:
		return 0, false
	}
}

// NewOrdered returns an empty ordered table with the given capacity using
// the selected backend. Capacity must be non-negative (a zero-capacity
// table rejects every insert).
func NewOrdered(capacity int, backend Backend) Ordered {
	switch backend {
	case BackendSlice:
		return newSliceTable(capacity)
	case BackendSkipList:
		return newSkipTable(capacity)
	case BackendList:
		return newListTable(capacity)
	default:
		return newBTreeTable(capacity)
	}
}

// sliceTable is the sorted-slice backend.
type sliceTable struct {
	capacity int
	entries  []*Entry // ascending by (Key, Object)
}

var _ Ordered = (*sliceTable)(nil)

func newSliceTable(capacity int) *sliceTable {
	return &sliceTable{
		capacity: capacity,
		entries:  make([]*Entry, 0, capacity),
	}
}

func (t *sliceTable) Len() int { return len(t.entries) }
func (t *sliceTable) Cap() int { return t.capacity }

// scan finds the slice index of obj's entry, or -1. The key is unknown, so
// this is a linear walk — legacy/test path only (see the Ordered comment).
func (t *sliceTable) scan(obj ids.ObjectID) int {
	for i, e := range t.entries {
		if e.Object == obj {
			return i
		}
	}
	return -1
}

func (t *sliceTable) Contains(obj ids.ObjectID) bool { return t.scan(obj) >= 0 }

func (t *sliceTable) Get(obj ids.ObjectID) *Entry {
	if i := t.scan(obj); i >= 0 {
		return t.entries[i]
	}
	return nil
}

// position finds the index of e in the slice via one binary search on
// (Key, Object). e must be present.
func (t *sliceTable) position(e *Entry) int {
	i := sort.Search(len(t.entries), func(i int) bool {
		return !less(t.entries[i], e)
	})
	// i now points at the first entry not less than e, which is e itself
	// because (Key, Object) is unique per table.
	return i
}

func (t *sliceTable) Remove(obj ids.ObjectID) *Entry {
	i := t.scan(obj)
	if i < 0 {
		return nil
	}
	e := t.entries[i]
	t.removeAt(i)
	return e
}

func (t *sliceTable) RemoveEntry(e *Entry) { t.removeAt(t.position(e)) }

func (t *sliceTable) removeAt(i int) {
	copy(t.entries[i:], t.entries[i+1:])
	t.entries[len(t.entries)-1] = nil
	t.entries = t.entries[:len(t.entries)-1]
}

func (t *sliceTable) Insert(e *Entry) *Entry {
	if t.capacity == 0 {
		return e
	}
	i := sort.Search(len(t.entries), func(i int) bool {
		return !less(t.entries[i], e)
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
	if len(t.entries) > t.capacity {
		return t.RemoveWorst()
	}
	return nil
}

func (t *sliceTable) RemoveWorst() *Entry {
	if len(t.entries) == 0 {
		return nil
	}
	e := t.entries[len(t.entries)-1]
	t.entries[len(t.entries)-1] = nil
	t.entries = t.entries[:len(t.entries)-1]
	return e
}

func (t *sliceTable) WorstKey() (int64, bool) {
	if len(t.entries) == 0 {
		return 0, false
	}
	return t.entries[len(t.entries)-1].Key(), true
}

func (t *sliceTable) Each(fn func(*Entry) bool) {
	for _, e := range t.entries {
		if !fn(e) {
			return
		}
	}
}

func (t *sliceTable) Entries() []*Entry {
	out := make([]*Entry, len(t.entries))
	copy(out, t.entries)
	return out
}
