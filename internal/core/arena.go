package core

import "github.com/adc-sim/adc/internal/ids"

// entryArena slab-allocates mapping-table entries and recycles the ones the
// system forgets (Outcome.Dropped), mirroring internal/msg.Freelist: one
// arena per Tables, single-threaded like the proxy that owns it, so no
// locking. In steady state — full tables, every first sighting displacing a
// forgotten one — Update allocates nothing: the dropped entry's slot is
// reused for the next newcomer.
//
// Entries are handed out from contiguous slabs, so a proxy's live entries
// cluster in memory instead of being scattered one garbage-collected
// allocation at a time.
type entryArena struct {
	// slab is the tail of the current slab still to be handed out.
	slab []Entry
	// free holds recycled entries.
	free []*Entry
}

// arenaSlab is the slab size in entries. 1024 entries ≈ 80 KB per slab,
// small against the reference 50k-entry table budget but large enough to
// make slab allocation disappear from profiles.
const arenaSlab = 1024

// get returns a fresh first-sighting entry (paper Fig. 8 Part 4: AVG 0,
// HITS 1, LAST = now), recycling a dropped entry when one is available.
func (a *entryArena) get(obj ids.ObjectID, loc ids.NodeID, now int64) *Entry {
	if n := len(a.free); n > 0 {
		e := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		e.Object, e.Location, e.Last, e.Avg, e.Hits = obj, loc, now, 0, 1
		return e
	}
	if len(a.slab) == 0 {
		a.slab = make([]Entry, arenaSlab)
	}
	e := &a.slab[0]
	a.slab = a.slab[1:]
	e.Object, e.Location, e.Last, e.Avg, e.Hits = obj, loc, now, 0, 1
	return e
}

// put recycles e. The caller must not touch the entry afterwards; it is
// zeroed immediately so dangling reads fail loudly in tests.
func (a *entryArena) put(e *Entry) {
	*e = Entry{}
	a.free = append(a.free, e)
}
