// Command adcsim runs one distributed-caching simulation and prints a
// summary report: algorithm, hit rate, hops, per-proxy statistics.
//
// Examples:
//
//	adcsim                              # ADC, paper-scale tables, 400k requests
//	adcsim -algo carp -requests 1000000
//	adcsim -proxies 8 -single 5000 -multiple 5000 -caching 2000
//	adcsim -runtime tcp                 # every hop over loopback TCP
//	adcsim -replay trace.bin            # replay a saved workload trace
//	adcsim -trace -trace-out t.jsonl    # record a request-path trace
//	adcsim -config experiment.json      # run a JSON-described experiment
//	adcsim -write-config exp.json       # write the default experiment file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"github.com/adc-sim/adc"
	"github.com/adc-sim/adc/internal/clilog"
	"github.com/adc-sim/adc/internal/cluster"
	"github.com/adc-sim/adc/internal/config"
	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/profiling"
	"github.com/adc-sim/adc/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adcsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adcsim", flag.ContinueOnError)
	var (
		algo         = fs.String("algo", "adc", "algorithm: adc, carp or chash")
		proxies      = fs.Int("proxies", 5, "number of proxy agents")
		single       = fs.Int("single", 2000, "single-table size (entries)")
		multiple     = fs.Int("multiple", 2000, "multiple-table size (entries)")
		caching      = fs.Int("caching", 1000, "caching-table / LRU cache size (entries)")
		maxHops      = fs.Int("maxhops", 0, "forwarding bound (0 = unbounded)")
		seed         = fs.Int64("seed", 1, "random seed")
		runtime      = fs.String("runtime", "sequential", "runtime: sequential, agents, tcp, vtime or parallel")
		shards       = fs.Int("shards", 0, "worker shards for -runtime parallel (0 = one per CPU)")
		backend      = fs.String("backend", "", "ordered-table backend: btree (default), slice, skiplist or list")
		entry        = fs.String("entry", "random", "entry policy: random, round-robin or fixed")
		requests     = fs.Int("requests", 400_000, "synthetic workload length")
		population   = fs.Int("population", 1000, "hot object population of the request phases")
		replayPath   = fs.String("replay", "", "replay a binary workload trace instead of generating")
		traceOn      = fs.Bool("trace", false, "record a request-path trace (requires -runtime sequential or vtime)")
		traceOut     = fs.String("trace-out", "trace.jsonl", "request-path trace output file (JSON Lines; with -trace)")
		metricsEvery = fs.Int64("metrics-every", 0, "collect windowed time-series metrics every this many virtual ticks (requires -runtime vtime)")
		metricsOut   = fs.String("metrics-out", "", "write the time series as CSV here (default: stdout)")
		verbose      = fs.Bool("v", false, "verbose: per-proxy statistics and debug logging")
		quiet        = fs.Bool("quiet", false, "suppress the run summary and notices (machine outputs only)")
		configPath   = fs.String("config", "", "run a JSON experiment file instead of flags")
		writeCfg     = fs.String("write-config", "", "write the default experiment file and exit")
		dump         = fs.Int("dump", -1, "after an ADC run, dump the top rows of this proxy's tables (paper Figs. 1–3)")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = fs.String("memprofile", "", "write a heap profile to this file")
		faultSpec    = fs.String("faults", "", "fault plan, e.g. 'loss=0.01,jitter=2000,crash=0@2000000-4000000!' (requires -runtime vtime)")
	)
	var recoverySpec optionalString
	fs.Var(&recoverySpec, "recovery", "enable the recovery protocol; optionally 'timeout=400000,retries=8,backoff=2,ttl=1000000' (requires -runtime vtime)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	log := clilog.FromFlags(*verbose, *quiet)

	if *writeCfg != "" {
		if err := config.Default().Save(*writeCfg); err != nil {
			return err
		}
		fmt.Printf("wrote default experiment to %s\n", *writeCfg)
		return nil
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	if *configPath != "" {
		if err := runConfigFile(*configPath, *verbose); err != nil {
			return err
		}
		return stopProfiles()
	}
	if *dump >= 0 {
		if err := runWithDump(dumpOptions{
			algo: *algo, proxies: *proxies,
			single: *single, multiple: *multiple, caching: *caching,
			maxHops: *maxHops, seed: *seed,
			requests: *requests, population: *population,
			proxyIdx: *dump, backend: *backend,
		}); err != nil {
			return err
		}
		return stopProfiles()
	}

	var src adc.Source
	if *replayPath != "" {
		loaded, err := adc.LoadTraceFile(*replayPath)
		if err != nil {
			return err
		}
		src = loaded
	} else {
		gen, err := adc.NewWorkload(adc.WorkloadConfig{
			Requests:   *requests,
			Population: *population,
			Seed:       *seed,
		})
		if err != nil {
			return err
		}
		src = gen
	}

	cfg := adc.Config{
		Algorithm:     adc.Algorithm(*algo),
		Proxies:       *proxies,
		SingleTable:   *single,
		MultipleTable: *multiple,
		CachingTable:  *caching,
		MaxHops:       *maxHops,
		Seed:          *seed,
		Entry:         adc.EntryPolicy(*entry),
		Runtime:       adc.Runtime(*runtime),
		Backend:       adc.TableBackend(*backend),
		MetricsEvery:  *metricsEvery,
		Shards:        *shards,
	}
	var tracer *adc.Tracer
	if *traceOn {
		tracer = adc.NewTracer()
		cfg.Tracer = tracer
	}
	if *faultSpec != "" {
		if *runtime != "vtime" {
			return fmt.Errorf("-faults requires -runtime vtime")
		}
		plan, err := adc.ParseFaultSpec(*faultSpec)
		if err != nil {
			return err
		}
		cfg.Faults = plan
	}
	if recoverySpec.set {
		if *runtime != "vtime" {
			return fmt.Errorf("-recovery requires -runtime vtime")
		}
		rec, err := adc.ParseRecoverySpec(recoverySpec.value)
		if err != nil {
			return err
		}
		cfg.Recovery = rec
	}
	res, err := adc.Run(cfg, src)
	if err != nil {
		return err
	}
	if err := stopProfiles(); err != nil {
		return err
	}
	if tracer != nil {
		if err := writeTraceFile(*traceOut, tracer); err != nil {
			return err
		}
		log.Infof("wrote %d trace events to %s", tracer.Len(), *traceOut)
	}
	if *metricsEvery > 0 {
		if err := writeBuckets(*metricsOut, res.Buckets, log); err != nil {
			return err
		}
	}
	if *quiet {
		return nil
	}

	fmt.Printf("algorithm      %s (%d proxies, runtime %s)\n", *algo, *proxies, *runtime)
	fmt.Printf("tables         single=%d multiple=%d caching=%d\n", *single, *multiple, *caching)
	fmt.Printf("requests       %d\n", res.Requests)
	fmt.Printf("hit rate       %.4f (%d hits, %d from origin)\n", res.HitRate, res.Hits, res.OriginResolved)
	fmt.Printf("hops/request   %.3f\n", res.Hops)
	fmt.Printf("path length    %.3f proxies\n", res.PathLen)
	fmt.Printf("elapsed        %v (%.0f req/s)\n",
		res.Elapsed.Round(1e6), float64(res.Requests)/res.Elapsed.Seconds())
	if cfg.Faults != nil || cfg.Recovery != nil {
		fmt.Printf("completion     %.4f (%d of %d injected)\n", res.Completion, res.Requests, res.Injected)
		fmt.Printf("faults         dropped=%d crashes=%d restarts=%d\n", res.Dropped, res.Crashes, res.Restarts)
		fmt.Printf("recovery       timeouts=%d retries=%d abandoned=%d stale-replies=%d leaked-pending=%d\n",
			res.Timeouts, res.Retries, res.Abandoned, res.StaleReplies, res.LeakedPending)
	} else {
		// Without fault injection these must both be zero; a nonzero value
		// means protocol state leaked and should never hide behind -v.
		var unexpected uint64
		for _, s := range res.ProxyStats {
			unexpected += s.UnexpectedReplies
		}
		if res.LeakedPending > 0 || unexpected > 0 {
			fmt.Printf("WARNING        leaked-pending=%d unexpected-replies=%d (protocol state leaked; -v for per-proxy detail)\n",
				res.LeakedPending, unexpected)
		}
	}

	if *verbose {
		if err := printProxyStats(res.ProxyStats); err != nil {
			return err
		}
	}
	return nil
}

// writeTraceFile exports a recorded trace as JSON Lines.
func writeTraceFile(path string, t *adc.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := adc.WriteTrace(f, t); err != nil {
		f.Close() //nolint:errcheck,gosec // write error takes precedence
		return err
	}
	return f.Close()
}

// writeBuckets emits the time-series buckets as CSV — to a file when path
// is set, else to stdout (the report channel; combine with -quiet to pipe
// it cleanly).
func writeBuckets(path string, buckets []adc.TimeBucket, log *clilog.Logger) error {
	var w io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close() //nolint:errcheck // close error checked below
		w = f
	}
	fmt.Fprintln(w, "start,end,injected,completed,hits,hit_rate,mean_hops,mean_gap,timeouts,retries,abandoned,drops")
	for _, b := range buckets {
		fmt.Fprintf(w, "%d,%d,%d,%d,%d,%.6f,%.4f,%.1f,%d,%d,%d,%d\n",
			b.Start, b.End, b.Injected, b.Completed, b.Hits,
			b.HitRate, b.MeanHops, b.MeanGap,
			b.Timeouts, b.Retries, b.Abandoned, b.Drops)
	}
	if f, ok := w.(*os.File); ok && f != os.Stdout {
		if err := f.Close(); err != nil {
			return err
		}
		log.Infof("wrote %d time-series buckets to %s", len(buckets), path)
	}
	return nil
}

// optionalString is a flag value that remembers whether it was provided at
// all, so `-recovery ”` (defaults) is distinguishable from no flag.
type optionalString struct {
	value string
	set   bool
}

func (o *optionalString) String() string { return o.value }

func (o *optionalString) Set(s string) error {
	o.value = s
	o.set = true
	return nil
}

func printProxyStats(stats []adc.ProxyStats) error {
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "proxy\trequests\tlocal hits\tfwd learned\tfwd random\tfwd origin\tloops\tcache ins\tcache evict")
	for i, s := range stats {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			i, s.Requests, s.LocalHits, s.ForwardLearned, s.ForwardRandom,
			s.ForwardOrigin, s.LoopsDetected, s.CacheInsertions, s.CacheEvictions)
	}
	return w.Flush()
}

type dumpOptions struct {
	algo                      string
	proxies                   int
	single, multiple, caching int
	maxHops                   int
	seed                      int64
	requests, population      int
	proxyIdx                  int
	backend                   string
}

// runWithDump runs via the internal cluster layer so the proxy's mapping
// tables can be rendered afterwards, in the layout of the paper's sample
// figures (Figs. 1–3).
func runWithDump(o dumpOptions) error {
	if o.algo != "adc" {
		return fmt.Errorf("-dump requires the adc algorithm")
	}
	if o.proxyIdx >= o.proxies {
		return fmt.Errorf("-dump proxy %d out of range (0..%d)", o.proxyIdx, o.proxies-1)
	}
	backend, ok := core.ParseBackend(o.backend)
	if !ok {
		return fmt.Errorf("unknown backend %q", o.backend)
	}
	gen, err := workload.New(workload.Config{
		TotalRequests:  o.requests,
		PopulationSize: o.population,
		Seed:           o.seed,
	})
	if err != nil {
		return err
	}
	ccfg := cluster.Config{
		Algorithm:  cluster.ADC,
		NumProxies: o.proxies,
		Tables: core.Config{
			SingleSize:   o.single,
			MultipleSize: o.multiple,
			CachingSize:  o.caching,
			Backend:      backend,
		},
		MaxHops: o.maxHops,
		Seed:    o.seed,
	}
	cl, err := cluster.New(ccfg, gen)
	if err != nil {
		return err
	}
	res, err := cl.Run()
	if err != nil {
		return err
	}
	fmt.Printf("hit rate %.4f, hops %.3f over %d requests\n\n",
		res.Summary.HitRate, res.Summary.Hops, res.Summary.Requests)

	p := cl.ADCProxies()[o.proxyIdx]
	now := p.LocalTime()
	fmt.Printf("mapping tables of %v at local time %d (top 10 rows each):\n\n", p.ID(), now)
	tb := p.Tables()
	if err := core.DumpTable(os.Stdout, "Caching Table", head(tb.Caching().Entries(), 10), now); err != nil {
		return err
	}
	fmt.Println()
	if err := core.DumpTable(os.Stdout, "Multiple-Table", head(tb.Multiple().Entries(), 10), now); err != nil {
		return err
	}
	fmt.Println()
	return core.DumpTable(os.Stdout, "Single-Table", head(tb.Single().Entries(), 10), now)
}

func head(entries []*core.Entry, n int) []*core.Entry {
	if len(entries) > n {
		return entries[:n]
	}
	return entries
}

// runConfigFile executes a JSON-described experiment via the internal
// cluster layer (the config schema maps 1:1 onto it).
func runConfigFile(path string, verbose bool) error {
	file, err := config.Load(path)
	if err != nil {
		return err
	}
	ccfg, wcfg, err := file.Build()
	if err != nil {
		return err
	}
	gen, err := workload.New(wcfg)
	if err != nil {
		return err
	}
	res, err := cluster.Run(ccfg, gen)
	if err != nil {
		return err
	}
	fmt.Printf("experiment     %s\n", path)
	fmt.Printf("algorithm      %s (%d proxies, runtime %s)\n",
		ccfg.Algorithm, ccfg.NumProxies, ccfg.Runtime)
	fmt.Printf("requests       %d\n", res.Summary.Requests)
	fmt.Printf("hit rate       %.4f\n", res.Summary.HitRate)
	fmt.Printf("hops/request   %.3f\n", res.Summary.Hops)
	fmt.Printf("elapsed        %v\n", res.Elapsed.Round(1e6))
	if verbose {
		stats := make([]adc.ProxyStats, len(res.ProxyStats))
		for i, s := range res.ProxyStats {
			stats[i] = adc.ProxyStats(s)
		}
		return printProxyStats(stats)
	}
	return nil
}
