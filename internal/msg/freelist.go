package msg

import "github.com/adc-sim/adc/internal/ids"

// Freelist recycles Request and Reply structs and their Path backing
// arrays. The engines in internal/sim own one freelist each and are
// single-threaded, so no locking is needed — which is exactly why this is
// not a sync.Pool. In the steady state of a closed-loop run every message
// of a request chain comes from and returns to the freelist, making the
// simulation hot path allocation-free.
//
// Ownership follows the mutate-and-forward rule documented in the package
// comment: a handler owns the message it received. Putting a message back
// is the explicit final step of that ownership — the caller must not touch
// the message afterwards, and must first nil any Path it handed to another
// message.
type Freelist struct {
	requests []*Request
	replies  []*Reply
	paths    [][]ids.NodeID
}

// pathCap is the initial capacity of freshly allocated Path slices; deep
// random walks grow them once and the grown array is recycled thereafter.
const pathCap = 8

// GetRequest returns a zeroed request with an empty Path ready to append
// to, reusing recycled memory when available.
func (f *Freelist) GetRequest() *Request {
	if n := len(f.requests); n > 0 {
		r := f.requests[n-1]
		f.requests[n-1] = nil
		f.requests = f.requests[:n-1]
		r.Path = f.getPath()
		return r
	}
	return &Request{Path: f.getPath()}
}

// PutRequest recycles r. Any Path still attached is reclaimed with it, so
// callers that transferred the path to a reply must nil r.Path first.
func (f *Freelist) PutRequest(r *Request) {
	f.putPath(r.Path)
	*r = Request{}
	f.requests = append(f.requests, r)
}

// GetReply returns a zeroed reply, reusing recycled memory when available.
// The caller typically fills it via InitFrom, which installs the request's
// path; no path is attached here.
func (f *Freelist) GetReply() *Reply {
	if n := len(f.replies); n > 0 {
		r := f.replies[n-1]
		f.replies[n-1] = nil
		f.replies = f.replies[:n-1]
		return r
	}
	return &Reply{}
}

// PutReply recycles r and reclaims its Path backing array (backwarding has
// shrunk the slice to zero length by terminal delivery, but the capacity
// is still warm).
func (f *Freelist) PutReply(r *Reply) {
	f.putPath(r.Path)
	*r = Reply{}
	f.replies = append(f.replies, r)
}

func (f *Freelist) getPath() []ids.NodeID {
	if n := len(f.paths); n > 0 {
		p := f.paths[n-1]
		f.paths[n-1] = nil
		f.paths = f.paths[:n-1]
		return p[:0]
	}
	return make([]ids.NodeID, 0, pathCap)
}

func (f *Freelist) putPath(p []ids.NodeID) {
	if cap(p) == 0 {
		return
	}
	f.paths = append(f.paths, p[:0])
}
