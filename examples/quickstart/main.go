// Quickstart: build a five-proxy ADC system, replay a synthetic web
// workload against it, and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/adc-sim/adc"
)

func main() {
	// A deterministic synthetic workload in the paper's three-phase
	// shape: a fill phase of fresh objects, then two request phases of
	// Zipf-skewed repeats (the second replays the first).
	workload, err := adc.NewWorkload(adc.WorkloadConfig{
		Requests:   200_000,
		Population: 1_000, // hot objects in the request phases
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Five autonomous proxy agents with the paper's table layout
	// (single/multiple/caching), scaled to 1/10.
	result, err := adc.Run(adc.Config{
		Algorithm:     adc.ADC,
		Proxies:       5,
		SingleTable:   2_000,
		MultipleTable: 2_000,
		CachingTable:  1_000,
		Seed:          42,
	}, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("requests     %d\n", result.Requests)
	fmt.Printf("hit rate     %.3f\n", result.HitRate)
	fmt.Printf("hops/request %.2f\n", result.Hops)
	fmt.Printf("elapsed      %v\n", result.Elapsed.Round(1e6))

	// The same API runs the hashing baseline for comparison.
	workload2, err := adc.NewWorkload(adc.WorkloadConfig{
		Requests:   200_000,
		Population: 1_000,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := adc.Run(adc.Config{
		Algorithm:    adc.CARP,
		Proxies:      5,
		CachingTable: 1_000,
		Seed:         42,
	}, workload2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCARP hashing baseline: hit rate %.3f, hops/request %.2f\n",
		baseline.HitRate, baseline.Hops)
	fmt.Printf("ADC searches cost %+.2f hops vs hashing (the paper's ≈2-hop premium)\n",
		result.Hops-baseline.Hops)
}
