package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
)

func TestRequestRoundTrip(t *testing.T) {
	in := &msg.Request{
		To:      3,
		ID:      ids.NewRequestID(2, 99),
		Object:  1 << 50,
		Client:  ids.Client(2),
		Sender:  1,
		Path:    []ids.NodeID{0, 4, 0},
		Hops:    7,
		MaxHops: 16,
	}
	frame, err := Encode(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n in: %+v\nout: %+v", in, out)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	in := &msg.Reply{
		To:         ids.Client(0),
		ID:         ids.NewRequestID(0, 1),
		Object:     42,
		Client:     ids.Client(0),
		Resolver:   ids.None,
		Cached:     true,
		FromOrigin: true,
		Path:       []ids.NodeID{2},
		Hops:       5,
		PathLen:    3,
	}
	frame, err := Encode(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n in: %+v\nout: %+v", in, out)
	}
}

func TestEmptyPathDecodesAsNil(t *testing.T) {
	in := &msg.Request{To: 1, Path: nil}
	frame, _ := Encode(nil, in)
	out, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out.(*msg.Request).Path != nil {
		t.Error("empty path must decode as nil")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil frame: %v", err)
	}
	if _, err := Decode([]byte{0x7F}); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("bad kind: %v", err)
	}
	// Truncate a valid frame at every position; must error, not panic.
	frame, _ := Encode(nil, &msg.Request{
		To: 3, ID: 1, Object: 2, Client: ids.Client(0), Sender: 1,
		Path: []ids.NodeID{1, 2, 3},
	})
	for i := 1; i < len(frame); i++ {
		if _, err := Decode(frame[:i]); err == nil {
			t.Errorf("truncation at %d silently decoded", i)
		}
	}
}

func TestDecodeHugePathCount(t *testing.T) {
	// A frame claiming a 2^40-entry path must be rejected, not allocate.
	frame, _ := Encode(nil, &msg.Request{To: 1})
	// Strip the trailing zero path count and append a huge one.
	frame = frame[:len(frame)-1]
	frame = append(frame, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	if _, err := Decode(frame); err == nil {
		t.Error("huge path count must fail")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []msg.Message{
		&msg.Request{To: 1, Object: 5, Client: ids.Client(0), Sender: ids.Client(0)},
		&msg.Reply{To: ids.Client(0), Object: 5, Resolver: 1, Cached: true},
		&msg.Request{To: 2, Object: 6, Path: []ids.NodeID{0, 1}},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("message %d:\nwant %+v\n got %+v", i, want, got)
		}
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("reading past the stream must fail")
	}
}

func TestReadMessageRejectsOversizeFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMessage(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	prop := func(to int16, id uint64, obj uint64, hops uint8, pathRaw []int8) bool {
		path := make([]ids.NodeID, len(pathRaw))
		for i, p := range pathRaw {
			path[i] = ids.NodeID(p)
		}
		if len(path) == 0 {
			path = nil
		}
		in := &msg.Request{
			To: ids.NodeID(to), ID: ids.RequestID(id), Object: ids.ObjectID(obj),
			Client: ids.Client(1), Sender: ids.NodeID(to), Hops: int(hops), Path: path,
		}
		frame, err := Encode(nil, in)
		if err != nil {
			return false
		}
		out, err := Decode(frame)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReplyReplicasRoundTrip(t *testing.T) {
	in := &msg.Reply{
		To:        1,
		ID:        ids.NewRequestID(0, 7),
		Object:    99,
		Client:    ids.Client(2),
		Resolver:  3,
		Cached:    true,
		Replicate: true,
		Path:      []ids.NodeID{0, 4},
		Replicas:  []ids.NodeID{1, 2, 5},
		Hops:      4,
		PathLen:   2,
	}
	frame, err := Encode(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n in: %+v\nout: %+v", in, out)
	}

	// Stock replies (no replicas, no Replicate bit) must decode with a
	// nil set, keeping DeepEqual-based determinism checks happy.
	stock := &msg.Reply{To: 1, Resolver: ids.None, Path: []ids.NodeID{2}}
	frame, _ = Encode(nil, stock)
	out, err = Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	rep := out.(*msg.Reply)
	if rep.Replicas != nil || rep.Replicate {
		t.Errorf("stock reply decoded with replicas %v replicate %v", rep.Replicas, rep.Replicate)
	}
}
