package adc_test

import (
	"fmt"
	"log"

	"github.com/adc-sim/adc"
)

// The most basic use: simulate a five-proxy ADC system over a synthetic
// web workload and read off the headline metrics.
func ExampleRun() {
	workload, err := adc.NewWorkload(adc.WorkloadConfig{
		Requests:   50_000,
		Population: 500,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := adc.Run(adc.Config{
		Algorithm:     adc.ADC,
		Proxies:       5,
		SingleTable:   1_000,
		MultipleTable: 1_000,
		CachingTable:  500,
		Seed:          42,
	}, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d requests deterministically\n", result.Requests)
	// Output: completed 50000 requests deterministically
}

// Traces make experiments exactly repeatable: the same stream replayed
// through the same configuration gives identical results.
func ExampleSaveTraceFile() {
	workload, err := adc.NewWorkload(adc.WorkloadConfig{Requests: 10_000, Population: 100})
	if err != nil {
		log.Fatal(err)
	}
	path := "/tmp/adc-example-trace.bin"
	if err := adc.SaveTraceFile(path, workload); err != nil {
		log.Fatal(err)
	}
	replay, err := adc.LoadTraceFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace holds %d requests\n", replay.Total())
	// Output: trace holds 10000 requests
}

// The experiment runners regenerate the paper's figures; Compare is
// Figs. 11–12 (ADC versus the CARP hashing baseline).
func ExampleCompare() {
	cmp, err := adc.Compare(adc.Profile{Scale: 0.01, Seed: 1}, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ADC pays more hops than hashing: %v\n", cmp.ADCHops > cmp.HashingHops)
	// Output: ADC pays more hops than hashing: true
}
