package clilog

import (
	"bytes"
	"strings"
	"testing"
)

func TestLevels(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.Infof("notice %d", 1)
	l.Debugf("detail %d", 2)
	out := buf.String()
	if !strings.Contains(out, "notice 1") {
		t.Errorf("info line missing: %q", out)
	}
	if strings.Contains(out, "detail") {
		t.Errorf("debug line emitted at info level: %q", out)
	}

	buf.Reset()
	q := New(&buf, LevelQuiet)
	q.Infof("notice")
	q.Progressf("progress")
	q.EndProgress()
	if buf.Len() != 0 {
		t.Errorf("quiet logger wrote %q", buf.String())
	}

	buf.Reset()
	d := New(&buf, LevelDebug)
	d.Debugf("detail")
	if !strings.Contains(buf.String(), "detail") {
		t.Errorf("debug line missing at debug level: %q", buf.String())
	}
}

func TestEnabled(t *testing.T) {
	l := New(&bytes.Buffer{}, LevelInfo)
	if !l.Enabled(LevelQuiet) || !l.Enabled(LevelInfo) || l.Enabled(LevelDebug) {
		t.Error("Enabled thresholds wrong at LevelInfo")
	}
}

func TestFromFlagsVerboseWins(t *testing.T) {
	cases := []struct {
		verbose, quiet bool
		want           Level
	}{
		{false, false, LevelInfo},
		{false, true, LevelQuiet},
		{true, false, LevelDebug},
		{true, true, LevelDebug}, // -v beats -quiet
	}
	for _, c := range cases {
		if got := FromFlags(c.verbose, c.quiet).lvl; got != c.want {
			t.Errorf("FromFlags(%v,%v) level = %d, want %d", c.verbose, c.quiet, got, c.want)
		}
	}
}

func TestProgressLineLifecycle(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.Progressf("run %d/%d", 1, 10)
	l.Progressf("run %d/%d", 2, 10)
	if strings.Contains(buf.String(), "\n") {
		t.Errorf("progress lines must not emit newlines while open: %q", buf.String())
	}
	// The next regular line closes the open progress line first, so the
	// notice never lands on top of it.
	l.Infof("wrote out.csv")
	out := buf.String()
	if !strings.Contains(out, "run 2/10\nwrote out.csv\n") {
		t.Errorf("info did not terminate the progress line: %q", out)
	}

	// EndProgress terminates too, and is a no-op when nothing is open.
	buf.Reset()
	l.Progressf("x")
	l.EndProgress()
	l.EndProgress()
	if got := buf.String(); got != "\rx\n" {
		t.Errorf("EndProgress output %q, want \"\\rx\\n\"", got)
	}
}
