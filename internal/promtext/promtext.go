// Package promtext is a zero-dependency encoder and parser for the
// Prometheus text exposition format (version 0.0.4) — the `/metrics`
// wire format every Prometheus-compatible scraper understands.
//
// The farm's proxies expose their counters, gauges and per-stage latency
// histograms through this package (internal/httpproxy registers /metrics
// on every proxy's mux), cmd/adctop scrapes and parses it back for the
// live cluster dashboard, and the telemetry-smoke CI job lints every
// proxy's output with the Parse/Lint half. Importing the real Prometheus
// client would drag in ~20 transitive dependencies for what is, at heart,
// a line format; the full format spec fits in this file instead.
//
// Format reminders encoded here:
//
//   - `# HELP name text` — help text escapes `\` and newline.
//   - `# TYPE name counter|gauge|histogram|untyped`.
//   - `name{label="value"} 1.5` — label values escape `\`, `"`, newline.
//   - Histograms expand to `name_bucket{le="..."}` cumulative buckets
//     (an `le="+Inf"` bucket is mandatory and equals `name_count`),
//     plus `name_sum` and `name_count`.
package promtext

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label is one name="value" pair. Writer emits labels in the order given;
// callers wanting canonical output should pass them sorted.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Metric types as spelled in # TYPE lines.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
	TypeUntyped   = "untyped"
)

// Writer streams one exposition document. Families are declared with
// Counter/Gauge/HistogramFamily and then filled with Sample/Histogram
// calls; errors are sticky and surfaced by Flush.
type Writer struct {
	w      *bufio.Writer
	family string
	err    error
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Counter declares a counter family; subsequent Sample calls emit its
// series.
func (w *Writer) Counter(name, help string) { w.header(name, help, TypeCounter) }

// Gauge declares a gauge family.
func (w *Writer) Gauge(name, help string) { w.header(name, help, TypeGauge) }

// HistogramFamily declares a histogram family; fill it with Histogram.
func (w *Writer) HistogramFamily(name, help string) { w.header(name, help, TypeHistogram) }

func (w *Writer) header(name, help, typ string) {
	if w.err != nil {
		return
	}
	w.family = name
	if help != "" {
		w.writeString("# HELP " + name + " " + escapeHelp(help) + "\n")
	}
	w.writeString("# TYPE " + name + " " + typ + "\n")
}

// Sample emits one series of the current family. A family with no Sample
// calls is a legal empty series — the TYPE line alone is valid exposition.
func (w *Writer) Sample(v float64, labels ...Label) {
	w.sample(w.family, v, labels)
}

// sample writes name{labels} value.
func (w *Writer) sample(name string, v float64, labels []Label) {
	if w.err != nil {
		return
	}
	w.writeString(name)
	w.writeLabels(labels, "", 0)
	w.writeString(" " + formatValue(v) + "\n")
}

// Histogram emits one histogram series of the current family: cumulative
// bucket counts at the given upper bounds, the mandatory +Inf bucket, and
// the _sum/_count pair. bounds and cum must be parallel; count is the
// total observation count (the +Inf bucket), sum the sum of observations.
func (w *Writer) Histogram(bounds []float64, cum []uint64, count uint64, sum float64, labels ...Label) {
	if w.err != nil {
		return
	}
	name := w.family
	for i, b := range bounds {
		w.writeString(name + "_bucket")
		w.writeLabels(labels, "le", b)
		w.writeString(" " + strconv.FormatUint(cum[i], 10) + "\n")
	}
	w.writeString(name + "_bucket")
	w.writeLabels(labels, "le", math.Inf(1))
	w.writeString(" " + strconv.FormatUint(count, 10) + "\n")
	w.writeString(name + "_sum")
	w.writeLabels(labels, "", 0)
	w.writeString(" " + formatValue(sum) + "\n")
	w.writeString(name + "_count")
	w.writeLabels(labels, "", 0)
	w.writeString(" " + strconv.FormatUint(count, 10) + "\n")
}

// writeLabels renders {a="b",...}, appending an le label when leName is
// non-empty. No braces are emitted for a label-free series.
func (w *Writer) writeLabels(labels []Label, leName string, le float64) {
	hasLe := leName != ""
	if len(labels) == 0 && !hasLe {
		return
	}
	w.writeString("{")
	for i, l := range labels {
		if i > 0 {
			w.writeString(",")
		}
		w.writeString(l.Name + `="` + escapeLabel(l.Value) + `"`)
	}
	if hasLe {
		if len(labels) > 0 {
			w.writeString(",")
		}
		w.writeString(leName + `="` + formatValue(le) + `"`)
	}
	w.writeString("}")
}

func (w *Writer) writeString(s string) {
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

// Flush drains the buffer and returns the first error encountered.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// formatValue renders a sample value: shortest round-trip form, with the
// spec's spellings for the special values.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes help text: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Bucket is one cumulative histogram bucket for quantile estimation.
type Bucket struct {
	// LE is the bucket's inclusive upper bound (+Inf for the last).
	LE float64
	// Cum is the cumulative observation count at or below LE.
	Cum uint64
}

// HistQuantile estimates the q-th quantile from cumulative buckets sorted
// by LE (the shape Parse returns via Family.Buckets). It interpolates
// linearly inside the containing bucket; a quantile landing in the +Inf
// bucket reports the highest finite bound. Returns 0 for empty data.
func HistQuantile(buckets []Bucket, q float64) float64 {
	if len(buckets) == 0 || q < 0 || q > 1 {
		return 0
	}
	total := buckets[len(buckets)-1].Cum
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var prevBound float64
	var prevCum uint64
	for _, b := range buckets {
		if float64(b.Cum) >= target {
			if math.IsInf(b.LE, 1) {
				return prevBound
			}
			in := b.Cum - prevCum
			if in == 0 {
				return b.LE
			}
			frac := (target - float64(prevCum)) / float64(in)
			return prevBound + frac*(b.LE-prevBound)
		}
		prevBound, prevCum = b.LE, b.Cum
	}
	return prevBound
}

// sortBuckets orders buckets by bound (used by the parser so HistQuantile
// sees monotone input even if the exposition interleaved series).
func sortBuckets(b []Bucket) {
	sort.Slice(b, func(i, j int) bool { return b[i].LE < b[j].LE })
}
