package obs

import (
	"fmt"
	"io"
	"sort"

	"github.com/adc-sim/adc/internal/ids"
)

// Attempt is one transmission of a logical request: the events carrying one
// RequestID, from inject/retry to delivery, timeout, or silence.
type Attempt struct {
	ID     ids.RequestID
	Events []Event

	Delivered bool
	TimedOut  bool
	Abandoned bool
}

// Tree is one logical request: the first attempt plus every retransmission
// chained to it through Retry.Prev links (the recovery protocol issues each
// retry under a fresh RequestID, so without the links a lossy trace would
// fall apart into orphan fragments).
type Tree struct {
	Obj    ids.ObjectID
	Client ids.NodeID
	// Attempts in issue order; Attempts[0] is the original transmission.
	Attempts []*Attempt
	// Orphan marks a tree whose first attempt was never seen being
	// injected — either the trace started mid-flight or a Retry referenced
	// an unknown predecessor.
	Orphan bool
}

// Delivered reports whether any attempt of the tree completed.
func (t *Tree) Delivered() bool {
	for _, a := range t.Attempts {
		if a.Delivered {
			return true
		}
	}
	return false
}

// BuildTrees reconstructs logical request trees from a trace. Events are
// processed in Seq order; events without a request ID (invalidations,
// crash-time drops with no decoded message) are ignored.
func BuildTrees(events []Event) []*Tree {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })

	attempts := make(map[ids.RequestID]*Attempt)
	owner := make(map[ids.RequestID]*Tree)
	var trees []*Tree

	place := func(e Event, orphanOK bool) *Attempt {
		a := attempts[e.Req]
		if a == nil {
			a = &Attempt{ID: e.Req}
			attempts[e.Req] = a
			t := &Tree{Obj: e.Obj, Client: clientNode(e.Req), Attempts: []*Attempt{a}, Orphan: orphanOK}
			owner[e.Req] = t
			trees = append(trees, t)
		}
		return a
	}

	for _, e := range sorted {
		if e.Req == 0 {
			continue
		}
		var a *Attempt
		switch e.Kind {
		case KindInject:
			a = attempts[e.Req]
			if a == nil {
				a = &Attempt{ID: e.Req}
				attempts[e.Req] = a
				t := &Tree{Obj: e.Obj, Client: e.Node, Attempts: []*Attempt{a}}
				owner[e.Req] = t
				trees = append(trees, t)
			}
		case KindRetry:
			a = attempts[e.Req]
			if a == nil {
				a = &Attempt{ID: e.Req}
				attempts[e.Req] = a
				if t := owner[e.Prev]; t != nil {
					// The link that keeps a dropped-then-retransmitted
					// request a single tree rather than two orphans.
					t.Attempts = append(t.Attempts, a)
					owner[e.Req] = t
				} else {
					t := &Tree{Obj: e.Obj, Client: e.Node, Attempts: []*Attempt{a}, Orphan: true}
					owner[e.Req] = t
					trees = append(trees, t)
				}
			}
		default:
			a = place(e, true)
		}
		if t := owner[e.Req]; t != nil {
			if t.Obj == 0 {
				t.Obj = e.Obj
			}
			if t.Client == ids.None && e.Req != 0 {
				t.Client = clientNode(e.Req)
			}
		}
		a.Events = append(a.Events, e)
		switch e.Kind {
		case KindDeliver:
			a.Delivered = true
		case KindTimeout:
			a.TimedOut = true
		case KindAbandon:
			a.Abandoned = true
		}
	}
	return trees
}

// TreeFor returns the tree containing the given attempt ID, or nil.
func TreeFor(trees []*Tree, id ids.RequestID) *Tree {
	for _, t := range trees {
		for _, a := range t.Attempts {
			if a.ID == id {
				return t
			}
		}
	}
	return nil
}

// FormatTree renders a request tree as an indented hop listing.
func FormatTree(w io.Writer, t *Tree) {
	status := "in-flight"
	switch {
	case t.Delivered():
		status = "delivered"
	case len(t.Attempts) > 0 && t.Attempts[len(t.Attempts)-1].Abandoned:
		status = "abandoned"
	}
	orphan := ""
	if t.Orphan {
		orphan = " [orphan]"
	}
	fmt.Fprintf(w, "request %v  object %v  client %v  %s%s\n",
		t.Attempts[0].ID, t.Obj, t.Client, status, orphan)
	for i, a := range t.Attempts {
		fmt.Fprintf(w, "  attempt %d  %v%s\n", i+1, a.ID, attemptStatus(a))
		for _, e := range a.Events {
			fmt.Fprintf(w, "    %s\n", FormatEvent(e))
		}
	}
}

func attemptStatus(a *Attempt) string {
	switch {
	case a.Delivered:
		return "  [delivered]"
	case a.Abandoned:
		return "  [abandoned]"
	case a.TimedOut:
		return "  [timed out]"
	default:
		return ""
	}
}

// FormatEvent renders one event as a single human-readable line.
func FormatEvent(e Event) string {
	s := fmt.Sprintf("t=%-10d %-11s %v", e.Time(), e.Kind, e.Node)
	switch e.Kind {
	case KindInject:
		s += fmt.Sprintf(" → %v  %v", e.To, e.Obj)
	case KindRetry:
		s += fmt.Sprintf(" → %v  %v  retry #%d of %v", e.To, e.Obj, e.Arg, e.Prev)
	case KindForward:
		s += fmt.Sprintf(" → %v  (%s, hops=%d)", e.To, ForwardReasonString(e.Arg), e.Hops)
	case KindHit:
		s += fmt.Sprintf("  cached at %v", e.Loc)
	case KindOriginResolve:
		s += "  resolved at origin"
	case KindBackward:
		s += fmt.Sprintf(" → %v  learned %v  %s", e.To, e.Loc, OutcomeString(e.Arg))
	case KindDeliver:
		origin := ""
		if e.Arg&1 != 0 {
			origin = ", from origin"
		}
		s += fmt.Sprintf("  resolver %v (hops=%d%s)", e.Loc, e.Hops, origin)
	case KindDrop:
		s += fmt.Sprintf(" → %v  dropped (%s)", e.To, DropCauseString(e.Arg))
	case KindTimeout:
		s += "  timed out"
	case KindAbandon:
		s += fmt.Sprintf("  abandoned after %d retries", e.Arg)
	case KindExpire:
		s += fmt.Sprintf("  pending entry expired (passes=%d)", e.Arg)
	case KindInvalidate:
		s += fmt.Sprintf("  invalidated %v", e.Obj)
	case KindStaleReply:
		s += "  stale reply discarded"
	}
	return s
}

// clientNode recovers the client NodeID embedded in a RequestID.
func clientNode(r ids.RequestID) ids.NodeID { return ids.Client(r.ClientIndex()) }
