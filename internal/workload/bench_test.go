package workload

import (
	"math/rand"
	"testing"
)

// BenchmarkGeneratorNext bounds the per-request cost of the synthetic
// workload (it sits on the critical path of every simulated request).
func BenchmarkGeneratorNext(b *testing.B) {
	cfg := DefaultConfig(1 << 30)
	cfg.PopulationSize = 100_000 // keep the CDF build out of the picture
	g, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("stream exhausted")
		}
	}
}

// BenchmarkZipfRank isolates the CDF binary-search sampler.
func BenchmarkZipfRank(b *testing.B) {
	z, err := NewZipf(100_000, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Rank(rng)
	}
}
