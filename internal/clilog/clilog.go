// Package clilog is the shared leveled logger of the command-line tools.
//
// The tools' reports — tables, CSV, JSONL — belong on stdout; everything
// about the run itself (progress, notices, debug detail) belongs on
// stderr, so piping a report into a file or another tool never captures
// chatter. Before this split, adcsweep printed notices like "wrote
// out.csv" to stdout, garbling piped CSV. The logger enforces the split:
// it writes only to the writer it was built with (stderr in the CLIs),
// with levels selected by the -v/-quiet flags and no timestamps (the
// driver of a CLI is a human or a Makefile, not a log aggregator).
package clilog

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Level orders the verbosity tiers.
type Level int8

// Levels. Quiet silences everything including progress; Info is the
// default; Debug adds per-step detail behind -v.
const (
	LevelQuiet Level = iota
	LevelInfo
	LevelDebug
)

// Logger writes leveled messages to one writer. The zero value is unusable;
// build with New or FromFlags. Methods are safe for concurrent use.
type Logger struct {
	mu         sync.Mutex
	w          io.Writer
	lvl        Level
	inProgress bool // a \r progress line is open and unterminated
}

// New builds a logger writing to w at the given level.
func New(w io.Writer, lvl Level) *Logger {
	return &Logger{w: w, lvl: lvl}
}

// FromFlags maps the conventional -v/-quiet pair to a stderr logger.
// -v wins if both are set: asking for more detail is the stronger signal.
func FromFlags(verbose, quiet bool) *Logger {
	lvl := LevelInfo
	if quiet {
		lvl = LevelQuiet
	}
	if verbose {
		lvl = LevelDebug
	}
	return New(os.Stderr, lvl)
}

// Enabled reports whether messages at lvl are emitted.
func (l *Logger) Enabled(lvl Level) bool { return lvl <= l.lvl }

// Infof logs a formatted line at the default level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Debugf logs a formatted line visible only with -v.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

func (l *Logger) logf(lvl Level, format string, args ...any) {
	if !l.Enabled(lvl) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closeProgressLocked()
	fmt.Fprintf(l.w, format+"\n", args...)
}

// Progressf rewrites a single carriage-returned status line, shown at the
// default level. A later Infof/Debugf or EndProgress terminates the line
// with a newline so it is never overwritten mid-display.
func (l *Logger) Progressf(format string, args ...any) {
	if !l.Enabled(LevelInfo) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "\r"+format, args...)
	l.inProgress = true
}

// EndProgress terminates an open progress line, if any.
func (l *Logger) EndProgress() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closeProgressLocked()
}

func (l *Logger) closeProgressLocked() {
	if l.inProgress {
		fmt.Fprintln(l.w)
		l.inProgress = false
	}
}
