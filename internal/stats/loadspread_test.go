package stats

import (
	"math"
	"testing"
)

func TestMaxMeanRatio(t *testing.T) {
	if _, err := MaxMeanRatio(nil); err != ErrEmpty {
		t.Fatalf("empty set: got err %v, want ErrEmpty", err)
	}
	if r, err := MaxMeanRatio([]float64{0, 0, 0}); err != nil || r != 0 {
		t.Fatalf("all-zero set: got %v, %v; want 0, nil", r, err)
	}
	if r, _ := MaxMeanRatio([]float64{5, 5, 5, 5}); r != 1 {
		t.Fatalf("even spread: got %v, want 1", r)
	}
	// All load on one of four shards: max/mean = 4.
	if r, _ := MaxMeanRatio([]float64{12, 0, 0, 0}); r != 4 {
		t.Fatalf("fully concentrated: got %v, want 4", r)
	}
	// 2x hotter than the mean.
	if r, _ := MaxMeanRatio([]float64{6, 2, 2, 2}); r != 2 {
		t.Fatalf("hot shard: got %v, want 2", r)
	}
	if r, _ := MaxMeanRatio([]float64{7}); r != 1 {
		t.Fatalf("single shard: got %v, want 1", r)
	}
}

func TestGini(t *testing.T) {
	if _, err := Gini(nil); err != ErrEmpty {
		t.Fatalf("empty set: got err %v, want ErrEmpty", err)
	}
	if g, err := Gini([]float64{0, 0}); err != nil || g != 0 {
		t.Fatalf("all-zero set: got %v, %v; want 0, nil", g, err)
	}
	if g, _ := Gini([]float64{3, 3, 3}); g != 0 {
		t.Fatalf("even spread: got %v, want 0", g)
	}
	// Fully concentrated on one of n shards: Gini = (n-1)/n.
	if g, _ := Gini([]float64{0, 0, 0, 8}); math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("fully concentrated: got %v, want 0.75", g)
	}
	// Known value: {1, 3} has Gini 1/4.
	if g, _ := Gini([]float64{1, 3}); math.Abs(g-0.25) > 1e-12 {
		t.Fatalf("{1,3}: got %v, want 0.25", g)
	}
	// Input order must not matter, and xs must not be mutated.
	xs := []float64{9, 1, 5}
	g1, _ := Gini(xs)
	g2, _ := Gini([]float64{1, 5, 9})
	if g1 != g2 {
		t.Fatalf("order dependence: %v vs %v", g1, g2)
	}
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Fatalf("Gini mutated its input: %v", xs)
	}
}
