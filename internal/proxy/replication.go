package proxy

import (
	"fmt"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
)

// Replication configures the hot-object replication controller — the
// DynamicCache-style control loop layered on stock ADC. Backwarding
// deliberately converges every object to one location (§IV.2), so under
// Zipf traffic the proxy holding the head object saturates while the rest
// of the farm idles. With replication enabled, a holder that sees an object
// run hot pushes copies to recent requesters (piggybacked on the replies it
// is already sending — no new round trips), backwarding advertises the
// resulting location *set*, forwarding picks among the set by
// power-of-two-choices on locally observed per-peer load, and cold replicas
// are dropped back toward the stock single-location state.
//
// The zero value disables the controller entirely; every hook in the
// request path is then a single false branch, keeping stock runs
// byte-identical to pre-replication builds (guarded by the golden
// determinism tests).
type Replication struct {
	// Enabled turns the controller on.
	Enabled bool

	// HotThreshold is how many local cache hits an object must collect
	// within the current window before the holder starts pushing
	// replicas of it. Default 32.
	HotThreshold int

	// MaxReplicas bounds the number of additional holders beyond the
	// primary location that an entry may advertise. Default 3.
	MaxReplicas int

	// Window is the controller's decay period in proxy-local logical
	// time (received requests): every Window requests the per-object hit
	// counts reset, per-peer load estimates halve, and replica copies
	// that stayed cold are dropped. Default 1024.
	Window int64

	// DropThreshold is the minimum window hit count that keeps a replica
	// copy alive; colder copies are shed at the window roll. Default 1
	// (a replica that served nothing this window is dropped).
	DropThreshold int
}

// Normalize fills zero knobs with defaults (only when Enabled).
func (r Replication) Normalize() Replication {
	if !r.Enabled {
		return r
	}
	if r.HotThreshold == 0 {
		r.HotThreshold = 32
	}
	if r.MaxReplicas == 0 {
		r.MaxReplicas = 3
	}
	if r.Window == 0 {
		r.Window = 1024
	}
	if r.DropThreshold == 0 {
		r.DropThreshold = 1
	}
	return r
}

// Validate reports the first configuration error, if any.
func (r Replication) Validate() error {
	if !r.Enabled {
		return nil
	}
	if r.HotThreshold < 1 {
		return fmt.Errorf("replication: hot threshold must be ≥ 1, got %d", r.HotThreshold)
	}
	if r.MaxReplicas < 1 {
		return fmt.Errorf("replication: max replicas must be ≥ 1, got %d", r.MaxReplicas)
	}
	if r.Window < 1 {
		return fmt.Errorf("replication: window must be ≥ 1, got %d", r.Window)
	}
	if r.DropThreshold < 1 {
		return fmt.Errorf("replication: drop threshold must be ≥ 1, got %d", r.DropThreshold)
	}
	return nil
}

// replicator is the per-proxy controller state. All structures are either
// never iterated (maps) or kept sorted (slices), so the controller is fully
// deterministic at a fixed seed.
type replicator struct {
	cfg Replication

	// hot counts local cache hits per object within the current window.
	// Reset (not decayed) at every roll: a hot object re-earns its pushes
	// each window, which is what lets cold replicas reconverge.
	hot map[ids.ObjectID]int

	// tracked is the sorted set of cached objects with replication
	// involvement here (adopted replica copies and primaries that have
	// pushed or learned a replica set); only these are examined at the
	// window roll. trackedSet mirrors it for O(1) membership; it is
	// never iterated.
	tracked    []ids.ObjectID
	trackedSet map[ids.ObjectID]struct{}

	// held marks objects this proxy holds as a pushed replica (for the
	// ReplicaHits counter); never iterated.
	held map[ids.ObjectID]struct{}

	// load estimates recent outgoing demand per peer proxy (indexed by
	// NodeID), halved each window. It is the "load" in
	// power-of-two-choices: purely local knowledge, no control traffic.
	load []uint64
}

func newReplicator(cfg Replication, peers []ids.NodeID) *replicator {
	max := ids.NodeID(0)
	for _, p := range peers {
		if p > max {
			max = p
		}
	}
	return &replicator{
		cfg:        cfg,
		hot:        make(map[ids.ObjectID]int),
		trackedSet: make(map[ids.ObjectID]struct{}),
		held:       make(map[ids.ObjectID]struct{}),
		load:       make([]uint64, int(max)+1),
	}
}

func (r *replicator) track(obj ids.ObjectID) {
	if _, ok := r.trackedSet[obj]; ok {
		return
	}
	r.trackedSet[obj] = struct{}{}
	i := 0
	for i < len(r.tracked) && r.tracked[i] < obj {
		i++
	}
	r.tracked = append(r.tracked, 0)
	copy(r.tracked[i+1:], r.tracked[i:])
	r.tracked[i] = obj
}

func (r *replicator) untrack(i int) {
	delete(r.trackedSet, r.tracked[i])
	delete(r.held, r.tracked[i])
	r.tracked = append(r.tracked[:i], r.tracked[i+1:]...)
}

func (r *replicator) addLoad(to ids.NodeID) {
	if int(to) < len(r.load) {
		r.load[to]++
	}
}

func (r *replicator) loadOf(n ids.NodeID) uint64 {
	if int(n) < len(r.load) {
		return r.load[n]
	}
	return 0
}

// noteHit records a local cache hit for the controller: bump the window hit
// count and credit the replica counter when the copy was pushed here.
func (p *ADC) noteHit(obj ids.ObjectID) {
	r := p.replica
	r.hot[obj]++
	if _, held := r.held[obj]; held {
		p.stats.ReplicaHits++
	}
}

// maybePush decides, on the local-hit backwarding path, whether to push a
// replica of obj to the reply's first backwarding hop — the proxy that
// forwarded the request here, i.e. a recent requester. The push rides the
// reply itself: the object's data is passing through that proxy anyway, so
// adoption costs no extra message. Independently of pushing, a holder with
// a non-empty replica set advertises it so the path learns the location
// set.
//
// prevLoc is the entry's Location before the hit-path Update rewrote it to
// this proxy; when it named another holder (this copy was an adopted
// replica and prevLoc the primary), it is folded into the replica set so
// the candidate holder set survives the rewrite.
func (p *ADC) maybePush(obj ids.ObjectID, prevLoc ids.NodeID, rep *msg.Reply) {
	r := p.replica
	if prevLoc.IsProxy() && prevLoc != p.id {
		if p.tables.AddReplica(obj, prevLoc, r.cfg.MaxReplicas) {
			r.track(obj)
		}
	}
	if r.hot[obj] >= r.cfg.HotThreshold {
		if n := len(rep.Path); n > 0 {
			if target := rep.Path[n-1]; target.IsProxy() && target != p.id {
				if p.tables.AddReplica(obj, target, r.cfg.MaxReplicas) {
					p.stats.ReplicaPushes++
					r.track(obj)
				}
			}
		}
	}
	// A holder's view of the set is authoritative: advertise it even when
	// empty, so remote proxies replace stale beliefs (the drop half of
	// reconvergence rides the same piggyback as the push half). The
	// holder's measured average goes along as the adoption seed.
	if _, replicas, ok := p.tables.ForwardSet(obj); ok {
		rep.Replicas = append(rep.Replicas[:0], replicas...)
		rep.Replicate = true
		if avg, ok := p.tables.AvgOf(obj); ok {
			rep.AvgHint = avg
		}
		if len(replicas) > 0 {
			r.track(obj)
		}
	}
}

// learnReplicas folds a reply's advertised location set into the local
// entry, and — when this proxy is one of the designated replica targets —
// adopts the passing object into the cache. Only replies flagged Replicate
// carry an authoritative set (a holder spoke); those use replace semantics,
// so sets converge as the controller grows and shrinks them, and an
// advertised empty set clears stale beliefs. Replies from non-replicating
// resolutions — a plain origin miss racing the same object — leave the
// learned set alone: wiping it on every such race forces the holder to
// re-push each window and the controller thrashes instead of converging.
func (p *ADC) learnReplicas(rep *msg.Reply) {
	if !rep.Replicate {
		return
	}
	r := p.replica
	if core.ContainsNode(rep.Replicas, p.id) && !p.tables.IsCached(rep.Object) {
		// This proxy was designated a replica holder and the object's
		// data is passing by right now: force it into the cache. The
		// primary stays rep.Resolver; the other designated holders
		// become our replica set.
		out, adopted := p.tables.ForceCache(rep.Object, rep.Resolver, p.localTime, rep.AvgHint)
		p.recordOutcome(out)
		if adopted {
			p.tables.SetReplicas(rep.Object, rep.Replicas, p.id, r.cfg.MaxReplicas)
			r.held[rep.Object] = struct{}{}
			r.track(rep.Object)
			return
		}
	}
	// Non-designated path proxy: learn the advertised set (primary =
	// Resolver is already the entry's Location via the Update above).
	p.tables.SetReplicas(rep.Object, rep.Replicas, p.id, r.cfg.MaxReplicas)
	if p.tables.IsCached(rep.Object) && len(rep.Replicas) > 0 {
		r.track(rep.Object)
	}
}

// rollWindow is the controller's decay step, run every cfg.Window received
// requests: halve per-peer load estimates, reset per-object hit counts, and
// walk the tracked objects shedding replica copies that stayed cold.
//
// The drop rule reconverges toward stock ADC: among the holders an entry
// knows ({self} ∪ {Location} ∪ Replicas), the lowest proxy ID is the
// anchor. A cold non-anchor holder demotes its copy out of the cache
// (keeping a forwarding entry pointed at the anchor, so routing knowledge
// survives); a cold anchor keeps the object but clears its advertisement.
// Holder views can diverge transiently — the worst case is every holder
// dropping and the next miss re-resolving via the origin, which is exactly
// a stock-ADC cold start.
func (p *ADC) rollWindow() {
	r := p.replica
	for i := range r.load {
		r.load[i] >>= 1
	}
	for i := 0; i < len(r.tracked); {
		obj := r.tracked[i]
		if !p.tables.IsCached(obj) {
			// The copy was evicted by normal table pressure; the
			// controller just forgets it.
			p.tables.ClearReplicas(obj)
			r.untrack(i)
			continue
		}
		if r.hot[obj] >= r.cfg.DropThreshold {
			i++
			continue
		}
		loc, replicas, _ := p.tables.ForwardSet(obj)
		anchor := p.id
		if loc.IsProxy() && loc < anchor {
			anchor = loc
		}
		for _, n := range replicas {
			if n < anchor {
				anchor = n
			}
		}
		if anchor == p.id {
			p.tables.ClearReplicas(obj)
			r.untrack(i)
			continue
		}
		out, dropped := p.tables.DropCached(obj, anchor)
		if dropped {
			p.stats.ReplicaDrops++
			p.recordOutcome(out)
		}
		r.untrack(i)
	}
	clear(r.hot)
}

// forwardAddrReplicated is Forward_Addr with location sets: the candidate
// holders are the entry's Location plus its replica set, and among ≥2
// candidates the proxy picks by power-of-two-choices on its local per-peer
// load estimates (two uniform draws, lower load wins, ties break to the
// lower proxy ID so fixed-seed runs stay deterministic).
func (p *ADC) forwardAddrReplicated(obj ids.ObjectID) (to ids.NodeID, viaTable bool) {
	loc, replicas, ok := p.tables.ForwardSet(obj)
	if !ok {
		p.stats.ForwardRandom++
		to = p.peers[p.rng.Intn(len(p.peers))]
		p.replica.addLoad(to)
		return to, false
	}
	// Candidates: every known holder that is not this proxy.
	var buf [9]ids.NodeID // MaxReplicas is small; 9 covers loc + 8 replicas
	cand := buf[:0]
	if loc.IsProxy() && loc != p.id {
		cand = append(cand, loc)
	}
	for _, n := range replicas {
		if n != p.id && n != loc && len(cand) < len(buf) {
			cand = append(cand, n)
		}
	}
	switch len(cand) {
	case 0:
		// No other holder known: stock behavior (a THIS entry whose
		// object is not cached here goes to the origin).
		p.stats.ForwardOrigin++
		return ids.Origin, true
	case 1:
		p.stats.ForwardLearned++
		p.replica.addLoad(cand[0])
		return cand[0], true
	}
	i := p.rng.Intn(len(cand))
	j := p.rng.Intn(len(cand) - 1)
	if j >= i {
		j++
	}
	a, b := cand[i], cand[j]
	la, lb := p.replica.loadOf(a), p.replica.loadOf(b)
	if lb < la || (lb == la && b < a) {
		a = b
	}
	p.stats.ForwardLearned++
	p.replica.addLoad(a)
	return a, true
}
