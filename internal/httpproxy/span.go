package httpproxy

import (
	"net/http"
	"strconv"
	"time"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/obs"
)

// Tracing configures cross-proxy span tracing. The zero value disables it:
// no ring, no IDs, no headers — the serving path pays one nil check.
type Tracing struct {
	// Enabled turns the layer on.
	Enabled bool
	// SampleEvery samples one entry request in N (values < 2 trace every
	// entry request). Forwarded hops never sample on their own: a hop is
	// traced exactly when the entry proxy's decision, carried in the
	// X-Adc-Trace header, says so — sampling is per request, not per hop.
	SampleEvery int
	// RingSize bounds the per-proxy span buffer behind /debug/trace
	// (0 = obs.DefaultSpanRingSize).
	RingSize int
}

// withDefaults normalizes the policy; disabled collapses to the zero value.
func (t Tracing) withDefaults() Tracing {
	if !t.Enabled {
		return Tracing{}
	}
	if t.SampleEvery < 1 {
		t.SampleEvery = 1
	}
	return t
}

// nowUs is the span clock: this process's wall clock in unix microseconds.
// Cross-proxy alignment happens at merge time (obs.MergeDumps), not here.
func nowUs() int64 { return time.Now().UnixMicro() }

// spanSeqMask keeps the per-proxy counter in the low 48 bits of span and
// trace IDs; the proxy index + 1 occupies the top 16, so IDs minted by
// different proxies never collide and 0 stays the "no span" sentinel.
const spanSeqMask = 1<<48 - 1

// newSpanID allocates a span ID unique across the farm.
func (p *Proxy) newSpanID() uint64 {
	return (uint64(p.id)+1)<<48 | p.spanSeq.Add(1)&spanSeqMask
}

// spanCtx is one traced request's context at one proxy. A nil *spanCtx is
// the untraced state (tracing off, or this request not sampled); every
// method is safe on nil, so call sites thread it through unconditionally.
type spanCtx struct {
	p     *Proxy
	trace uint64
	// self is this proxy's server span ID — the parent every child span
	// recorded here links to.
	self uint64
	// root is the server span's own parent — the sender's forward span ID
	// from X-Adc-Span, 0 at the entry proxy.
	root uint64
	// tag, when set, suffixes child span details ("hedge", "retry=2") so
	// duplicate fetch branches are tellable apart in the tree.
	tag string
}

// spanContext decides whether this request is traced and builds its
// context. A request carrying X-Adc-Trace was sampled at its entry proxy
// and joins unconditionally; an entry request (no header, forwards == 0)
// rolls the sampler. Sampling uses a dedicated atomic counter, NOT p.rng:
// the rng's draw sequence is part of seeded-run determinism.
func (p *Proxy) spanContext(h http.Header, forwards int) *spanCtx {
	if p.spans == nil {
		return nil
	}
	if ts := h.Get(HeaderTrace); ts != "" {
		trace, err := strconv.ParseUint(ts, 16, 64)
		if err != nil || trace == 0 {
			return nil
		}
		parent, _ := strconv.ParseUint(h.Get(HeaderSpan), 16, 64)
		return &spanCtx{p: p, trace: trace, self: p.newSpanID(), root: parent}
	}
	if forwards > 0 {
		return nil // mid-chain hop of an unsampled request
	}
	n := p.traceSeq.Add(1)
	if p.tracing.SampleEvery > 1 && n%uint64(p.tracing.SampleEvery) != 0 {
		return nil
	}
	return &spanCtx{p: p, trace: (uint64(p.id)+1)<<48 | n&spanSeqMask, self: p.newSpanID()}
}

// child allocates an ID for a span that must exist before it finishes —
// the forward span whose ID travels in X-Adc-Span. Returns 0 when untraced.
func (sc *spanCtx) child() uint64 {
	if sc == nil {
		return 0
	}
	return sc.p.newSpanID()
}

// tagged returns a copy whose child spans carry tag in their detail; nil
// stays nil.
func (sc *spanCtx) tagged(tag string) *spanCtx {
	if sc == nil {
		return nil
	}
	c := *sc
	c.tag = tag
	return &c
}

// setHeaders stamps an outgoing upstream request with the trace context so
// the receiving proxy's server span parents onto spanID.
func (sc *spanCtx) setHeaders(h http.Header, spanID uint64) {
	if sc == nil {
		return
	}
	h.Set(HeaderTrace, strconv.FormatUint(sc.trace, 16))
	h.Set(HeaderSpan, strconv.FormatUint(spanID, 16))
}

// record appends a finished child span (parent = this proxy's server span)
// under a fresh ID.
func (sc *spanCtx) record(stage string, startUs int64, obj ids.ObjectID, detail, errMsg string) {
	sc.recordID(sc.child(), stage, startUs, obj, detail, errMsg)
}

// recordID appends a finished child span under a pre-allocated ID.
func (sc *spanCtx) recordID(id uint64, stage string, startUs int64, obj ids.ObjectID, detail, errMsg string) {
	if sc == nil || id == 0 {
		return
	}
	if sc.tag != "" {
		if detail != "" {
			detail += " "
		}
		detail += sc.tag
	}
	sc.p.spans.Add(obs.Span{
		Trace: sc.trace, ID: id, Parent: sc.self, Node: int32(sc.p.id),
		Stage: stage, Obj: uint64(obj), Start: startUs, End: nowUs(),
		Detail: detail, Err: errMsg,
	})
}

// finishServer closes the request's own server span, parented on the
// sender's forward span (or nothing, at the entry proxy).
func (sc *spanCtx) finishServer(startUs int64, obj ids.ObjectID, errMsg string) {
	if sc == nil {
		return
	}
	sc.p.spans.Add(obs.Span{
		Trace: sc.trace, ID: sc.self, Parent: sc.root, Node: int32(sc.p.id),
		Stage: obs.SpanServer, Obj: uint64(obj), Start: startUs, End: nowUs(),
		Err: errMsg,
	})
}

// TraceDump snapshots this proxy's span ring for /debug/trace. With
// tracing off it returns an empty dump (clock still stamped, so scrapers
// need no special case).
func (p *Proxy) TraceDump() obs.SpanDump {
	return obs.SpanDump{
		Proxy:   p.id.String(),
		Node:    int32(p.id),
		NowUs:   nowUs(),
		Dropped: p.spans.Dropped(),
		Spans:   p.spans.Snapshot(),
	}
}
