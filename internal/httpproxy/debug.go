package httpproxy

import (
	"encoding/json"
	"hash/fnv"
	"net/http"
	"net/http/pprof"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/transport"
)

// Live introspection endpoints, registered on every proxy's mux:
//
//	/debug/vars     counters and table occupancy as a JSON document
//	/debug/tables   the three mapping tables in the paper's dump layout
//	/debug/pprof/   the standard Go profiler surface
//
// All of them read under p.mu, so they observe a consistent snapshot even
// while the farm is serving traffic.

// debugVars is the /debug/vars document.
type debugVars struct {
	ID          string             `json:"id"`
	LocalTime   int64              `json:"local_time"`
	Stats       metrics.ProxyStats `json:"stats"`
	TableLen    int                `json:"table_len"`
	CachingLen  int                `json:"caching_len"`
	MultipleLen int                `json:"multiple_len"`
	SingleLen   int                `json:"single_len"`
	StoreLen    int                `json:"store_len"`
	PendingLen  int                `json:"pending_len"`
	Peers       int                `json:"peers"`
	QueueDepth  int64              `json:"queue_depth"`

	// Replication is present when the hot-object replication controller
	// is enabled: the push/drop/hit counters (duplicated from Stats for
	// quick grepping) plus the controller's live tracked-set size.
	Replication *replicationVars `json:"replication,omitempty"`

	// Health is present when the fault-tolerance layer is enabled: probe
	// counters, detection/recovery totals and every peer's current state.
	Health *HealthVars `json:"health,omitempty"`

	// Breakers lists currently open or half-open per-peer circuits
	// (present only while at least one circuit is tripped).
	Breakers []BreakerVar `json:"breakers,omitempty"`

	// Network is present when a TCP transport network is attached
	// (Farm.AttachNetwork): dropped batches and per-destination
	// send-queue depths.
	Network *NetworkVars `json:"network,omitempty"`
}

// replicationVars is the replication section of /debug/vars.
type replicationVars struct {
	Pushes  uint64 `json:"pushes"`
	Drops   uint64 `json:"drops"`
	Hits    uint64 `json:"hits"`
	Tracked int    `json:"tracked"`
	Held    int    `json:"held"`
}

// NetworkVars is the transport-network section of /debug/vars.
type NetworkVars struct {
	// Dropped counts outgoing batches the transport abandoned because
	// their destination stayed unreachable through the redial window.
	Dropped uint64 `json:"dropped"`
	// Queues is the instantaneous per-destination send-queue depth,
	// sorted by (from, to).
	Queues []transport.QueueDepth `json:"queues"`
	// Links carries per-destination redial and drop counters, sorted by
	// (from, to) — the reconnect history Queues alone cannot show.
	Links []transport.LinkStats `json:"links,omitempty"`
}

// SetNetworkVars installs (or, with nil, removes) the provider for the
// network section of /debug/vars. The provider is called outside the
// proxy's lock; it must be safe for concurrent use.
func (p *Proxy) SetNetworkVars(fn func() NetworkVars) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.netVars = fn
}

// registerDebug wires the introspection handlers into a proxy's mux.
func registerDebug(mux *http.ServeMux, p *Proxy) {
	mux.HandleFunc("/debug/vars", p.handleVars)
	mux.HandleFunc("/debug/tables", p.handleTables)
	mux.HandleFunc(metricsPath, p.handleMetrics)
	mux.HandleFunc(tracePath, p.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func (p *Proxy) handleVars(w http.ResponseWriter, r *http.Request) {
	// Stats() folds in the off-lock shed/coalescing counters.
	stats := p.Stats()
	p.mu.Lock()
	v := debugVars{
		ID:          p.id.String(),
		LocalTime:   p.localTime,
		Stats:       stats,
		TableLen:    p.tables.Len(),
		CachingLen:  p.tables.Caching().Len(),
		MultipleLen: p.tables.Multiple().Len(),
		SingleLen:   p.tables.Single().Len(),
		StoreLen:    len(p.store),
		PendingLen:  len(p.pending),
		Peers:       len(p.peers),
		QueueDepth:  p.gate.depth(),
	}
	if p.replica != nil {
		v.Replication = &replicationVars{
			Pushes:  stats.ReplicaPushes,
			Drops:   stats.ReplicaDrops,
			Hits:    stats.ReplicaHits,
			Tracked: len(p.replica.tracked),
			Held:    len(p.replica.held),
		}
	}
	netFn := p.netVars
	p.mu.Unlock()
	// Outside p.mu: monitor and breakers carry their own locks.
	if m := p.health.Load(); m != nil {
		v.Health = m.vars()
	}
	v.Breakers = p.breakers.snapshot()
	if netFn != nil {
		// Outside p.mu: the provider reads the transport's own locks.
		nv := netFn()
		v.Network = &nv
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (p *Proxy) handleTables(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.tables.Dump(w, p.localTime)
}

// HashRequestID folds a wire request-ID string into a trace RequestID via
// FNV-1a. The HTTP protocol uses opaque string IDs, the trace model 64-bit
// ones; the hash keeps every hop of one request under one key. Zero (the
// "untraced" sentinel) is remapped so real requests never vanish.
func HashRequestID(s string) ids.RequestID {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	v := h.Sum64()
	if v == 0 {
		v = 1
	}
	return ids.RequestID(v)
}
