package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

// Micro-benchmarks for the ordered-table backends: the paper's Fig. 15
// bottleneck (list), its own implementation (slice + binary search), and
// the proposed replacement (skip list). Run with
// `go test -bench=Ordered ./internal/core`.

func benchmarkOrderedUpdate(b *testing.B, backend Backend, size int) {
	tbl := NewOrdered(size, backend)
	rng := rand.New(rand.NewSource(1))
	// Pre-fill.
	for i := 0; i < size; i++ {
		tbl.Insert(mkBenchEntry(ids.ObjectID(i), int64(rng.Intn(1_000_000))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := ids.ObjectID(rng.Intn(size))
		if e := tbl.Remove(obj); e != nil {
			e.Avg = int64(rng.Intn(1_000_000))
			tbl.Insert(e)
		} else {
			tbl.Insert(mkBenchEntry(obj, int64(rng.Intn(1_000_000))))
		}
	}
}

func mkBenchEntry(obj ids.ObjectID, key int64) *Entry {
	return &Entry{Object: obj, Avg: key, Hits: 2}
}

func BenchmarkOrderedUpdate(b *testing.B) {
	for _, backend := range []Backend{BackendSlice, BackendSkipList, BackendList} {
		for _, size := range []int{1_000, 10_000} {
			// The list backend at 10k is painfully slow by design;
			// keep it to show the gap, it is the whole point.
			b.Run(fmt.Sprintf("%s/%d", backend, size), func(b *testing.B) {
				benchmarkOrderedUpdate(b, backend, size)
			})
		}
	}
}

// benchBackends are the backends the reference-size benchmarks cover.
var benchBackends = []Backend{BackendBTree, BackendSlice, BackendSkipList}

// Paper reference table shape (§V.2): 20k/20k/10k per proxy.
const (
	benchSingle   = 20_000
	benchMultiple = 20_000
	benchCaching  = 10_000
)

// benchFill drives a deterministic uniform stream over `population` objects
// through tbl until all three tables are at steady-state occupancy.
func benchFill(tbl *Tables, population int, steps int) int64 {
	state := uint64(0x9E3779B97F4A7C15)
	now := int64(0)
	for i := 0; i < steps; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		now++
		tbl.Update(ids.ObjectID(state%uint64(population)), ids.NodeID(state>>32%5), now)
	}
	return now
}

func newBenchTables(b *testing.B, backend Backend) *Tables {
	b.Helper()
	tbl, err := NewTables(Config{
		SingleSize: benchSingle, MultipleSize: benchMultiple, CachingSize: benchCaching,
		Backend: backend,
	})
	if err != nil {
		b.Fatal(err)
	}
	return tbl
}

// BenchmarkTablesUpdate measures the full Update_Entry state machine — as
// the proxy drives it, Update followed by Recycle — at the paper's
// reference table shape (20k/20k/10k, §V.2) under four access mixes:
//
//   - hit: every request re-touches a cached object (Part 1, in-place).
//   - miss: every request is a never-seen object (Part 4 + single-table drop).
//   - promote: fresh objects touched twice back-to-back, so every second
//     update is a single→multiple promotion with its demotion chain.
//   - evict: fresh objects touched three times, driving constant caching-
//     table admission and worst-case demotion once the cache is full.
func BenchmarkTablesUpdate(b *testing.B) {
	mixes := []struct {
		name string
		run  func(b *testing.B, tbl *Tables, now int64)
	}{
		{"hit", func(b *testing.B, tbl *Tables, now int64) {
			cached := tbl.Caching().Entries()
			if len(cached) == 0 {
				b.Fatal("prefill left the caching table empty")
			}
			objs := make([]ids.ObjectID, len(cached))
			for i, e := range cached {
				objs[i] = e.Object
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now++
				tbl.Recycle(tbl.Update(objs[i%len(objs)], ids.NodeID(i%5), now))
			}
		}},
		{"miss", func(b *testing.B, tbl *Tables, now int64) {
			next := uint64(1 << 40) // disjoint from every prefill object
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now++
				next++
				tbl.Recycle(tbl.Update(ids.ObjectID(next), ids.NodeID(i%5), now))
			}
		}},
		{"promote", func(b *testing.B, tbl *Tables, now int64) {
			next := uint64(1 << 40)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now++
				if i%2 == 0 {
					next++
				}
				tbl.Recycle(tbl.Update(ids.ObjectID(next), ids.NodeID(i%5), now))
			}
		}},
		{"evict", func(b *testing.B, tbl *Tables, now int64) {
			next := uint64(1 << 40)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now++
				if i%3 == 0 {
					next++
				}
				tbl.Recycle(tbl.Update(ids.ObjectID(next), ids.NodeID(i%5), now))
			}
		}},
	}
	for _, backend := range benchBackends {
		for _, mix := range mixes {
			b.Run(backend.String()+"/"+mix.name, func(b *testing.B) {
				tbl := newBenchTables(b, backend)
				now := benchFill(tbl, 25_000, 200_000)
				b.ReportAllocs()
				mix.run(b, tbl, now)
			})
		}
	}
}

// BenchmarkTablesLookup measures the read path (caching → multiple → single
// search order, §IV.3) on full reference-size tables: a round-robin over
// resident objects of all three kinds, plus a pure-miss variant.
func BenchmarkTablesLookup(b *testing.B) {
	for _, backend := range benchBackends {
		b.Run(backend.String()+"/hit", func(b *testing.B) {
			tbl := newBenchTables(b, backend)
			benchFill(tbl, 25_000, 200_000)
			var objs []ids.ObjectID
			for _, e := range tbl.Caching().Entries() {
				objs = append(objs, e.Object)
			}
			for _, e := range tbl.Multiple().Entries() {
				objs = append(objs, e.Object)
			}
			for _, e := range tbl.Single().Entries() {
				objs = append(objs, e.Object)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, kind := tbl.Lookup(objs[i%len(objs)]); kind == KindNone {
					b.Fatal("resident object not found")
				}
			}
		})
		b.Run(backend.String()+"/miss", func(b *testing.B) {
			tbl := newBenchTables(b, backend)
			benchFill(tbl, 25_000, 200_000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, kind := tbl.Lookup(ids.ObjectID(uint64(i) + 1<<40)); kind != KindNone {
					b.Fatal("phantom hit")
				}
			}
		})
	}
}

// BenchmarkSingleTable measures the single-table's own by-object path in
// both modes. Since the index map moved into the Tables directory, both
// modes search element-wise here; the hot path goes through Tables and is
// covered by BenchmarkTablesUpdate.
func BenchmarkSingleTable(b *testing.B) {
	for _, scan := range []bool{false, true} {
		name := "indexed"
		if scan {
			name = "scan"
		}
		b.Run(name, func(b *testing.B) {
			tbl := NewSingleTable(2000, scan)
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 2000; i++ {
				tbl.InsertTop(NewEntry(ids.ObjectID(i), 0, int64(i)))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				obj := ids.ObjectID(rng.Intn(4000))
				if e := tbl.Remove(obj); e != nil {
					tbl.InsertTop(e)
				} else {
					tbl.InsertTop(NewEntry(obj, 0, int64(i)))
				}
			}
		})
	}
}
