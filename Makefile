# Standard development targets. `make race` is part of the merge bar:
# the parallel experiment runner must stay race-clean.

GO ?= go

.PHONY: all build test race vet bench figures clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Sweep benchmarks compare the sequential and parallel runners; the rest
# regenerate every headline number in EXPERIMENTS.md.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

figures:
	$(GO) run ./cmd/adcfigures

clean:
	$(GO) clean ./...
	rm -rf figures/*.csv
