// Command adcfigures regenerates every figure of the paper's evaluation
// section and the extension studies, printing ASCII charts and writing
// CSV files for external plotting. EXPERIMENTS.md documents how each
// output compares to the paper.
//
// Examples:
//
//	adcfigures                      # all figures at 1/10 scale into ./figures
//	adcfigures -fig 11              # only Fig. 11
//	adcfigures -scale 1 -out paper  # full paper scale
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/adc-sim/adc"
	"github.com/adc-sim/adc/internal/plot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adcfigures:", err)
		os.Exit(1)
	}
}

type app struct {
	profile adc.Profile
	outDir  string
}

func run(args []string) error {
	fs := flag.NewFlagSet("adcfigures", flag.ContinueOnError)
	var (
		scale    = fs.Float64("scale", 0.1, "scale of the paper's setup (1.0 = 3.99M requests)")
		seed     = fs.Int64("seed", 1, "random seed")
		outDir   = fs.String("out", "figures", "directory for CSV output")
		fig      = fs.Int("fig", 0, "regenerate only this figure (11–15; 0 = all + extensions)")
		parallel = fs.Int("parallel", runtime.NumCPU(), "concurrent simulations per experiment (1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	a := &app{
		profile: adc.Profile{Scale: *scale, Seed: *seed, Parallel: *parallel},
		outDir:  *outDir,
	}
	a.profile.Progress = progressLine(os.Stderr)

	type figure struct {
		id  int
		fn  func() error
		ext bool
	}
	figures := []figure{
		{id: 11, fn: a.figures11and12}, // 12 shares the run
		{id: 13, fn: a.figures13and14}, // 14 shares the sweep
		{id: 15, fn: a.figure15},
		{fn: a.extensions, ext: true},
	}
	for _, f := range figures {
		if *fig != 0 {
			if f.ext {
				continue
			}
			// Figs. 11/12 and 13/14 share a runner.
			if f.id != *fig && f.id+1 != *fig {
				continue
			}
		}
		if err := f.fn(); err != nil {
			return err
		}
	}
	return nil
}

// progressLine returns a Profile.Progress callback that rewrites one
// carriage-returned status line per fan-out with run counts, the resolved
// pool width and engine throughput, terminating the line when the fan-out
// completes.
func progressLine(w *os.File) func(adc.Progress) {
	var start time.Time
	return func(p adc.Progress) {
		if p.Done == 1 || start.IsZero() {
			start = time.Now()
		}
		elapsed := time.Since(start).Seconds()
		line := fmt.Sprintf("\rrun %d/%d  %d workers  %.1f runs/s",
			p.Done, p.Total, p.Workers, float64(p.Done)/elapsed)
		if p.Events > 0 {
			line += fmt.Sprintf("  %.1fM events/s", float64(p.Events)/elapsed/1e6)
		}
		fmt.Fprint(w, line)
		if p.Done == p.Total {
			fmt.Fprintln(w)
			start = time.Time{}
		}
	}
}

func (a *app) writeCSV(name, xLabel string, series ...plot.Series) error {
	path := filepath.Join(a.outDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() //nolint:errcheck // close error checked below
	if err := plot.WriteCSV(f, xLabel, series...); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return nil
}

func (a *app) figures11and12() error {
	fmt.Println("=== Figures 11 & 12: ADC vs Hashing (hit rate, hops) ===")
	cmp, err := adc.Compare(a.profile, false)
	if err != nil {
		return err
	}
	fmt.Printf("phases: fill ends at %d requests, phase II starts at %d\n",
		cmp.FillEnd, cmp.Phase2End)
	fmt.Printf("cumulative: ADC hit %.3f / hops %.2f — hashing hit %.3f / hops %.2f\n\n",
		cmp.ADCHitRate, cmp.ADCHops, cmp.HashingHitRate, cmp.HashingHops)

	hit := func(pts []adc.Point) plot.Series {
		s := plot.Series{}
		for _, p := range pts {
			s.X = append(s.X, float64(p.Requests))
			s.Y = append(s.Y, p.HitRate)
		}
		return s
	}
	hops := func(pts []adc.Point) plot.Series {
		s := plot.Series{}
		for _, p := range pts {
			s.X = append(s.X, float64(p.Requests))
			s.Y = append(s.Y, p.Hops)
		}
		return s
	}

	adcHit, hashHit := hit(cmp.ADC), hit(cmp.Hashing)
	adcHit.Name, hashHit.Name = "ADC", "Hashing"
	fmt.Println(plot.RenderASCII("Figure 11: hit rate (moving average) vs requests", 72, 16, adcHit, hashHit))
	if err := a.writeCSV("figure11_hitrate.csv", "requests", adcHit, hashHit); err != nil {
		return err
	}

	adcHops, hashHops := hops(cmp.ADC), hops(cmp.Hashing)
	adcHops.Name, hashHops.Name = "ADC", "Hashing"
	fmt.Println(plot.RenderASCII("Figure 12: hops (moving average) vs requests", 72, 16, adcHops, hashHops))
	return a.writeCSV("figure12_hops.csv", "requests", adcHops, hashHops)
}

func (a *app) figures13and14() error {
	fmt.Println("=== Figures 13 & 14: hit rate and hops by table size ===")
	pts, err := adc.Sweep(a.profile)
	if err != nil {
		return err
	}
	hitSeries := bySweepTable(pts, func(p adc.SweepPoint) float64 { return p.HitRate })
	fmt.Println(plot.RenderASCII("Figure 13: hit rate by table size", 72, 14, hitSeries...))
	if err := a.writeCSV("figure13_hits_by_size.csv", "size", hitSeries...); err != nil {
		return err
	}
	hopSeries := bySweepTable(pts, func(p adc.SweepPoint) float64 { return p.Hops })
	fmt.Println(plot.RenderASCII("Figure 14: hops by table size", 72, 14, hopSeries...))
	return a.writeCSV("figure14_hops_by_size.csv", "size", hopSeries...)
}

func (a *app) figure15() error {
	fmt.Println("=== Figure 15: processing time by table size (paper-faithful O(n) tables) ===")
	pts, err := adc.TimingSweep(a.profile)
	if err != nil {
		return err
	}
	series := bySweepTable(pts, func(p adc.SweepPoint) float64 { return p.Elapsed.Seconds() })
	fmt.Println(plot.RenderASCII("Figure 15: processing time (s) by table size", 72, 14, series...))
	return a.writeCSV("figure15_time_by_size.csv", "size", series...)
}

func bySweepTable(pts []adc.SweepPoint, y func(adc.SweepPoint) float64) []plot.Series {
	order := []string{"caching", "multiple", "single"}
	bucket := map[string]*plot.Series{}
	for _, name := range order {
		bucket[name] = &plot.Series{Name: name}
	}
	for _, pt := range pts {
		s := bucket[pt.Table]
		if s == nil {
			continue
		}
		s.X = append(s.X, float64(pt.Size))
		s.Y = append(s.Y, y(pt))
	}
	var out []plot.Series
	for _, name := range order {
		if len(bucket[name].X) > 0 {
			out = append(out, *bucket[name])
		}
	}
	return out
}

func (a *app) extensions() error {
	fmt.Println("=== Extensions: max-hops sweep, ablations, backends, consistent hashing ===")

	mh, err := adc.MaxHopsSweep(a.profile, nil)
	if err != nil {
		return err
	}
	fmt.Println("max-hops bound (0 = unbounded, the paper's setting):")
	mhs := plot.Series{Name: "hit rate"}
	for _, pt := range mh {
		fmt.Printf("  maxhops=%d  hit=%.4f  hops=%.3f\n", pt.MaxHops, pt.HitRate, pt.Hops)
		bound := float64(pt.MaxHops)
		if pt.MaxHops == 0 {
			bound = 10 // plot the unbounded point to the right
		}
		mhs.X = append(mhs.X, bound)
		mhs.Y = append(mhs.Y, pt.HitRate)
	}
	if err := a.writeCSV("ext_maxhops.csv", "maxhops", mhs); err != nil {
		return err
	}

	sel, err := adc.SelectiveCachingAblation(a.profile)
	if err != nil {
		return err
	}
	fmt.Printf("selective caching vs cache-all LRU: %.4f vs %.4f (Δ %+.4f)\n",
		sel.Full, sel.Ablated, sel.Full-sel.Ablated)

	ag, err := adc.AgingAblation(a.profile)
	if err != nil {
		return err
	}
	fmt.Printf("aging on vs off:                    %.4f vs %.4f (Δ %+.4f)\n",
		ag.Full, ag.Ablated, ag.Full-ag.Ablated)

	be, err := adc.BackendComparison(a.profile)
	if err != nil {
		return err
	}
	fmt.Println("ordered-table backends (identical simulation):")
	for _, pt := range be {
		fmt.Printf("  %-14s %v (hit %.4f)\n", pt.Backend, pt.Elapsed.Round(1e6), pt.HitRate)
	}

	rt, err := adc.ResponseTime(a.profile, 0)
	if err != nil {
		return err
	}
	fmt.Printf("response time (WAN latency model): ADC %.1f ms vs hashing %.1f ms\n",
		rt.ADCMean/1000, rt.HashingMean/1000)

	pl, err := adc.PreLearned(a.profile)
	if err != nil {
		return err
	}
	fmt.Printf("pre-learned replay (§V.2.1 future work): pass 1 hit %.4f → pass 2 hit %.4f\n",
		pl.FirstPass, pl.SecondPass)

	pc, err := adc.ProxyCountSweep(a.profile, nil)
	if err != nil {
		return err
	}
	fmt.Println("proxy count (total capacity constant):")
	for _, pt := range pc {
		fmt.Printf("  proxies=%d  hit=%.4f  hops=%.3f\n", pt.Proxies, pt.HitRate, pt.Hops)
	}

	base, err := adc.Baselines(a.profile)
	if err != nil {
		return err
	}
	fmt.Println("all baselines (post-fill hit rate / hops / busiest-node share):")
	for _, pt := range base {
		fmt.Printf("  %-6s hit=%.4f hops=%.3f bottleneck=%.2f\n",
			pt.Algorithm, pt.HitRate, pt.Hops, pt.BottleneckShare)
	}
	return nil
}
