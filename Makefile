# Standard development targets. `make race` is part of the merge bar:
# the parallel experiment runner must stay race-clean.

GO ?= go

# Engine hot-path benchmarks tracked in BENCH_engine.json (see DESIGN.md
# "Engine internals" and EXPERIMENTS.md "Profiling the engine").
ENGINE_BENCH = BenchmarkVEngine|BenchmarkEngineADC|BenchmarkClusterRun

.PHONY: all build test race vet bench bench-sweep bench-profile figures clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Engine hot-path benchmarks: runs the sim and cluster benchmarks and
# records name, ns/op and allocs/op plus the git SHA in BENCH_engine.json.
# BENCH_baseline.json (the pre-optimization numbers) is embedded under
# "baseline" so the file carries both before and after measurements.
bench:
	{ $(GO) version; \
	  $(GO) test -bench '$(ENGINE_BENCH)' -run '^$$' ./internal/sim/ ./internal/cluster/; } \
	| $(GO) run ./cmd/benchjson -baseline BENCH_baseline.json > BENCH_engine.json
	@cat BENCH_engine.json

# Sweep benchmarks compare the sequential and parallel runners; the rest
# regenerate every headline number in EXPERIMENTS.md.
bench-sweep:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# CPU + heap profiles of the engine benchmarks, for pprof inspection:
#   go tool pprof -top cpu.out
#   go tool pprof -top -sample_index=alloc_objects mem.out
bench-profile:
	$(GO) test -bench '$(ENGINE_BENCH)' -run '^$$' \
		-cpuprofile cpu.out -memprofile mem.out ./internal/sim/
	@echo "wrote cpu.out and mem.out"

figures:
	$(GO) run ./cmd/adcfigures

clean:
	$(GO) clean ./...
	rm -rf figures/*.csv cpu.out mem.out sim.test
