package workload

import (
	"sync"
	"testing"
)

func materializeConfig(seed int64) Config {
	return Config{TotalRequests: 5_000, PopulationSize: 200, Seed: seed}
}

func TestMaterializeMatchesGenerator(t *testing.T) {
	cfg := materializeConfig(7)
	tr, err := Materialize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cur := tr.Cursor()
	if cur.Total() != gen.Total() {
		t.Fatalf("cursor total %d, generator total %d", cur.Total(), gen.Total())
	}
	for i := 0; ; i++ {
		want, wantOK := gen.Next()
		got, gotOK := cur.Next()
		if gotOK != wantOK {
			t.Fatalf("request %d: cursor ok=%v, generator ok=%v", i, gotOK, wantOK)
		}
		if !wantOK {
			break
		}
		if got != want {
			t.Fatalf("request %d: cursor %v, generator %v", i, got, want)
		}
	}
	gFill, gPhase2 := gen.Boundaries()
	tFill, tPhase2 := tr.Boundaries()
	if tFill != gFill || tPhase2 != gPhase2 {
		t.Errorf("boundaries (%d,%d), want (%d,%d)", tFill, tPhase2, gFill, gPhase2)
	}
}

func TestCursorResetAndIndependence(t *testing.T) {
	tr, err := Materialize(materializeConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	a, b := tr.Cursor(), tr.Cursor()
	first, _ := a.Next()
	a.Next()
	// b is untouched by a's progress.
	if got, _ := b.Next(); got != first {
		t.Errorf("second cursor started at %v, want %v", got, first)
	}
	a.Reset()
	if got, _ := a.Next(); got != first {
		t.Errorf("after Reset got %v, want %v", got, first)
	}
}

func TestTraceCacheSharesOneTrace(t *testing.T) {
	c := NewTraceCache(4)
	cfg := materializeConfig(3)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		traces = map[*Trace]bool{}
	)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := c.Get(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			traces[tr] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(traces) != 1 {
		t.Errorf("%d distinct traces materialized for one config, want 1", len(traces))
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

func TestTraceCacheEvictsLRU(t *testing.T) {
	c := NewTraceCache(2)
	a, b, d := materializeConfig(1), materializeConfig(2), materializeConfig(3)
	trA, err := c.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(b); err != nil {
		t.Fatal(err)
	}
	// Touch a so b becomes the LRU entry, then insert a third config.
	if tr, err := c.Get(a); err != nil || tr != trA {
		t.Fatalf("re-Get(a) = %p, %v; want cached %p", tr, err, trA)
	}
	if _, err := c.Get(d); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if tr, err := c.Get(a); err != nil || tr != trA {
		t.Errorf("a was evicted instead of LRU b (got %p, %v, want %p)", tr, err, trA)
	}
}

func TestTraceCacheCachesErrors(t *testing.T) {
	c := NewTraceCache(2)
	bad := Config{TotalRequests: -1}
	if _, err := c.Get(bad); err == nil {
		t.Fatal("invalid config must fail")
	}
	if _, err := c.Get(bad); err == nil {
		t.Fatal("cached error lost on second Get")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("cache holds %d entries after Purge, want 0", c.Len())
	}
}
