package sim

// traceNow returns the context's virtual time for trace timestamps, or 0
// when the engine has no clock (sequential traces order by sequence
// number instead).
func traceNow(ctx Context) int64 {
	if clk, ok := ctx.(Clock); ok {
		return clk.VNow()
	}
	return 0
}

// TraceNow is traceNow for sibling packages (proxy, carp) that emit trace
// events with a sim.Context in hand.
func TraceNow(ctx Context) int64 { return traceNow(ctx) }
