package promtext

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed series sample.
type Sample struct {
	// Name is the full sample name (histogram samples keep their
	// _bucket/_sum/_count suffix).
	Name string
	// Labels holds the decoded label pairs (le included for buckets).
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Label returns one label's value ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// Family is one metric family: the TYPE/HELP header plus every sample
// attributed to it. Histogram children (_bucket/_sum/_count) attach to
// their base family.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Document is a parsed exposition.
type Document struct {
	// Families maps family name to its samples.
	Families map[string]*Family
	// Order lists family names in first-appearance order.
	Order []string
}

// Value returns the first sample of family name whose labels include every
// given pair. The bool reports whether one was found.
func (d *Document) Value(name string, labels ...Label) (float64, bool) {
	f := d.Families[name]
	if f == nil {
		return 0, false
	}
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		if matchLabels(s.Labels, labels) {
			return s.Value, true
		}
	}
	return 0, false
}

// Buckets gathers the cumulative histogram buckets of family name for the
// series selected by the given labels (le excluded from matching), sorted
// by bound. Nil when the family has no matching buckets.
func (d *Document) Buckets(name string, labels ...Label) []Bucket {
	f := d.Families[name]
	if f == nil {
		return nil
	}
	var out []Bucket
	for _, s := range f.Samples {
		if s.Name != name+"_bucket" || !matchLabels(s.Labels, labels) {
			continue
		}
		le, err := parseBound(s.Labels["le"])
		if err != nil {
			continue
		}
		out = append(out, Bucket{LE: le, Cum: uint64(s.Value)})
	}
	sortBuckets(out)
	return out
}

func matchLabels(have map[string]string, want []Label) bool {
	for _, l := range want {
		if have[l.Name] != l.Value {
			return false
		}
	}
	return true
}

func parseBound(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Parse reads a text exposition into a Document. It is strict about the
// line grammar (the lint half of the telemetry-smoke CI job rides on it):
// malformed label escapes, missing values, or samples with no parseable
// shape are errors naming their line.
func Parse(r io.Reader) (*Document, error) {
	d := &Document{Families: make(map[string]*Family)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if err := d.parseComment(text); err != nil {
				return nil, fmt.Errorf("promtext: line %d: %w", line, err)
			}
			continue
		}
		s, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", line, err)
		}
		fam := d.family(familyName(s.Name, d))
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// parseComment handles # HELP / # TYPE; other comments are ignored.
func (d *Document) parseComment(text string) error {
	rest, ok := strings.CutPrefix(text, "# HELP ")
	if ok {
		name, help, _ := strings.Cut(rest, " ")
		if name == "" {
			return fmt.Errorf("HELP line without metric name")
		}
		d.family(name).Help = unescapeHelp(help)
		return nil
	}
	rest, ok = strings.CutPrefix(text, "# TYPE ")
	if !ok {
		return nil // free-form comment
	}
	name, typ, _ := strings.Cut(rest, " ")
	if name == "" {
		return fmt.Errorf("TYPE line without metric name")
	}
	switch typ {
	case TypeCounter, TypeGauge, TypeHistogram, TypeUntyped, "summary":
	default:
		return fmt.Errorf("unknown metric type %q", typ)
	}
	d.family(name).Type = typ
	return nil
}

// family returns (creating if needed) the named family.
func (d *Document) family(name string) *Family {
	if f, ok := d.Families[name]; ok {
		return f
	}
	f := &Family{Name: name}
	d.Families[name] = f
	d.Order = append(d.Order, name)
	return f
}

// familyName attributes a sample to its family: histogram children map to
// their declared base family, everything else to the sample name itself.
func familyName(sample string, d *Document) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sample, suffix)
		if !ok {
			continue
		}
		if f, exists := d.Families[base]; exists && f.Type == TypeHistogram {
			return base
		}
	}
	return sample
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(text string) (Sample, error) {
	nameEnd := strings.IndexAny(text, "{ ")
	if nameEnd <= 0 {
		return Sample{}, fmt.Errorf("sample line %q: no metric name", text)
	}
	s := Sample{Name: text[:nameEnd], Labels: map[string]string{}}
	rest := text[nameEnd:]
	if rest[0] == '{' {
		var err error
		rest, err = parseLabels(rest, s.Labels)
		if err != nil {
			return Sample{}, fmt.Errorf("sample %s: %w", s.Name, err)
		}
	}
	rest = strings.TrimLeft(rest, " \t")
	valueStr, _, _ := strings.Cut(rest, " ") // optional timestamp after value
	if valueStr == "" {
		return Sample{}, fmt.Errorf("sample %s: missing value", s.Name)
	}
	v, err := parseBound(valueStr)
	if err != nil {
		if valueStr == "NaN" {
			v = math.NaN()
		} else {
			return Sample{}, fmt.Errorf("sample %s: bad value %q", s.Name, valueStr)
		}
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {a="b",...} block, returning the remainder.
func parseLabels(text string, into map[string]string) (string, error) {
	i := 1 // past '{'
	for {
		for i < len(text) && (text[i] == ' ' || text[i] == ',') {
			i++
		}
		if i >= len(text) {
			return "", fmt.Errorf("unterminated label block")
		}
		if text[i] == '}' {
			return text[i+1:], nil
		}
		eq := strings.IndexByte(text[i:], '=')
		if eq < 0 {
			return "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(text[i : i+eq])
		if name == "" {
			return "", fmt.Errorf("empty label name")
		}
		i += eq + 1
		if i >= len(text) || text[i] != '"' {
			return "", fmt.Errorf("label %s: value not quoted", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(text) {
				return "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := text[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(text) {
					return "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch text[i] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return "", fmt.Errorf("label %s: bad escape \\%c", name, text[i])
				}
				i++
				continue
			}
			b.WriteByte(c)
			i++
		}
		into[name] = b.String()
	}
}

func unescapeHelp(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// Lint parses an exposition and checks the structural invariants a
// Prometheus scraper relies on: every histogram series carries a +Inf
// bucket whose value equals its _count, bucket counts are monotone
// nondecreasing in le, and no family mixes a declared type with
// foreign-shaped samples. It returns the first violation.
func Lint(r io.Reader) error {
	d, err := Parse(r)
	if err != nil {
		return err
	}
	for _, name := range d.Order {
		f := d.Families[name]
		if f.Type != TypeHistogram {
			continue
		}
		if err := lintHistogram(f); err != nil {
			return fmt.Errorf("promtext: histogram %s: %w", name, err)
		}
	}
	return nil
}

// lintHistogram checks one histogram family's per-series invariants.
func lintHistogram(f *Family) error {
	type series struct {
		buckets []Bucket
		count   *float64
		sum     bool
	}
	byKey := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k + "=" + labels[k] + ";")
		}
		return b.String()
	}
	get := func(labels map[string]string) *series {
		k := keyOf(labels)
		s := byKey[k]
		if s == nil {
			s = &series{}
			byKey[k] = s
		}
		return s
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, err := parseBound(s.Labels["le"])
			if err != nil {
				return fmt.Errorf("bucket with unparseable le %q", s.Labels["le"])
			}
			sr := get(s.Labels)
			sr.buckets = append(sr.buckets, Bucket{LE: le, Cum: uint64(s.Value)})
		case f.Name + "_count":
			v := s.Value
			get(s.Labels).count = &v
		case f.Name + "_sum":
			get(s.Labels).sum = true
		default:
			return fmt.Errorf("foreign sample %s in histogram family", s.Name)
		}
	}
	for key, sr := range byKey {
		if len(sr.buckets) == 0 {
			return fmt.Errorf("series {%s} has no buckets", key)
		}
		sortBuckets(sr.buckets)
		last := sr.buckets[len(sr.buckets)-1]
		if !math.IsInf(last.LE, 1) {
			return fmt.Errorf("series {%s} missing le=\"+Inf\" bucket", key)
		}
		var prev uint64
		for _, b := range sr.buckets {
			if b.Cum < prev {
				return fmt.Errorf("series {%s} bucket counts not monotone at le=%v", key, b.LE)
			}
			prev = b.Cum
		}
		if sr.count == nil {
			return fmt.Errorf("series {%s} missing _count", key)
		}
		if uint64(*sr.count) != last.Cum {
			return fmt.Errorf("series {%s} _count %v != +Inf bucket %d", key, *sr.count, last.Cum)
		}
		if !sr.sum {
			return fmt.Errorf("series {%s} missing _sum", key)
		}
	}
	return nil
}
