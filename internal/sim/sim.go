// Package sim provides the deterministic message-passing substrate the
// proxy system runs on: a Node interface implemented by proxies, clients
// and the origin server, and a single-threaded engine that delivers
// messages in FIFO order.
//
// The paper ran its agents on the Carolina multi-agent platform across
// eight hosts, and reports that "a simulation running on a powerful ...
// machine returns the same results as a run spread over a distributed set
// of machines" (§V.1.2). This package is the single-machine side of that
// equivalence; internal/agent is the concurrent runtime and
// internal/transport adds real TCP, and the integration tests assert all
// three produce identical metrics under closed-loop injection.
package sim

import (
	"fmt"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
)

// Context lets a node emit messages during Handle. Each Send is one "hop"
// in the paper's sense — "the message transfer between client-proxy,
// proxy-proxy and proxy-server" (§V.2.2) — and increments the message's
// hop counter.
type Context interface {
	// Send enqueues m for delivery to m.Dest().
	Send(m msg.Message)
}

// Node is a participant in the simulated system.
type Node interface {
	// ID returns the node's stable address.
	ID() ids.NodeID
	// Handle processes one delivered message, possibly sending others.
	// Engines guarantee Handle is never invoked concurrently for the
	// same node.
	Handle(ctx Context, m msg.Message)
}

// Starter is implemented by nodes that inject initial traffic (clients).
// Engines call Start exactly once before delivering any messages.
type Starter interface {
	Start(ctx Context)
}

// CountHop increments the hop counter embedded in m. Engines and
// transports call it on every send so hop accounting is identical across
// runtimes.
func CountHop(m msg.Message) {
	switch t := m.(type) {
	case *msg.Request:
		t.Hops++
	case *msg.Reply:
		t.Hops++
	}
}

// Engine is the deterministic sequential runtime: a FIFO queue of messages
// drained one at a time. Determinism is total — same nodes, same seeds,
// same injected traffic means the same delivery sequence. Dispatch is a
// dense array lookup (ids.Table) and messages recycle through an
// engine-owned freelist, so the steady-state loop does not allocate.
type Engine struct {
	nodes ids.Table[Node]
	queue messageQueue
	fl    msg.Freelist
	// delivered counts total message deliveries, for diagnostics.
	delivered uint64
}

var (
	_ Context  = (*Engine)(nil)
	_ Recycler = (*Engine)(nil)
)

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{}
}

// Register adds a node. Registering two nodes with the same ID is a
// configuration error.
func (e *Engine) Register(n Node) error {
	if !e.nodes.Put(n.ID(), n) {
		return fmt.Errorf("sim: duplicate node %v", n.ID())
	}
	return nil
}

// Send implements Context: it counts the hop and enqueues the message.
func (e *Engine) Send(m msg.Message) {
	CountHop(m)
	e.queue.push(m)
}

// AcquireRequest implements Recycler.
func (e *Engine) AcquireRequest() *msg.Request { return e.fl.GetRequest() }

// AcquireReply implements Recycler.
func (e *Engine) AcquireReply() *msg.Reply { return e.fl.GetReply() }

// ReleaseRequest implements Recycler.
func (e *Engine) ReleaseRequest(r *msg.Request) { e.fl.PutRequest(r) }

// ReleaseReply implements Recycler.
func (e *Engine) ReleaseReply(r *msg.Reply) { e.fl.PutReply(r) }

// Delivered returns the total number of messages delivered so far.
func (e *Engine) Delivered() uint64 { return e.delivered }

// Run starts every Starter node in ascending NodeID order and drains the
// queue. It returns an error if a message addresses an unregistered node,
// which indicates a wiring bug rather than a runtime condition.
func (e *Engine) Run() error {
	e.nodes.Ascending(func(_ ids.NodeID, n Node) {
		if s, ok := n.(Starter); ok {
			s.Start(e)
		}
	})
	for {
		m, ok := e.queue.pop()
		if !ok {
			return nil
		}
		n, ok := e.nodes.Get(m.Dest())
		if !ok {
			return fmt.Errorf("sim: message for unregistered node %v", m.Dest())
		}
		e.delivered++
		n.Handle(e, m)
	}
}

// messageQueue is an amortised-O(1) FIFO backed by a slice with a moving
// head, compacted when the dead prefix dominates.
type messageQueue struct {
	buf  []msg.Message
	head int
}

func (q *messageQueue) push(m msg.Message) {
	q.buf = append(q.buf, m)
}

func (q *messageQueue) pop() (msg.Message, bool) {
	if q.head >= len(q.buf) {
		return nil, false
	}
	m := q.buf[q.head]
	q.buf[q.head] = nil // allow GC of delivered messages
	q.head++
	if q.head > 1024 && q.head*2 > len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return m, true
}

// Len returns the number of queued messages (test support).
func (q *messageQueue) Len() int { return len(q.buf) - q.head }
