package obs

import "sync"

// Span is one timed operation inside a traced request on the HTTP farm.
// Spans form cross-proxy trees: the entry proxy mints a Trace ID and a root
// span, and every hop — forwards, retries, hedges, origin fetches, gate and
// flight waits, breaker denials — opens a child span linked by Parent. The
// span ID travels between proxies in the X-Adc-Span request header, so a
// receiving proxy's server span parents onto the sender's forward span and
// cmd/adctrace can stitch the per-proxy rings back into one tree.
//
// Unlike Event (virtual-time, single process), Span timestamps are each
// recording proxy's own wall clock in unix microseconds; MergeDumps aligns
// them across proxies before tree building.
type Span struct {
	// Trace groups every span of one logical request.
	Trace uint64 `json:"trace"`
	// ID is unique within the trace (the recording proxy's index sits in
	// the top bits, so two proxies never collide).
	ID uint64 `json:"id"`
	// Parent is the enclosing span's ID; 0 marks the trace root.
	Parent uint64 `json:"parent,omitempty"`
	// Node is the recording proxy's index (-1 for non-proxy recorders).
	Node int32 `json:"node"`
	// Stage names what the span timed (the Span* constants).
	Stage string `json:"stage"`
	// Obj is the requested object's ID.
	Obj uint64 `json:"obj,omitempty"`
	// Start and End are unix microseconds on the recording proxy's clock.
	Start int64 `json:"start_us"`
	End   int64 `json:"end_us"`
	// Detail carries stage-specific context: the forward destination,
	// the resolver header, a retry ordinal.
	Detail string `json:"detail,omitempty"`
	// Err is the failure that ended the span, empty on success.
	Err string `json:"err,omitempty"`
}

// Span stages. The spellings match the stage label values on the /metrics
// latency histograms, so a dashboard quantile and a trace span with the
// same name measure the same interval.
const (
	// SpanServer is one proxy's whole handling of an incoming request.
	SpanServer = "server"
	// SpanGateWait is time queued at the admission gate.
	SpanGateWait = "gate_wait"
	// SpanFlightWait is a coalesced miss waiting on another request's
	// in-flight fetch.
	SpanFlightWait = "flight_wait"
	// SpanForward is one upstream fetch to a peer proxy.
	SpanForward = "forward"
	// SpanOrigin is one fetch to the origin server.
	SpanOrigin = "origin"
	// SpanBreakerDenied is a fetch refused locally by an open circuit
	// breaker (zero-duration; recorded so denial shows up in the tree).
	SpanBreakerDenied = "breaker_denied"
)

// SpanRing buffers the most recent spans of one proxy, dropping the oldest
// when full. Every proxy exposes its ring at /debug/trace; a bounded buffer
// keeps a long-lived proxy's memory flat while holding comfortably more
// than one load-test run's sampled spans (the default ring remembers the
// last 16Ki spans ≈ a few MB).
type SpanRing struct {
	mu  sync.Mutex
	buf []Span
	n   uint64 // total spans ever added
}

// DefaultSpanRingSize is the ring capacity when none is configured.
const DefaultSpanRingSize = 16384

// NewSpanRing returns a ring holding up to capacity spans
// (DefaultSpanRingSize when capacity <= 0).
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = DefaultSpanRingSize
	}
	return &SpanRing{buf: make([]Span, 0, capacity)}
}

// Add records one finished span. Safe on a nil ring, which is the
// tracing-disabled state and records nothing.
func (r *SpanRing) Add(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.n%uint64(cap(r.buf))] = s
	}
	r.n++
	r.mu.Unlock()
}

// Len returns the number of buffered spans.
func (r *SpanRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many spans the ring has evicted to stay bounded.
func (r *SpanRing) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if uint64(cap(r.buf)) >= r.n {
		return 0
	}
	return r.n - uint64(cap(r.buf))
}

// Snapshot returns the buffered spans oldest-first.
func (r *SpanRing) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	head := int(r.n % uint64(cap(r.buf))) // oldest surviving span
	out = append(out, r.buf[head:]...)
	return append(out, r.buf[:head]...)
}

// SpanDump is one proxy's /debug/trace response: its ring contents plus the
// clock reading the skew aligner needs. A scraper fills ScrapedUs with the
// midpoint of its own request so MergeDumps can shift every proxy's spans
// onto the scraper's clock.
type SpanDump struct {
	// Proxy is the recording proxy's name (e.g. "Proxy[3]").
	Proxy string `json:"proxy"`
	// Node is the recording proxy's index.
	Node int32 `json:"node"`
	// NowUs is the proxy's clock, unix microseconds, at snapshot time.
	NowUs int64 `json:"now_us"`
	// ScrapedUs is the scraper's clock at the scrape midpoint (set by the
	// scraper, not the proxy; 0 means "no alignment", e.g. a dump taken
	// in-process where every proxy shares one clock).
	ScrapedUs int64 `json:"scraped_us,omitempty"`
	// Dropped is how many spans the ring evicted before this snapshot.
	Dropped uint64 `json:"dropped"`
	// Spans is the ring's contents, oldest-first.
	Spans []Span `json:"spans"`
}
