package sim

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/trace"
)

// These tests probe the paper's load-bearing transport assumption:
// "we don't expect the loss of messages and ... always either one of the
// proxy objects or the actual origin server will finally resolve the
// request" (§III.1). The protocol has no timeouts or retransmissions, so
// a single lost message strands its request chain permanently — the
// fault-injection engine makes that concrete and measurable.

func TestLossStrandsClosedLoop(t *testing.T) {
	eng := NewVEngine(LatencyModel{ClientProxy: 1})
	echo := &delayProbe{id: 0, reply: true}
	if err := eng.Register(echo); err != nil {
		t.Fatal(err)
	}
	objs := make([]ids.ObjectID, 10)
	cl, err := NewClient(ClientConfig{
		Source:  trace.NewSliceSource(objs),
		Proxies: []ids.NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(cl); err != nil {
		t.Fatal(err)
	}
	// Drop the 6th network transfer (the 3rd request's request leg).
	n := 0
	eng.SetDropFilter(func(m msg.Message) bool {
		n++
		return n == 6
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The engine drains (no livelock), but the closed loop is stranded:
	// the client never completes its trace and the loss is visible.
	if cl.Done() {
		t.Error("client completed despite a lost message — the protocol has no retransmission")
	}
	if eng.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", eng.Dropped())
	}
	if got := cl.Collector().Requests(); got != 2 {
		t.Errorf("completed %d requests before the loss, want 2", got)
	}
}

func TestLossStrandsOpenLoopPartially(t *testing.T) {
	// Open-loop injection keeps going past a loss (arrivals are timer
	// driven), so exactly the chains whose messages were dropped are
	// missing — loss is proportional, not total.
	eng := NewVEngine(LatencyModel{ClientProxy: 1})
	echo := &delayProbe{id: 0, reply: true}
	if err := eng.Register(echo); err != nil {
		t.Fatal(err)
	}
	objs := make([]ids.ObjectID, 20)
	cl, err := NewOpenLoopClient(OpenLoopConfig{
		Source:        trace.NewSliceSource(objs),
		Proxies:       []ids.NodeID{0},
		IntervalTicks: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(cl); err != nil {
		t.Fatal(err)
	}
	// Drop every 7th network transfer.
	n := 0
	eng.SetDropFilter(func(m msg.Message) bool {
		n++
		return n%7 == 0
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if cl.Done() {
		t.Error("open-loop client reported done despite stranded requests")
	}
	if cl.Outstanding() == 0 {
		t.Error("expected stranded outstanding requests after losses")
	}
	completed := cl.Collector().Requests()
	if completed == 0 || completed >= 20 {
		t.Errorf("completed = %d, want partial completion", completed)
	}
	if completed+uint64(cl.Outstanding()) != 20 {
		t.Errorf("completed %d + outstanding %d != injected 20",
			completed, cl.Outstanding())
	}
}

func TestDroppedSendIsNotRecycled(t *testing.T) {
	// Ownership rule: Send returning normally gives the caller no signal
	// that the fault filter discarded the message, so the engine must NOT
	// recycle a dropped message — the caller may still reference it. If
	// the engine fed dropped messages to its freelist, the next
	// AcquireRequest would hand the same struct to a different owner and
	// the caller's retained pointer would be silently rewritten.
	eng := NewVEngine(LatencyModel{ClientProxy: 1})
	eng.SetDropFilter(func(msg.Message) bool { return true })

	req := eng.AcquireRequest()
	req.To = 0
	req.ID = ids.NewRequestID(0, 1)
	req.Object = 77
	req.Client = ids.Client(0)
	eng.Send(req) // dropped: ownership stays with us

	// The freelist must not contain the dropped message: a fresh acquire
	// returns a different struct.
	next := eng.AcquireRequest()
	if next == req {
		t.Fatal("engine recycled a dropped message the caller still references")
	}
	// And the dropped message is untouched apart from the hop count that
	// Send legitimately added.
	if req.Object != 77 || req.ID != ids.NewRequestID(0, 1) || req.Hops != 1 {
		t.Errorf("dropped message mutated: %+v", req)
	}

	// Contrast: explicit release does recycle — pointer identity proves
	// the freelist path works when ownership is genuinely handed over.
	eng.ReleaseRequest(next)
	if got := eng.AcquireRequest(); got != next {
		t.Error("released request was not recycled")
	}
}

func TestNoLossMeansNoStranding(t *testing.T) {
	// Control: with the filter installed but never firing, everything
	// completes — the stranding above is caused by loss alone.
	eng := NewVEngine(LatencyModel{ClientProxy: 1})
	echo := &delayProbe{id: 0, reply: true}
	if err := eng.Register(echo); err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(ClientConfig{
		Source:  trace.NewSliceSource(make([]ids.ObjectID, 10)),
		Proxies: []ids.NodeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(cl); err != nil {
		t.Fatal(err)
	}
	eng.SetDropFilter(func(msg.Message) bool { return false })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Done() || eng.Dropped() != 0 {
		t.Errorf("control run wrong: done=%v dropped=%d", cl.Done(), eng.Dropped())
	}
}
