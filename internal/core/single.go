package core

import "github.com/adc-sim/adc/internal/ids"

// SingleTable is the paper's single-table (§III.3.1): a bounded LRU list
// that "simply keeps track of the current flow of requests". New and
// re-inserted entries go on top; when the table is full the bottom entry
// drops out.
//
// Two lookup strategies are available. The default keeps a map next to the
// list for O(1) search. The paper's own implementation "requires the
// element-wise search within the list" (§V.3.3) — pass scan=true to
// reproduce that O(n) behaviour for the Fig. 15 ablation.
type SingleTable struct {
	capacity int
	// head/tail sentinels; head.next is the top (most recent).
	head, tail *singleNode
	size       int
	// index is nil in scan mode.
	index map[ids.ObjectID]*singleNode
}

type singleNode struct {
	entry      *Entry
	prev, next *singleNode
}

// NewSingleTable returns an empty single-table with the given capacity.
// scan selects the paper-faithful linear-search mode. Capacity must be
// positive; the constructor in Tables validates configuration.
func NewSingleTable(capacity int, scan bool) *SingleTable {
	t := &SingleTable{
		capacity: capacity,
		head:     &singleNode{},
		tail:     &singleNode{},
	}
	t.head.next = t.tail
	t.tail.prev = t.head
	if !scan {
		t.index = make(map[ids.ObjectID]*singleNode, capacity)
	}
	return t
}

// Len returns the number of stored entries.
func (t *SingleTable) Len() int { return t.size }

// Cap returns the configured capacity.
func (t *SingleTable) Cap() int { return t.capacity }

// Contains reports whether obj has an entry.
func (t *SingleTable) Contains(obj ids.ObjectID) bool {
	return t.find(obj) != nil
}

// Get returns the entry for obj without removing it, or nil. It does not
// touch LRU order: in the paper only (re-)insertion moves an entry to the
// top; Forward_Addr lookups leave the order untouched.
func (t *SingleTable) Get(obj ids.ObjectID) *Entry {
	if n := t.find(obj); n != nil {
		return n.entry
	}
	return nil
}

// Remove takes the entry for obj out of the table, returning nil if absent.
func (t *SingleTable) Remove(obj ids.ObjectID) *Entry {
	n := t.find(obj)
	if n == nil {
		return nil
	}
	t.unlink(n)
	if t.index != nil {
		delete(t.index, obj)
	}
	t.size--
	return n.entry
}

// InsertTop places e on top of the table (the paper's InsertOnTop). If the
// table is full, the bottom entry drops out and is returned; otherwise the
// return is nil. The caller must ensure e's object is not already present.
func (t *SingleTable) InsertTop(e *Entry) (dropped *Entry) {
	var n *singleNode
	if t.size >= t.capacity {
		last := t.tail.prev
		t.unlink(last)
		if t.index != nil {
			delete(t.index, last.entry.Object)
		}
		t.size--
		dropped = last.entry
		// Reuse the node freed by the drop: at steady state (a full
		// table, the common case) InsertTop allocates nothing.
		last.entry = e
		n = last
	} else {
		n = &singleNode{entry: e}
	}
	n.prev = t.head
	n.next = t.head.next
	t.head.next.prev = n
	t.head.next = n
	if t.index != nil {
		t.index[e.Object] = n
	}
	t.size++
	return dropped
}

// Entries returns the entries from top (most recent) to bottom.
func (t *SingleTable) Entries() []*Entry {
	out := make([]*Entry, 0, t.size)
	for n := t.head.next; n != t.tail; n = n.next {
		out = append(out, n.entry)
	}
	return out
}

func (t *SingleTable) find(obj ids.ObjectID) *singleNode {
	if t.index != nil {
		return t.index[obj]
	}
	for n := t.head.next; n != t.tail; n = n.next {
		if n.entry.Object == obj {
			return n
		}
	}
	return nil
}

func (t *SingleTable) unlink(n *singleNode) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}
