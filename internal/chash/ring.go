// Package chash implements a consistent-hashing ring (Karger et al., the
// paper's ref [13]) as an extension baseline next to CARP. The paper cites
// consistent hashing as the other canonical "hashing based" allocation; the
// ring lets the benchmark harness compare ADC against both, and its
// join/leave support powers the infrastructure-change experiments the paper
// lists as future work (§V.1).
package chash

import (
	"fmt"
	"sort"

	"github.com/adc-sim/adc/internal/carp"
	"github.com/adc-sim/adc/internal/ids"
)

// DefaultReplicas is the virtual-node count per proxy. 128 keeps the
// maximum/minimum load ratio within a few percent for small arrays.
const DefaultReplicas = 128

// Ring maps objects to proxies by hashing both onto a circle; an object
// belongs to the first virtual node clockwise from its hash.
type Ring struct {
	replicas int
	points   []point // sorted by hash
	members  map[ids.NodeID]bool
}

type point struct {
	hash uint64
	node ids.NodeID
}

var _ carp.Assigner = (*Ring)(nil)

// NewRing builds a ring over members with the given number of virtual
// nodes per member (0 selects DefaultReplicas).
func NewRing(members []ids.NodeID, replicas int) (*Ring, error) {
	if replicas == 0 {
		replicas = DefaultReplicas
	}
	if replicas < 0 {
		return nil, fmt.Errorf("chash: replicas must be positive, got %d", replicas)
	}
	r := &Ring{replicas: replicas, members: make(map[ids.NodeID]bool)}
	for _, m := range members {
		if err := r.Add(m); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Add joins a proxy to the ring.
func (r *Ring) Add(n ids.NodeID) error {
	if r.members[n] {
		return fmt.Errorf("chash: %v already in ring", n)
	}
	r.members[n] = true
	for i := 0; i < r.replicas; i++ {
		h := pointHash(uint64(n), uint64(i))
		r.points = append(r.points, point{hash: h, node: n})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return nil
}

// Remove takes a proxy out of the ring; its objects redistribute to the
// clockwise successors.
func (r *Ring) Remove(n ids.NodeID) error {
	if !r.members[n] {
		return fmt.Errorf("chash: %v not in ring", n)
	}
	delete(r.members, n)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != n {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// Len returns the number of member proxies.
func (r *Ring) Len() int { return len(r.members) }

// Assign implements carp.Assigner.
func (r *Ring) Assign(obj ids.ObjectID) ids.NodeID {
	if len(r.points) == 0 {
		return ids.None
	}
	h := objectPointHash(uint64(obj))
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= h
	})
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].node
}

func pointHash(node, replica uint64) uint64 {
	return mix(mix(node*0x9E3779B97F4A7C15) ^ mix(replica+0xABCDEF))
}

func objectPointHash(obj uint64) uint64 { return mix(obj + 0x1234567) }

// mix is SplitMix64's finalizer.
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
