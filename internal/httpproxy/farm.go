package httpproxy

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/proxy"
	"github.com/adc-sim/adc/internal/trace"
	"github.com/adc-sim/adc/internal/transport"
	"github.com/adc-sim/adc/internal/workload"
)

// Farm is a complete running HTTP proxy system: N ADC proxies plus an
// origin server, all on loopback ports.
type Farm struct {
	Origin  *Origin
	Proxies []*Proxy

	// client is the farm's client side: one pooled client shared by
	// every Get (it used to be a fresh unpooled client per request).
	client *http.Client
	tracer *obs.Tracer
	nw     *transport.Network
}

// SetTracer installs a request tracer on the whole farm: every proxy, the
// origin, and the farm's own client side (inject/deliver events). Call it
// before driving traffic.
func (f *Farm) SetTracer(t *obs.Tracer) {
	if t != nil {
		// HTTP runs in real time; wall-clock µs are the only meaningful
		// timestamps here (the simulator uses virtual ticks instead).
		t.UseWallClock()
	}
	f.tracer = t
	f.Origin.SetTracer(t)
	for _, p := range f.Proxies {
		p.SetTracer(t)
	}
}

// FarmConfig assembles a farm.
type FarmConfig struct {
	// Proxies is the array size.
	Proxies int
	// Tables sizes each proxy's mapping tables.
	Tables core.Config
	// MaxHops bounds forwarding (0 = unbounded).
	MaxHops int
	// Seed drives the proxies' random peer selection.
	Seed int64
	// MaxActive/MaxQueue bound each proxy's admission gate
	// (see Config; 0 = defaults, negative = unlimited / no queue).
	MaxActive int
	MaxQueue  int
	// NoCoalesce disables per-proxy miss coalescing.
	NoCoalesce bool
	// Replication configures hot-object replication on every proxy
	// (zero value = stock ADC).
	Replication proxy.Replication
	// FaultTolerance configures health probing, failover routing, circuit
	// breakers and hedging on every proxy (zero value = all off).
	FaultTolerance FaultTolerance
	// Tracing configures cross-proxy span tracing on every proxy
	// (zero value = off).
	Tracing Tracing
}

// NewFarm starts the origin and all proxies and wires the peer address
// book. Close the farm when done.
func NewFarm(cfg FarmConfig) (*Farm, error) {
	if cfg.Proxies <= 0 {
		return nil, fmt.Errorf("httpproxy: farm needs at least one proxy, got %d", cfg.Proxies)
	}
	origin, err := NewOrigin()
	if err != nil {
		return nil, err
	}
	f := &Farm{Origin: origin, client: sharedClient}
	for i := 0; i < cfg.Proxies; i++ {
		p, err := NewProxy(Config{
			ID:             ids.NodeID(i),
			Tables:         cfg.Tables,
			OriginURL:      origin.URL(),
			MaxHops:        cfg.MaxHops,
			Seed:           cfg.Seed,
			MaxActive:      cfg.MaxActive,
			MaxQueue:       cfg.MaxQueue,
			NoCoalesce:     cfg.NoCoalesce,
			Replication:    cfg.Replication,
			FaultTolerance: cfg.FaultTolerance,
			Tracing:        cfg.Tracing,
		})
		if err != nil {
			f.Close() //nolint:errcheck // already on the error path
			return nil, err
		}
		f.Proxies = append(f.Proxies, p)
	}
	book := make(map[ids.NodeID]string, cfg.Proxies)
	for _, p := range f.Proxies {
		book[p.ID()] = p.URL()
	}
	for _, p := range f.Proxies {
		p.SetPeers(book)
	}
	return f, nil
}

// AttachNetwork surfaces a TCP transport network's health counters —
// dropped batches and per-destination send-queue depths — in every
// proxy's /debug/vars, next to the farm's own shed/queue_depth fields.
// Pass nil to detach.
func (f *Farm) AttachNetwork(nw *transport.Network) {
	var fn func() NetworkVars
	if nw != nil {
		fn = func() NetworkVars {
			st := nw.Stats()
			return NetworkVars{Dropped: st.Dropped, Queues: nw.QueueDepths(), Links: st.Links}
		}
	}
	f.nw = nw
	for _, p := range f.Proxies {
		p.SetNetworkVars(fn)
	}
}

// NetworkVars snapshots the attached transport network's health counters,
// or nil when no network is attached.
func (f *Farm) NetworkVars() *NetworkVars {
	if f.nw == nil {
		return nil
	}
	st := f.nw.Stats()
	return &NetworkVars{Dropped: st.Dropped, Queues: f.nw.QueueDepths(), Links: st.Links}
}

// Partition cuts all traffic (fetches and probes) between proxies a and b
// in both directions — one partition edge of the chaos harness. Indices
// out of range are ignored.
func (f *Farm) Partition(a, b int) {
	if a < 0 || b < 0 || a >= len(f.Proxies) || b >= len(f.Proxies) || a == b {
		return
	}
	f.Proxies[a].blockPeer(f.Proxies[b].ID())
	f.Proxies[b].blockPeer(f.Proxies[a].ID())
}

// Heal reverses Partition.
func (f *Farm) Heal(a, b int) {
	if a < 0 || b < 0 || a >= len(f.Proxies) || b >= len(f.Proxies) || a == b {
		return
	}
	f.Proxies[a].unblockPeer(f.Proxies[b].ID())
	f.Proxies[b].unblockPeer(f.Proxies[a].ID())
}

// HealthTransitions merges every proxy's health-transition log, sorted by
// time. The chaos harness derives time-to-detect and time-to-recover from
// it: the first down-transition for a killed peer, the first up-transition
// after its restart.
func (f *Farm) HealthTransitions() []HealthTransition {
	var all []HealthTransition
	for _, p := range f.Proxies {
		all = append(all, p.HealthTransitions()...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].At.Before(all[j].At) })
	return all
}

// TraceDumps snapshots every proxy's span ring in-process — the
// local-farm counterpart of scraping each proxy's /debug/trace. All
// proxies share this process's clock, so no ScrapedUs alignment is set.
func (f *Farm) TraceDumps() []obs.SpanDump {
	out := make([]obs.SpanDump, 0, len(f.Proxies))
	for _, p := range f.Proxies {
		out = append(out, p.TraceDump())
	}
	return out
}

// TotalStats aggregates every proxy's counters.
func (f *Farm) TotalStats() metrics.ProxyStats {
	var total metrics.ProxyStats
	for _, p := range f.Proxies {
		s := p.Stats()
		total.Add(s)
	}
	return total
}

// Close shuts down every server in the farm.
func (f *Farm) Close() error {
	var firstErr error
	for _, p := range f.Proxies {
		if err := p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if f.Origin != nil {
		if err := f.Origin.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Get fetches one object through the given proxy, verifying payload
// integrity against the canonical origin payload. It returns whether a
// proxy cache served the request.
func (f *Farm) Get(proxyIdx int, obj ids.ObjectID, reqID string) (hit bool, err error) {
	p := f.Proxies[proxyIdx]
	if f.tracer.Enabled(obs.KindInject) {
		e := obs.Ev(obs.KindInject, ids.Client(0))
		e.Req = HashRequestID(reqID)
		e.Obj = obj
		e.To = p.ID()
		f.tracer.Emit(e)
	}
	req, err := http.NewRequest(http.MethodGet, ObjectURL(p.URL(), obj), nil)
	if err != nil {
		return false, err
	}
	req.Header.Set(HeaderRequestID, reqID)
	resp, err := f.client.Do(req)
	if err != nil {
		return false, fmt.Errorf("httpproxy: get %v: %w", obj, err)
	}
	defer resp.Body.Close() //nolint:errcheck // read side
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("httpproxy: get %v: status %d (%s)", obj, resp.StatusCode, body)
	}
	if want := Payload(obj); string(body) != string(want) {
		return false, fmt.Errorf("httpproxy: payload corruption for %v: got %q want %q", obj, body, want)
	}
	fromOrigin := resp.Header.Get(HeaderOrigin) == "1"
	if f.tracer.Enabled(obs.KindDeliver) {
		e := obs.Ev(obs.KindDeliver, ids.Client(0))
		e.Req = HashRequestID(reqID)
		e.Obj = obj
		e.Loc = parseNodeID(resp.Header.Get(HeaderResolver))
		if fromOrigin {
			e.Arg = 1
		}
		f.tracer.Emit(e)
	}
	return !fromOrigin, nil
}

// RunWorkload drives the farm with a request stream from a single client,
// choosing a random entry proxy per request, and collects hit metrics.
func (f *Farm) RunWorkload(src workload.Source, seed int64) (*metrics.Collector, error) {
	col := metrics.NewCollector(metrics.WithSampleEvery(0))
	rng := rand.New(rand.NewSource(seed))
	counter := 0
	for {
		obj, ok := src.Next()
		if !ok {
			return col, nil
		}
		counter++
		hit, err := f.Get(rng.Intn(len(f.Proxies)), obj, "c0-"+strconv.Itoa(counter))
		if err != nil {
			return nil, err
		}
		// Hops are not modelled at the HTTP layer; record 0.
		col.Record(hit, 0, 0)
	}
}

// RunWorkloadN drives the farm with workers concurrent closed-loop
// clients, splitting the request stream round-robin between them — the
// fast path for warming a farm on a multi-core host. Each worker derives
// its own RNG and request-ID namespace from seed. The aggregate request
// and hit counts are returned; unlike the single-client RunWorkload the
// per-request interleaving (and so the exact hit count) depends on
// scheduling, which is fine for warm-up. workers < 2 delegates to the
// deterministic RunWorkload.
func (f *Farm) RunWorkloadN(src workload.Source, seed int64, workers int) (requests, hits uint64, err error) {
	if workers < 2 {
		col, err := f.RunWorkload(src, seed)
		if err != nil {
			return 0, 0, err
		}
		return col.Requests(), col.Hits(), nil
	}
	all := trace.Drain(src)
	if workers > len(all) && len(all) > 0 {
		workers = len(all)
	}
	parts := make([][]ids.ObjectID, workers)
	for i := range parts {
		parts[i] = make([]ids.ObjectID, 0, (len(all)+workers-1)/workers)
	}
	for i, obj := range all {
		parts[i%workers] = append(parts[i%workers], obj)
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int, objs []ids.ObjectID) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*104729))
			prefix := "c" + strconv.Itoa(w) + "-"
			var reqs, hit uint64
			for n, obj := range objs {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					break
				}
				ok, err := f.Get(rng.Intn(len(f.Proxies)), obj, prefix+strconv.Itoa(n+1))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				reqs++
				if ok {
					hit++
				}
			}
			mu.Lock()
			requests += reqs
			hits += hit
			mu.Unlock()
		}(w, parts[w])
	}
	wg.Wait()
	if firstErr != nil {
		return 0, 0, firstErr
	}
	return requests, hits, nil
}
