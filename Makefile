# Standard development targets. `make race` is part of the merge bar:
# the parallel experiment runner must stay race-clean.

GO ?= go

# Engine hot-path benchmarks tracked in BENCH_engine.json (see DESIGN.md
# "Engine internals" and EXPERIMENTS.md "Profiling the engine").
ENGINE_BENCH = BenchmarkVEngine|BenchmarkEngineADC|BenchmarkClusterRun

# Mapping-table benchmarks tracked in BENCH_tables.json (DESIGN.md "Table
# internals"): Update/Lookup mixes at the paper's reference sizes, plus the
# end-to-end engine benchmark the table overhaul moves. BenchmarkVEngineADC
# rides along as the disabled-tracer overhead guard (DESIGN.md §12): CI
# re-runs it and asserts ≤3% drift against the recorded number.
TABLES_BENCH = BenchmarkTablesUpdate|BenchmarkTablesLookup|BenchmarkVEngineADC$$

# HTTP-farm real-network benchmarks tracked in BENCH_farm.json (DESIGN.md
# "Real-network path"): end-to-end farm throughput serial and fanned-in,
# plus the miss-storm pair whose origin-fetches/op gap measures miss
# coalescing. Interpret req/s against num_cpu/gomaxprocs in the file.
FARM_BENCH = BenchmarkFarmGet|BenchmarkFarmMissStorm

# Hot-object replication benchmark tracked in BENCH_replication.json
# (DESIGN.md "Hot-object replication"): the shifting-Zipf scenario with the
# controller on, with the stock-ADC run on the identical stream embedded as
# the baseline. The custom metrics carry the claim: mw-share (mean windowed
# max/mean load share) and mw-peak-req (mean hottest-proxy receptions per
# window) drop versus the baseline while p99-ticks and hit-rate hold.
REPLICATION_BENCH = BenchmarkReplicationZipf

# Parallel-engine scaling benchmark tracked in BENCH_parallel.json
# (DESIGN.md "Parallel engine internals"): the 10k-proxy / 1M-client
# workload on the sequential oracle and on the sharded engine at 1–8
# shards. Interpret events/s against the file's num_cpu/gomaxprocs header;
# benchjson compare warns when they differ between baseline and candidate.
PARALLEL_BENCH = BenchmarkPEngineScaling

.PHONY: all build test race vet faults bench bench-tables bench-farm bench-parallel bench-replication bench-replication-baseline bench-compare bench-sweep bench-profile loadtest chaos trace-smoke telemetry-smoke figures clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fault-injection gate: race-clean tests of the fault/recovery packages,
# then the resilience experiment at smoke scale (hit rate & completion vs
# message loss, with and without the recovery protocol).
faults:
	$(GO) test -race ./internal/sim ./internal/proxy ./internal/cluster
	$(GO) run ./cmd/adcsweep -metric resilience -scale 0.01 -losses 0,0.01,0.05

# Engine hot-path benchmarks: runs the sim and cluster benchmarks and
# records name, ns/op and allocs/op plus the git SHA in BENCH_engine.json.
# BENCH_baseline.json (the pre-optimization numbers) is embedded under
# "baseline" so the file carries both before and after measurements.
bench: bench-tables
	{ $(GO) version; \
	  $(GO) test -bench '$(ENGINE_BENCH)' -run '^$$' ./internal/sim/ ./internal/cluster/; } \
	| $(GO) run ./cmd/benchjson -baseline BENCH_baseline.json > BENCH_engine.json
	@cat BENCH_engine.json

# Mapping-table benchmarks: reference-size (20k/20k/10k) Update and Lookup
# mixes per backend, recorded with the pre-overhaul numbers embedded as the
# baseline (BENCH_tables_baseline.json).
bench-tables:
	{ $(GO) version; \
	  $(GO) test -bench '$(TABLES_BENCH)' -run '^$$' ./internal/core/ ./internal/sim/; } \
	| $(GO) run ./cmd/benchjson -baseline BENCH_tables_baseline.json > BENCH_tables.json
	@cat BENCH_tables.json

# HTTP-farm benchmarks: real loopback sockets end to end, recorded with
# the pre-optimization numbers (BENCH_farm_baseline.json) embedded.
bench-farm:
	{ $(GO) version; \
	  $(GO) test -bench '$(FARM_BENCH)' -run '^$$' ./internal/httpproxy/; } \
	| $(GO) run ./cmd/benchjson -baseline BENCH_farm_baseline.json > BENCH_farm.json
	@cat BENCH_farm.json

# Open-loop load test against an in-process farm: offered vs achieved rate,
# coordinated-omission-corrected latency quantiles, per-proxy hit/shed
# counts. Tune with RATE/DURATION/PROXIES, e.g.
#   make loadtest RATE=5000 DURATION=30s PROXIES=16
RATE     ?= 2000
DURATION ?= 10s
PROXIES  ?= 8
loadtest:
	$(GO) run ./cmd/adcload -rate $(RATE) -duration $(DURATION) -proxies $(PROXIES)

# Chaos run: kill one proxy mid-load and restart it, reporting windowed
# availability, time-to-detect and time-to-recover (DESIGN.md §16,
# EXPERIMENTS.md "Chaos runs"). Override the schedule with CHAOS=...
CHAOS ?= kill=p3@5s,restart=p3@15s
chaos:
	$(GO) run ./cmd/adcload -rate $(RATE) -duration 20s -proxies $(PROXIES) \
	  -chaos '$(CHAOS)' -quiet

# Parallel-engine scaling benchmark: ~10 GB peak RSS and several minutes
# per variant, so it runs each subbenchmark once. The committed
# BENCH_parallel_baseline.json is embedded for bench-compare.
bench-parallel:
	{ $(GO) version; \
	  $(GO) test -bench '$(PARALLEL_BENCH)' -benchtime 1x -timeout 60m -run '^$$' ./internal/sim/; } \
	| $(GO) run ./cmd/benchjson -baseline BENCH_parallel_baseline.json > BENCH_parallel.json
	@cat BENCH_parallel.json

# Hot-object replication benchmark: the controller-on scenario, recorded
# with the stock-ADC numbers (BENCH_replication_baseline.json) embedded.
bench-replication:
	{ $(GO) version; \
	  $(GO) test -bench '$(REPLICATION_BENCH)' -benchtime 5x -run '^$$' ./internal/cluster/; } \
	| $(GO) run ./cmd/benchjson -baseline BENCH_replication_baseline.json > BENCH_replication.json
	@cat BENCH_replication.json

# Re-records the stock-ADC baseline for bench-replication (same scenario,
# controller off via ADC_REPLICATION=off).
bench-replication-baseline:
	{ $(GO) version; \
	  ADC_REPLICATION=off $(GO) test -bench '$(REPLICATION_BENCH)' -benchtime 5x -run '^$$' ./internal/cluster/; } \
	| $(GO) run ./cmd/benchjson > BENCH_replication_baseline.json
	@cat BENCH_replication_baseline.json

# Regression gate: compares the recorded table numbers against their
# embedded baseline and fails on >10% ns/op regressions. The parallel
# scaling file compares at a looser threshold: its subbenchmarks run once
# (benchtime 1x), so single-run noise is larger.
bench-compare:
	$(GO) run ./cmd/benchjson compare BENCH_tables.json
	$(GO) run ./cmd/benchjson compare BENCH_engine.json
	$(GO) run ./cmd/benchjson compare -threshold 20 BENCH_parallel.json
	$(GO) run ./cmd/benchjson compare -threshold 20 BENCH_farm.json
	$(GO) run ./cmd/benchjson compare -threshold 20 BENCH_replication.json

# Sweep benchmarks compare the sequential and parallel runners; the rest
# regenerate every headline number in EXPERIMENTS.md.
bench-sweep:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# CPU + heap profiles of the engine benchmarks, for pprof inspection:
#   go tool pprof -top cpu.out
#   go tool pprof -top -sample_index=alloc_objects mem.out
bench-profile:
	$(GO) test -bench '$(ENGINE_BENCH)' -run '^$$' \
		-cpuprofile cpu.out -memprofile mem.out ./internal/sim/
	@echo "wrote cpu.out and mem.out"

# Observability smoke: a small traced run on the virtual-time engine, the
# JSONL validated against the event schema, then summarized. CI uploads
# trace-smoke.jsonl as a workflow artifact.
trace-smoke:
	$(GO) run ./cmd/adcsim -runtime vtime -requests 20000 -quiet \
		-trace -trace-out trace-smoke.jsonl
	$(GO) run ./cmd/adctrace validate trace-smoke.jsonl
	$(GO) run ./cmd/adctrace summary trace-smoke.jsonl

# Farm-telemetry smoke (DESIGN.md §17): a traced chaos run — every request
# spanned across proxies, every proxy's /metrics scraped and linted against
# the strict exposition parser — then adctrace farm reconstructs the
# cross-proxy trees from the scraped span dumps and gates on ≥99% of
# sampled requests forming complete (or explicitly truncated) trees.
telemetry-smoke:
	$(GO) run ./cmd/adcload -proxies 8 -rate 1500 -duration 8s -warm 2000 \
	  -chaos 'kill=p2@2s,restart=p2@5s' -probe-interval 50ms -quiet \
	  -trace-sample 1 -trace-dump telemetry-smoke.spans.json -lint-metrics
	$(GO) run ./cmd/adctrace farm -min-complete 0.99 telemetry-smoke.spans.json

figures:
	$(GO) run ./cmd/adcfigures

clean:
	$(GO) clean ./...
	rm -rf figures/*.csv cpu.out mem.out sim.test trace-smoke.jsonl telemetry-smoke.spans.json
