// Package cluster wires complete proxy systems — N proxy agents, an origin
// server and closed-loop client drivers — and runs a workload against them
// on one of the interchangeable runtimes (sequential engine, goroutine
// agents, TCP transport). It is the programmatic equivalent of the paper's
// experimental testbed (§V.1) and the layer the public API and the
// benchmark harness sit on.
package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/adc-sim/adc/internal/agent"
	"github.com/adc-sim/adc/internal/carp"
	"github.com/adc-sim/adc/internal/chash"
	"github.com/adc-sim/adc/internal/coordinator"
	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/hierarchy"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/proxy"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/stats"
	"github.com/adc-sim/adc/internal/trace"
	"github.com/adc-sim/adc/internal/transport"
	"github.com/adc-sim/adc/internal/workload"
)

// Algorithm selects the distributed-caching scheme under test.
type Algorithm int

// Supported algorithms.
const (
	// ADC is the paper's Adaptive Distributed Caching.
	ADC Algorithm = iota + 1
	// CARP is the paper's hashing baseline (§V.1.1).
	CARP
	// CHash is the consistent-hashing extension baseline (ref [13]).
	CHash
	// Hierarchical is the classic parent/child caching tree baseline
	// (refs [20][21][27]): N leaves sharing one root parent.
	Hierarchical
	// Coordinator is the authors' first-generation central-coordinator
	// baseline (§II.1, ref [26]): one dispatcher in front of N caches.
	Coordinator
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case ADC:
		return "adc"
	case CARP:
		return "carp"
	case CHash:
		return "chash"
	case Hierarchical:
		return "hier"
	case Coordinator:
		return "coord"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a CLI string to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "adc":
		return ADC, nil
	case "carp", "hash", "hashing":
		return CARP, nil
	case "chash", "consistent":
		return CHash, nil
	case "hier", "hierarchy", "hierarchical":
		return Hierarchical, nil
	case "coord", "coordinator":
		return Coordinator, nil
	default:
		return 0, fmt.Errorf("cluster: unknown algorithm %q (want adc, carp, chash, hier or coord)", s)
	}
}

// Runtime selects the execution substrate.
type Runtime int

// Supported runtimes.
const (
	// RuntimeSequential is the deterministic single-threaded engine.
	RuntimeSequential Runtime = iota
	// RuntimeAgents runs one goroutine per node (internal/agent).
	RuntimeAgents
	// RuntimeTCP runs every node behind its own loopback TCP listener
	// with binary-framed messages (internal/transport).
	RuntimeTCP
	// RuntimeVirtualTime is the discrete-event engine: deterministic
	// like RuntimeSequential, but every transfer is delayed by a
	// latency model, yielding response-time metrics and supporting
	// open-loop (fixed request rate) injection.
	RuntimeVirtualTime
	// RuntimeParallel is the sharded multi-core virtual-time engine
	// (sim.PEngine): the same discrete-event semantics as
	// RuntimeVirtualTime with byte-identical results at any shard count,
	// executed across Config.Shards cores for large topologies. It
	// supports the lossless protocol only — fault injection, tracing and
	// windowed time-series remain virtual-time-runtime features.
	RuntimeParallel
)

// String implements fmt.Stringer.
func (r Runtime) String() string {
	switch r {
	case RuntimeSequential:
		return "sequential"
	case RuntimeAgents:
		return "agents"
	case RuntimeTCP:
		return "tcp"
	case RuntimeVirtualTime:
		return "vtime"
	case RuntimeParallel:
		return "parallel"
	default:
		return fmt.Sprintf("Runtime(%d)", int(r))
	}
}

// Config describes one simulation run. The zero value is not runnable; use
// the With* helpers in the public package or fill the fields directly.
type Config struct {
	// Algorithm selects ADC, CARP or CHash.
	Algorithm Algorithm

	// NumProxies is the array size (the paper runs 5, §V.2).
	NumProxies int

	// Tables sizes the ADC mapping tables. For CARP/CHash only
	// CachingSize matters (the LRU cache size); the other fields are
	// ignored so one Config can drive a fair comparison.
	Tables core.Config

	// MaxHops bounds ADC request forwarding (0 = unbounded, the
	// paper's setting).
	MaxHops int

	// Seed makes the run deterministic.
	Seed int64

	// EntryPolicy selects how clients pick their first proxy.
	EntryPolicy sim.EntryPolicy

	// Clients is the number of closed-loop drivers (default 1; the
	// trace is split round-robin between them).
	Clients int

	// Window is the moving-average window (default 5000, §V.2.1).
	Window int

	// SampleEvery records one time-series point per n requests
	// (0 disables series collection; summaries are always available).
	SampleEvery uint64

	// Runtime selects sequential, concurrent or virtual-time execution.
	Runtime Runtime

	// Latency is the virtual-time latency model; the zero value selects
	// sim.DefaultLatencyModel(). Used by RuntimeVirtualTime and
	// RuntimeParallel.
	Latency sim.LatencyModel

	// Shards is the number of engine shards for RuntimeParallel
	// (0 = GOMAXPROCS). Results are byte-identical at every shard count;
	// the setting only chooses how many cores the run spreads over.
	// Setting it on any other runtime is a configuration error.
	Shards int

	// OpenLoopInterval switches clients to open-loop injection with
	// this mean inter-arrival time in virtual ticks (0 = closed loop).
	// Requires RuntimeVirtualTime or RuntimeParallel.
	OpenLoopInterval int64

	// Poisson draws exponential inter-arrival times in open-loop mode.
	Poisson bool

	// JoinProxyAt grows the cluster by one fresh ADC proxy when the
	// request stream crosses each index (strictly increasing). Requires
	// ADC, the sequential runtime and a single client (see churn.go).
	JoinProxyAt []uint64

	// Faults injects deterministic failures — seeded message loss, delay
	// jitter, scheduled fail-stop crashes — into the run. Requires
	// RuntimeVirtualTime; nil keeps the paper's lossless transport and
	// leaves every code path byte-identical to a fault-free build.
	Faults *sim.FaultPlan

	// CrashProxyAt / RestartProxyAt are the churn-style convenience
	// spelling of fail-stop failures (see churn.go); they merge into the
	// engine's fault plan. Requires ADC and RuntimeVirtualTime.
	CrashProxyAt   []ProxyCrash
	RestartProxyAt []ProxyRestart

	// Recovery enables the timeout/retransmission/pending-TTL recovery
	// protocol — an extension beyond the paper. Requires
	// RuntimeVirtualTime; the zero value is disabled.
	Recovery sim.Recovery

	// Replication enables the hot-object replication controller on every
	// ADC proxy: hot entries become multi-homed, forwarding picks among
	// the holders by power-of-two-choices on local load estimates, and
	// cold copies drop back toward the stock single-location state (see
	// proxy.Replication). Requires the ADC algorithm; the zero value
	// keeps stock behavior byte-identical.
	Replication proxy.Replication

	// ResponseBuckets, when positive, gives every client a response-time
	// histogram with that many buckets of ResponseBucketTicks width
	// (default 500 ticks), enabling Result.Summary.P99Response. Requires
	// a virtual-time runtime (RuntimeVirtualTime or RuntimeParallel),
	// where response times exist.
	ResponseBuckets     int
	ResponseBucketTicks int

	// Tracer, when non-nil, records per-hop request-path events across
	// clients, proxies, the origin, and the engine's drop paths. Requires
	// a deterministic engine (RuntimeSequential or RuntimeVirtualTime);
	// nil keeps every hot path on its single-branch disabled guard.
	Tracer *obs.Tracer

	// MetricsEvery, when positive, records windowed time-series buckets
	// (hit rate, hops, inter-request gaps, fault counters, per-proxy
	// table occupancy) every MetricsEvery virtual ticks. Requires
	// RuntimeVirtualTime.
	MetricsEvery int64
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch c.Algorithm {
	case ADC, CARP, CHash, Hierarchical, Coordinator:
	default:
		return fmt.Errorf("cluster: invalid algorithm %d", int(c.Algorithm))
	}
	if c.NumProxies <= 0 {
		return fmt.Errorf("cluster: NumProxies must be positive, got %d", c.NumProxies)
	}
	if c.Clients < 0 {
		return fmt.Errorf("cluster: Clients must be non-negative, got %d", c.Clients)
	}
	if c.MaxHops < 0 {
		return fmt.Errorf("cluster: MaxHops must be non-negative, got %d", c.MaxHops)
	}
	if c.Algorithm == ADC {
		if err := c.Tables.Validate(); err != nil {
			return err
		}
	} else if c.Tables.CachingSize <= 0 {
		return fmt.Errorf("cluster: CachingSize must be positive, got %d", c.Tables.CachingSize)
	}
	if c.OpenLoopInterval < 0 {
		return fmt.Errorf("cluster: OpenLoopInterval must be non-negative, got %d", c.OpenLoopInterval)
	}
	if c.OpenLoopInterval > 0 && c.Runtime != RuntimeVirtualTime && c.Runtime != RuntimeParallel {
		return fmt.Errorf("cluster: open-loop injection requires a virtual-time runtime")
	}
	if c.Shards < 0 {
		return fmt.Errorf("cluster: Shards must be non-negative, got %d", c.Shards)
	}
	if c.Shards > 0 && c.Runtime != RuntimeParallel {
		return fmt.Errorf("cluster: Shards requires the parallel runtime")
	}
	if c.Tracer != nil && c.Runtime != RuntimeSequential && c.Runtime != RuntimeVirtualTime {
		return fmt.Errorf("cluster: tracing requires the sequential or virtual-time runtime")
	}
	if c.MetricsEvery < 0 {
		return fmt.Errorf("cluster: MetricsEvery must be non-negative, got %d", c.MetricsEvery)
	}
	if c.MetricsEvery > 0 && c.Runtime != RuntimeVirtualTime {
		return fmt.Errorf("cluster: time-series metrics require the virtual-time runtime")
	}
	if err := c.Replication.Normalize().Validate(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if c.Replication.Enabled && c.Algorithm != ADC {
		return fmt.Errorf("cluster: replication requires the ADC algorithm")
	}
	if c.ResponseBuckets < 0 || c.ResponseBucketTicks < 0 {
		return fmt.Errorf("cluster: response histogram sizes must be non-negative")
	}
	if c.ResponseBuckets > 0 && c.Runtime != RuntimeVirtualTime && c.Runtime != RuntimeParallel {
		return fmt.Errorf("cluster: response histograms require a virtual-time runtime")
	}
	if c.Latency.QueueService && c.Runtime != RuntimeVirtualTime {
		return fmt.Errorf("cluster: queued service requires the virtual-time runtime")
	}
	if err := c.validateChurn(); err != nil {
		return err
	}
	return c.validateFaults()
}

// Result is the outcome of one run.
type Result struct {
	// Summary aggregates all clients.
	Summary metrics.Summary
	// Series is client 0's time series (empty if SampleEvery == 0).
	Series []metrics.Point
	// ProxyStats holds one entry per proxy, indexed by proxy ID.
	ProxyStats []metrics.ProxyStats
	// OriginResolved counts requests the origin server answered.
	OriginResolved uint64
	// Delivered counts engine message deliveries (zero on the concurrent
	// runtimes, which do not track a global delivery counter). Progress
	// displays use it to report events/sec.
	Delivered uint64
	// Dropped counts messages the engine discarded — fault-plan losses
	// and deliveries addressed to crashed proxies. Every drop in a run
	// without retransmission is an undelivered in-flight message whose
	// chain is stranded. Virtual-time runtime only.
	Dropped uint64
	// Injected counts logical client requests; retransmissions of a
	// timed-out request count once. Completion is
	// Summary.Requests/Injected — exactly 1 in lossless runs, below 1
	// when loss strands or abandons chains.
	Injected   uint64
	Completion float64
	// LeakedPending is the total of unretired loop-detection pending
	// entries across ADC proxies at run end — the leaked state a lost
	// reply leaves behind. Recovery's TTL drains it to zero.
	LeakedPending int
	// MaxMeanShare and GiniShare are load-imbalance statistics over the
	// per-proxy request counts: how much hotter the busiest proxy runs
	// than the average one (1.0 = perfectly even) and the Gini
	// coefficient of the load distribution (0 = even, → 1 = one proxy
	// takes everything). Backwarding's single-location convergence shows
	// up here directly under Zipf traffic; the replication controller's
	// job is to push both toward their even-spread ends.
	MaxMeanShare float64
	GiniShare    float64
	// PeakWindowShare and PeakWindowRequests are the windowed versions of
	// the load-imbalance statistics, computed from the per-proxy request
	// deltas between consecutive time-series buckets (zero unless
	// Config.MetricsEvery > 0). PeakWindowShare is the worst single-window
	// max/mean ratio; PeakWindowRequests is the reception count at the
	// hottest proxy in its worst window. Run-total spread hides transient
	// hotspots — after a popularity shift, the new head object's single
	// home absorbs every peer's forwards until the frequency filters
	// re-admit it elsewhere, then the peak rotates to another proxy at
	// the next shift — so only windowed statistics see the concentration
	// replication is built to remove.
	PeakWindowShare    float64
	PeakWindowRequests uint64
	// Buckets is the virtual-time-windowed metrics series (empty unless
	// Config.MetricsEvery > 0).
	Buckets []metrics.Bucket
	// Faults holds the fault-injection counters (zero without a plan).
	Faults sim.FaultStats
	// Algorithm echoes the scheme that produced the result.
	Algorithm Algorithm
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Driver is the client-side interface the cluster works against; both the
// closed-loop sim.Client and the open-loop sim.OpenLoopClient satisfy it.
type Driver interface {
	sim.Node
	Collector() *metrics.Collector
	Done() bool
	SetOnDone(fn func())
	Injected() uint64
}

var (
	_ Driver = (*sim.Client)(nil)
	_ Driver = (*sim.OpenLoopClient)(nil)
)

// Cluster is a fully wired proxy system ready to run once.
type Cluster struct {
	cfg     Config
	nodes   []sim.Node
	clients []Driver
	origin  *sim.Origin

	adcProxies   []*proxy.ADC
	carpProxies  []*carp.Proxy
	hierProxies  []*hierarchy.Proxy
	coordNode    *coordinator.Coordinator
	coordWorkers []*coordinator.Worker

	// churn intercepts the request stream to apply proxy joins.
	churn *churnSource

	// ts is the shared time-series recorder (nil unless MetricsEvery > 0).
	ts *metrics.TimeSeries
}

// New builds the cluster for cfg, with src as the request stream.
func New(cfg Config, src workload.Source) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("cluster: workload source must not be nil")
	}
	if cfg.Clients == 0 {
		cfg.Clients = 1
	}
	if cfg.Window == 0 {
		cfg.Window = metrics.DefaultWindow
	}
	cfg.Recovery = cfg.Recovery.Normalize()
	cfg.Replication = cfg.Replication.Normalize()

	c := &Cluster{cfg: cfg}

	proxyIDs := make([]ids.NodeID, cfg.NumProxies)
	for i := range proxyIDs {
		proxyIDs[i] = ids.NodeID(i)
	}
	// entryIDs is what clients address; most schemes accept requests on
	// any proxy, the coordinator scheme funnels everything through the
	// dispatcher.
	entryIDs := proxyIDs

	switch cfg.Algorithm {
	case ADC:
		for _, id := range proxyIDs {
			p, err := proxy.New(proxy.Config{
				ID:          id,
				Peers:       proxyIDs,
				Tables:      cfg.Tables,
				Seed:        cfg.Seed,
				Recovery:    cfg.Recovery,
				Replication: cfg.Replication,
			})
			if err != nil {
				return nil, err
			}
			c.adcProxies = append(c.adcProxies, p)
			c.nodes = append(c.nodes, p)
		}
	case CARP, CHash:
		var assigner carp.Assigner
		if cfg.Algorithm == CARP {
			assigner = carp.NewHasher(proxyIDs)
		} else {
			ring, err := chash.NewRing(proxyIDs, 0)
			if err != nil {
				return nil, err
			}
			assigner = ring
		}
		for _, id := range proxyIDs {
			p, err := carp.New(carp.Config{
				ID:        id,
				Hasher:    assigner,
				CacheSize: cfg.Tables.CachingSize,
			})
			if err != nil {
				return nil, err
			}
			c.carpProxies = append(c.carpProxies, p)
			c.nodes = append(c.nodes, p)
		}
	case Hierarchical:
		rootID := ids.NodeID(cfg.NumProxies)
		for _, id := range proxyIDs {
			p, err := hierarchy.New(hierarchy.Config{
				ID:        id,
				Role:      hierarchy.Leaf,
				Parent:    rootID,
				CacheSize: cfg.Tables.CachingSize,
			})
			if err != nil {
				return nil, err
			}
			c.hierProxies = append(c.hierProxies, p)
			c.nodes = append(c.nodes, p)
		}
		root, err := hierarchy.New(hierarchy.Config{
			ID:        rootID,
			Role:      hierarchy.Root,
			CacheSize: cfg.Tables.CachingSize,
		})
		if err != nil {
			return nil, err
		}
		c.hierProxies = append(c.hierProxies, root)
		c.nodes = append(c.nodes, root)
	case Coordinator:
		coordID := ids.NodeID(cfg.NumProxies)
		for _, id := range proxyIDs {
			w, err := coordinator.NewWorker(id, cfg.Tables.CachingSize)
			if err != nil {
				return nil, err
			}
			c.coordWorkers = append(c.coordWorkers, w)
			c.nodes = append(c.nodes, w)
		}
		co, err := coordinator.NewCoordinator(coordID, proxyIDs)
		if err != nil {
			return nil, err
		}
		c.coordNode = co
		c.nodes = append(c.nodes, co)
		entryIDs = []ids.NodeID{coordID}
	}

	c.origin = sim.NewOrigin()
	c.nodes = append(c.nodes, c.origin)

	if len(cfg.JoinProxyAt) > 0 {
		c.churn = &churnSource{inner: src, atReqs: cfg.JoinProxyAt}
		src = c.churn
	}

	sources, err := splitSource(src, cfg.Clients)
	if err != nil {
		return nil, err
	}
	for i, s := range sources {
		copts := []metrics.Option{
			metrics.WithWindow(cfg.Window),
			metrics.WithSampleEvery(cfg.SampleEvery),
			metrics.WithExpectedRequests(uint64(s.Total())),
		}
		if cfg.ResponseBuckets > 0 {
			width := cfg.ResponseBucketTicks
			if width == 0 {
				width = 500
			}
			copts = append(copts, metrics.WithResponseHistogram(cfg.ResponseBuckets, width))
		}
		collector := metrics.NewCollector(copts...)
		var (
			cl  Driver
			err error
		)
		if cfg.OpenLoopInterval > 0 {
			cl, err = sim.NewOpenLoopClient(sim.OpenLoopConfig{
				Index:         i,
				Source:        s,
				Proxies:       entryIDs,
				Policy:        cfg.EntryPolicy,
				Seed:          cfg.Seed + int64(i)*104729,
				Collector:     collector,
				MaxHops:       cfg.MaxHops,
				IntervalTicks: cfg.OpenLoopInterval,
				Poisson:       cfg.Poisson,
				Recovery:      cfg.Recovery,
			})
		} else {
			cl, err = sim.NewClient(sim.ClientConfig{
				Index:     i,
				Source:    s,
				Proxies:   entryIDs,
				Policy:    cfg.EntryPolicy,
				Seed:      cfg.Seed + int64(i)*104729,
				Collector: collector,
				MaxHops:   cfg.MaxHops,
				Recovery:  cfg.Recovery,
			})
		}
		if err != nil {
			return nil, err
		}
		c.clients = append(c.clients, cl)
		c.nodes = append(c.nodes, cl)
	}

	if cfg.MetricsEvery > 0 {
		c.ts = metrics.NewTimeSeries(cfg.MetricsEvery)
		c.ts.SetOnRoll(c.snapshotOccupancy)
	}
	if cfg.Tracer != nil || c.ts != nil {
		c.wireObservability(cfg.Tracer)
	}
	return c, nil
}

// wireObservability hands the tracer and time-series recorder to every node
// that emits into them. A nil tracer with a live recorder is valid: only
// the windowed counters are collected then.
func (c *Cluster) wireObservability(tr *obs.Tracer) {
	for _, p := range c.adcProxies {
		p.SetTracer(tr)
	}
	for _, p := range c.carpProxies {
		p.SetTracer(tr)
	}
	c.origin.SetTracer(tr)
	for _, cl := range c.clients {
		switch t := cl.(type) {
		case *sim.Client:
			t.SetTracer(tr)
			t.SetTimeSeries(c.ts)
		case *sim.OpenLoopClient:
			t.SetTracer(tr)
			t.SetTimeSeries(c.ts)
		}
	}
}

// snapshotOccupancy fills a sealing bucket with per-proxy table sizes: the
// total mapping-table entries and the cached subset. It runs on the engine
// thread via TimeSeries.SetOnRoll.
func (c *Cluster) snapshotOccupancy(b *metrics.Bucket) {
	for _, p := range c.adcProxies {
		tb := p.Tables()
		b.Occupancy = append(b.Occupancy, tb.Len())
		b.Cached = append(b.Cached, tb.Caching().Len())
		b.ProxyRequests = append(b.ProxyRequests, p.Stats().Requests)
	}
	for _, p := range c.carpProxies {
		b.Occupancy = append(b.Occupancy, p.CacheLen())
		b.Cached = append(b.Cached, p.CacheLen())
		b.ProxyRequests = append(b.ProxyRequests, p.Stats().Requests)
	}
}

// splitSource partitions src round-robin into n streams. n == 1 passes the
// source through untouched (streaming); larger n drains it into memory.
func splitSource(src workload.Source, n int) ([]workload.Source, error) {
	if n == 1 {
		return []workload.Source{src}, nil
	}
	all := trace.Drain(src)
	parts := make([][]ids.ObjectID, n)
	for i := range parts {
		parts[i] = make([]ids.ObjectID, 0, (len(all)+n-1)/n)
	}
	for i, obj := range all {
		parts[i%n] = append(parts[i%n], obj)
	}
	out := make([]workload.Source, n)
	for i, p := range parts {
		out[i] = trace.NewSliceSource(p)
	}
	return out, nil
}

// ADCProxies exposes the ADC agents (nil for hashing runs).
func (c *Cluster) ADCProxies() []*proxy.ADC { return c.adcProxies }

// CARPProxies exposes the hashing agents (nil for ADC runs).
func (c *Cluster) CARPProxies() []*carp.Proxy { return c.carpProxies }

// HierarchyProxies exposes the tree nodes (leaves then root; nil unless
// the algorithm is Hierarchical).
func (c *Cluster) HierarchyProxies() []*hierarchy.Proxy { return c.hierProxies }

// CoordinatorNodes exposes the dispatcher and its workers (nil unless the
// algorithm is Coordinator).
func (c *Cluster) CoordinatorNodes() (*coordinator.Coordinator, []*coordinator.Worker) {
	return c.coordNode, c.coordWorkers
}

// Origin exposes the origin server node.
func (c *Cluster) Origin() *sim.Origin { return c.origin }

// Clients exposes the client drivers.
func (c *Cluster) Clients() []Driver { return c.clients }

// Run executes the workload to completion and returns the merged result.
// A cluster is single-shot: build a fresh one per run.
func (c *Cluster) Run() (*Result, error) {
	start := time.Now()
	var (
		delivered  uint64
		dropped    uint64
		faultStats sim.FaultStats
	)
	switch c.cfg.Runtime {
	case RuntimeSequential:
		eng := sim.NewEngine()
		for _, n := range c.nodes {
			if err := eng.Register(n); err != nil {
				return nil, err
			}
		}
		if c.churn != nil {
			c.churn.onJoin = func() error { return c.addProxy(eng) }
		}
		if err := eng.Run(); err != nil {
			return nil, err
		}
		if c.churn != nil && c.churn.err != nil {
			return nil, c.churn.err
		}
		delivered = eng.Delivered()
	case RuntimeVirtualTime:
		latency := c.cfg.Latency
		if latency == (sim.LatencyModel{}) {
			latency = sim.DefaultLatencyModel()
		}
		eng := sim.NewVEngine(latency)
		for _, n := range c.nodes {
			if err := eng.Register(n); err != nil {
				return nil, err
			}
		}
		if c.churn != nil {
			c.churn.onJoin = func() error { return c.addProxy(eng) }
		}
		if plan := c.cfg.faultPlan(); plan != nil {
			if err := eng.SetFaultPlan(plan); err != nil {
				return nil, err
			}
		}
		eng.SetTracer(c.cfg.Tracer)
		eng.SetTimeSeries(c.ts)
		if err := eng.Run(); err != nil {
			return nil, err
		}
		c.ts.Finish(eng.VNow())
		delivered = eng.Delivered()
		dropped = eng.Dropped()
		faultStats = eng.FaultStats()
	case RuntimeParallel:
		latency := c.cfg.Latency
		if latency == (sim.LatencyModel{}) {
			latency = sim.DefaultLatencyModel()
		}
		shards := c.cfg.Shards
		if shards == 0 {
			shards = runtime.GOMAXPROCS(0)
		}
		span := c.cfg.NumProxies
		if c.cfg.Algorithm == Hierarchical || c.cfg.Algorithm == Coordinator {
			span++ // the root/dispatcher occupies NodeID(NumProxies)
		}
		part, err := ids.NewShardMap(shards, span)
		if err != nil {
			return nil, err
		}
		eng := sim.NewPEngine(latency, part)
		for _, n := range c.nodes {
			if err := eng.Register(n); err != nil {
				return nil, err
			}
		}
		// Validation already rejected faults, tracing and time-series on
		// this runtime: the parallel engine covers the lossless protocol
		// only, so there is nothing to wire beyond the nodes.
		if err := eng.Run(); err != nil {
			return nil, err
		}
		delivered = eng.Delivered()
	case RuntimeAgents, RuntimeTCP:
		d, err := c.runConcurrent()
		if err != nil {
			return nil, err
		}
		dropped = d
	default:
		return nil, fmt.Errorf("cluster: unknown runtime %d", int(c.cfg.Runtime))
	}
	elapsed := time.Since(start)

	for _, cl := range c.clients {
		if !cl.Done() {
			// Under fault injection an unfinished trace is a measured
			// outcome (stranded chains show up in Completion), not an
			// execution error.
			if !c.cfg.faultsActive() {
				return nil, fmt.Errorf("cluster: client %v did not finish its trace", cl.ID())
			}
			break
		}
	}
	res := c.collect(elapsed)
	res.Delivered = delivered
	res.Dropped = dropped
	res.Faults = faultStats
	return res, nil
}

// concurrentRuntime is the shared shape of the goroutine and TCP runtimes:
// register nodes, then run until the completion signal.
type concurrentRuntime interface {
	Register(n sim.Node) error
	Run(done <-chan struct{})
}

// tcpRuntime adapts transport.Network's error-returning Run.
type tcpRuntime struct{ nw *transport.Network }

func (r tcpRuntime) Register(n sim.Node) error { return r.nw.Register(n) }
func (r tcpRuntime) Run(done <-chan struct{}) {
	// Run only errors on double-start, which this adapter precludes.
	_ = r.nw.Run(done)
}

// runConcurrent executes on a concurrent runtime, terminating when every
// client has consumed its trace. It returns the runtime's dropped-message
// count: the goroutine runtime counts sends to unregistered destinations,
// which previously died inside the runtime and never reached Result — a
// silent wiring failure in pooled sweeps.
func (c *Cluster) runConcurrent() (uint64, error) {
	var rt concurrentRuntime
	if c.cfg.Runtime == RuntimeTCP {
		rt = tcpRuntime{nw: transport.NewNetwork()}
	} else {
		rt = agent.New(0)
	}

	// Completion signalling: all clients done → close(done).
	done := make(chan struct{})
	var once sync.Once
	remaining := int64(len(c.clients))
	var mu sync.Mutex

	for _, n := range c.nodes {
		if err := rt.Register(n); err != nil {
			return 0, err
		}
	}
	for _, cl := range c.clients {
		cl.SetOnDone(func() {
			mu.Lock()
			remaining--
			last := remaining == 0
			mu.Unlock()
			if last {
				once.Do(func() { close(done) })
			}
		})
	}
	rt.Run(done)
	if ar, ok := rt.(*agent.Runtime); ok {
		return ar.Dropped(), nil
	}
	return 0, nil
}

func (c *Cluster) collect(elapsed time.Duration) *Result {
	res := &Result{
		Algorithm: c.cfg.Algorithm,
		Elapsed:   elapsed,
	}
	var merged metrics.Summary
	var respHist *stats.Histogram
	for i, cl := range c.clients {
		s := cl.Collector().Summary()
		if h := cl.Collector().ResponseHistogram(); h != nil {
			// Merging into client 0's histogram is safe: collect runs
			// once, after the run is over.
			if respHist == nil {
				respHist = h
			} else {
				respHist.Merge(h)
			}
		}
		merged.Requests += s.Requests
		merged.Hits += s.Hits
		// Hops, PathLen and MeanResponse re-weight below.
		merged.Hops += s.Hops * float64(s.Requests)
		merged.PathLen += s.PathLen * float64(s.Requests)
		merged.MeanResponse += s.MeanResponse * float64(s.Requests)
		if s.MaxResponse > merged.MaxResponse {
			merged.MaxResponse = s.MaxResponse
		}
		merged.Timeouts += s.Timeouts
		merged.Retries += s.Retries
		merged.Abandoned += s.Abandoned
		merged.StaleReplies += s.StaleReplies
		res.Injected += cl.Injected()
		if i == 0 {
			res.Series = cl.Collector().Series()
		}
	}
	if merged.Requests > 0 {
		merged.HitRate = float64(merged.Hits) / float64(merged.Requests)
		merged.Hops /= float64(merged.Requests)
		merged.PathLen /= float64(merged.Requests)
		merged.MeanResponse /= float64(merged.Requests)
	}
	if respHist != nil {
		merged.P99Response = respHist.Quantile(0.99)
	}
	merged.Elapsed = elapsed
	res.Summary = merged

	if res.Injected > 0 {
		res.Completion = float64(merged.Requests) / float64(res.Injected)
	}

	for _, p := range c.adcProxies {
		res.ProxyStats = append(res.ProxyStats, p.Stats())
		res.LeakedPending += p.PendingLen()
	}
	for _, p := range c.carpProxies {
		res.ProxyStats = append(res.ProxyStats, p.Stats())
	}
	for _, p := range c.hierProxies {
		res.ProxyStats = append(res.ProxyStats, p.Stats())
	}
	for _, w := range c.coordWorkers {
		res.ProxyStats = append(res.ProxyStats, w.Stats())
	}
	if c.coordNode != nil {
		res.ProxyStats = append(res.ProxyStats, c.coordNode.Stats())
	}
	if len(res.ProxyStats) > 0 {
		shares := make([]float64, len(res.ProxyStats))
		for i, s := range res.ProxyStats {
			shares[i] = float64(s.Requests)
		}
		res.MaxMeanShare, _ = stats.MaxMeanRatio(shares)
		res.GiniShare, _ = stats.Gini(shares)
	}
	res.OriginResolved = c.origin.Resolved()
	res.Buckets = c.ts.Buckets()
	res.PeakWindowShare, res.PeakWindowRequests = peakWindowLoad(res.Buckets)
	return res
}

// MeanWindowLoad derives warmup-aware windowed load statistics from the
// time-series buckets: the average over windows of the per-window max/mean
// reception ratio, and the average per-window reception count at the
// hottest proxy. The first skipWindows sealed buckets are excluded — cold
// caches make every configuration behave identically during warmup, so
// including it only dilutes differences (standard cache-experiment
// methodology). Averaging over windows, instead of taking the single worst
// window as Result.PeakWindowShare does, trades sensitivity for robustness:
// a max is an extreme-value statistic and noisy run-to-run, while the mean
// is stable enough for benchmark regression gates.
func MeanWindowLoad(buckets []metrics.Bucket, skipWindows int) (share, peak float64) {
	var prev []uint64
	var n int
	for i, b := range buckets {
		cur := b.ProxyRequests
		if len(cur) == 0 {
			continue
		}
		if i >= skipWindows {
			deltas := make([]float64, len(cur))
			var total, mx float64
			for j, c := range cur {
				d := c
				if j < len(prev) {
					d -= prev[j]
				}
				deltas[j] = float64(d)
				total += deltas[j]
				if deltas[j] > mx {
					mx = deltas[j]
				}
			}
			if total > 0 {
				mm, _ := stats.MaxMeanRatio(deltas)
				share += mm
				peak += mx
				n++
			}
		}
		prev = cur
	}
	if n > 0 {
		share /= float64(n)
		peak /= float64(n)
	}
	return share, peak
}

// peakWindowLoad derives the windowed load-imbalance statistics from the
// per-proxy cumulative request snapshots in the time-series buckets: the
// worst single-window max/mean ratio and the hottest proxy's reception
// count in its worst window. Buckets missing snapshots (MetricsEvery off,
// or non-ADC/CARP topologies) yield zeros. Proxies that join mid-run only
// lengthen the snapshot vector, so indexes stay aligned across buckets.
func peakWindowLoad(buckets []metrics.Bucket) (share float64, peak uint64) {
	var prev []uint64
	for _, b := range buckets {
		cur := b.ProxyRequests
		if len(cur) == 0 {
			continue
		}
		deltas := make([]float64, len(cur))
		var total float64
		for i, c := range cur {
			d := c
			if i < len(prev) {
				d -= prev[i]
			}
			if d > peak {
				peak = d
			}
			deltas[i] = float64(d)
			total += deltas[i]
		}
		if total > 0 {
			if mm, err := stats.MaxMeanRatio(deltas); err == nil && mm > share {
				share = mm
			}
		}
		prev = cur
	}
	return share, peak
}

// Run builds and runs a cluster in one call.
func Run(cfg Config, src workload.Source) (*Result, error) {
	c, err := New(cfg, src)
	if err != nil {
		return nil, err
	}
	return c.Run()
}
