package adc

import (
	"fmt"
	"io"
	"os"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/trace"
	"github.com/adc-sim/adc/internal/workload"
)

// Source is a stream of object requests: Next yields the next requested
// object ID until ok is false; Total is the stream length. Workloads,
// loaded traces and plain slices (SliceSource) all implement it.
type Source interface {
	Next() (obj uint64, ok bool)
	Total() int
}

// sourceAdapter bridges the public Source to the internal interface.
type sourceAdapter struct{ s Source }

func (a sourceAdapter) Next() (ids.ObjectID, bool) {
	obj, ok := a.s.Next()
	return ids.ObjectID(obj), ok
}
func (a sourceAdapter) Total() int { return a.s.Total() }

// internalSource bridges the other way (for generated workloads).
type internalSource struct{ s workload.Source }

func (a internalSource) Next() (uint64, bool) {
	obj, ok := a.s.Next()
	return uint64(obj), ok
}
func (a internalSource) Total() int { return a.s.Total() }

// WorkloadConfig parameterises the synthetic three-phase request stream
// modelled on the paper's Web Polygraph trace (§V.1.6): a fill phase of
// nearly-unique requests, a Zipf-skewed request phase, and an exact replay
// of that phase. See DESIGN.md §3 for why this substitution preserves the
// paper's workload properties.
type WorkloadConfig struct {
	// Requests is the stream length. The paper's trace has 3,990,000.
	Requests int
	// Population is the hot object count of phases 2–3. Default 20% of
	// the fill-phase objects; the calibrated experiments use 10,000 at
	// paper scale.
	Population int
	// Alpha is the Zipf popularity exponent. Default 0.8.
	Alpha float64
	// OneTimerProb is the request-phase probability of a fresh,
	// never-repeated object. Default 0.3; negative selects exactly 0.
	OneTimerProb float64
	// FillFraction is the share of requests in the fill phase.
	// Default 0.25.
	FillFraction float64
	// Seed makes the stream deterministic. Default 1.
	Seed int64
}

// Workload is a generated request stream. It implements Source.
type Workload struct {
	gen *workload.Generator
}

var _ Source = (*Workload)(nil)

// NewWorkload builds a deterministic synthetic workload.
func NewWorkload(cfg WorkloadConfig) (*Workload, error) {
	gen, err := workload.New(workload.Config{
		TotalRequests:  cfg.Requests,
		PopulationSize: cfg.Population,
		Alpha:          cfg.Alpha,
		OneTimerProb:   cfg.OneTimerProb,
		FillFraction:   cfg.FillFraction,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Workload{gen: gen}, nil
}

// Next implements Source.
func (w *Workload) Next() (uint64, bool) {
	obj, ok := w.gen.Next()
	return uint64(obj), ok
}

// Total implements Source.
func (w *Workload) Total() int { return w.gen.Total() }

// Reset rewinds the stream for another replay.
func (w *Workload) Reset() { w.gen.Reset() }

// Boundaries returns the request indexes at which phases 2 and 3 begin.
func (w *Workload) Boundaries() (fillEnd, phase2End int) { return w.gen.Boundaries() }

// Population returns the hot-set size of phases 2–3.
func (w *Workload) Population() int { return w.gen.Population() }

// TraceStats summarises a request stream: length, distinct objects,
// one-timers, the recurring-request share (the warm-cache hit ceiling) and
// popularity concentration.
type TraceStats struct {
	Requests          int
	Distinct          int
	OneTimers         int
	RecurringShare    float64
	Top1Share         float64
	Top10Share        float64
	MaxObjectRequests int
}

// AnalyzeWorkload drains src and computes its statistics; generators can
// be Reset afterwards for reuse.
func AnalyzeWorkload(src Source) TraceStats {
	st := workload.Analyze(sourceAdapter{src})
	return TraceStats{
		Requests:          st.Requests,
		Distinct:          st.Distinct,
		OneTimers:         st.OneTimers,
		RecurringShare:    st.RecurringShare,
		Top1Share:         st.Top1Share,
		Top10Share:        st.Top10Share,
		MaxObjectRequests: st.MaxObjectRequests,
	}
}

// ShiftWorkloadConfig describes a non-stationary workload whose hot set is
// replaced by a disjoint one every Period requests — the stress case for
// self-organization: the proxies must expire stale mappings and converge
// on new locations unaided after every shift.
type ShiftWorkloadConfig struct {
	// Requests is the stream length.
	Requests int
	// Period is the number of requests between hot-set shifts.
	Period int
	// Population is each epoch's hot-set size.
	Population int
	// Alpha is the Zipf exponent within an epoch. Default 0.8.
	Alpha float64
	// OneTimerProb mixes in never-repeated objects. Default 0.
	OneTimerProb float64
	// Seed makes the stream deterministic. Default 1.
	Seed int64
}

// ShiftWorkload is a generated shifting-hot-set stream; it implements
// Source.
type ShiftWorkload struct {
	gen *workload.ShiftGenerator
}

var _ Source = (*ShiftWorkload)(nil)

// NewShiftWorkload builds a deterministic shifting workload.
func NewShiftWorkload(cfg ShiftWorkloadConfig) (*ShiftWorkload, error) {
	gen, err := workload.NewShift(workload.ShiftConfig{
		TotalRequests: cfg.Requests,
		Period:        cfg.Period,
		Population:    cfg.Population,
		Alpha:         cfg.Alpha,
		OneTimerProb:  cfg.OneTimerProb,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &ShiftWorkload{gen: gen}, nil
}

// Next implements Source.
func (w *ShiftWorkload) Next() (uint64, bool) {
	obj, ok := w.gen.Next()
	return uint64(obj), ok
}

// Total implements Source.
func (w *ShiftWorkload) Total() int { return w.gen.Total() }

// Reset rewinds the stream for another replay.
func (w *ShiftWorkload) Reset() { w.gen.Reset() }

// Epochs returns the number of hot-set epochs.
func (w *ShiftWorkload) Epochs() int { return w.gen.Epochs() }

// SliceSource replays a fixed request list.
type SliceSource struct {
	objs []uint64
	pos  int
}

var _ Source = (*SliceSource)(nil)

// NewSliceSource wraps objs without copying.
func NewSliceSource(objs []uint64) *SliceSource { return &SliceSource{objs: objs} }

// Next implements Source.
func (s *SliceSource) Next() (uint64, bool) {
	if s.pos >= len(s.objs) {
		return 0, false
	}
	obj := s.objs[s.pos]
	s.pos++
	return obj, true
}

// Total implements Source.
func (s *SliceSource) Total() int { return len(s.objs) }

// Reset rewinds the source.
func (s *SliceSource) Reset() { s.pos = 0 }

// SaveTrace writes src to w in the binary trace format, so an experiment
// can be repeated on the exact same stream.
func SaveTrace(w io.Writer, src Source) error {
	return trace.Write(w, sourceAdapter{src})
}

// LoadTrace opens a binary trace previously written by SaveTrace.
// The returned Source streams from r; keep r open while consuming.
func LoadTrace(r io.Reader) (Source, error) {
	tr, err := trace.NewReader(r)
	if err != nil {
		return nil, err
	}
	return internalSource{s: tr}, nil
}

// SaveTraceFile writes src to path in the binary trace format.
func SaveTraceFile(path string, src Source) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("adc: create trace: %w", err)
	}
	if err := SaveTrace(f, src); err != nil {
		f.Close() //nolint:errcheck // already on the error path
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("adc: close trace: %w", err)
	}
	return nil
}

// LoadTraceFile loads a whole binary trace file into memory and returns it
// as a replayable Source.
func LoadTraceFile(path string) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("adc: open trace: %w", err)
	}
	defer f.Close() //nolint:errcheck // read-only file
	src, err := LoadTrace(f)
	if err != nil {
		return nil, err
	}
	objs := make([]uint64, 0, src.Total())
	for {
		obj, ok := src.Next()
		if !ok {
			break
		}
		objs = append(objs, obj)
	}
	if len(objs) != src.Total() {
		return nil, fmt.Errorf("adc: trace %s truncated: %d of %d requests", path, len(objs), src.Total())
	}
	return NewSliceSource(objs), nil
}
