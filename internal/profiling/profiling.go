// Package profiling implements the -cpuprofile/-memprofile support shared
// by the CLIs. The produced files are standard pprof profiles:
//
//	go tool pprof -top cpu.out
//	go tool pprof -top -sample_index=alloc_objects mem.out
//
// Experiment fan-outs label their worker goroutines with the pprof label
// "experiment" (internal/experiments), so a figure campaign's CPU profile
// splits per phase: go tool pprof -tagfocus experiment=sweep cpu.out.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function to run after the workload: it ends the CPU profile and
// writes a heap profile to memPath (when non-empty). Either path may be
// empty; with both empty, Start is a no-op and stop never fails.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close() //nolint:errcheck // already failing
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			// An up-to-date heap profile needs a GC so recently freed
			// memory is not misreported as live.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close() //nolint:errcheck // already failing
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("profiling: close heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
