// Package httpproxy is a real HTTP proxy system built on the ADC
// algorithm — the paper's first future-work item ("the creation of a real
// proxy system based on the freely available Squid server", §VI), realised
// with net/http instead of Squid.
//
// Each proxy is an HTTP server; clients GET /obj/<id> from any proxy.
// Unlike the simulator (which, like the paper's testbed, "will not cache
// and transfer the actual objects data", §V.1), this farm moves real
// payload bytes: the caching table governs which payloads a proxy stores.
//
// HTTP's call stack plays the role of the backwarding path: a proxy that
// cannot resolve a request forwards it upstream with an http.Client call,
// and the response naturally retraces the chain of waiting handlers, each
// of which updates its mapping tables exactly as Receive_Reply does
// (Fig. 7). The ADC metadata travels in headers:
//
//	X-ADC-Request-ID   globally unique ID, for loop detection
//	X-ADC-Forwards     number of proxy forwards so far (max-hops bound)
//	X-ADC-Resolver     the agreed location (empty = origin data)
//	X-ADC-Cached       set once some proxy on the chain stores the object
//	X-ADC-Origin       marks payloads produced by the origin server
package httpproxy

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/proxy"
)

// Header names of the ADC-over-HTTP protocol.
const (
	HeaderRequestID = "X-Adc-Request-Id"
	HeaderForwards  = "X-Adc-Forwards"
	HeaderResolver  = "X-Adc-Resolver"
	HeaderCached    = "X-Adc-Cached"
	HeaderOrigin    = "X-Adc-Origin"
	// HeaderTrace/HeaderSpan carry the distributed-tracing context (hex
	// trace ID and parent span ID) between proxy hops; see span.go.
	HeaderTrace = "X-Adc-Trace"
	HeaderSpan  = "X-Adc-Span"
)

// objPathPrefix is the URL prefix objects are served under.
const objPathPrefix = "/obj/"

// ObjectURL returns the URL under base (a proxy or origin base URL) that
// serves obj — the client-side counterpart of the /obj/<id> route, for
// external drivers like cmd/adcload.
func ObjectURL(base string, obj ids.ObjectID) string {
	return base + objPathPrefix + strconv.FormatUint(uint64(obj), 10)
}

// parseObjectPath extracts the object ID from /obj/<id>.
func parseObjectPath(path string) (ids.ObjectID, error) {
	rest, ok := strings.CutPrefix(path, objPathPrefix)
	if !ok {
		return 0, fmt.Errorf("httpproxy: path %q not under %s", path, objPathPrefix)
	}
	v, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("httpproxy: bad object id %q: %w", rest, err)
	}
	return ids.ObjectID(v), nil
}

// Origin is the HTTP origin server: it can produce any object. Payloads
// are deterministic functions of the object ID so tests can verify
// end-to-end integrity through the proxy chain.
type Origin struct {
	ln  net.Listener
	srv *http.Server

	mu       sync.Mutex
	resolved uint64
	tracer   *obs.Tracer
}

// Payload returns the canonical payload of an object.
func Payload(obj ids.ObjectID) []byte {
	return []byte(fmt.Sprintf("object %d body: %x", uint64(obj), uint64(obj)*0x9E3779B97F4A7C15))
}

// NewOrigin starts an origin server on a loopback port.
func NewOrigin() (*Origin, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("httpproxy: origin listen: %w", err)
	}
	o := &Origin{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc(objPathPrefix, o.handle)
	o.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go o.srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on shutdown
	return o, nil
}

// URL returns the origin's base URL.
func (o *Origin) URL() string { return "http://" + o.ln.Addr().String() }

// Resolved returns how many requests the origin answered.
func (o *Origin) Resolved() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.resolved
}

// SetTracer installs the request tracer.
func (o *Origin) SetTracer(t *obs.Tracer) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.tracer = t
}

// Close shuts the origin down.
func (o *Origin) Close() error { return o.srv.Close() }

func (o *Origin) handle(w http.ResponseWriter, r *http.Request) {
	obj, err := parseObjectPath(r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	o.mu.Lock()
	o.resolved++
	tr := o.tracer
	o.mu.Unlock()
	if tr.Enabled(obs.KindOriginResolve) {
		e := obs.Ev(obs.KindOriginResolve, ids.Origin)
		e.Req = HashRequestID(r.Header.Get(HeaderRequestID))
		e.Obj = obj
		tr.Emit(e)
	}
	w.Header().Set(HeaderOrigin, "1")
	if _, err := w.Write(Payload(obj)); err != nil {
		return // client went away; nothing to do
	}
}

// Proxy is one ADC agent speaking HTTP. Handlers may run concurrently;
// the mapping tables and payload store are guarded by mu, which is never
// held across an upstream fetch (holding it would deadlock on forwarding
// loops, where the same proxy serves two requests of one chain).
//
// The serving path is production-shaped: upstream fetches go through the
// shared pooled transport (client.go), concurrent misses on one object
// collapse into a single upstream fetch (flight.go), and entry-request
// concurrency is bounded with load shedding (gate.go).
type Proxy struct {
	id      ids.NodeID
	addr    string // listen address, stable across Kill/Restart
	url     string
	mux     *http.ServeMux
	client  *http.Client
	origin  string
	maxHops int

	gate     *gate
	flights  flightGroup
	coalesce bool

	// Fault tolerance (all nil/zero when FaultTolerance is disabled, so
	// the hot path pays only nil checks). health is an atomic pointer:
	// it is installed by SetPeers after handlers may already be running.
	ft       FaultTolerance
	health   atomic.Pointer[healthMonitor]
	breakers *breakerGroup

	// Telemetry. stages is always on (recording a latency is one mutex +
	// one bucket increment; /metrics pays the snapshot cost, not the hot
	// path). spans is nil with tracing off; spanSeq/traceSeq allocate span
	// and trace IDs off-lock — sampling deliberately does NOT use p.rng,
	// whose draw sequence is part of seeded-run determinism.
	tracing  Tracing
	spans    *obs.SpanRing
	spanSeq  atomic.Uint64
	traceSeq atomic.Uint64
	stages   *metrics.StageSet
	started  time.Time

	// shed/coalesced are updated off-lock: shedding happens precisely
	// when mu is contended, and a follower's ride-along should not
	// serialize on the table lock just to count itself. The fault
	// tolerance counters below follow the same rule — they count on the
	// failure path, outside the table lock.
	shed      atomic.Uint64
	coalesced atomic.Uint64
	retried   atomic.Uint64
	failover  atomic.Uint64
	denied    atomic.Uint64
	hedged    atomic.Uint64
	hedgeWins atomic.Uint64

	// Partition state for the chaos harness. nblocked short-circuits the
	// per-fetch check to one atomic load while no partition is active.
	nblocked  atomic.Int32
	blockMu   sync.Mutex
	blockedTo map[ids.NodeID]struct{}

	mu        sync.Mutex
	ln        net.Listener // current listener; replaced by Restart
	srv       *http.Server // current server; replaced by Restart
	killed    bool         // Kill..Restart window (chaos harness)
	tables    *core.Tables
	store     map[ids.ObjectID][]byte
	pending   map[string]int
	rng       *rand.Rand
	peers     []ids.NodeID
	peerURL   map[ids.NodeID]string
	localTime int64
	stats     metrics.ProxyStats
	tracer    *obs.Tracer
	replica   *replicator        // nil = stock ADC (replication off)
	netVars   func() NetworkVars // optional transport-network section of /debug/vars
}

// FaultTolerance configures the farm's fault-tolerance layer: peer health
// probing with failover routing, per-peer circuit breakers on the upstream
// fetch path, bounded-backoff retries for entry requests, and hedged
// origin fetches. The zero value disables the whole layer — routing,
// fetching and benchmarks behave exactly as without it.
type FaultTolerance struct {
	// Health configures peer probing; Health.Enabled gates the layer.
	Health HealthConfig
	// BreakerThreshold is the consecutive-connection-failure count that
	// opens a peer's circuit (0 = default 5, negative = breakers off).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects fetches before
	// a half-open trial (0 = default 1s).
	BreakerCooldown time.Duration
	// MaxRetries bounds per-entry-request failover retries after a
	// failed chain (0 = default 2, negative = no retries). Mid-chain
	// hops never retry: exactly one proxy — the entry — owns failover,
	// so a dead peer cannot multiply upstream attempts hop by hop.
	MaxRetries int
	// RetryBackoff is the initial retry delay, doubling per attempt
	// (0 = default 25ms).
	RetryBackoff time.Duration
	// HedgeDelay, when positive, starts a parallel direct-origin fetch
	// for an entry chain still unresolved after this long, and the first
	// success wins. Set it near the observed forwarding p99: hedges then
	// trade a small duplicate-fetch rate for cutting the timeout tail of
	// chains through a dying peer. 0 disables hedging.
	HedgeDelay time.Duration
}

// Failover-retry defaults; FaultTolerance fields override.
const (
	defaultEntryRetries = 2
	defaultRetryBackoff = 25 * time.Millisecond
)

// withDefaults normalizes the policy. With Health.Enabled false the whole
// struct collapses to the zero value: no monitor, no breakers, no retries.
func (ft FaultTolerance) withDefaults() FaultTolerance {
	if !ft.Health.Enabled {
		return FaultTolerance{}
	}
	ft.Health = ft.Health.withDefaults()
	switch {
	case ft.MaxRetries < 0:
		ft.MaxRetries = 0
	case ft.MaxRetries == 0:
		ft.MaxRetries = defaultEntryRetries
	}
	if ft.RetryBackoff <= 0 {
		ft.RetryBackoff = defaultRetryBackoff
	}
	return ft
}

// Config assembles one HTTP proxy.
type Config struct {
	// ID is the proxy's node ID.
	ID ids.NodeID
	// Tables sizes the mapping tables.
	Tables core.Config
	// OriginURL is the origin server's base URL.
	OriginURL string
	// MaxHops bounds proxy forwarding (0 = unbounded).
	MaxHops int
	// Seed drives the random peer selection.
	Seed int64
	// MaxActive bounds concurrently served entry requests
	// (0 = defaultMaxActive, negative = unlimited).
	MaxActive int
	// MaxQueue bounds entry requests waiting for an active slot before
	// shedding kicks in (0 = defaultMaxQueue, negative = no queue).
	MaxQueue int
	// NoCoalesce disables miss coalescing (ablation and tests).
	NoCoalesce bool
	// Replication configures the hot-object replication controller
	// (see internal/proxy; zero value = stock ADC).
	Replication proxy.Replication
	// FaultTolerance configures health probing, failover routing,
	// circuit breakers and hedging (zero value = all off).
	FaultTolerance FaultTolerance
	// Tracing configures cross-proxy span tracing (zero value = off).
	Tracing Tracing
	// Client overrides the shared pooled HTTP client (tests).
	Client *http.Client
}

// NewProxy starts a proxy on a loopback port. Peers are introduced later
// via SetPeers (all proxies must exist before addresses are known).
func NewProxy(cfg Config) (*Proxy, error) {
	tables, err := core.NewTables(cfg.Tables)
	if err != nil {
		return nil, err
	}
	repCfg := cfg.Replication.Normalize()
	if err := repCfg.Validate(); err != nil {
		return nil, fmt.Errorf("httpproxy: proxy %v: %w", cfg.ID, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("httpproxy: proxy %v listen: %w", cfg.ID, err)
	}
	client := cfg.Client
	if client == nil {
		client = sharedClient
	}
	ft := cfg.FaultTolerance.withDefaults()
	p := &Proxy{
		id:       cfg.ID,
		addr:     ln.Addr().String(),
		url:      "http://" + ln.Addr().String(),
		ln:       ln,
		client:   client,
		origin:   cfg.OriginURL,
		maxHops:  cfg.MaxHops,
		gate:     newGate(cfg.MaxActive, cfg.MaxQueue),
		coalesce: !cfg.NoCoalesce,
		ft:       ft,
		tracing:  cfg.Tracing.withDefaults(),
		stages:   metrics.NewStageSet(),
		started:  time.Now(),
		tables:   tables,
		store:    make(map[ids.ObjectID][]byte),
		pending:  make(map[string]int),
		rng:      rand.New(rand.NewSource(cfg.Seed ^ (int64(cfg.ID)+1)*0x1F3B)),
		peerURL:  make(map[ids.NodeID]string),
	}
	if p.tracing.Enabled {
		p.spans = obs.NewSpanRing(p.tracing.RingSize)
	}
	if repCfg.Enabled {
		p.replica = newReplicator(repCfg)
	}
	if ft.Health.Enabled {
		p.breakers = newBreakerGroup(ft.BreakerThreshold, ft.BreakerCooldown)
	}
	mux := http.NewServeMux()
	mux.HandleFunc(objPathPrefix, p.handle)
	mux.HandleFunc(healthzPath, p.handleHealthz)
	registerDebug(mux, p)
	p.mux = mux
	p.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go p.srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on shutdown
	return p, nil
}

// Handler exposes the proxy's full mux (object path plus debug endpoints)
// for in-process serving, e.g. under httptest.
func (p *Proxy) Handler() http.Handler { return p.mux }

// SetTracer installs the request tracer.
func (p *Proxy) SetTracer(t *obs.Tracer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tracer = t
}

// URL returns the proxy's base URL, stable across Kill/Restart.
func (p *Proxy) URL() string { return p.url }

// ID returns the proxy's node ID.
func (p *Proxy) ID() ids.NodeID { return p.id }

// SetPeers installs the full peer address book (including this proxy).
func (p *Proxy) SetPeers(urls map[ids.NodeID]string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.peers = p.peers[:0]
	for id := range urls {
		p.peers = append(p.peers, id)
	}
	// Deterministic order for the random selection.
	for i := 1; i < len(p.peers); i++ {
		for j := i; j > 0 && p.peers[j] < p.peers[j-1]; j-- {
			p.peers[j], p.peers[j-1] = p.peers[j-1], p.peers[j]
		}
	}
	p.peerURL = urls
	if p.replica != nil {
		p.replica.sizeLoad(p.peers)
	}
	if p.ft.Health.Enabled && p.health.Load() == nil {
		p.health.Store(newHealthMonitor(p.ft.Health, p.id, urls, p.isBlocked))
	}
}

// Stats snapshots the proxy's counters, folding in the off-lock shed and
// coalescing counts.
func (p *Proxy) Stats() metrics.ProxyStats {
	p.mu.Lock()
	s := p.stats
	p.mu.Unlock()
	s.Shed = p.shed.Load()
	s.CoalescedMisses = p.coalesced.Load()
	s.RetriedFetches = p.retried.Load()
	s.FailoverOrigin = p.failover.Load()
	s.BreakerDenied = p.denied.Load()
	s.HedgedFetches = p.hedged.Load()
	s.HedgeWins = p.hedgeWins.Load()
	return s
}

// QueueDepth reports how many entry requests are waiting for an admission
// slot right now.
func (p *Proxy) QueueDepth() int64 { return p.gate.depth() }

// CacheLen returns the number of stored payloads.
func (p *Proxy) CacheLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.store)
}

// Close shuts the proxy down, stopping the health monitor first so its
// probe goroutines do not outlive the farm.
func (p *Proxy) Close() error {
	if m := p.health.Load(); m != nil {
		m.close()
	}
	p.mu.Lock()
	srv := p.srv
	killed := p.killed
	p.mu.Unlock()
	if killed {
		return nil // Kill already closed the listener and server
	}
	return srv.Close()
}

// Kill simulates a process crash for the chaos harness: the listener and
// server close, cutting in-flight requests. The in-memory tables and store
// survive — Restart models a fast process restart on the same port, not a
// cold rejoin — but peers see exactly what a crash looks like: refused
// connections and failed probes.
func (p *Proxy) Kill() error {
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		return nil
	}
	p.killed = true
	srv := p.srv
	p.mu.Unlock()
	// A dead process does not probe; freeze this proxy's own monitor.
	if m := p.health.Load(); m != nil {
		m.pause()
	}
	return srv.Close()
}

// Restart rebinds a killed proxy's listener on its original port and
// resumes serving and probing. The OS may hold the port briefly after
// Kill, so binding retries for up to ~1s.
func (p *Proxy) Restart() error {
	p.mu.Lock()
	if !p.killed {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", p.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("httpproxy: restart %v on %s: %w", p.id, p.addr, err)
	}
	srv := &http.Server{Handler: p.mux, ReadHeaderTimeout: 5 * time.Second}
	p.mu.Lock()
	p.ln = ln
	p.srv = srv
	p.killed = false
	p.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on shutdown
	if m := p.health.Load(); m != nil {
		m.resume()
	}
	return nil
}

// Killed reports whether the proxy is inside a Kill..Restart window.
func (p *Proxy) Killed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// blockPeer cuts this proxy's outbound traffic (fetches and probes) to
// peer — one direction of a chaos partition.
func (p *Proxy) blockPeer(peer ids.NodeID) {
	p.blockMu.Lock()
	if p.blockedTo == nil {
		p.blockedTo = make(map[ids.NodeID]struct{})
	}
	if _, ok := p.blockedTo[peer]; !ok {
		p.blockedTo[peer] = struct{}{}
		p.nblocked.Add(1)
	}
	p.blockMu.Unlock()
}

// unblockPeer heals one direction of a partition.
func (p *Proxy) unblockPeer(peer ids.NodeID) {
	p.blockMu.Lock()
	if _, ok := p.blockedTo[peer]; ok {
		delete(p.blockedTo, peer)
		p.nblocked.Add(-1)
	}
	p.blockMu.Unlock()
}

// isBlocked reports whether outbound traffic to peer is partitioned away.
// The atomic short-circuits the check to one load while no partition is
// active, which is every request of a non-chaos run.
func (p *Proxy) isBlocked(peer ids.NodeID) bool {
	if p.nblocked.Load() == 0 {
		return false
	}
	p.blockMu.Lock()
	_, ok := p.blockedTo[peer]
	p.blockMu.Unlock()
	return ok
}

// HealthState reports this proxy's belief about peer (PeerUp when health
// probing is off).
func (p *Proxy) HealthState(peer ids.NodeID) PeerState {
	if m := p.health.Load(); m != nil {
		return m.state(peer)
	}
	return PeerUp
}

// HealthTransitions returns the monitor's timestamped transition log (nil
// when health probing is off) — the chaos harness's time-to-detect and
// time-to-recover source.
func (p *Proxy) HealthTransitions() []HealthTransition {
	if m := p.health.Load(); m != nil {
		return m.Transitions()
	}
	return nil
}

// handle is Receive_Request (Fig. 5) over HTTP: it parses the request,
// opens the per-proxy telemetry envelope (server span + server-stage
// latency), and delegates the protocol work to serve.
func (p *Proxy) handle(w http.ResponseWriter, r *http.Request) {
	obj, err := parseObjectPath(r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reqID := r.Header.Get(HeaderRequestID)
	if reqID == "" {
		http.Error(w, "missing "+HeaderRequestID, http.StatusBadRequest)
		return
	}
	forwards, _ := strconv.Atoi(r.Header.Get(HeaderForwards))

	sc := p.spanContext(r.Header, forwards)
	start := nowUs()
	errMsg := p.serve(w, r, obj, reqID, forwards, sc)
	p.stages.Observe(metrics.StageServer, nowUs()-start)
	sc.finishServer(start, obj, errMsg)
}

// serve runs one request through admission, the hit path, and the miss
// path. The returned string is the server span's error annotation: "" for
// a served reply, a short description otherwise.
func (p *Proxy) serve(w http.ResponseWriter, r *http.Request, obj ids.ObjectID, reqID string, forwards int, sc *spanCtx) string {
	// Admission control at the edge: entry requests beyond the bounded
	// queue are shed with 429. Forwarded hops bypass the gate — they
	// already hold a slot at their entry proxy, and gating them
	// mid-chain could deadlock a chain revisiting a saturated proxy.
	if forwards == 0 {
		gateStart := nowUs()
		admitted := p.gate.enter()
		p.stages.Observe(metrics.StageGateWait, nowUs()-gateStart)
		if !admitted {
			sc.record(obs.SpanGateWait, gateStart, obj, "", "shed")
			p.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "proxy overloaded", http.StatusTooManyRequests)
			return "shed"
		}
		sc.record(obs.SpanGateWait, gateStart, obj, "", "")
		defer p.gate.leave()
	}

	// Decide under the lock: local hit, or where to forward.
	p.mu.Lock()
	p.localTime++
	p.stats.Requests++
	if p.replica != nil && p.localTime%p.replica.cfg.Window == 0 {
		p.rollWindowLocked()
	}
	if payload, ok := p.store[obj]; ok {
		p.stats.LocalHits++
		prevLoc := ids.None
		if p.replica != nil {
			p.noteHitLocked(obj)
			prevLoc, _ = p.tables.ForwardLocation(obj)
		}
		p.tables.Recycle(p.tables.Update(obj, p.id, p.localTime))
		var adv advertisement
		if p.replica != nil {
			adv = p.maybePushLocked(obj, prevLoc, parseNodeID(r.Header.Get(HeaderSender)))
		}
		if p.tracer.Enabled(obs.KindHit) {
			e := obs.Ev(obs.KindHit, p.id)
			e.Req = HashRequestID(reqID)
			e.Obj = obj
			e.Loc = p.id
			e.Hops = int32(forwards)
			p.tracer.Emit(e)
		}
		p.mu.Unlock()
		w.Header().Set(HeaderResolver, p.id.String())
		w.Header().Set(HeaderCached, "1")
		adv.set(w.Header())
		_, _ = w.Write(payload)
		return ""
	}
	looped := p.pending[reqID] > 0
	atMax := p.maxHops > 0 && forwards >= p.maxHops
	p.mu.Unlock()

	// Miss path. Entry requests coalesce: concurrent misses on one cold
	// object share a single upstream chain (see flight.go for why
	// forwarded hops must not join flights). Each waiter still runs its
	// own Receive_Reply below. Entry chains also own the fault-tolerance
	// policy (resolveEntry): retries, hedging and the origin fallback run
	// at exactly one proxy per request, so a dead peer cannot multiply
	// upstream attempts hop by hop.
	entryChain := forwards == 0 && !looped && !atMax
	var res flightResult
	switch {
	case p.coalesce && entryChain:
		flightStart := nowUs()
		var shared bool
		res, shared = p.flights.do(obj, func() flightResult {
			// The flight leader's closure runs under the LEADER's span
			// context: followers see a flight_wait span, the leader's tree
			// carries the actual fetch spans — the shape real distributed
			// tracers give coalesced work.
			return p.resolveEntry(obj, reqID, sc)
		})
		if shared {
			p.coalesced.Add(1)
			p.stages.Observe(metrics.StageFlightWait, nowUs()-flightStart)
			sc.record(obs.SpanFlightWait, flightStart, obj, "", "")
		}
	case entryChain:
		res = p.resolveEntry(obj, reqID, sc)
	default:
		res = p.resolveMiss(obj, reqID, forwards, looped, atMax, sc)
	}

	if res.err != nil || res.status != http.StatusOK {
		if res.err != nil {
			http.Error(w, res.err.Error(), http.StatusBadGateway)
			return "upstream: " + res.err.Error()
		}
		http.Error(w, "upstream status", res.status)
		return "upstream status " + strconv.Itoa(res.status)
	}

	// Receive_Reply (Fig. 7): claim the resolver slot for origin data,
	// learn the location, cache if the tables promote the object.
	p.mu.Lock()
	p.stats.RepliesSeen++
	resolver := parseNodeID(res.hdr.Get(HeaderResolver))
	if resolver == ids.None {
		resolver = p.id
	}
	out := p.tables.Update(obj, resolver, p.localTime)
	if out.To == core.KindCaching {
		if out.From != core.KindCaching {
			p.stats.CacheInsertions++
		}
		p.store[obj] = res.body
	}
	if out.CacheEvicted != nil {
		p.stats.CacheEvictions++
		delete(p.store, out.CacheEvicted.Object)
	}
	outArg := obs.EncodeOutcome(int(out.From), int(out.To),
		out.CacheEvicted != nil, out.MultipleEvicted != nil, out.Dropped != nil)
	p.tables.Recycle(out) // last read of the outcome
	if p.replica != nil {
		p.learnReplicasLocked(obj, resolver, res.hdr, res.body)
	}
	cached := res.hdr.Get(HeaderCached) == "1"
	if !cached {
		if _, stillCached := p.store[obj]; stillCached {
			resolver = p.id
			cached = true
		}
	}
	if p.tracer.Enabled(obs.KindBackward) {
		e := obs.Ev(obs.KindBackward, p.id)
		e.Req = HashRequestID(reqID)
		e.Obj = obj
		e.Loc = resolver
		e.Hops = int32(forwards)
		e.Arg = outArg
		p.tracer.Emit(e)
	}
	p.mu.Unlock()

	w.Header().Set(HeaderResolver, resolver.String())
	if cached {
		w.Header().Set(HeaderCached, "1")
	}
	if res.hdr.Get(HeaderOrigin) == "1" {
		w.Header().Set(HeaderOrigin, "1")
	}
	propagateReplication(w.Header(), res.hdr)
	_, _ = w.Write(res.body)
	return ""
}

// resolveMiss is the forwarding half of a miss: it registers the pending
// pass for loop detection, picks the upstream (Forward_Addr, Fig. 6),
// performs the fetch outside the lock (the chain may revisit us), and
// retires the pending pass. looped/atMax carry the entry decision so the
// stats and routing reason match what the caller observed.
func (p *Proxy) resolveMiss(obj ids.ObjectID, reqID string, forwards int, looped, atMax bool, sc *spanCtx) flightResult {
	p.mu.Lock()
	p.pending[reqID]++
	var upstream string
	upNode := ids.Origin
	reason := obs.ReasonLoop
	switch {
	case looped, atMax:
		if looped {
			p.stats.LoopsDetected++
		} else {
			reason = obs.ReasonMaxHops
		}
		p.stats.ForwardOrigin++
		upstream = p.origin
	default:
		upstream, upNode, reason = p.forwardAddrLocked(obj, forwards == 0)
	}
	if p.tracer.Enabled(obs.KindForward) {
		e := obs.Ev(obs.KindForward, p.id)
		e.Req = HashRequestID(reqID)
		e.Obj = obj
		e.To = upNode
		e.Hops = int32(forwards)
		e.Arg = reason
		p.tracer.Emit(e)
	}
	p.mu.Unlock()

	var res flightResult
	res.body, res.hdr, res.status, res.err = p.fetch(upstream, upNode, obj, reqID, forwards+1, sc)

	p.mu.Lock()
	// Retire the stored backwarding pass.
	if n := p.pending[reqID]; n > 1 {
		p.pending[reqID] = n - 1
	} else {
		delete(p.pending, reqID)
	}
	p.mu.Unlock()
	return res
}

// forwardAddrLocked is Forward_Addr (Fig. 6); p.mu must be held. Besides
// the upstream URL it reports the destination node and the routing reason
// for the trace. With health probing on, destinations the monitor believes
// down are skipped: a learned location that died is lazily invalidated
// (mirroring the virtual-time path's stale-location invalidation) and the
// forward falls back — to the origin at the entry proxy (the one place
// where giving up on peers cannot lengthen a chain), to a random routable
// peer mid-chain.
func (p *Proxy) forwardAddrLocked(obj ids.ObjectID, entry bool) (string, ids.NodeID, int64) {
	if p.replica != nil {
		return p.forwardAddrReplicatedLocked(obj, entry)
	}
	m := p.health.Load()
	if loc, ok := p.tables.ForwardLocation(obj); ok {
		if loc == p.id {
			p.stats.ForwardOrigin++
			return p.origin, ids.Origin, obs.ReasonSelfOrigin
		}
		if url, known := p.peerURL[loc]; known {
			if m.routable(loc) {
				p.stats.ForwardLearned++
				return url, loc, obs.ReasonLearned
			}
			// The learned location is down: demote the stale entry so
			// later requests relearn, then fail over.
			if p.tables.Invalidate(obj) {
				p.stats.StaleInvalidated++
			}
			if entry {
				p.stats.ForwardOrigin++
				return p.origin, ids.Origin, obs.ReasonFailover
			}
		}
	}
	if peer, ok := p.pickPeerLocked(m); ok {
		p.stats.ForwardRandom++
		return p.peerURL[peer], peer, obs.ReasonRandom
	}
	// Every peer is down; the origin is the only resolver left.
	p.stats.ForwardOrigin++
	return p.origin, ids.Origin, obs.ReasonFailover
}

// pickPeerLocked draws a random peer, skipping down ones. With health
// probing off (nil monitor) it makes exactly the one rng draw the stock
// path made, keeping seeded runs byte-identical.
func (p *Proxy) pickPeerLocked(m *healthMonitor) (ids.NodeID, bool) {
	if m == nil {
		return p.peers[p.rng.Intn(len(p.peers))], true
	}
	cand := make([]ids.NodeID, 0, len(p.peers))
	for _, peer := range p.peers {
		if m.routable(peer) {
			cand = append(cand, peer)
		}
	}
	if len(cand) == 0 {
		return ids.None, false
	}
	return cand[p.rng.Intn(len(cand))], true
}

// resolved reports whether a flight result is worth returning to the
// client: the transport worked and the upstream did not fail server-side.
// 4xx passes through — retrying a Bad Request elsewhere cannot fix it.
func resolved(res flightResult) bool {
	return res.err == nil && res.status < http.StatusInternalServerError
}

// resolveEntry is the entry chain's miss path: resolveMiss plus the
// fault-tolerance policy — bounded-backoff retries of the whole chain and
// a final direct-origin fallback. Only entry proxies run it, for the same
// reason only they coalesce: exactly one proxy owns failover per request,
// so retries cannot stack hop by hop and the fallback cannot loop.
func (p *Proxy) resolveEntry(obj ids.ObjectID, reqID string, sc *spanCtx) flightResult {
	res := p.resolveMissHedged(obj, reqID, sc)
	if resolved(res) || !p.ft.Health.Enabled {
		return res
	}
	backoff := p.ft.RetryBackoff
	for attempt := 0; attempt < p.ft.MaxRetries; attempt++ {
		p.retried.Add(1)
		time.Sleep(backoff)
		backoff *= 2
		res = p.resolveMiss(obj, reqID, 0, false, false, sc.tagged("retry="+strconv.Itoa(attempt+1)))
		if resolved(res) {
			return res
		}
	}
	// Last resort: ask the origin directly. The failed attempts already
	// fed the health monitor, so routing is healing; this keeps the
	// client whole in the meantime.
	p.failover.Add(1)
	var alt flightResult
	alt.body, alt.hdr, alt.status, alt.err = p.fetch(p.origin, ids.Origin, obj, reqID, 1, sc.tagged("failover"))
	if resolved(alt) {
		return alt
	}
	return res // origin failed too; report the original chain error
}

// resolveMissHedged runs an entry miss with an optional hedge: if the
// chain is still unresolved after HedgeDelay, a parallel direct-origin
// fetch starts and the first usable answer wins. Both channels are
// buffered so the losing branch always completes into the buffer and its
// goroutine exits — no leaks, no waiting on the loser.
func (p *Proxy) resolveMissHedged(obj ids.ObjectID, reqID string, sc *spanCtx) flightResult {
	if p.ft.HedgeDelay <= 0 {
		return p.resolveMiss(obj, reqID, 0, false, false, sc)
	}
	primary := make(chan flightResult, 1)
	go func() { primary <- p.resolveMiss(obj, reqID, 0, false, false, sc) }()
	timer := time.NewTimer(p.ft.HedgeDelay)
	defer timer.Stop()
	select {
	case res := <-primary:
		return res
	case <-timer.C:
	}
	p.hedged.Add(1)
	hedge := make(chan flightResult, 1)
	go func() {
		var res flightResult
		res.body, res.hdr, res.status, res.err = p.fetch(p.origin, ids.Origin, obj, reqID, 1, sc.tagged("hedge"))
		hedge <- res
	}()
	select {
	case res := <-primary:
		if resolved(res) {
			return res
		}
		if alt := <-hedge; resolved(alt) {
			p.hedgeWins.Add(1)
			return alt
		}
		return res
	case alt := <-hedge:
		if resolved(alt) {
			p.hedgeWins.Add(1)
			return alt
		}
		return <-primary
	}
}

// fetch issues the upstream GET carrying the ADC headers. dest names the
// destination node so the fault-tolerance layer can attribute the outcome:
// a partition blocks the connection up front, an open breaker fails fast,
// and the connection result feeds dest's health machine and circuit. Only
// transport errors count against a peer — a live proxy answering 5xx is a
// content problem, not a dead process.
func (p *Proxy) fetch(base string, dest ids.NodeID, obj ids.ObjectID, reqID string, forwards int, sc *spanCtx) ([]byte, http.Header, int, error) {
	start := nowUs()
	stage, spanStage := metrics.StageForward, obs.SpanForward
	if !dest.IsProxy() {
		stage, spanStage = metrics.StageOrigin, obs.SpanOrigin
	}
	if dest.IsProxy() && p.isBlocked(dest) {
		if m := p.health.Load(); m != nil {
			m.reportFailure(dest)
		}
		sc.record(spanStage, start, obj, dest.String(), "partitioned")
		return nil, nil, 0, fmt.Errorf("httpproxy: %v unreachable from %v (partitioned)", dest, p.id)
	}
	if dest.IsProxy() && !p.breakers.allow(dest) {
		p.denied.Add(1)
		sc.record(obs.SpanBreakerDenied, start, obj, dest.String(), errBreakerOpen.Error())
		return nil, nil, 0, fmt.Errorf("httpproxy: fetch %v: %w", dest, errBreakerOpen)
	}
	req, err := http.NewRequest(http.MethodGet, ObjectURL(base, obj), nil)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("httpproxy: build upstream request: %w", err)
	}
	req.Header.Set(HeaderRequestID, reqID)
	req.Header.Set(HeaderForwards, strconv.Itoa(forwards))
	// The span is allocated before the request so its ID can travel in
	// X-Adc-Span: the receiving proxy's server span parents onto it, which
	// is the link adctrace's cross-proxy tree reconstruction rides on.
	spanID := sc.child()
	sc.setHeaders(req.Header, spanID)
	if p.replica != nil {
		// Identify this proxy as the forwarding hop so a holder upstream
		// knows which recent requester a replica push should target.
		req.Header.Set(HeaderSender, p.id.String())
	}
	resp, err := p.client.Do(req)
	if dest.IsProxy() {
		p.breakers.report(dest, err == nil)
		if m := p.health.Load(); m != nil {
			if err != nil {
				m.reportFailure(dest)
			} else {
				m.reportSuccess(dest)
			}
		}
	}
	if err != nil {
		sc.recordID(spanID, spanStage, start, obj, dest.String(), err.Error())
		return nil, nil, 0, fmt.Errorf("httpproxy: upstream fetch: %w", err)
	}
	defer resp.Body.Close() //nolint:errcheck // read side
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		sc.recordID(spanID, spanStage, start, obj, dest.String(), err.Error())
		return nil, nil, 0, fmt.Errorf("httpproxy: read upstream body: %w", err)
	}
	p.stages.Observe(stage, nowUs()-start)
	spanErr := ""
	if resp.StatusCode != http.StatusOK {
		spanErr = "status " + strconv.Itoa(resp.StatusCode)
	}
	sc.recordID(spanID, spanStage, start, obj, dest.String(), spanErr)
	return body, resp.Header, resp.StatusCode, nil
}

// parseNodeID reverses ids.NodeID.String for proxy IDs; anything else
// (empty, "Origin") maps to None.
func parseNodeID(s string) ids.NodeID {
	rest, ok := strings.CutPrefix(s, "Proxy[")
	if !ok {
		return ids.None
	}
	rest, ok = strings.CutSuffix(rest, "]")
	if !ok {
		return ids.None
	}
	v, err := strconv.Atoi(rest)
	if err != nil || v < 0 {
		return ids.None
	}
	return ids.NodeID(v)
}
