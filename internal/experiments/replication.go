package experiments

import (
	"context"
	"fmt"

	"github.com/adc-sim/adc/internal/cluster"
	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/proxy"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/trace"
	"github.com/adc-sim/adc/internal/workload"
)

// The hot-object replication study. Stock ADC converges every object onto
// a single holder (backwarding), so right after each popularity shift the
// new head object's home absorbs every peer's forwards — a transient
// hotspot that rotates across proxies and is invisible in run-total load
// statistics. ReplicationSweep quantifies what the replication controller
// buys across its two knobs (hot threshold × max replicas), against stock
// ADC and both hashing baselines on the identical stream.

// Reference scenario constants: a head-heavy shifting Zipf under open-loop
// injection with queued service, so load actually queues at the hot proxy.
// These mirror the replication benchmark scenario in internal/cluster.
const (
	repRequests     = 30_000
	repPeriod       = 3_000
	repPopulation   = 100
	repAlpha        = 2.0
	repInterval     = 700
	repMetricsEvery = 50_000
)

// ReplicationOptions parameterises the sweep grid and workload.
type ReplicationOptions struct {
	// Thresholds are the hot-detection thresholds to sweep (hits per
	// replication window before an object is pushed). Default {2, 4, 8}.
	Thresholds []int
	// MaxReplicas are the replica-set bounds to sweep. Default {2, 4, 7}.
	MaxReplicas []int
	// Requests, Period, Population and Alpha shape the shifting-Zipf
	// stream (zero = the reference scenario: 30k requests, shift every
	// 3k, 100 hot objects, alpha 2.0).
	Requests   int
	Period     int
	Population int
	Alpha      float64
	// WorkloadSeed seeds the stream (0 = profile seed).
	WorkloadSeed int64
}

func (o ReplicationOptions) withDefaults(p Profile) ReplicationOptions {
	if len(o.Thresholds) == 0 {
		o.Thresholds = []int{2, 4, 8}
	}
	if len(o.MaxReplicas) == 0 {
		o.MaxReplicas = []int{2, 4, 7}
	}
	if o.Requests == 0 {
		o.Requests = repRequests
	}
	if o.Period == 0 {
		o.Period = repPeriod
	}
	if o.Population == 0 {
		o.Population = repPopulation
	}
	if o.Alpha == 0 {
		o.Alpha = repAlpha
	}
	if o.WorkloadSeed == 0 {
		o.WorkloadSeed = p.Seed
	}
	return o
}

// ReplicationPoint is one cell of the replication sweep.
type ReplicationPoint struct {
	// Algorithm is the scheme under test; HotThreshold and MaxReplicas
	// are zero for the non-replicated baseline rows (stock ADC, CARP,
	// consistent hashing).
	Algorithm    cluster.Algorithm
	Replicated   bool
	HotThreshold int
	MaxReplicas  int
	// HitRate, MeanResponse and P99Response summarise completed
	// requests (responses in virtual ticks).
	HitRate      float64
	MeanResponse float64
	P99Response  float64
	// MeanWindowShare and MeanWindowPeak are the warmup-skipped windowed
	// load statistics (cluster.MeanWindowLoad): the mean over windows of
	// the per-window max/mean reception share, and of the hottest
	// proxy's per-window receptions. These — not the run totals — are
	// where the post-shift hotspot lives.
	MeanWindowShare float64
	MeanWindowPeak  float64
	// MaxMeanShare and GiniShare are the run-total spreads, kept for
	// contrast with the windowed view.
	MaxMeanShare float64
	GiniShare    float64
	// CachedEntries is the cluster-wide cached-object count at the last
	// metrics snapshot — the capacity cost of multi-homing. Simulated
	// objects are unit-size, so entries are bytes up to the constant
	// object size.
	CachedEntries int
	// Controller counters (zero on non-replicated rows).
	ReplicaPushes uint64
	ReplicaDrops  uint64
	ReplicaHits   uint64
}

// replicationGrid expands the option grid into per-run replication
// configurations. Index 0..2 are the baselines (stock ADC, CARP, CHash);
// the rest is the threshold × max-replicas product in row-major order.
func replicationGrid(o ReplicationOptions) []ReplicationPoint {
	grid := []ReplicationPoint{
		{Algorithm: cluster.ADC},
		{Algorithm: cluster.CARP},
		{Algorithm: cluster.CHash},
	}
	for _, th := range o.Thresholds {
		for _, maxR := range o.MaxReplicas {
			grid = append(grid, ReplicationPoint{
				Algorithm:    cluster.ADC,
				Replicated:   true,
				HotThreshold: th,
				MaxReplicas:  maxR,
			})
		}
	}
	return grid
}

// replicationClusterConfig assembles the fixed scenario around one grid
// cell: virtual time, open-loop injection, queued service, response
// histograms and windowed load snapshots.
func replicationClusterConfig(p Profile, pt ReplicationPoint) cluster.Config {
	cfg := cluster.Config{
		Algorithm:  pt.Algorithm,
		NumProxies: p.Proxies,
		Clients:    p.Proxies,
		Tables:     core.Config{SingleSize: 1024, MultipleSize: 1024, CachingSize: 8, Backend: p.Backend},
		Seed:       p.Seed,
		Window:     p.Window,
		Runtime:    cluster.RuntimeVirtualTime,

		OpenLoopInterval: repInterval,
		Latency: sim.LatencyModel{
			ClientProxy:  5_000,
			ProxyProxy:   10_000,
			ProxyOrigin:  50_000,
			Service:      100,
			QueueService: true,
		},

		ResponseBuckets:     4096,
		ResponseBucketTicks: 1000,
		MetricsEvery:        repMetricsEvery,
	}
	if pt.Replicated {
		cfg.Replication = proxy.Replication{
			Enabled:      true,
			HotThreshold: pt.HotThreshold,
			MaxReplicas:  pt.MaxReplicas,
			Window:       512,
		}
	}
	return cfg
}

// replicationWarmupWindows is the number of MetricsEvery windows covering
// the first workload epoch, which every configuration spends identically
// filling cold caches: Period requests injected every repInterval ticks
// across the open loops.
func replicationWarmupWindows(o ReplicationOptions, clients int) int {
	return int(int64(o.Period) * repInterval / int64(clients) / repMetricsEvery)
}

// ReplicationSweep runs the threshold × max-replicas grid plus the three
// non-replicated baselines over one shifting-Zipf stream. Results are
// index-stable: grid order and every number are independent of
// Parallelism.
func ReplicationSweep(p Profile, opts ReplicationOptions) ([]ReplicationPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(p)

	gen, err := workload.NewShift(workload.ShiftConfig{
		TotalRequests: opts.Requests,
		Period:        opts.Period,
		Population:    opts.Population,
		Alpha:         opts.Alpha,
		Seed:          opts.WorkloadSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: replication workload: %w", err)
	}
	// Materialize once; every run replays the identical stream through
	// its own cursor (SliceSource never mutates the shared slice).
	stream := trace.Drain(gen)

	out := replicationGrid(opts)
	skip := replicationWarmupWindows(opts, p.Proxies)
	err = p.forEach("replication", len(out), func(_ context.Context, i int) (uint64, error) {
		cfg := replicationClusterConfig(p, out[i])
		res, err := cluster.Run(cfg, trace.NewSliceSource(stream))
		if err != nil {
			return 0, fmt.Errorf("experiments: replication %v t=%d r=%d: %w",
				out[i].Algorithm, out[i].HotThreshold, out[i].MaxReplicas, err)
		}
		fillPoint(&out[i], res, skip)
		return res.Delivered, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fillPoint copies one run's measurements into its grid cell.
func fillPoint(pt *ReplicationPoint, res *cluster.Result, skipWindows int) {
	pt.HitRate = res.Summary.HitRate
	pt.MeanResponse = res.Summary.MeanResponse
	pt.P99Response = res.Summary.P99Response
	pt.MeanWindowShare, pt.MeanWindowPeak = cluster.MeanWindowLoad(res.Buckets, skipWindows)
	pt.MaxMeanShare = res.MaxMeanShare
	pt.GiniShare = res.GiniShare
	pt.CachedEntries = cachedAtEnd(res)
	for _, s := range res.ProxyStats {
		pt.ReplicaPushes += s.ReplicaPushes
		pt.ReplicaDrops += s.ReplicaDrops
		pt.ReplicaHits += s.ReplicaHits
	}
}

// cachedAtEnd sums the per-proxy cached-entry counts in the last sealed
// metrics bucket that carries an occupancy snapshot.
func cachedAtEnd(res *cluster.Result) int {
	for i := len(res.Buckets) - 1; i >= 0; i-- {
		if len(res.Buckets[i].Cached) == 0 {
			continue
		}
		total := 0
		for _, c := range res.Buckets[i].Cached {
			total += c
		}
		return total
	}
	return 0
}
