package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
)

// sinkNode counts requests without replying — the receive side of the
// send-path stress tests, where exact bookkeeping matters more than
// protocol behaviour.
type sinkNode struct {
	id ids.NodeID
	n  atomic.Uint64
}

func (s *sinkNode) ID() ids.NodeID { return s.id }
func (s *sinkNode) Handle(_ sim.Context, m msg.Message) {
	if _, ok := m.(*msg.Request); ok {
		s.n.Add(1)
	}
}
func (s *sinkNode) count() uint64 { return s.n.Load() }

// waitCount polls until the sink has seen at least want messages.
func waitCount(t *testing.T, s *sinkNode, want uint64, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for s.count() < want {
		if time.Now().After(stop) {
			t.Fatalf("sink %v saw %d/%d messages before deadline", s.id, s.count(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentSendsInterleaved hammers the writer-goroutine send path:
// many goroutines on each side send interleaved frames in both directions
// at once. Any frame corruption from interleaved batching would break the
// wire decode, kill the read loop, and show up as a short count.
func TestConcurrentSendsInterleaved(t *testing.T) {
	const (
		senders = 8
		perSend = 400
	)
	nw := NewNetwork()
	a := &sinkNode{id: 0}
	b := &sinkNode{id: 1}
	for _, n := range []*sinkNode{a, b} {
		if err := nw.Register(n); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	runErr := make(chan error, 1)
	go func() { runErr <- nw.Run(done) }()

	var wg sync.WaitGroup
	send := func(from, to ids.NodeID, worker int) {
		defer wg.Done()
		ep := nw.endpoints[from]
		for i := 0; i < perSend; i++ {
			ep.Send(&msg.Request{
				To:     to,
				ID:     ids.RequestID(worker*perSend + i),
				Object: ids.ObjectID(i),
				Client: from,
				Sender: from,
			})
		}
	}
	wg.Add(2 * senders)
	for w := 0; w < senders; w++ {
		go send(0, 1, w)
		go send(1, 0, senders+w)
	}
	wg.Wait()

	const want = senders * perSend
	waitCount(t, a, want, 10*time.Second)
	waitCount(t, b, want, 10*time.Second)
	close(done)
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if got := nw.Dropped(); got != 0 {
		t.Errorf("dropped %d batches on a healthy loopback network", got)
	}
	// No duplicates either: nothing severed a connection, so the
	// at-least-once resend path must never have fired.
	if a.count() != want || b.count() != want {
		t.Errorf("counts = %d/%d, want exactly %d each", a.count(), b.count(), want)
	}
}

// TestReconnectAfterPeerRestart severs every established connection into
// the receiver mid-stream — the TCP half of a peer restart — and checks
// that the sender's writer redials and traffic keeps flowing instead of
// the old behaviour (a poisoned connection cache erroring forever).
func TestReconnectAfterPeerRestart(t *testing.T) {
	const target = 2000
	nw := NewNetwork()
	sink := &sinkNode{id: 0}
	driver := &sinkNode{id: 1}
	for _, n := range []*sinkNode{sink, driver} {
		if err := nw.Register(n); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	runErr := make(chan error, 1)
	go func() { runErr <- nw.Run(done) }()

	ep := nw.endpoints[1]
	severed := false
	deadline := time.Now().Add(20 * time.Second)
	for i := 0; sink.count() < target; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("sink saw %d/%d messages before deadline (severed=%v)",
				sink.count(), target, severed)
		}
		if !severed && sink.count() > target/4 {
			nw.endpoints[0].severInbound()
			severed = true
		}
		ep.Send(&msg.Request{
			To:     0,
			ID:     ids.RequestID(i),
			Object: ids.ObjectID(i),
			Client: 1,
			Sender: 1,
		})
		if i%64 == 0 {
			// Let the writer drain so the sever lands on a live
			// connection rather than an empty queue.
			time.Sleep(time.Millisecond)
		}
	}
	if !severed {
		t.Fatal("test never severed the connection; raise target")
	}
	close(done)
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	t.Logf("delivered %d (target %d) across a severed connection, dropped %d batches",
		sink.count(), target, nw.Dropped())
}
