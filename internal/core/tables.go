package core

import (
	"fmt"

	"github.com/adc-sim/adc/internal/ids"
)

// Config sizes and shapes one proxy's mapping tables. The paper's reference
// configuration is 20k/20k/10k (§V.2).
type Config struct {
	// SingleSize is the single-table capacity (first sightings).
	SingleSize int
	// MultipleSize is the multiple-table capacity (objects seen ≥2×).
	MultipleSize int
	// CachingSize is the caching-table capacity — the local cache size.
	CachingSize int
	// Backend selects the ordered-table implementation (default: btree,
	// the bounded block B-tree).
	Backend Backend
	// SingleScan selects the paper-faithful O(n) linear-search
	// single-table used for the Fig. 15 timing ablation. It also
	// disables the unified directory, so every table probe is
	// element-wise exactly as in the paper's own implementation.
	SingleScan bool
	// CacheAdmitAll replaces selective caching with the behaviour the
	// paper ascribes to hierarchical and hashing systems: "every proxy
	// stores all passing objects regardless of its future significance
	// and usually uses the LRU algorithm as the cache replacement
	// strategy" (§III.4). Every Update puts the object straight into an
	// LRU caching table; evicted entries fall back into the
	// single-table so forwarding information survives eviction.
	// Ablation only.
	CacheAdmitAll bool
	// AgingOff disables the aging rule of Fig. 4: tables order by raw
	// average instead of aged average. Ablation only.
	AgingOff bool
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	if c.SingleSize <= 0 {
		return fmt.Errorf("core: single-table size must be positive, got %d", c.SingleSize)
	}
	if c.MultipleSize <= 0 {
		return fmt.Errorf("core: multiple-table size must be positive, got %d", c.MultipleSize)
	}
	if c.CachingSize <= 0 {
		return fmt.Errorf("core: caching-table size must be positive, got %d", c.CachingSize)
	}
	switch c.Backend {
	case BackendBTree, BackendSlice, BackendSkipList, BackendList:
	default:
		return fmt.Errorf("core: unknown ordered-table backend %d", int(c.Backend))
	}
	return nil
}

// slot is one directory cell: which table holds the object and its entry.
type slot struct {
	kind  Kind
	entry *Entry
}

// Tables is one proxy's complete mapping-table state: the single-, multiple-
// and caching tables plus the Update_Entry logic that moves entries between
// them (paper Fig. 8). The caching table doubles as the cache itself — its
// entries "represent actually stored objects" (§III.3.3); since the testbed
// does not move payloads (§V.1), membership is storage.
//
// A unified directory (one map over all three tables) resolves every
// membership question — Lookup, IsCached, ForwardLocation and the find
// phase of Update — with exactly one map probe; the tables themselves keep
// no per-table index and are touched only by position (RemoveEntry,
// Insert). The directory is disabled in the paper-faithful timing modes
// (SingleScan, BackendList) so the Fig. 15 ablation measures element-wise
// search exactly as the paper did.
type Tables struct {
	single   *SingleTable
	multiple Ordered
	caching  Ordered

	// dir maps every known object to its table and entry; nil in the
	// paper-faithful probe modes.
	dir map[ids.ObjectID]slot
	// arena slab-allocates entries and recycles the ones the system
	// forgets (Outcome.Dropped, via Recycle).
	arena entryArena

	admitAll bool
	agingOff bool
}

// NewTables builds the three tables for one proxy.
func NewTables(cfg Config) (*Tables, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	caching := NewOrdered(cfg.CachingSize, cfg.Backend)
	if cfg.CacheAdmitAll {
		caching = newLRUOrdered(cfg.CachingSize)
	}
	t := &Tables{
		single:   NewSingleTable(cfg.SingleSize, cfg.SingleScan),
		multiple: NewOrdered(cfg.MultipleSize, cfg.Backend),
		caching:  caching,
		admitAll: cfg.CacheAdmitAll,
		agingOff: cfg.AgingOff,
	}
	if !cfg.SingleScan && cfg.Backend != BackendList {
		t.dir = make(map[ids.ObjectID]slot, cfg.SingleSize+cfg.MultipleSize+cfg.CachingSize)
	}
	return t, nil
}

// Single exposes the single-table (read-mostly: dumps, tests, metrics).
func (t *Tables) Single() *SingleTable { return t.single }

// Multiple exposes the multiple-table.
func (t *Tables) Multiple() Ordered { return t.multiple }

// Caching exposes the caching table.
func (t *Tables) Caching() Ordered { return t.caching }

// locate finds the entry for obj and the table holding it: one directory
// probe, or — in the paper-faithful modes — sequential probes "in the order
// caching table, multiple-table and single-table" (§IV.3).
func (t *Tables) locate(obj ids.ObjectID) (*Entry, Kind) {
	if t.dir != nil {
		s := t.dir[obj]
		return s.entry, s.kind
	}
	if e := t.caching.Get(obj); e != nil {
		return e, KindCaching
	}
	if e := t.multiple.Get(obj); e != nil {
		return e, KindMultiple
	}
	if e := t.single.Get(obj); e != nil {
		return e, KindSingle
	}
	return nil, KindNone
}

// dirSet records obj's table and entry; no-op in probe mode.
func (t *Tables) dirSet(obj ids.ObjectID, kind Kind, e *Entry) {
	if t.dir != nil {
		t.dir[obj] = slot{kind: kind, entry: e}
	}
}

// dirDel forgets obj; no-op in probe mode.
func (t *Tables) dirDel(obj ids.ObjectID) {
	if t.dir != nil {
		delete(t.dir, obj)
	}
}

// IsCached reports whether obj is in the local cache, i.e. has a caching-
// table entry.
func (t *Tables) IsCached(obj ids.ObjectID) bool {
	if t.dir != nil {
		return t.dir[obj].kind == KindCaching
	}
	return t.caching.Contains(obj)
}

// Lookup finds the entry for obj, searching "in the order caching table,
// multiple-table and single-table" (§IV.3). It never mutates state.
func (t *Tables) Lookup(obj ids.ObjectID) (*Entry, Kind) {
	return t.locate(obj)
}

// Outcome reports what Update did, so the proxy can maintain its counters
// and tests can assert the promotion/demotion chains.
type Outcome struct {
	// From is the table the entry was found in; KindNone means a new
	// entry was created (Part 4).
	From Kind
	// To is the table the entry ended up in.
	To Kind
	// CacheEvicted is the entry demoted from the caching table into the
	// multiple-table to make room, if any.
	CacheEvicted *Entry
	// MultipleEvicted is the entry demoted from the multiple-table onto
	// the top of the single-table to make room, if any.
	MultipleEvicted *Entry
	// Dropped is the entry that fell off the bottom of the single-table,
	// if any; the system forgets it entirely. Hand the outcome to
	// Recycle once the caller is done reading it so the entry returns
	// to the arena.
	Dropped *Entry
}

// Update is the paper's Update_Entry(Object, Location) (Fig. 8), executed
// at proxy-local logical time now. It finds the entry (one directory probe,
// or table-order probes in the paper-faithful modes), folds in the new
// access via CalcAverage, rewrites the location, and applies the promotion
// rules:
//
//   - caching-table entries are updated in place (re-inserted in order);
//   - multiple-table entries move into the caching table when their aged
//     average beats the cache's worst case, demoting that worst case into
//     the multiple-table;
//   - single-table entries move into the multiple-table under the same
//     rule, demoting the multiple-table's worst onto the single-table top;
//   - unknown objects get a fresh entry on top of the single-table.
//
// A table that is not yet full accepts any candidate; a full table demands
// the candidate beat its current worst entry, matching "newly arriving
// objects have to have a lower average value than the worst case currently
// residing in the table" (§III.3.2).
//
// Entries are always removed from their table before CalcAverage mutates
// the key: position-based removal (RemoveEntry) locates the entry by its
// stored key.
func (t *Tables) Update(obj ids.ObjectID, loc ids.NodeID, now int64) Outcome {
	if t.admitAll {
		return t.updateLRU(obj, loc, now)
	}

	e, kind := t.locate(obj)
	switch kind {
	case KindCaching:
		// Part 1: caching table — update in place.
		t.caching.RemoveEntry(e)
		e.CalcAverage(now)
		e.Location = loc
		t.caching.Insert(e) // room is guaranteed: we just removed e
		return Outcome{From: KindCaching, To: KindCaching}

	case KindMultiple:
		// Part 2: multiple-table.
		t.multiple.RemoveEntry(e)
		e.CalcAverage(now)
		e.Location = loc
		if t.admits(t.caching, e) {
			out := Outcome{From: KindMultiple, To: KindCaching}
			t.dirSet(obj, KindCaching, e)
			if evicted := t.caching.Insert(e); evicted != nil {
				// The demoted worst returns to the
				// multiple-table, which has room because e
				// just left it.
				t.multiple.Insert(evicted)
				t.dirSet(evicted.Object, KindMultiple, evicted)
				out.CacheEvicted = evicted
			}
			return out
		}
		t.multiple.Insert(e)
		return Outcome{From: KindMultiple, To: KindMultiple}

	case KindSingle:
		// Part 3: single-table.
		t.single.RemoveEntry(e)
		e.CalcAverage(now)
		e.Location = loc
		if t.admits(t.multiple, e) {
			out := Outcome{From: KindSingle, To: KindMultiple}
			t.dirSet(obj, KindMultiple, e)
			if evicted := t.multiple.Insert(e); evicted != nil {
				// The multiple-table's worst goes on top of
				// the single-table (Fig. 8 Part 3); the
				// single-table has room because e just left.
				t.single.InsertTop(evicted)
				t.dirSet(evicted.Object, KindSingle, evicted)
				out.MultipleEvicted = evicted
			}
			return out
		}
		dropped := t.single.InsertTop(e)
		return Outcome{From: KindSingle, To: KindSingle, Dropped: dropped}
	}

	// Part 4: unknown object — new entry on top of the single-table.
	e = t.alloc(obj, loc, now)
	dropped := t.single.InsertTop(e)
	t.dirSet(obj, KindSingle, e)
	if dropped != nil {
		t.dirDel(dropped.Object)
	}
	return Outcome{From: KindNone, To: KindSingle, Dropped: dropped}
}

// updateLRU is the CacheAdmitAll ablation: every passing object is cached
// immediately with plain LRU replacement, no selectivity. The entry is
// pulled from whichever table currently holds it so the usual bookkeeping
// (average, location, single-occupancy invariant) still applies; evictions
// land on top of the single-table so the proxy keeps routing knowledge.
func (t *Tables) updateLRU(obj ids.ObjectID, loc ids.NodeID, now int64) Outcome {
	e, from := t.locate(obj)
	switch from {
	case KindCaching:
		t.caching.RemoveEntry(e)
	case KindMultiple:
		t.multiple.RemoveEntry(e)
	case KindSingle:
		t.single.RemoveEntry(e)
	default:
		e = t.alloc(obj, loc, now)
	}
	if from != KindNone {
		e.CalcAverage(now)
		e.Location = loc
	}
	out := Outcome{From: from, To: KindCaching}
	t.dirSet(obj, KindCaching, e)
	if evicted := t.caching.Insert(e); evicted != nil {
		if evicted == e {
			// Zero-capacity cache bounced the entry itself; the
			// system forgets it (unreachable after Validate).
			t.dirDel(obj)
			return out
		}
		out.CacheEvicted = evicted
		out.Dropped = t.single.InsertTop(evicted)
		t.dirSet(evicted.Object, KindSingle, evicted)
		if out.Dropped != nil {
			t.dirDel(out.Dropped.Object)
		}
	}
	return out
}

// alloc hands out a fresh entry from the arena, configured for this
// proxy's aging mode.
func (t *Tables) alloc(obj ids.ObjectID, loc ids.NodeID, now int64) *Entry {
	e := t.arena.get(obj, loc, now)
	e.noAge = t.agingOff
	return e
}

// Recycle returns the entries an Update expelled from the system to the
// arena for reuse. Call it after the last read of the outcome: the dropped
// entry is zeroed and may back a future allocation immediately.
func (t *Tables) Recycle(out Outcome) {
	if out.Dropped != nil {
		t.arena.put(out.Dropped)
	}
}

// admits reports whether ordered table dst accepts candidate e: a table
// with free space accepts anything; a full table demands the candidate beat
// the worst resident (strictly smaller aged average, i.e. Key).
func (t *Tables) admits(dst Ordered, e *Entry) bool {
	if dst.Cap() == 0 {
		return false
	}
	if dst.Len() < dst.Cap() {
		return true
	}
	worst, ok := dst.WorstKey()
	if !ok {
		return true
	}
	return e.Key() < worst
}

// Invalidate forgets obj's mapping entry when it lives in the single- or
// multiple-table, returning whether an entry was removed. It is the
// demotion half of the recovery protocol's stale-location handling: a
// learned location that stopped answering (crashed or partitioned peer) is
// dropped so forwarding falls back to random selection and backwarding can
// re-converge on a live resolver. Caching-table entries are untouched —
// they represent objects stored locally, whose data is valid regardless of
// what happened to a remote peer.
func (t *Tables) Invalidate(obj ids.ObjectID) bool {
	e, kind := t.locate(obj)
	switch kind {
	case KindSingle:
		t.single.RemoveEntry(e)
	case KindMultiple:
		t.multiple.RemoveEntry(e)
	default:
		return false
	}
	t.dirDel(obj)
	t.arena.put(e)
	return true
}

// ForwardLocation resolves the forwarding address for obj from the mapping
// tables (the paper's Forward_Addr, Fig. 6). ok is false when no table has
// an entry, in which case the proxy falls back to random peer selection.
func (t *Tables) ForwardLocation(obj ids.ObjectID) (ids.NodeID, bool) {
	e, kind := t.locate(obj)
	if kind == KindNone {
		return ids.None, false
	}
	return e.Location, true
}

// Len returns the total number of entries across the three tables.
func (t *Tables) Len() int {
	return t.single.Len() + t.multiple.Len() + t.caching.Len()
}
