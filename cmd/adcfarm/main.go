// Command adcfarm launches a live ADC HTTP proxy farm on loopback ports
// and keeps it serving until interrupted — the paper's future-work "real
// proxy system" (§VI) as a runnable daemon. Any HTTP client can fetch
// objects through any proxy:
//
//	adcfarm -proxies 4 &
//	curl -H 'X-Adc-Request-Id: r1' http://127.0.0.1:<port>/obj/42
//
// Optionally warm the farm first with a synthetic workload (-warm) so the
// caches and mapping tables start converged.
//
// Every proxy also serves live introspection: /debug/vars (JSON counters
// and table occupancy), /debug/tables (mapping-table dump), /metrics
// (Prometheus text exposition — point adctop at the proxy URLs for a live
// dashboard) and /debug/pprof/ (Go profiler). With -trace, a request-path
// trace is recorded and written as JSON Lines on shutdown for adctrace;
// with -trace-sample N, cross-proxy spans are recorded into per-proxy
// /debug/trace rings for adctrace farm.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"github.com/adc-sim/adc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adcfarm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adcfarm", flag.ContinueOnError)
	var (
		proxies  = fs.Int("proxies", 5, "number of proxy servers")
		single   = fs.Int("single", 2000, "single-table size")
		multiple = fs.Int("multiple", 2000, "multiple-table size")
		caching  = fs.Int("caching", 1000, "caching-table size (payload store)")
		seed     = fs.Int64("seed", 1, "random seed")
		warm     = fs.Int("warm", 0, "warm up with this many synthetic requests before serving")
		parallel = fs.Int("parallel", runtime.NumCPU(), "concurrent warm-up clients (1 = deterministic single client)")
		traceOn  = fs.Bool("trace", false, "record a request-path trace, written on shutdown")
		traceOut = fs.String("trace-out", "farm-trace.jsonl", "trace output file (JSON Lines; with -trace)")
		traceN   = fs.Int("trace-sample", 0, "span-trace 1-in-N entry requests across proxies (0 = off, 1 = all; see adctrace farm)")

		health        = fs.Bool("health", false, "enable peer health probing, failover routing and circuit breakers")
		probeInterval = fs.Duration("probe-interval", 0, "health probe interval (0 = default 250ms; with -health)")
		failThreshold = fs.Int("fail-threshold", 0, "consecutive failures marking a peer down (0 = default 3; with -health)")
		retries       = fs.Int("retries", 0, "entry-chain failover retries (0 = default 2, negative = none; with -health)")
		hedge         = fs.Duration("hedge", 0, "hedged origin fetch after this delay (0 = off; with -health)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	farm, err := adc.NewHTTPFarm(adc.HTTPFarmConfig{
		Proxies:          *proxies,
		SingleTable:      *single,
		MultipleTable:    *multiple,
		CachingTable:     *caching,
		Seed:             *seed,
		Health:           *health,
		ProbeInterval:    *probeInterval,
		FailureThreshold: *failThreshold,
		MaxRetries:       *retries,
		HedgeDelay:       *hedge,
		TraceSample:      *traceN,
	})
	if err != nil {
		return err
	}
	defer farm.Close() //nolint:errcheck // teardown on exit

	var tracer *adc.Tracer
	if *traceOn {
		tracer = adc.NewTracer()
		farm.SetTracer(tracer)
	}

	if *warm > 0 {
		gen, err := adc.NewWorkload(adc.WorkloadConfig{
			Requests:   *warm,
			Population: *caching,
			Seed:       *seed,
		})
		if err != nil {
			return err
		}
		requests, hits, err := farm.RunParallel(gen, *seed, *parallel)
		if err != nil {
			return err
		}
		fmt.Printf("warmed with %d requests (hit rate %.3f, %d clients)\n",
			requests, float64(hits)/float64(requests), *parallel)
	}

	fmt.Printf("origin: %s\n", farm.OriginURL())
	for i := 0; i < *proxies; i++ {
		url, err := farm.ProxyURL(i)
		if err != nil {
			return err
		}
		fmt.Printf("proxy %d: %s  (introspection: %s/debug/vars, %s/debug/tables, %s/metrics, %s/debug/pprof/)\n",
			i, url, url, url, url, url)
	}
	fmt.Println("\nfetch objects with:")
	url, _ := farm.ProxyURL(0)
	fmt.Printf("  curl -H 'X-Adc-Request-Id: r1' %s/obj/42\n", url)
	fmt.Printf("\nwatch the farm live with:\n  go run ./cmd/adctop")
	for i := 0; i < *proxies; i++ {
		u, _ := farm.ProxyURL(i)
		fmt.Printf(" %s", u)
	}
	fmt.Println()
	fmt.Println("\nserving; Ctrl-C to stop")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("\nshutting down")
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := adc.WriteTrace(f, tracer); err != nil {
			f.Close() //nolint:errcheck,gosec // write error takes precedence
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s\n", tracer.Len(), *traceOut)
	}
	return nil
}
