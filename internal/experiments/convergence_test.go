package experiments

import "testing"

func TestConvergenceSweep(t *testing.T) {
	p := tinyProfile()
	p.Parallelism = 2
	pts, err := ConvergenceSweep(p, ConvergenceOptions{Sizes: []int{5_000, 20_000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points, want 2", len(pts))
	}
	for i, pt := range pts {
		if pt.Size <= 0 {
			t.Errorf("point %d: non-positive scaled size %d", i, pt.Size)
		}
		if pt.Objects == 0 {
			t.Errorf("point %d: no objects observed", i)
		}
		if pt.Converged == 0 {
			t.Errorf("point %d: no object ever converged", i)
		}
		if pt.Converged > pt.Objects {
			t.Errorf("point %d: converged %d > objects %d", i, pt.Converged, pt.Objects)
		}
		if pt.MeanTime < 0 || pt.MaxTime < 0 {
			t.Errorf("point %d: negative convergence time %+v", i, pt)
		}
		if pt.HitRate <= 0 || pt.HitRate >= 1 {
			t.Errorf("point %d: implausible hit rate %v", i, pt.HitRate)
		}
	}
	// More caching capacity must not shrink the observed object population:
	// both runs replay the same trace.
	if pts[0].Objects != pts[1].Objects {
		t.Errorf("object population differs across sizes: %d vs %d", pts[0].Objects, pts[1].Objects)
	}
}
