package agent

import (
	"sync"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/trace"
)

type echoNode struct {
	id ids.NodeID

	mu   sync.Mutex
	seen int
}

func (n *echoNode) ID() ids.NodeID { return n.id }
func (n *echoNode) Handle(ctx sim.Context, m msg.Message) {
	req, ok := m.(*msg.Request)
	if !ok {
		return
	}
	n.mu.Lock()
	n.seen++
	n.mu.Unlock()
	rep := msg.ReplyTo(req)
	rep.Resolver = n.id
	rep.To = req.Client
	ctx.Send(rep)
}

func TestDuplicateRegistration(t *testing.T) {
	rt := New(0)
	if err := rt.Register(&echoNode{id: 0}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(&echoNode{id: 0}); err == nil {
		t.Error("duplicate registration must fail")
	}
}

func TestClosedLoopDrivesToCompletion(t *testing.T) {
	rt := New(0)
	node := &echoNode{id: 0}
	if err := rt.Register(node); err != nil {
		t.Fatal(err)
	}
	objs := make([]ids.ObjectID, 200)
	for i := range objs {
		objs[i] = ids.ObjectID(i)
	}
	col := metrics.NewCollector(metrics.WithSampleEvery(0))
	done := make(chan struct{})
	cl, err := sim.NewClient(sim.ClientConfig{
		Source:    trace.NewSliceSource(objs),
		Proxies:   []ids.NodeID{0},
		Collector: col,
		OnDone:    func() { close(done) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Register(cl); err != nil {
		t.Fatal(err)
	}
	rt.Run(done)
	if col.Requests() != 200 {
		t.Errorf("recorded %d requests, want 200", col.Requests())
	}
	node.mu.Lock()
	defer node.mu.Unlock()
	if node.seen != 200 {
		t.Errorf("node saw %d requests, want 200", node.seen)
	}
}

func TestUnroutableMessageDoesNotBlock(t *testing.T) {
	rt := New(0)
	// A node that fires a message into the void on start.
	stray := &strayStarter{id: 0}
	if err := rt.Register(stray); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	close(done)
	rt.Run(done) // must return, not deadlock
	if got := rt.Dropped(); got != 1 {
		t.Errorf("Dropped() = %d, want 1", got)
	}
}

func TestDroppedCountsUnroutableMessages(t *testing.T) {
	rt := New(0)
	if err := rt.Register(&echoNode{id: 0}); err != nil {
		t.Fatal(err)
	}
	if got := rt.Dropped(); got != 0 {
		t.Fatalf("fresh runtime Dropped() = %d, want 0", got)
	}
	ctx := sender{r: rt}
	for i := 0; i < 3; i++ {
		ctx.Send(&msg.Request{To: 42}) // no node 42 registered
	}
	ctx.Send(&msg.Request{To: 0}) // routable: must not count
	if got := rt.Dropped(); got != 3 {
		t.Errorf("Dropped() = %d, want 3", got)
	}
}

type strayStarter struct{ id ids.NodeID }

func (s *strayStarter) ID() ids.NodeID                  { return s.id }
func (s *strayStarter) Handle(sim.Context, msg.Message) {}
func (s *strayStarter) Start(ctx sim.Context)           { ctx.Send(&msg.Request{To: 99}) }
