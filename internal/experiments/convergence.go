package experiments

import (
	"context"
	"fmt"

	"github.com/adc-sim/adc/internal/cluster"
	"github.com/adc-sim/adc/internal/obs"
)

// The convergence study measures ADC's self-organization speed directly:
// how long after an object first appears do all proxies that hold a belief
// about its location agree on one — and stay agreed. The paper argues
// convergence qualitatively (§V.2, "the system converges towards an
// optimal mapping"); this experiment quantifies it from the request-path
// trace, sweeping the caching-table size because the caching table is what
// belief stability is about (a promoted object relocates beliefs, an
// evicted one invalidates them).

// ConvergencePoint is one convergence measurement at one caching-table size.
type ConvergencePoint struct {
	// Size is the scaled caching-table capacity of this run.
	Size int
	// Objects counts distinct objects observed in the trace; Converged of
	// them ended the run in lasting location agreement.
	Objects   int
	Converged int
	// MeanTime and MaxTime are virtual ticks from an object's first
	// appearance to the start of its final uninterrupted agreement,
	// averaged / maximized over converged objects.
	MeanTime float64
	MaxTime  int64
	// HitRate is the whole-run hit rate, for context.
	HitRate float64
}

// ConvergenceOptions tweak the convergence sweep.
type ConvergenceOptions struct {
	// Sizes are the paper-scale caching-table capacities to sweep,
	// scaled by the profile. Default: the §V.3 grid.
	Sizes []int
	// Requests overrides the paper-scale request count. Tracing keeps
	// every hit/backward/invalidate event in memory, so the default is a
	// quarter of the reference trace — convergence happens early.
	Requests int
}

// ConvergenceSweep measures location-convergence time against caching-table
// size on the virtual-time runtime, using a kind-masked request tracer.
func ConvergenceSweep(p Profile, opts ConvergenceOptions) ([]ConvergencePoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sizes := opts.Sizes
	if len(sizes) == 0 {
		sizes = DefaultSweepSizes()
	}
	requests := opts.Requests
	if requests == 0 {
		requests = paperRequests / 4
	}

	out := make([]ConvergencePoint, len(sizes))
	err := p.forEach("convergence", len(sizes), func(_ context.Context, i int) (uint64, error) {
		pt, delivered, err := p.convergenceOne(sizes[i], requests)
		if err != nil {
			return 0, err
		}
		out[i] = pt
		return delivered, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (p Profile) convergenceOne(paperSize, paperReqs int) (ConvergencePoint, uint64, error) {
	tables := p.Tables()
	size := p.scaled(paperSize)
	tables.CachingSize = size

	wcfg := p.WorkloadConfig()
	wcfg.TotalRequests = p.scaled(paperReqs)
	tr, err := p.traceFor(wcfg)
	if err != nil {
		return ConvergencePoint{}, 0, err
	}

	// Only the three belief-bearing kinds are recorded; everything else
	// stays on the nil-check fast path.
	tracer := obs.New(obs.KindHit, obs.KindBackward, obs.KindInvalidate)
	ccfg := p.ClusterConfig(cluster.ADC, tables, 0)
	forceVirtualTime(&ccfg)
	ccfg.Tracer = tracer

	res, err := cluster.Run(ccfg, tr.Cursor())
	if err != nil {
		return ConvergencePoint{}, 0, fmt.Errorf("experiments: convergence caching=%d: %w", size, err)
	}

	sum := obs.SummarizeConvergence(obs.ConvergenceTimes(tracer.Events()))
	return ConvergencePoint{
		Size:      size,
		Objects:   sum.Objects,
		Converged: sum.Converged,
		MeanTime:  sum.MeanTime,
		MaxTime:   sum.MaxTime,
		HitRate:   res.Summary.HitRate,
	}, res.Delivered, nil
}
