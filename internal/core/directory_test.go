package core

import (
	"math/rand"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

// TestDirectoryConsistency: after arbitrary churn the unified directory
// must agree exactly with the union of the three tables — same objects,
// same kinds, same entry pointers.
func TestDirectoryConsistency(t *testing.T) {
	for _, admitAll := range []bool{false, true} {
		name := "adc"
		if admitAll {
			name = "admit-all"
		}
		t.Run(name, func(t *testing.T) {
			tbl, err := NewTables(Config{
				SingleSize: 8, MultipleSize: 5, CachingSize: 3,
				CacheAdmitAll: admitAll,
			})
			if err != nil {
				t.Fatal(err)
			}
			if tbl.dir == nil {
				t.Fatal("directory should be enabled in the default configuration")
			}
			rng := rand.New(rand.NewSource(7))
			for i := int64(1); i <= 20000; i++ {
				out := tbl.Update(ids.ObjectID(rng.Intn(120)), ids.NodeID(rng.Intn(4)), i)
				tbl.Recycle(out)
			}
			want := make(map[ids.ObjectID]slot)
			collect := func(kind Kind, each func(func(*Entry) bool)) {
				each(func(e *Entry) bool {
					if _, dup := want[e.Object]; dup {
						t.Fatalf("object %v present in two tables", e.Object)
					}
					want[e.Object] = slot{kind: kind, entry: e}
					return true
				})
			}
			collect(KindCaching, tbl.caching.Each)
			collect(KindMultiple, tbl.multiple.Each)
			collect(KindSingle, tbl.single.Each)
			if len(tbl.dir) != len(want) {
				t.Fatalf("directory has %d objects, tables have %d", len(tbl.dir), len(want))
			}
			for obj, s := range want {
				got := tbl.dir[obj]
				if got.kind != s.kind || got.entry != s.entry {
					t.Errorf("dir[%v] = {%v %p}, tables say {%v %p}",
						obj, got.kind, got.entry, s.kind, s.entry)
				}
			}
		})
	}
}

// TestDirectoryDisabledInProbeModes: the paper-faithful timing modes must
// keep element-wise probing, so the directory stays off.
func TestDirectoryDisabledInProbeModes(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"single-scan", Config{SingleSize: 4, MultipleSize: 4, CachingSize: 4, SingleScan: true}},
		{"list-backend", Config{SingleSize: 4, MultipleSize: 4, CachingSize: 4, Backend: BackendList}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl, err := NewTables(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tbl.dir != nil {
				t.Fatal("directory must be disabled in paper-faithful probe mode")
			}
			// The probe path must still implement the full state machine.
			tbl.Update(1, 0, 1)
			tbl.Update(1, 0, 2)
			tbl.Update(1, 0, 3)
			if !tbl.IsCached(1) {
				t.Fatal("three updates should cache object 1")
			}
		})
	}
}

// TestArenaRecyclesDropped: in steady state (full single-table, every first
// sighting dropping a forgotten object) recycling must make Update
// allocation-free and reuse the dropped entry's memory.
func TestArenaRecyclesDropped(t *testing.T) {
	tbl, err := NewTables(Config{SingleSize: 4, MultipleSize: 4, CachingSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		tbl.Update(ids.ObjectID(i), 0, i)
	}
	out := tbl.Update(5, 0, 5)
	if out.Dropped == nil {
		t.Fatal("full single-table should drop on a first sighting")
	}
	dropped := out.Dropped
	tbl.Recycle(out)
	if dropped.Object != 0 || dropped.Hits != 0 {
		t.Fatal("recycled entry should be zeroed")
	}
	out = tbl.Update(6, 0, 6)
	e, kind := tbl.Lookup(6)
	if kind != KindSingle || e != dropped {
		t.Fatalf("new entry should reuse the recycled one: got %p, want %p", e, dropped)
	}
	tbl.Recycle(out)

	// Steady state allocates nothing per Update.
	obj := int64(100)
	now := int64(100)
	allocs := testing.AllocsPerRun(200, func() {
		obj++
		now++
		tbl.Recycle(tbl.Update(ids.ObjectID(obj), 0, now))
	})
	if allocs != 0 {
		t.Errorf("steady-state Update+Recycle allocates %.1f/op, want 0", allocs)
	}
}

// TestRecycleNoDrop is the no-op path: outcomes without a dropped entry
// leave the arena untouched.
func TestRecycleNoDrop(t *testing.T) {
	tbl, err := NewTables(Config{SingleSize: 4, MultipleSize: 4, CachingSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Update(1, 0, 1)
	if out.Dropped != nil {
		t.Fatal("empty table cannot drop")
	}
	tbl.Recycle(out)
	if len(tbl.arena.free) != 0 {
		t.Fatal("nothing should have been recycled")
	}
}

// TestEachMatchesEntries: Each must visit the same entries in the same
// order as Entries, allocation-free, and honour early termination.
func TestEachMatchesEntries(t *testing.T) {
	forEachBackend(t, 16, func(t *testing.T, tbl Ordered) {
		for i := 0; i < 12; i++ {
			e := NewEntry(ids.ObjectID(i), 0, int64(i*3%7))
			tbl.Insert(e)
		}
		want := tbl.Entries()
		var got []*Entry
		tbl.Each(func(e *Entry) bool {
			got = append(got, e)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("Each visited %d entries, Entries has %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("order differs at %d: %v vs %v", i, got[i].Object, want[i].Object)
			}
		}
		n := 0
		tbl.Each(func(*Entry) bool { n++; return n < 3 })
		if n != 3 {
			t.Fatalf("early-terminated Each visited %d entries, want 3", n)
		}
		allocs := testing.AllocsPerRun(20, func() {
			tbl.Each(func(*Entry) bool { return true })
		})
		if allocs != 0 {
			t.Errorf("Each allocates %.1f/op, want 0", allocs)
		}
	})
}

// TestSingleTableEach mirrors TestEachMatchesEntries for the single-table.
func TestSingleTableEach(t *testing.T) {
	tbl := NewSingleTable(8, false)
	for i := int64(1); i <= 5; i++ {
		tbl.InsertTop(NewEntry(ids.ObjectID(i), 0, i))
	}
	want := tbl.Entries()
	i := 0
	tbl.Each(func(e *Entry) bool {
		if want[i] != e {
			t.Fatalf("order differs at %d", i)
		}
		i++
		return true
	})
	if i != len(want) {
		t.Fatalf("visited %d, want %d", i, len(want))
	}
}

// TestParseBackend covers the flag-value mapping, including the default.
func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", BackendBTree, true},
		{"btree", BackendBTree, true},
		{"slice", BackendSlice, true},
		{"skiplist", BackendSkipList, true},
		{"list", BackendList, true},
		{"rope", 0, false},
		{"BTREE", 0, false},
	}
	for _, tc := range cases {
		got, ok := ParseBackend(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseBackend(%q) = (%v, %v), want (%v, %v)",
				tc.in, got, ok, tc.want, tc.ok)
		}
	}
	for _, b := range []Backend{BackendBTree, BackendSlice, BackendSkipList, BackendList} {
		back, ok := ParseBackend(b.String())
		if !ok || back != b {
			t.Errorf("round-trip failed for %v", b)
		}
	}
}

// noObj is an "absent" marker for object comparisons (ObjectID is
// unsigned, so the max value serves as the sentinel).
const noObj = ^ids.ObjectID(0)

// TestOrderedOpEquivalence drives all four backends through an identical
// randomized Insert/Remove/RemoveEntry/RemoveWorst sequence and demands
// identical observable behaviour at every step. Entries are duplicated per
// table (an entry lives in at most one container), so equality is by
// object.
func TestOrderedOpEquivalence(t *testing.T) {
	backends := []Backend{BackendBTree, BackendSlice, BackendSkipList, BackendList}
	tables := make([]Ordered, len(backends))
	held := make([]map[ids.ObjectID]*Entry, len(backends))
	for i, b := range backends {
		tables[i] = NewOrdered(16, b)
		held[i] = make(map[ids.ObjectID]*Entry)
	}
	rng := rand.New(rand.NewSource(42))
	nextObj := ids.ObjectID(0)

	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // Insert a fresh entry with a random key
			nextObj++
			last, avg := int64(rng.Intn(1000)), int64(rng.Intn(1000))
			evicted := noObj
			for i, tbl := range tables {
				e := &Entry{Object: nextObj, Last: last, Avg: avg, Hits: 1}
				held[i][nextObj] = e
				out := tbl.Insert(e)
				got := noObj
				if out != nil {
					got = out.Object
					delete(held[i], out.Object)
				}
				if i == 0 {
					evicted = got
				} else if got != evicted {
					t.Fatalf("step %d: %v evicted %v, %v evicted %v",
						step, backends[0], evicted, backends[i], got)
				}
			}
		case op < 7: // Remove by object (may miss)
			probe := ids.ObjectID(rng.Int63n(int64(nextObj) + 1))
			want := noObj
			for i, tbl := range tables {
				out := tbl.Remove(probe)
				got := noObj
				if out != nil {
					got = out.Object
					delete(held[i], out.Object)
				}
				if i == 0 {
					want = got
				} else if got != want {
					t.Fatalf("step %d: Remove(%v) mismatch", step, probe)
				}
			}
		case op < 8: // RemoveEntry on a known-present entry
			if len(held[0]) == 0 {
				continue
			}
			// Pick deterministically: the reference table's worst-but-one
			// would do, but any shared object works; use the smallest.
			pick := noObj
			for obj := range held[0] {
				if obj < pick {
					pick = obj
				}
			}
			for i, tbl := range tables {
				e := held[i][pick]
				if e == nil {
					t.Fatalf("step %d: %v lost object %v", step, backends[i], pick)
				}
				tbl.RemoveEntry(e)
				delete(held[i], pick)
			}
		default: // RemoveWorst
			want := noObj
			for i, tbl := range tables {
				out := tbl.RemoveWorst()
				got := noObj
				if out != nil {
					got = out.Object
					delete(held[i], out.Object)
				}
				if i == 0 {
					want = got
				} else if got != want {
					t.Fatalf("step %d: RemoveWorst mismatch: %v vs %v", step, want, got)
				}
			}
		}
		// Cross-check observable state every step: Len, WorstKey, order.
		refEntries := tables[0].Entries()
		for i := 1; i < len(tables); i++ {
			if tables[i].Len() != tables[0].Len() {
				t.Fatalf("step %d: Len mismatch %d vs %d", step, tables[0].Len(), tables[i].Len())
			}
			wk0, ok0 := tables[0].WorstKey()
			wki, oki := tables[i].WorstKey()
			if wk0 != wki || ok0 != oki {
				t.Fatalf("step %d: WorstKey mismatch", step)
			}
			j := 0
			tables[i].Each(func(e *Entry) bool {
				if refEntries[j].Object != e.Object {
					t.Fatalf("step %d: order differs at %d: %v vs %v",
						step, j, refEntries[j].Object, e.Object)
				}
				j++
				return true
			})
			if j != len(refEntries) {
				t.Fatalf("step %d: Each visited %d, want %d", step, j, len(refEntries))
			}
		}
	}
}
