package sim

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/trace"
)

// echoNode answers every request straight back to the client, recording
// the order of received object IDs.
type echoNode struct {
	id   ids.NodeID
	seen []ids.ObjectID
}

func (n *echoNode) ID() ids.NodeID { return n.id }

func (n *echoNode) Handle(ctx Context, m msg.Message) {
	req, ok := m.(*msg.Request)
	if !ok {
		return
	}
	n.seen = append(n.seen, req.Object)
	rep := msg.ReplyTo(req)
	rep.Resolver = n.id
	rep.To = req.Client
	ctx.Send(rep)
}

func TestEngineDuplicateRegistration(t *testing.T) {
	e := NewEngine()
	if err := e.Register(&echoNode{id: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(&echoNode{id: 1}); err == nil {
		t.Error("duplicate registration must fail")
	}
}

func TestEngineUnroutableMessage(t *testing.T) {
	e := NewEngine()
	e.Send(&msg.Request{To: 42})
	if err := e.Run(); err == nil {
		t.Error("message to unregistered node must error")
	}
}

func TestEngineCountsHops(t *testing.T) {
	req := &msg.Request{To: 1}
	e := NewEngine()
	e.Send(req)
	if req.Hops != 1 {
		t.Errorf("Hops after one Send = %d, want 1", req.Hops)
	}
	rep := &msg.Reply{To: 1}
	e.Send(rep)
	if rep.Hops != 1 {
		t.Errorf("reply Hops = %d, want 1", rep.Hops)
	}
}

func TestEngineFIFO(t *testing.T) {
	node := &echoNode{id: 0}
	sink := &echoNode{id: 1}
	e := NewEngine()
	if err := e.Register(node); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(sink); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		e.Send(&msg.Request{To: 0, Object: ids.ObjectID(i), Client: 1})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(node.seen) != 100 {
		t.Fatalf("delivered %d, want 100", len(node.seen))
	}
	for i, obj := range node.seen {
		if obj != ids.ObjectID(i+1) {
			t.Fatalf("delivery %d = %v, want %v (FIFO violated)", i, obj, i+1)
		}
	}
	if e.Delivered() == 0 {
		t.Error("Delivered counter not advancing")
	}
}

func TestOriginResolvesAndBackwards(t *testing.T) {
	o := NewOrigin()
	if o.ID() != ids.Origin {
		t.Fatalf("origin ID = %v", o.ID())
	}
	e := NewEngine()
	var got *msg.Reply
	catcher := &replyCatcher{id: 3, out: &got}
	if err := e.Register(o); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(catcher); err != nil {
		t.Fatal(err)
	}
	e.Send(&msg.Request{
		To: ids.Origin, Object: 7, Client: ids.Client(0),
		Path: []ids.NodeID{3},
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no reply reached the path proxy")
	}
	if !got.FromOrigin {
		t.Error("origin reply must be marked FromOrigin")
	}
	if got.Resolver != ids.None {
		t.Errorf("origin must leave Resolver unset, got %v", got.Resolver)
	}
	if got.PathLen != 1 {
		t.Errorf("PathLen = %d, want 1", got.PathLen)
	}
	if o.Resolved() != 1 {
		t.Errorf("Resolved = %d, want 1", o.Resolved())
	}
}

type replyCatcher struct {
	id  ids.NodeID
	out **msg.Reply
}

func (c *replyCatcher) ID() ids.NodeID { return c.id }
func (c *replyCatcher) Handle(_ Context, m msg.Message) {
	if rep, ok := m.(*msg.Reply); ok {
		*c.out = rep
	}
}

func TestOriginIgnoresReplies(t *testing.T) {
	o := NewOrigin()
	e := NewEngine()
	if err := e.Register(o); err != nil {
		t.Fatal(err)
	}
	e.Send(&msg.Reply{To: ids.Origin})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if o.Resolved() != 0 {
		t.Error("a stray reply must not count as resolved")
	}
}

func TestClientClosedLoop(t *testing.T) {
	src := trace.NewSliceSource([]ids.ObjectID{5, 6, 7})
	col := metrics.NewCollector(metrics.WithSampleEvery(0))
	cl, err := NewClient(ClientConfig{
		Source:    src,
		Proxies:   []ids.NodeID{0},
		Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	node := &echoNode{id: 0}
	e := NewEngine()
	for _, n := range []Node{cl, node} {
		if err := e.Register(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Done() {
		t.Error("client must be done after draining its trace")
	}
	if col.Requests() != 3 {
		t.Errorf("recorded %d requests, want 3", col.Requests())
	}
	// Echo node resolves everything: all hits, 2 hops each (to, from).
	if col.Hits() != 3 {
		t.Errorf("hits = %d, want 3", col.Hits())
	}
	if got := col.CumHops(); got != 2 {
		t.Errorf("CumHops = %v, want 2", got)
	}
	if len(node.seen) != 3 {
		t.Errorf("proxy saw %d requests", len(node.seen))
	}
}

func TestClientOnDoneFiresOnce(t *testing.T) {
	src := trace.NewSliceSource([]ids.ObjectID{1, 2})
	calls := 0
	cl, err := NewClient(ClientConfig{
		Source:  src,
		Proxies: []ids.NodeID{0},
		OnDone:  func() { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	node := &echoNode{id: 0}
	for _, n := range []Node{cl, node} {
		if err := e.Register(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("OnDone fired %d times, want 1", calls)
	}
}

func TestClientEntryPolicies(t *testing.T) {
	run := func(policy EntryPolicy, n int) map[ids.NodeID]int {
		objs := make([]ids.ObjectID, n)
		for i := range objs {
			objs[i] = ids.ObjectID(i)
		}
		nodes := []*echoNode{{id: 0}, {id: 1}, {id: 2}}
		cl, err := NewClient(ClientConfig{
			Source:  trace.NewSliceSource(objs),
			Proxies: []ids.NodeID{0, 1, 2},
			Policy:  policy,
			Seed:    9,
		})
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine()
		if err := e.Register(cl); err != nil {
			t.Fatal(err)
		}
		for _, nd := range nodes {
			if err := e.Register(nd); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		counts := make(map[ids.NodeID]int)
		for _, nd := range nodes {
			counts[nd.id] = len(nd.seen)
		}
		return counts
	}

	rr := run(EntryRoundRobin, 9)
	for id, c := range rr {
		if c != 3 {
			t.Errorf("round-robin proxy %v saw %d, want 3", id, c)
		}
	}
	fixed := run(EntryFixed, 9)
	if fixed[0] != 9 || fixed[1] != 0 || fixed[2] != 0 {
		t.Errorf("fixed policy spread = %v", fixed)
	}
	random := run(EntryRandom, 3000)
	for id, c := range random {
		if c < 800 || c > 1200 {
			t.Errorf("random proxy %v saw %d, want ≈1000", id, c)
		}
	}
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{Proxies: []ids.NodeID{0}}); err == nil {
		t.Error("missing source must fail")
	}
	if _, err := NewClient(ClientConfig{Source: trace.NewSliceSource(nil)}); err == nil {
		t.Error("missing proxies must fail")
	}
}

func TestEntryPolicyString(t *testing.T) {
	if EntryRandom.String() != "random" || EntryRoundRobin.String() != "round-robin" ||
		EntryFixed.String() != "fixed" {
		t.Error("entry policy names wrong")
	}
}
