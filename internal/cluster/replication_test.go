package cluster

import (
	"os"
	"reflect"
	"testing"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/proxy"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/workload"
)

// zipfWorkload is a head-heavy stream: a small hot population under a steep
// Zipf exponent, no one-timer pollution, so backwarding visibly converges
// the head objects onto single holders and the load spread degrades.
func zipfWorkload(t *testing.T, total int, seed int64) workload.Source {
	t.Helper()
	cfg := workload.DefaultConfig(total)
	cfg.PopulationSize = 60
	cfg.Alpha = 1.2
	cfg.OneTimerProb = -1
	cfg.Seed = seed
	gen, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// replicationConfig is the shared cluster shape for the replication tests:
// caches small enough that promotion competition is real, virtual time so
// response percentiles exist.
func replicationConfig(on bool) Config {
	cfg := Config{
		Algorithm:  ADC,
		NumProxies: 4,
		Tables:     core.Config{SingleSize: 512, MultipleSize: 512, CachingSize: 64},
		Seed:       7,
		Window:     100,
		Runtime:    RuntimeVirtualTime,

		ResponseBuckets:     512,
		ResponseBucketTicks: 1000,
	}
	if on {
		cfg.Replication = proxy.Replication{
			Enabled:      true,
			HotThreshold: 16,
			MaxReplicas:  3,
			Window:       256,
		}
	}
	return cfg
}

func TestClusterReplicationValidate(t *testing.T) {
	cfg := replicationConfig(true)
	cfg.Algorithm = CARP
	cfg.Tables = core.Config{CachingSize: 64}
	if err := cfg.Validate(); err == nil {
		t.Error("replication on CARP must be rejected")
	}

	cfg = replicationConfig(true)
	cfg.Replication.MaxReplicas = -2
	if err := cfg.Validate(); err == nil {
		t.Error("negative replication knob must be rejected")
	}

	cfg = replicationConfig(false)
	cfg.Runtime = RuntimeSequential
	if err := cfg.Validate(); err == nil {
		t.Error("response histogram on the sequential runtime must be rejected")
	}
}

// replicationScenario is the benchmark scenario for the hot-object
// replication claim: 8 proxies on the virtual-time runtime under an
// open-loop shifting-Zipf stream (alpha 2.0, popularity reshuffled every
// epoch) with queued service so load actually queues, and windowed
// per-proxy load snapshots every 50k ticks.
//
// A run-total load comparison is the wrong instrument here: stock ADC
// self-balances over a whole run (replies retrace the request path, so
// frequency admission multi-homes the head objects within an epoch and
// the run-total max/mean reception share sits near 1.0 regardless).
// The hotspot the controller attacks is the transient one right after
// each popularity shift — it rotates across proxies, so it is visible
// only in time-windowed statistics. See MeanWindowLoad.
func replicationScenario(on bool) Config {
	cfg := Config{
		Algorithm:  ADC,
		NumProxies: 8,
		Clients:    8,
		Tables:     core.Config{SingleSize: 1024, MultipleSize: 1024, CachingSize: 8},
		Seed:       7,
		Window:     100,
		Runtime:    RuntimeVirtualTime,

		OpenLoopInterval: 700,
		Latency: sim.LatencyModel{
			ClientProxy:  5_000,
			ProxyProxy:   10_000,
			ProxyOrigin:  50_000,
			Service:      100,
			QueueService: true,
		},

		ResponseBuckets:     4096,
		ResponseBucketTicks: 1000,
		MetricsEvery:        50_000,
	}
	if on {
		cfg.Replication = proxy.Replication{
			Enabled:      true,
			HotThreshold: 2,
			MaxReplicas:  7,
			Window:       512,
		}
	}
	return cfg
}

// replicationShift builds the matching workload: epochs long enough for
// admission to converge, a head-heavy population so a handful of objects
// carry most of the stream.
func replicationShift(t testing.TB, seed int64) workload.Source {
	t.Helper()
	gen, err := workload.NewShift(workload.ShiftConfig{
		TotalRequests: 30_000,
		Period:        3_000,
		Population:    100,
		Alpha:         2.0,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// replicationWarmup is the number of MetricsEvery windows covering the
// first epoch, which both configurations spend identically filling cold
// caches: one epoch is Period requests injected every OpenLoopInterval
// ticks across Clients open loops.
const replicationWarmup = int(3_000 * 700 / 8 / 50_000)

// TestClusterReplicationZipf is the end-to-end claim of the replication
// extension: under the shifting-Zipf scenario the controller activates
// (pushes happen, pushed copies serve hits) and the time-windowed
// per-proxy load spread improves over stock ADC on the identical stream.
func TestClusterReplicationZipf(t *testing.T) {
	off, err := Run(replicationScenario(false), replicationShift(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(replicationScenario(true), replicationShift(t, 3))
	if err != nil {
		t.Fatal(err)
	}

	var pushes, drops, hits uint64
	for _, s := range on.ProxyStats {
		pushes += s.ReplicaPushes
		drops += s.ReplicaDrops
		hits += s.ReplicaHits
	}
	if pushes == 0 || hits == 0 {
		t.Fatalf("controller never engaged: pushes=%d drops=%d replica hits=%d", pushes, drops, hits)
	}
	for _, s := range off.ProxyStats {
		if s.ReplicaPushes != 0 || s.ReplicaDrops != 0 || s.ReplicaHits != 0 {
			t.Fatalf("replica counters must stay zero with replication off: %+v", s)
		}
	}

	offShare, offPeak := MeanWindowLoad(off.Buckets, replicationWarmup)
	onShare, onPeak := MeanWindowLoad(on.Buckets, replicationWarmup)
	if offShare == 0 || onShare == 0 {
		t.Fatal("windowed load snapshots missing; MetricsEvery plumbing broken")
	}
	if onShare >= offShare {
		t.Errorf("windowed load spread did not improve: max/mean %.4f (on) vs %.4f (off)",
			onShare, offShare)
	}
	if onPeak >= offPeak {
		t.Errorf("hottest-proxy windowed load did not improve: %.2f (on) vs %.2f (off)",
			onPeak, offPeak)
	}
	if off.Summary.P99Response == 0 {
		t.Fatal("response histogram produced no p99")
	}
	// Replication must not wreck the hit rate: copies cost cache slots,
	// so allow a small dip but no collapse.
	if on.Summary.HitRate < off.Summary.HitRate*0.9 {
		t.Errorf("hit rate collapsed under replication: %.4f (on) vs %.4f (off)",
			on.Summary.HitRate, off.Summary.HitRate)
	}
	t.Logf("off: hit=%.4f p99=%.0f mws=%.4f mwp=%.1f",
		off.Summary.HitRate, off.Summary.P99Response, offShare, offPeak)
	t.Logf("on:  hit=%.4f p99=%.0f mws=%.4f mwp=%.1f pushes=%d drops=%d replica hits=%d",
		on.Summary.HitRate, on.Summary.P99Response, onShare, onPeak, pushes, drops, hits)
}

// TestClusterReplicationDeterminism re-runs the replicated configuration and
// demands identical results: the controller must not introduce any
// iteration-order or timing nondeterminism.
func TestClusterReplicationDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(replicationConfig(true), zipfWorkload(t, 10_000, 5))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	a.Elapsed, b.Elapsed = 0, 0
	a.Summary.Elapsed, b.Summary.Elapsed = 0, 0
	if a.Summary != b.Summary {
		t.Errorf("summaries differ across runs:\n%+v\n%+v", a.Summary, b.Summary)
	}
	if !reflect.DeepEqual(a.ProxyStats, b.ProxyStats) {
		t.Errorf("proxy stats differ across runs:\n%+v\n%+v", a.ProxyStats, b.ProxyStats)
	}
	if a.MaxMeanShare != b.MaxMeanShare || a.GiniShare != b.GiniShare {
		t.Errorf("spread stats differ: %v/%v vs %v/%v",
			a.MaxMeanShare, a.GiniShare, b.MaxMeanShare, b.GiniShare)
	}
}

// BenchmarkReplicationZipf runs the replication benchmark scenario and
// reports, alongside ns/op, the windowed load statistics and the response
// p99 as custom metrics — the numbers `make bench-replication` records in
// BENCH_replication.json. ADC_REPLICATION=off benchmarks stock ADC on the
// identical stream; that run is the committed baseline
// (BENCH_replication_baseline.json) the replicated numbers embed, so
// `benchjson compare` shows the controller's effect directly:
// mw-share and mw-peak-req drop, p99 and hit rate hold.
func BenchmarkReplicationZipf(b *testing.B) {
	on := os.Getenv("ADC_REPLICATION") != "off"
	var share, peak, p99, hit float64
	for i := 0; i < b.N; i++ {
		res, err := Run(replicationScenario(on), replicationShift(b, 3))
		if err != nil {
			b.Fatal(err)
		}
		share, peak = MeanWindowLoad(res.Buckets, replicationWarmup)
		p99 = res.Summary.P99Response
		hit = res.Summary.HitRate
	}
	b.ReportMetric(share, "mw-share")
	b.ReportMetric(peak, "mw-peak-req")
	b.ReportMetric(p99, "p99-ticks")
	b.ReportMetric(hit, "hit-rate")
}
