package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

func newTestTables(t *testing.T, single, multiple, caching int) *Tables {
	t.Helper()
	tbl, err := NewTables(Config{
		SingleSize:   single,
		MultipleSize: multiple,
		CachingSize:  caching,
	})
	if err != nil {
		t.Fatalf("NewTables: %v", err)
	}
	return tbl
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid", Config{SingleSize: 1, MultipleSize: 1, CachingSize: 1}, false},
		{"paper reference", Config{SingleSize: 20000, MultipleSize: 20000, CachingSize: 10000}, false},
		{"zero single", Config{SingleSize: 0, MultipleSize: 1, CachingSize: 1}, true},
		{"negative multiple", Config{SingleSize: 1, MultipleSize: -1, CachingSize: 1}, true},
		{"zero caching", Config{SingleSize: 1, MultipleSize: 1, CachingSize: 0}, true},
		{"bad backend", Config{SingleSize: 1, MultipleSize: 1, CachingSize: 1, Backend: Backend(9)}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err != nil) != tc.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestUpdateCreatesInSingle(t *testing.T) {
	// Part 4: unknown object → fresh entry on top of the single-table.
	tbl := newTestTables(t, 4, 4, 4)
	out := tbl.Update(1, 2, 100)
	if out.From != KindNone || out.To != KindSingle {
		t.Fatalf("outcome = %+v, want create-in-single", out)
	}
	e, kind := tbl.Lookup(1)
	if kind != KindSingle {
		t.Fatalf("Lookup kind = %v, want single", kind)
	}
	if e.Avg != 0 || e.Hits != 1 || e.Last != 100 || e.Location != 2 {
		t.Errorf("entry = %+v, want fresh entry avg=0 hits=1", e)
	}
}

func TestUpdatePromotesSingleToMultiple(t *testing.T) {
	// Part 3: a second hit computes the average and promotes into the
	// multiple-table (which has space, so anything is admitted).
	tbl := newTestTables(t, 4, 4, 4)
	tbl.Update(1, 2, 100)
	out := tbl.Update(1, 3, 150)
	if out.From != KindSingle || out.To != KindMultiple {
		t.Fatalf("outcome = %+v, want single→multiple", out)
	}
	e, kind := tbl.Lookup(1)
	if kind != KindMultiple {
		t.Fatalf("Lookup kind = %v, want multiple", kind)
	}
	if e.Avg != 50 || e.Hits != 2 || e.Location != 3 {
		t.Errorf("entry = %+v, want avg=50 hits=2 loc=Proxy[3]", e)
	}
}

func TestUpdatePromotesMultipleToCaching(t *testing.T) {
	// Part 2: a third hit moves the entry into the caching table.
	tbl := newTestTables(t, 4, 4, 4)
	tbl.Update(1, 2, 100)
	tbl.Update(1, 2, 150)
	out := tbl.Update(1, 2, 200)
	if out.From != KindMultiple || out.To != KindCaching {
		t.Fatalf("outcome = %+v, want multiple→caching", out)
	}
	if !tbl.IsCached(1) {
		t.Error("object must be cached after promotion")
	}
}

func TestUpdateCachingStaysInCaching(t *testing.T) {
	// Part 1: cached entries are updated in place, never demoted by an
	// update — demotion only happens when displaced by a better entry.
	tbl := newTestTables(t, 4, 4, 4)
	tbl.Update(1, 2, 100)
	tbl.Update(1, 2, 150)
	tbl.Update(1, 2, 200)
	out := tbl.Update(1, 5, 5000) // huge gap — avg gets much worse
	if out.From != KindCaching || out.To != KindCaching {
		t.Fatalf("outcome = %+v, want caching→caching", out)
	}
	e, _ := tbl.Lookup(1)
	if e.Location != 5 {
		t.Errorf("location = %v, want Proxy[5]", e.Location)
	}
}

func TestUpdateFullCacheDemotesWorst(t *testing.T) {
	// Fig. 8 Part 2: when the caching table is full, the incoming entry
	// must beat the worst case; the displaced worst moves back into the
	// multiple-table.
	tbl := newTestTables(t, 8, 8, 1)

	// Hot object A fills the single cache slot (3 accesses, gap 10).
	for _, now := range []int64{10, 20, 30} {
		tbl.Update(1, 0, now)
	}
	if !tbl.IsCached(1) {
		t.Fatal("object 1 should be cached")
	}

	// Hotter object B (gap 2) displaces A.
	for _, now := range []int64{40, 42, 44} {
		out := tbl.Update(2, 0, now)
		if now == 44 {
			if out.To != KindCaching {
				t.Fatalf("object 2 not promoted: %+v", out)
			}
			if out.CacheEvicted == nil || out.CacheEvicted.Object != 1 {
				t.Fatalf("CacheEvicted = %v, want object 1", out.CacheEvicted)
			}
		}
	}
	if tbl.IsCached(1) {
		t.Error("object 1 must be demoted from cache")
	}
	if !tbl.IsCached(2) {
		t.Error("object 2 must be cached")
	}
	// A must be back in the multiple-table, "giving them the chance to
	// be hit again in the near future" (§III.3.3).
	if _, kind := tbl.Lookup(1); kind != KindMultiple {
		t.Errorf("demoted object 1 in %v, want multiple", kind)
	}
}

func TestUpdateColdObjectCannotEnterFullCache(t *testing.T) {
	// A cold object (gap 500) must not displace an object that is both
	// hot (gap 2) and fresh. The hot object keeps being requested so
	// aging does not expire it — if it went idle, the aging rule would
	// rightly let the newcomer win (see TestUpdateAgingExpiresIdleHotObject).
	tbl := newTestTables(t, 8, 8, 1)
	for now := int64(10); now <= 1020; now += 2 {
		tbl.Update(1, 0, now) // hot and fresh throughout
		switch now {
		case 20, 520, 1020:
			tbl.Update(2, 0, now+1) // cold: gap 500
		}
	}
	if !tbl.IsCached(1) || tbl.IsCached(2) {
		t.Error("cold object displaced a hot fresh one — selective caching broken")
	}
	if _, kind := tbl.Lookup(2); kind != KindMultiple {
		t.Errorf("cold object in %v, want multiple", kind)
	}
}

func TestUpdateAgingExpiresIdleHotObject(t *testing.T) {
	// §III.4: "To make sure that old objects will expire" the aging rule
	// penalises idleness. An object that was hot long ago must lose its
	// cache slot to one that is active now, even if the newcomer's
	// average is numerically worse.
	tbl := newTestTables(t, 8, 8, 1)
	for _, now := range []int64{10, 12, 14} { // hot (avg 2), then idle
		tbl.Update(1, 0, now)
	}
	for _, now := range []int64{500, 1000, 1500} { // active, avg 500
		tbl.Update(2, 0, now)
	}
	// At t=1500 object 1's aged average is (2+1486)/2 ≈ 744 while
	// object 2's is (500+0)/2 = 250 — object 2 must win the slot.
	if tbl.IsCached(1) || !tbl.IsCached(2) {
		t.Error("aging failed: idle object kept its cache slot")
	}
}

func TestUpdateFullMultipleDemotesToSingleTop(t *testing.T) {
	// Fig. 8 Part 3: "the last element of the multiple-table will be
	// placed at the top of the single-table".
	tbl := newTestTables(t, 8, 1, 8)

	// Fill the cache-bound pipeline: obj 1 promoted through multiple
	// into caching (cache has space → admitted).
	tbl.Update(1, 0, 10)
	tbl.Update(1, 0, 20) // 1 → multiple (avg 10)
	// obj 2: worse rhythm, occupies multiple after 1 leaves... but 1 is
	// still in multiple until its third access. Use a fresh layout:
	// obj 2 enters multiple while it is full with obj 1.
	tbl.Update(2, 0, 100)
	out := tbl.Update(2, 0, 102) // avg 2, beats obj 1's key → displaces it
	if out.From != KindSingle || out.To != KindMultiple {
		t.Fatalf("outcome = %+v, want single→multiple", out)
	}
	if out.MultipleEvicted == nil || out.MultipleEvicted.Object != 1 {
		t.Fatalf("MultipleEvicted = %v, want object 1", out.MultipleEvicted)
	}
	// Object 1 must now be on top of the single-table.
	if _, kind := tbl.Lookup(1); kind != KindSingle {
		t.Fatalf("demoted object 1 not in single-table")
	}
	if top := tbl.Single().Entries()[0]; top.Object != 1 {
		t.Errorf("single-table top = %v, want object 1", top.Object)
	}
}

func TestDemotedEntryKeepsForwardingInfo(t *testing.T) {
	// §V.3.2: "when old entries from the multiple-table move back into
	// the single-table, they still keep their forwarding information".
	tbl := newTestTables(t, 8, 1, 8)
	tbl.Update(1, 7, 10)
	tbl.Update(1, 7, 20)
	tbl.Update(2, 3, 100)
	tbl.Update(2, 3, 102) // displaces object 1 into the single-table
	e, kind := tbl.Lookup(1)
	if kind != KindSingle {
		t.Fatalf("object 1 in %v, want single", kind)
	}
	if e.Location != 7 {
		t.Errorf("demoted entry lost its location: %v, want Proxy[7]", e.Location)
	}
	if e.Avg == 0 || e.Hits != 2 {
		t.Errorf("demoted entry lost its history: %+v", e)
	}
}

func TestUpdateSingleOverflowDrops(t *testing.T) {
	tbl := newTestTables(t, 2, 2, 2)
	tbl.Update(1, 0, 1)
	tbl.Update(2, 0, 2)
	out := tbl.Update(3, 0, 3)
	if out.Dropped == nil || out.Dropped.Object != 1 {
		t.Fatalf("Dropped = %v, want object 1", out.Dropped)
	}
	if _, kind := tbl.Lookup(1); kind != KindNone {
		t.Error("dropped object still findable")
	}
}

func TestForwardLocation(t *testing.T) {
	tbl := newTestTables(t, 4, 4, 4)
	if _, ok := tbl.ForwardLocation(1); ok {
		t.Error("unknown object must report !ok (random forwarding)")
	}
	tbl.Update(1, 6, 100)
	loc, ok := tbl.ForwardLocation(1)
	if !ok || loc != 6 {
		t.Errorf("ForwardLocation = %v,%v, want Proxy[6],true", loc, ok)
	}
}

// TestObjectInAtMostOneTable is invariant 3 of DESIGN.md §10: after any
// sequence of updates an object lives in at most one table.
func TestObjectInAtMostOneTable(t *testing.T) {
	tbl := newTestTables(t, 5, 3, 2)
	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	for i := 0; i < 20000; i++ {
		now++
		obj := ids.ObjectID(rng.Intn(40))
		tbl.Update(obj, ids.NodeID(rng.Intn(5)), now)
		if i%500 != 0 {
			continue
		}
		for o := ids.ObjectID(0); o < 40; o++ {
			n := 0
			if tbl.Caching().Contains(o) {
				n++
			}
			if tbl.Multiple().Contains(o) {
				n++
			}
			if tbl.Single().Contains(o) {
				n++
			}
			if n > 1 {
				t.Fatalf("step %d: object %v present in %d tables", i, o, n)
			}
		}
	}
}

// TestTablesBoundedUnderChurn is invariant 1 under a long random workload,
// for both backends.
func TestTablesBoundedUnderChurn(t *testing.T) {
	for _, backend := range []Backend{BackendBTree, BackendSlice, BackendSkipList} {
		t.Run(backend.String(), func(t *testing.T) {
			tbl, err := NewTables(Config{
				SingleSize: 8, MultipleSize: 5, CachingSize: 3,
				Backend: backend,
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 50000; i++ {
				tbl.Update(ids.ObjectID(rng.Intn(100)), ids.NodeID(rng.Intn(4)), int64(i))
				if tbl.Single().Len() > 8 || tbl.Multiple().Len() > 5 || tbl.Caching().Len() > 3 {
					t.Fatalf("step %d: capacity exceeded (%d/%d/%d)",
						i, tbl.Single().Len(), tbl.Multiple().Len(), tbl.Caching().Len())
				}
			}
		})
	}
}

// TestBackendEquivalenceEndToEnd: the full Update state machine must behave
// identically on every ordered-table backend — same Outcome stream (kinds
// and moved objects) and same final table dumps, with the paper's sorted
// slice as the reference.
func TestBackendEquivalenceEndToEnd(t *testing.T) {
	mk := func(b Backend) *Tables {
		tbl, err := NewTables(Config{SingleSize: 6, MultipleSize: 4, CachingSize: 3, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	outcomeObj := func(e *Entry) ids.ObjectID {
		if e == nil {
			return ^ids.ObjectID(0)
		}
		return e.Object
	}
	for _, backend := range []Backend{BackendBTree, BackendSkipList, BackendList} {
		t.Run(backend.String(), func(t *testing.T) {
			a, b := mk(BackendSlice), mk(backend)
			rng := rand.New(rand.NewSource(1234))
			for i := int64(1); i <= 30000; i++ {
				obj := ids.ObjectID(rng.Intn(60))
				loc := ids.NodeID(rng.Intn(5))
				oa := a.Update(obj, loc, i)
				ob := b.Update(obj, loc, i)
				if oa.From != ob.From || oa.To != ob.To {
					t.Fatalf("step %d: outcome mismatch %+v vs %+v", i, oa, ob)
				}
				if outcomeObj(oa.CacheEvicted) != outcomeObj(ob.CacheEvicted) ||
					outcomeObj(oa.MultipleEvicted) != outcomeObj(ob.MultipleEvicted) ||
					outcomeObj(oa.Dropped) != outcomeObj(ob.Dropped) {
					t.Fatalf("step %d: moved objects mismatch %+v vs %+v", i, oa, ob)
				}
				if a.IsCached(obj) != b.IsCached(obj) {
					t.Fatalf("step %d: IsCached mismatch for %v", i, obj)
				}
			}
			var da, db strings.Builder
			if err := a.Dump(&da, 30001); err != nil {
				t.Fatal(err)
			}
			if err := b.Dump(&db, 30001); err != nil {
				t.Fatal(err)
			}
			if da.String() != db.String() {
				t.Fatalf("final dumps differ:\n--- slice ---\n%s\n--- %s ---\n%s",
					da.String(), backend, db.String())
			}
		})
	}
}

func TestLookupSearchOrderPrefersCaching(t *testing.T) {
	// §IV.3: search order is caching, multiple, single. Lookup must
	// report the kind accordingly (an object can only be in one, but
	// the scan order is part of the spec).
	tbl := newTestTables(t, 4, 4, 4)
	tbl.Update(1, 0, 10)
	if _, kind := tbl.Lookup(1); kind != KindSingle {
		t.Errorf("kind = %v, want single", kind)
	}
	tbl.Update(1, 0, 20)
	if _, kind := tbl.Lookup(1); kind != KindMultiple {
		t.Errorf("kind = %v, want multiple", kind)
	}
	tbl.Update(1, 0, 30)
	if _, kind := tbl.Lookup(1); kind != KindCaching {
		t.Errorf("kind = %v, want caching", kind)
	}
}

func TestTablesLen(t *testing.T) {
	tbl := newTestTables(t, 4, 4, 4)
	tbl.Update(1, 0, 1)
	tbl.Update(2, 0, 2)
	tbl.Update(1, 0, 3) // promotes 1 to multiple
	if got := tbl.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
}

func TestCacheAdmitAllCachesEveryPassingObject(t *testing.T) {
	// Ablation (§III.4's comparison baseline): every passing object is
	// cached immediately with LRU replacement, so a one-timer displaces
	// a hot fresh object — the pollution selective caching prevents
	// (contrast TestUpdateColdObjectCannotEnterFullCache).
	tbl, err := NewTables(Config{
		SingleSize: 8, MultipleSize: 8, CachingSize: 1, CacheAdmitAll: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Update(1, 0, 10)
	if out.To != KindCaching || !tbl.IsCached(1) {
		t.Fatalf("first sighting must be cached immediately, got %+v", out)
	}
	out = tbl.Update(2, 0, 11) // a one-timer
	if !tbl.IsCached(2) || tbl.IsCached(1) {
		t.Error("LRU must cache the one-timer and evict the hot object")
	}
	if out.CacheEvicted == nil || out.CacheEvicted.Object != 1 {
		t.Errorf("CacheEvicted = %v, want object 1", out.CacheEvicted)
	}
	// The evicted entry keeps its routing info on the single-table.
	if _, kind := tbl.Lookup(1); kind != KindSingle {
		t.Errorf("evicted object in %v, want single", kind)
	}
}

func TestAgingOffKeepsStaleHotObjects(t *testing.T) {
	// Ablation: without aging, an object hot long ago keeps its slot
	// against a currently active object with a worse raw average —
	// the failure §III.4 aging prevents.
	tbl, err := NewTables(Config{
		SingleSize: 8, MultipleSize: 8, CachingSize: 1, AgingOff: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, now := range []int64{10, 12, 14} { // avg 2, then idle forever
		tbl.Update(1, 0, now)
	}
	for _, now := range []int64{500, 1000, 1500, 2000} { // active, avg 500
		tbl.Update(2, 0, now)
	}
	if !tbl.IsCached(1) || tbl.IsCached(2) {
		t.Error("with aging off the stale object must keep its slot")
	}
	// Contrast: the default configuration expires it
	// (TestUpdateAgingExpiresIdleHotObject).
}

func TestDumpRendersPaperColumns(t *testing.T) {
	tbl := newTestTables(t, 4, 4, 4)
	tbl.Update(52, 4, 3356)
	var buf bytes.Buffer
	if err := tbl.Dump(&buf, 4000); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Caching Table", "Multiple-Table", "Single-Table",
		"OBJ-ID", "PROXY", "LAST", "AVG", "HITS",
		"www.xy52", "Proxy[4]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}
