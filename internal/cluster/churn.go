package cluster

import (
	"fmt"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/proxy"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/workload"
)

// Infrastructure churn: the paper lists "changes of the infrastructure"
// among the parameters its testbed supports but never exercises (§V.1).
// This file implements the growth side — proxies joining a live system —
// which is where ADC's self-organization has something to prove: the
// newcomer starts with empty tables and must attract load purely through
// random forwarding and backwarding.
//
// Churn is applied between client requests (the only quiescent points of
// a closed-loop run), so it is available on the deterministic
// single-threaded runtimes — sequential and virtual-time — with a single
// closed-loop client.

// validateChurn checks the churn-specific configuration constraints.
func (c Config) validateChurn() error {
	if len(c.JoinProxyAt) == 0 {
		return nil
	}
	if c.Algorithm != ADC {
		return fmt.Errorf("cluster: proxy churn requires the ADC algorithm (hashing needs a global remap)")
	}
	if c.Runtime != RuntimeSequential && c.Runtime != RuntimeVirtualTime {
		return fmt.Errorf("cluster: proxy churn requires the sequential or virtual-time runtime")
	}
	if c.Clients > 1 {
		return fmt.Errorf("cluster: proxy churn requires a single client")
	}
	if c.OpenLoopInterval > 0 {
		return fmt.Errorf("cluster: proxy churn requires a closed-loop client")
	}
	prev := uint64(0)
	for i, at := range c.JoinProxyAt {
		if at == 0 || (i > 0 && at <= prev) {
			return fmt.Errorf("cluster: JoinProxyAt must be positive and strictly increasing")
		}
		prev = at
	}
	return nil
}

// churnSource wraps the client's workload source and fires the join
// actions when the stream crosses the configured request indexes. Next is
// called by the client between requests, inside the engine's single
// thread, which makes topology mutation safe.
type churnSource struct {
	inner   workload.Source
	atReqs  []uint64
	next    int
	emitted uint64
	onJoin  func() error
	err     error
}

var _ workload.Source = (*churnSource)(nil)

func (s *churnSource) Total() int { return s.inner.Total() }

func (s *churnSource) Next() (ids.ObjectID, bool) {
	if s.next < len(s.atReqs) && s.emitted >= s.atReqs[s.next] {
		s.next++
		if s.onJoin != nil {
			if err := s.onJoin(); err != nil && s.err == nil {
				s.err = err
			}
		}
	}
	s.emitted++
	return s.inner.Next()
}

// registrar is the engine-side hook addProxy needs; both the sequential
// Engine and the virtual-time VEngine provide it.
type registrar interface {
	Register(n sim.Node) error
}

// addProxy grows the cluster by one ADC agent: register it with the live
// engine, introduce it to every existing proxy's peer set and to the
// client's entry set. The newcomer knows all peers from birth; everything
// else it learns from traffic.
func (c *Cluster) addProxy(eng registrar) error {
	id := ids.NodeID(len(c.adcProxies))
	peerIDs := make([]ids.NodeID, 0, len(c.adcProxies)+1)
	for _, p := range c.adcProxies {
		peerIDs = append(peerIDs, p.ID())
	}
	peerIDs = append(peerIDs, id)

	p, err := proxy.New(proxy.Config{
		ID:          id,
		Peers:       peerIDs,
		Tables:      c.cfg.Tables,
		Seed:        c.cfg.Seed,
		Replication: c.cfg.Replication,
	})
	if err != nil {
		return fmt.Errorf("cluster: join proxy %v: %w", id, err)
	}
	if err := eng.Register(p); err != nil {
		return fmt.Errorf("cluster: join proxy %v: %w", id, err)
	}
	if c.cfg.Tracer != nil {
		p.SetTracer(c.cfg.Tracer)
	}
	for _, q := range c.adcProxies {
		q.AddPeer(id)
	}
	c.adcProxies = append(c.adcProxies, p)
	c.nodes = append(c.nodes, p)
	for _, cl := range c.clients {
		if scl, ok := cl.(*sim.Client); ok {
			scl.AddProxy(id)
		}
	}
	return nil
}
