package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// MergeDumps aligns and merges per-proxy span dumps into one span list.
// Each proxy stamps spans with its own clock; a dump whose ScrapedUs is set
// is shifted by (ScrapedUs - NowUs), putting every span on the scraper's
// clock to within one scrape round-trip. Dumps without ScrapedUs pass
// through unshifted. The result is sorted by (aligned) start time.
func MergeDumps(dumps []SpanDump) []Span {
	var out []Span
	for _, d := range dumps {
		var offset int64
		if d.ScrapedUs != 0 {
			offset = d.ScrapedUs - d.NowUs
		}
		for _, s := range d.Spans {
			s.Start += offset
			s.End += offset
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// SpanNode is one span with its children, sorted by start time.
type SpanNode struct {
	Span
	Children []*SpanNode
}

// TreeState classifies a reconstructed span tree.
type TreeState uint8

const (
	// TreeComplete: the root is present, every parent link resolves, and
	// no span recorded an error.
	TreeComplete TreeState = iota
	// TreeTruncated: structurally sound (root present, links resolve) but
	// at least one span carries an error — the request explicitly saw a
	// failure, e.g. a fetch into a kill window. Truncated trees are the
	// expected shape under chaos; orphaned trees are reconstruction bugs.
	TreeTruncated
	// TreeOrphaned: the root is missing or some span's parent is unknown
	// (ring eviction, an unscraped proxy, or a propagation bug).
	TreeOrphaned
)

// String implements fmt.Stringer.
func (s TreeState) String() string {
	switch s {
	case TreeComplete:
		return "complete"
	case TreeTruncated:
		return "truncated"
	case TreeOrphaned:
		return "orphaned"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// SpanTree is one logical request reconstructed from merged spans.
type SpanTree struct {
	Trace uint64
	// Root is the entry proxy's server span, nil when it never surfaced.
	Root *SpanNode
	// Orphans are spans whose parent is missing from the trace (the root,
	// with Parent 0, is never an orphan).
	Orphans []*SpanNode
	// Spans counts every span attributed to the trace.
	Spans int
	// Errs counts spans that recorded an error.
	Errs int
}

// State classifies the tree (see TreeState).
func (t *SpanTree) State() TreeState {
	switch {
	case t.Root == nil || len(t.Orphans) > 0:
		return TreeOrphaned
	case t.Errs > 0:
		return TreeTruncated
	}
	return TreeComplete
}

// Start returns the tree's earliest span start (for ordering).
func (t *SpanTree) Start() int64 {
	if t.Root != nil {
		return t.Root.Start
	}
	var min int64
	for i, o := range t.Orphans {
		if i == 0 || o.Start < min {
			min = o.Start
		}
	}
	return min
}

// BuildSpanTrees groups spans by trace ID and links children to parents,
// returning trees ordered by start time. A span whose parent ID never
// surfaced is collected under Orphans; a trace with several Parent==0 spans
// keeps the earliest as root and treats the rest as orphans (two proxies
// both claiming to be the entry point is a propagation bug worth seeing).
func BuildSpanTrees(spans []Span) []*SpanTree {
	byTrace := make(map[uint64][]*SpanNode)
	var order []uint64
	for _, s := range spans {
		if _, ok := byTrace[s.Trace]; !ok {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], &SpanNode{Span: s})
	}

	trees := make([]*SpanTree, 0, len(order))
	for _, trace := range order {
		nodes := byTrace[trace]
		sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].Start < nodes[j].Start })
		t := &SpanTree{Trace: trace, Spans: len(nodes)}
		byID := make(map[uint64]*SpanNode, len(nodes))
		for _, n := range nodes {
			// Duplicate IDs (a re-scraped ring) keep the first occurrence.
			if _, dup := byID[n.ID]; !dup {
				byID[n.ID] = n
			}
		}
		for _, n := range nodes {
			if n.Err != "" {
				t.Errs++
			}
			if n.Parent == 0 {
				if t.Root == nil {
					t.Root = n
				} else {
					t.Orphans = append(t.Orphans, n)
				}
				continue
			}
			if p := byID[n.Parent]; p != nil && p != n {
				p.Children = append(p.Children, n)
			} else {
				t.Orphans = append(t.Orphans, n)
			}
		}
		trees = append(trees, t)
	}
	sort.SliceStable(trees, func(i, j int) bool { return trees[i].Start() < trees[j].Start() })
	return trees
}

// SpanCensus summarises a batch of reconstructed trees.
type SpanCensus struct {
	Trees, Complete, Truncated, Orphaned int
	Spans                                int
}

// CensusSpanTrees tallies tree states across trees.
func CensusSpanTrees(trees []*SpanTree) SpanCensus {
	var c SpanCensus
	c.Trees = len(trees)
	for _, t := range trees {
		c.Spans += t.Spans
		switch t.State() {
		case TreeComplete:
			c.Complete++
		case TreeTruncated:
			c.Truncated++
		default:
			c.Orphaned++
		}
	}
	return c
}

// CompleteFraction is the share of trees that are complete OR truncated —
// i.e. fully reconstructed, counting explicitly-failed requests as
// accounted for. The telemetry-smoke CI gate asserts this ≥ 0.99.
func (c SpanCensus) CompleteFraction() float64 {
	if c.Trees == 0 {
		return 1
	}
	return float64(c.Complete+c.Truncated) / float64(c.Trees)
}

// FormatSpanTree renders one tree as an indented listing.
func FormatSpanTree(w io.Writer, t *SpanTree) {
	fmt.Fprintf(w, "trace %016x  %d spans  %s\n", t.Trace, t.Spans, t.State())
	if t.Root != nil {
		formatSpanNode(w, t.Root, t.Root.Start, 1)
	}
	for _, o := range t.Orphans {
		fmt.Fprintf(w, "  [orphan parent=%x]\n", o.Parent)
		formatSpanNode(w, o, o.Start, 2)
	}
}

func formatSpanNode(w io.Writer, n *SpanNode, base int64, depth int) {
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	fmt.Fprintf(w, "+%-8d %-14s Proxy[%d]  %dus", n.Start-base, n.Stage, n.Node, max64(n.End-n.Start, 0))
	if n.Detail != "" {
		fmt.Fprintf(w, "  %s", n.Detail)
	}
	if n.Err != "" {
		fmt.Fprintf(w, "  ERR %s", n.Err)
	}
	io.WriteString(w, "\n")
	for _, c := range n.Children {
		formatSpanNode(w, c, base, depth+1)
	}
}

// WriteChromeSpans exports merged spans in Chrome trace_event format: one
// duration event per span, grouped so each trace is a process and each
// proxy a row within it — a cross-proxy request renders as one aligned
// flame chart per request.
func WriteChromeSpans(w io.Writer, spans []Span) error {
	f := chromeFile{DisplayTimeUnit: "ms"}
	var base int64
	for i, s := range spans {
		if i == 0 || s.Start < base {
			base = s.Start
		}
	}
	named := map[int]bool{}
	for _, s := range spans {
		pid := int(s.Trace % (1 << 31))
		args := map[string]any{"trace": fmt.Sprintf("%016x", s.Trace), "span": s.ID}
		if s.Obj != 0 {
			args["obj"] = s.Obj
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: s.Stage, Ph: "X", Ts: s.Start - base, Dur: max64(s.End-s.Start, 1),
			Pid: pid, Tid: 100 + int(s.Node), Args: args,
		})
		if !named[pid] {
			named[pid] = true
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": fmt.Sprintf("trace %016x", s.Trace)},
			})
		}
	}
	return json.NewEncoder(w).Encode(f)
}
