// Package msg defines the two message kinds exchanged in the system —
// requests travelling along the forwarding path and replies retracing it
// during backwarding (§III.1–2 of the paper) — plus helpers to manage the
// recorded path.
//
// Messages are plain data; the engines in internal/sim and internal/agent
// move them between nodes, and internal/wire serializes them for TCP
// transports. Both engines pass messages by pointer within a process, so
// handlers must treat a received message as owned (mutate-and-forward is the
// norm, mirroring how a real proxy rewrites a packet before relaying it).
package msg

import "github.com/adc-sim/adc/internal/ids"

// Message is implemented by every message kind the engines can deliver.
type Message interface {
	// Dest returns the node the message is addressed to.
	Dest() ids.NodeID
}

// Request is a client request for one object, forwarded proxy-to-proxy until
// a cache hit, a loop, the hop bound, or the origin server resolves it.
type Request struct {
	// To is the current destination of the message.
	To ids.NodeID

	// ID is the globally unique request ID used for loop detection.
	ID ids.RequestID

	// Object is the requested object (the paper's URL).
	Object ids.ObjectID

	// Client is the node that issued the request and receives the reply.
	Client ids.NodeID

	// Sender is the node the message was last sent by (client or proxy);
	// the paper's Request.setSender/getSender.
	Sender ids.NodeID

	// Path records every proxy that forwarded the request, in visit
	// order. A proxy may appear twice when a random walk loops; the
	// reply visits it twice as well, exactly as the backwarding rule
	// requires. The path never includes the node that finally resolves.
	Path []ids.NodeID

	// Hops counts message transfers so far (client-proxy, proxy-proxy
	// and proxy-server transfers all count, §V.2.2).
	Hops int

	// MaxHops bounds the number of proxy forwardings; when Path reaches
	// this length the next proxy sends the request to the origin server.
	// Zero or negative means unbounded (the paper's default: the
	// parameter "can be used but [was] not applied", §V.1).
	MaxHops int
}

// Dest implements Message.
func (r *Request) Dest() ids.NodeID { return r.To }

// AtMaxHops reports whether the forwarding bound has been reached
// (the paper's Request.isMaxHops()).
func (r *Request) AtMaxHops() bool {
	return r.MaxHops > 0 && len(r.Path) >= r.MaxHops
}

// Reply carries a resolved object back along the forwarding path
// (backwarding). The object payload itself is not modelled, matching the
// paper's testbed which "will not cache and transfer the actual objects
// data" (§V.1).
type Reply struct {
	// To is the current destination of the message.
	To ids.NodeID

	// ID and Object identify the request being answered.
	ID     ids.RequestID
	Object ids.ObjectID

	// Client is the final destination of the backwarding path.
	Client ids.NodeID

	// Resolver is the proxy the multicast group should agree on as the
	// object's location. ids.None plays the paper's NULL role: the data
	// came straight from the origin server and the first proxy on the
	// backwarding path will claim the resolver slot (§IV.2).
	Resolver ids.NodeID

	// Cached reports whether some proxy already holds the object in its
	// cache (the paper's reply.notCached() is !Cached).
	Cached bool

	// FromOrigin marks replies whose data was produced by the origin
	// server; the client counts such requests as misses.
	FromOrigin bool

	// Path is the remaining backwarding path: proxies still to visit, in
	// forwarding order. Backward pops from the tail.
	Path []ids.NodeID

	// Replicas advertises the resolver's replica set for the object — the
	// additional proxies known to hold it beyond the resolver itself.
	// Always nil in stock ADC; the hot-object replication extension fills
	// it so backwarding teaches the path a *set* of locations.
	Replicas []ids.NodeID

	// Replicate asks the path proxies to check Replicas for their own ID
	// and, on a match, adopt the passing object into their cache (a
	// replica push piggybacked on the reply — no extra round trip).
	Replicate bool

	// AvgHint carries the resolver's moving-average inter-request gap for
	// the object (Entry.Avg) when Replicate is set, 0 otherwise. Adopting
	// proxies seed their forced cache entry with it, so a pushed replica
	// competes in the caching table with the popularity the holder
	// actually measured instead of starting cold and being evicted before
	// its first local hit.
	AvgHint int64

	// Hops counts message transfers including the request's own.
	Hops int

	// PathLen preserves the forwarding path length at resolve time for
	// metrics; Path itself shrinks during backwarding.
	PathLen int
}

// Dest implements Message.
func (r *Reply) Dest() ids.NodeID { return r.To }

// NextBackward pops the next node of the backwarding path. When the path is
// exhausted it returns the client, which terminates backwarding. The second
// return reports whether the hop still belongs to the proxy path.
func (r *Reply) NextBackward() (ids.NodeID, bool) {
	if n := len(r.Path); n > 0 {
		next := r.Path[n-1]
		r.Path = r.Path[:n-1]
		return next, true
	}
	return r.Client, false
}

// InitFrom initializes r as the reply for req, retracing the request's
// recorded path. It overwrites every field, so a recycled reply comes out
// identical to a fresh one. The request's Path backing array transfers to
// the reply: callers recycling req must nil req.Path afterwards.
func (r *Reply) InitFrom(req *Request) {
	*r = Reply{
		ID:       req.ID,
		Object:   req.Object,
		Client:   req.Client,
		Resolver: ids.None,
		Path:     req.Path,
		Hops:     req.Hops,
		PathLen:  len(req.Path),
	}
}

// ReplyTo builds the reply for req, initialized to retrace the request's
// recorded path. The caller sets Resolver/Cached/FromOrigin as appropriate
// before sending. Engine-resident nodes should prefer sim.Resolve, which
// additionally recycles req through the engine freelist.
func ReplyTo(req *Request) *Reply {
	rep := &Reply{}
	rep.InitFrom(req)
	return rep
}

// Compile-time interface checks.
var (
	_ Message = (*Request)(nil)
	_ Message = (*Reply)(nil)
)
