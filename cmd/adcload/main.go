// Command adcload is an open-loop load generator for the HTTP proxy farm.
//
// Closed-loop drivers (like Farm.RunWorkloadN) issue the next request only
// after the previous one completes, so a slow server quietly throttles the
// offered load and the measured latencies look better than they are — the
// coordinated-omission trap. adcload instead schedules request i at
// start + i/rate regardless of how the server is doing, and measures each
// latency from that *scheduled* arrival time, so queueing delay caused by
// the server falling behind is charged to the server (wrk2-style
// correction). The achieved-vs-offered gap in the report is the direct
// saturation signal.
//
// The farm runs in-process on loopback ports: the numbers include the full
// real-network path (HTTP parse, connection pool, ADC forwarding between
// proxies, origin fetches) without cross-machine noise.
//
// Typical runs:
//
//	adcload -proxies 8 -rate 5000 -duration 10s               # paper-shaped stream
//	adcload -profile zipf -alpha 0.8 -population 4096 ...     # plain Zipf
//	adcload -rate 50000 -max-active 256 -max-queue 512        # force shedding
//	adcload -trace-dump run.spans.json -lint-metrics          # telemetry smoke
//	adcload -json > run.json                                  # machine-readable
//	adcload -bench | benchjson > BENCH_load.json              # bench-line form
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/httpproxy"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/promtext"
	"github.com/adc-sim/adc/internal/proxy"
	"github.com/adc-sim/adc/internal/stats"
	"github.com/adc-sim/adc/internal/workload"
)

// latency histogram shape: 1 ms buckets of 100 µs resolution would be too
// coarse at the bottom and too short at the top, so buckets are 50 µs wide
// with 4000 regular buckets (0–200 ms) plus overflow.
const (
	histWidthUs = 50
	histBuckets = 4000
)

// config collects every knob of one load run.
type config struct {
	Proxies  int
	Single   int
	Multiple int
	Caching  int
	MaxHops  int
	Seed     int64

	Rate     float64       // offered arrival rate, req/s
	Duration time.Duration // measurement window
	Conns    int           // concurrent worker connections

	Profile    string // paper | zipf | uniform
	Population int
	Alpha      float64
	Warm       int // requests issued closed-loop before measuring

	MaxActive  int
	MaxQueue   int
	NoCoalesce bool

	Replicate    bool // hot-object replication controller on
	RepThreshold int  // window hit count that triggers pushes
	RepMax       int  // max replicas beyond the primary holder
	RepWindow    int  // controller decay window (requests per proxy)

	Chaos         string        // fault schedule spec ("" = none); implies Health
	Health        bool          // peer health probing + failover routing on
	ProbeInterval time.Duration // health probe spacing (0 = default)
	FailThreshold int           // consecutive failures marking a peer down (0 = default)
	Retries       int           // entry-chain failover retries (0 = default, <0 = none)
	Hedge         time.Duration // hedged origin fetch delay (0 = off)
	AvailWindow   time.Duration // availability window (chaos/health runs)

	RetryAfterMax time.Duration // cap on honored Retry-After backoff (0 = don't back off)

	TraceSample int    // span tracing: trace 1-in-N entry requests (0 = off)
	TraceRing   int    // per-proxy span ring capacity (0 = default)
	TraceDump   string // write every proxy's span dump as JSON here after the run
	LintMetrics bool   // scrape and lint every proxy's /metrics after the run

	JSONOut  bool
	BenchOut bool
	Quiet    bool
}

// proxyReport is the per-proxy slice of the report.
type proxyReport struct {
	ID           int    `json:"id"`
	Requests     uint64 `json:"requests"`
	LocalHits    uint64 `json:"local_hits"`
	Shed         uint64 `json:"shed"`
	Coalesced    uint64 `json:"coalesced_misses"`
	ReplicaHits  uint64 `json:"replica_hits,omitempty"`
	ReplicaPush  uint64 `json:"replica_pushes,omitempty"`
	ReplicaDrops uint64 `json:"replica_drops,omitempty"`
}

// report is the outcome of one run, also the -json schema.
type report struct {
	OfferedRate  float64       `json:"offered_rate"`
	AchievedRate float64       `json:"achieved_rate"`
	Duration     time.Duration `json:"-"`
	DurationSec  float64       `json:"duration_sec"`

	Scheduled int    `json:"scheduled"`
	Completed uint64 `json:"completed"`
	Hits      uint64 `json:"hits"` // served by some proxy cache
	Shed      uint64 `json:"shed"` // 429 from admission control
	Errors    uint64 `json:"errors"`
	// ShedRetries counts honored Retry-After backoffs: 429 responses the
	// worker slept through and retried instead of recording a shed.
	ShedRetries uint64 `json:"shed_retries,omitempty"`

	// Latencies are in microseconds, measured from the scheduled arrival
	// time (coordinated-omission corrected), shed replies included —
	// a fast 429 is still a completed exchange the client observed.
	P50us  float64 `json:"p50_us"`
	P90us  float64 `json:"p90_us"`
	P99us  float64 `json:"p99_us"`
	P999us float64 `json:"p999_us"`

	Farm    metrics.ProxyStats `json:"farm_totals"`
	Proxies []proxyReport      `json:"proxies"`

	// Chaos is present when -chaos drove a fault schedule: the applied
	// events, per-kill detect/recover times, and windowed availability.
	Chaos *chaosReport `json:"chaos,omitempty"`

	// Network is present when the farm has an attached TCP transport
	// network (agent-runtime integrations); the standard in-process farm
	// speaks plain HTTP and reports nothing here.
	Network *httpproxy.NetworkVars `json:"network,omitempty"`

	// Trace is present when -trace-sample (or -trace-dump) enabled span
	// tracing: the cross-proxy tree census over the run's sampled requests.
	Trace *traceReport `json:"trace,omitempty"`

	// MetricsLinted is the number of proxies whose /metrics exposition the
	// -lint-metrics pass scraped and verified (0 when the pass was off).
	MetricsLinted int `json:"metrics_linted,omitempty"`

	hist *stats.Histogram
}

// traceReport summarises the run's distributed traces: every proxy's span
// ring scraped over HTTP (the same surface adctrace farm uses), merged and
// reconstructed into per-request trees.
type traceReport struct {
	Proxies int `json:"proxies"`
	// Skipped counts proxies whose scrape failed (e.g. killed by -chaos and
	// never restarted); their spans are missing, which can orphan trees.
	Skipped          int     `json:"skipped,omitempty"`
	Spans            int     `json:"spans"`
	Dropped          uint64  `json:"dropped"`
	Trees            int     `json:"trees"`
	Complete         int     `json:"complete"`
	Truncated        int     `json:"truncated"`
	Orphaned         int     `json:"orphaned"`
	CompleteFraction float64 `json:"complete_fraction"`
}

// HitRate is hits over completed non-shed requests.
func (r *report) HitRate() float64 {
	served := r.Completed - r.Shed
	if served == 0 {
		return 0
	}
	return float64(r.Hits) / float64(served)
}

// objectStream pre-generates the request stream for the measurement window
// plus warm-up, so the hot loop never touches a generator lock.
func objectStream(cfg config, n int) ([]ids.ObjectID, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch cfg.Profile {
	case "paper":
		tr, err := workload.Materialize(workload.Config{
			TotalRequests:  n,
			PopulationSize: cfg.Population,
			Alpha:          cfg.Alpha,
			Seed:           cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return tr.Objects(), nil
	case "zipf":
		z, err := workload.NewZipf(cfg.Population, cfg.Alpha)
		if err != nil {
			return nil, err
		}
		objs := make([]ids.ObjectID, n)
		for i := range objs {
			objs[i] = ids.ObjectID(z.Rank(rng) + 1)
		}
		return objs, nil
	case "uniform":
		objs := make([]ids.ObjectID, n)
		for i := range objs {
			objs[i] = ids.ObjectID(rng.Intn(cfg.Population) + 1)
		}
		return objs, nil
	default:
		return nil, fmt.Errorf("adcload: unknown -profile %q (want paper, zipf or uniform)", cfg.Profile)
	}
}

// run executes one complete load run: build farm, warm, drive open-loop,
// aggregate. Split from main so the smoke test can call it in-process and
// check for goroutine leaks afterwards.
func run(cfg config) (*report, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("adcload: -rate must be positive, got %v", cfg.Rate)
	}
	if cfg.Conns <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("adcload: -conns and -duration must be positive")
	}
	total := int(cfg.Rate * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	objs, err := objectStream(cfg, total+cfg.Warm)
	if err != nil {
		return nil, err
	}

	// A chaos schedule implies the fault-tolerance layer: testing kill and
	// restart without health probing would only measure hard errors.
	var plan *httpproxy.ChaosPlan
	if cfg.Chaos != "" {
		plan, err = httpproxy.ParseChaosSpec(cfg.Chaos)
		if err != nil {
			return nil, err
		}
		if err := plan.Validate(cfg.Proxies); err != nil {
			return nil, err
		}
		cfg.Health = true
	}
	var ft httpproxy.FaultTolerance
	if cfg.Health {
		ft = httpproxy.FaultTolerance{
			Health: httpproxy.HealthConfig{
				Enabled:          true,
				ProbeInterval:    cfg.ProbeInterval,
				FailureThreshold: cfg.FailThreshold,
			},
			MaxRetries: cfg.Retries,
			HedgeDelay: cfg.Hedge,
		}
	}

	// Writing a span dump only makes sense with tracing on; asking for the
	// dump without choosing a sample rate means "trace everything".
	if cfg.TraceDump != "" && cfg.TraceSample <= 0 {
		cfg.TraceSample = 1
	}
	var tracing httpproxy.Tracing
	if cfg.TraceSample > 0 {
		tracing = httpproxy.Tracing{
			Enabled:     true,
			SampleEvery: cfg.TraceSample,
			RingSize:    cfg.TraceRing,
		}
	}

	f, err := httpproxy.NewFarm(httpproxy.FarmConfig{
		Proxies: cfg.Proxies,
		Tables: core.Config{
			SingleSize:   cfg.Single,
			MultipleSize: cfg.Multiple,
			CachingSize:  cfg.Caching,
		},
		MaxHops:    cfg.MaxHops,
		Seed:       cfg.Seed,
		MaxActive:  cfg.MaxActive,
		MaxQueue:   cfg.MaxQueue,
		NoCoalesce: cfg.NoCoalesce,
		Replication: proxy.Replication{
			Enabled:      cfg.Replicate,
			HotThreshold: cfg.RepThreshold,
			MaxReplicas:  cfg.RepMax,
			Window:       int64(cfg.RepWindow),
		},
		FaultTolerance: ft,
		Tracing:        tracing,
	})
	if err != nil {
		return nil, err
	}
	defer f.Close() //nolint:errcheck // best-effort teardown

	client := httpproxy.NewClient()
	urlFor := func(i int64) string { return f.Proxies[int(i)%cfg.Proxies].URL() }

	// Warm closed-loop: converge the mapping tables before the clock
	// matters, like the paper's fill phase before the request phases.
	// Sheds during warm-up are ignored — a tight gate (-max-active) must
	// not abort the run before measurement starts.
	if cfg.Warm > 0 {
		var widx atomic.Int64
		var werr atomic.Value
		var wwg sync.WaitGroup
		wwg.Add(cfg.Conns)
		for w := 0; w < cfg.Conns; w++ {
			go func(w int) {
				defer wwg.Done()
				prefix := "w" + strconv.Itoa(w) + "-"
				for {
					i := widx.Add(1) - 1
					if i >= int64(cfg.Warm) || werr.Load() != nil {
						return
					}
					if _, _, _, err := issue(client, urlFor(i), objs[i], prefix+strconv.FormatInt(i, 10), cfg.RetryAfterMax); err != nil {
						werr.Store(err)
						return
					}
				}
			}(w)
		}
		wwg.Wait()
		if err := werr.Load(); err != nil {
			return nil, fmt.Errorf("adcload: warm-up: %w", err.(error))
		}
		objs = objs[cfg.Warm:]
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)

	var (
		next        atomic.Int64 // next request index to claim
		completed   atomic.Uint64
		hits        atomic.Uint64
		shed        atomic.Uint64
		errs        atomic.Uint64
		shedRetries atomic.Uint64
		wg          sync.WaitGroup
	)
	// Availability accounting only exists for chaos/health runs — a plain
	// throughput run should not pay even the window arithmetic.
	var avail *availCounters
	if cfg.Health {
		window := cfg.AvailWindow
		if window <= 0 {
			window = 500 * time.Millisecond
		}
		avail = newAvail(window, cfg.Duration)
	}
	hists := make([]*stats.Histogram, cfg.Conns)
	start := time.Now()

	// The fault schedule plays against the same clock the workers use, in
	// its own goroutine; stopping early (all requests drained) cancels the
	// remaining events.
	var (
		applied   []httpproxy.AppliedChaos
		chaosStop chan struct{}
		chaosDone chan struct{}
	)
	if plan != nil {
		chaosStop = make(chan struct{})
		chaosDone = make(chan struct{})
		go func() {
			defer close(chaosDone)
			applied = f.PlayChaos(plan, start, chaosStop)
		}()
	}

	wg.Add(cfg.Conns)
	for w := 0; w < cfg.Conns; w++ {
		go func(w int) {
			defer wg.Done()
			h := stats.NewHistogram(histBuckets, histWidthUs)
			hists[w] = h
			prefix := "l" + strconv.Itoa(w) + "-"
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				// Open-loop: request i belongs at start + i·interval.
				// Sleep only when ahead of schedule; when behind, fire
				// immediately and let the latency measurement (taken
				// from sched, not from send) absorb the backlog.
				sched := start.Add(time.Duration(i) * interval)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				hit, wasShed, retried, err := issue(client, urlFor(i), objs[i], prefix+strconv.FormatInt(i, 10), cfg.RetryAfterMax)
				lat := time.Since(sched)
				shedRetries.Add(uint64(retried))
				avail.record(time.Since(start), err == nil)
				if err != nil {
					errs.Add(1)
					continue
				}
				completed.Add(1)
				h.Add(int(lat.Microseconds()))
				switch {
				case wasShed:
					shed.Add(1)
				case hit:
					hits.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if plan != nil {
		close(chaosStop)
		<-chaosDone
	}

	merged := stats.NewHistogram(histBuckets, histWidthUs)
	for _, h := range hists {
		merged.Merge(h)
	}
	rep := &report{
		OfferedRate:  cfg.Rate,
		AchievedRate: float64(completed.Load()) / elapsed.Seconds(),
		Duration:     elapsed,
		DurationSec:  elapsed.Seconds(),
		Scheduled:    total,
		Completed:    completed.Load(),
		Hits:         hits.Load(),
		Shed:         shed.Load(),
		Errors:       errs.Load(),
		ShedRetries:  shedRetries.Load(),
		P50us:        merged.Quantile(0.50),
		P90us:        merged.Quantile(0.90),
		P99us:        merged.Quantile(0.99),
		P999us:       merged.Quantile(0.999),
		Farm:         f.TotalStats(),
		hist:         merged,
	}
	for _, p := range f.Proxies {
		s := p.Stats()
		rep.Proxies = append(rep.Proxies, proxyReport{
			ID:           int(p.ID()),
			Requests:     s.Requests,
			LocalHits:    s.LocalHits,
			Shed:         s.Shed,
			Coalesced:    s.CoalescedMisses,
			ReplicaHits:  s.ReplicaHits,
			ReplicaPush:  s.ReplicaPushes,
			ReplicaDrops: s.ReplicaDrops,
		})
	}
	if plan != nil {
		rep.Chaos = buildChaosReport(cfg.Chaos, f, applied, start, avail)
	}
	rep.Network = f.NetworkVars()

	// Telemetry epilogue, while the farm is still up: scrape the span rings
	// and lint every proxy's /metrics over the same HTTP surface an external
	// scraper would use.
	if cfg.TraceSample > 0 {
		// A handler's server span lands a hair after the client reads the
		// body; let the last handlers (and hedge losers) finish writing.
		time.Sleep(100 * time.Millisecond)
		rep.Trace, err = scrapeTrace(client, f, cfg.TraceDump)
		if err != nil {
			return nil, err
		}
	}
	if cfg.LintMetrics {
		for _, p := range f.Proxies {
			if err := lintProxyMetrics(client, p.URL()); err != nil {
				return nil, fmt.Errorf("adcload: %v: %w", p.ID(), err)
			}
		}
		rep.MetricsLinted = len(f.Proxies)
	}
	return rep, nil
}

// scrapeTrace collects every proxy's span dump over HTTP, optionally writes
// the raw dumps (the adctrace farm input format), and builds the tree
// census. Unreachable proxies are skipped, not fatal: after a -chaos run a
// victim may legitimately be down, and the census accounts for the hole.
func scrapeTrace(client *http.Client, f *httpproxy.Farm, dumpPath string) (*traceReport, error) {
	tr := &traceReport{Proxies: len(f.Proxies)}
	dumps := make([]obs.SpanDump, 0, len(f.Proxies))
	for _, p := range f.Proxies {
		d, err := httpproxy.ScrapeTraceDump(client, p.URL())
		if err != nil {
			tr.Skipped++
			continue
		}
		dumps = append(dumps, d)
		tr.Dropped += d.Dropped
	}
	if dumpPath != "" {
		b, err := json.MarshalIndent(dumps, "", " ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(dumpPath, append(b, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("adcload: write trace dump: %w", err)
		}
	}
	c := obs.CensusSpanTrees(obs.BuildSpanTrees(obs.MergeDumps(dumps)))
	tr.Spans = c.Spans
	tr.Trees = c.Trees
	tr.Complete = c.Complete
	tr.Truncated = c.Truncated
	tr.Orphaned = c.Orphaned
	tr.CompleteFraction = c.CompleteFraction()
	return tr, nil
}

// lintProxyMetrics scrapes one proxy's /metrics and runs the strict
// exposition lint — the in-run half of the telemetry-smoke CI job.
func lintProxyMetrics(client *http.Client, base string) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close() //nolint:errcheck // read side
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	return promtext.Lint(resp.Body)
}

// shedRetryMax bounds how many 429s one request will sleep through before
// recording the shed.
const shedRetryMax = 2

// issue performs one GET and classifies the outcome. A 429 is a shed, not
// an error: admission control answering fast is the behaviour under test.
// When retryAfterMax is positive the worker honors the 429's Retry-After —
// it backs off (capped at retryAfterMax) and retries the same request up
// to shedRetryMax times, which is what the header asks of a well-behaved
// client; retried counts those backoffs.
func issue(client *http.Client, base string, obj ids.ObjectID, reqID string, retryAfterMax time.Duration) (hit, wasShed bool, retried int, err error) {
	for {
		req, err := http.NewRequest(http.MethodGet, httpproxy.ObjectURL(base, obj), nil)
		if err != nil {
			return false, false, retried, err
		}
		req.Header.Set(httpproxy.HeaderRequestID, reqID)
		resp, err := client.Do(req)
		if err != nil {
			return false, false, retried, err
		}
		// Drain so the pooled connection is reusable.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close() //nolint:errcheck // read side
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			if retryAfterMax <= 0 || retried >= shedRetryMax {
				return false, true, retried, nil
			}
			retried++
			time.Sleep(retryAfterDelay(resp.Header, retryAfterMax))
			continue
		case resp.StatusCode != http.StatusOK:
			return false, false, retried, fmt.Errorf("adcload: %s: status %d", reqID, resp.StatusCode)
		}
		return resp.Header.Get(httpproxy.HeaderOrigin) != "1", false, retried, nil
	}
}

// retryAfterDelay reads a 429's Retry-After seconds, capped at max (which
// also covers a missing or malformed header).
func retryAfterDelay(h http.Header, max time.Duration) time.Duration {
	if s := h.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			if d := time.Duration(secs) * time.Second; d < max {
				return d
			}
		}
	}
	return max
}

// printText renders the human-readable report.
func printText(w io.Writer, rep *report) {
	fmt.Fprintf(w, "offered   %10.0f req/s\n", rep.OfferedRate)
	fmt.Fprintf(w, "achieved  %10.0f req/s  (%d/%d completed in %v)\n",
		rep.AchievedRate, rep.Completed, rep.Scheduled, rep.Duration.Round(time.Millisecond))
	fmt.Fprintf(w, "hits      %10d  (%.1f%% of served)\n", rep.Hits, 100*rep.HitRate())
	fmt.Fprintf(w, "shed      %10d\nerrors    %10d\n", rep.Shed, rep.Errors)
	if rep.Farm.CoalescedMisses > 0 {
		fmt.Fprintf(w, "coalesced %10d  (misses that shared an in-flight fetch)\n", rep.Farm.CoalescedMisses)
	}
	if rep.ShedRetries > 0 {
		fmt.Fprintf(w, "backoffs  %10d  (honored Retry-After)\n", rep.ShedRetries)
	}
	if ft := rep.Farm; ft.RetriedFetches+ft.FailoverOrigin+ft.BreakerDenied+ft.HedgedFetches > 0 {
		fmt.Fprintf(w, "faults    retried %d  failover-origin %d  breaker-denied %d  hedged %d (won %d)  stale-invalidated %d\n",
			ft.RetriedFetches, ft.FailoverOrigin, ft.BreakerDenied, ft.HedgedFetches, ft.HedgeWins, ft.StaleInvalidated)
	}
	fmt.Fprintf(w, "latency   p50 %v  p90 %v  p99 %v  p99.9 %v\n",
		us(rep.P50us), us(rep.P90us), us(rep.P99us), us(rep.P999us))
	if t := rep.Trace; t != nil {
		fmt.Fprintf(w, "trace     %10d trees  (%d complete, %d truncated, %d orphaned; %.1f%% reconstructed)",
			t.Trees, t.Complete, t.Truncated, t.Orphaned, 100*t.CompleteFraction)
		if t.Skipped > 0 {
			fmt.Fprintf(w, "  [%d/%d proxies unreachable]", t.Skipped, t.Proxies)
		}
		fmt.Fprintln(w)
	}
	if rep.MetricsLinted > 0 {
		fmt.Fprintf(w, "metrics   %10d proxies scraped, exposition lint clean\n", rep.MetricsLinted)
	}
	replicated := rep.Farm.ReplicaPushes > 0 || rep.Farm.ReplicaHits > 0
	if replicated {
		fmt.Fprintln(w, "per proxy (requests / local hits / shed / coalesced / rep hits / pushes / drops):")
	} else {
		fmt.Fprintln(w, "per proxy (requests / local hits / shed / coalesced):")
	}
	for _, p := range rep.Proxies {
		if replicated {
			fmt.Fprintf(w, "  proxy %2d  %8d / %8d / %6d / %6d / %6d / %6d / %6d\n",
				p.ID, p.Requests, p.LocalHits, p.Shed, p.Coalesced, p.ReplicaHits, p.ReplicaPush, p.ReplicaDrops)
			continue
		}
		fmt.Fprintf(w, "  proxy %2d  %8d / %8d / %6d / %6d\n",
			p.ID, p.Requests, p.LocalHits, p.Shed, p.Coalesced)
	}
	if rep.Chaos != nil {
		printChaos(w, rep.Chaos)
	}
}

func us(v float64) time.Duration {
	return time.Duration(v) * time.Microsecond
}

// printBench emits the run as one `go test -bench`-shaped line so the
// existing benchjson tooling can record and compare load runs.
func printBench(w io.Writer, rep *report) {
	nsPerOp := float64(rep.Duration.Nanoseconds())
	if rep.Completed > 0 {
		nsPerOp /= float64(rep.Completed)
	}
	fmt.Fprintf(w, "BenchmarkAdcloadOpenLoop %d %.1f ns/op %.1f req/s %.1f p50-us %.1f p99-us %.4f hit-rate\n",
		rep.Completed, nsPerOp, rep.AchievedRate, rep.P50us, rep.P99us, rep.HitRate())
}

func main() {
	var cfg config
	flag.IntVar(&cfg.Proxies, "proxies", 8, "number of proxies in the farm")
	flag.IntVar(&cfg.Single, "single", 4096, "single-location table size per proxy")
	flag.IntVar(&cfg.Multiple, "multiple", 4096, "multiple-location table size per proxy")
	flag.IntVar(&cfg.Caching, "caching", 2048, "caching table size per proxy")
	flag.IntVar(&cfg.MaxHops, "max-hops", 0, "forwarding hop bound (0 = unbounded)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "workload and peer-selection seed")
	flag.Float64Var(&cfg.Rate, "rate", 2000, "offered arrival rate, req/s")
	flag.DurationVar(&cfg.Duration, "duration", 5*time.Second, "measurement window")
	flag.IntVar(&cfg.Conns, "conns", 64, "concurrent client connections")
	flag.StringVar(&cfg.Profile, "profile", "paper", "request profile: paper, zipf or uniform")
	flag.IntVar(&cfg.Population, "population", 2048, "hot object population")
	flag.Float64Var(&cfg.Alpha, "alpha", 0.8, "Zipf exponent (zipf and paper profiles)")
	flag.IntVar(&cfg.Warm, "warm", 4096, "closed-loop warm-up requests before measuring")
	flag.IntVar(&cfg.MaxActive, "max-active", 0, "per-proxy active-request bound (0 = default, <0 = unlimited)")
	flag.IntVar(&cfg.MaxQueue, "max-queue", 0, "per-proxy admission queue bound (0 = default, <0 = none)")
	flag.BoolVar(&cfg.NoCoalesce, "nocoalesce", false, "disable miss coalescing (ablation)")
	flag.BoolVar(&cfg.Replicate, "replicate", false, "enable hot-object replication with load-aware routing")
	flag.IntVar(&cfg.RepThreshold, "rep-threshold", 0, "replication: window hits before pushing (0 = default)")
	flag.IntVar(&cfg.RepMax, "rep-max", 0, "replication: max replicas beyond the primary (0 = default)")
	flag.IntVar(&cfg.RepWindow, "rep-window", 0, "replication: decay window in requests (0 = default)")
	flag.StringVar(&cfg.Chaos, "chaos", "", `fault schedule, e.g. "kill=p3@5s,restart=p3@15s,partition=p1:p2@8s+4s" (implies -health)`)
	flag.BoolVar(&cfg.Health, "health", false, "enable peer health probing, failover routing and circuit breakers")
	flag.DurationVar(&cfg.ProbeInterval, "probe-interval", 0, "health probe interval (0 = default 250ms; with -health)")
	flag.IntVar(&cfg.FailThreshold, "fail-threshold", 0, "consecutive failures marking a peer down (0 = default 3; with -health)")
	flag.IntVar(&cfg.Retries, "retries", 0, "entry-chain failover retries (0 = default 2, <0 = none; with -health)")
	flag.DurationVar(&cfg.Hedge, "hedge", 0, "hedged origin fetch after this delay (0 = off; with -health)")
	flag.DurationVar(&cfg.AvailWindow, "avail-window", 0, "availability window for chaos/health runs (0 = default 500ms)")
	flag.DurationVar(&cfg.RetryAfterMax, "retry-after-max", 0, "honor 429 Retry-After up to this backoff (0 = record the shed immediately)")
	flag.IntVar(&cfg.TraceSample, "trace-sample", 0, "trace 1-in-N entry requests with cross-proxy spans (0 = off, 1 = all)")
	flag.IntVar(&cfg.TraceRing, "trace-ring", 0, "per-proxy span ring capacity (0 = default; with -trace-sample)")
	flag.StringVar(&cfg.TraceDump, "trace-dump", "", "write scraped span dumps as JSON to this file for adctrace farm (implies -trace-sample 1)")
	flag.BoolVar(&cfg.LintMetrics, "lint-metrics", false, "scrape and lint every proxy's /metrics after the run")
	flag.BoolVar(&cfg.JSONOut, "json", false, "emit the report as JSON on stdout")
	flag.BoolVar(&cfg.BenchOut, "bench", false, "emit a go-bench-style line for benchjson")
	flag.BoolVar(&cfg.Quiet, "quiet", false, "suppress the latency histogram")
	flag.Parse()

	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	switch {
	case cfg.JSONOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case cfg.BenchOut:
		printBench(os.Stdout, rep)
	default:
		printText(os.Stdout, rep)
		if !cfg.Quiet {
			fmt.Println("\nlatency histogram (µs buckets):")
			fmt.Print(rep.hist.String())
		}
	}
	// Under a chaos schedule errors are the experiment, not a failure —
	// the availability report carries the verdict instead.
	if rep.Errors > 0 && cfg.Chaos == "" {
		os.Exit(1)
	}
}
