package experiments

import (
	"context"
	"fmt"

	"github.com/adc-sim/adc/internal/cluster"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/trace"
)

// PreLearnedResult is the §V.2.1 future-work experiment: "Further tests,
// with a repetition of the request pattern and a system with pre-learned
// information shall be shown in the future work." The whole trace is
// replayed twice through one uninterrupted cluster; the second pass runs
// against fully learned mapping tables.
type PreLearnedResult struct {
	// FirstPass and SecondPass are the hit rates of each replay of the
	// identical request stream.
	FirstPass  float64
	SecondPass float64
	// FirstHops and SecondHops are the matching hop averages.
	FirstHops  float64
	SecondHops float64
	// Series is the windowed time series across both passes; the
	// boundary sits at PassBoundary requests.
	Series       []metrics.Point
	PassBoundary int
}

// PreLearned runs the profile's workload twice back-to-back through one
// ADC cluster. The learning lag of Fig. 11's fill phase must be absent
// from the second pass.
func PreLearned(p Profile) (*PreLearnedResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tr, err := p.trace()
	if err != nil {
		return nil, err
	}
	objs := tr.Objects()
	doubled := make([]ids.ObjectID, 0, 2*len(objs))
	doubled = append(doubled, objs...)
	doubled = append(doubled, objs...)

	boundary := len(objs)
	cfg := p.ClusterConfig(cluster.ADC, p.Tables(), uint64(boundary))
	res, err := cluster.Run(cfg, trace.NewSliceSource(doubled))
	if err != nil {
		return nil, fmt.Errorf("experiments: pre-learned run: %w", err)
	}

	out := &PreLearnedResult{Series: res.Series, PassBoundary: boundary}
	total := float64(res.Summary.Requests)
	for _, pt := range res.Series {
		if pt.Requests == uint64(boundary) {
			first := float64(pt.Requests)
			out.FirstPass = pt.CumHitRate
			out.FirstHops = pt.CumHops
			out.SecondPass = (res.Summary.HitRate*total - pt.CumHitRate*first) / (total - first)
			out.SecondHops = (res.Summary.Hops*total - pt.CumHops*first) / (total - first)
			return out, nil
		}
	}
	return nil, fmt.Errorf("experiments: pass boundary sample missing")
}

// ProxyCountPoint is one run of the array-size study (§V.1.2 exposes the
// parameter; no figure sweeps it).
type ProxyCountPoint struct {
	// Proxies is the array size.
	Proxies int
	// HitRate is the post-fill hit rate.
	HitRate float64
	// Hops is the post-fill mean hops per request.
	Hops float64
}

// ProxyCountSweep varies the number of proxy agents while the total cache
// capacity of the system stays constant (per-proxy tables shrink as the
// array grows), isolating the cost of distribution: more proxies mean
// longer random searches.
func ProxyCountSweep(p Profile, counts []int) ([]ProxyCountPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(counts) == 0 {
		counts = []int{2, 3, 5, 8}
	}
	ref := p.Tables()
	refTotal := struct{ s, m, c int }{
		s: ref.SingleSize * p.Proxies,
		m: ref.MultipleSize * p.Proxies,
		c: ref.CachingSize * p.Proxies,
	}
	for _, n := range counts {
		if n <= 0 {
			return nil, fmt.Errorf("experiments: invalid proxy count %d", n)
		}
	}
	tr, err := p.trace()
	if err != nil {
		return nil, err
	}
	fillEnd, _ := tr.Boundaries()
	out := make([]ProxyCountPoint, len(counts))
	err = p.forEach("proxycount", len(counts), func(_ context.Context, i int) (uint64, error) {
		n := counts[i]
		tables := ref
		tables.SingleSize = maxInt(1, refTotal.s/n)
		tables.MultipleSize = maxInt(1, refTotal.m/n)
		tables.CachingSize = maxInt(1, refTotal.c/n)
		cfg := p.ClusterConfig(cluster.ADC, tables, uint64(fillEnd))
		cfg.NumProxies = n
		res, err := cluster.Run(cfg, tr.Cursor())
		if err != nil {
			return 0, fmt.Errorf("experiments: %d proxies: %w", n, err)
		}
		hit, hops := postFillRates(res, fillEnd)
		out[i] = ProxyCountPoint{Proxies: n, HitRate: hit, Hops: hops}
		return res.Delivered, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
