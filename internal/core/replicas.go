package core

import "github.com/adc-sim/adc/internal/ids"

// Hot-object replication support: location sets on mapping entries, forced
// cache adoption for pushed replicas, and the demotion that drops a cold
// replica back toward stock ADC's single-location convergence.
//
// Everything here is invoked only when the replication controller
// (internal/proxy) is enabled; with it off no entry ever grows a replica
// set and every code path below is dead, keeping the stock protocol
// byte-identical.

// ContainsNode reports whether the sorted set holds n.
func ContainsNode(set []ids.NodeID, n ids.NodeID) bool {
	for _, v := range set {
		if v == n {
			return true
		}
		if v > n {
			return false
		}
	}
	return false
}

// InsertNode adds n to the sorted set if absent, returning the (possibly
// extended) set. The sets are tiny (bounded by the controller's MaxReplicas),
// so linear insertion is both simplest and fastest.
func InsertNode(set []ids.NodeID, n ids.NodeID) []ids.NodeID {
	i := 0
	for i < len(set) && set[i] < n {
		i++
	}
	if i < len(set) && set[i] == n {
		return set
	}
	set = append(set, 0)
	copy(set[i+1:], set[i:])
	set[i] = n
	return set
}

// ForwardSet resolves obj's full location set: the primary location plus any
// replica holders. ok is false when no table has an entry (fall back to
// random peer selection, as with ForwardLocation). The returned slice is the
// entry's own set; callers must not mutate it.
func (t *Tables) ForwardSet(obj ids.ObjectID) (loc ids.NodeID, replicas []ids.NodeID, ok bool) {
	e, kind := t.locate(obj)
	if kind == KindNone {
		return ids.None, nil, false
	}
	return e.Location, e.Replicas, true
}

// AvgOf returns obj's current moving-average inter-request gap, or false
// when the object has no entry. The replication controller advertises it as
// Reply.AvgHint so adopting proxies seed their forced entries with the
// holder's measured popularity.
func (t *Tables) AvgOf(obj ids.ObjectID) (int64, bool) {
	e, kind := t.locate(obj)
	if kind == KindNone {
		return 0, false
	}
	return e.Avg, true
}

// SetReplicas replaces obj's replica set with the given nodes, dropping
// exclude (the owning proxy itself: a proxy never lists itself as a remote
// replica) and the entry's current Location, and truncating to max entries.
// The input must be sorted ascending; advertised sets always are. It reports
// whether an entry existed to update.
func (t *Tables) SetReplicas(obj ids.ObjectID, nodes []ids.NodeID, exclude ids.NodeID, max int) bool {
	e, kind := t.locate(obj)
	if kind == KindNone {
		return false
	}
	keep := e.Replicas[:0]
	for _, n := range nodes {
		if n == exclude || n == e.Location || !n.IsProxy() {
			continue
		}
		if len(keep) > 0 && keep[len(keep)-1] == n {
			continue
		}
		keep = append(keep, n)
		if len(keep) == max {
			break
		}
	}
	if len(keep) == 0 {
		keep = nil
	}
	// In-place filtering is safe even when nodes aliases e.Replicas: each
	// write lands at an index ≤ the one being read.
	e.Replicas = keep
	return true
}

// AddReplica records node as an additional holder of obj, bounded by max.
// It reports whether the set changed.
func (t *Tables) AddReplica(obj ids.ObjectID, node ids.NodeID, max int) bool {
	e, kind := t.locate(obj)
	if kind == KindNone || node == e.Location || !node.IsProxy() {
		return false
	}
	if len(e.Replicas) >= max || ContainsNode(e.Replicas, node) {
		return false
	}
	e.Replicas = InsertNode(e.Replicas, node)
	return true
}

// ClearReplicas forgets obj's replica set (the anchor holder's half of
// reconvergence: stop advertising, let stale remote beliefs wash out).
func (t *Tables) ClearReplicas(obj ids.ObjectID) {
	if e, kind := t.locate(obj); kind != KindNone {
		e.Replicas = nil
	}
}

// ForceCache promotes obj into the caching table regardless of the admission
// rule — the adoption half of a replica push, where the object's payload is
// passing by on a backwarding reply and the controller has decided this proxy
// should hold a copy. Unknown objects get a fresh entry. adopted is false
// when the cache bounced the entry (every resident is hotter); the entry then
// returns to where it came from and the push is abandoned.
//
// avgHint, when positive, is the pushing holder's measured moving average
// for the object (Reply.AvgHint). A fresh or barely-seen local entry adopts
// it; an established local history only improves toward it. Without the
// hint a pushed replica starts cold (AVG 0 counts as unseeded, and the
// first local CalcAverage would seed it with a huge gap), loses every
// admission comparison that follows, and is evicted before it can serve a
// hit — the push mechanism then thrashes instead of spreading load.
//
// The caching table's own eviction still applies: forcing a replica in may
// demote the cache's worst entry onto the single-table top (Outcome.
// CacheEvicted / Dropped, exactly as the LRU ablation handles it).
func (t *Tables) ForceCache(obj ids.ObjectID, loc ids.NodeID, now, avgHint int64) (out Outcome, adopted bool) {
	e, kind := t.locate(obj)
	applyHint := func() {
		if avgHint > 0 && (e.Hits <= 2 || e.Avg == 0 || avgHint < e.Avg) {
			e.Avg = avgHint
		}
	}
	switch kind {
	case KindCaching:
		// Already cached: refresh in place (Fig. 8 Part 1).
		t.caching.RemoveEntry(e)
		e.CalcAverage(now)
		e.Location = loc
		applyHint()
		t.caching.Insert(e)
		return Outcome{From: KindCaching, To: KindCaching}, true
	case KindMultiple:
		t.multiple.RemoveEntry(e)
		e.CalcAverage(now)
		e.Location = loc
		applyHint()
	case KindSingle:
		t.single.RemoveEntry(e)
		e.CalcAverage(now)
		e.Location = loc
		applyHint()
	default:
		e = t.alloc(obj, loc, now)
		if avgHint > 0 {
			// Seed as if the holder's history happened here: two
			// sightings avgHint apart.
			e.Avg = avgHint
			e.Hits = 2
		}
	}
	out = Outcome{From: kind, To: KindCaching}
	t.dirSet(obj, KindCaching, e)
	evicted := t.caching.Insert(e)
	if evicted == nil {
		return out, true
	}
	if evicted == e {
		// The cache is full of strictly hotter entries and bounced the
		// newcomer itself; undo the adoption. The source table has room:
		// the entry just left it (or, for a fresh entry, the single-table
		// top absorbs it like any first sighting).
		out.To = kind
		switch kind {
		case KindMultiple:
			t.multiple.Insert(e)
			t.dirSet(obj, KindMultiple, e)
		case KindSingle:
			t.single.InsertTop(e)
			t.dirSet(obj, KindSingle, e)
		default:
			out.To = KindSingle
			out.Dropped = t.single.InsertTop(e)
			t.dirSet(obj, KindSingle, e)
			if out.Dropped != nil {
				t.dirDel(out.Dropped.Object)
			}
		}
		return out, false
	}
	// A resident was demoted to make room; it keeps its forwarding
	// knowledge on the single-table top, as in the LRU ablation.
	out.CacheEvicted = evicted
	out.Dropped = t.single.InsertTop(evicted)
	t.dirSet(evicted.Object, KindSingle, evicted)
	if out.Dropped != nil {
		t.dirDel(out.Dropped.Object)
	}
	return out, true
}

// DropCached demotes obj out of the caching table onto the single-table top —
// a replica holder shedding a cold copy. The entry's location is rewritten to
// fallback (the anchor holder), so this proxy keeps routing knowledge for the
// object instead of falling back to random forwarding, and its replica set is
// cleared. It reports false when obj is not cached.
func (t *Tables) DropCached(obj ids.ObjectID, fallback ids.NodeID) (out Outcome, dropped bool) {
	e, kind := t.locate(obj)
	if kind != KindCaching {
		return Outcome{}, false
	}
	t.caching.RemoveEntry(e)
	if fallback.IsProxy() {
		e.Location = fallback
	}
	e.Replicas = nil
	out = Outcome{From: KindCaching, To: KindSingle, CacheEvicted: e}
	out.Dropped = t.single.InsertTop(e)
	t.dirSet(obj, KindSingle, e)
	if out.Dropped != nil {
		t.dirDel(out.Dropped.Object)
	}
	return out, true
}
