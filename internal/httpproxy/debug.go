package httpproxy

import (
	"encoding/json"
	"hash/fnv"
	"net/http"
	"net/http/pprof"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
)

// Live introspection endpoints, registered on every proxy's mux:
//
//	/debug/vars     counters and table occupancy as a JSON document
//	/debug/tables   the three mapping tables in the paper's dump layout
//	/debug/pprof/   the standard Go profiler surface
//
// All of them read under p.mu, so they observe a consistent snapshot even
// while the farm is serving traffic.

// debugVars is the /debug/vars document.
type debugVars struct {
	ID          string             `json:"id"`
	LocalTime   int64              `json:"local_time"`
	Stats       metrics.ProxyStats `json:"stats"`
	TableLen    int                `json:"table_len"`
	CachingLen  int                `json:"caching_len"`
	MultipleLen int                `json:"multiple_len"`
	SingleLen   int                `json:"single_len"`
	StoreLen    int                `json:"store_len"`
	PendingLen  int                `json:"pending_len"`
	Peers       int                `json:"peers"`
	QueueDepth  int64              `json:"queue_depth"`
}

// registerDebug wires the introspection handlers into a proxy's mux.
func registerDebug(mux *http.ServeMux, p *Proxy) {
	mux.HandleFunc("/debug/vars", p.handleVars)
	mux.HandleFunc("/debug/tables", p.handleTables)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func (p *Proxy) handleVars(w http.ResponseWriter, r *http.Request) {
	// Stats() folds in the off-lock shed/coalescing counters.
	stats := p.Stats()
	p.mu.Lock()
	v := debugVars{
		ID:          p.id.String(),
		LocalTime:   p.localTime,
		Stats:       stats,
		TableLen:    p.tables.Len(),
		CachingLen:  p.tables.Caching().Len(),
		MultipleLen: p.tables.Multiple().Len(),
		SingleLen:   p.tables.Single().Len(),
		StoreLen:    len(p.store),
		PendingLen:  len(p.pending),
		Peers:       len(p.peers),
		QueueDepth:  p.gate.depth(),
	}
	p.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (p *Proxy) handleTables(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.tables.Dump(w, p.localTime)
}

// HashRequestID folds a wire request-ID string into a trace RequestID via
// FNV-1a. The HTTP protocol uses opaque string IDs, the trace model 64-bit
// ones; the hash keeps every hop of one request under one key. Zero (the
// "untraced" sentinel) is remapped so real requests never vanish.
func HashRequestID(s string) ids.RequestID {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	v := h.Sum64()
	if v == 0 {
		v = 1
	}
	return ids.RequestID(v)
}
