package experiments

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
)

// This file is the scheduling half of the parallel experiment runner.
// Every experiment in this package is a set of fully independent
// simulations (one cluster.Run per sweep point, baseline or ablation arm),
// so the runner fans them out over a bounded worker pool and slots each
// result by job index — never by arrival order — keeping outputs
// bit-identical to the sequential path. The workload half is the
// materialized-trace cache (trace.go in internal/workload): every job
// replays a shared immutable trace through its own cheap cursor instead of
// re-running the generator.

// forEach runs jobs 0..n-1 on the profile's worker pool. job must write
// its result into a caller-owned, index-addressed slot and return the
// run's engine delivery count (for throughput reporting; 0 when unknown);
// it receives a context that is cancelled as soon as any job fails, and
// should check it before starting expensive work. The first error wins and
// is returned after all in-flight jobs drain; jobs not yet started are
// skipped. name labels the fan-out's CPU-profile samples (pprof label
// "experiment"), so profiles of a figure campaign split by phase.
func (p Profile) forEach(name string, n int, job func(ctx context.Context, i int) (uint64, error)) error {
	return runPool(context.Background(), name, p.workers(n), n, p.Progress, job)
}

// workers resolves the pool width: Parallelism if set, else GOMAXPROCS,
// never wider than the job count.
func (p Profile) workers(n int) int {
	w := p.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runPool is the generic bounded fan-out. It feeds job indexes to workers
// in order, cancels the shared context on the first error, and reports
// per-job completion through progress (serialized, monotonic).
func runPool(parent context.Context, name string, workers, n int, progress func(ProgressInfo), job func(ctx context.Context, i int) (uint64, error)) error {
	if n <= 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
		events   uint64
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go pprof.Do(ctx, pprof.Labels("experiment", name), func(ctx context.Context) {
			defer wg.Done()
			for i := range next {
				// A cancelled pool drains remaining indexes
				// without running them.
				if ctx.Err() != nil {
					continue
				}
				delivered, err := job(ctx, i)
				if err != nil {
					fail(err)
					continue
				}
				mu.Lock()
				done++
				events += delivered
				if progress != nil && firstErr == nil {
					progress(ProgressInfo{
						Done:    done,
						Total:   n,
						Workers: workers,
						Events:  events,
					})
				}
				mu.Unlock()
			}
		})
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return parent.Err()
}
