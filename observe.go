package adc

import (
	"io"

	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/obs"
)

// Tracer records per-hop request-path events — inject, forward, cache hit,
// origin resolve, backward, deliver, drop, timeout, retry — during a run.
// Construct one with NewTracer, pass it in Config.Tracer (or install it on
// an HTTPFarm with SetTracer), run, then export with WriteTrace or
// WriteChromeTrace. A nil Tracer disables tracing at zero cost: the hot
// paths check a nil pointer and skip all event assembly.
type Tracer = obs.Tracer

// NewTracer returns a tracer recording every event kind.
func NewTracer() *Tracer { return obs.New() }

// WriteTrace writes t's recorded events as JSON Lines, one event per line,
// the format the adctrace tool consumes.
func WriteTrace(w io.Writer, t *Tracer) error {
	return obs.WriteJSONL(w, t.Events())
}

// WriteChromeTrace writes t's recorded events in Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto: one timeline row per node,
// instant events per hop, and one span per request attempt.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	return obs.WriteChrome(w, t.Events())
}

// TimeBucket is one fixed-width virtual-time window of run metrics,
// collected when Config.MetricsEvery > 0. Occupancy and Cached have one
// entry per proxy, snapshotted as the bucket sealed: total mapping-table
// entries and cached objects respectively.
type TimeBucket struct {
	// Start and End bound the window in virtual ticks: [Start, End).
	Start, End int64
	// Injected, Completed and Hits count requests entering the system,
	// finishing, and finishing from a proxy cache inside the window.
	Injected, Completed, Hits uint64
	// HitRate is Hits/Completed; MeanHops the mean hop count of the
	// window's completions; MeanGap the mean inter-injection gap.
	HitRate  float64
	MeanHops float64
	MeanGap  float64
	// Timeouts, Retries, Abandoned and Drops are the window's fault and
	// recovery event counts.
	Timeouts, Retries, Abandoned, Drops uint64
	// Occupancy and Cached are per-proxy table sizes at the window end.
	Occupancy []int
	Cached    []int
}

func convertBuckets(bs []metrics.Bucket) []TimeBucket {
	if len(bs) == 0 {
		return nil
	}
	out := make([]TimeBucket, 0, len(bs))
	for _, b := range bs {
		out = append(out, TimeBucket{
			Start:     b.Start,
			End:       b.End,
			Injected:  b.Injected,
			Completed: b.Completed,
			Hits:      b.Hits,
			HitRate:   b.HitRate(),
			MeanHops:  b.MeanHops(),
			MeanGap:   b.MeanGap(),
			Timeouts:  b.Timeouts,
			Retries:   b.Retries,
			Abandoned: b.Abandoned,
			Drops:     b.Drops,
			Occupancy: b.Occupancy,
			Cached:    b.Cached,
		})
	}
	return out
}
