// Package stats provides the small statistical toolkit the evaluation
// harness is built on: online moment accumulation (Welford), order
// statistics, fixed-window moving averages, and histograms.
//
// Everything here is deterministic and allocation-conscious; the experiment
// runners call into this package once per simulated request.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty data sets.
var ErrEmpty = errors.New("stats: empty data set")

// Online accumulates count, mean and variance in a single pass using
// Welford's algorithm. The zero value is ready to use.
type Online struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() uint64 { return o.n }

// Mean returns the running mean (0 for an empty accumulator).
func (o *Online) Mean() float64 { return o.mean }

// Min returns the smallest observation (0 for an empty accumulator).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 for an empty accumulator).
func (o *Online) Max() float64 { return o.max }

// Variance returns the unbiased sample variance.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Merge folds another accumulator into o (parallel Welford merge), allowing
// per-proxy accumulators to be combined into cluster totals.
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	n := o.n + other.n
	delta := other.mean - o.mean
	mean := o.mean + delta*float64(other.n)/float64(n)
	m2 := o.m2 + other.m2 + delta*delta*float64(o.n)*float64(other.n)/float64(n)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n, o.mean, o.m2 = n, mean, m2
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mean, _ := Mean(xs)
	var m2 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
	}
	return math.Sqrt(m2 / float64(len(xs)-1)), nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It does not mutate xs.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}
