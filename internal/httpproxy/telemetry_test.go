package httpproxy

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/promtext"
)

// tracedFarm builds a farm with tracing on (every request) and optional
// fault tolerance.
func tracedFarm(t *testing.T, proxies int, ft FaultTolerance) *Farm {
	t.Helper()
	f, err := NewFarm(FarmConfig{
		Proxies:        proxies,
		Tables:         core.Config{SingleSize: 256, MultipleSize: 256, CachingSize: 64},
		Seed:           7,
		MaxHops:        8,
		FaultTolerance: ft,
		Tracing:        Tracing{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close() })
	return f
}

// TestMetricsParsesAndLints drives traffic through a farm and checks every
// proxy's /metrics against the strict promtext parser and histogram lint,
// plus a value-level cross-check against the proxy's own counters.
func TestMetricsParsesAndLints(t *testing.T) {
	f := tracedFarm(t, 3, FaultTolerance{
		Health: HealthConfig{
			Enabled:           true,
			ProbeInterval:     20 * time.Millisecond,
			FailureThreshold:  2,
			RecoveryThreshold: 1,
		},
		RetryBackoff: 5 * time.Millisecond,
	})
	for i := 0; i < 120; i++ {
		if _, err := f.Get(i%len(f.Proxies), ids.ObjectID(i%17+1), "m-"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range f.Proxies {
		resp, err := http.Get(p.URL() + metricsPath)
		if err != nil {
			t.Fatal(err)
		}
		text := readAll(t, resp)
		if err := promtext.Lint(strings.NewReader(text)); err != nil {
			t.Fatalf("%v metrics lint: %v\n%s", p.ID(), err, text)
		}
		d, err := promtext.Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%v metrics parse: %v", p.ID(), err)
		}
		stats := p.Stats()
		if v, ok := d.Value("adc_requests_total"); !ok || v != float64(stats.Requests) {
			t.Errorf("%v adc_requests_total = %v, want %d", p.ID(), v, stats.Requests)
		}
		if _, ok := d.Value("adc_proxy_info", promtext.L("proxy", p.ID().String())); !ok {
			t.Errorf("%v adc_proxy_info missing its own proxy label", p.ID())
		}
		// The server-stage histogram counts every handled request (shed
		// ones included; none are shed here).
		buckets := d.Buckets("adc_stage_latency_seconds", promtext.L("stage", "server"))
		if len(buckets) == 0 {
			t.Fatalf("%v has no server-stage histogram", p.ID())
		}
		if got := buckets[len(buckets)-1].Cum; got != stats.Requests {
			t.Errorf("%v server stage count = %d, want %d", p.ID(), got, stats.Requests)
		}
		// Health is on: every other proxy appears in adc_peer_state.
		for _, q := range f.Proxies {
			if q.ID() == p.ID() {
				continue
			}
			if v, ok := d.Value("adc_peer_state", promtext.L("peer", q.ID().String())); !ok || v != 0 {
				t.Errorf("%v adc_peer_state{%v} = %v, %v; want 0 (up)", p.ID(), q.ID(), v, ok)
			}
		}
		if v, ok := d.Value("adc_trace_spans"); !ok || v == 0 {
			t.Errorf("%v adc_trace_spans = %v, %v; want > 0 with tracing on", p.ID(), v, ok)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close() //nolint:errcheck // read side
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestHealthzJSON checks the probe endpoint's JSON body carries identity
// and build info while still answering 200 for status-code-only probers.
func TestHealthzJSON(t *testing.T) {
	f := tracedFarm(t, 2, FaultTolerance{})
	resp, err := http.Get(f.Proxies[1].URL() + healthzPath)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var body healthzBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	_ = resp.Body.Close()
	if body.Status != "ok" || body.Proxy != "Proxy[1]" || body.Go == "" {
		t.Errorf("healthz body = %+v", body)
	}
	if body.UptimeS < 0 {
		t.Errorf("negative uptime %v", body.UptimeS)
	}
}

// TestProberToleratesBothHealthzForms: the health monitor's probe must
// accept the pre-JSON bare-"ok" body and the JSON body alike — it contracts
// on the status code only, so mixed-version farms keep probing each other.
func TestProberToleratesBothHealthzForms(t *testing.T) {
	bare := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer bare.Close()
	jsonSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(healthzBody{Status: "ok", Proxy: "Proxy[9]"})
	}))
	defer jsonSrv.Close()

	cfg := HealthConfig{Enabled: true, ProbeInterval: time.Hour, FailureThreshold: 3, RecoveryThreshold: 2}.withDefaults()
	m := newHealthMonitor(cfg, ids.NodeID(0), map[ids.NodeID]string{
		ids.NodeID(0): "http://unused",
		ids.NodeID(1): bare.URL,
		ids.NodeID(2): jsonSrv.URL,
	}, func(ids.NodeID) bool { return false })
	defer m.close()
	if !m.probe(ids.NodeID(1), bare.URL) {
		t.Error("probe rejected the bare-ok healthz form")
	}
	if !m.probe(ids.NodeID(2), jsonSrv.URL) {
		t.Error("probe rejected the JSON healthz form")
	}
}

// TestTraceReconstructionCleanFarm: with tracing on and no faults, every
// request reconstructs into a complete cross-proxy tree.
func TestTraceReconstructionCleanFarm(t *testing.T) {
	f := tracedFarm(t, 4, FaultTolerance{})
	const n = 150
	for i := 0; i < n; i++ {
		if _, err := f.Get(i%len(f.Proxies), ids.ObjectID(i%23+1), "t-"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A handler's server span is recorded a hair after the client sees the
	// response body; let the last handlers finish.
	time.Sleep(50 * time.Millisecond)

	trees := obs.BuildSpanTrees(obs.MergeDumps(f.TraceDumps()))
	c := obs.CensusSpanTrees(trees)
	if c.Trees != n {
		t.Fatalf("reconstructed %d trees, want %d (one per request)", c.Trees, n)
	}
	if c.Complete != n {
		for _, tr := range trees {
			if tr.State() != obs.TreeComplete {
				var b strings.Builder
				obs.FormatSpanTree(&b, tr)
				t.Errorf("non-complete tree:\n%s", b.String())
			}
		}
		t.Fatalf("census = %+v, want all complete", c)
	}
	// Forwarding happened, so some trees must span multiple proxies.
	multi := 0
	for _, tr := range trees {
		nodes := map[int32]bool{}
		var walk func(n *obs.SpanNode)
		walk = func(n *obs.SpanNode) {
			nodes[n.Node] = true
			for _, ch := range n.Children {
				walk(ch)
			}
		}
		walk(tr.Root)
		if len(nodes) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no tree spans more than one proxy; cross-proxy propagation is broken")
	}
}

// TestTraceSampling: 1-in-N sampling traces ~requests/N entry requests and
// leaves the rest without spans.
func TestTraceSampling(t *testing.T) {
	f, err := NewFarm(FarmConfig{
		Proxies: 2,
		Tables:  core.Config{SingleSize: 64, MultipleSize: 64, CachingSize: 16},
		Seed:    3,
		Tracing: Tracing{Enabled: true, SampleEvery: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := f.Get(i%2, ids.ObjectID(i%7+1), "s-"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	c := obs.CensusSpanTrees(obs.BuildSpanTrees(obs.MergeDumps(f.TraceDumps())))
	// Each proxy samples its own entry stream 1-in-5; 50 entries each.
	if want := n / 5; c.Trees != want {
		t.Errorf("sampled %d trees, want %d", c.Trees, want)
	}
	if c.Orphaned != 0 {
		t.Errorf("census = %+v; sampling must not orphan trees", c)
	}
}

// TestChaosTraceNoOrphans kills and restarts a proxy under traced load and
// asserts the reconstruction invariant the telemetry-smoke CI gate rides
// on: kills may truncate trees (spans with errors) but never orphan them.
func TestChaosTraceNoOrphans(t *testing.T) {
	f := tracedFarm(t, 4, FaultTolerance{
		Health: HealthConfig{
			Enabled:           true,
			ProbeInterval:     20 * time.Millisecond,
			FailureThreshold:  2,
			RecoveryThreshold: 1,
		},
		RetryBackoff: 5 * time.Millisecond,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected while the victim is down; the trees
				// must still account for every span.
				_, _ = f.Get((w+i)%len(f.Proxies), ids.ObjectID(i%31+1),
					"c"+strconv.Itoa(w)+"-"+strconv.Itoa(i))
			}
		}(w)
	}

	victim := f.Proxies[1]
	time.Sleep(100 * time.Millisecond)
	if err := victim.Kill(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if err := victim.Restart(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "victim recovery", func() bool {
		return f.Proxies[0].HealthState(victim.ID()) == PeerUp
	})
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Late losers of hedges/retries may still be writing spans.
	time.Sleep(100 * time.Millisecond)

	c := obs.CensusSpanTrees(obs.BuildSpanTrees(obs.MergeDumps(f.TraceDumps())))
	if c.Trees == 0 {
		t.Fatal("no trees reconstructed")
	}
	if c.Orphaned != 0 {
		t.Errorf("census = %+v: kills must truncate trees, not orphan them", c)
	}
	if got := c.CompleteFraction(); got < 0.99 {
		t.Errorf("complete+truncated fraction = %.4f, want >= 0.99 (census %+v)", got, c)
	}
	t.Logf("chaos census: %+v", c)
}
