package core

import (
	"testing"
	"testing/quick"

	"github.com/adc-sim/adc/internal/ids"
)

// Both single-table modes (indexed and paper-faithful scan) must behave
// identically; every test runs against both.
func forEachSingleMode(t *testing.T, capacity int, fn func(t *testing.T, tbl *SingleTable)) {
	t.Helper()
	for _, scan := range []bool{false, true} {
		name := "indexed"
		if scan {
			name = "scan"
		}
		t.Run(name, func(t *testing.T) {
			fn(t, NewSingleTable(capacity, scan))
		})
	}
}

func TestSingleTableInsertAndLookup(t *testing.T) {
	forEachSingleMode(t, 4, func(t *testing.T, tbl *SingleTable) {
		for i := 1; i <= 3; i++ {
			if dropped := tbl.InsertTop(NewEntry(ids.ObjectID(i), 0, int64(i))); dropped != nil {
				t.Fatalf("unexpected drop %v before capacity reached", dropped.Object)
			}
		}
		if tbl.Len() != 3 {
			t.Fatalf("Len = %d, want 3", tbl.Len())
		}
		if !tbl.Contains(2) {
			t.Error("Contains(2) = false, want true")
		}
		if e := tbl.Get(2); e == nil || e.Object != 2 {
			t.Errorf("Get(2) = %v", e)
		}
		if tbl.Contains(99) {
			t.Error("Contains(99) = true, want false")
		}
	})
}

func TestSingleTableLRUEviction(t *testing.T) {
	// §III.3.1: "Each unknown object will receive a new entry on the top
	// of the table, displacing the oldest entry at the bottom".
	forEachSingleMode(t, 3, func(t *testing.T, tbl *SingleTable) {
		for i := 1; i <= 3; i++ {
			tbl.InsertTop(NewEntry(ids.ObjectID(i), 0, int64(i)))
		}
		dropped := tbl.InsertTop(NewEntry(4, 0, 4))
		if dropped == nil || dropped.Object != 1 {
			t.Fatalf("dropped = %v, want oldest object 1", dropped)
		}
		if tbl.Contains(1) {
			t.Error("evicted object still present")
		}
		if tbl.Len() != 3 {
			t.Errorf("Len = %d, want 3", tbl.Len())
		}
		// Top-to-bottom order must be 4, 3, 2.
		got := tbl.Entries()
		want := []ids.ObjectID{4, 3, 2}
		for i, e := range got {
			if e.Object != want[i] {
				t.Errorf("Entries()[%d].Object = %v, want %v", i, e.Object, want[i])
			}
		}
	})
}

func TestSingleTableRemove(t *testing.T) {
	forEachSingleMode(t, 3, func(t *testing.T, tbl *SingleTable) {
		tbl.InsertTop(NewEntry(1, 0, 1))
		tbl.InsertTop(NewEntry(2, 0, 2))
		e := tbl.Remove(1)
		if e == nil || e.Object != 1 {
			t.Fatalf("Remove(1) = %v", e)
		}
		if tbl.Len() != 1 || tbl.Contains(1) {
			t.Error("entry not fully removed")
		}
		if tbl.Remove(1) != nil {
			t.Error("second Remove(1) should return nil")
		}
		if tbl.Remove(99) != nil {
			t.Error("Remove of absent object should return nil")
		}
	})
}

func TestSingleTableGetDoesNotPromote(t *testing.T) {
	// Forward_Addr lookups must not refresh LRU order; only
	// re-insertion via Update_Entry moves an entry to the top.
	forEachSingleMode(t, 2, func(t *testing.T, tbl *SingleTable) {
		tbl.InsertTop(NewEntry(1, 0, 1))
		tbl.InsertTop(NewEntry(2, 0, 2))
		tbl.Get(1) // touch the bottom entry
		dropped := tbl.InsertTop(NewEntry(3, 0, 3))
		if dropped == nil || dropped.Object != 1 {
			t.Errorf("dropped = %v, want 1 (Get must not promote)", dropped)
		}
	})
}

func TestSingleTableCapacityOne(t *testing.T) {
	forEachSingleMode(t, 1, func(t *testing.T, tbl *SingleTable) {
		tbl.InsertTop(NewEntry(1, 0, 1))
		dropped := tbl.InsertTop(NewEntry(2, 0, 2))
		if dropped == nil || dropped.Object != 1 {
			t.Fatalf("dropped = %v, want 1", dropped)
		}
		if tbl.Len() != 1 || !tbl.Contains(2) {
			t.Error("capacity-1 table in wrong state")
		}
	})
}

// TestSingleTableModesAgree drives both modes with the same random
// operation sequence and requires identical observable state throughout.
func TestSingleTableModesAgree(t *testing.T) {
	type op struct {
		Insert bool
		Obj    uint8
	}
	prop := func(ops []op) bool {
		indexed := NewSingleTable(8, false)
		scan := NewSingleTable(8, true)
		for i, o := range ops {
			obj := ids.ObjectID(o.Obj % 16)
			if o.Insert {
				// Avoid duplicate inserts: InsertTop requires
				// the object to be absent.
				if indexed.Contains(obj) {
					continue
				}
				d1 := indexed.InsertTop(NewEntry(obj, 0, int64(i)))
				d2 := scan.InsertTop(NewEntry(obj, 0, int64(i)))
				if (d1 == nil) != (d2 == nil) {
					return false
				}
				if d1 != nil && d1.Object != d2.Object {
					return false
				}
			} else {
				r1 := indexed.Remove(obj)
				r2 := scan.Remove(obj)
				if (r1 == nil) != (r2 == nil) {
					return false
				}
			}
			if indexed.Len() != scan.Len() {
				return false
			}
		}
		e1, e2 := indexed.Entries(), scan.Entries()
		for i := range e1 {
			if e1[i].Object != e2[i].Object {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSingleTableNeverExceedsCapacity is invariant 1 of DESIGN.md §10.
func TestSingleTableNeverExceedsCapacity(t *testing.T) {
	prop := func(objs []uint8, capSeed uint8) bool {
		capacity := int(capSeed%7) + 1
		tbl := NewSingleTable(capacity, false)
		for i, o := range objs {
			obj := ids.ObjectID(o)
			if tbl.Contains(obj) {
				tbl.Remove(obj)
			}
			tbl.InsertTop(NewEntry(obj, 0, int64(i)))
			if tbl.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
