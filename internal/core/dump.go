package core

import (
	"fmt"
	"io"
	"strings"
)

// DumpTable writes an ordered or LRU table in the layout of the paper's
// sample figures (Figs. 1–3): OBJ-ID, PROXY, LAST, AVG, HITS. The now
// argument lets the dump show aged averages next to the stored ones.
func DumpTable(w io.Writer, title string, entries []*Entry, now int64) error {
	var b strings.Builder
	dumpHeader(&b, title, len(entries))
	for _, e := range entries {
		fmt.Fprintf(&b, "%s %6d\n", e, e.AgedAverage(now))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func dumpHeader(b *strings.Builder, title string, n int) {
	fmt.Fprintf(b, "%s (%d entries)\n", title, n)
	fmt.Fprintf(b, "%-14s %-10s %6s %6s %6s %6s\n",
		"OBJ-ID", "PROXY", "LAST", "AVG", "HITS", "AGED")
}

// dumpEach writes a table via its Each iterator, with no entry-slice copy.
func dumpEach(w io.Writer, title string, n int, each func(func(*Entry) bool), now int64) error {
	var b strings.Builder
	dumpHeader(&b, title, n)
	each(func(e *Entry) bool {
		fmt.Fprintf(&b, "%s %6d\n", e, e.AgedAverage(now))
		return true
	})
	_, err := io.WriteString(w, b.String())
	return err
}

// Dump writes all three tables of t in paper order.
func (t *Tables) Dump(w io.Writer, now int64) error {
	if err := dumpEach(w, "Caching Table", t.caching.Len(), t.caching.Each, now); err != nil {
		return err
	}
	if err := dumpEach(w, "Multiple-Table", t.multiple.Len(), t.multiple.Each, now); err != nil {
		return err
	}
	return dumpEach(w, "Single-Table", t.single.Len(), t.single.Each, now)
}
