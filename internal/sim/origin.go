package sim

import (
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/obs"
)

// Origin is the origin server: it resolves every request addressed to it
// and starts the reply on its way back along the recorded forwarding path.
// "We don't expect the loss of messages and ... always either one of the
// proxy objects or the actual origin server will finally resolve the
// request" (§III.1).
type Origin struct {
	// resolved counts requests the origin had to answer (cluster-level
	// miss counter, cross-checked against client-side accounting).
	resolved uint64

	tracer *obs.Tracer
}

var _ Node = (*Origin)(nil)

// NewOrigin returns the origin server node.
func NewOrigin() *Origin { return &Origin{} }

// ID implements Node.
func (o *Origin) ID() ids.NodeID { return ids.Origin }

// Resolved returns how many requests the origin answered.
func (o *Origin) Resolved() uint64 { return o.resolved }

// SetTracer installs the request tracer (before the run starts).
func (o *Origin) SetTracer(t *obs.Tracer) { o.tracer = t }

// Handle implements Node.
func (o *Origin) Handle(ctx Context, m msg.Message) {
	req, ok := m.(*msg.Request)
	if !ok {
		// Replies never target the origin; ignore defensively.
		return
	}
	o.resolved++
	if o.tracer.Enabled(obs.KindOriginResolve) {
		e := obs.Ev(obs.KindOriginResolve, ids.Origin)
		e.At = traceNow(ctx)
		e.Req = req.ID
		e.Obj = req.Object
		e.Hops = int32(req.Hops)
		o.tracer.Emit(e)
	}
	rep := Resolve(ctx, req)
	rep.FromOrigin = true
	// Resolver stays None: "a NULL value stays for the data from the
	// origin server and the [first backwarding] proxy will be assigned
	// as the official resolver" (§IV.2).
	next, _ := rep.NextBackward()
	rep.To = next
	ctx.Send(rep)
}
