package httpproxy

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
)

// ftFarm builds a small farm with the fault-tolerance layer on, tuned for
// fast tests: 20ms probes, 2 failures to down, 1 success back up.
func ftFarm(t *testing.T, proxies int) *Farm {
	t.Helper()
	f, err := NewFarm(FarmConfig{
		Proxies: proxies,
		Tables:  core.Config{SingleSize: 128, MultipleSize: 128, CachingSize: 64},
		Seed:    1,
		FaultTolerance: FaultTolerance{
			Health: HealthConfig{
				Enabled:           true,
				ProbeInterval:     20 * time.Millisecond,
				FailureThreshold:  2,
				RecoveryThreshold: 1,
			},
			RetryBackoff: 5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close() })
	return f
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHealthStateMachine drives one monitor's state machine directly
// through the documented path: up → suspect → down → recovering → up,
// including the flap back to down from recovering.
func TestHealthStateMachine(t *testing.T) {
	cfg := HealthConfig{
		Enabled:           true,
		ProbeInterval:     time.Hour, // no probe ticks; observations are manual
		FailureThreshold:  3,
		RecoveryThreshold: 2,
	}
	peer := ids.NodeID(1)
	m := newHealthMonitor(cfg, 0, map[ids.NodeID]string{0: "http://self", peer: "http://peer"}, nil)
	defer m.close()

	check := func(want PeerState, routable bool) {
		t.Helper()
		if got := m.state(peer); got != want {
			t.Fatalf("state = %v, want %v", got, want)
		}
		if got := m.routable(peer); got != routable {
			t.Fatalf("routable(%v) = %v, want %v", want, got, routable)
		}
	}

	check(PeerUp, true)
	m.reportFailure(peer) // 1st failure: suspect, still routable
	check(PeerSuspect, true)
	m.reportSuccess(peer) // success clears suspicion
	check(PeerUp, true)

	m.reportFailure(peer)
	m.reportFailure(peer)
	check(PeerSuspect, true) // 2 of 3
	m.reportFailure(peer)
	check(PeerDown, false) // threshold reached

	m.reportSuccess(peer) // 1 of 2 back
	check(PeerRecovering, false)
	m.reportFailure(peer) // flap while recovering drops straight back
	check(PeerDown, false)

	m.reportSuccess(peer)
	m.reportSuccess(peer)
	check(PeerUp, true)

	// Unknown peers (and self) are always routable and never recorded.
	if !m.routable(ids.NodeID(99)) {
		t.Error("unknown peer must be routable")
	}
	if m.state(0) != PeerUp {
		t.Error("self must read as up")
	}

	// The transition log recorded the full journey in order.
	var states []PeerState
	for _, tr := range m.Transitions() {
		if tr.Observer != 0 || tr.Peer != peer {
			t.Errorf("transition %+v has wrong observer/peer", tr)
		}
		states = append(states, tr.To)
	}
	want := []PeerState{PeerSuspect, PeerUp, PeerSuspect, PeerDown, PeerRecovering, PeerDown, PeerRecovering, PeerUp}
	if len(states) != len(want) {
		t.Fatalf("recorded %d transitions %v, want %v", len(states), states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v (%v)", i, states[i], want[i], states)
		}
	}
}

// TestHealthProbeDetectsKillAndRecover is the active-probing contract: a
// killed proxy is marked down by every peer within a few probe intervals,
// and readmitted after restart.
func TestHealthProbeDetectsKillAndRecover(t *testing.T) {
	f := ftFarm(t, 3)
	victim := f.Proxies[2]
	observers := f.Proxies[:2]

	if err := victim.Kill(); err != nil {
		t.Fatal(err)
	}
	killedAt := time.Now()
	waitFor(t, 5*time.Second, "peers to mark the killed proxy down", func() bool {
		for _, p := range observers {
			if p.HealthState(victim.ID()) != PeerDown {
				return false
			}
		}
		return true
	})

	// Detection latency is bounded by ProbeInterval × FailureThreshold plus
	// a round-trip; be generous for CI but fail on a runaway bound.
	if ttd := time.Since(killedAt); ttd > 2*time.Second {
		t.Errorf("detection took %v, want well under 2s at a 20ms probe interval", ttd)
	}

	if err := victim.Restart(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "peers to readmit the restarted proxy", func() bool {
		for _, p := range observers {
			if p.HealthState(victim.ID()) != PeerUp {
				return false
			}
		}
		return true
	})

	// The merged transition log carries both the detection and the recovery
	// for each observer — the chaos harness's TTD/TTR source.
	var downs, ups int
	for _, tr := range f.HealthTransitions() {
		if tr.Peer != victim.ID() {
			continue
		}
		switch tr.To {
		case PeerDown:
			downs++
		case PeerUp:
			ups++
		}
	}
	if downs < len(observers) || ups < len(observers) {
		t.Errorf("transition log has %d downs / %d ups for the victim, want ≥%d each",
			downs, ups, len(observers))
	}

	// A request through a surviving proxy still resolves.
	if code := stormGet(t, f.Proxies[0], ids.ObjectID(42), "after-recover"); code != http.StatusOK {
		t.Errorf("post-recovery request: status %d", code)
	}
}

// TestFailoverOriginWhenOwnerDown seeds an entry proxy with a learned
// location, kills the owner, and checks the request falls back to the
// origin while the stale table entry is invalidated — the real-network
// mirror of the virtual-time stale-location invalidation.
func TestFailoverOriginWhenOwnerDown(t *testing.T) {
	f := ftFarm(t, 2)
	entry, owner := f.Proxies[0], f.Proxies[1]
	obj := ids.ObjectID(777)

	// White-box: teach the entry proxy that the owner holds obj.
	entry.mu.Lock()
	entry.localTime++
	entry.tables.Recycle(entry.tables.Update(obj, owner.ID(), entry.localTime))
	entry.mu.Unlock()

	if err := owner.Kill(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "entry proxy to mark the owner down", func() bool {
		return entry.HealthState(owner.ID()) == PeerDown
	})

	if code := stormGet(t, entry, obj, "fo-1"); code != http.StatusOK {
		t.Fatalf("failover request: status %d, want 200", code)
	}
	s := entry.Stats()
	if s.StaleInvalidated == 0 {
		t.Errorf("StaleInvalidated = 0, want the dead owner's entry demoted")
	}
	if s.ForwardOrigin == 0 {
		t.Errorf("ForwardOrigin = 0, want the entry to fall back to the origin")
	}
}

// TestBreakerGroup covers the circuit state machine: trip after the
// threshold, fail fast while open, a single half-open trial after the
// cooldown, and both trial outcomes.
func TestBreakerGroup(t *testing.T) {
	const cooldown = 50 * time.Millisecond
	g := newBreakerGroup(2, cooldown)
	dest := ids.NodeID(1)

	if !g.allow(dest) {
		t.Fatal("unknown destination must be allowed")
	}
	g.report(dest, false)
	if !g.allow(dest) {
		t.Fatal("one failure must not trip a threshold-2 breaker")
	}
	g.report(dest, false)
	if g.allow(dest) {
		t.Fatal("breaker must open at the threshold")
	}
	if vars := g.snapshot(); len(vars) != 1 || vars[0].State != "open" {
		t.Fatalf("snapshot = %+v, want one open circuit", vars)
	}

	time.Sleep(cooldown + 10*time.Millisecond)
	if !g.allow(dest) {
		t.Fatal("cooldown elapsed: the trial request must pass")
	}
	if g.allow(dest) {
		t.Fatal("only one half-open trial at a time")
	}
	g.report(dest, false) // trial failed: reopen
	if g.allow(dest) {
		t.Fatal("failed trial must reopen the circuit")
	}

	time.Sleep(cooldown + 10*time.Millisecond)
	if !g.allow(dest) {
		t.Fatal("second trial must pass after another cooldown")
	}
	g.report(dest, true) // trial succeeded: close
	if !g.allow(dest) {
		t.Fatal("successful trial must close the circuit")
	}
	if vars := g.snapshot(); len(vars) != 0 {
		t.Fatalf("snapshot = %+v, want no tripped circuits", vars)
	}

	// threshold < 0 disables the group entirely.
	var off *breakerGroup = newBreakerGroup(-1, 0)
	if off != nil {
		t.Fatal("negative threshold must disable breakers")
	}
	if !off.allow(dest) {
		t.Fatal("nil group must allow everything")
	}
	off.report(dest, false) // must not panic
}

// TestParseChaosSpec covers the schedule grammar, event ordering, and
// validation against the farm size.
func TestParseChaosSpec(t *testing.T) {
	plan, err := ParseChaosSpec("kill=p3@5s, restart=p3@15s, partition=p1:p2@8s+4s")
	if err != nil {
		t.Fatal(err)
	}
	want := []ChaosEvent{
		{At: 5 * time.Second, Action: ChaosKill, Proxy: 3},
		{At: 8 * time.Second, Action: ChaosPartition, A: 1, B: 2},
		{At: 12 * time.Second, Action: ChaosHeal, A: 1, B: 2},
		{At: 15 * time.Second, Action: ChaosRestart, Proxy: 3},
	}
	if len(plan.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d: %+v", len(plan.Events), len(want), plan.Events)
	}
	for i, ev := range plan.Events {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}

	if spans := plan.KillSpans(); spans[3] != [2]time.Duration{5 * time.Second, 15 * time.Second} {
		t.Errorf("KillSpans = %v, want proxy 3 killed@5s restarted@15s", spans)
	}

	if err := plan.Validate(8); err != nil {
		t.Errorf("Validate(8) = %v, want nil", err)
	}
	if err := plan.Validate(3); err == nil {
		t.Error("Validate(3) must reject a plan targeting proxy 3")
	}

	// Bare indices work too.
	if p, err := ParseChaosSpec("kill=2@100ms"); err != nil || p.Events[0].Proxy != 2 {
		t.Errorf(`ParseChaosSpec("kill=2@100ms") = %+v, %v`, p, err)
	}

	for _, bad := range []string{
		"",                      // empty schedule tests nothing
		"explode=p1@5s",         // unknown key
		"kill=p1",               // missing @AT
		"kill=px@5s",            // bad proxy ref
		"kill=p1@-5s",           // negative offset
		"partition=p1@5s",       // missing :B
		"partition=p1:p1@5s",    // same proxy twice
		"partition=p1:p2@5s+0s", // non-positive span
		"kill",                  // not key=value
	} {
		if _, err := ParseChaosSpec(bad); err == nil {
			t.Errorf("ParseChaosSpec(%q) succeeded, want error", bad)
		}
	}
}

// TestFlightLeaderPeerDiesMidFetch is the satellite hang test: concurrent
// entry requests coalesce behind one leader whose upstream peer is dead.
// The leader's chain must fail over (retries, then origin) and every
// waiter must get a correct 200 — nobody hangs on a flight whose leader
// hit a dead peer.
func TestFlightLeaderPeerDiesMidFetch(t *testing.T) {
	const clients = 16
	f := ftFarm(t, 2)
	entry, peer := f.Proxies[0], f.Proxies[1]
	obj := ids.ObjectID(4242)

	// Teach the entry proxy that the (about to die) peer owns the object,
	// then kill it without waiting for detection: the first chains run
	// against a dead-but-believed-up peer, exactly the mid-fetch window.
	entry.mu.Lock()
	entry.localTime++
	entry.tables.Recycle(entry.tables.Update(obj, peer.ID(), entry.localTime))
	entry.mu.Unlock()
	if err := peer.Kill(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			if code := stormGet(t, entry, obj, "dead-"+strconv.Itoa(c)); code != http.StatusOK {
				t.Errorf("client %d: status %d, want 200 via failover", c, code)
			}
		}(c)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("waiters hung: flight never completed after the peer died")
	}
}

// TestGateDrainsAfterRecovery kills a peer under a tight admission gate,
// restarts it mid-burst, and checks every queued entry request completes —
// the gate must drain through failure and recovery, never wedge.
func TestGateDrainsAfterRecovery(t *testing.T) {
	const clients = 12
	f, err := NewFarm(FarmConfig{
		Proxies:   2,
		Tables:    core.Config{SingleSize: 128, MultipleSize: 128, CachingSize: 64},
		Seed:      1,
		MaxActive: 1,
		MaxQueue:  8,
		FaultTolerance: FaultTolerance{
			Health: HealthConfig{
				Enabled:           true,
				ProbeInterval:     20 * time.Millisecond,
				FailureThreshold:  2,
				RecoveryThreshold: 1,
			},
			RetryBackoff: 5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck // teardown
	entry, peer := f.Proxies[0], f.Proxies[1]

	if err := peer.Kill(); err != nil {
		t.Fatal(err)
	}
	restart := time.AfterFunc(200*time.Millisecond, func() { _ = peer.Restart() })
	defer restart.Stop()

	var codes [clients]int
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			// Distinct objects: coalescing must not mask the gate.
			codes[c] = stormGet(t, entry, ids.ObjectID(5000+c), "drain-"+strconv.Itoa(c))
		}(c)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("queued entry requests never drained after peer recovery")
	}

	okCount, shed := 0, 0
	for c, code := range codes {
		switch code {
		case http.StatusOK:
			okCount++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("client %d: status %d, want 200 or 429", c, code)
		}
	}
	if okCount == 0 {
		t.Error("no request completed; the gate should still admit MaxActive+MaxQueue")
	}

	// The queue itself is empty again.
	waitFor(t, 5*time.Second, "gate queue to drain", func() bool { return entry.QueueDepth() == 0 })
}

// TestDebugVarsHealthSection checks /debug/vars gains health and breaker
// sections with the layer on, and omits them with the layer off.
func TestDebugVarsHealthSection(t *testing.T) {
	f := ftFarm(t, 2)
	if err := f.Proxies[1].Kill(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "proxy 0 to mark proxy 1 down", func() bool {
		return f.Proxies[0].HealthState(f.Proxies[1].ID()) == PeerDown
	})

	resp, err := http.Get(f.Proxies[0].URL() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // read side
	var v struct {
		Health *HealthVars `json:"health"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Health == nil {
		t.Fatal("/debug/vars has no health section with the layer enabled")
	}
	if v.Health.Probes == 0 || v.Health.Detections == 0 {
		t.Errorf("health section = %+v, want nonzero probes and detections", v.Health)
	}
	found := false
	for _, ph := range v.Health.Peers {
		if ph.Peer == f.Proxies[1].ID().String() && ph.State == "down" {
			found = true
		}
	}
	if !found {
		t.Errorf("health peers = %+v, want proxy 1 down", v.Health.Peers)
	}
}
