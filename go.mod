module github.com/adc-sim/adc

go 1.22
