package httpproxy

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/adc-sim/adc/internal/obs"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url) //nolint:gosec // loopback test URL
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // read side
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestDebugVars(t *testing.T) {
	f := testFarm(t, 2)
	// Traffic first, so the counters have something to show.
	for i := 0; i < 10; i++ {
		if _, err := f.Get(0, 3, fmt.Sprintf("dv-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	status, body := getBody(t, f.Proxies[0].URL()+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars status %d", status)
	}
	var v debugVars
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if v.ID != "Proxy[0]" {
		t.Errorf("id = %q, want Proxy[0]", v.ID)
	}
	// Peer-forwarded requests can loop back, so the counter is a floor.
	if v.Stats.Requests < 10 {
		t.Errorf("stats.requests = %d, want >= 10", v.Stats.Requests)
	}
	if v.LocalTime == 0 {
		t.Error("local_time still zero after traffic")
	}
	if v.Peers == 0 {
		t.Error("peers = 0 in a 2-proxy farm")
	}
	// A repeatedly-fetched object must show up somewhere in the tables.
	if v.TableLen == 0 {
		t.Error("table_len = 0 after 10 fetches")
	}
	if v.TableLen != v.CachingLen+v.MultipleLen+v.SingleLen {
		t.Errorf("table_len %d != caching %d + multiple %d + single %d",
			v.TableLen, v.CachingLen, v.MultipleLen, v.SingleLen)
	}
}

func TestDebugTables(t *testing.T) {
	f := testFarm(t, 2)
	for i := 0; i < 5; i++ {
		if _, err := f.Get(0, 9, fmt.Sprintf("dt-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	status, body := getBody(t, f.Proxies[0].URL()+"/debug/tables")
	if status != http.StatusOK {
		t.Fatalf("/debug/tables status %d", status)
	}
	for _, want := range []string{"Caching Table", "Multiple-Table", "Single-Table"} {
		if !strings.Contains(body, want) {
			t.Errorf("table dump missing %q:\n%s", want, body)
		}
	}
}

func TestDebugPprof(t *testing.T) {
	f := testFarm(t, 1)
	status, body := getBody(t, f.Proxies[0].URL()+"/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", status)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing profile listing:\n%s", body)
	}
	status, _ = getBody(t, f.Proxies[0].URL()+"/debug/pprof/cmdline")
	if status != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", status)
	}
}

func TestHashRequestID(t *testing.T) {
	a, b := HashRequestID("r1"), HashRequestID("r2")
	if a == b {
		t.Error("distinct strings hashed to the same RequestID")
	}
	if a != HashRequestID("r1") {
		t.Error("hash not stable")
	}
	if HashRequestID("") == 0 {
		t.Error("zero sentinel leaked through")
	}
}

// TestFarmTracing drives a traced farm and checks that every hop of an
// HTTP request lands in the trace under one hashed request key.
func TestFarmTracing(t *testing.T) {
	f := testFarm(t, 3)
	tr := obs.New()
	f.SetTracer(tr)

	const reqID = "traced-1"
	if _, err := f.Get(0, 5, reqID); err != nil {
		t.Fatal(err)
	}
	// Re-fetch the same object until selective caching promotes it and a
	// fetch resolves as a local hit, so the trace gains a hit event.
	var hitReq string
	for i := 0; i < 50 && hitReq == ""; i++ {
		id := fmt.Sprintf("traced-again-%d", i)
		hit, err := f.Get(0, 5, id)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			hitReq = id
		}
	}
	if hitReq == "" {
		t.Fatal("object never became a proxy hit after 50 fetches")
	}

	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("tracer recorded nothing")
	}
	key := HashRequestID(reqID)
	kinds := map[obs.Kind]int{}
	for _, e := range events {
		if e.Req == key {
			kinds[e.Kind]++
		}
	}
	for _, k := range []obs.Kind{obs.KindInject, obs.KindForward, obs.KindOriginResolve, obs.KindBackward, obs.KindDeliver} {
		if kinds[k] == 0 {
			t.Errorf("first fetch: no %v event under its request key (saw %v)", k, kinds)
		}
	}
	var sawHit bool
	for _, e := range events {
		if e.Kind == obs.KindHit && e.Req == HashRequestID(hitReq) {
			sawHit = true
		}
	}
	if !sawHit {
		t.Error("proxy-hit fetch produced no hit event")
	}
	// Wall-clock stamping: the farm runs in real time, so events must carry
	// At (microseconds), not rely on Seq.
	for i, e := range events {
		if e.At == 0 && i > 0 {
			t.Errorf("event %d (%v) has no wall-clock stamp", i, e.Kind)
			break
		}
	}
}
