package experiments

import (
	"context"
	"fmt"

	"github.com/adc-sim/adc/internal/cluster"
)

// BaselinePoint is one scheme's result in the all-baselines comparison.
type BaselinePoint struct {
	// Algorithm names the scheme.
	Algorithm cluster.Algorithm
	// HitRate is the post-fill hit rate.
	HitRate float64
	// Hops is the post-fill mean hops per request.
	Hops float64
	// BottleneckShare is the fraction of all proxy-side requests that
	// the single busiest node handled — ≈1/N for decentralised schemes,
	// ≈0.5 for the coordinator (every request passes it) and high for
	// the hierarchy's root.
	BottleneckShare float64
}

// Baselines runs every implemented scheme — ADC, CARP, consistent
// hashing, the hierarchical tree, and the central coordinator — over the
// same workload, quantifying the §II/§III design-space narrative: the
// coordinator's bottleneck, the hierarchy's root pressure, hashing's
// single-copy efficiency, ADC's adaptive middle ground. The five runs are
// independent and fan out over the profile's worker pool, each replaying
// the shared materialized trace.
func Baselines(p Profile) ([]BaselinePoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	algos := []cluster.Algorithm{
		cluster.ADC, cluster.CARP, cluster.CHash,
		cluster.Hierarchical, cluster.Coordinator,
	}
	tr, err := p.trace()
	if err != nil {
		return nil, err
	}
	fillEnd, _ := tr.Boundaries()
	out := make([]BaselinePoint, len(algos))
	err = p.forEach("baselines", len(algos), func(_ context.Context, i int) (uint64, error) {
		algo := algos[i]
		res, err := cluster.Run(p.ClusterConfig(algo, p.Tables(), uint64(fillEnd)), tr.Cursor())
		if err != nil {
			return 0, fmt.Errorf("experiments: baseline %v: %w", algo, err)
		}
		hit, hops := postFillRates(res, fillEnd)
		var total, busiest uint64
		for _, s := range res.ProxyStats {
			total += s.Requests
			if s.Requests > busiest {
				busiest = s.Requests
			}
		}
		share := 0.0
		if total > 0 {
			share = float64(busiest) / float64(total)
		}
		out[i] = BaselinePoint{
			Algorithm:       algo,
			HitRate:         hit,
			Hops:            hops,
			BottleneckShare: share,
		}
		return res.Delivered, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
