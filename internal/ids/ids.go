// Package ids defines the small identifier types shared by every layer of
// the simulator: object IDs (the stand-in for URLs), node IDs (proxies,
// clients, and the origin server), and globally unique request IDs.
//
// The paper's testbed "only focuses on the handling of requested URLs"
// (§V.1); we follow it and identify objects by a 64-bit ID instead of a
// string URL, which keeps mapping tables compact (the paper suggests MD5
// digests for the same reason in §V.3.3).
package ids

import (
	"fmt"
	"strconv"
)

// ObjectID identifies one cacheable object (the paper's OBJ-ID / URL).
type ObjectID uint64

// String renders the object ID in the paper's "www.xyNNN" style, which keeps
// table dumps readable and comparable with the paper's sample figures.
func (o ObjectID) String() string {
	return "www.xy" + strconv.FormatUint(uint64(o), 10)
}

// NodeID identifies a participant of the simulated system. Proxies are
// numbered from 0; the origin server and clients use reserved ranges so a
// NodeID is unambiguous across the whole cluster.
type NodeID int32

// Reserved NodeID values. Proxy IDs are small non-negative integers; the
// origin server and clients live in disjoint negative ranges.
const (
	// None marks an unset node reference, e.g. the resolver field of a
	// reply that has not passed a proxy yet (the paper's NULL resolver).
	None NodeID = -1

	// Origin is the origin server that can always resolve a request.
	Origin NodeID = -2

	// clientBase is the first client ID, growing downwards.
	clientBase NodeID = -10
)

// Client returns the NodeID of the i-th client driver (i >= 0).
func Client(i int) NodeID { return clientBase - NodeID(i) }

// IsClient reports whether n addresses a client driver.
func (n NodeID) IsClient() bool { return n <= clientBase }

// IsProxy reports whether n addresses a proxy agent.
func (n NodeID) IsProxy() bool { return n >= 0 }

// ClientIndex returns the index i such that Client(i) == n.
// It panics if n is not a client ID; callers must check IsClient first.
func (n NodeID) ClientIndex() int {
	if !n.IsClient() {
		panic(fmt.Sprintf("ids: %v is not a client", n))
	}
	return int(clientBase - n)
}

// String implements fmt.Stringer using the paper's "Proxy[i]" notation.
func (n NodeID) String() string {
	switch {
	case n == None:
		return "None"
	case n == Origin:
		return "Origin"
	case n.IsClient():
		return "Client[" + strconv.Itoa(n.ClientIndex()) + "]"
	default:
		return "Proxy[" + strconv.Itoa(int(n)) + "]"
	}
}

// RequestID is the globally unique request identifier used for loop
// detection. The paper bases it on "the client's IP address and an internal
// request counter" (§III.1); we pack a client index in the high 16 bits and
// a per-client counter in the low 48 bits.
type RequestID uint64

// NewRequestID builds the unique ID for the counter-th request of client i.
func NewRequestID(client int, counter uint64) RequestID {
	return RequestID(uint64(client)<<48 | (counter & (1<<48 - 1)))
}

// ClientIndex extracts the issuing client index.
func (r RequestID) ClientIndex() int { return int(uint64(r) >> 48) }

// Counter extracts the per-client request counter.
func (r RequestID) Counter() uint64 { return uint64(r) & (1<<48 - 1) }

// String implements fmt.Stringer.
func (r RequestID) String() string {
	return fmt.Sprintf("req(%d:%d)", r.ClientIndex(), r.Counter())
}
