package experiments

import (
	"context"
	"fmt"

	"github.com/adc-sim/adc/internal/cluster"
	"github.com/adc-sim/adc/internal/sim"
)

// ResponseResult quantifies §V.2.2's qualitative claim — "ADC has longer
// systems response than the hashing algorithm" — on the virtual-time
// engine with an explicit latency model. Response times are in virtual
// microseconds under the default WAN model (proxies 5–10 ms away, origin
// 50 ms away).
type ResponseResult struct {
	// ADCMean and HashingMean are mean response times in virtual ticks.
	ADCMean     float64
	HashingMean float64
	// ADCHit and HashingHit are the matching hit rates (context: a
	// higher hit rate avoids expensive origin round trips).
	ADCHit     float64
	HashingHit float64
	// OpenLoop reports whether injection was open-loop.
	OpenLoop bool
}

// ResponseOptions tweak the response-time experiment.
type ResponseOptions struct {
	// Latency overrides the latency model (zero = default WAN model).
	Latency sim.LatencyModel
	// OpenLoopInterval switches to open-loop injection with this mean
	// inter-arrival time in ticks (0 = closed loop).
	OpenLoopInterval int64
	// Poisson draws exponential arrivals in open-loop mode.
	Poisson bool
}

// ResponseTime runs ADC and the hashing baseline on the virtual-time
// engine and compares mean response times.
func ResponseTime(p Profile, opts ResponseOptions) (*ResponseResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := &ResponseResult{OpenLoop: opts.OpenLoopInterval > 0}
	tr, err := p.trace()
	if err != nil {
		return nil, err
	}
	algos := []cluster.Algorithm{cluster.ADC, cluster.CARP}
	results := make([]*cluster.Result, len(algos))
	err = p.forEach("response", len(algos), func(_ context.Context, i int) (uint64, error) {
		cfg := p.ClusterConfig(algos[i], p.Tables(), 0)
		forceVirtualTime(&cfg)
		cfg.Latency = opts.Latency
		cfg.OpenLoopInterval = opts.OpenLoopInterval
		cfg.Poisson = opts.Poisson
		res, err := cluster.Run(cfg, tr.Cursor())
		if err != nil {
			return 0, fmt.Errorf("experiments: response %v: %w", algos[i], err)
		}
		results[i] = res
		return res.Delivered, nil
	})
	if err != nil {
		return nil, err
	}
	for i, algo := range algos {
		res := results[i]
		switch algo {
		case cluster.ADC:
			out.ADCMean = res.Summary.MeanResponse
			out.ADCHit = res.Summary.HitRate
		case cluster.CARP:
			out.HashingMean = res.Summary.MeanResponse
			out.HashingHit = res.Summary.HitRate
		}
	}
	return out, nil
}
