// Package hierarchy implements the classic hierarchical caching baseline
// (Squid-style parent/child trees; the paper's refs [20][21][27]): leaf
// proxies forward misses to a shared parent, which forwards its misses to
// the origin; every proxy on the reply path caches the object with LRU.
//
// ADC's §III positioning is that it "combines the advantages of
// hierarchical distributed caching (allowing multiple copies of the same
// object) and of hashing based distributed caching (fast allocation
// through global agreement)". This package supplies the hierarchical
// corner of that comparison: multiple copies, but every miss climbs the
// tree and the parent is both a shared cache and a shared bottleneck.
package hierarchy

import (
	"fmt"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/lru"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
)

// Role distinguishes the two tiers.
type Role int

// Tree roles.
const (
	// Leaf proxies receive client requests.
	Leaf Role = iota + 1
	// Root is the shared parent; its misses go to the origin.
	Root
)

// Proxy is one node of a two-level caching tree.
type Proxy struct {
	id     ids.NodeID
	role   Role
	parent ids.NodeID // root's parent is the origin
	cache  *lru.Cache[ids.ObjectID, struct{}]
	stats  metrics.ProxyStats
}

var _ sim.Node = (*Proxy)(nil)

// Config assembles one tree node.
type Config struct {
	// ID is the node's proxy ID.
	ID ids.NodeID
	// Role selects leaf or root.
	Role Role
	// Parent is the next level up (the root for leaves; ignored for the
	// root itself, whose parent is always the origin).
	Parent ids.NodeID
	// CacheSize bounds the local LRU cache.
	CacheSize int
}

// New builds a tree node.
func New(cfg Config) (*Proxy, error) {
	if !cfg.ID.IsProxy() {
		return nil, fmt.Errorf("hierarchy: %v is not a proxy ID", cfg.ID)
	}
	if cfg.Role != Leaf && cfg.Role != Root {
		return nil, fmt.Errorf("hierarchy: invalid role %d", int(cfg.Role))
	}
	if cfg.CacheSize <= 0 {
		return nil, fmt.Errorf("hierarchy: cache size must be positive, got %d", cfg.CacheSize)
	}
	parent := cfg.Parent
	if cfg.Role == Root {
		parent = ids.Origin
	}
	return &Proxy{
		id:     cfg.ID,
		role:   cfg.Role,
		parent: parent,
		cache:  lru.New[ids.ObjectID, struct{}](cfg.CacheSize),
	}, nil
}

// ID implements sim.Node.
func (p *Proxy) ID() ids.NodeID { return p.id }

// Role returns the node's tier.
func (p *Proxy) Role() Role { return p.role }

// Stats snapshots the node's counters.
func (p *Proxy) Stats() metrics.ProxyStats { return p.stats }

// CacheLen returns the number of cached objects.
func (p *Proxy) CacheLen() int { return p.cache.Len() }

// Handle implements sim.Node.
func (p *Proxy) Handle(ctx sim.Context, m msg.Message) {
	switch t := m.(type) {
	case *msg.Request:
		p.receiveRequest(ctx, t)
	case *msg.Reply:
		p.receiveReply(ctx, t)
	}
}

func (p *Proxy) receiveRequest(ctx sim.Context, req *msg.Request) {
	p.stats.Requests++
	if _, ok := p.cache.Get(req.Object); ok {
		// Hit: reply retraces the path down the tree so lower levels
		// can refresh their recency (they already hold the object or
		// will cache it on the way down).
		p.stats.LocalHits++
		rep := sim.Resolve(ctx, req)
		rep.Resolver = p.id
		rep.Cached = true
		next, _ := rep.NextBackward()
		rep.To = next
		ctx.Send(rep)
		return
	}
	// Miss: climb the tree ("every object will be passed down along the
	// hierarchy from the root to the leaf proxy", §III.2).
	p.stats.ForwardOrigin++
	req.Sender = p.id
	req.Path = append(req.Path, p.id)
	req.To = p.parent
	ctx.Send(req)
}

func (p *Proxy) receiveReply(ctx sim.Context, rep *msg.Reply) {
	p.stats.RepliesSeen++
	// Hierarchical proxies store every passing object (§III.4's
	// characterisation), with LRU replacement.
	if !p.cache.Contains(rep.Object) {
		p.stats.CacheInsertions++
		if p.cache.Put(rep.Object, struct{}{}) {
			p.stats.CacheEvictions++
		}
	} else {
		p.cache.Get(rep.Object) // refresh recency
	}
	next, _ := rep.NextBackward()
	rep.To = next
	ctx.Send(rep)
}
