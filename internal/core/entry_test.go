package core

import (
	"testing"
	"testing/quick"

	"github.com/adc-sim/adc/internal/ids"
)

func TestNewEntryInitialValues(t *testing.T) {
	e := NewEntry(7, 3, 100)
	if e.Avg != 0 {
		t.Errorf("new entry Avg = %d, want 0 (paper §IV.4)", e.Avg)
	}
	if e.Hits != 1 {
		t.Errorf("new entry Hits = %d, want 1", e.Hits)
	}
	if e.Last != 100 {
		t.Errorf("new entry Last = %d, want 100", e.Last)
	}
	if e.Location != 3 {
		t.Errorf("new entry Location = %v, want Proxy[3]", e.Location)
	}
}

func TestCalcAverageSecondAccessUsesRawGap(t *testing.T) {
	// Paper Fig. 9: "the second time when the object got accessed, the
	// local_time and the timestamp value is used to compute the
	// approximate average rate" — i.e. avg = now − last, not halved.
	e := NewEntry(1, 0, 100)
	e.CalcAverage(150)
	if e.Avg != 50 {
		t.Errorf("second-access Avg = %d, want 50", e.Avg)
	}
	if e.Hits != 2 {
		t.Errorf("Hits = %d, want 2", e.Hits)
	}
	if e.Last != 150 {
		t.Errorf("Last = %d, want 150", e.Last)
	}
}

func TestCalcAverageMovingAverage(t *testing.T) {
	// Third and later accesses: avg = (avg + gap) / 2.
	e := NewEntry(1, 0, 100)
	e.CalcAverage(150) // avg = 50
	e.CalcAverage(250) // avg = (50 + 100) / 2 = 75
	if e.Avg != 75 {
		t.Errorf("third-access Avg = %d, want 75", e.Avg)
	}
	e.CalcAverage(255) // avg = (75 + 5) / 2 = 40
	if e.Avg != 40 {
		t.Errorf("fourth-access Avg = %d, want 40", e.Avg)
	}
	if e.Hits != 4 {
		t.Errorf("Hits = %d, want 4", e.Hits)
	}
}

func TestCalcAverageRecencyBeatsHistory(t *testing.T) {
	// §III.3.1: the HITS value is deliberately ignored; an object hot in
	// the distant past but cold now must age out. After a long gap the
	// average must jump up regardless of how many historical hits exist.
	hot := NewEntry(1, 0, 0)
	for now := int64(1); now <= 100; now++ {
		hot.CalcAverage(now) // 100 requests at gap 1 → avg ≈ 1
	}
	if hot.Avg > 2 {
		t.Fatalf("hot entry Avg = %d, want <= 2", hot.Avg)
	}
	hot.CalcAverage(10_100) // one request after a gap of 10000
	if hot.Avg < 5000 {
		t.Errorf("after a 10k gap Avg = %d, want >= 5000 (recency must dominate)", hot.Avg)
	}
}

func TestAgedAverageFormula(t *testing.T) {
	// Fig. 4: T_age = (T_avg + (T_now − T_last)) / 2.
	e := &Entry{Object: 1, Avg: 100, Last: 500}
	if got := e.AgedAverage(700); got != 150 {
		t.Errorf("AgedAverage(700) = %d, want (100+200)/2 = 150", got)
	}
	if got := e.AgedAverage(500); got != 50 {
		t.Errorf("AgedAverage(500) = %d, want 50", got)
	}
}

// TestKeyOrderEquivalentToAgedOrder is the property the whole ordered-table
// design rests on: for any two entries and any common instant, ordering by
// the static Key equals ordering by the aged average (paper §III.4 claims
// the established table order is stable under aging).
func TestKeyOrderEquivalentToAgedOrder(t *testing.T) {
	prop := func(avg1, last1, avg2, last2 int32, nowOffset uint16) bool {
		a := &Entry{Object: 1, Avg: int64(avg1), Last: int64(last1)}
		b := &Entry{Object: 2, Avg: int64(avg2), Last: int64(last2)}
		now := maxI64(a.Last, b.Last) + int64(nowOffset)
		// Compare unhalved aged values to avoid integer-division
		// ties that the /2 in AgedAverage introduces.
		agedA := a.Avg + (now - a.Last)
		agedB := b.Avg + (now - b.Last)
		if agedA == agedB {
			return a.Key() == b.Key()
		}
		return (agedA < agedB) == (a.Key() < b.Key())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestAgingPreservesRelativeOrder: advancing time never reorders entries.
func TestAgingPreservesRelativeOrder(t *testing.T) {
	a := &Entry{Object: 1, Avg: 10, Last: 90}
	b := &Entry{Object: 2, Avg: 50, Last: 100}
	for _, now := range []int64{100, 200, 1000, 1_000_000} {
		la := a.Avg + (now - a.Last)
		lb := b.Avg + (now - b.Last)
		if (la < lb) != (a.Key() < b.Key()) {
			t.Errorf("at now=%d order by aged value disagrees with Key order", now)
		}
	}
}

func TestLessTieBreaksByObject(t *testing.T) {
	a := &Entry{Object: 5, Avg: 10, Last: 10}
	b := &Entry{Object: 9, Avg: 10, Last: 10}
	if !less(a, b) || less(b, a) {
		t.Error("equal keys must order by ObjectID for determinism")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNone:     "none",
		KindCaching:  "caching",
		KindMultiple: "multiple",
		KindSingle:   "single",
		Kind(42):     "Kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestEntryStringMatchesPaperLayout(t *testing.T) {
	e := &Entry{Object: 52, Location: ids.NodeID(4), Last: 3356, Avg: 123, Hits: 42}
	got := e.String()
	for _, want := range []string{"www.xy52", "Proxy[4]", "3356", "123", "42"} {
		if !contains(got, want) {
			t.Errorf("Entry.String() = %q, missing %q", got, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
