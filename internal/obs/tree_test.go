package obs

import (
	"strings"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

// emit appends events through a tracer so Seq assignment matches production.
func emit(tr *Tracer, evs ...Event) {
	for _, e := range evs {
		tr.Emit(e)
	}
}

func fwd(node, to ids.NodeID, req ids.RequestID, obj ids.ObjectID, reason int64, hops int32) Event {
	e := Ev(KindForward, node)
	e.Req, e.Obj, e.To, e.Arg, e.Hops = req, obj, to, reason, hops
	return e
}

func TestBuildTreesSingleDeliveredRequest(t *testing.T) {
	client := ids.Client(0)
	req := ids.NewRequestID(0, 1)
	obj := ids.ObjectID(42)
	tr := New()

	inject := Ev(KindInject, client)
	inject.Req, inject.Obj, inject.To = req, obj, 0
	hit := Ev(KindHit, 1)
	hit.Req, hit.Obj, hit.Loc = req, obj, 1
	back := Ev(KindBackward, 1)
	back.Req, back.Obj, back.To, back.Loc = req, obj, 0, 1
	deliver := Ev(KindDeliver, client)
	deliver.Req, deliver.Obj, deliver.Loc = req, obj, 1
	emit(tr, inject, fwd(0, 1, req, obj, ReasonLearned, 1), hit, back, deliver)

	trees := BuildTrees(tr.Events())
	if len(trees) != 1 {
		t.Fatalf("%d trees, want 1", len(trees))
	}
	tree := trees[0]
	if tree.Orphan {
		t.Error("tree marked orphan despite inject")
	}
	if !tree.Delivered() {
		t.Error("tree not delivered")
	}
	if tree.Obj != obj || tree.Client != client {
		t.Errorf("tree identity = obj %v client %v, want %v/%v", tree.Obj, tree.Client, obj, client)
	}
	if len(tree.Attempts) != 1 {
		t.Fatalf("%d attempts, want 1", len(tree.Attempts))
	}
	if got := len(tree.Attempts[0].Events); got != 5 {
		t.Errorf("attempt holds %d events, want 5", got)
	}
	if TreeFor(trees, req) != tree {
		t.Error("TreeFor(req) did not find the tree")
	}
	if TreeFor(trees, ids.NewRequestID(0, 99)) != nil {
		t.Error("TreeFor found a tree for an unknown id")
	}
}

// TestBuildTreesRetransmissionIsOneTree is the recovery-protocol contract:
// a dropped-then-retransmitted request must reconstruct as ONE tree with two
// attempts linked by Retry.Prev — never as two orphan fragments.
func TestBuildTreesRetransmissionIsOneTree(t *testing.T) {
	client := ids.Client(0)
	first := ids.NewRequestID(0, 1)
	second := ids.NewRequestID(0, 2)
	obj := ids.ObjectID(7)
	tr := New()

	inject := Ev(KindInject, client)
	inject.Req, inject.Obj, inject.To = first, obj, 0
	drop := Ev(KindDrop, 0)
	drop.Req, drop.Obj, drop.To, drop.Arg = first, obj, 1, DropLoss
	timeout := Ev(KindTimeout, client)
	timeout.Req, timeout.Obj = first, obj
	retry := Ev(KindRetry, client)
	retry.Req, retry.Obj, retry.To, retry.Prev, retry.Arg = second, obj, 0, first, 1
	origin := Ev(KindOriginResolve, ids.Origin)
	origin.Req, origin.Obj = second, obj
	deliver := Ev(KindDeliver, client)
	deliver.Req, deliver.Obj, deliver.Loc, deliver.Arg = second, obj, ids.Origin, 1
	emit(tr, inject, fwd(0, 1, first, obj, ReasonRandom, 1), drop, timeout,
		retry, fwd(0, 1, second, obj, ReasonRandom, 1), origin, deliver)

	trees := BuildTrees(tr.Events())
	if len(trees) != 1 {
		t.Fatalf("%d trees, want 1 (retransmission split into orphans?)", len(trees))
	}
	tree := trees[0]
	if tree.Orphan {
		t.Error("linked retransmission marked orphan")
	}
	if len(tree.Attempts) != 2 {
		t.Fatalf("%d attempts, want 2", len(tree.Attempts))
	}
	a1, a2 := tree.Attempts[0], tree.Attempts[1]
	if a1.ID != first || a2.ID != second {
		t.Errorf("attempt order %v,%v, want %v,%v", a1.ID, a2.ID, first, second)
	}
	if !a1.TimedOut || a1.Delivered {
		t.Errorf("attempt 1 state %+v, want timed out and undelivered", a1)
	}
	if !a2.Delivered {
		t.Errorf("attempt 2 state %+v, want delivered", a2)
	}
	if !tree.Delivered() {
		t.Error("tree not delivered despite successful retry")
	}
	// Both attempt IDs resolve to the same tree.
	if TreeFor(trees, first) != tree || TreeFor(trees, second) != tree {
		t.Error("attempt IDs resolve to different trees")
	}

	var sb strings.Builder
	FormatTree(&sb, tree)
	out := sb.String()
	for _, want := range []string{"attempt 1", "attempt 2", "[timed out]", "[delivered]", "retry #1"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTree output missing %q:\n%s", want, out)
		}
	}
}

func TestBuildTreesOrphans(t *testing.T) {
	obj := ids.ObjectID(3)
	tr := New()

	// A retry whose predecessor never appeared: orphan tree.
	ghostPrev := ids.NewRequestID(1, 50)
	retryReq := ids.NewRequestID(1, 51)
	retry := Ev(KindRetry, ids.Client(1))
	retry.Req, retry.Obj, retry.To, retry.Prev, retry.Arg = retryReq, obj, 0, ghostPrev, 1

	// A forward with no inject (trace started mid-flight): orphan tree.
	midReq := ids.NewRequestID(2, 9)
	emit(tr, retry, fwd(0, 1, midReq, obj, ReasonRandom, 1))

	trees := BuildTrees(tr.Events())
	if len(trees) != 2 {
		t.Fatalf("%d trees, want 2", len(trees))
	}
	for i, tree := range trees {
		if !tree.Orphan {
			t.Errorf("tree %d not marked orphan", i)
		}
	}
	// Orphans still recover the client from the RequestID.
	if got := TreeFor(trees, retryReq).Client; got != ids.Client(1) {
		t.Errorf("orphan retry client = %v, want %v", got, ids.Client(1))
	}
	if got := TreeFor(trees, midReq).Client; got != ids.Client(2) {
		t.Errorf("mid-flight orphan client = %v, want %v", got, ids.Client(2))
	}
}

func TestBuildTreesIgnoresRequestlessEvents(t *testing.T) {
	inv := Ev(KindInvalidate, 2)
	inv.Obj = 5
	inv.Seq = 1
	if got := BuildTrees([]Event{inv}); len(got) != 0 {
		t.Fatalf("request-less event produced %d trees", len(got))
	}
}
