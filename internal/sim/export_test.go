package sim

// SetParallelMergeMin overrides the serial/parallel merge threshold and
// returns a restore function. Determinism tests force the parallel rank+push
// path on workloads far below the production threshold.
func SetParallelMergeMin(n int) (restore func()) {
	old := parallelMergeMin
	parallelMergeMin = n
	return func() { parallelMergeMin = old }
}
