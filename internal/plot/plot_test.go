package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, "x",
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{0.5, 1.5}},
		Series{Name: "b", X: []float64{1, 2}, Y: []float64{3, 4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := "x,a,b\n1,0.5,3\n2,1.5,4\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWriteCSVEscapes(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, `x,label`,
		Series{Name: `he said "hi"`, X: []float64{1}, Y: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"x,label"`) || !strings.Contains(out, `"he said ""hi"""`) {
		t.Errorf("escaping wrong: %q", out)
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, "x"); err == nil {
		t.Error("no series must fail")
	}
	err := WriteCSV(&buf, "x",
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{1}})
	if err == nil {
		t.Error("mismatched lengths must fail")
	}
}

func TestRenderASCIIBasics(t *testing.T) {
	out := RenderASCII("title", 40, 8,
		Series{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}})
	if !strings.Contains(out, "title") || !strings.Contains(out, "up") {
		t.Errorf("missing labels:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + legend + 8 rows + axis + x labels.
	if len(lines) != 12 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// The rising series must put a mark in the top row (max) and the
	// bottom data row (min).
	if !strings.Contains(lines[2], "*") {
		t.Errorf("no mark in top row:\n%s", out)
	}
	if !strings.Contains(lines[9], "*") {
		t.Errorf("no mark in bottom row:\n%s", out)
	}
}

func TestRenderASCIIEmpty(t *testing.T) {
	out := RenderASCII("empty", 40, 8)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestRenderASCIIConstantSeries(t *testing.T) {
	// A flat line must not divide by zero.
	out := RenderASCII("flat", 20, 5,
		Series{Name: "c", X: []float64{0, 1}, Y: []float64{2, 2}})
	if !strings.Contains(out, "*") {
		t.Errorf("flat series not drawn:\n%s", out)
	}
}

func TestRenderASCIIMultipleMarkers(t *testing.T) {
	out := RenderASCII("two", 30, 6,
		Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
		Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
	)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("markers missing:\n%s", out)
	}
}
