package adc

import (
	"fmt"
	"time"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/experiments"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/sim"
)

// Profile parameterises an experiment campaign reproducing the paper's
// evaluation. Scale shrinks the reference setup (3.99 M requests, 5
// proxies, 20k/20k/10k tables, 10k hot objects) proportionally; 0.1
// reproduces every curve's shape in seconds.
type Profile struct {
	// Scale of the paper's setup; default 0.1, 1.0 = full paper scale.
	Scale float64
	// Proxies overrides the array size (default 5).
	Proxies int
	// Seed drives all randomness (default 1).
	Seed int64
	// Entry selects the client entry policy (default random).
	Entry EntryPolicy
	// Backend selects the ordered-table implementation (default btree).
	// Experiments that sweep backends themselves (TimingSweep,
	// BackendComparison) ignore it.
	Backend TableBackend
	// Shards, when positive, runs each simulation on the sharded
	// parallel engine (RuntimeParallel) with that many worker shards.
	// Results are byte-identical to the default sequential execution;
	// experiments whose features need a specific runtime ignore it.
	Shards int
	// Parallel bounds how many independent simulations an experiment
	// runs concurrently (default GOMAXPROCS; 1 forces sequential
	// execution). Results are bit-identical at any width — runs are
	// seeded as in the sequential path and slotted by index — except
	// for wall-clock Elapsed fields, which concurrent execution
	// perturbs; use Parallel = 1 for timing studies.
	Parallel int
	// Progress, when non-nil, is called after each completed simulation
	// with the fan-out state so far. Calls are serialized; use it for CLI
	// progress lines.
	Progress func(info Progress)
}

// Progress is the state of a running fan-out after one more completed
// simulation.
type Progress struct {
	// Done counts completed simulations; Total is the fan-out size.
	Done, Total int
	// Workers is the resolved worker-pool width (the Parallel knob after
	// defaulting to GOMAXPROCS and clamping to the fan-out size).
	Workers int
	// Events is the cumulative number of engine message deliveries across
	// completed simulations; divide by elapsed wall clock for the
	// engine's events/sec throughput.
	Events uint64
}

func (p Profile) toInternal() (experiments.Profile, error) {
	ip := experiments.DefaultProfile()
	if p.Scale != 0 {
		ip.Scale = p.Scale
	}
	if p.Proxies != 0 {
		ip.Proxies = p.Proxies
	}
	if p.Seed != 0 {
		ip.Seed = p.Seed
	}
	switch p.Entry {
	case "", EntryRandom:
	case EntryRoundRobin:
		ip.EntryPolicy = sim.EntryRoundRobin
	case EntryFixed:
		ip.EntryPolicy = sim.EntryFixed
	}
	backend, ok := core.ParseBackend(string(p.Backend))
	if !ok {
		return ip, fmt.Errorf("adc: unknown backend %q", p.Backend)
	}
	ip.Backend = backend
	ip.Shards = p.Shards
	ip.Parallelism = p.Parallel
	if cb := p.Progress; cb != nil {
		ip.Progress = func(info experiments.ProgressInfo) {
			cb(Progress{
				Done:    info.Done,
				Total:   info.Total,
				Workers: info.Workers,
				Events:  info.Events,
			})
		}
	}
	return ip, ip.Validate()
}

// Comparison is the data behind the paper's Figs. 11 and 12: windowed hit
// rate and hops over the request stream for ADC and the hashing baseline.
type Comparison struct {
	ADC     []Point
	Hashing []Point
	CHash   []Point

	ADCHitRate     float64
	HashingHitRate float64
	ADCHops        float64
	HashingHops    float64

	FillEnd   int
	Phase2End int
}

// Compare reproduces Figs. 11–12: one ADC run and one hashing run over the
// same workload. Set includeCHash to add the consistent-hashing baseline.
func Compare(p Profile, includeCHash bool) (*Comparison, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	cmp, err := experiments.Compare(ip, experiments.CompareOptions{IncludeCHash: includeCHash})
	if err != nil {
		return nil, err
	}
	out := &Comparison{
		ADCHitRate:     cmp.ADCSummary.HitRate,
		HashingHitRate: cmp.HashingSummary.HitRate,
		ADCHops:        cmp.ADCSummary.Hops,
		HashingHops:    cmp.HashingSummary.Hops,
		FillEnd:        cmp.FillEnd,
		Phase2End:      cmp.Phase2End,
	}
	out.ADC = convertPoints(cmp.ADC)
	out.Hashing = convertPoints(cmp.Hashing)
	out.CHash = convertPoints(cmp.CHash)
	return out, nil
}

func convertPoints(pts []metrics.Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point(p)
	}
	return out
}

// SweepPoint is one run of the table-size parameter study (Figs. 13–15).
type SweepPoint struct {
	// Table is "single", "multiple" or "caching".
	Table string
	// Size is the swept table's capacity.
	Size int
	// HitRate is the post-fill hit rate (the paper's Fig. 13 metric).
	HitRate float64
	// Hops is the post-fill mean hops per request (Fig. 14).
	Hops float64
	// Elapsed is the run's wall-clock duration (Fig. 15).
	Elapsed time.Duration
}

// Sweep reproduces Figs. 13–14: each mapping table swept over the paper's
// 5k–30k grid (scaled) with the other two at reference size.
func Sweep(p Profile) ([]SweepPoint, error) {
	return sweep(p, experiments.SweepOptions{})
}

// TimingSweep reproduces Fig. 15: the same sweep on the paper-faithful
// O(n) data structures, measuring wall-clock time. It uses a shorter trace
// (the paper's structures are deliberately slow).
func TimingSweep(p Profile) ([]SweepPoint, error) {
	return sweep(p, experiments.SweepOptions{
		PaperFaithfulTiming: true,
		Requests:            1_000_000,
	})
}

func sweep(p Profile, opts experiments.SweepOptions) ([]SweepPoint, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	pts, err := experiments.Sweep(ip, opts)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(pts))
	for i, pt := range pts {
		out[i] = SweepPoint{
			Table:   string(pt.Table),
			Size:    pt.Size,
			HitRate: pt.HitRate,
			Hops:    pt.Hops,
			Elapsed: pt.Elapsed,
		}
	}
	return out, nil
}

// MaxHopsPoint is one run of the forwarding-bound study (an extension: the
// paper exposes the parameter but never sweeps it).
type MaxHopsPoint struct {
	MaxHops int
	HitRate float64
	Hops    float64
}

// MaxHopsSweep measures hit rate and cost against the forwarding bound;
// bound 0 is the paper's unbounded setting.
func MaxHopsSweep(p Profile, bounds []int) ([]MaxHopsPoint, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	pts, err := experiments.MaxHopsSweep(ip, bounds)
	if err != nil {
		return nil, err
	}
	out := make([]MaxHopsPoint, len(pts))
	for i, pt := range pts {
		out[i] = MaxHopsPoint(pt)
	}
	return out, nil
}

// Ablation compares full ADC against one disabled mechanism; hit rates are
// post-fill.
type Ablation struct {
	Name        string
	Full        float64
	Ablated     float64
	FullHops    float64
	AblatedHops float64
}

// SelectiveCachingAblation quantifies §III.4's claim that selective
// caching beats a cache-everything LRU table.
func SelectiveCachingAblation(p Profile) (*Ablation, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	r, err := experiments.SelectiveCachingAblation(ip)
	if err != nil {
		return nil, err
	}
	a := Ablation(*r)
	return &a, nil
}

// AgingAblation quantifies the effect of the Fig. 4 aging rule.
func AgingAblation(p Profile) (*Ablation, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	r, err := experiments.AgingAblation(ip)
	if err != nil {
		return nil, err
	}
	a := Ablation(*r)
	return &a, nil
}

// PreLearnedResult is the §V.2.1 future-work experiment: the identical
// trace replayed twice through one uninterrupted cluster.
type PreLearnedResult struct {
	// FirstPass and SecondPass are each replay's hit rate; the second
	// runs against fully learned ("pre-learned") mapping tables.
	FirstPass  float64
	SecondPass float64
	FirstHops  float64
	SecondHops float64
}

// PreLearned quantifies how much of ADC's Fig. 11 lag is pure learning:
// the second pass of the same trace starts warm and must not lag.
func PreLearned(p Profile) (*PreLearnedResult, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	r, err := experiments.PreLearned(ip)
	if err != nil {
		return nil, err
	}
	return &PreLearnedResult{
		FirstPass:  r.FirstPass,
		SecondPass: r.SecondPass,
		FirstHops:  r.FirstHops,
		SecondHops: r.SecondHops,
	}, nil
}

// ProxyCountPoint is one run of the array-size study: total system cache
// capacity held constant while the proxy count varies.
type ProxyCountPoint struct {
	Proxies int
	HitRate float64
	Hops    float64
}

// ProxyCountSweep measures the cost of distribution: more, smaller
// proxies mean longer searches for the same total capacity.
func ProxyCountSweep(p Profile, counts []int) ([]ProxyCountPoint, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	pts, err := experiments.ProxyCountSweep(ip, counts)
	if err != nil {
		return nil, err
	}
	out := make([]ProxyCountPoint, len(pts))
	for i, pt := range pts {
		out[i] = ProxyCountPoint(pt)
	}
	return out, nil
}

// BaselinePoint is one scheme's result in the all-baselines comparison.
type BaselinePoint struct {
	// Algorithm is "adc", "carp", "chash", "hier" or "coord".
	Algorithm string
	// HitRate and Hops are post-fill rates.
	HitRate float64
	Hops    float64
	// BottleneckShare is the busiest node's share of all proxy-side
	// requests (≈1/N decentralised, ≈0.5 for the coordinator).
	BottleneckShare float64
}

// Baselines compares every implemented scheme over the same workload:
// ADC, the CARP hashing baseline, consistent hashing, the hierarchical
// tree, and the central coordinator of the authors' earlier work.
func Baselines(p Profile) ([]BaselinePoint, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	pts, err := experiments.Baselines(ip)
	if err != nil {
		return nil, err
	}
	out := make([]BaselinePoint, len(pts))
	for i, pt := range pts {
		out[i] = BaselinePoint{
			Algorithm:       pt.Algorithm.String(),
			HitRate:         pt.HitRate,
			Hops:            pt.Hops,
			BottleneckShare: pt.BottleneckShare,
		}
	}
	return out, nil
}

// ResponseResult compares mean virtual-time response between ADC and the
// hashing baseline under the default WAN latency model (§V.2.2's
// qualitative claim, quantified).
type ResponseResult struct {
	// ADCMean and HashingMean are mean response times in virtual ticks
	// (microseconds under the default model).
	ADCMean     float64
	HashingMean float64
	ADCHit      float64
	HashingHit  float64
}

// ResponseTime runs both algorithms on the virtual-time engine.
// openLoopInterval > 0 switches to open-loop injection at that mean
// inter-arrival time (Poisson gaps).
func ResponseTime(p Profile, openLoopInterval int64) (*ResponseResult, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	r, err := experiments.ResponseTime(ip, experiments.ResponseOptions{
		OpenLoopInterval: openLoopInterval,
		Poisson:          openLoopInterval > 0,
	})
	if err != nil {
		return nil, err
	}
	return &ResponseResult{
		ADCMean:     r.ADCMean,
		HashingMean: r.HashingMean,
		ADCHit:      r.ADCHit,
		HashingHit:  r.HashingHit,
	}, nil
}

// BackendPoint is one run of the data-structure study (§V.3.3's proposed
// speed-up, quantified).
type BackendPoint struct {
	// Backend is "list" (paper-faithful), "slice" or "skiplist".
	Backend string
	// Elapsed is the wall-clock runtime of the identical simulation.
	Elapsed time.Duration
	// HitRate confirms behavioural equivalence across backends.
	HitRate float64
}

// LossPoint is one (loss rate, recovery arm) measurement of the resilience
// study — an extension beyond the paper, whose protocol assumes lossless
// transport (§III.1).
type LossPoint struct {
	// Loss is the i.i.d. message loss probability.
	Loss float64
	// Recovery reports whether the timeout/retransmission protocol ran.
	Recovery bool
	// HitRate and MeanResponse cover completed requests only.
	HitRate      float64
	MeanResponse float64
	// Completion is completed/injected logical requests (1 when nothing
	// strands).
	Completion float64
	// Dropped counts discarded transfers; Timeouts, Retries and Abandoned
	// are recovery counters (zero in the no-recovery arm).
	Dropped   uint64
	Timeouts  uint64
	Retries   uint64
	Abandoned uint64
	// LeakedPending is unretired loop-detection state left at run end.
	LeakedPending int
}

// LossSweep measures ADC under i.i.d. message loss, with and without the
// recovery protocol, open-loop on the virtual-time engine. rates nil
// selects 0/0.5/1/2/5%; rec nil selects the reference recovery parameters.
func LossSweep(p Profile, rates []float64, rec *Recovery) ([]LossPoint, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	r, err := experiments.LossSweep(ip, rates, toSimRecovery(rec))
	if err != nil {
		return nil, err
	}
	out := make([]LossPoint, len(r.Points))
	for i, pt := range r.Points {
		out[i] = LossPoint(pt)
	}
	return out, nil
}

// CrashRecoveryResult is the fail-stop convergence study: proxy 0 crashes
// ~40% through the trace and restarts cold (tables lost) ~70% through,
// with the recovery protocol on.
type CrashRecoveryResult struct {
	// CrashAt and RestartAt are the scheduled virtual times in ticks.
	CrashAt, RestartAt int64
	// Series is the windowed hit-rate time series across the run.
	Series []Point
	// BeforeHit, DownHit and AfterHit average the windowed hit rate over
	// the pre-crash, down and post-restart phases.
	BeforeHit, DownHit, AfterHit float64
	// Completion, Dropped and LeakedPending as in LossPoint.
	Completion    float64
	Dropped       uint64
	LeakedPending int
}

// CrashRecovery runs the fail-stop convergence study. rec nil selects the
// reference recovery parameters.
func CrashRecovery(p Profile, rec *Recovery) (*CrashRecoveryResult, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	r, err := experiments.CrashRecovery(ip, toSimRecovery(rec))
	if err != nil {
		return nil, err
	}
	return &CrashRecoveryResult{
		CrashAt:       r.CrashAt,
		RestartAt:     r.RestartAt,
		Series:        convertPoints(r.Series),
		BeforeHit:     r.BeforeHit,
		DownHit:       r.DownHit,
		AfterHit:      r.AfterHit,
		Completion:    r.Completion,
		Dropped:       r.Dropped,
		LeakedPending: r.LeakedPending,
	}, nil
}

// toSimRecovery converts the public pointer form (nil = defaults for
// experiment use) to the internal value form.
func toSimRecovery(r *Recovery) sim.Recovery {
	if r == nil {
		return sim.DefaultRecovery()
	}
	return sim.Recovery{
		Enabled:    true,
		Timeout:    r.Timeout,
		MaxRetries: r.MaxRetries,
		Backoff:    r.Backoff,
		PendingTTL: r.PendingTTL,
	}.Normalize()
}

// BackendComparison times one identical simulation on each ordered-table
// backend.
func BackendComparison(p Profile) ([]BackendPoint, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	pts, err := experiments.BackendComparison(ip, 1_000_000)
	if err != nil {
		return nil, err
	}
	out := make([]BackendPoint, len(pts))
	for i, pt := range pts {
		name := pt.Backend.String()
		if pt.SingleScan {
			name += "+scan"
		}
		out[i] = BackendPoint{Backend: name, Elapsed: pt.Elapsed, HitRate: pt.HitRate}
	}
	return out, nil
}

// ConvergencePoint is one measurement of ADC's self-organization speed:
// how long after an object first appears do the proxies holding a belief
// about its location reach lasting agreement, at one caching-table size.
type ConvergencePoint struct {
	// Size is the scaled caching-table capacity of this run.
	Size int
	// Objects counts distinct objects observed; Converged of them ended
	// the run in lasting location agreement.
	Objects   int
	Converged int
	// MeanTime and MaxTime are virtual ticks from first appearance to the
	// start of the final uninterrupted agreement, over converged objects.
	MeanTime float64
	MaxTime  int64
	// HitRate is the whole-run hit rate, for context.
	HitRate float64
}

// ConvergenceSweep measures location-convergence time against caching-table
// size on the virtual-time runtime, deriving the times from a kind-masked
// request-path trace. sizes nil selects the paper's 5k–30k grid.
func ConvergenceSweep(p Profile, sizes []int) ([]ConvergencePoint, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	pts, err := experiments.ConvergenceSweep(ip, experiments.ConvergenceOptions{Sizes: sizes})
	if err != nil {
		return nil, err
	}
	out := make([]ConvergencePoint, len(pts))
	for i, pt := range pts {
		out[i] = ConvergencePoint(pt)
	}
	return out, nil
}

// ReplicationPoint is one cell of the hot-object replication sweep: one
// algorithm (with the replication knobs set on replicated ADC rows) run
// over the reference shifting-Zipf stream.
type ReplicationPoint struct {
	// Algorithm is "adc", "carp" or "chash"; Replicated marks the ADC
	// rows with the controller on.
	Algorithm    string
	Replicated   bool
	HotThreshold int
	MaxReplicas  int
	// HitRate, MeanResponse and P99Response summarise completed requests
	// (virtual ticks).
	HitRate      float64
	MeanResponse float64
	P99Response  float64
	// MeanWindowShare and MeanWindowPeak are warmup-skipped windowed load
	// statistics: the mean over metric windows of the per-window max/mean
	// reception share, and of the hottest proxy's per-window receptions.
	// The transient post-shift hotspot replication removes is visible
	// only here, not in the run totals.
	MeanWindowShare float64
	MeanWindowPeak  float64
	// MaxMeanShare and GiniShare are the run-total load spreads.
	MaxMeanShare float64
	GiniShare    float64
	// CachedEntries is the cluster-wide cached-object count at the last
	// occupancy snapshot — the capacity cost of multi-homing.
	CachedEntries int
	// Controller counters (zero on non-replicated rows).
	ReplicaPushes uint64
	ReplicaDrops  uint64
	ReplicaHits   uint64
}

// ReplicationOptions parameterises the replication sweep; the zero value
// selects the reference grid (thresholds 2/4/8 × max replicas 2/4/7) and
// stream (30k requests, popularity shift every 3k, 100 hot objects,
// Zipf alpha 2.0).
type ReplicationOptions struct {
	Thresholds  []int
	MaxReplicas []int
	Requests    int
	Period      int
	Population  int
	Alpha       float64
	// WorkloadSeed seeds the stream (0 = profile seed).
	WorkloadSeed int64
}

// ReplicationSweep measures what hot-object replication buys across its
// two knobs, against stock ADC and both hashing baselines on the identical
// open-loop shifting-Zipf stream with queued service. The first three
// points are the baselines (stock ADC, CARP, consistent hashing); the rest
// is the threshold × max-replicas grid in row-major order.
func ReplicationSweep(p Profile, opts ReplicationOptions) ([]ReplicationPoint, error) {
	ip, err := p.toInternal()
	if err != nil {
		return nil, err
	}
	pts, err := experiments.ReplicationSweep(ip, experiments.ReplicationOptions{
		Thresholds:   opts.Thresholds,
		MaxReplicas:  opts.MaxReplicas,
		Requests:     opts.Requests,
		Period:       opts.Period,
		Population:   opts.Population,
		Alpha:        opts.Alpha,
		WorkloadSeed: opts.WorkloadSeed,
	})
	if err != nil {
		return nil, err
	}
	out := make([]ReplicationPoint, len(pts))
	for i, pt := range pts {
		out[i] = ReplicationPoint{
			Algorithm:       pt.Algorithm.String(),
			Replicated:      pt.Replicated,
			HotThreshold:    pt.HotThreshold,
			MaxReplicas:     pt.MaxReplicas,
			HitRate:         pt.HitRate,
			MeanResponse:    pt.MeanResponse,
			P99Response:     pt.P99Response,
			MeanWindowShare: pt.MeanWindowShare,
			MeanWindowPeak:  pt.MeanWindowPeak,
			MaxMeanShare:    pt.MaxMeanShare,
			GiniShare:       pt.GiniShare,
			CachedEntries:   pt.CachedEntries,
			ReplicaPushes:   pt.ReplicaPushes,
			ReplicaDrops:    pt.ReplicaDrops,
			ReplicaHits:     pt.ReplicaHits,
		}
	}
	return out, nil
}
