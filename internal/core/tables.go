package core

import (
	"fmt"

	"github.com/adc-sim/adc/internal/ids"
)

// Config sizes and shapes one proxy's mapping tables. The paper's reference
// configuration is 20k/20k/10k (§V.2).
type Config struct {
	// SingleSize is the single-table capacity (first sightings).
	SingleSize int
	// MultipleSize is the multiple-table capacity (objects seen ≥2×).
	MultipleSize int
	// CachingSize is the caching-table capacity — the local cache size.
	CachingSize int
	// Backend selects the ordered-table implementation (default: the
	// paper's sorted slice).
	Backend Backend
	// SingleScan selects the paper-faithful O(n) linear-search
	// single-table used for the Fig. 15 timing ablation.
	SingleScan bool
	// CacheAdmitAll replaces selective caching with the behaviour the
	// paper ascribes to hierarchical and hashing systems: "every proxy
	// stores all passing objects regardless of its future significance
	// and usually uses the LRU algorithm as the cache replacement
	// strategy" (§III.4). Every Update puts the object straight into an
	// LRU caching table; evicted entries fall back into the
	// single-table so forwarding information survives eviction.
	// Ablation only.
	CacheAdmitAll bool
	// AgingOff disables the aging rule of Fig. 4: tables order by raw
	// average instead of aged average. Ablation only.
	AgingOff bool
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	if c.SingleSize <= 0 {
		return fmt.Errorf("core: single-table size must be positive, got %d", c.SingleSize)
	}
	if c.MultipleSize <= 0 {
		return fmt.Errorf("core: multiple-table size must be positive, got %d", c.MultipleSize)
	}
	if c.CachingSize <= 0 {
		return fmt.Errorf("core: caching-table size must be positive, got %d", c.CachingSize)
	}
	switch c.Backend {
	case BackendSlice, BackendSkipList, BackendList:
	default:
		return fmt.Errorf("core: unknown ordered-table backend %d", int(c.Backend))
	}
	return nil
}

// Tables is one proxy's complete mapping-table state: the single-, multiple-
// and caching tables plus the Update_Entry logic that moves entries between
// them (paper Fig. 8). The caching table doubles as the cache itself — its
// entries "represent actually stored objects" (§III.3.3); since the testbed
// does not move payloads (§V.1), membership is storage.
type Tables struct {
	single   *SingleTable
	multiple Ordered
	caching  Ordered

	admitAll bool
	agingOff bool
}

// NewTables builds the three tables for one proxy.
func NewTables(cfg Config) (*Tables, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	caching := NewOrdered(cfg.CachingSize, cfg.Backend)
	if cfg.CacheAdmitAll {
		caching = newLRUOrdered(cfg.CachingSize)
	}
	return &Tables{
		single:   NewSingleTable(cfg.SingleSize, cfg.SingleScan),
		multiple: NewOrdered(cfg.MultipleSize, cfg.Backend),
		caching:  caching,
		admitAll: cfg.CacheAdmitAll,
		agingOff: cfg.AgingOff,
	}, nil
}

// Single exposes the single-table (read-mostly: dumps, tests, metrics).
func (t *Tables) Single() *SingleTable { return t.single }

// Multiple exposes the multiple-table.
func (t *Tables) Multiple() Ordered { return t.multiple }

// Caching exposes the caching table.
func (t *Tables) Caching() Ordered { return t.caching }

// IsCached reports whether obj is in the local cache, i.e. has a caching-
// table entry.
func (t *Tables) IsCached(obj ids.ObjectID) bool {
	return t.caching.Contains(obj)
}

// Lookup finds the entry for obj, searching "in the order caching table,
// multiple-table and single-table" (§IV.3). It never mutates state.
func (t *Tables) Lookup(obj ids.ObjectID) (*Entry, Kind) {
	if e := t.caching.Get(obj); e != nil {
		return e, KindCaching
	}
	if e := t.multiple.Get(obj); e != nil {
		return e, KindMultiple
	}
	if e := t.single.Get(obj); e != nil {
		return e, KindSingle
	}
	return nil, KindNone
}

// Outcome reports what Update did, so the proxy can maintain its counters
// and tests can assert the promotion/demotion chains.
type Outcome struct {
	// From is the table the entry was found in; KindNone means a new
	// entry was created (Part 4).
	From Kind
	// To is the table the entry ended up in.
	To Kind
	// CacheEvicted is the entry demoted from the caching table into the
	// multiple-table to make room, if any.
	CacheEvicted *Entry
	// MultipleEvicted is the entry demoted from the multiple-table onto
	// the top of the single-table to make room, if any.
	MultipleEvicted *Entry
	// Dropped is the entry that fell off the bottom of the single-table,
	// if any; the system forgets it entirely.
	Dropped *Entry
}

// Update is the paper's Update_Entry(Object, Location) (Fig. 8), executed
// at proxy-local logical time now. It finds the entry (caching, then
// multiple, then single table), folds in the new access via CalcAverage,
// rewrites the location, and applies the promotion rules:
//
//   - caching-table entries are updated in place (re-inserted in order);
//   - multiple-table entries move into the caching table when their aged
//     average beats the cache's worst case, demoting that worst case into
//     the multiple-table;
//   - single-table entries move into the multiple-table under the same
//     rule, demoting the multiple-table's worst onto the single-table top;
//   - unknown objects get a fresh entry on top of the single-table.
//
// A table that is not yet full accepts any candidate; a full table demands
// the candidate beat its current worst entry, matching "newly arriving
// objects have to have a lower average value than the worst case currently
// residing in the table" (§III.3.2).
func (t *Tables) Update(obj ids.ObjectID, loc ids.NodeID, now int64) Outcome {
	if t.admitAll {
		return t.updateLRU(obj, loc, now)
	}

	// Part 1: caching table.
	if e := t.caching.Remove(obj); e != nil {
		e.CalcAverage(now)
		e.Location = loc
		t.caching.Insert(e) // room is guaranteed: we just removed e
		return Outcome{From: KindCaching, To: KindCaching}
	}

	// Part 2: multiple-table.
	if e := t.multiple.Remove(obj); e != nil {
		e.CalcAverage(now)
		e.Location = loc
		if t.admits(t.caching, e) {
			out := Outcome{From: KindMultiple, To: KindCaching}
			if evicted := t.caching.Insert(e); evicted != nil {
				// The demoted worst returns to the
				// multiple-table, which has room because e
				// just left it.
				t.multiple.Insert(evicted)
				out.CacheEvicted = evicted
			}
			return out
		}
		t.multiple.Insert(e)
		return Outcome{From: KindMultiple, To: KindMultiple}
	}

	// Part 3: single-table.
	if e := t.single.Remove(obj); e != nil {
		e.CalcAverage(now)
		e.Location = loc
		if t.admits(t.multiple, e) {
			out := Outcome{From: KindSingle, To: KindMultiple}
			if evicted := t.multiple.Insert(e); evicted != nil {
				// The multiple-table's worst goes on top of
				// the single-table (Fig. 8 Part 3); the
				// single-table has room because e just left.
				t.single.InsertTop(evicted)
				out.MultipleEvicted = evicted
			}
			return out
		}
		dropped := t.single.InsertTop(e)
		return Outcome{From: KindSingle, To: KindSingle, Dropped: dropped}
	}

	// Part 4: unknown object — new entry on top of the single-table.
	e := NewEntry(obj, loc, now)
	e.noAge = t.agingOff
	dropped := t.single.InsertTop(e)
	return Outcome{From: KindNone, To: KindSingle, Dropped: dropped}
}

// updateLRU is the CacheAdmitAll ablation: every passing object is cached
// immediately with plain LRU replacement, no selectivity. The entry is
// pulled from whichever table currently holds it so the usual bookkeeping
// (average, location, single-occupancy invariant) still applies; evictions
// land on top of the single-table so the proxy keeps routing knowledge.
func (t *Tables) updateLRU(obj ids.ObjectID, loc ids.NodeID, now int64) Outcome {
	from := KindCaching
	e := t.caching.Remove(obj)
	if e == nil {
		if e = t.multiple.Remove(obj); e != nil {
			from = KindMultiple
		} else if e = t.single.Remove(obj); e != nil {
			from = KindSingle
		} else {
			e = NewEntry(obj, loc, now)
			e.noAge = t.agingOff
			from = KindNone
		}
	}
	if from != KindNone {
		e.CalcAverage(now)
		e.Location = loc
	}
	out := Outcome{From: from, To: KindCaching}
	if evicted := t.caching.Insert(e); evicted != nil && evicted != e {
		out.CacheEvicted = evicted
		out.Dropped = t.single.InsertTop(evicted)
	}
	return out
}

// admits reports whether ordered table dst accepts candidate e: a table
// with free space accepts anything; a full table demands the candidate beat
// the worst resident (strictly smaller aged average, i.e. Key).
func (t *Tables) admits(dst Ordered, e *Entry) bool {
	if dst.Cap() == 0 {
		return false
	}
	if dst.Len() < dst.Cap() {
		return true
	}
	worst, ok := dst.WorstKey()
	if !ok {
		return true
	}
	return e.Key() < worst
}

// ForwardLocation resolves the forwarding address for obj from the mapping
// tables (the paper's Forward_Addr, Fig. 6). ok is false when no table has
// an entry, in which case the proxy falls back to random peer selection.
func (t *Tables) ForwardLocation(obj ids.ObjectID) (ids.NodeID, bool) {
	e, kind := t.Lookup(obj)
	if kind == KindNone {
		return ids.None, false
	}
	return e.Location, true
}

// Len returns the total number of entries across the three tables.
func (t *Tables) Len() int {
	return t.single.Len() + t.multiple.Len() + t.caching.Len()
}
