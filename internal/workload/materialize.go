package workload

import (
	"sync"

	"github.com/adc-sim/adc/internal/ids"
)

// Trace is an immutable, fully materialized request stream: the complete
// output of one Generator run held in memory, plus the phase boundaries the
// experiments need. Materializing once and replaying through cheap cursors
// is what lets the parallel experiment runner hand the same workload to
// many concurrent simulations without re-running the generator per sweep
// point.
//
// A Trace is safe for concurrent use: its request slice is written only
// during Materialize and read-only afterwards.
type Trace struct {
	objs      []ids.ObjectID
	fillEnd   int
	phase2End int
}

// Materialize drains a fresh generator for cfg into an immutable Trace.
// The stream is bit-identical to what New(cfg) would emit request by
// request, so simulations driven by a Cursor produce exactly the results
// they would with the live generator.
func Materialize(cfg Config) (*Trace, error) {
	gen, err := New(cfg)
	if err != nil {
		return nil, err
	}
	objs := make([]ids.ObjectID, 0, gen.Total())
	for {
		obj, ok := gen.Next()
		if !ok {
			break
		}
		objs = append(objs, obj)
	}
	fillEnd, phase2End := gen.Boundaries()
	return &Trace{objs: objs, fillEnd: fillEnd, phase2End: phase2End}, nil
}

// NewTrace wraps an already-generated request list (not copied) with its
// phase boundaries. The caller must not mutate objs afterwards.
func NewTrace(objs []ids.ObjectID, fillEnd, phase2End int) *Trace {
	return &Trace{objs: objs, fillEnd: fillEnd, phase2End: phase2End}
}

// Len returns the number of requests in the trace.
func (t *Trace) Len() int { return len(t.objs) }

// Boundaries returns the stream indexes at which phases 2 and 3 begin.
func (t *Trace) Boundaries() (fillEnd, phase2End int) {
	return t.fillEnd, t.phase2End
}

// Objects exposes the materialized request list. The slice is shared with
// every cursor: treat it as read-only.
func (t *Trace) Objects() []ids.ObjectID { return t.objs }

// Cursor returns a fresh, independent replay cursor positioned at the
// start of the trace. Cursors are cheap (one allocation) and each is
// single-goroutine like any Source; distinct cursors over one Trace may be
// consumed concurrently.
func (t *Trace) Cursor() *Cursor { return &Cursor{trace: t} }

// Cursor replays a Trace as a workload.Source.
type Cursor struct {
	trace *Trace
	pos   int
}

var _ Source = (*Cursor)(nil)

// Next implements Source.
func (c *Cursor) Next() (ids.ObjectID, bool) {
	if c.pos >= len(c.trace.objs) {
		return 0, false
	}
	obj := c.trace.objs[c.pos]
	c.pos++
	return obj, true
}

// Total implements Source.
func (c *Cursor) Total() int { return len(c.trace.objs) }

// Boundaries returns the underlying trace's phase boundaries.
func (c *Cursor) Boundaries() (fillEnd, phase2End int) {
	return c.trace.Boundaries()
}

// Reset rewinds the cursor for another replay.
func (c *Cursor) Reset() { c.pos = 0 }

// TraceCache materializes each distinct Config's stream exactly once and
// shares the immutable Trace between all callers — the workload half of the
// parallel experiment runner. Concurrent Gets for the same Config block on
// a single generation (singleflight); distinct Configs generate
// independently. The cache keeps at most max traces and evicts the least
// recently used one, bounding memory across long experiment campaigns.
type TraceCache struct {
	mu      sync.Mutex
	max     int
	entries map[Config]*traceEntry
	// order tracks use recency, oldest first.
	order []Config
}

type traceEntry struct {
	once  sync.Once
	trace *Trace
	err   error
}

// NewTraceCache returns a cache bounded to max traces (minimum 1).
func NewTraceCache(max int) *TraceCache {
	if max < 1 {
		max = 1
	}
	return &TraceCache{max: max, entries: make(map[Config]*traceEntry)}
}

// Get returns the materialized trace for cfg, generating it on first use.
// The error, if any, is also cached: a config that cannot generate fails
// fast on every subsequent Get.
func (c *TraceCache) Get(cfg Config) (*Trace, error) {
	c.mu.Lock()
	e, ok := c.entries[cfg]
	if !ok {
		e = &traceEntry{}
		c.entries[cfg] = e
		c.order = append(c.order, cfg)
		if len(c.order) > c.max {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
	} else {
		c.touch(cfg)
	}
	c.mu.Unlock()

	e.once.Do(func() { e.trace, e.err = Materialize(cfg) })
	return e.trace, e.err
}

// touch moves cfg to the most-recently-used end. Caller holds mu.
func (c *TraceCache) touch(cfg Config) {
	for i, k := range c.order {
		if k == cfg {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), cfg)
			return
		}
	}
}

// Len returns the number of cached (or in-flight) traces.
func (c *TraceCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached trace, releasing their memory to the GC.
func (c *TraceCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Config]*traceEntry)
	c.order = nil
}
