// Command adctop is a live terminal dashboard for a running ADC proxy
// farm. It polls every proxy's /metrics endpoint (the internal/promtext
// exposition the proxies serve) and renders farm-wide rates, per-stage
// latency quantiles and per-proxy health in place — the thing to keep open
// while an adcload -chaos run kills proxies underneath it:
//
//	adctop http://127.0.0.1:40001 http://127.0.0.1:40002 ...
//	adctop -interval 2s ...
//	adctop -once ...                  # one snapshot, no screen control
//
// Rates and quantiles are computed over the polling window (the delta
// between consecutive scrapes), so the display tracks what the farm is
// doing NOW; -once has no window and falls back to lifetime values. A proxy
// that fails to answer shows as DOWN and stays in the table — watching a
// killed proxy disappear from serving while its row goes dark is the whole
// point during chaos runs.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/promtext"
)

// snapshot is one proxy's parsed /metrics scrape.
type snapshot struct {
	target string
	at     time.Time
	err    error // scrape or parse failure; other fields are zero

	proxy     string // adc_proxy_info{proxy="..."}
	uptime    float64
	requests  float64
	localHits float64
	shed      float64
	coalesced float64
	queue     float64
	spans     float64
	peersDown int
	breakers  int
	// stages holds the cumulative latency buckets per stage name.
	stages map[string][]promtext.Bucket
}

// scrape fetches and parses one proxy's exposition.
func scrape(client *http.Client, target string) *snapshot {
	s := &snapshot{target: target, at: time.Now()}
	resp, err := client.Get(strings.TrimRight(target, "/") + "/metrics")
	if err != nil {
		s.err = err
		return s
	}
	defer resp.Body.Close() //nolint:errcheck // read side
	if resp.StatusCode != http.StatusOK {
		s.err = fmt.Errorf("/metrics status %d", resp.StatusCode)
		return s
	}
	d, err := promtext.Parse(resp.Body)
	if err != nil {
		s.err = err
		return s
	}
	s.requests, _ = d.Value("adc_requests_total")
	s.localHits, _ = d.Value("adc_local_hits_total")
	s.shed, _ = d.Value("adc_shed_total")
	s.coalesced, _ = d.Value("adc_coalesced_misses_total")
	s.queue, _ = d.Value("adc_queue_depth")
	s.spans, _ = d.Value("adc_trace_spans")
	s.uptime, _ = d.Value("adc_uptime_seconds")
	if f := d.Families["adc_proxy_info"]; f != nil && len(f.Samples) > 0 {
		s.proxy = f.Samples[0].Label("proxy")
	}
	if f := d.Families["adc_peer_state"]; f != nil {
		for _, smp := range f.Samples {
			if smp.Value == 2 { // down (1 = suspect, 3 = recovering)
				s.peersDown++
			}
		}
	}
	if f := d.Families["adc_breaker_state"]; f != nil {
		s.breakers = len(f.Samples) // only tripped circuits emit series
	}
	s.stages = make(map[string][]promtext.Bucket, metrics.NumStages)
	for st := metrics.Stage(0); st < metrics.NumStages; st++ {
		if b := d.Buckets("adc_stage_latency_seconds", promtext.L("stage", st.String())); len(b) > 0 {
			s.stages[st.String()] = b
		}
	}
	return s
}

// scrapeAll polls every target concurrently, preserving target order.
func scrapeAll(client *http.Client, targets []string) []*snapshot {
	out := make([]*snapshot, len(targets))
	var wg sync.WaitGroup
	wg.Add(len(targets))
	for i, t := range targets {
		go func(i int, t string) {
			defer wg.Done()
			out[i] = scrape(client, t)
		}(i, t)
	}
	wg.Wait()
	return out
}

// counterDelta is cur-prev guarded against a counter reset (proxy restart):
// a negative delta reports the post-restart absolute value instead.
func counterDelta(cur, prev float64) float64 {
	if d := cur - prev; d >= 0 {
		return d
	}
	return cur
}

// deltaBuckets subtracts the previous scrape's cumulative buckets, leaving
// the polling window's observations. Shape mismatch or a reset falls back
// to the current cumulative buckets.
func deltaBuckets(cur, prev []promtext.Bucket) []promtext.Bucket {
	if len(prev) != len(cur) {
		return cur
	}
	out := make([]promtext.Bucket, len(cur))
	for i, b := range cur {
		if prev[i].LE != b.LE || prev[i].Cum > b.Cum {
			return cur
		}
		out[i] = promtext.Bucket{LE: b.LE, Cum: b.Cum - prev[i].Cum}
	}
	return out
}

// sumBuckets folds b into acc elementwise (equal shapes; every proxy
// exposes the same bounds). A nil acc starts from b.
func sumBuckets(acc, b []promtext.Bucket) []promtext.Bucket {
	if acc == nil {
		acc = make([]promtext.Bucket, len(b))
		copy(acc, b)
		return acc
	}
	if len(acc) != len(b) {
		return acc
	}
	for i := range acc {
		acc[i].Cum += b[i].Cum
	}
	return acc
}

func fmtSeconds(sec float64) string {
	if sec <= 0 {
		return "-"
	}
	return time.Duration(sec * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func fmtRate(v float64, window time.Duration) string {
	if window <= 0 {
		return fmt.Sprintf("%.0f", v) // -once: lifetime totals, not rates
	}
	return fmt.Sprintf("%.0f", v/window.Seconds())
}

// render writes one dashboard frame. prev supplies the deltas over the
// interval window; nil prev (or a target missing from it) renders lifetime
// values, which is what -once wants (interval 0 labels them as such).
func render(w io.Writer, cur, prev []*snapshot, interval time.Duration) {
	prevFor := make(map[string]*snapshot)
	for _, s := range prev {
		if s != nil && s.err == nil {
			prevFor[s.target] = s
		}
	}

	type row struct {
		s                               *snapshot
		requests, hits, shed, coalesced float64
	}
	var (
		rows      []row
		up        int
		stageSums = map[string][]promtext.Bucket{}
		totReq    float64
		totHits   float64
		totShed   float64
		totCoal   float64
	)
	for _, s := range cur {
		r := row{s: s}
		if s.err == nil {
			up++
			if p := prevFor[s.target]; p != nil {
				r.requests = counterDelta(s.requests, p.requests)
				r.hits = counterDelta(s.localHits, p.localHits)
				r.shed = counterDelta(s.shed, p.shed)
				r.coalesced = counterDelta(s.coalesced, p.coalesced)
				for name, b := range s.stages {
					stageSums[name] = sumBuckets(stageSums[name], deltaBuckets(b, p.stages[name]))
				}
			} else {
				r.requests, r.hits, r.shed, r.coalesced = s.requests, s.localHits, s.shed, s.coalesced
				for name, b := range s.stages {
					stageSums[name] = sumBuckets(stageSums[name], b)
				}
			}
			totReq += r.requests
			totHits += r.hits
			totShed += r.shed
			totCoal += r.coalesced
		}
		rows = append(rows, r)
	}

	window := interval // 0 under -once: totals instead of rates
	hitPct := 0.0
	if totReq > 0 {
		hitPct = 100 * totHits / totReq
	}
	unit := "req/s"
	if window == 0 {
		unit = "req (lifetime)"
	}
	fmt.Fprintf(w, "adc farm  %d/%d up  %s %s  local-hit %.1f%%  shed %s  coalesced %s  %s\n\n",
		up, len(cur), fmtRate(totReq, window), unit, hitPct,
		fmtRate(totShed, window), fmtRate(totCoal, window),
		time.Now().Format("15:04:05"))

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\tcount\tp50\tp99")
	for st := metrics.Stage(0); st < metrics.NumStages; st++ {
		b := stageSums[st.String()]
		if len(b) == 0 || b[len(b)-1].Cum == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", st, b[len(b)-1].Cum,
			fmtSeconds(promtext.HistQuantile(b, 0.50)),
			fmtSeconds(promtext.HistQuantile(b, 0.99)))
	}
	fmt.Fprintln(tw)

	fmt.Fprintf(tw, "proxy\t%s\tshare\tlhit%%\tshed\tqueue\tdown\tbrk\tspans\tuptime\n", unit)
	for _, r := range rows {
		s := r.s
		if s.err != nil {
			fmt.Fprintf(tw, "%s\tDOWN\t-\t-\t-\t-\t-\t-\t-\t%v\n", s.target, scrapeErr(s.err))
			continue
		}
		share, lhit := 0.0, 0.0
		if totReq > 0 {
			share = 100 * r.requests / totReq
		}
		if r.requests > 0 {
			lhit = 100 * r.hits / r.requests
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f%%\t%.1f\t%s\t%.0f\t%d\t%d\t%.0f\t%v\n",
			s.proxy, fmtRate(r.requests, window), share, lhit,
			fmtRate(r.shed, window), s.queue, s.peersDown, s.breakers, s.spans,
			time.Duration(s.uptime*float64(time.Second)).Round(time.Second))
	}
	tw.Flush() //nolint:errcheck // terminal write
}

// scrapeErr compresses a scrape error to something that fits a cell.
func scrapeErr(err error) string {
	msg := err.Error()
	if i := strings.LastIndex(msg, ": "); i >= 0 {
		msg = msg[i+2:]
	}
	if len(msg) > 40 {
		msg = msg[:40]
	}
	return msg
}

func main() {
	interval := flag.Duration("interval", time.Second, "polling interval")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen control)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: adctop [-interval d] [-once] <proxy-url>...")
		flag.PrintDefaults()
	}
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	client := &http.Client{Timeout: 5 * time.Second}

	if *once {
		snaps := scrapeAll(client, targets)
		var buf bytes.Buffer
		render(&buf, snaps, nil, 0)
		_, _ = os.Stdout.Write(buf.Bytes())
		for _, s := range snaps {
			if s.err == nil {
				return
			}
		}
		os.Exit(1) // nothing answered
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	prev := scrapeAll(client, targets)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			fmt.Println()
			return
		case <-ticker.C:
			cur := scrapeAll(client, targets)
			var buf bytes.Buffer
			buf.WriteString("\x1b[H\x1b[2J") // home + clear: redraw in place
			render(&buf, cur, prev, *interval)
			_, _ = os.Stdout.Write(buf.Bytes())
			prev = cur
		}
	}
}
