package transport

import (
	"testing"
	"time"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
)

// TestNetworkStats exercises the per-link counters: a healthy exchange
// reports the active links sorted with zero redials and drops, and a
// severed connection shows up as a redial on the sender's link.
func TestNetworkStats(t *testing.T) {
	nw := NewNetwork()
	sink := &sinkNode{id: 0}
	driver := &sinkNode{id: 1}
	for _, n := range []*sinkNode{sink, driver} {
		if err := nw.Register(n); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	runErr := make(chan error, 1)
	go func() { runErr <- nw.Run(done) }()

	send := func(from, to ids.NodeID, n, base int) {
		ep := nw.endpoints[from]
		for i := 0; i < n; i++ {
			ep.Send(&msg.Request{
				To:     to,
				ID:     ids.RequestID(base + i),
				Object: ids.ObjectID(i),
				Client: from,
				Sender: from,
			})
		}
	}
	send(1, 0, 50, 0)
	send(0, 1, 50, 1000)
	waitCount(t, sink, 50, 10*time.Second)
	waitCount(t, driver, 50, 10*time.Second)

	st := nw.Stats()
	if st.Dropped != 0 {
		t.Errorf("Dropped = %d on a healthy loopback network", st.Dropped)
	}
	if len(st.Links) != 2 {
		t.Fatalf("Stats has %d links, want 2 (one per direction): %+v", len(st.Links), st.Links)
	}
	// Sorted by (From, To) for stable JSON.
	if st.Links[0].From != 0 || st.Links[0].To != 1 || st.Links[1].From != 1 || st.Links[1].To != 0 {
		t.Errorf("links out of order: %+v", st.Links)
	}
	for _, l := range st.Links {
		if l.Redials != 0 || l.Dropped != 0 {
			t.Errorf("link %d->%d: redials=%d dropped=%d on a healthy network",
				l.From, l.To, l.Redials, l.Dropped)
		}
	}

	// Sever the established connection into the sink; the next sends force
	// the 1->0 writer to redial, and Stats must count it.
	nw.endpoints[0].severInbound()
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		send(1, 0, 1, 2000+i)
		if redials(nw, 1, 0) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sender never redialed after the connection was severed")
		}
		time.Sleep(time.Millisecond)
	}

	close(done)
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
}

// redials reads one link's redial count from a stats snapshot.
func redials(nw *Network, from, to ids.NodeID) uint64 {
	for _, l := range nw.Stats().Links {
		if l.From == from && l.To == to {
			return l.Redials
		}
	}
	return 0
}
