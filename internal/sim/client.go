package sim

import (
	"fmt"
	"math/rand"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/workload"
)

// EntryPolicy selects which proxy a client sends each request to.
type EntryPolicy int

// Entry policies.
const (
	// EntryRandom picks a uniformly random proxy per request (default;
	// models independent clients scattered over the network).
	EntryRandom EntryPolicy = iota
	// EntryRoundRobin cycles through the proxies.
	EntryRoundRobin
	// EntryFixed always uses the first proxy — the worst case for
	// hashing schemes and a stress test for ADC's backwarding.
	EntryFixed
)

// String implements fmt.Stringer.
func (p EntryPolicy) String() string {
	switch p {
	case EntryRandom:
		return "random"
	case EntryRoundRobin:
		return "round-robin"
	case EntryFixed:
		return "fixed"
	default:
		return fmt.Sprintf("EntryPolicy(%d)", int(p))
	}
}

// retryTimer is a client's per-attempt timeout message: it carries the
// request ID of the attempt it guards, so a timer that fires after the
// reply arrived (or after a newer retransmission superseded the attempt)
// identifies itself as stale and is ignored. Timers travel through
// Scheduler.After and are never subject to fault-plan loss.
type retryTimer struct {
	to ids.NodeID
	id ids.RequestID
}

// Dest implements msg.Message.
func (t *retryTimer) Dest() ids.NodeID { return t.to }

// Client is the closed-loop request driver: it keeps exactly one request
// outstanding, records each completion, and injects the next request when
// the reply arrives. Closed-loop injection is what makes concurrent and
// distributed runs deliver bit-identical metrics to the sequential engine
// (DESIGN.md §3).
//
// With Recovery enabled (virtual-time engine only) the client additionally
// arms a timeout per attempt and retransmits timed-out requests under a
// fresh request ID with exponential backoff, abandoning the request after
// MaxRetries so the closed loop keeps moving even when a chain is
// permanently stranded.
type Client struct {
	id      ids.NodeID
	src     workload.Source
	proxies []ids.NodeID
	policy  EntryPolicy
	// rng is created on first draw (a rand.Rand is ~5 KB; deterministic
	// entry policies never draw).
	rng       *rand.Rand
	seed      int64
	collector *metrics.Collector
	maxHops   int
	recovery  Recovery

	counter uint64
	rr      int
	done    bool
	// sentAt is the virtual send time of the outstanding request, used
	// to measure response time on virtual-time engines. Retransmissions
	// keep the first attempt's sentAt: response time is user-perceived.
	sentAt int64

	// injected counts logical requests (retransmissions count once).
	injected uint64
	// curID is the outstanding attempt's request ID (0 = none); replies
	// and timers for any other ID are stale. curObj and retries describe
	// the logical request the attempt belongs to, curTimeout the
	// attempt's backoff-scaled timeout.
	curID      ids.RequestID
	curObj     ids.ObjectID
	retries    int
	curTimeout int64

	// onDone, when set, fires once after the last reply is recorded;
	// concurrent runtimes use it to know when to shut down.
	onDone func()

	// tracer and ts are the optional observability hooks; both nil in the
	// default configuration, where every guard is a single branch.
	tracer *obs.Tracer
	ts     *metrics.TimeSeries
}

var (
	_ Node    = (*Client)(nil)
	_ Starter = (*Client)(nil)
)

// ClientConfig assembles a Client.
type ClientConfig struct {
	// Index distinguishes multiple clients; the NodeID is ids.Client(Index).
	Index int
	// Source supplies the request stream.
	Source workload.Source
	// Proxies lists the entry points.
	Proxies []ids.NodeID
	// Policy selects the entry proxy per request (default EntryRandom).
	Policy EntryPolicy
	// Seed drives the EntryRandom choice.
	Seed int64
	// Collector receives one Record per completed request.
	Collector *metrics.Collector
	// MaxHops is copied onto every request (0 = unbounded).
	MaxHops int
	// OnDone fires after the final reply (optional).
	OnDone func()
	// Recovery enables timeouts and retransmission (virtual-time engine
	// only; the zero value keeps the paper-faithful lossless protocol).
	Recovery Recovery
}

// NewClient builds a client driver.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("sim: client %d needs a workload source", cfg.Index)
	}
	if len(cfg.Proxies) == 0 {
		return nil, fmt.Errorf("sim: client %d needs at least one proxy", cfg.Index)
	}
	if cfg.Collector == nil {
		cfg.Collector = metrics.NewCollector(metrics.WithSampleEvery(0))
	}
	cfg.Recovery = cfg.Recovery.Normalize()
	if err := cfg.Recovery.Validate(); err != nil {
		return nil, err
	}
	return &Client{
		id:        ids.Client(cfg.Index),
		src:       cfg.Source,
		proxies:   cfg.Proxies,
		policy:    cfg.Policy,
		seed:      cfg.Seed,
		collector: cfg.Collector,
		maxHops:   cfg.MaxHops,
		recovery:  cfg.Recovery,
		onDone:    cfg.OnDone,
	}, nil
}

// ID implements Node.
func (c *Client) ID() ids.NodeID { return c.id }

// SetOnDone installs the completion callback; it must be called before the
// run starts. Concurrent runtimes use it to learn when traffic has drained.
func (c *Client) SetOnDone(fn func()) { c.onDone = fn }

// AddProxy adds a newly joined proxy to the entry-point set (infrastructure
// growth). Safe only between requests on the sequential engine.
func (c *Client) AddProxy(id ids.NodeID) {
	for _, p := range c.proxies {
		if p == id {
			return
		}
	}
	c.proxies = append(c.proxies, id)
}

// Collector returns the metrics sink.
func (c *Client) Collector() *metrics.Collector { return c.collector }

// SetTracer installs the request tracer (before the run starts).
func (c *Client) SetTracer(t *obs.Tracer) { c.tracer = t }

// SetTimeSeries installs the shared time-series recorder (before the run
// starts; virtual-time engine only).
func (c *Client) SetTimeSeries(ts *metrics.TimeSeries) { c.ts = ts }

// Done reports whether the trace is exhausted and the last reply recorded.
func (c *Client) Done() bool { return c.done }

// Injected returns the number of logical requests injected so far;
// retransmissions of a timed-out request count once.
func (c *Client) Injected() uint64 { return c.injected }

// Start implements Starter: it injects the first request.
func (c *Client) Start(ctx Context) {
	c.sendNext(ctx)
}

// Handle implements Node: replies complete the outstanding request, retry
// timers (recovery mode only) retransmit or abandon it.
func (c *Client) Handle(ctx Context, m msg.Message) {
	switch t := m.(type) {
	case *msg.Reply:
		c.handleReply(ctx, t)
	case *retryTimer:
		c.handleTimeout(ctx, t)
	}
}

func (c *Client) handleReply(ctx Context, rep *msg.Reply) {
	if c.recovery.Enabled && rep.ID != c.curID {
		// A duplicate from a retransmitted chain (the original and the
		// retry both completed), or a reply racing its own abandonment:
		// already recorded once, so only recycle it.
		if c.tracer.Enabled(obs.KindStaleReply) {
			e := obs.Ev(obs.KindStaleReply, c.id)
			e.At = traceNow(ctx)
			e.Req = rep.ID
			e.Obj = rep.Object
			c.tracer.Emit(e)
		}
		c.collector.RecordStaleReply()
		Finish(ctx, rep)
		return
	}
	c.curID = 0 // answered: any further reply or timer for it is stale
	c.collector.Record(!rep.FromOrigin, rep.Hops, rep.PathLen)
	if clk, ok := ctx.(Clock); ok {
		c.collector.RecordResponse(clk.VNow() - c.sentAt)
	}
	if c.tracer.Enabled(obs.KindDeliver) {
		e := obs.Ev(obs.KindDeliver, c.id)
		e.At = traceNow(ctx)
		e.Req = rep.ID
		e.Obj = rep.Object
		e.Loc = rep.Resolver
		e.Hops = int32(rep.Hops)
		if rep.FromOrigin {
			e.Arg = 1
		}
		c.tracer.Emit(e)
	}
	if c.ts != nil {
		c.ts.Complete(traceNow(ctx), !rep.FromOrigin, int32(rep.Hops))
	}
	Finish(ctx, rep) // terminal delivery: the reply recycles
	c.sendNext(ctx)
}

// handleTimeout fires when an attempt's timer expires: stale timers are
// ignored, live ones retransmit under a fresh request ID (so in-flight
// loop-detection state from the dead attempt can never confuse the new
// chain) or abandon the request once the retry budget is spent.
func (c *Client) handleTimeout(ctx Context, t *retryTimer) {
	if !c.recovery.Enabled || t.id != c.curID || c.curID == 0 {
		return
	}
	c.collector.RecordTimeout()
	if c.tracer.Enabled(obs.KindTimeout) {
		e := obs.Ev(obs.KindTimeout, c.id)
		e.At = traceNow(ctx)
		e.Req = c.curID
		e.Obj = c.curObj
		c.tracer.Emit(e)
	}
	c.ts.Timeout(traceNow(ctx))
	if c.retries >= c.recovery.MaxRetries {
		// Permanently stranded: give up so the closed loop keeps moving.
		c.collector.RecordAbandoned()
		if c.tracer.Enabled(obs.KindAbandon) {
			e := obs.Ev(obs.KindAbandon, c.id)
			e.At = traceNow(ctx)
			e.Req = c.curID
			e.Obj = c.curObj
			e.Arg = int64(c.retries)
			c.tracer.Emit(e)
		}
		c.ts.Abandon(traceNow(ctx))
		c.curID = 0
		c.sendNext(ctx)
		return
	}
	c.retries++
	c.collector.RecordRetry()
	c.ts.Retry(traceNow(ctx))
	c.curTimeout = int64(float64(c.curTimeout) * c.recovery.Backoff)
	c.send(ctx)
}

func (c *Client) sendNext(ctx Context) {
	obj, ok := c.src.Next()
	if !ok {
		if !c.done {
			c.done = true
			if c.onDone != nil {
				c.onDone()
			}
		}
		return
	}
	c.injected++
	c.curObj = obj
	c.retries = 0
	c.curTimeout = c.recovery.Timeout
	if clk, ok := ctx.(Clock); ok {
		c.sentAt = clk.VNow()
	}
	if c.ts != nil {
		c.ts.Inject(c.sentAt)
	}
	c.send(ctx)
}

// send issues one attempt (first or retransmission) for the current
// logical request and arms its timeout.
func (c *Client) send(ctx Context) {
	prev := c.curID
	c.counter++
	c.curID = ids.NewRequestID(c.id.ClientIndex(), c.counter)
	req := NewRequest(ctx)
	req.To = c.pickEntry()
	req.ID = c.curID
	req.Object = c.curObj
	req.Client = c.id
	req.Sender = c.id
	req.MaxHops = c.maxHops
	if c.tracer != nil {
		// First attempt of a logical request injects; retransmissions
		// link back to the attempt they supersede so the trace tooling
		// can keep the whole chain in one request tree.
		kind := obs.KindInject
		if c.retries > 0 {
			kind = obs.KindRetry
		}
		if c.tracer.Enabled(kind) {
			e := obs.Ev(kind, c.id)
			e.At = traceNow(ctx)
			e.Req = c.curID
			e.Obj = c.curObj
			e.To = req.To
			e.Prev = prev
			e.Arg = int64(c.retries)
			c.tracer.Emit(e)
		}
	}
	ctx.Send(req)
	if c.recovery.Enabled {
		if sched, ok := ctx.(Scheduler); ok {
			sched.After(c.curTimeout, &retryTimer{to: c.id, id: c.curID})
		}
	}
}

func (c *Client) pickEntry() ids.NodeID {
	switch c.policy {
	case EntryRoundRobin:
		p := c.proxies[c.rr%len(c.proxies)]
		c.rr++
		return p
	case EntryFixed:
		return c.proxies[0]
	default:
		if c.rng == nil {
			c.rng = rand.New(rand.NewSource(c.seed ^ 0x5DEECE66D))
		}
		return c.proxies[c.rng.Intn(len(c.proxies))]
	}
}
