// Package plot renders experiment results as CSV (for external tooling)
// and as ASCII line charts (so `cmd/adcfigures` can show every figure's
// shape directly in a terminal, next to the paper's description).
package plot

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// WriteCSV emits all series as rows of x followed by one y column per
// series. Series are aligned by index; they must share their X vector.
func WriteCSV(w io.Writer, xLabel string, series ...Series) error {
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	n := len(series[0].X)
	for _, s := range series {
		if len(s.X) != n || len(s.Y) != n {
			return fmt.Errorf("plot: series %q has mismatched length", s.Name)
		}
	}
	var b strings.Builder
	b.WriteString(csvEscape(xLabel))
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		b.WriteString(formatFloat(series[0].X[i]))
		for _, s := range series {
			b.WriteByte(',')
			b.WriteString(formatFloat(s.Y[i]))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// markers distinguish up to six series in ASCII charts.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// RenderASCII draws the series into a width×height character grid with
// axis labels, one marker per series, returning the multi-line chart.
func RenderASCII(title string, width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return title + "\n(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-row][col] = mark
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s", markers[si%len(markers)], s.Name)
	}
	b.WriteByte('\n')
	for i, row := range grid {
		var label string
		switch i {
		case 0:
			label = fmt.Sprintf("%9.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%9.3g", minY)
		default:
			label = strings.Repeat(" ", 9)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", 9), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", 9), width/2, minX, width-width/2, maxX)
	return b.String()
}
