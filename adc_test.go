package adc

import (
	"bytes"
	"testing"
)

func smallWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := NewWorkload(WorkloadConfig{Requests: 20_000, Population: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func smallConfig() Config {
	return Config{
		Proxies:       4,
		SingleTable:   200,
		MultipleTable: 200,
		CachingTable:  100,
		Window:        500,
	}
}

func TestRunDefaults(t *testing.T) {
	res, err := Run(smallConfig(), smallWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 20_000 {
		t.Errorf("Requests = %d, want 20000", res.Requests)
	}
	if res.HitRate <= 0 || res.HitRate >= 1 {
		t.Errorf("HitRate = %v", res.HitRate)
	}
	if res.OriginResolved != res.Requests-res.Hits {
		t.Errorf("origin count inconsistent: %d vs %d misses",
			res.OriginResolved, res.Requests-res.Hits)
	}
	if len(res.ProxyStats) != 4 {
		t.Errorf("ProxyStats = %d entries", len(res.ProxyStats))
	}
}

func TestRunAllPublicAlgorithms(t *testing.T) {
	for _, algo := range []Algorithm{ADC, CARP, CHash, Hierarchical, Coordinator} {
		cfg := smallConfig()
		cfg.Algorithm = algo
		res, err := Run(cfg, smallWorkload(t))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Requests != 20_000 {
			t.Errorf("%v processed %d requests", algo, res.Requests)
		}
	}
}

func TestRunAllRuntimesAgree(t *testing.T) {
	var base *Result
	for _, rt := range []Runtime{RuntimeSequential, RuntimeAgents, RuntimeTCP} {
		cfg := smallConfig()
		cfg.Runtime = rt
		res, err := Run(cfg, smallWorkload(t))
		if err != nil {
			t.Fatalf("%v: %v", rt, err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Hits != base.Hits || res.Hops != base.Hops {
			t.Errorf("%v diverged: hits %d vs %d, hops %v vs %v",
				rt, res.Hits, base.Hits, res.Hops, base.Hops)
		}
	}
}

func TestRunVirtualTime(t *testing.T) {
	cfg := smallConfig()
	cfg.Runtime = RuntimeVirtualTime
	res, err := Run(cfg, smallWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanResponse <= 0 || res.MaxResponse < res.MeanResponse {
		t.Errorf("response stats wrong: mean %v max %v", res.MeanResponse, res.MaxResponse)
	}
	// Virtual time must not change behaviour: same hits as sequential.
	seq, err := Run(smallConfig(), smallWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != seq.Hits {
		t.Errorf("virtual-time run diverged: %d vs %d hits", res.Hits, seq.Hits)
	}
}

func TestRunParallelRuntime(t *testing.T) {
	oracle := smallConfig()
	oracle.Runtime = RuntimeVirtualTime
	want, err := Run(oracle, smallWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 1, 3} { // 0 = one shard per CPU
		cfg := smallConfig()
		cfg.Runtime = RuntimeParallel
		cfg.Shards = shards
		res, err := Run(cfg, smallWorkload(t))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Hits != want.Hits || res.MeanResponse != want.MeanResponse {
			t.Errorf("shards=%d diverged from vtime: hits %d vs %d, mean response %v vs %v",
				shards, res.Hits, want.Hits, res.MeanResponse, want.MeanResponse)
		}
	}
	bad := smallConfig()
	bad.Shards = 2 // Shards without RuntimeParallel must be rejected
	if _, err := Run(bad, smallWorkload(t)); err == nil {
		t.Error("Shards on the sequential runtime must fail")
	}
}

func TestRunOpenLoop(t *testing.T) {
	cfg := smallConfig()
	cfg.Runtime = RuntimeVirtualTime
	cfg.OpenLoopInterval = 20_000 // one request per 20ms of virtual time
	cfg.Poisson = true
	res, err := Run(cfg, smallWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 20_000 {
		t.Errorf("open loop completed %d requests", res.Requests)
	}
	if res.MeanResponse <= 0 {
		t.Error("open loop must record response times")
	}
}

func TestOpenLoopRequiresVirtualTime(t *testing.T) {
	cfg := smallConfig()
	cfg.OpenLoopInterval = 100 // sequential runtime: must be rejected
	if _, err := Run(cfg, smallWorkload(t)); err == nil {
		t.Error("open loop on the sequential runtime must fail")
	}
}

func TestResponseTimeExperiment(t *testing.T) {
	r, err := ResponseTime(Profile{Scale: 0.01}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.ADCMean <= r.HashingMean {
		t.Errorf("ADC response %.0f should exceed hashing %.0f (§V.2.2)",
			r.ADCMean, r.HashingMean)
	}
}

func TestPreLearnedExperiment(t *testing.T) {
	r, err := PreLearned(Profile{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if r.SecondPass <= r.FirstPass {
		t.Errorf("warm pass %.3f should beat cold pass %.3f", r.SecondPass, r.FirstPass)
	}
}

func TestProxyCountSweepExperiment(t *testing.T) {
	pts, err := ProxyCountSweep(Profile{Scale: 0.01}, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Proxies != 2 || pts[1].Proxies != 5 {
		t.Errorf("points = %+v", pts)
	}
}

func TestJoinProxyPublicAPI(t *testing.T) {
	cfg := smallConfig()
	cfg.JoinProxyAt = []uint64{10_000}
	res, err := Run(cfg, smallWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ProxyStats) != 5 {
		t.Fatalf("proxy stats = %d entries, want 5 after join", len(res.ProxyStats))
	}
	if res.ProxyStats[4].Requests == 0 {
		t.Error("joined proxy never saw traffic")
	}
	// Churn is rejected off the sequential runtime.
	bad := cfg
	bad.Runtime = RuntimeAgents
	if _, err := Run(bad, smallWorkload(t)); err == nil {
		t.Error("churn on agents runtime must fail")
	}
}

func TestAnalyzeWorkloadPublicAPI(t *testing.T) {
	st := AnalyzeWorkload(NewSliceSource([]uint64{1, 1, 2, 3, 3, 3}))
	if st.Requests != 6 || st.Distinct != 3 || st.OneTimers != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.MaxObjectRequests != 3 {
		t.Errorf("hottest = %d, want 3", st.MaxObjectRequests)
	}
	if st.RecurringShare <= 0.8 || st.RecurringShare >= 0.9 {
		t.Errorf("recurring share = %v, want 5/6", st.RecurringShare)
	}
}

func TestShiftWorkloadPublicAPI(t *testing.T) {
	w, err := NewShiftWorkload(ShiftWorkloadConfig{
		Requests: 10_000, Period: 2_500, Population: 100, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Epochs() != 4 {
		t.Errorf("Epochs = %d, want 4", w.Epochs())
	}
	res, err := Run(smallConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 10_000 {
		t.Errorf("requests = %d", res.Requests)
	}
	w.Reset()
	if n, _ := w.Next(); n == 0 {
		t.Error("reset shift workload must emit again")
	}
	if _, err := NewShiftWorkload(ShiftWorkloadConfig{}); err == nil {
		t.Error("empty shift config must fail")
	}
}

func TestHTTPFarmPublicAPI(t *testing.T) {
	farm, err := NewHTTPFarm(HTTPFarmConfig{
		Proxies:       3,
		SingleTable:   100,
		MultipleTable: 100,
		CachingTable:  50,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer farm.Close() //nolint:errcheck // test teardown

	if _, err := farm.ProxyURL(99); err == nil {
		t.Error("out-of-range proxy index must fail")
	}
	if _, err := farm.Get(99, 1, "x"); err == nil {
		t.Error("out-of-range Get must fail")
	}
	hit, err := farm.Get(0, 7, "t1")
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first fetch cannot hit")
	}
	src := NewSliceSource([]uint64{7, 7, 7, 7, 7, 7, 7, 7})
	requests, hits, err := farm.Run(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if requests != 8 || hits == 0 {
		t.Errorf("requests/hits = %d/%d", requests, hits)
	}
	if farm.OriginResolved() == 0 {
		t.Error("origin never resolved anything")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Algorithm: "nope"}, smallWorkload(t)); err == nil {
		t.Error("bad algorithm must fail")
	}
	if _, err := Run(Config{Entry: "sideways"}, smallWorkload(t)); err == nil {
		t.Error("bad entry policy must fail")
	}
	if _, err := Run(Config{Runtime: "quantum"}, smallWorkload(t)); err == nil {
		t.Error("bad runtime must fail")
	}
	if _, err := Run(Config{Backend: "rope"}, smallWorkload(t)); err == nil {
		t.Error("bad backend must fail")
	}
	if _, err := Run(smallConfig(), nil); err == nil {
		t.Error("nil source must fail")
	}
}

func TestSeriesSampling(t *testing.T) {
	cfg := smallConfig()
	cfg.SampleEvery = 5000
	res, err := Run(cfg, smallWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Errorf("Series = %d points, want 4", len(res.Series))
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a := smallWorkload(t)
	b := smallWorkload(t)
	for {
		x, okA := a.Next()
		y, okB := b.Next()
		if okA != okB {
			t.Fatal("streams ended at different lengths")
		}
		if !okA {
			break
		}
		if x != y {
			t.Fatal("same-seed workloads diverged")
		}
	}
}

func TestWorkloadReset(t *testing.T) {
	w := smallWorkload(t)
	first, _ := w.Next()
	w.Reset()
	again, _ := w.Next()
	if first != again {
		t.Error("Reset must replay the stream")
	}
	fillEnd, phase2End := w.Boundaries()
	if fillEnd <= 0 || phase2End <= fillEnd || w.Population() <= 0 {
		t.Errorf("boundaries/population wrong: %d %d %d", fillEnd, phase2End, w.Population())
	}
}

func TestTraceRoundTripPublic(t *testing.T) {
	src := NewSliceSource([]uint64{3, 1, 4, 1, 5})
	var buf bytes.Buffer
	if err := SaveTrace(&buf, src); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Total() != 5 {
		t.Fatalf("Total = %d", loaded.Total())
	}
	want := []uint64{3, 1, 4, 1, 5}
	for i, w := range want {
		got, ok := loaded.Next()
		if !ok || got != w {
			t.Fatalf("request %d = %d,%v, want %d", i, got, ok, w)
		}
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/trace.bin"
	w := smallWorkload(t)
	if err := SaveTraceFile(path, w); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Total() != 20_000 {
		t.Errorf("Total = %d", loaded.Total())
	}
	// Replaying the trace must give the same result as the generator.
	w2 := smallWorkload(t)
	r1, err := Run(smallConfig(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(smallConfig(), w2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hits != r2.Hits {
		t.Errorf("trace replay diverged: %d vs %d hits", r1.Hits, r2.Hits)
	}
}

func TestCompareSmall(t *testing.T) {
	cmp, err := Compare(Profile{Scale: 0.01}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.ADC) == 0 || len(cmp.Hashing) == 0 {
		t.Fatal("missing series")
	}
	if cmp.ADCHops <= cmp.HashingHops {
		t.Errorf("ADC hops %.2f must exceed hashing %.2f", cmp.ADCHops, cmp.HashingHops)
	}
}

func TestSweepSmall(t *testing.T) {
	pts, err := Sweep(Profile{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 18 { // 3 tables × 6 sizes
		t.Errorf("points = %d, want 18", len(pts))
	}
	seen := map[string]bool{}
	for _, pt := range pts {
		seen[pt.Table] = true
	}
	for _, tbl := range []string{"single", "multiple", "caching"} {
		if !seen[tbl] {
			t.Errorf("table %s missing from sweep", tbl)
		}
	}
}

func TestAblationsSmall(t *testing.T) {
	p := Profile{Scale: 0.02}
	sel, err := SelectiveCachingAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Full <= sel.Ablated {
		t.Errorf("selective %.3f must beat LRU %.3f", sel.Full, sel.Ablated)
	}
	ag, err := AgingAblation(p)
	if err != nil {
		t.Fatal(err)
	}
	if ag.Full <= ag.Ablated {
		t.Errorf("aging-on %.3f must beat aging-off %.3f", ag.Full, ag.Ablated)
	}
}

func TestMaxHopsSweepSmall(t *testing.T) {
	pts, err := MaxHopsSweep(Profile{Scale: 0.01}, []int{1, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
}

func TestBackendComparisonSmall(t *testing.T) {
	pts, err := BackendComparison(Profile{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts[1:] {
		if pt.HitRate != pts[0].HitRate {
			t.Errorf("backend %s hit rate differs: %.4f vs %.4f",
				pt.Backend, pt.HitRate, pts[0].HitRate)
		}
	}
}

func TestAblationKnobsThroughPublicAPI(t *testing.T) {
	base := smallConfig()
	lru := base
	lru.CacheLRU = true
	noAge := base
	noAge.AgingOff = true

	r0, err := Run(base, smallWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(lru, smallWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(noAge, smallWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if r0.Hits == r1.Hits && r0.Hits == r2.Hits {
		t.Error("ablation knobs had no observable effect")
	}
}
