package ids

import "testing"

func TestNewShardMapValidation(t *testing.T) {
	if _, err := NewShardMap(0, 5); err == nil {
		t.Error("expected error for zero shards")
	}
	if _, err := NewShardMap(2, 0); err == nil {
		t.Error("expected error for zero proxy span")
	}
	if _, err := NewShardMap(1, 1); err != nil {
		t.Errorf("minimal map rejected: %v", err)
	}
}

// TestShardMapPartition checks the structural properties the parallel
// engine relies on: totality (every ID maps into range), contiguous proxy
// blocks, client colocation with the home proxy, and the origin on shard 0.
func TestShardMapPartition(t *testing.T) {
	for _, tc := range []struct{ shards, span int }{
		{1, 5}, {2, 5}, {3, 5}, {4, 10}, {8, 10}, {5, 3}, {7, 10000},
	} {
		m, err := NewShardMap(tc.shards, tc.span)
		if err != nil {
			t.Fatal(err)
		}
		if m.Shards() != tc.shards {
			t.Fatalf("Shards() = %d, want %d", m.Shards(), tc.shards)
		}
		if got := m.ShardOf(Origin); got != 0 {
			t.Errorf("shards=%d span=%d: origin on shard %d, want 0", tc.shards, tc.span, got)
		}
		if got := m.ShardOf(None); got < 0 || got >= tc.shards {
			t.Errorf("shards=%d span=%d: None out of range: %d", tc.shards, tc.span, got)
		}
		prev := 0
		populated := make([]bool, tc.shards)
		for p := 0; p < tc.span; p++ {
			s := m.ShardOf(NodeID(p))
			if s < 0 || s >= tc.shards {
				t.Fatalf("shards=%d span=%d: proxy %d out of range: %d", tc.shards, tc.span, p, s)
			}
			if s < prev {
				t.Fatalf("shards=%d span=%d: proxy blocks not contiguous at proxy %d", tc.shards, tc.span, p)
			}
			prev = s
			populated[s] = true
		}
		if tc.shards <= tc.span {
			for s, ok := range populated {
				if !ok {
					t.Errorf("shards=%d span=%d: shard %d owns no proxies", tc.shards, tc.span, s)
				}
			}
		}
		for i := 0; i < 3*tc.span; i++ {
			home := i % tc.span
			if got, want := m.ShardOf(Client(i)), m.ShardOf(NodeID(home)); got != want {
				t.Errorf("shards=%d span=%d: client %d on shard %d, home proxy %d on shard %d",
					tc.shards, tc.span, i, got, home, want)
			}
		}
		// Out-of-span proxy IDs still map into range (defensive totality).
		if got := m.ShardOf(NodeID(tc.span + 100)); got < 0 || got >= tc.shards {
			t.Errorf("shards=%d span=%d: out-of-span proxy maps to %d", tc.shards, tc.span, got)
		}
	}
}
