package proxy

import (
	"math/rand"
	"testing"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
)

// collectCtx records everything a proxy sends, without delivering it.
type collectCtx struct {
	sent []msg.Message
}

func (c *collectCtx) Send(m msg.Message) {
	sim.CountHop(m)
	c.sent = append(c.sent, m)
}

// TestProxySurvivesArbitraryMessageStorm feeds a proxy a fuzz stream of
// structurally odd (but type-correct) messages: replies it never forwarded,
// duplicated request IDs, empty and oversized paths, foreign resolvers.
// The proxy must never panic, never exceed table bounds, and always emit
// exactly one message per received request.
func TestProxySurvivesArbitraryMessageStorm(t *testing.T) {
	peers := []ids.NodeID{0, 1, 2}
	p, err := New(Config{
		ID:    0,
		Peers: peers,
		Tables: core.Config{
			SingleSize: 16, MultipleSize: 8, CachingSize: 4,
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	ctx := &collectCtx{}
	for i := 0; i < 20000; i++ {
		before := len(ctx.sent)
		if rng.Intn(2) == 0 {
			req := &msg.Request{
				To:      0,
				ID:      ids.NewRequestID(rng.Intn(4), uint64(rng.Intn(50))),
				Object:  ids.ObjectID(rng.Intn(64)),
				Client:  ids.Client(rng.Intn(4)),
				Sender:  ids.NodeID(rng.Intn(3)),
				MaxHops: rng.Intn(4),
			}
			for k := rng.Intn(5); k > 0; k-- {
				req.Path = append(req.Path, ids.NodeID(rng.Intn(3)))
			}
			p.Handle(ctx, req)
			if len(ctx.sent) != before+1 {
				t.Fatalf("request %d produced %d sends, want 1", i, len(ctx.sent)-before)
			}
		} else {
			rep := &msg.Reply{
				To:       0,
				ID:       ids.NewRequestID(rng.Intn(4), uint64(rng.Intn(50))),
				Object:   ids.ObjectID(rng.Intn(64)),
				Client:   ids.Client(rng.Intn(4)),
				Resolver: ids.NodeID(rng.Intn(5) - 1), // includes None
				Cached:   rng.Intn(2) == 0,
			}
			for k := rng.Intn(4); k > 0; k-- {
				rep.Path = append(rep.Path, ids.NodeID(rng.Intn(3)))
			}
			p.Handle(ctx, rep)
			if len(ctx.sent) != before+1 {
				t.Fatalf("reply %d produced %d sends, want 1", i, len(ctx.sent)-before)
			}
		}
		tb := p.Tables()
		if tb.Single().Len() > 16 || tb.Multiple().Len() > 8 || tb.Caching().Len() > 4 {
			t.Fatalf("step %d: table bounds violated (%d/%d/%d)",
				i, tb.Single().Len(), tb.Multiple().Len(), tb.Caching().Len())
		}
	}
	// Every emitted message must address a known destination kind.
	for _, m := range ctx.sent {
		d := m.Dest()
		if !d.IsProxy() && d != ids.Origin && !d.IsClient() {
			t.Fatalf("proxy emitted message to invalid destination %v", d)
		}
	}
}

// TestProxyIgnoresForeignMessageTypes: unknown message kinds must be
// dropped silently, not crash the agent.
func TestProxyIgnoresForeignMessageTypes(t *testing.T) {
	p, err := New(Config{
		ID: 0, Peers: []ids.NodeID{0},
		Tables: core.Config{SingleSize: 4, MultipleSize: 4, CachingSize: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &collectCtx{}
	p.Handle(ctx, bogusMessage{})
	if len(ctx.sent) != 0 {
		t.Error("foreign message must be ignored")
	}
}

type bogusMessage struct{}

func (bogusMessage) Dest() ids.NodeID { return 0 }
