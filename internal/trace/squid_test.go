package trace

import (
	"strings"
	"testing"
)

const sampleSquidLog = `
1066036124.531    342 10.0.0.1 TCP_MISS/200 1234 GET http://example.com/index.html - DIRECT/93.184.216.34 text/html
1066036125.103     12 10.0.0.2 TCP_HIT/200 5678 GET http://example.com/logo.png - NONE/- image/png
1066036125.900    221 10.0.0.1 TCP_MISS/200 910 GET http://other.org/page - DIRECT/1.2.3.4 text/html
# a comment line

1066036126.001     10 10.0.0.3 TCP_HIT/200 1234 GET http://example.com/index.html - NONE/- text/html
garbage line that is too short
1066036126.500     80 10.0.0.1 TCP_MISS/404 0 GET notaurl - DIRECT/- -
`

func TestParseSquidLog(t *testing.T) {
	src, stats, err := ParseSquidLog(strings.NewReader(sampleSquidLog))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 4 {
		t.Errorf("requests = %d, want 4", stats.Requests)
	}
	if stats.Distinct != 3 {
		t.Errorf("distinct = %d, want 3", stats.Distinct)
	}
	if stats.Malformed != 2 {
		t.Errorf("malformed = %d, want 2", stats.Malformed)
	}
	objs := Drain(src)
	if len(objs) != 4 {
		t.Fatalf("drained %d requests", len(objs))
	}
	// The repeated URL must map to the same object ID.
	if objs[0] != objs[3] {
		t.Error("repeated URL mapped to different object IDs")
	}
	if objs[0] == objs[1] || objs[1] == objs[2] {
		t.Error("distinct URLs collided")
	}
}

func TestParseSquidLogEmpty(t *testing.T) {
	if _, _, err := ParseSquidLog(strings.NewReader("")); err == nil {
		t.Error("empty log must fail")
	}
	if _, _, err := ParseSquidLog(strings.NewReader("junk\nmore junk\n")); err == nil {
		t.Error("all-malformed log must fail")
	}
}

func TestParseSquidLogAbsolutePathURLs(t *testing.T) {
	log := "1.0 1 h TCP_MISS/200 1 GET /local/path - NONE/- -\n"
	src, stats, err := ParseSquidLog(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 1 || src.Total() != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestFNV1aStability(t *testing.T) {
	// Known FNV-1a 64 vector.
	if got := fnv1a(""); got != 14695981039346656037 {
		t.Errorf("fnv1a(\"\") = %d", got)
	}
	if fnv1a("a") == fnv1a("b") {
		t.Error("trivial collision")
	}
}
