package httpproxy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Deterministic chaos harness for the HTTP farm — the real-network mirror
// of the virtual-time fault plan (faultspec.go at the repo root, DESIGN.md
// §9). A chaos spec is a comma-separated schedule of crash, restart and
// partition events against the in-process farm:
//
//	kill=p3@5s,restart=p3@15s,partition=p1:p2@8s+4s
//
// Clauses:
//
//	kill=P@AT           close proxy P's listener at AT (process crash)
//	restart=P@AT        rebind P on its original port at AT
//	partition=A:B@AT+D  cut A<->B (fetches and probes) at AT for D;
//	                    omit +D to leave the partition open
//
// Proxy references accept "p3" or "3". Durations are Go durations ("5s",
// "250ms") measured from the start of the load run. Unlike the simulator's
// plan (virtual ticks, replayed exactly), this schedule runs in wall-clock
// time: determinism here means the same events fire in the same order at
// the same nominal offsets, not that two runs are byte-identical.

// ChaosAction is one schedule event's kind.
type ChaosAction uint8

const (
	// ChaosKill closes the target proxy's listener.
	ChaosKill ChaosAction = iota
	// ChaosRestart rebinds the target proxy on its original port.
	ChaosRestart
	// ChaosPartition cuts both directions between two proxies.
	ChaosPartition
	// ChaosHeal reverses a partition (generated from the +D span).
	ChaosHeal
)

func (a ChaosAction) String() string {
	switch a {
	case ChaosKill:
		return "kill"
	case ChaosRestart:
		return "restart"
	case ChaosPartition:
		return "partition"
	case ChaosHeal:
		return "heal"
	}
	return "unknown"
}

// ChaosEvent is one scheduled fault, At measured from run start.
type ChaosEvent struct {
	At     time.Duration
	Action ChaosAction
	Proxy  int // Kill/Restart target
	A, B   int // Partition/Heal pair
}

// ChaosPlan is a parsed schedule, events sorted by At.
type ChaosPlan struct {
	Events []ChaosEvent
}

// KillSpans returns, per killed proxy, its kill and restart offsets
// (restart < 0 when the proxy never comes back) — the harness's input for
// time-to-detect/time-to-recover accounting.
func (p *ChaosPlan) KillSpans() map[int][2]time.Duration {
	spans := make(map[int][2]time.Duration)
	for _, ev := range p.Events {
		switch ev.Action {
		case ChaosKill:
			spans[ev.Proxy] = [2]time.Duration{ev.At, -1}
		case ChaosRestart:
			if s, ok := spans[ev.Proxy]; ok {
				s[1] = ev.At
				spans[ev.Proxy] = s
			}
		}
	}
	return spans
}

// ParseChaosSpec parses the comma-separated chaos schedule. An empty spec
// returns an error: a schedule with no events would silently test nothing.
func ParseChaosSpec(spec string) (*ChaosPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("httpproxy: empty chaos spec")
	}
	plan := &ChaosPlan{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("httpproxy: chaos clause %q is not key=value", clause)
		}
		var err error
		switch key {
		case "kill", "restart":
			var proxy int
			var at time.Duration
			proxy, at, err = parseProxyAt(val)
			if err == nil {
				act := ChaosKill
				if key == "restart" {
					act = ChaosRestart
				}
				plan.Events = append(plan.Events, ChaosEvent{At: at, Action: act, Proxy: proxy})
			}
		case "partition":
			var evs []ChaosEvent
			evs, err = parsePartitionClause(val)
			plan.Events = append(plan.Events, evs...)
		default:
			return nil, fmt.Errorf("httpproxy: unknown chaos key %q (want kill, restart or partition)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("httpproxy: chaos clause %q: %w", clause, err)
		}
	}
	sort.SliceStable(plan.Events, func(i, j int) bool { return plan.Events[i].At < plan.Events[j].At })
	return plan, nil
}

// parseProxyAt reads P@AT for kill/restart clauses.
func parseProxyAt(s string) (int, time.Duration, error) {
	node, at, ok := strings.Cut(s, "@")
	if !ok {
		return 0, 0, fmt.Errorf("want PROXY@AT")
	}
	proxy, err := parseProxyRef(node)
	if err != nil {
		return 0, 0, err
	}
	d, err := time.ParseDuration(at)
	if err != nil {
		return 0, 0, err
	}
	if d < 0 {
		return 0, 0, fmt.Errorf("negative offset %v", d)
	}
	return proxy, d, nil
}

// parsePartitionClause reads A:B@AT[+D]; a span expands into a partition
// event and its healing counterpart.
func parsePartitionClause(s string) ([]ChaosEvent, error) {
	pair, at, ok := strings.Cut(s, "@")
	if !ok {
		return nil, fmt.Errorf("want A:B@AT[+D]")
	}
	an, bn, ok := strings.Cut(pair, ":")
	if !ok {
		return nil, fmt.Errorf("want A:B@AT[+D]")
	}
	a, err := parseProxyRef(an)
	if err != nil {
		return nil, err
	}
	b, err := parseProxyRef(bn)
	if err != nil {
		return nil, err
	}
	if a == b {
		return nil, fmt.Errorf("partition needs two distinct proxies, got %d twice", a)
	}
	atStr, spanStr, hasSpan := strings.Cut(at, "+")
	start, err := time.ParseDuration(atStr)
	if err != nil {
		return nil, err
	}
	if start < 0 {
		return nil, fmt.Errorf("negative offset %v", start)
	}
	evs := []ChaosEvent{{At: start, Action: ChaosPartition, A: a, B: b}}
	if hasSpan {
		span, err := time.ParseDuration(spanStr)
		if err != nil {
			return nil, err
		}
		if span <= 0 {
			return nil, fmt.Errorf("partition span must be positive, got %v", span)
		}
		evs = append(evs, ChaosEvent{At: start + span, Action: ChaosHeal, A: a, B: b})
	}
	return evs, nil
}

// parseProxyRef accepts "p3" or "3".
func parseProxyRef(s string) (int, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "p")
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad proxy ref %q (want pN or N)", s)
	}
	return v, nil
}

// Validate checks every event's proxy indices against the farm size.
func (p *ChaosPlan) Validate(proxies int) error {
	for _, ev := range p.Events {
		switch ev.Action {
		case ChaosKill, ChaosRestart:
			if ev.Proxy >= proxies {
				return fmt.Errorf("httpproxy: chaos %s targets proxy %d, farm has %d", ev.Action, ev.Proxy, proxies)
			}
		default:
			if ev.A >= proxies || ev.B >= proxies {
				return fmt.Errorf("httpproxy: chaos %s targets %d:%d, farm has %d", ev.Action, ev.A, ev.B, proxies)
			}
		}
	}
	return nil
}

// AppliedChaos is one executed event with its actual wall-clock offset.
type AppliedChaos struct {
	Event ChaosEvent
	// At is when the event actually fired, measured from start; timer
	// scheduling can land it slightly after Event.At.
	At time.Duration
	// Err is the event's failure, if any (e.g. a restart that could not
	// rebind its port).
	Err error
}

// PlayChaos executes the plan against the farm: it sleeps to each event's
// offset (measured from start) and applies it, until the plan ends or stop
// closes. It blocks — run it in its own goroutine alongside the load — and
// returns the applied events in order.
func (f *Farm) PlayChaos(plan *ChaosPlan, start time.Time, stop <-chan struct{}) []AppliedChaos {
	applied := make([]AppliedChaos, 0, len(plan.Events))
	for _, ev := range plan.Events {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				return applied
			}
		}
		var err error
		switch ev.Action {
		case ChaosKill:
			err = f.Proxies[ev.Proxy].Kill()
		case ChaosRestart:
			err = f.Proxies[ev.Proxy].Restart()
		case ChaosPartition:
			f.Partition(ev.A, ev.B)
		case ChaosHeal:
			f.Heal(ev.A, ev.B)
		}
		applied = append(applied, AppliedChaos{Event: ev, At: time.Since(start), Err: err})
	}
	return applied
}
