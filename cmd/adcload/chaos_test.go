package main

import (
	"runtime"
	"testing"
	"time"
)

// TestChaosKillRestartRecovers is the chaos-smoke gate: a short run that
// kills one of four proxies and restarts it must (a) keep availability
// high outside the outage window, (b) detect the kill and readmit the
// proxy after restart, and (c) tear down without leaking goroutines —
// the whole fault-tolerance layer exercised end to end.
func TestChaosKillRestartRecovers(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg := smokeConfig()
	cfg.Proxies = 4
	cfg.Duration = 3 * time.Second
	cfg.Rate = 400
	cfg.Chaos = "kill=p1@500ms,restart=p1@1500ms"
	cfg.ProbeInterval = 25 * time.Millisecond
	cfg.FailThreshold = 2
	cfg.AvailWindow = 250 * time.Millisecond

	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cr := rep.Chaos
	if cr == nil {
		t.Fatal("chaos run produced no chaos report")
	}
	if len(cr.Events) != 2 {
		t.Fatalf("applied %d events, want 2: %+v", len(cr.Events), cr.Events)
	}
	for _, ev := range cr.Events {
		if ev.Err != "" {
			t.Errorf("event %s p%d failed: %s", ev.Action, ev.Proxy, ev.Err)
		}
	}
	if len(cr.Kills) != 1 {
		t.Fatalf("kill accounting covers %d proxies, want 1: %+v", len(cr.Kills), cr.Kills)
	}
	kill := cr.Kills[0]
	if kill.Proxy != 1 {
		t.Errorf("kill report targets proxy %d, want 1", kill.Proxy)
	}
	// Detection is bounded by probe interval × threshold plus a round
	// trip; at 25ms × 2 even a slow CI box lands well under a second.
	if kill.TimeToDetectSec < 0 {
		t.Error("the killed proxy was never detected")
	} else if kill.TimeToDetectSec > 1.0 {
		t.Errorf("time to detect %.3fs, want under 1s at a 25ms probe interval", kill.TimeToDetectSec)
	}
	if kill.TimeToRecoverSec < 0 {
		t.Error("the restarted proxy was never readmitted by all peers")
	}

	// Clients keep addressing the killed proxy directly (no client-side
	// failover — the dip is the honest cost of the outage), so mid-run
	// windows sag; after restart the farm must be fully available again.
	if cr.FinalAvailability < 0.99 {
		t.Errorf("final availability %.4f, want ≥ 0.99 after recovery", cr.FinalAvailability)
	}
	if len(cr.Windows) == 0 {
		t.Error("availability report has no windows")
	}

	// Errors during the outage are expected; errors beyond the outage
	// window would show up here as a sagging final availability, and a
	// run with zero errors would mean the kill never bit.
	if rep.Errors == 0 && rep.Farm.FailoverOrigin == 0 && rep.Farm.RetriedFetches == 0 {
		t.Error("chaos run shows no errors and no failover activity; the kill had no effect")
	}

	// Goroutine-leak check, as in TestRunSmoke: monitors, breakers, the
	// chaos player and the restarted server must all wind down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before run, %d after\n%s",
				before, now, truncateStacks(string(buf[:n])))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestRetryAfterHonored drives a one-slot, no-queue farm hard enough to
// shed, once with Retry-After honoring off and once on: the run with
// backoff must record retries and no client may error either way.
func TestRetryAfterHonored(t *testing.T) {
	cfg := smokeConfig()
	cfg.MaxActive = 1
	cfg.MaxQueue = -1
	cfg.Warm = 0
	cfg.Rate = 2000
	cfg.Duration = time.Second
	cfg.Conns = 32

	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Skip("farm did not shed at this rate; nothing to retry")
	}
	if rep.ShedRetries != 0 {
		t.Errorf("ShedRetries = %d with honoring disabled, want 0", rep.ShedRetries)
	}

	cfg.RetryAfterMax = 50 * time.Millisecond
	rep, err = run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("retrying run reported %d errors", rep.Errors)
	}
	if rep.Shed > 0 && rep.ShedRetries == 0 {
		t.Errorf("run shed %d requests but honored no Retry-After backoffs", rep.Shed)
	}
}
