package experiments

import (
	"context"
	"fmt"

	"github.com/adc-sim/adc/internal/cluster"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/sim"
)

// Resilience experiments — an extension beyond the paper, which assumes
// lossless transport ("we don't expect the loss of messages", §III.1). The
// loss sweep measures what that assumption is worth: without recovery every
// lost transfer strands a request chain (Completion falls with the loss
// rate and pending entries leak); with the recovery protocol switched on,
// timeouts and retransmission restore completion at the cost of duplicate
// traffic. The crash experiment watches the hit-rate time series dip when a
// proxy fail-stops and re-converge after it restarts cold.

// DefaultLossRates is the loss sweep's x-axis: lossless control up to 5%,
// the upper end of realistic WAN loss.
var DefaultLossRates = []float64{0, 0.005, 0.01, 0.02, 0.05}

// LossPoint is one (loss rate, recovery arm) measurement.
type LossPoint struct {
	// Loss is the i.i.d. message loss probability.
	Loss float64
	// Recovery reports which arm this is.
	Recovery bool
	// HitRate and MeanResponse cover completed requests only.
	HitRate      float64
	MeanResponse float64
	// Completion is completed/injected logical requests.
	Completion float64
	// Dropped counts engine-level discarded transfers.
	Dropped uint64
	// Timeouts, Retries and Abandoned are recovery-protocol counters
	// (zero in the no-recovery arm).
	Timeouts  uint64
	Retries   uint64
	Abandoned uint64
	// LeakedPending is the unretired loop-detection state left across all
	// proxies at run end; recovery's pending TTL drains it to zero.
	LeakedPending int
}

// LossSweepResult is the full sweep, no-recovery and recovery arms
// interleaved per rate.
type LossSweepResult struct {
	Points []LossPoint
}

// LossSweep runs ADC open-loop on the virtual-time engine across loss
// rates, once without and once with the recovery protocol. rates nil
// selects DefaultLossRates; rec zero selects sim.DefaultRecovery for the
// recovery arm.
func LossSweep(p Profile, rates []float64, rec sim.Recovery) (*LossSweepResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(rates) == 0 {
		rates = DefaultLossRates
	}
	if !rec.Enabled {
		rec = sim.DefaultRecovery()
	}
	tr, err := p.trace()
	if err != nil {
		return nil, err
	}
	n := len(rates) * 2
	points := make([]LossPoint, n)
	err = p.forEach("resilience-loss", n, func(_ context.Context, i int) (uint64, error) {
		rate := rates[i/2]
		withRecovery := i%2 == 1
		cfg := p.ClusterConfig(cluster.ADC, p.Tables(), 0)
		forceVirtualTime(&cfg)
		cfg.OpenLoopInterval = openLoopInterval
		if rate > 0 {
			cfg.Faults = &sim.FaultPlan{Seed: p.Seed, Loss: rate}
		}
		if withRecovery {
			cfg.Recovery = rec
		}
		res, err := cluster.Run(cfg, tr.Cursor())
		if err != nil {
			return 0, fmt.Errorf("experiments: loss sweep rate %v: %w", rate, err)
		}
		points[i] = LossPoint{
			Loss:          rate,
			Recovery:      withRecovery,
			HitRate:       res.Summary.HitRate,
			MeanResponse:  res.Summary.MeanResponse,
			Completion:    res.Completion,
			Dropped:       res.Dropped,
			Timeouts:      res.Summary.Timeouts,
			Retries:       res.Summary.Retries,
			Abandoned:     res.Summary.Abandoned,
			LeakedPending: res.LeakedPending,
		}
		return res.Delivered, nil
	})
	if err != nil {
		return nil, err
	}
	return &LossSweepResult{Points: points}, nil
}

// openLoopInterval is the resilience experiments' mean inter-arrival time
// in virtual ticks (1 ms — ~1000 req/s aggregate, the same order as the
// paper's Polygraph peak rate).
const openLoopInterval = 1_000

// CrashRecoveryResult is the fail-stop convergence experiment: one proxy
// crashes ~40% through the trace and restarts cold ~70% through.
type CrashRecoveryResult struct {
	// CrashAt and RestartAt are the scheduled virtual times.
	CrashAt, RestartAt int64
	// Series is client 0's hit-rate time series across the run; the dip
	// after the crash and the re-convergence after the restart are the
	// result.
	Series []metrics.Point
	// BeforeHit, DownHit and AfterHit are windowed hit rates over the
	// three phases of the series (pre-crash, down, post-restart).
	BeforeHit, DownHit, AfterHit float64
	// Completion, Dropped and LeakedPending as in LossPoint.
	Completion    float64
	Dropped       uint64
	LeakedPending int
	// Crashes and Restarts echo the applied fail-stop transitions.
	Crashes, Restarts uint64
}

// CrashRecovery runs ADC open-loop with the recovery protocol on and a
// scheduled fail-stop of proxy 0 (cold restart: tables lost). rec zero
// selects sim.DefaultRecovery.
func CrashRecovery(p Profile, rec sim.Recovery) (*CrashRecoveryResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !rec.Enabled {
		rec = sim.DefaultRecovery()
	}
	tr, err := p.trace()
	if err != nil {
		return nil, err
	}
	// The open-loop clock makes run length predictable: N requests at one
	// injection per interval. Crash at 40%, restart at 70%.
	total := int64(tr.Cursor().Total())
	duration := total * openLoopInterval
	crashAt := duration * 2 / 5
	restartAt := duration * 7 / 10

	cfg := p.ClusterConfig(cluster.ADC, p.Tables(), 0)
	forceVirtualTime(&cfg)
	cfg.OpenLoopInterval = openLoopInterval
	cfg.SampleEvery = sampleEveryFor(total)
	cfg.Recovery = rec
	cfg.CrashProxyAt = []cluster.ProxyCrash{{Proxy: 0, At: crashAt, LoseTables: true}}
	cfg.RestartProxyAt = []cluster.ProxyRestart{{Proxy: 0, At: restartAt}}

	res, err := cluster.Run(cfg, tr.Cursor())
	if err != nil {
		return nil, fmt.Errorf("experiments: crash recovery: %w", err)
	}
	out := &CrashRecoveryResult{
		CrashAt:       crashAt,
		RestartAt:     restartAt,
		Series:        res.Series,
		Completion:    res.Completion,
		Dropped:       res.Dropped,
		LeakedPending: res.LeakedPending,
		Crashes:       res.Faults.Crashes,
		Restarts:      res.Faults.Restarts,
	}
	// Phase boundaries in request indexes: injection is one request per
	// interval, so request k is injected near virtual time k·interval.
	crashReq := uint64(crashAt / openLoopInterval)
	restartReq := uint64(restartAt / openLoopInterval)
	out.BeforeHit = phaseHit(res.Series, 0, crashReq)
	out.DownHit = phaseHit(res.Series, crashReq, restartReq)
	out.AfterHit = phaseHit(res.Series, restartReq, ^uint64(0))
	return out, nil
}

// sampleEveryFor picks a series resolution of ~200 points across the run.
func sampleEveryFor(total int64) uint64 {
	s := uint64(total / 200)
	if s == 0 {
		s = 1
	}
	return s
}

// phaseHit averages the windowed hit rate of the series points falling in
// [from, to) requests.
func phaseHit(series []metrics.Point, from, to uint64) float64 {
	var sum float64
	var n int
	for _, pt := range series {
		if pt.Requests >= from && pt.Requests < to {
			sum += pt.HitRate
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
