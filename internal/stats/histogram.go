package stats

import (
	"fmt"
	"strings"
)

// Histogram counts observations into fixed-width integer buckets; the last
// bucket is an overflow bucket. It is used by the harness to summarise hop
// and path-length distributions.
type Histogram struct {
	width   int
	buckets []uint64
	total   uint64
	sum     uint64
}

// NewHistogram returns a histogram with n buckets of the given width, plus
// an implicit overflow bucket. Both arguments must be positive.
func NewHistogram(n, width int) *Histogram {
	if n <= 0 || width <= 0 {
		panic("stats: histogram dimensions must be positive")
	}
	return &Histogram{width: width, buckets: make([]uint64, n+1)}
}

// Add counts one observation. Negative values land in bucket 0 and
// contribute nothing to the sum.
func (h *Histogram) Add(v int) {
	idx := 0
	if v > 0 {
		idx = v / h.width
		h.sum += uint64(v)
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
	h.total++
}

// Merge folds other's counts into h. Both histograms must have identical
// bucket layout; concurrent load-generator workers each fill a private
// histogram and merge at the end, so the hot path never shares a lock.
func (h *Histogram) Merge(other *Histogram) {
	if h.width != other.width || len(h.buckets) != len(other.buckets) {
		panic("stats: merging histograms with different layouts")
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.total += other.total
	h.sum += other.sum
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Sum returns the sum of all positive observed values — the Prometheus
// histogram _sum companion to Total's _count.
func (h *Histogram) Sum() uint64 { return h.sum }

// CountBelow returns how many observations are known to be < edge: the
// cumulative count of buckets whose upper bound is ≤ edge. For edges
// aligned to the bucket width this is exact; otherwise it rounds down to
// the last whole bucket. The overflow bucket counts only toward +Inf, so
// the Prometheus-format renderer pairs CountBelow for finite `le` bounds
// with Total for the mandatory +Inf bucket.
func (h *Histogram) CountBelow(edge int) uint64 {
	if edge <= 0 {
		return 0
	}
	whole := edge / h.width // buckets [0, whole) have upper bound ≤ edge
	if whole > len(h.buckets)-1 {
		whole = len(h.buckets) - 1
	}
	var cum uint64
	for i := 0; i < whole; i++ {
		cum += h.buckets[i]
	}
	return cum
}

// Count returns the number of observations in bucket i.
func (h *Histogram) Count(i int) uint64 { return h.buckets[i] }

// Buckets returns a copy of the bucket counts (last entry is overflow).
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the bucket
// counts, interpolating linearly within the containing bucket. The
// overflow bucket reports its lower bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 || q < 0 || q > 1 {
		return 0
	}
	target := q * float64(h.total)
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i == len(h.buckets)-1 {
				return float64(i * h.width) // overflow: lower bound
			}
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return float64(i*h.width) + frac*float64(h.width)
		}
		cum = next
	}
	return float64((len(h.buckets) - 1) * h.width)
}

// String renders the histogram as a compact multi-line bar chart.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "(empty histogram)"
	}
	var peak uint64
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		var label string
		if i == len(h.buckets)-1 {
			label = fmt.Sprintf(">=%d", i*h.width)
		} else {
			label = fmt.Sprintf("[%d,%d)", i*h.width, (i+1)*h.width)
		}
		bar := strings.Repeat("#", int(40*c/peak))
		fmt.Fprintf(&b, "%-12s %8d %s\n", label, c, bar)
	}
	return b.String()
}
