package experiments

import (
	"testing"

	"github.com/adc-sim/adc/internal/core"
)

// tinyProfile keeps experiment tests fast: 1% of paper scale.
func tinyProfile() Profile {
	p := DefaultProfile()
	p.Scale = 0.01
	p.Window = 500
	return p
}

func TestProfileValidate(t *testing.T) {
	if err := DefaultProfile().Validate(); err != nil {
		t.Errorf("default profile invalid: %v", err)
	}
	if err := PaperProfile().Validate(); err != nil {
		t.Errorf("paper profile invalid: %v", err)
	}
	bad := DefaultProfile()
	bad.Scale = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero scale must fail")
	}
	bad = DefaultProfile()
	bad.Proxies = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero proxies must fail")
	}
}

func TestProfileScaling(t *testing.T) {
	p := DefaultProfile() // scale 0.1
	if got := p.Requests(); got != 399_000 {
		t.Errorf("Requests = %d, want 399000", got)
	}
	tbl := p.Tables()
	if tbl.SingleSize != 2000 || tbl.MultipleSize != 2000 || tbl.CachingSize != 1000 {
		t.Errorf("tables = %+v", tbl)
	}
	w := p.WorkloadConfig()
	if w.PopulationSize != 1000 {
		t.Errorf("population = %d, want 1000", w.PopulationSize)
	}
	full := PaperProfile()
	if full.Requests() != paperRequests {
		t.Errorf("paper requests = %d", full.Requests())
	}
}

func TestCompareProducesBothSeries(t *testing.T) {
	p := tinyProfile()
	cmp, err := Compare(p, CompareOptions{SampleEvery: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.ADC) == 0 || len(cmp.Hashing) == 0 {
		t.Fatalf("series missing: adc=%d hashing=%d", len(cmp.ADC), len(cmp.Hashing))
	}
	if len(cmp.CHash) != 0 {
		t.Error("CHash series must be absent unless requested")
	}
	if cmp.ADCSummary.Requests != uint64(p.Requests()) {
		t.Errorf("ADC processed %d requests, want %d", cmp.ADCSummary.Requests, p.Requests())
	}
	if cmp.FillEnd <= 0 || cmp.Phase2End <= cmp.FillEnd {
		t.Errorf("phase boundaries wrong: %d, %d", cmp.FillEnd, cmp.Phase2End)
	}
	// Fig. 12's headline: ADC costs more hops than hashing.
	if cmp.ADCSummary.Hops <= cmp.HashingSummary.Hops {
		t.Errorf("ADC hops %.2f should exceed hashing hops %.2f",
			cmp.ADCSummary.Hops, cmp.HashingSummary.Hops)
	}
}

func TestCompareWithCHash(t *testing.T) {
	cmp, err := Compare(tinyProfile(), CompareOptions{IncludeCHash: true, SampleEvery: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.CHash) == 0 || cmp.CHashSummary.Requests == 0 {
		t.Error("CHash series missing despite IncludeCHash")
	}
}

func TestSweepShapes(t *testing.T) {
	p := tinyProfile()
	pts, err := Sweep(p, SweepOptions{Sizes: []int{5_000, 20_000}, Tables: []TableName{TableCaching}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	small, big := pts[0], pts[1]
	if small.Size >= big.Size {
		t.Fatalf("sweep order wrong: %d then %d", small.Size, big.Size)
	}
	// Fig. 13's headline: the caching table dominates the hit rate.
	if small.HitRate >= big.HitRate {
		t.Errorf("hit rate must grow with caching size: %.3f @%d vs %.3f @%d",
			small.HitRate, small.Size, big.HitRate, big.Size)
	}
	for _, pt := range pts {
		if pt.HitRate <= 0 || pt.HitRate >= 1 {
			t.Errorf("implausible hit rate %v", pt.HitRate)
		}
		if pt.Elapsed <= 0 {
			t.Errorf("missing elapsed time")
		}
	}
}

func TestSweepUnknownTable(t *testing.T) {
	_, err := Sweep(tinyProfile(), SweepOptions{Sizes: []int{5000}, Tables: []TableName{"bogus"}})
	if err == nil {
		t.Error("unknown table must fail")
	}
}

func TestMaxHopsSweep(t *testing.T) {
	pts, err := MaxHopsSweep(tinyProfile(), []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	bounded, unbounded := pts[0], pts[1]
	// A bound of 1 forwarding kills most searches: fewer hops and a
	// lower hit rate than the unbounded walk.
	if bounded.Hops >= unbounded.Hops {
		t.Errorf("maxhops=1 hops %.2f should be below unbounded %.2f",
			bounded.Hops, unbounded.Hops)
	}
	if bounded.HitRate > unbounded.HitRate {
		t.Errorf("maxhops=1 hit %.3f should not beat unbounded %.3f",
			bounded.HitRate, unbounded.HitRate)
	}
}

func TestSelectiveCachingAblation(t *testing.T) {
	res, err := SelectiveCachingAblation(tinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	// §III.4: selective caching must beat the LRU cache table.
	if res.Full <= res.Ablated {
		t.Errorf("selective caching %.3f should beat LRU %.3f", res.Full, res.Ablated)
	}
}

func TestAgingAblation(t *testing.T) {
	res, err := AgingAblation(tinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	if res.Full <= 0 || res.Ablated <= 0 {
		t.Fatalf("degenerate ablation result %+v", res)
	}
	// Aging must not hurt: the full algorithm is at least as good.
	if res.Full < res.Ablated-0.02 {
		t.Errorf("aging-on %.3f markedly below aging-off %.3f", res.Full, res.Ablated)
	}
}

func TestPreLearnedSecondPassIsWarm(t *testing.T) {
	r, err := PreLearned(tinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	// The second pass runs on fully learned tables: no fill-phase lag,
	// so its hit rate must clearly beat the cold first pass.
	if r.SecondPass <= r.FirstPass {
		t.Errorf("second pass %.3f must beat cold first pass %.3f",
			r.SecondPass, r.FirstPass)
	}
	if r.SecondHops >= r.FirstHops {
		t.Errorf("warm hops %.2f must be below cold hops %.2f",
			r.SecondHops, r.FirstHops)
	}
}

func TestProxyCountSweep(t *testing.T) {
	pts, err := ProxyCountSweep(tinyProfile(), []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// With total capacity constant, more proxies mean longer searches.
	if pts[1].Hops <= pts[0].Hops {
		t.Errorf("8 proxies should cost more hops than 2: %.2f vs %.2f",
			pts[1].Hops, pts[0].Hops)
	}
	if _, err := ProxyCountSweep(tinyProfile(), []int{0}); err == nil {
		t.Error("invalid proxy count must fail")
	}
}

func TestBaselinesComparison(t *testing.T) {
	pts, err := Baselines(tinyProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("baselines = %d, want 5", len(pts))
	}
	byName := map[string]BaselinePoint{}
	for _, pt := range pts {
		byName[pt.Algorithm.String()] = pt
		if pt.HitRate <= 0 || pt.HitRate >= 1 {
			t.Errorf("%v hit rate %v implausible", pt.Algorithm, pt.HitRate)
		}
	}
	// The coordinator handles every request and reply: its dispatcher
	// must dominate the load distribution.
	if byName["coord"].BottleneckShare < 0.4 {
		t.Errorf("coordinator bottleneck share %.2f, want ≥ 0.4",
			byName["coord"].BottleneckShare)
	}
	// Decentralised hashing spreads load ≈ evenly.
	if byName["carp"].BottleneckShare > 0.4 {
		t.Errorf("CARP bottleneck share %.2f, want ≈ 1/N",
			byName["carp"].BottleneckShare)
	}
	// The shared hierarchy root carries more than a leaf's share.
	if byName["hier"].BottleneckShare <= byName["carp"].BottleneckShare {
		t.Errorf("hierarchy root share %.2f should exceed CARP's %.2f",
			byName["hier"].BottleneckShare, byName["carp"].BottleneckShare)
	}
}

func TestResponseTimeClosedLoop(t *testing.T) {
	r, err := ResponseTime(tinyProfile(), ResponseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ADCMean <= 0 || r.HashingMean <= 0 {
		t.Fatalf("degenerate response times %+v", r)
	}
	// §V.2.2: ADC's longer search paths cost response time.
	if r.ADCMean <= r.HashingMean {
		t.Errorf("ADC response %.0f should exceed hashing %.0f",
			r.ADCMean, r.HashingMean)
	}
	if r.OpenLoop {
		t.Error("closed loop mislabelled")
	}
}

func TestResponseTimeOpenLoop(t *testing.T) {
	r, err := ResponseTime(tinyProfile(), ResponseOptions{
		OpenLoopInterval: 10_000, // one request per 10ms of virtual time
		Poisson:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OpenLoop {
		t.Error("open loop mislabelled")
	}
	if r.ADCMean <= 0 || r.HashingMean <= 0 {
		t.Fatalf("degenerate response times %+v", r)
	}
}

func TestBackendComparison(t *testing.T) {
	pts, err := BackendComparison(tinyProfile(), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	// All backends must be behaviourally identical.
	for _, pt := range pts[1:] {
		if pt.HitRate != pts[0].HitRate {
			t.Errorf("backend %v hit rate %.4f differs from %v's %.4f",
				pt.Backend, pt.HitRate, pts[0].Backend, pts[0].HitRate)
		}
	}
	// The paper-faithful list backend must be the slowest.
	var list, skip BackendPoint
	for _, pt := range pts {
		switch pt.Backend {
		case core.BackendList:
			list = pt
		case core.BackendSkipList:
			skip = pt
		}
	}
	if list.Elapsed <= skip.Elapsed {
		t.Logf("note: list backend (%v) not slower than skip list (%v) at this tiny scale",
			list.Elapsed, skip.Elapsed)
	}
}
