package httpproxy

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/workload"
)

// benchFarm builds a farm for throughput benchmarks and pre-warms it so the
// steady state (mostly proxy hits, converged mapping tables) is what gets
// measured — the regime the paper's testbed runs in after Phase 1.
func benchFarm(b *testing.B, proxies, population int) (*Farm, *workload.Trace) {
	b.Helper()
	f, err := NewFarm(FarmConfig{
		Proxies: proxies,
		Tables:  core.Config{SingleSize: 4096, MultipleSize: 4096, CachingSize: 2048},
		Seed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = f.Close() })
	tr, err := workload.Materialize(workload.Config{
		TotalRequests:  4 * population,
		PopulationSize: population,
		OneTimerProb:   -1,
		Seed:           7,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := f.RunWorkloadN(tr.Cursor(), 7, 4); err != nil {
		b.Fatal(err)
	}
	return f, tr
}

// driveFarm issues b.N requests over the warmed farm from `clients`
// concurrent closed-loop workers and reports req/s.
func driveFarm(b *testing.B, f *Farm, tr *workload.Trace, proxies, clients int) {
	objs := tr.Objects()
	var (
		seq  atomic.Uint64
		hits atomic.Uint64
	)
	b.SetParallelism(clients) // workers = clients × GOMAXPROCS
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			n := seq.Add(1)
			obj := objs[n%uint64(len(objs))]
			hit, err := f.Get(int(n)%proxies, obj, fmt.Sprintf("b%d-%d", n, i))
			if err != nil {
				b.Error(err)
				return
			}
			i++
			if hit {
				hits.Add(1)
			}
		}
	})
	b.StopTimer()
	if b.N > 100 && hits.Load() == 0 {
		b.Fatal("warmed farm served zero hits")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkFarmGet measures end-to-end request throughput of the HTTP farm
// over real loopback sockets: one sequential client, then a fan-in of
// concurrent clients (where connection pooling to the hot resolver is the
// difference between reuse and a fresh handshake per forward). The
// headline number for BENCH_farm.json is the req/s metric.
func BenchmarkFarmGet(b *testing.B) {
	const (
		proxies    = 4
		population = 256
	)
	b.Run("serial", func(b *testing.B) {
		f, tr := benchFarm(b, proxies, population)
		driveFarm(b, f, tr, proxies, 1)
	})
	b.Run("conc=16", func(b *testing.B) {
		f, tr := benchFarm(b, proxies, population)
		driveFarm(b, f, tr, proxies, 16)
	})
}

// BenchmarkFarmMissStorm is the flash-crowd shape: per iteration, 32
// concurrent clients request the same never-seen-before object through one
// proxy. Without miss coalescing every client launches its own upstream
// chain; with it they collapse into one. The origin-fetches/op metric is
// the direct measure.
func BenchmarkFarmMissStorm(b *testing.B) {
	benchMissStorm(b, FarmConfig{
		Proxies: 4,
		Tables:  core.Config{SingleSize: 4096, MultipleSize: 4096, CachingSize: 2048},
		Seed:    1,
	})
}

// BenchmarkFarmMissStormNoCoalesce is the ablation: same storm with
// singleflight disabled, so the origin-fetches/op gap is attributable to
// coalescing alone.
func BenchmarkFarmMissStormNoCoalesce(b *testing.B) {
	benchMissStorm(b, FarmConfig{
		Proxies:    4,
		Tables:     core.Config{SingleSize: 4096, MultipleSize: 4096, CachingSize: 2048},
		Seed:       1,
		NoCoalesce: true,
	})
}

func benchMissStorm(b *testing.B, cfg FarmConfig) {
	b.Helper()
	const stormClients = 32
	f, err := NewFarm(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = f.Close() })
	// Cold IDs: far above anything the warm-up or workload would touch.
	next := uint64(1) << 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := ids.ObjectID(next)
		next++
		var wg sync.WaitGroup
		wg.Add(stormClients)
		for c := 0; c < stormClients; c++ {
			go func(c int) {
				defer wg.Done()
				if _, err := f.Get(0, obj, fmt.Sprintf("s%d-%d", i, c)); err != nil {
					b.Error(err)
				}
			}(c)
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(f.Origin.Resolved())/float64(b.N), "origin-fetches/op")
}
