package core

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

func nodeSetEqual(a, b []ids.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertNodeKeepsSortedSet(t *testing.T) {
	var set []ids.NodeID
	for _, n := range []ids.NodeID{3, 1, 4, 1, 5, 3, 2} {
		set = InsertNode(set, n)
	}
	want := []ids.NodeID{1, 2, 3, 4, 5}
	if !nodeSetEqual(set, want) {
		t.Fatalf("set = %v, want %v", set, want)
	}
	for _, n := range want {
		if !ContainsNode(set, n) {
			t.Errorf("ContainsNode(%d) = false, want true", n)
		}
	}
	if ContainsNode(set, 0) || ContainsNode(set, 6) {
		t.Error("ContainsNode reports absent members")
	}
}

func TestForwardSetAndAddReplica(t *testing.T) {
	tbl := newTestTables(t, 4, 4, 4)
	tbl.Update(1, 2, 100)

	loc, reps, ok := tbl.ForwardSet(1)
	if !ok || loc != 2 || len(reps) != 0 {
		t.Fatalf("ForwardSet = (%v, %v, %v), want (2, [], true)", loc, reps, ok)
	}
	if _, _, ok := tbl.ForwardSet(99); ok {
		t.Fatal("ForwardSet(unknown) ok = true")
	}

	if !tbl.AddReplica(1, 3, 2) {
		t.Fatal("AddReplica(3) = false")
	}
	if tbl.AddReplica(1, 3, 2) {
		t.Error("AddReplica(duplicate) = true")
	}
	if tbl.AddReplica(1, 2, 2) {
		t.Error("AddReplica(Location) = true")
	}
	if tbl.AddReplica(1, ids.Origin, 2) {
		t.Error("AddReplica(origin) = true")
	}
	if !tbl.AddReplica(1, 0, 2) {
		t.Fatal("AddReplica(0) = false")
	}
	if tbl.AddReplica(1, 4, 2) {
		t.Error("AddReplica beyond max = true")
	}
	_, reps, _ = tbl.ForwardSet(1)
	if !nodeSetEqual(reps, []ids.NodeID{0, 3}) {
		t.Fatalf("replicas = %v, want [0 3]", reps)
	}
}

func TestSetReplicasFiltersAndBounds(t *testing.T) {
	tbl := newTestTables(t, 4, 4, 4)
	tbl.Update(1, 2, 100)

	// exclude=5 (self), Location=2, client and origin IDs must all drop;
	// max=2 truncates.
	in := []ids.NodeID{ids.Origin, 0, 1, 2, 3, 5, -12}
	if !tbl.SetReplicas(1, in, 5, 2) {
		t.Fatal("SetReplicas = false")
	}
	_, reps, _ := tbl.ForwardSet(1)
	if !nodeSetEqual(reps, []ids.NodeID{0, 1}) {
		t.Fatalf("replicas = %v, want [0 1]", reps)
	}

	// Empty replacement clears.
	if !tbl.SetReplicas(1, nil, 5, 2) {
		t.Fatal("SetReplicas(nil) = false")
	}
	if _, reps, _ := tbl.ForwardSet(1); reps != nil {
		t.Fatalf("replicas after clear = %v, want nil", reps)
	}

	if tbl.SetReplicas(99, in, 5, 2) {
		t.Error("SetReplicas(unknown) = true")
	}

	tbl.AddReplica(1, 3, 4)
	tbl.ClearReplicas(1)
	if _, reps, _ := tbl.ForwardSet(1); reps != nil {
		t.Fatalf("replicas after ClearReplicas = %v, want nil", reps)
	}
}

func TestForceCacheAdoptsUnknownObject(t *testing.T) {
	tbl := newTestTables(t, 4, 4, 4)
	out, adopted := tbl.ForceCache(7, 1, 50, 0)
	if !adopted {
		t.Fatal("ForceCache = not adopted")
	}
	if out.From != KindNone || out.To != KindCaching {
		t.Fatalf("outcome = %+v, want none→caching", out)
	}
	if !tbl.IsCached(7) {
		t.Fatal("object not cached after ForceCache")
	}
	e, kind := tbl.Lookup(7)
	if kind != KindCaching || e.Location != 1 || e.Hits != 1 {
		t.Fatalf("entry = %+v kind %v, want fresh caching entry at loc 1", e, kind)
	}
}

func TestForceCachePromotesFromSingleAndMultiple(t *testing.T) {
	tbl := newTestTables(t, 4, 4, 4)

	tbl.Update(1, 2, 100) // → single
	out, adopted := tbl.ForceCache(1, 3, 110, 0)
	if !adopted || out.From != KindSingle || out.To != KindCaching {
		t.Fatalf("outcome = %+v adopted=%v, want single→caching", out, adopted)
	}
	e, _ := tbl.Lookup(1)
	if e.Location != 3 || e.Hits != 2 {
		t.Fatalf("entry = %+v, want loc 3 hits 2", e)
	}

	tbl.Update(2, 2, 120)
	tbl.Update(2, 2, 121) // → multiple
	if _, kind := tbl.Lookup(2); kind != KindMultiple {
		t.Fatalf("setup: object 2 kind = %v, want multiple", kind)
	}
	out, adopted = tbl.ForceCache(2, 4, 130, 0)
	if !adopted || out.From != KindMultiple || out.To != KindCaching {
		t.Fatalf("outcome = %+v adopted=%v, want multiple→caching", out, adopted)
	}
	if !tbl.IsCached(2) {
		t.Fatal("object 2 not cached")
	}
}

func TestForceCacheRefreshesCachedEntry(t *testing.T) {
	tbl := newTestTables(t, 4, 4, 4)
	tbl.ForceCache(1, 2, 100, 0)
	out, adopted := tbl.ForceCache(1, 3, 150, 0)
	if !adopted || out.From != KindCaching || out.To != KindCaching {
		t.Fatalf("outcome = %+v adopted=%v, want caching→caching", out, adopted)
	}
	e, _ := tbl.Lookup(1)
	if e.Location != 3 || e.Hits != 2 {
		t.Fatalf("entry = %+v, want loc 3 hits 2", e)
	}
	if tbl.Caching().Len() != 1 {
		t.Fatalf("caching len = %d, want 1", tbl.Caching().Len())
	}
}

func TestForceCacheEvictsWorstResident(t *testing.T) {
	tbl := newTestTables(t, 8, 8, 2)
	// Fill the cache with two hot residents.
	for now := int64(0); now < 20; now += 2 {
		tbl.Update(1, 1, now)
		tbl.Update(2, 1, now+1)
	}
	if tbl.Caching().Len() != 2 {
		t.Fatalf("setup: caching len = %d, want 2", tbl.Caching().Len())
	}
	// Force in a third, hotter-than-worst object (fresh entry at a late
	// time has key avg−last strongly negative).
	out, adopted := tbl.ForceCache(3, 1, 1000, 0)
	if !adopted {
		t.Fatal("ForceCache = not adopted")
	}
	if out.CacheEvicted == nil {
		t.Fatal("no resident evicted from a full cache")
	}
	if _, kind := tbl.Lookup(out.CacheEvicted.Object); kind != KindSingle {
		t.Fatalf("evicted resident kind = %v, want single (demoted)", kind)
	}
	if !tbl.IsCached(3) {
		t.Fatal("forced object not cached")
	}
	tbl.Recycle(out)
}

func TestForceCacheBounceRevertsAdoption(t *testing.T) {
	tbl := newTestTables(t, 8, 8, 2)
	// Residents with strongly negative keys (hot, recent).
	for now := int64(0); now < 1000; now++ {
		tbl.Update(1, 1, now)
		tbl.Update(2, 1, now)
	}
	// A cold candidate seen long ago: huge avg, stale last ⇒ worst key.
	tbl.Update(3, 1, 1)
	tbl.Update(3, 1, 500) // avg 499, last 500 ⇒ key ≈ −1
	e3, kind := tbl.Lookup(3)
	if kind == KindCaching {
		t.Fatal("setup: candidate already cached")
	}
	worst, _ := tbl.Caching().WorstKey()
	if e3.Key() < worst {
		t.Skipf("setup: candidate key %d beats worst %d", e3.Key(), worst)
	}
	from := kind
	out, adopted := tbl.ForceCache(3, 2, 501, 0)
	if adopted {
		t.Fatal("ForceCache adopted into a cache of strictly hotter residents")
	}
	if out.To != from {
		t.Fatalf("bounced entry landed in %v, want back in %v", out.To, from)
	}
	if _, kind := tbl.Lookup(3); kind != from {
		t.Fatalf("Lookup kind = %v, want %v", kind, from)
	}
	if tbl.IsCached(3) {
		t.Fatal("bounced object reported cached")
	}
}

func TestForceCacheBounceForgetsUnknownWhenCacheHot(t *testing.T) {
	tbl := newTestTables(t, 2, 2, 1)
	for now := int64(0); now < 1000; now++ {
		tbl.Update(1, 1, now)
	}
	// Force an unknown object at a time far in the past of the resident's
	// activity: its fresh key (0 − now) must lose to the resident.
	e1, _ := tbl.Lookup(1)
	out, adopted := tbl.ForceCache(9, 2, 3, 0)
	if adopted {
		// Key comparison depends on table state; if adopted the
		// resident must have been demoted, which is also valid.
		if out.CacheEvicted == nil {
			t.Fatal("adopted into full cache without eviction")
		}
		return
	}
	// Bounced fresh entry falls back onto the single-table top.
	if out.To != KindSingle {
		t.Fatalf("bounced fresh entry To = %v, want single", out.To)
	}
	if _, kind := tbl.Lookup(9); kind != KindSingle {
		t.Fatalf("Lookup(9) kind = %v, want single", kind)
	}
	if e1p, kind := tbl.Lookup(1); kind != KindCaching || e1p != e1 {
		t.Fatal("resident disturbed by bounced force")
	}
}

func TestDropCachedDemotesToSingleTop(t *testing.T) {
	tbl := newTestTables(t, 4, 4, 4)
	tbl.ForceCache(1, 2, 100, 0)
	tbl.AddReplica(1, 3, 4)

	out, dropped := tbl.DropCached(1, 0)
	if !dropped {
		t.Fatal("DropCached = false")
	}
	if out.From != KindCaching || out.To != KindSingle {
		t.Fatalf("outcome = %+v, want caching→single", out)
	}
	if tbl.IsCached(1) {
		t.Fatal("object still cached after DropCached")
	}
	e, kind := tbl.Lookup(1)
	if kind != KindSingle {
		t.Fatalf("kind = %v, want single", kind)
	}
	if e.Location != 0 {
		t.Fatalf("location = %v, want fallback 0", e.Location)
	}
	if e.Replicas != nil {
		t.Fatalf("replicas = %v, want nil", e.Replicas)
	}

	if _, dropped := tbl.DropCached(1, 0); dropped {
		t.Error("DropCached on non-cached object = true")
	}
	if _, dropped := tbl.DropCached(99, 0); dropped {
		t.Error("DropCached on unknown object = true")
	}
}

func TestDropCachedKeepsLocationWithoutProxyFallback(t *testing.T) {
	tbl := newTestTables(t, 4, 4, 4)
	tbl.ForceCache(1, 2, 100, 0)
	tbl.DropCached(1, ids.None)
	e, _ := tbl.Lookup(1)
	if e.Location != 2 {
		t.Fatalf("location = %v, want original 2 (no proxy fallback)", e.Location)
	}
}

func TestRecycledEntryHasNoReplicas(t *testing.T) {
	tbl := newTestTables(t, 1, 1, 1)
	tbl.Update(1, 2, 100)
	tbl.AddReplica(1, 3, 4)
	// Drop object 1 off the single-table bottom with a new arrival.
	out := tbl.Update(2, 2, 101)
	if out.Dropped == nil || out.Dropped.Object != 1 {
		t.Fatalf("setup: dropped = %+v, want object 1", out.Dropped)
	}
	tbl.Recycle(out)
	// The recycled slot backs the next allocation; it must come out clean.
	out2 := tbl.Update(3, 2, 102)
	tbl.Recycle(out2)
	e, _ := tbl.Lookup(3)
	if e.Replicas != nil {
		t.Fatalf("recycled entry carries stale replicas %v", e.Replicas)
	}
}
