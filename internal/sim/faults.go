package sim

import (
	"fmt"
	"math/rand"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
)

// This file is the deterministic fault-injection layer. The paper's
// protocol explicitly assumes lossless transport — "we don't expect the
// loss of messages" (§III.1) — and the drop-filter experiments prove the
// consequence: one lost transfer strands its request chain forever. A
// FaultPlan promotes that ad-hoc filter into a first-class, seeded failure
// model (i.i.d. loss, per-link loss, delay jitter, fail-stop crashes) so
// the violation of §III.1 becomes a measurable experiment instead of a
// footnote. Recovery (timeouts, retransmission, pending-entry TTL) is the
// matching client/proxy extension; both are strictly opt-in, and with no
// plan installed the engine's behavior is byte-identical to before.

// FaultPlan is a deterministic failure schedule for the virtual-time
// engine. All randomness derives from the plan's own seeded stream, so the
// same plan against the same workload produces the identical sequence of
// drops, delays and crashes on every run.
type FaultPlan struct {
	// Seed drives the plan's private random stream (loss draws, jitter).
	Seed int64

	// Loss is the i.i.d. probability in [0, 1] that any network transfer
	// is silently discarded. Timer events are never lost: they model
	// node-local clocks, not the network.
	Loss float64

	// LinkLoss overrides add extra loss on specific directed links,
	// applied after the i.i.d. draw.
	LinkLoss []LinkLoss

	// Jitter adds a uniform random delay in [0, Jitter] virtual ticks to
	// every surviving transfer (0 disables).
	Jitter int64

	// Crashes schedules fail-stop node failures at virtual times.
	Crashes []Crash
}

// LinkLoss is a per-directed-link loss rate.
type LinkLoss struct {
	// From and To identify the directed link (sender → receiver).
	From, To ids.NodeID
	// Rate is the loss probability in [0, 1] for transfers on this link.
	Rate float64
}

// Crash is one scheduled fail-stop failure: the node stops receiving at At
// (every delivery addressed to it is discarded) and, if RestartAt is set,
// comes back at that time. Whether its mapping tables survive the outage
// is per-crash configurable; volatile request state (pending passes,
// timers) is always lost.
type Crash struct {
	// Node is the crashing node.
	Node ids.NodeID
	// At is the virtual crash time (must be positive).
	At int64
	// RestartAt is the virtual restart time (0 = the node stays down).
	RestartAt int64
	// LoseTables selects a cold restart: the node's Restart hook is told
	// to rebuild its tables empty instead of keeping them warm.
	LoseTables bool
}

// Validate reports the first malformed field.
func (p *FaultPlan) Validate() error {
	if p.Loss < 0 || p.Loss > 1 {
		return fmt.Errorf("sim: fault plan loss rate %v outside [0, 1]", p.Loss)
	}
	if p.Jitter < 0 {
		return fmt.Errorf("sim: fault plan jitter %d must be non-negative", p.Jitter)
	}
	for _, l := range p.LinkLoss {
		if l.Rate < 0 || l.Rate > 1 {
			return fmt.Errorf("sim: link loss rate %v outside [0, 1]", l.Rate)
		}
	}
	for _, c := range p.Crashes {
		if c.At <= 0 {
			return fmt.Errorf("sim: crash time %d must be positive", c.At)
		}
		if c.RestartAt != 0 && c.RestartAt <= c.At {
			return fmt.Errorf("sim: restart time %d must follow crash time %d", c.RestartAt, c.At)
		}
	}
	return nil
}

// FaultStats counts what a FaultPlan actually did during a run.
type FaultStats struct {
	// LossDrops counts transfers discarded by the i.i.d. loss rate.
	LossDrops uint64
	// LinkDrops counts transfers discarded by a per-link rate.
	LinkDrops uint64
	// CrashDrops counts deliveries discarded because the destination was
	// down (including the down node's own timer messages).
	CrashDrops uint64
	// Crashes and Restarts count applied fail-stop transitions.
	Crashes  uint64
	Restarts uint64
}

// Restartable is implemented by nodes that participate in fail-stop
// crash/restart injection. The engine calls Restart when a crashed node
// comes back: volatile request state must be dropped (in-flight chains
// died with the process), and loseTables selects whether the durable
// mapping tables are rebuilt empty (cold) or kept (warm).
type Restartable interface {
	Restart(loseTables bool)
}

// Recovery configures the opt-in timeout/retransmission protocol — an
// extension beyond the paper's algorithm, which has no provision for loss.
// All durations are virtual ticks; the protocol runs entirely on the
// virtual clock and is deterministic. The zero value is disabled.
type Recovery struct {
	// Enabled turns the protocol on.
	Enabled bool
	// Timeout is the first-attempt client timeout (ticks).
	Timeout int64
	// MaxRetries bounds retransmissions per request; after the last
	// retry times out the request is abandoned (counted, not retried).
	MaxRetries int
	// Backoff multiplies the timeout after every retry (≥ 1).
	Backoff float64
	// PendingTTL expires proxy loop-detection pending entries whose
	// reply never came back, instead of leaking them.
	PendingTTL int64
}

// DefaultRecovery returns the reference recovery parameters, sized against
// DefaultLatencyModel: the timeout clears the longest observed lossless
// response (~211k ticks), and the pending TTL outlives any legitimate
// in-flight chain.
func DefaultRecovery() Recovery {
	return Recovery{
		Enabled:    true,
		Timeout:    400_000, // 400 ms
		MaxRetries: 8,
		Backoff:    2,
		PendingTTL: 1_000_000, // 1 s
	}
}

// Normalize fills zero fields of an enabled Recovery with the defaults; a
// disabled Recovery passes through untouched.
func (r Recovery) Normalize() Recovery {
	if !r.Enabled {
		return r
	}
	d := DefaultRecovery()
	if r.Timeout == 0 {
		r.Timeout = d.Timeout
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = d.MaxRetries
	}
	if r.Backoff == 0 {
		r.Backoff = d.Backoff
	}
	if r.PendingTTL == 0 {
		r.PendingTTL = d.PendingTTL
	}
	return r
}

// Validate reports the first malformed field of an enabled Recovery.
func (r Recovery) Validate() error {
	if !r.Enabled {
		return nil
	}
	if r.Timeout <= 0 {
		return fmt.Errorf("sim: recovery timeout %d must be positive", r.Timeout)
	}
	if r.MaxRetries < 0 {
		return fmt.Errorf("sim: recovery retries %d must be non-negative", r.MaxRetries)
	}
	if r.Backoff < 1 {
		return fmt.Errorf("sim: recovery backoff %v must be at least 1", r.Backoff)
	}
	if r.PendingTTL <= 0 {
		return fmt.Errorf("sim: recovery pending TTL %d must be positive", r.PendingTTL)
	}
	return nil
}

// faultCtl is the engine-internal control event that applies a scheduled
// crash or restart. It travels through the ordinary event queue so fault
// transitions are totally ordered against message deliveries, but it is
// intercepted by the run loop and never reaches a node's Handle.
type faultCtl struct {
	node       ids.NodeID
	restart    bool
	loseTables bool
}

// Dest implements msg.Message.
func (c *faultCtl) Dest() ids.NodeID { return c.node }

// linkKey indexes per-link loss rates.
type linkKey struct{ from, to ids.NodeID }

// faultState is the engine's live view of an installed FaultPlan.
type faultState struct {
	plan  *FaultPlan
	rng   *rand.Rand
	link  map[linkKey]float64
	down  map[ids.NodeID]bool
	stats FaultStats
}

func newFaultState(p *FaultPlan) *faultState {
	f := &faultState{
		plan: p,
		rng:  rand.New(rand.NewSource(p.Seed ^ 0x5FAA17C0DE)),
		down: make(map[ids.NodeID]bool),
	}
	if len(p.LinkLoss) > 0 {
		f.link = make(map[linkKey]float64, len(p.LinkLoss))
		for _, l := range p.LinkLoss {
			f.link[linkKey{l.From, l.To}] = l.Rate
		}
	}
	return f
}

// transfer applies loss and jitter to one Send. It returns the (possibly
// jittered) delay and whether the message survives. The draw order per
// transfer is fixed — i.i.d. loss, link loss, jitter — so the random
// stream is a pure function of the message sequence.
func (f *faultState) transfer(from, to ids.NodeID, delay int64) (int64, bool) {
	if f.plan.Loss > 0 && f.rng.Float64() < f.plan.Loss {
		f.stats.LossDrops++
		return 0, false
	}
	if f.link != nil {
		if rate, ok := f.link[linkKey{from, to}]; ok && rate > 0 && f.rng.Float64() < rate {
			f.stats.LinkDrops++
			return 0, false
		}
	}
	if f.plan.Jitter > 0 {
		delay += f.rng.Int63n(f.plan.Jitter + 1)
	}
	return delay, true
}

// msg.Message compliance for the control event.
var _ msg.Message = (*faultCtl)(nil)
