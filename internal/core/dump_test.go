package core

import (
	"bytes"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

// TestTableDump reproduces the paper's sample-table figures (Figs. 1–3) as
// a golden rendering: a hand-built scenario dumped in the exact row layout
// of the paper (OBJ-ID, PROXY, LAST, AVG, HITS), plus the aged value.
func TestTableDump(t *testing.T) {
	entries := []*Entry{
		{Object: 6, Location: ids.NodeID(3), Last: 1152, Avg: 2, Hits: 434},
		{Object: 5, Location: ids.NodeID(0), Last: 5453, Avg: 5, Hits: 342},
		{Object: 33, Location: ids.NodeID(2), Last: 5254, Avg: 6, Hits: 211},
	}
	var buf bytes.Buffer
	if err := DumpTable(&buf, "Caching Table", entries, 5453); err != nil {
		t.Fatal(err)
	}
	want := "" +
		"Caching Table (3 entries)\n" +
		"OBJ-ID         PROXY        LAST    AVG   HITS   AGED\n" +
		"www.xy6        Proxy[3]     1152      2    434   2151\n" +
		"www.xy5        Proxy[0]     5453      5    342      2\n" +
		"www.xy33       Proxy[2]     5254      6    211    102\n"
	if got := buf.String(); got != want {
		t.Errorf("golden mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestDumpAfterRealTraffic renders a live proxy's tables, checking that
// the structure mirrors the paper's Figs. 1–3: a caching table of hot
// objects, an ordered multiple-table, and an LRU single-table of recent
// first-sightings, with THIS-style self locations possible in each.
func TestDumpAfterRealTraffic(t *testing.T) {
	tbl := newTestTables(t, 6, 4, 2)
	now := int64(0)
	// Hot objects 1-2 (gap 2), warm 10-13 (gap ~8), cold stream 100+.
	cold := ids.ObjectID(100)
	for i := 0; i < 200; i++ {
		now++
		switch i % 4 {
		case 0, 2:
			tbl.Update(ids.ObjectID(1+i%2), 0, now)
		case 1:
			tbl.Update(ids.ObjectID(10+(i/4)%4), 1, now)
		case 3:
			cold++
			tbl.Update(cold, 2, now)
		}
	}
	var buf bytes.Buffer
	if err := tbl.Dump(&buf, now); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, section := range []string{"Caching Table", "Multiple-Table", "Single-Table"} {
		if !bytes.Contains([]byte(out), []byte(section)) {
			t.Errorf("dump missing section %q", section)
		}
	}
	if tbl.Caching().Len() == 0 || tbl.Single().Len() == 0 {
		t.Error("scenario failed to populate the tables")
	}
}
