package sim

import (
	"fmt"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/obs"
)

// LatencyModel assigns a virtual-time cost to every message transfer. The
// units are abstract ticks; the experiments use microseconds so results
// read naturally. The paper counts hops precisely because "a hop is
// regarded as the message transfer" (§V.2.2) — a latency model turns those
// hop counts into the response times the paper discusses qualitatively
// ("ADC has longer systems response than the hashing algorithm").
type LatencyModel struct {
	// ClientProxy is the client↔proxy link latency.
	ClientProxy int64
	// ProxyProxy is the proxy↔proxy link latency.
	ProxyProxy int64
	// ProxyOrigin is the proxy↔origin link latency (usually the far,
	// expensive one).
	ProxyOrigin int64
	// Service is the per-message processing delay at the receiver.
	Service int64

	// QueueService, when true, serializes the Service component per
	// receiving node: a node processes one message at a time, so a node
	// whose arrival rate exceeds 1/Service messages per tick builds a
	// backlog and its response times grow — saturation, which the
	// default additive Service cost cannot express. An uncontended
	// message still pays exactly Service, so closed-loop single-client
	// runs are identical either way; the flag exists for open-loop
	// load-vs-latency studies (hot-proxy and origin bottlenecks).
	// Timer events (After) are not queued, only network transfers.
	QueueService bool
}

// DefaultLatencyModel is a WAN-flavoured model: proxies near the clients,
// the origin far away.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		ClientProxy: 5_000,  // 5 ms
		ProxyProxy:  10_000, // 10 ms
		ProxyOrigin: 50_000, // 50 ms
		Service:     100,    // 0.1 ms
	}
}

// cost returns the virtual delay for a transfer from a to b.
func (l LatencyModel) cost(a, b ids.NodeID) int64 {
	switch {
	case a == ids.Origin || b == ids.Origin:
		return l.ProxyOrigin + l.Service
	case a.IsClient() || b.IsClient():
		return l.ClientProxy + l.Service
	default:
		return l.ProxyProxy + l.Service
	}
}

// Clock is implemented by contexts that carry virtual time; nodes that
// measure latency (the clients) type-assert for it.
type Clock interface {
	// VNow returns the current virtual time in ticks.
	VNow() int64
}

// Scheduler is implemented by contexts that can deliver a message to the
// calling node after a virtual delay; open-loop traffic sources use it as
// their timer.
type Scheduler interface {
	// After delivers m at VNow()+delay.
	After(delay int64, m msg.Message)
}

// VEngine is the virtual-time discrete-event engine: messages are
// delivered in timestamp order, each transfer delayed by the latency
// model. Like Engine it is single-threaded and fully deterministic (ties
// break by enqueue sequence).
//
// The event queue is an inlined 4-ary min-heap over a flat []event slice:
// no container/heap indirection and no interface boxing on push/pop, and
// the wider fan-out halves tree depth versus a binary heap, trading a few
// extra comparisons (cheap, cache-resident) for fewer swaps and levels.
// Dispatch and message management share the dense-table/freelist design of
// Engine.
type VEngine struct {
	nodes   ids.Table[Node]
	latency LatencyModel
	pq      eventQueue
	fl      msg.Freelist
	now     int64
	seq     uint64
	// current is the node whose Handle is executing, so Send can price
	// the link correctly (the sender is implicit in sim.Context).
	current ids.NodeID

	// drop, when set, discards matching messages at Send time — fault
	// injection for probing the paper's §III.1 assumption that "we
	// don't expect the loss of messages". Timer events (After) are
	// never dropped; only network transfers are. Dropped messages are
	// never recycled: the sender may still reference them (see
	// Recycler).
	drop func(m msg.Message) bool

	// faults, when set, is the installed FaultPlan's live state: seeded
	// loss/jitter applied at Send, fail-stop crash tracking applied at
	// delivery. nil keeps every code path byte-identical to a plan-free
	// engine.
	faults *faultState

	// busy is the per-node service-completion horizon of the
	// QueueService model (nil when the model is off, which keeps the
	// delivery loop branch-free on the latency-only configuration).
	busy map[ids.NodeID]int64

	delivered uint64
	dropped   uint64

	// tracer records drop events (the engine is the only layer that sees
	// a message die); ts feeds the drop counter of the time-series
	// recorder. Both nil by default: one branch each on the drop paths,
	// nothing on the delivery path.
	tracer *obs.Tracer
	ts     *metrics.TimeSeries
}

// SetDropFilter installs a deterministic loss model: any Send for which fn
// returns true is silently discarded. The closed-loop protocol has no
// retransmission (the paper assumes lossless transport), so dropping a
// message strands its request chain — which is exactly what the fault-
// injection tests demonstrate.
func (e *VEngine) SetDropFilter(fn func(m msg.Message) bool) { e.drop = fn }

// SetTracer installs the request tracer (before Run). The engine itself
// only emits drop events; the protocol steps are traced by the nodes.
func (e *VEngine) SetTracer(t *obs.Tracer) { e.tracer = t }

// SetTimeSeries installs the time-series recorder the engine feeds drop
// counts into (before Run).
func (e *VEngine) SetTimeSeries(ts *metrics.TimeSeries) { e.ts = ts }

// traceDrop records the death of an in-flight protocol message. Timer
// messages (retry timers, sweep ticks) are not protocol steps and are
// skipped.
func (e *VEngine) traceDrop(sender ids.NodeID, m msg.Message, cause int64) {
	if e.ts != nil {
		e.ts.Drop(e.now)
	}
	if !e.tracer.Enabled(obs.KindDrop) {
		return
	}
	ev := obs.Ev(obs.KindDrop, sender)
	ev.At = e.now
	ev.To = m.Dest()
	ev.Arg = cause
	switch t := m.(type) {
	case *msg.Request:
		ev.Req, ev.Obj, ev.Hops = t.ID, t.Object, int32(t.Hops)
	case *msg.Reply:
		ev.Req, ev.Obj, ev.Hops = t.ID, t.Object, int32(t.Hops)
	default:
		return
	}
	e.tracer.Emit(ev)
}

// Dropped returns the number of discarded messages — drop-filter hits,
// fault-plan losses, and deliveries addressed to crashed nodes. In a run
// without retransmission every dropped transfer is an undelivered in-flight
// message whose request chain is stranded.
func (e *VEngine) Dropped() uint64 { return e.dropped }

// SetFaultPlan installs a deterministic failure model (loss, jitter,
// fail-stop crashes). Must be called before Run; a nil plan is a no-op.
func (e *VEngine) SetFaultPlan(p *FaultPlan) error {
	if p == nil {
		e.faults = nil
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	e.faults = newFaultState(p)
	return nil
}

// FaultStats returns the installed plan's counters (zero without a plan).
func (e *VEngine) FaultStats() FaultStats {
	if e.faults == nil {
		return FaultStats{}
	}
	return e.faults.stats
}

// NewVEngine returns an empty virtual-time engine.
func NewVEngine(latency LatencyModel) *VEngine {
	e := &VEngine{
		latency: latency,
		current: ids.None,
	}
	if latency.QueueService {
		e.busy = make(map[ids.NodeID]int64)
	}
	return e
}

// Register adds a node before Run.
func (e *VEngine) Register(n Node) error {
	if !e.nodes.Put(n.ID(), n) {
		return fmt.Errorf("sim: duplicate node %v", n.ID())
	}
	return nil
}

var (
	_ Context   = (*VEngine)(nil)
	_ Clock     = (*VEngine)(nil)
	_ Scheduler = (*VEngine)(nil)
	_ Recycler  = (*VEngine)(nil)
)

// VNow implements Clock.
func (e *VEngine) VNow() int64 { return e.now }

// Send implements Context: the message arrives after the modelled link
// latency; the hop is counted exactly as in the other engines.
func (e *VEngine) Send(m msg.Message) {
	CountHop(m)
	if e.drop != nil && e.drop(m) {
		e.dropped++
		e.traceDrop(e.current, m, obs.DropFilter)
		return
	}
	delay := e.latency.cost(e.current, m.Dest())
	if e.busy != nil {
		// Queued service: the transfer pays only the link here; the
		// Service component is charged at delivery, serialized per
		// receiver.
		delay -= e.latency.Service
	}
	if e.faults != nil {
		var ok bool
		if delay, ok = e.faults.transfer(e.current, m.Dest(), delay); !ok {
			// Lost on the wire. Like drop-filter hits, lost messages
			// are never recycled: the sender may still hold them.
			e.dropped++
			e.traceDrop(e.current, m, obs.DropLoss)
			return
		}
	}
	e.seq++
	e.pq.push(event{at: e.now + delay, seq: e.seq, m: m, net: true})
}

// After implements Scheduler.
func (e *VEngine) After(delay int64, m msg.Message) {
	if delay < 0 {
		delay = 0
	}
	e.schedule(delay, m)
}

func (e *VEngine) schedule(delay int64, m msg.Message) {
	e.seq++
	e.pq.push(event{at: e.now + delay, seq: e.seq, m: m})
}

// AcquireRequest implements Recycler.
func (e *VEngine) AcquireRequest() *msg.Request { return e.fl.GetRequest() }

// AcquireReply implements Recycler.
func (e *VEngine) AcquireReply() *msg.Reply { return e.fl.GetReply() }

// ReleaseRequest implements Recycler.
func (e *VEngine) ReleaseRequest(r *msg.Request) { e.fl.PutRequest(r) }

// ReleaseReply implements Recycler.
func (e *VEngine) ReleaseReply(r *msg.Reply) { e.fl.PutReply(r) }

// Delivered returns the number of messages delivered so far.
func (e *VEngine) Delivered() uint64 { return e.delivered }

// Run starts the Starter nodes in ascending NodeID order and processes
// events until the queue drains, advancing virtual time monotonically.
func (e *VEngine) Run() error {
	if e.faults != nil {
		// Crash/restart transitions enter the queue before any starter
		// event, so at equal timestamps a fault applies before the
		// messages scheduled later — a deterministic tie-break.
		for _, c := range e.faults.plan.Crashes {
			e.schedule(c.At, &faultCtl{node: c.Node})
			if c.RestartAt > 0 {
				e.schedule(c.RestartAt, &faultCtl{node: c.Node, restart: true, loseTables: c.LoseTables})
			}
		}
	}
	e.nodes.Ascending(func(id ids.NodeID, n Node) {
		if s, ok := n.(Starter); ok {
			e.current = id
			s.Start(e)
		}
	})
	e.current = ids.None
	for len(e.pq.ev) > 0 {
		ev := e.pq.pop()
		e.now = ev.at
		if e.faults != nil {
			if ctl, ok := ev.m.(*faultCtl); ok {
				e.applyFaultCtl(ctl)
				continue
			}
			if e.faults.down[ev.m.Dest()] {
				// Fail-stop: a crashed node receives nothing. The
				// message dies at delivery (it left the sender long
				// ago) and is never recycled.
				e.dropped++
				e.faults.stats.CrashDrops++
				e.traceDrop(ids.None, ev.m, obs.DropCrash)
				continue
			}
		}
		if e.busy != nil && ev.net && !ev.served {
			// Queued service: the message starts service when the
			// receiver frees up, completes Service later, and is
			// handled at completion. Re-queuing keeps the original
			// sequence number, so per-node FIFO order is preserved.
			start := ev.at
			if b := e.busy[ev.m.Dest()]; b > start {
				start = b
			}
			done := start + e.latency.Service
			e.busy[ev.m.Dest()] = done
			if done > ev.at {
				ev.at = done
				ev.served = true
				e.pq.push(ev)
				continue
			}
		}
		n, ok := e.nodes.Get(ev.m.Dest())
		if !ok {
			return fmt.Errorf("sim: message for unregistered node %v", ev.m.Dest())
		}
		e.delivered++
		e.current = n.ID()
		n.Handle(e, ev.m)
		e.current = ids.None
	}
	return nil
}

// applyFaultCtl executes one crash or restart transition.
func (e *VEngine) applyFaultCtl(ctl *faultCtl) {
	if !ctl.restart {
		if !e.faults.down[ctl.node] {
			e.faults.down[ctl.node] = true
			e.faults.stats.Crashes++
		}
		return
	}
	if !e.faults.down[ctl.node] {
		return // restart without a preceding crash: ignore
	}
	delete(e.faults.down, ctl.node)
	e.faults.stats.Restarts++
	if n, ok := e.nodes.Get(ctl.node); ok {
		if r, isR := n.(Restartable); isR {
			r.Restart(ctl.loseTables)
		}
	}
}

type event struct {
	at  int64
	seq uint64
	m   msg.Message
	// net marks a network transfer (Send), the only events the
	// QueueService model serializes; served marks a transfer that has
	// already been assigned its service-completion slot.
	net    bool
	served bool
}

// before is the total order events are delivered in: timestamp, then
// enqueue sequence. (at, seq) pairs are unique, so the heap's internal
// shape never influences the delivery sequence — a 4-ary heap delivers
// byte-identical results to the binary container/heap it replaced.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is a flat 4-ary min-heap over (at, seq). Children of slot i
// sit at 4i+1..4i+4, its parent at (i-1)/4. Push and pop operate directly
// on the typed slice — no any-boxing, no interface dispatch.
type eventQueue struct {
	ev []event
}

// Len returns the number of queued events (test support).
func (q *eventQueue) Len() int { return len(q.ev) }

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	// Sift up.
	ev := q.ev
	i := len(ev) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev[i].before(ev[p]) {
			break
		}
		ev[i], ev[p] = ev[p], ev[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	ev := q.ev
	root := ev[0]
	n := len(ev) - 1
	ev[0] = ev[n]
	ev[n] = event{} // release the message reference
	q.ev = ev[:n]
	// Sift down.
	ev = q.ev
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if ev[j].before(ev[best]) {
				best = j
			}
		}
		if !ev[best].before(ev[i]) {
			break
		}
		ev[i], ev[best] = ev[best], ev[i]
		i = best
	}
	return root
}
