package httpproxy

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/workload"
)

func testFarm(t *testing.T, proxies int) *Farm {
	t.Helper()
	f, err := NewFarm(FarmConfig{
		Proxies: proxies,
		Tables:  core.Config{SingleSize: 256, MultipleSize: 128, CachingSize: 64},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.Close(); err != nil {
			t.Errorf("farm close: %v", err)
		}
	})
	return f
}

func TestParseObjectPath(t *testing.T) {
	if obj, err := parseObjectPath("/obj/42"); err != nil || obj != 42 {
		t.Errorf("parse = %v, %v", obj, err)
	}
	for _, bad := range []string{"/obj/", "/obj/xyz", "/other/1", "/obj/-3"} {
		if _, err := parseObjectPath(bad); err == nil {
			t.Errorf("parseObjectPath(%q) must fail", bad)
		}
	}
}

func TestParseNodeID(t *testing.T) {
	if got := parseNodeID("Proxy[3]"); got != 3 {
		t.Errorf("parse Proxy[3] = %v", got)
	}
	for _, bad := range []string{"", "Origin", "Proxy[x]", "Proxy[3", "Client[0]", "Proxy[-2]"} {
		if got := parseNodeID(bad); got != ids.None {
			t.Errorf("parseNodeID(%q) = %v, want None", bad, got)
		}
	}
}

func TestSingleObjectEndToEnd(t *testing.T) {
	f := testFarm(t, 3)
	// First fetch: must be a miss served by the origin, payload intact.
	hit, err := f.Get(0, 7, "r1")
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first fetch cannot be a proxy hit")
	}
	if f.Origin.Resolved() != 1 {
		t.Errorf("origin resolved %d, want 1", f.Origin.Resolved())
	}
}

func TestHotObjectGetsCachedAndServed(t *testing.T) {
	f := testFarm(t, 3)
	hits := 0
	for i := 1; i <= 60; i++ {
		hit, err := f.Get(i%3, 5, "r"+strconv.Itoa(i))
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			hits++
		}
	}
	if hits < 40 {
		t.Errorf("hot object hit only %d/60 through the HTTP farm", hits)
	}
	cached := 0
	for _, p := range f.Proxies {
		cached += p.CacheLen()
	}
	if cached == 0 {
		t.Error("no proxy stored the hot payload")
	}
}

func TestPayloadIntegrityAcrossManyObjects(t *testing.T) {
	f := testFarm(t, 4)
	// Get verifies body == Payload(obj) internally; any corruption in
	// the store/forward path fails the test.
	for i := 1; i <= 120; i++ {
		obj := ids.ObjectID(i % 17)
		if _, err := f.Get(i%4, obj, "rr"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoopDetectionOverHTTP(t *testing.T) {
	f := testFarm(t, 2)
	// Cold objects over two proxies: random walks must loop and still
	// terminate at the origin, never hang or 5xx.
	loops := uint64(0)
	for i := 1; i <= 40; i++ {
		if _, err := f.Get(0, ids.ObjectID(1000+i), "cold"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range f.Proxies {
		loops += p.Stats().LoopsDetected
	}
	if loops == 0 {
		t.Error("40 cold walks over 2 proxies should detect loops")
	}
}

func TestMissingRequestIDRejected(t *testing.T) {
	f := testFarm(t, 1)
	resp, err := http.Get(f.Proxies[0].URL() + "/obj/1") // no X-Adc-Request-Id
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestBadPathsRejected(t *testing.T) {
	f := testFarm(t, 1)
	for _, path := range []string{"/obj/notanumber", "/obj/"} {
		req, err := http.NewRequest(http.MethodGet, f.Proxies[0].URL()+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(HeaderRequestID, "x")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck // test
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s status = %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	f := testFarm(t, 4)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				obj := ids.ObjectID(i % 11)
				reqID := fmt.Sprintf("c%d-%d", c, i)
				if _, err := f.Get((c+i)%4, obj, reqID); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Pending maps must fully drain.
	for _, p := range f.Proxies {
		p.mu.Lock()
		n := len(p.pending)
		p.mu.Unlock()
		if n != 0 {
			t.Errorf("proxy %v has %d dangling pending entries", p.ID(), n)
		}
	}
}

func TestRunWorkloadHitRate(t *testing.T) {
	if testing.Short() {
		t.Skip("HTTP farm workload is slow")
	}
	f := testFarm(t, 3)
	gen, err := workload.New(workload.Config{
		TotalRequests:  2000,
		PopulationSize: 50,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	col, err := f.RunWorkload(gen, 3)
	if err != nil {
		t.Fatal(err)
	}
	if col.Requests() != 2000 {
		t.Fatalf("completed %d requests", col.Requests())
	}
	if col.CumHitRate() < 0.3 {
		t.Errorf("hit rate %.3f too low for a 50-object hot set", col.CumHitRate())
	}
	// Client-side misses must match the origin's own count.
	misses := col.Requests() - col.Hits()
	if f.Origin.Resolved() != misses {
		t.Errorf("origin resolved %d, client counted %d misses",
			f.Origin.Resolved(), misses)
	}
}

func TestFarmConfigValidation(t *testing.T) {
	if _, err := NewFarm(FarmConfig{Proxies: 0}); err == nil {
		t.Error("zero proxies must fail")
	}
	if _, err := NewFarm(FarmConfig{Proxies: 1}); err == nil {
		t.Error("invalid tables must fail")
	}
}
