package metrics

// Bucket is one virtual-time window of a TimeSeries: the windowed
// counterpart of the end-of-run Summary, so hit rate, hops, and the
// recovery counters can be plotted against virtual time instead of only
// reported as run-wide scalars.
type Bucket struct {
	// Start and End bound the window in virtual ticks: [Start, End).
	Start, End int64

	// Injected counts logical requests issued in the window; Completed
	// counts deliveries, Hits the proxy-resolved subset, HopsSum the total
	// hops of completed requests.
	Injected  uint64
	Completed uint64
	Hits      uint64
	HopsSum   int64

	// Recovery and fault counters for the window.
	Timeouts  uint64
	Retries   uint64
	Abandoned uint64
	Drops     uint64

	// Inter-request-time distribution of injections in the window: count,
	// sum, min and max of the gaps between consecutive injections.
	Gaps   uint64
	GapSum int64
	GapMin int64
	GapMax int64

	// Occupancy and Cached are per-proxy snapshots taken when the bucket
	// seals: total mapping-table entries and cached (caching-table or LRU)
	// entries. Empty when no snapshot hook is installed.
	Occupancy []int
	Cached    []int

	// ProxyRequests is the per-proxy cumulative request-reception count
	// (client entries plus peer forwards) snapshotted when the bucket
	// seals. Differencing consecutive buckets gives the windowed load at
	// each proxy, which is what exposes transient hotspots — a hot
	// object's home saturating for a few windows after a popularity
	// shift — that run-total load spread averages away. Empty when no
	// snapshot hook is installed.
	ProxyRequests []uint64
}

// HitRate returns the window's hit rate (0 when nothing completed).
func (b Bucket) HitRate() float64 {
	if b.Completed == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Completed)
}

// MeanHops returns the window's mean hops per completed request.
func (b Bucket) MeanHops() float64 {
	if b.Completed == 0 {
		return 0
	}
	return float64(b.HopsSum) / float64(b.Completed)
}

// MeanGap returns the window's mean inter-injection gap in ticks.
func (b Bucket) MeanGap() float64 {
	if b.Gaps == 0 {
		return 0
	}
	return float64(b.GapSum) / float64(b.Gaps)
}

// TimeSeries accumulates Buckets of fixed virtual-time width. It is fed
// from the engine thread (clients and the virtual-time engine itself), so
// it needs no locking; all feed methods are nil-receiver-safe, making an
// absent recorder a cheap no-op at the call sites.
type TimeSeries struct {
	every  int64
	cur    Bucket
	sealed []Bucket

	lastInject  int64
	haveInject  bool
	anyActivity bool

	// onRoll, when set, runs just before a bucket seals — the cluster uses
	// it to snapshot per-proxy table occupancy into the bucket.
	onRoll func(*Bucket)
}

// NewTimeSeries returns a recorder with the given bucket width in virtual
// ticks (must be positive).
func NewTimeSeries(every int64) *TimeSeries {
	if every <= 0 {
		every = 1
	}
	return &TimeSeries{
		every: every,
		cur:   Bucket{Start: 0, End: every},
	}
}

// SetOnRoll installs the bucket-seal hook. It runs on the engine thread.
func (t *TimeSeries) SetOnRoll(fn func(*Bucket)) {
	if t != nil {
		t.onRoll = fn
	}
}

// advance seals buckets until at falls inside the current one.
func (t *TimeSeries) advance(at int64) {
	for at >= t.cur.End {
		t.seal()
	}
}

func (t *TimeSeries) seal() {
	if t.onRoll != nil {
		t.onRoll(&t.cur)
	}
	t.sealed = append(t.sealed, t.cur)
	start := t.cur.End
	t.cur = Bucket{Start: start, End: start + t.every}
}

// Inject records one logical request issued at virtual time at.
func (t *TimeSeries) Inject(at int64) {
	if t == nil {
		return
	}
	t.advance(at)
	t.anyActivity = true
	t.cur.Injected++
	if t.haveInject {
		gap := at - t.lastInject
		b := &t.cur
		if b.Gaps == 0 || gap < b.GapMin {
			b.GapMin = gap
		}
		if gap > b.GapMax {
			b.GapMax = gap
		}
		b.Gaps++
		b.GapSum += gap
	}
	t.lastInject = at
	t.haveInject = true
}

// Complete records one delivery at virtual time at.
func (t *TimeSeries) Complete(at int64, hit bool, hops int32) {
	if t == nil {
		return
	}
	t.advance(at)
	t.anyActivity = true
	t.cur.Completed++
	if hit {
		t.cur.Hits++
	}
	t.cur.HopsSum += int64(hops)
}

// Timeout records one attempt timeout.
func (t *TimeSeries) Timeout(at int64) {
	if t == nil {
		return
	}
	t.advance(at)
	t.anyActivity = true
	t.cur.Timeouts++
}

// Retry records one retransmission.
func (t *TimeSeries) Retry(at int64) {
	if t == nil {
		return
	}
	t.advance(at)
	t.anyActivity = true
	t.cur.Retries++
}

// Abandon records one abandoned request.
func (t *TimeSeries) Abandon(at int64) {
	if t == nil {
		return
	}
	t.advance(at)
	t.anyActivity = true
	t.cur.Abandoned++
}

// Drop records one lost in-flight message.
func (t *TimeSeries) Drop(at int64) {
	if t == nil {
		return
	}
	t.advance(at)
	t.anyActivity = true
	t.cur.Drops++
}

// Finish seals the in-progress bucket at end of run. Without it the final
// partial window would be lost.
func (t *TimeSeries) Finish(at int64) {
	if t == nil || !t.anyActivity {
		return
	}
	t.advance(at)
	if !t.cur.isZero() {
		t.seal()
	}
	t.anyActivity = false
}

func (b Bucket) isZero() bool {
	return b.Injected == 0 && b.Completed == 0 && b.Timeouts == 0 &&
		b.Retries == 0 && b.Abandoned == 0 && b.Drops == 0
}

// Buckets returns the sealed buckets in time order.
func (t *TimeSeries) Buckets() []Bucket {
	if t == nil {
		return nil
	}
	return t.sealed
}
