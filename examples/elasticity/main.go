// Elasticity: infrastructure growth without coordination. Halfway through
// the run a sixth proxy joins a five-proxy ADC system with completely
// empty tables — no handoff, no rebalancing protocol, no coordinator. The
// newcomer attracts load purely through the algorithm's own mechanics:
// random forwarding finds it, backwarding teaches it, selective caching
// fills it.
//
//	go run ./examples/elasticity
package main

import (
	"fmt"
	"log"

	"github.com/adc-sim/adc"
)

func main() {
	const total = 200_000

	workload, err := adc.NewWorkload(adc.WorkloadConfig{
		Requests:   total,
		Population: 1_000,
		Seed:       13,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := adc.Run(adc.Config{
		Algorithm:     adc.ADC,
		Proxies:       5,
		SingleTable:   2_000,
		MultipleTable: 2_000,
		CachingTable:  1_000,
		Seed:          13,
		SampleEvery:   total / 20,
		JoinProxyAt:   []uint64{total / 2}, // proxy 5 joins mid-run
	}, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("windowed hit rate (proxy 5 joins at the midpoint):")
	for _, p := range res.Series {
		marker := ""
		if p.Requests == total/2 {
			marker = "<- join"
		}
		fmt.Printf("%7d %5.3f %s\n", p.Requests, p.HitRate, marker)
	}

	fmt.Println("\nper-proxy load and cache activity:")
	var totalReqs uint64
	for _, s := range res.ProxyStats {
		totalReqs += s.Requests
	}
	for i, s := range res.ProxyStats {
		note := ""
		if i == 5 {
			note = "  (joined mid-run, started empty)"
		}
		fmt.Printf("  proxy %d: %5.1f%% of requests, %d local hits, %d cache insertions%s\n",
			i, 100*float64(s.Requests)/float64(totalReqs), s.LocalHits, s.CacheInsertions, note)
	}
	fmt.Println("\nthe newcomer was discovered by random forwarding, learned object")
	fmt.Println("locations from backwarding replies, and took on its share of the")
	fmt.Println("load — no coordinator, no rebalance, no configuration change.")
}
