package sim

import "github.com/adc-sim/adc/internal/msg"

// Recycler is implemented by contexts that own a message freelist — the
// single-threaded engines. Nodes never use it directly; they go through
// NewRequest, Resolve and Finish below, which degrade gracefully to plain
// allocation on contexts without freelists (the concurrent agent runtime
// and the TCP transport, where messages cross goroutines and engine-owned
// recycling would race).
//
// Ownership rules (see internal/msg): a handler owns the message it
// received. Handing a message to Recycle-side methods ends that ownership.
// The engines deliberately do NOT recycle messages dropped by the fault
// filter at Send time: the sender may still hold the pointer it just
// passed in (Send returning normally gives it no signal that the message
// died), so a dropped message is left to the garbage collector instead.
type Recycler interface {
	// AcquireRequest returns a zeroed request, recycled when possible.
	AcquireRequest() *msg.Request
	// AcquireReply returns a zeroed reply, recycled when possible.
	AcquireReply() *msg.Reply
	// ReleaseRequest recycles a request the caller owns. A Path that was
	// transferred to a reply must be nilled first.
	ReleaseRequest(r *msg.Request)
	// ReleaseReply recycles a reply the caller owns.
	ReleaseReply(r *msg.Reply)
}

// NewRequest returns a request to fill and send, drawn from the engine
// freelist when ctx owns one. Traffic sources use it instead of
// &msg.Request{}.
func NewRequest(ctx Context) *msg.Request {
	if r, ok := ctx.(Recycler); ok {
		return r.AcquireRequest()
	}
	return &msg.Request{}
}

// Resolve consumes req and returns the reply answering it, initialized to
// retrace the recorded forwarding path (the backwarding start of §III.2).
// Ownership of req transfers here: its Path moves to the reply and the
// struct returns to the engine freelist, so the caller must not touch req
// afterwards. The caller sets Resolver/Cached/FromOrigin on the reply
// before sending.
func Resolve(ctx Context, req *msg.Request) *msg.Reply {
	r, ok := ctx.(Recycler)
	if !ok {
		return msg.ReplyTo(req)
	}
	rep := r.AcquireReply()
	rep.InitFrom(req)
	req.Path = nil // backing array now owned by the reply
	r.ReleaseRequest(req)
	return rep
}

// Finish recycles a terminally delivered message — one the handler will
// neither forward nor retain (a reply arriving at its client). Calling it
// is optional: without it the message is simply garbage collected.
func Finish(ctx Context, m msg.Message) {
	r, ok := ctx.(Recycler)
	if !ok {
		return
	}
	switch t := m.(type) {
	case *msg.Request:
		r.ReleaseRequest(t)
	case *msg.Reply:
		r.ReleaseReply(t)
	}
}
