package sim_test

import (
	"fmt"
	"testing"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/proxy"
	"github.com/adc-sim/adc/internal/sim"
)

// The large-topology scaling rig: 10k ADC proxies and one million open-loop
// clients in a single simulation — the regime ROADMAP item 1 targets, two
// orders of magnitude past the paper's 5-proxy testbed. The workload is
// deliberately shard-friendly and allocation-light:
//
//   - every client enters through its home proxy (client i → proxy i mod P,
//     the colocation ids.ShardMap preserves), so the client↔proxy half of
//     the traffic never crosses a shard boundary;
//   - each home proxy's clients draw from a private object pool, so after
//     the cold pass most requests are local hits and the single origin node
//     (pinned to shard 0) stays off the critical path;
//   - fixed arrival intervals and fixed entry mean no client ever touches
//     its rng (left nil by the lazy-allocation path), and per-shard shared
//     collectors replace a million private 5000-slot windows.
//
// MaxHops bounds the cold-table random walk: with 10k peers an unbounded
// wander revisits a proxy (the loop-detection exit) only after ~√P ≈ 100
// hops, which would measure the wander, not the engine.
const (
	scaleProxies        = 10_000
	scaleClients        = 1_000_000
	scaleReqsPerClient  = 3
	scalePoolPerProxy   = 25
	scaleObjectSpacing  = 1_000
	scaleInterval       = 100_000 // ticks between a client's injections
	scaleMaxHops        = 4
	scaleCollectorRings = 256
)

// poolSource is a zero-allocation workload source: a private LCG drawing
// from the home proxy's object pool. A million slice-backed sources would
// cost ~100 MB; this struct costs 48 bytes per client.
type poolSource struct {
	base    uint64
	emitted int
	total   int
	state   uint64
}

func (s *poolSource) Total() int { return s.total }

func (s *poolSource) Next() (ids.ObjectID, bool) {
	if s.emitted >= s.total {
		return 0, false
	}
	s.emitted++
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return ids.ObjectID(s.base + s.state%scalePoolPerProxy), true
}

// buildScalingRig wires the 10k-proxy / 1M-client topology onto eng.
// collFor maps a client index to its (possibly shared) metrics collector.
func buildScalingRig(b *testing.B, eng registrar, collFor func(i int) *metrics.Collector) {
	b.Helper()
	proxyIDs := make([]ids.NodeID, scaleProxies)
	for i := range proxyIDs {
		proxyIDs[i] = ids.NodeID(i)
	}
	for _, id := range proxyIDs {
		p, err := proxy.New(proxy.Config{
			ID:     id,
			Peers:  proxyIDs,
			Tables: core.Config{SingleSize: 200, MultipleSize: 200, CachingSize: 100},
			Seed:   7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Register(p); err != nil {
			b.Fatal(err)
		}
	}
	if err := eng.Register(sim.NewOrigin()); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < scaleClients; i++ {
		home := i % scaleProxies
		cl, err := sim.NewOpenLoopClient(sim.OpenLoopConfig{
			Index: i,
			Source: &poolSource{
				base:  uint64(home) * scaleObjectSpacing,
				total: scaleReqsPerClient,
				state: uint64(i)*2654435761 + 1,
			},
			// A one-element view into the shared ID slice: EntryFixed only
			// reads Proxies[0], so a million clients share one backing array.
			Proxies:       proxyIDs[home : home+1],
			Policy:        sim.EntryFixed,
			Collector:     collFor(i),
			MaxHops:       scaleMaxHops,
			IntervalTicks: scaleInterval,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Register(cl); err != nil {
			b.Fatal(err)
		}
	}
}

func newScaleCollector() *metrics.Collector {
	return metrics.NewCollector(
		metrics.WithWindow(scaleCollectorRings),
		metrics.WithSampleEvery(0),
	)
}

// BenchmarkPEngineScaling is the headline parallel-engine benchmark: the
// 10k-proxy / 1M-client workload on the sequential oracle and on the
// sharded engine at 1, 2, 4 and 8 shards. BENCH_parallel.json records its
// events/s metric; the shards=4 / shards=1 ratio is the scaling acceptance
// number (meaningful on a 4+ core machine — cmd/benchjson embeds NumCPU and
// GOMAXPROCS in the file so single-core results are not misread).
//
// Every variant also cross-checks its delivery count against the first
// variant run: a shard-count-dependent event count would mean the engines
// diverged, and a throughput number for a wrong simulation is worthless.
func BenchmarkPEngineScaling(b *testing.B) {
	var wantDelivered uint64

	runOne := func(b *testing.B, mk func() engineRunner, collFor func(part ids.ShardMap) func(int) *metrics.Collector, part ids.ShardMap) {
		b.ReportAllocs()
		var delivered uint64
		var runNanos int64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng := mk()
			buildScalingRig(b, eng, collFor(part))
			b.StartTimer()
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
			delivered = eng.Delivered()
		}
		runNanos = b.Elapsed().Nanoseconds()
		if wantDelivered == 0 {
			wantDelivered = delivered
		} else if delivered != wantDelivered {
			b.Fatalf("delivered %d events, other variants delivered %d — engines diverged", delivered, wantDelivered)
		}
		perRun := float64(runNanos) / float64(b.N)
		b.ReportMetric(float64(delivered)/(perRun/1e9), "events/s")
		b.ReportMetric(perRun/float64(delivered), "ns/event")
	}

	seqColl := func(ids.ShardMap) func(int) *metrics.Collector {
		c := newScaleCollector()
		return func(int) *metrics.Collector { return c }
	}
	// One collector per shard, shared by that shard's clients: handlers of
	// one shard never run concurrently, so the sharing is race-free, and it
	// keeps per-client state small enough for a million clients.
	shardColl := func(part ids.ShardMap) func(int) *metrics.Collector {
		cs := make([]*metrics.Collector, part.Shards())
		for i := range cs {
			cs[i] = newScaleCollector()
		}
		return func(i int) *metrics.Collector { return cs[part.ShardOf(ids.Client(i))] }
	}

	b.Run("seq", func(b *testing.B) {
		runOne(b, func() engineRunner { return sim.NewVEngine(sim.DefaultLatencyModel()) }, seqColl, ids.ShardMap{})
	})
	for _, shards := range []int{1, 2, 4, 8} {
		part, err := ids.NewShardMap(shards, scaleProxies)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			runOne(b, func() engineRunner { return sim.NewPEngine(sim.DefaultLatencyModel(), part) }, shardColl, part)
		})
	}
}
