package cluster

import (
	"reflect"
	"testing"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/trace"
)

// goldenTrace regenerates the fixed 4000-request stream the determinism
// tests run against.
func goldenTrace() []ids.ObjectID {
	objs := make([]ids.ObjectID, 4000)
	state := uint64(0xDEADBEEFCAFE)
	for i := range objs {
		state = state*6364136223846793005 + 1442695040888963407
		objs[i] = ids.ObjectID(state % 800)
	}
	return objs
}

func goldenConfig(rt Runtime) Config {
	return Config{
		Algorithm:   ADC,
		NumProxies:  5,
		Tables:      core.Config{SingleSize: 200, MultipleSize: 200, CachingSize: 100},
		Seed:        42,
		Clients:     3,
		SampleEvery: 500,
		Runtime:     rt,
	}
}

// TestGoldenDeterminism pins the reference runs to hardcoded values
// captured before the fault-injection layer landed. It is the
// byte-identical guard for the default path: with Recovery off and no
// FaultPlan, every number — summaries, series length, per-proxy stats —
// must match the pre-fault-layer build exactly. If this test fails, new
// code leaked into the lossless path (an extra rng draw, a reordered stat,
// a stray timer event).
func TestGoldenDeterminism(t *testing.T) {
	type golden struct {
		delivered, requests, hits uint64
		hitRate, hops, pathLen    float64
		meanResponse, maxResponse float64
		origin                    uint64
		series                    int
		proxy0                    map[string]uint64
	}
	want := map[Runtime]golden{
		RuntimeSequential: {
			delivered: 23602, requests: 4000, hits: 1284,
			hitRate: 0.3210, hops: 5.9005, pathLen: 1.95025,
			origin: 2716, series: 2,
			proxy0: map[string]uint64{
				"Requests": 1845, "LocalHits": 251, "ForwardLearned": 255,
				"ForwardRandom": 734, "ForwardOrigin": 605, "LoopsDetected": 282,
				"RepliesSeen": 1594, "CacheInsertions": 354, "CacheEvictions": 254,
			},
		},
		RuntimeVirtualTime: {
			delivered: 23482, requests: 4000, hits: 1290,
			hitRate: 0.3225, hops: 5.8705, pathLen: 1.93525,
			meanResponse: 103492.05, maxResponse: 211400,
			origin: 2710, series: 2,
			proxy0: map[string]uint64{
				"Requests": 1829, "LocalHits": 261, "ForwardLearned": 275,
				"ForwardRandom": 713, "ForwardOrigin": 580, "LoopsDetected": 265,
				"RepliesSeen": 1568, "CacheInsertions": 344, "CacheEvictions": 244,
			},
		},
	}
	const eps = 1e-9
	for rt, g := range want {
		t.Run(rt.String(), func(t *testing.T) {
			res, err := Run(goldenConfig(rt), trace.NewSliceSource(goldenTrace()))
			if err != nil {
				t.Fatal(err)
			}
			s := res.Summary
			if res.Delivered != g.delivered {
				t.Errorf("delivered = %d, want %d", res.Delivered, g.delivered)
			}
			if s.Requests != g.requests || s.Hits != g.hits {
				t.Errorf("requests/hits = %d/%d, want %d/%d", s.Requests, s.Hits, g.requests, g.hits)
			}
			if diff := s.HitRate - g.hitRate; diff < -eps || diff > eps {
				t.Errorf("hit rate = %v, want %v", s.HitRate, g.hitRate)
			}
			if diff := s.Hops - g.hops; diff < -eps || diff > eps {
				t.Errorf("hops = %v, want %v", s.Hops, g.hops)
			}
			if diff := s.PathLen - g.pathLen; diff < -eps || diff > eps {
				t.Errorf("path length = %v, want %v", s.PathLen, g.pathLen)
			}
			if g.meanResponse != 0 {
				if diff := s.MeanResponse - g.meanResponse; diff < -eps || diff > eps {
					t.Errorf("mean response = %v, want %v", s.MeanResponse, g.meanResponse)
				}
				if s.MaxResponse != g.maxResponse {
					t.Errorf("max response = %v, want %v", s.MaxResponse, g.maxResponse)
				}
			}
			if res.OriginResolved != g.origin {
				t.Errorf("origin resolved = %d, want %d", res.OriginResolved, g.origin)
			}
			if len(res.Series) != g.series {
				t.Errorf("series length = %d, want %d", len(res.Series), g.series)
			}
			// No fault layer ran: its observables must be zero/absent.
			if s.Timeouts != 0 || s.Retries != 0 || s.Abandoned != 0 || s.StaleReplies != 0 {
				t.Errorf("recovery counters non-zero in lossless run: %+v", s)
			}
			if res.Dropped != 0 || res.LeakedPending != 0 {
				t.Errorf("dropped=%d leaked=%d, want 0/0", res.Dropped, res.LeakedPending)
			}
			if res.Faults != (sim.FaultStats{}) {
				t.Errorf("fault stats non-zero: %+v", res.Faults)
			}
			p0 := res.ProxyStats[0]
			got := map[string]uint64{
				"Requests": p0.Requests, "LocalHits": p0.LocalHits,
				"ForwardLearned": p0.ForwardLearned, "ForwardRandom": p0.ForwardRandom,
				"ForwardOrigin": p0.ForwardOrigin, "LoopsDetected": p0.LoopsDetected,
				"RepliesSeen": p0.RepliesSeen, "CacheInsertions": p0.CacheInsertions,
				"CacheEvictions": p0.CacheEvictions,
			}
			if !reflect.DeepEqual(got, g.proxy0) {
				t.Errorf("proxy 0 stats = %v, want %v", got, g.proxy0)
			}
			if p0.ExpiredPending != 0 || p0.StaleInvalidated != 0 || p0.UnexpectedReplies != 0 {
				t.Errorf("proxy 0 fault counters non-zero: %+v", p0)
			}
		})
	}
}

// TestFaultPlanDeterminism asserts that a seeded fault plan is a pure
// function of its configuration: identical plans produce identical drops,
// crashes, metrics and leaks, and a different fault seed produces a
// different drop sequence over the same workload.
func TestFaultPlanDeterminism(t *testing.T) {
	run := func(faultSeed int64, recovery bool) *Result {
		cfg := goldenConfig(RuntimeVirtualTime)
		cfg.Faults = &sim.FaultPlan{
			Seed:   faultSeed,
			Loss:   0.02,
			Jitter: 1500,
			LinkLoss: []sim.LinkLoss{
				{From: ids.NodeID(1), To: ids.NodeID(2), Rate: 0.1},
			},
			Crashes: []sim.Crash{
				{Node: ids.NodeID(3), At: 400_000, RestartAt: 1_200_000, LoseTables: true},
			},
		}
		if recovery {
			cfg.Recovery = sim.DefaultRecovery()
		}
		res, err := Run(cfg, trace.NewSliceSource(goldenTrace()))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for _, recovery := range []bool{false, true} {
		name := "no-recovery"
		if recovery {
			name = "recovery"
		}
		t.Run(name, func(t *testing.T) {
			a, b := run(7, recovery), run(7, recovery)
			if a.Faults != b.Faults {
				t.Errorf("fault stats differ:\nrun1 %+v\nrun2 %+v", a.Faults, b.Faults)
			}
			if a.Dropped == 0 {
				t.Error("fault plan dropped nothing; the test exercises no faults")
			}
			if a.Faults.Crashes != 1 || a.Faults.Restarts != 1 {
				t.Errorf("crashes/restarts = %d/%d, want 1/1", a.Faults.Crashes, a.Faults.Restarts)
			}
			if a.Dropped != b.Dropped || a.Delivered != b.Delivered {
				t.Errorf("dropped/delivered: run1 %d/%d, run2 %d/%d",
					a.Dropped, a.Delivered, b.Dropped, b.Delivered)
			}
			if a.Injected != b.Injected || a.LeakedPending != b.LeakedPending {
				t.Errorf("injected/leaked: run1 %d/%d, run2 %d/%d",
					a.Injected, a.LeakedPending, b.Injected, b.LeakedPending)
			}
			sa, sb := a.Summary, b.Summary
			sa.Elapsed, sb.Elapsed = 0, 0
			if sa != sb {
				t.Errorf("summaries differ:\nrun1 %+v\nrun2 %+v", sa, sb)
			}
			if !reflect.DeepEqual(a.ProxyStats, b.ProxyStats) {
				t.Errorf("proxy stats differ:\nrun1 %+v\nrun2 %+v", a.ProxyStats, b.ProxyStats)
			}

			other := run(8, recovery)
			if other.Dropped == a.Dropped && other.Delivered == a.Delivered {
				t.Errorf("different fault seeds produced identical drop sequences (dropped=%d delivered=%d)",
					a.Dropped, a.Delivered)
			}
		})
	}
}

// TestRecoveryClosedLoop is the acceptance run: ADC with the recovery
// protocol on under 1% i.i.d. loss must complete every logical request —
// no stranded chains, no abandoned requests, no leaked pending state on
// any proxy.
func TestRecoveryClosedLoop(t *testing.T) {
	cfg := goldenConfig(RuntimeVirtualTime)
	cfg.Faults = &sim.FaultPlan{Seed: 42, Loss: 0.01}
	rec := sim.DefaultRecovery()
	rec.MaxRetries = 25 // generous budget: no request may be abandoned
	cfg.Recovery = rec

	cl, err := New(cfg, trace.NewSliceSource(goldenTrace()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("no messages dropped; the test exercises no loss")
	}
	if res.Summary.Requests != 4000 || res.Injected != 4000 {
		t.Errorf("requests/injected = %d/%d, want 4000/4000", res.Summary.Requests, res.Injected)
	}
	if res.Completion != 1 {
		t.Errorf("completion = %v, want 1", res.Completion)
	}
	if res.Summary.Abandoned != 0 {
		t.Errorf("abandoned = %d, want 0", res.Summary.Abandoned)
	}
	if res.Summary.Retries == 0 {
		t.Error("retries = 0; recovery never retransmitted despite drops")
	}
	if res.LeakedPending != 0 {
		t.Errorf("leaked pending = %d, want 0", res.LeakedPending)
	}
	for i, p := range cl.ADCProxies() {
		if n := p.PendingLen(); n != 0 {
			t.Errorf("proxy %d: %d pending entries left at run end", i, n)
		}
	}
}

// TestValidateFaults covers the configuration constraints.
func TestValidateFaults(t *testing.T) {
	base := goldenConfig(RuntimeVirtualTime)
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"plain vtime", func(c *Config) {}, true},
		{"loss on vtime", func(c *Config) {
			c.Faults = &sim.FaultPlan{Loss: 0.1}
		}, true},
		{"loss on sequential", func(c *Config) {
			c.Runtime = RuntimeSequential
			c.Faults = &sim.FaultPlan{Loss: 0.1}
		}, false},
		{"recovery on sequential", func(c *Config) {
			c.Runtime = RuntimeSequential
			c.Recovery = sim.DefaultRecovery()
		}, false},
		{"loss out of range", func(c *Config) {
			c.Faults = &sim.FaultPlan{Loss: 1.5}
		}, false},
		{"crash out of range", func(c *Config) {
			c.CrashProxyAt = []ProxyCrash{{Proxy: 9, At: 100}}
		}, false},
		{"crash on carp", func(c *Config) {
			c.Algorithm = CARP
			c.Tables = core.Config{CachingSize: 100}
			c.CrashProxyAt = []ProxyCrash{{Proxy: 0, At: 100}}
		}, false},
		{"restart without crash", func(c *Config) {
			c.RestartProxyAt = []ProxyRestart{{Proxy: 0, At: 100}}
		}, false},
		{"restart before crash", func(c *Config) {
			c.CrashProxyAt = []ProxyCrash{{Proxy: 0, At: 200}}
			c.RestartProxyAt = []ProxyRestart{{Proxy: 0, At: 100}}
		}, false},
		{"crash restart pair", func(c *Config) {
			c.CrashProxyAt = []ProxyCrash{{Proxy: 0, At: 100}}
			c.RestartProxyAt = []ProxyRestart{{Proxy: 0, At: 300}}
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("expected a validation error, got nil")
			}
		})
	}
}
