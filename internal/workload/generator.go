package workload

import (
	"fmt"
	"math/rand"

	"github.com/adc-sim/adc/internal/ids"
)

// Source is a stream of object requests. The cluster driver pulls one
// object ID per simulated request; trace replays (internal/trace) and the
// synthetic Generator both implement it.
type Source interface {
	// Next returns the next requested object; ok is false when the
	// stream is exhausted.
	Next() (obj ids.ObjectID, ok bool)
	// Total returns the total number of requests the stream will emit.
	Total() int
}

// Phase identifies the three workload phases of the paper's trace (§V.1.6).
type Phase int

// Workload phases in stream order.
const (
	// PhaseFill is phase 1: population of the object space with almost
	// no repetitions.
	PhaseFill Phase = 1
	// PhaseRequestI is phase 2: Zipf-skewed repeat requests.
	PhaseRequestI Phase = 2
	// PhaseRequestII is phase 3: an exact replay of phase 2's stream.
	PhaseRequestII Phase = 3
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseFill:
		return "fill"
	case PhaseRequestI:
		return "request-I"
	case PhaseRequestII:
		return "request-II"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Config parameterises the synthetic PolyMix-like workload.
type Config struct {
	// TotalRequests is the length of the stream. The paper's trace has
	// 3,990,000 requests; PaperConfig uses that, tests and default
	// benches use scaled-down totals.
	TotalRequests int

	// FillFraction is the share of requests in the fill phase.
	// Default 0.25 (≈1.0 M of ≈4 M).
	FillFraction float64

	// PopulationSize is the hot object population of phases 2–3, in
	// objects. When zero, the population is PopulationFraction of the
	// distinct objects introduced during fill. Experiments set it
	// explicitly so the workload's working set scales with the proxy
	// table sizes rather than with the trace length.
	PopulationSize int

	// PopulationFraction sizes the hot population as a fraction of the
	// fill-phase objects when PopulationSize is zero. Default 0.2.
	PopulationFraction float64

	// Alpha is the Zipf popularity exponent for phases 2–3.
	// Default 0.8, the upper end of the measured web range (ref [2]).
	Alpha float64

	// FillRepeatProb is the probability that a fill-phase request
	// repeats an already-introduced object ("almost no request
	// repetitions", §V.1.6). Default 0.03.
	FillRepeatProb float64

	// OneTimerProb is the probability that a request-phase (2–3)
	// request targets a fresh, never-repeated object instead of the hot
	// population. Web streams are full of such "one-timers" (Breslau et
	// al., ref [2]) and Polygraph models them; they are the cache
	// pollution that selective caching exists to resist (§III.4).
	// Default 0.3. Because phase 3 replays phase 2, a phase-2 one-timer
	// recurs exactly once, half a trace later — still useless to cache.
	OneTimerProb float64

	// Seed makes the stream fully deterministic. Default 1.
	Seed int64
}

// withDefaults fills unset fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.FillFraction == 0 {
		c.FillFraction = 0.25
	}
	if c.PopulationFraction == 0 {
		c.PopulationFraction = 0.2
	}
	if c.Alpha == 0 {
		c.Alpha = 0.8
	}
	// For the probability knobs, zero means "default"; pass a negative
	// value to select exactly zero.
	switch {
	case c.FillRepeatProb == 0:
		c.FillRepeatProb = 0.03
	case c.FillRepeatProb < 0:
		c.FillRepeatProb = 0
	}
	switch {
	case c.OneTimerProb == 0:
		c.OneTimerProb = 0.3
	case c.OneTimerProb < 0:
		c.OneTimerProb = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate reports the first configuration error after defaulting.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.TotalRequests <= 0 {
		return fmt.Errorf("workload: TotalRequests must be positive, got %d", c.TotalRequests)
	}
	if c.FillFraction <= 0 || c.FillFraction >= 1 {
		return fmt.Errorf("workload: FillFraction must be in (0,1), got %v", c.FillFraction)
	}
	if c.PopulationFraction <= 0 || c.PopulationFraction > 1 {
		return fmt.Errorf("workload: PopulationFraction must be in (0,1], got %v", c.PopulationFraction)
	}
	if c.PopulationSize < 0 {
		return fmt.Errorf("workload: PopulationSize must be non-negative, got %d", c.PopulationSize)
	}
	if c.Alpha <= 0 {
		return fmt.Errorf("workload: Alpha must be positive, got %v", c.Alpha)
	}
	if c.FillRepeatProb >= 1 {
		return fmt.Errorf("workload: FillRepeatProb must be below 1, got %v", c.FillRepeatProb)
	}
	if c.OneTimerProb >= 1 {
		return fmt.Errorf("workload: OneTimerProb must be below 1, got %v", c.OneTimerProb)
	}
	return nil
}

// DefaultConfig returns the standard scaled workload of the given length.
func DefaultConfig(total int) Config {
	return Config{TotalRequests: total}.withDefaults()
}

// PaperConfig returns the full-scale configuration matching the paper's
// 3.99 M request trace.
func PaperConfig() Config {
	return Config{TotalRequests: 3_990_000}.withDefaults()
}

// Generator produces the three-phase stream. It is deterministic: two
// generators with equal configs emit identical streams. Not safe for
// concurrent use.
type Generator struct {
	cfg  Config
	zipf *Zipf
	// perm maps popularity rank → object ID so that hot objects are
	// scattered over the ID space instead of clustering at low IDs.
	perm []uint32

	fillEnd   int // index of the first request after the fill phase
	phase2End int // index of the first request after phase 2

	pos     int
	fillRng *rand.Rand
	// reqRng drives phases 2 and 3; it is re-seeded at the phase 2/3
	// boundary so phase 3 replays phase 2's draws exactly.
	reqRng *rand.Rand
	// oneTimers counts fresh objects emitted in the current request
	// phase; reset with reqRng so phase 3 replays the same IDs.
	oneTimers uint64
}

// oneTimerBase offsets one-timer object IDs far above the fill ID range so
// the two populations never collide.
const oneTimerBase = uint64(1) << 40

var _ Source = (*Generator)(nil)

// New builds a generator for cfg.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	fillEnd := int(float64(cfg.TotalRequests) * cfg.FillFraction)
	if fillEnd < 1 {
		fillEnd = 1
	}
	// Phases 2 and 3 split the remainder evenly (paper: 1.5 M + 1.5 M).
	phase2End := fillEnd + (cfg.TotalRequests-fillEnd)/2

	population := cfg.PopulationSize
	if population == 0 {
		population = int(float64(fillEnd) * cfg.PopulationFraction)
	}
	if population < 1 {
		population = 1
	}
	zipf, err := NewZipf(population, cfg.Alpha)
	if err != nil {
		return nil, err
	}

	g := &Generator{
		cfg:       cfg,
		zipf:      zipf,
		fillEnd:   fillEnd,
		phase2End: phase2End,
	}
	g.buildPerm(population)
	g.Reset()
	return g, nil
}

// buildPerm derives the rank→object permutation from the seed.
func (g *Generator) buildPerm(population int) {
	rng := rand.New(rand.NewSource(g.cfg.Seed * 7919))
	perm := make([]uint32, population)
	for i := range perm {
		perm[i] = uint32(i + 1) // object IDs start at 1
	}
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	g.perm = perm
}

// Reset rewinds the stream to the beginning.
func (g *Generator) Reset() {
	g.pos = 0
	g.fillRng = rand.New(rand.NewSource(g.cfg.Seed))
	g.reqRng = rand.New(rand.NewSource(g.cfg.Seed + 1))
	g.oneTimers = 0
}

// Total implements Source.
func (g *Generator) Total() int { return g.cfg.TotalRequests }

// Emitted returns how many requests have been produced so far.
func (g *Generator) Emitted() int { return g.pos }

// Boundaries returns the stream indexes at which phases 2 and 3 begin.
func (g *Generator) Boundaries() (fillEnd, phase2End int) {
	return g.fillEnd, g.phase2End
}

// PhaseAt returns the phase of the request at stream index i.
func (g *Generator) PhaseAt(i int) Phase {
	switch {
	case i < g.fillEnd:
		return PhaseFill
	case i < g.phase2End:
		return PhaseRequestI
	default:
		return PhaseRequestII
	}
}

// Population returns the hot-set size of phases 2–3.
func (g *Generator) Population() int { return len(g.perm) }

// HeadMass exposes the underlying Zipf head mass for tuning notes.
func (g *Generator) HeadMass(k int) float64 { return g.zipf.HeadMass(k) }

// Next implements Source.
func (g *Generator) Next() (ids.ObjectID, bool) {
	if g.pos >= g.cfg.TotalRequests {
		return 0, false
	}
	i := g.pos
	g.pos++

	if i < g.fillEnd {
		// Fill phase: new object IDs in sequence, with a small
		// repeat probability over the already-introduced prefix.
		if i > 0 && g.fillRng.Float64() < g.cfg.FillRepeatProb {
			return ids.ObjectID(g.fillRng.Intn(i) + 1), true
		}
		return ids.ObjectID(i + 1), true
	}

	if i == g.phase2End {
		// Phase 3 starts: replay phase 2 exactly by re-seeding the
		// request RNG and the one-timer counter (§V.1.6: phase 2
		// "repeats itself in Phase 3").
		g.reqRng = rand.New(rand.NewSource(g.cfg.Seed + 1))
		g.oneTimers = 0
	}
	if g.cfg.OneTimerProb > 0 && g.reqRng.Float64() < g.cfg.OneTimerProb {
		g.oneTimers++
		return ids.ObjectID(oneTimerBase + g.oneTimers), true
	}
	rank := g.zipf.Rank(g.reqRng)
	return ids.ObjectID(g.perm[rank]), true
}
