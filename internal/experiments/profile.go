// Package experiments reproduces every figure of the paper's evaluation
// (§V): the ADC-vs-hashing hit-rate and hops time series (Figs. 11–12),
// the table-size sensitivity sweeps (Figs. 13–14), the processing-time
// sweep (Fig. 15), and the extension studies the paper lists as future
// work (max-hops bound, selective-caching and aging ablations, consistent
// hashing, ordered-table backends).
//
// All experiments run off a Profile whose Scale knob shrinks the paper's
// reference setup proportionally: Scale 1.0 is the paper's 3.99 M-request
// trace against 5 proxies with 20k/20k/10k tables; the default Scale 0.1
// reproduces every curve's shape in seconds on a laptop. EXPERIMENTS.md
// records a paper-vs-measured comparison for each figure.
package experiments

import (
	"fmt"
	"math"

	"github.com/adc-sim/adc/internal/cluster"
	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/workload"
)

// Paper-scale reference constants (§V.2: "20k entries for the single and
// the multiple-table and 10k entries for the caching table in each of the
// 5 running proxies", ≈3.99 M requests). The hot-population constant is
// the calibrated substitution for PolyMix-4's working set (DESIGN.md §3):
// at these proportions both algorithms plateau near the paper's 0.7 hit
// rate with ADC marginally ahead, matching Fig. 11.
const (
	paperRequests     = 3_990_000
	paperSingleSize   = 20_000
	paperMultipleSize = 20_000
	paperCachingSize  = 10_000
	paperPopulation   = 10_000
	paperProxies      = 5
)

// Profile parameterises one experiment campaign.
type Profile struct {
	// Scale shrinks the paper's reference setup proportionally.
	// 1.0 = full paper scale; default 0.1.
	Scale float64
	// Proxies is the array size (paper: 5).
	Proxies int
	// Seed drives every random stream of the campaign.
	Seed int64
	// Window is the hit-rate moving-average window (paper: 5000).
	Window int
	// EntryPolicy selects how clients pick their entry proxy.
	EntryPolicy sim.EntryPolicy
	// Backend selects the ordered-table backend for non-timing
	// experiments (timing experiments force the paper-faithful ones).
	Backend core.Backend
	// Shards, when positive, runs each simulation on the sharded
	// parallel engine with that many worker shards instead of the
	// sequential runtime. Results are byte-identical either way; the
	// knob exists so large sweeps can exploit multiple cores inside a
	// single simulation rather than only across simulations.
	// Experiments that require a specific runtime (fault injection,
	// tracing, tick-bucketed metrics) ignore it.
	Shards int
	// Parallelism bounds how many independent simulations an experiment
	// runs concurrently. 0 means GOMAXPROCS; 1 forces the sequential
	// path. Whatever the width, results are bit-identical: every run is
	// seeded exactly as in the sequential path and results are slotted
	// by index, not arrival order. Only wall-clock timing fields
	// (SweepPoint.Elapsed, BackendPoint.Elapsed) are perturbed by
	// concurrent execution; run timing studies with Parallelism 1 when
	// their absolute values matter.
	Parallelism int
	// Progress, when non-nil, is called after each completed simulation
	// of a fan-out. Calls are serialized and Done is monotonic.
	Progress func(info ProgressInfo)
}

// ProgressInfo is the state of a running fan-out after one more completed
// simulation.
type ProgressInfo struct {
	// Done counts completed simulations; Total is the fan-out size.
	Done, Total int
	// Workers is the resolved worker-pool width for this fan-out (the
	// Parallelism knob after defaulting and clamping).
	Workers int
	// Events is the cumulative number of engine message deliveries across
	// all completed simulations; divided by elapsed wall-clock it yields
	// the engine's events/sec throughput. Zero for runs on the concurrent
	// runtimes, which do not track a global delivery counter.
	Events uint64
}

// DefaultProfile returns the standard laptop-scale campaign.
func DefaultProfile() Profile {
	return Profile{Scale: 0.1, Proxies: paperProxies, Seed: 1, Window: 5000}
}

// PaperProfile returns the full-scale campaign matching the paper.
func PaperProfile() Profile {
	p := DefaultProfile()
	p.Scale = 1.0
	return p
}

// Validate reports the first profile error.
func (p Profile) Validate() error {
	if p.Scale <= 0 || p.Scale > 4 {
		return fmt.Errorf("experiments: scale must be in (0,4], got %v", p.Scale)
	}
	if p.Proxies <= 0 {
		return fmt.Errorf("experiments: proxies must be positive, got %d", p.Proxies)
	}
	if p.Window <= 0 {
		return fmt.Errorf("experiments: window must be positive, got %d", p.Window)
	}
	return nil
}

// scaled rounds n·Scale up to at least 1.
func (p Profile) scaled(n int) int {
	v := int(math.Round(float64(n) * p.Scale))
	if v < 1 {
		v = 1
	}
	return v
}

// Requests returns the scaled trace length.
func (p Profile) Requests() int { return p.scaled(paperRequests) }

// Tables returns the scaled reference table configuration.
func (p Profile) Tables() core.Config {
	return core.Config{
		SingleSize:   p.scaled(paperSingleSize),
		MultipleSize: p.scaled(paperMultipleSize),
		CachingSize:  p.scaled(paperCachingSize),
		Backend:      p.Backend,
	}
}

// WorkloadConfig returns the scaled synthetic PolyMix-like workload.
func (p Profile) WorkloadConfig() workload.Config {
	cfg := workload.DefaultConfig(p.Requests())
	cfg.PopulationSize = p.scaled(paperPopulation)
	cfg.Seed = p.Seed
	return cfg
}

// NewWorkload builds the profile's workload generator.
func (p Profile) NewWorkload() (*workload.Generator, error) {
	return workload.New(p.WorkloadConfig())
}

// traceCache shares materialized request streams across all experiments in
// the process: a figure campaign runs dozens of simulations over a handful
// of distinct workload configs, so each stream is generated once and
// replayed through cursors. Four entries cover the default campaign (the
// reference trace plus the shorter timing/backend traces) while bounding
// memory at full paper scale (~32 MB per 3.99 M-request trace).
var traceCache = workload.NewTraceCache(4)

// PurgeTraceCache drops every materialized trace, releasing memory between
// campaigns.
func PurgeTraceCache() { traceCache.Purge() }

// trace returns the profile's materialized reference workload.
func (p Profile) trace() (*workload.Trace, error) {
	return traceCache.Get(p.WorkloadConfig())
}

// traceFor materializes (or re-uses) the stream for an explicit workload
// config, for experiments that override the reference trace length.
func (p Profile) traceFor(cfg workload.Config) (*workload.Trace, error) {
	return traceCache.Get(cfg)
}

// ClusterConfig assembles the cluster configuration for one run. With
// Shards > 0 the run uses the parallel engine; callers that force another
// runtime must also clear Shards (see forceVirtualTime).
func (p Profile) ClusterConfig(algo cluster.Algorithm, tables core.Config, sampleEvery uint64) cluster.Config {
	cfg := cluster.Config{
		Algorithm:   algo,
		NumProxies:  p.Proxies,
		Tables:      tables,
		Seed:        p.Seed,
		EntryPolicy: p.EntryPolicy,
		Window:      p.Window,
		SampleEvery: sampleEvery,
	}
	if p.Shards > 0 {
		cfg.Runtime = cluster.RuntimeParallel
		cfg.Shards = p.Shards
	}
	return cfg
}

// forceVirtualTime pins a run to the sequential virtual-time engine,
// undoing any profile-level parallel-engine selection — for experiments
// whose features (faults, tracing, recovery) only that runtime supports.
func forceVirtualTime(cfg *cluster.Config) {
	cfg.Runtime = cluster.RuntimeVirtualTime
	cfg.Shards = 0
}

// run executes one simulation with a cursor over the profile's shared
// materialized workload.
func (p Profile) run(cfg cluster.Config) (*cluster.Result, error) {
	tr, err := p.trace()
	if err != nil {
		return nil, err
	}
	return cluster.Run(cfg, tr.Cursor())
}
