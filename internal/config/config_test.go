package config

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/adc-sim/adc/internal/cluster"
)

func TestDefaultBuilds(t *testing.T) {
	ccfg, wcfg, err := Default().Build()
	if err != nil {
		t.Fatal(err)
	}
	if ccfg.Algorithm != cluster.ADC || ccfg.NumProxies != 5 {
		t.Errorf("cluster config = %+v", ccfg)
	}
	if wcfg.TotalRequests != 399_000 {
		t.Errorf("workload requests = %d", wcfg.TotalRequests)
	}
}

func TestParseOverrides(t *testing.T) {
	f, err := Parse([]byte(`{
		"algorithm": "carp",
		"proxies": 8,
		"cachingTable": 500,
		"runtime": "agents",
		"entry": "fixed",
		"backend": "skiplist",
		"workload": {"requests": 1000, "population": 50}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ccfg, wcfg, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ccfg.Algorithm != cluster.CARP || ccfg.NumProxies != 8 {
		t.Errorf("overrides lost: %+v", ccfg)
	}
	if ccfg.Runtime != cluster.RuntimeAgents {
		t.Errorf("runtime = %v", ccfg.Runtime)
	}
	if wcfg.TotalRequests != 1000 || wcfg.PopulationSize != 50 {
		t.Errorf("workload = %+v", wcfg)
	}
}

func TestParseRejectsBadValues(t *testing.T) {
	cases := []string{
		`{`,
		`{"algorithm": "quantum"}`,
		`{"entry": "sideways"}`,
		`{"runtime": "blockchain"}`,
		`{"backend": "rope"}`,
		`{"proxies": -1}`,
		`{"workload": {"requests": -5}}`,
	}
	for _, in := range cases {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("Parse(%s) must fail", in)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.json")
	f := Default()
	f.Algorithm = "chash"
	f.Seed = 99
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Algorithm != "chash" || loaded.Seed != 99 {
		t.Errorf("round trip lost fields: %+v", loaded)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/exp.json"); err == nil ||
		!strings.Contains(err.Error(), "read") {
		t.Errorf("err = %v", err)
	}
}

func TestWorkloadSeedDefaultsToRunSeed(t *testing.T) {
	f := Default()
	f.Seed = 42
	f.Workload.Seed = 0
	_, wcfg, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if wcfg.Seed != 42 {
		t.Errorf("workload seed = %d, want inherited 42", wcfg.Seed)
	}
}
