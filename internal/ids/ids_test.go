package ids

import (
	"testing"
	"testing/quick"
)

func TestNodeIDClassification(t *testing.T) {
	cases := []struct {
		n        NodeID
		isProxy  bool
		isClient bool
	}{
		{0, true, false},
		{7, true, false},
		{None, false, false},
		{Origin, false, false},
		{Client(0), false, true},
		{Client(5), false, true},
	}
	for _, tc := range cases {
		if got := tc.n.IsProxy(); got != tc.isProxy {
			t.Errorf("%v.IsProxy() = %v", tc.n, got)
		}
		if got := tc.n.IsClient(); got != tc.isClient {
			t.Errorf("%v.IsClient() = %v", tc.n, got)
		}
	}
}

func TestClientRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		n := Client(i)
		if !n.IsClient() {
			t.Fatalf("Client(%d) = %v not a client", i, n)
		}
		if got := n.ClientIndex(); got != i {
			t.Fatalf("ClientIndex = %d, want %d", got, i)
		}
	}
}

func TestClientIndexPanicsOnNonClient(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ClientIndex on a proxy must panic")
		}
	}()
	NodeID(3).ClientIndex()
}

func TestNodeIDStrings(t *testing.T) {
	cases := map[NodeID]string{
		None:      "None",
		Origin:    "Origin",
		0:         "Proxy[0]",
		12:        "Proxy[12]",
		Client(0): "Client[0]",
		Client(3): "Client[3]",
	}
	for n, want := range cases {
		if got := n.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int32(n), got, want)
		}
	}
}

func TestObjectIDString(t *testing.T) {
	if got := ObjectID(634).String(); got != "www.xy634" {
		t.Errorf("String = %q", got)
	}
}

func TestRequestIDPacking(t *testing.T) {
	prop := func(client uint8, counter uint32) bool {
		r := NewRequestID(int(client), uint64(counter))
		return r.ClientIndex() == int(client) && r.Counter() == uint64(counter)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRequestIDUniqueAcrossClients(t *testing.T) {
	seen := make(map[RequestID]bool)
	for c := 0; c < 8; c++ {
		for n := uint64(0); n < 100; n++ {
			id := NewRequestID(c, n)
			if seen[id] {
				t.Fatalf("duplicate request ID %v", id)
			}
			seen[id] = true
		}
	}
}

func TestRequestIDString(t *testing.T) {
	if got := NewRequestID(2, 7).String(); got != "req(2:7)" {
		t.Errorf("String = %q", got)
	}
}
