// Package carp implements the hashing-based distributed caching baseline
// the paper compares against (§V.1.1): the Cache Array Routing Protocol
// (ref [29], Cohen et al., internet draft v1.1). A globally known hash
// function assigns every object to exactly one proxy; unresolved requests
// are forwarded there, and that proxy caches the object with plain LRU and
// replies to the client directly, bypassing the first-hit proxy.
package carp

import (
	"math/bits"

	"github.com/adc-sim/adc/internal/ids"
)

// Hasher deterministically maps objects onto a fixed proxy membership
// using CARP's highest-random-weight (rendezvous) construction: each
// (object, member) pair gets a combined score and the member with the
// highest score owns the object. Unlike modulo hashing, membership changes
// only remap 1/n of the objects — the property that made CARP attractive
// for proxy arrays.
type Hasher struct {
	members []ids.NodeID
	// memberHash holds the precomputed per-member hashes of the draft's
	// Section 3.1.
	memberHash []uint64
}

// NewHasher builds the global hash over the given membership. The member
// list must be non-empty; every proxy in the system constructs an
// identical Hasher, which is what "globally known hashing function" means.
func NewHasher(members []ids.NodeID) *Hasher {
	ms := make([]ids.NodeID, len(members))
	copy(ms, members)
	mh := make([]uint64, len(ms))
	for i, m := range ms {
		mh[i] = memberHash(uint64(m))
	}
	return &Hasher{members: ms, memberHash: mh}
}

// Members returns the membership (shared slice: treat as read-only).
func (h *Hasher) Members() []ids.NodeID { return h.members }

// Assign returns the proxy responsible for obj.
func (h *Hasher) Assign(obj ids.ObjectID) ids.NodeID {
	oh := objectHash(uint64(obj))
	best := 0
	bestScore := combine(oh, h.memberHash[0])
	for i := 1; i < len(h.memberHash); i++ {
		if s := combine(oh, h.memberHash[i]); s > bestScore {
			bestScore = s
			best = i
		}
	}
	return h.members[best]
}

// The CARP draft hashes URL strings with a rotating hash and combines with
// the member hash via XOR, a multiplicative scramble and a rotation. Our
// object IDs are already integers, so the string-walk is replaced by a
// 64-bit finalizer (SplitMix64) with the draft's combine step on top; the
// distribution properties (uniform, deterministic, member-independent) are
// what the baseline's behaviour depends on, not the exact constants.

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func objectHash(x uint64) uint64 { return splitmix64(x) }

func memberHash(x uint64) uint64 {
	// The draft multiplies the member hash by a constant to spread it;
	// we scramble twice with distinct offsets.
	return splitmix64(splitmix64(x ^ 0xC0FFEE))
}

// combine mirrors the draft's combination step on 64-bit lanes:
// XOR, multiply by the draft's constant, rotate left by 21.
func combine(objHash, memHash uint64) uint64 {
	v := objHash ^ memHash
	v += v * 0x62531965
	return bits.RotateLeft64(v, 21)
}
