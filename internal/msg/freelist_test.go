package msg

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

func TestFreelistRequestRoundTrip(t *testing.T) {
	var f Freelist
	r := f.GetRequest()
	if r.Path == nil || len(r.Path) != 0 {
		t.Fatalf("fresh request Path = %v, want empty non-nil", r.Path)
	}
	r.To = 3
	r.ID = ids.NewRequestID(0, 7)
	r.Hops = 5
	r.Path = append(r.Path, 1, 2)
	grown := &r.Path[0]

	f.PutRequest(r)
	r2 := f.GetRequest()
	if r2 != r {
		t.Error("freelist did not reuse the recycled request")
	}
	if r2.To != 0 || r2.ID != 0 || r2.Hops != 0 || len(r2.Path) != 0 {
		t.Errorf("recycled request not zeroed: %+v", r2)
	}
	if cap(r2.Path) < 2 || &r2.Path[:1][0] != grown {
		t.Error("recycled request did not reuse the path backing array")
	}
}

func TestFreelistReplyRoundTrip(t *testing.T) {
	var f Freelist
	rep := f.GetReply()
	rep.To = 9
	rep.Cached = true
	rep.Path = append(rep.Path, 4)
	f.PutReply(rep)

	rep2 := f.GetReply()
	if rep2 != rep {
		t.Error("freelist did not reuse the recycled reply")
	}
	if rep2.To != 0 || rep2.Cached || rep2.Path != nil {
		t.Errorf("recycled reply not zeroed: %+v", rep2)
	}
	// The path backing array moved to the path pool and comes back on the
	// next request.
	r := f.GetRequest()
	if cap(r.Path) == 0 {
		t.Error("reply path was not reclaimed into the path pool")
	}
}

func TestFreelistPathTransfer(t *testing.T) {
	// The Resolve flow: the request's path transfers to the reply, the
	// request is recycled with Path nilled, and recycling both must not
	// double-reclaim the same backing array.
	var f Freelist
	req := f.GetRequest()
	req.Path = append(req.Path, 1, 2, 3)

	rep := f.GetReply()
	rep.InitFrom(req)
	req.Path = nil // transferred
	f.PutRequest(req)

	if rep.PathLen != 3 || len(rep.Path) != 3 {
		t.Fatalf("reply path = %v (PathLen %d), want the request's 3 hops", rep.Path, rep.PathLen)
	}
	rep.Path = rep.Path[:0]
	f.PutReply(rep)

	// Exactly one backing array must be in the pool (from the reply); the
	// nilled request contributed none.
	if n := len(f.paths); n != 1 {
		t.Errorf("path pool holds %d arrays, want 1", n)
	}
}

func TestInitFromMatchesReplyTo(t *testing.T) {
	req := &Request{
		To: 2, ID: ids.NewRequestID(1, 9), Object: 42,
		Client: ids.Client(1), Sender: 2,
		Path: []ids.NodeID{0, 2}, Hops: 3, MaxHops: 8,
	}
	want := ReplyTo(req)
	var got Reply
	got.Cached = true // stale state must be overwritten
	got.InitFrom(req)
	if got.ID != want.ID || got.Object != want.Object || got.Client != want.Client ||
		got.Resolver != want.Resolver || got.Cached != want.Cached ||
		got.FromOrigin != want.FromOrigin || got.Hops != want.Hops ||
		got.PathLen != want.PathLen || len(got.Path) != len(want.Path) {
		t.Errorf("InitFrom = %+v, ReplyTo = %+v", got, *want)
	}
}
