package experiments

import (
	"testing"

	"github.com/adc-sim/adc/internal/sim"
)

// TestLossSweepParallelMatchesSequential is the regression test for the
// pooled-run fault-counter plumbing: every counter a LossPoint carries —
// Dropped, Timeouts, Retries, Abandoned, LeakedPending — must surface
// identically whether the sweep's runs share a worker pool or execute
// sequentially. A pooled run that read counters from the wrong cluster (or
// from a cluster still running) would disagree here.
func TestLossSweepParallelMatchesSequential(t *testing.T) {
	rates := []float64{0, 0.02}
	p := tinyProfile()
	p.Parallelism = 1
	want, err := LossSweep(p, rates, sim.Recovery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Points) != 2*len(rates) {
		t.Fatalf("%d points, want %d", len(want.Points), 2*len(rates))
	}
	// The lossy recovery arm must actually exercise the fault counters,
	// or this test proves nothing about them.
	lossyRec := want.Points[3]
	if !lossyRec.Recovery || lossyRec.Loss != 0.02 {
		t.Fatalf("point 3 = %+v, want the loss=0.02 recovery arm", lossyRec)
	}
	if lossyRec.Dropped == 0 || lossyRec.Retries == 0 {
		t.Fatalf("lossy recovery arm has zero fault activity (%+v); widen the workload", lossyRec)
	}

	for _, workers := range []int{2, 4} {
		p.Parallelism = workers
		got, err := LossSweep(p, rates, sim.Recovery{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Points) != len(want.Points) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got.Points), len(want.Points))
		}
		for i := range want.Points {
			if got.Points[i] != want.Points[i] {
				t.Errorf("workers=%d point %d: got %+v, want %+v", workers, i, got.Points[i], want.Points[i])
			}
		}
	}
}
