// Package adc is a faithful, self-contained reproduction of Adaptive
// Distributed Caching (Kaiser, Tsui, Liu — "A Study of the Performance and
// Parameter Sensitivity of Adaptive Distributed Caching", ICDCS 2003): a
// self-organizing distributed proxy cache in which every proxy is an
// autonomous agent that learns object locations from replies retracing the
// request path ("multicasting by backwarding"), keeps three bounded mapping
// tables (single, multiple, caching), and caches selectively by aged
// average request frequency.
//
// The package offers three levels of entry:
//
//   - Run executes one complete simulation — N proxy agents, an origin
//     server and a closed-loop client replaying a workload — and returns
//     hit-rate, hop and timing measurements. Algorithms: ADC, the CARP
//     hashing baseline the paper compares against, and a consistent-hashing
//     extension baseline. Runtimes: a deterministic sequential engine, one
//     goroutine per agent, or real TCP sockets on loopback.
//
//   - NewWorkload generates the paper's three-phase synthetic request
//     stream (fill, request-I, request-II = replay of request-I) with
//     Zipf-skewed popularity and one-timer pollution; SaveTrace/LoadTrace
//     persist streams for exact repetition.
//
//   - The Experiment functions (Compare, Sweep, MaxHopsSweep, the
//     Ablations) regenerate every figure of the paper's evaluation; see
//     EXPERIMENTS.md for the measured-vs-paper record.
//
// Everything is deterministic given a seed, uses only the standard
// library, and runs the paper's full 3.99 M-request setup in about a
// minute (Scale 1.0) or a 1/10-scale replica in seconds.
package adc

import (
	"fmt"
	"time"

	"github.com/adc-sim/adc/internal/cluster"
	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/sim"
)

// Algorithm selects the distributed-caching scheme to simulate.
type Algorithm string

// Supported algorithms.
const (
	// ADC is the paper's Adaptive Distributed Caching.
	ADC Algorithm = "adc"
	// CARP is the paper's hashing baseline (§V.1.1, highest-random-
	// weight hashing with LRU caches and direct-to-client replies).
	CARP Algorithm = "carp"
	// CHash replaces CARP's hash with a consistent-hashing ring
	// (Karger et al.) — an extension baseline.
	CHash Algorithm = "chash"
	// Hierarchical is the classic parent/child caching-tree baseline:
	// N leaves share one root parent; every proxy on the reply path
	// caches with LRU. One extra node (the root) joins the array.
	Hierarchical Algorithm = "hier"
	// Coordinator is the authors' first-generation central-coordinator
	// baseline (paper §II.1): one content-blind dispatcher in front of
	// N LRU caches; every message passes through it.
	Coordinator Algorithm = "coord"
)

// EntryPolicy selects which proxy a client sends each request to.
type EntryPolicy string

// Supported entry policies.
const (
	// EntryRandom picks a uniformly random proxy per request (default).
	EntryRandom EntryPolicy = "random"
	// EntryRoundRobin cycles through the proxies.
	EntryRoundRobin EntryPolicy = "round-robin"
	// EntryFixed pins every request to proxy 0.
	EntryFixed EntryPolicy = "fixed"
)

// Runtime selects the execution substrate.
type Runtime string

// Supported runtimes. All three produce identical metrics under the
// default single-client closed loop (the paper's §V.1.2 equivalence).
const (
	// RuntimeSequential is the deterministic single-threaded engine.
	RuntimeSequential Runtime = "sequential"
	// RuntimeAgents runs one goroutine per node with channel mailboxes.
	RuntimeAgents Runtime = "agents"
	// RuntimeTCP gives every node a loopback TCP listener and moves
	// each hop through real sockets as binary frames.
	RuntimeTCP Runtime = "tcp"
	// RuntimeVirtualTime is the discrete-event engine: every transfer
	// is delayed by a latency model (Config.Latency), producing
	// response-time metrics; required for open-loop injection.
	RuntimeVirtualTime Runtime = "vtime"
)

// Latency models the virtual-time cost of each message transfer, in
// abstract ticks (the defaults read as microseconds: 5 ms client↔proxy,
// 10 ms proxy↔proxy, 50 ms proxy↔origin, 0.1 ms service).
type Latency struct {
	ClientProxy int64
	ProxyProxy  int64
	ProxyOrigin int64
	Service     int64
}

// TableBackend selects the ordered-table data structure.
type TableBackend string

// Supported backends.
const (
	// BackendBTree is a bounded block B-tree keyed by (Key, Object):
	// O(log n) search with block-local memmoves. Default — it is the
	// "more adapted data structure" the paper calls for in §V.3.3 and
	// produces byte-identical results to the others.
	BackendBTree TableBackend = "btree"
	// BackendSlice is a sorted slice with binary search (the paper's
	// own structure).
	BackendSlice TableBackend = "slice"
	// BackendSkipList is the O(log n) replacement the paper proposes
	// as future work (§V.3.3).
	BackendSkipList TableBackend = "skiplist"
	// BackendList is the fully paper-faithful O(n) linked list, for
	// the Fig. 15 timing reproduction only.
	BackendList TableBackend = "list"
)

// Config describes one simulation. Zero fields take the paper's reference
// values where one exists (5 proxies, 20k/20k/10k tables — scaled only if
// you say so — unbounded hops, window 5000).
type Config struct {
	// Algorithm selects ADC (default), CARP or CHash.
	Algorithm Algorithm

	// Proxies is the array size. Default 5 (§V.2).
	Proxies int

	// SingleTable, MultipleTable and CachingTable size each proxy's
	// mapping tables in entries. Defaults 20000/20000/10000 (§V.2).
	// For CARP/CHash, CachingTable is the LRU cache size and the other
	// two are ignored.
	SingleTable   int
	MultipleTable int
	CachingTable  int

	// MaxHops bounds ADC's forwarding chain; 0 (default) is unbounded,
	// matching the paper.
	MaxHops int

	// Seed makes the run reproducible. Default 1.
	Seed int64

	// Entry selects the client's entry-proxy policy. Default random.
	Entry EntryPolicy

	// Clients is the number of closed-loop drivers. Default 1, which
	// is also what makes all runtimes deterministic and equivalent.
	Clients int

	// Window is the hit-rate moving-average window. Default 5000
	// (§V.2.1).
	Window int

	// SampleEvery records one time-series point per n completed
	// requests; 0 disables series collection.
	SampleEvery int

	// Runtime selects sequential (default), agents or tcp.
	Runtime Runtime

	// Backend selects the ordered-table implementation. Default btree.
	Backend TableBackend

	// SingleScan switches the single-table to the paper's O(n)
	// element-wise scan (timing studies only).
	SingleScan bool

	// CacheLRU replaces selective caching with cache-all-passing LRU
	// (the §III.4 comparison baseline; ablation studies only).
	CacheLRU bool

	// AgingOff disables the Fig. 4 aging rule (ablation studies only).
	AgingOff bool

	// LatencyModel sets the virtual-time link costs for
	// RuntimeVirtualTime; nil selects the default WAN model.
	LatencyModel *Latency

	// OpenLoopInterval switches clients to open-loop injection with
	// this mean inter-arrival time in virtual ticks (0 = closed loop;
	// requires RuntimeVirtualTime). Poisson selects exponential gaps.
	OpenLoopInterval int64
	Poisson          bool

	// JoinProxyAt grows the cluster by one fresh ADC proxy when the
	// request stream crosses each index (strictly increasing; requires
	// ADC, the sequential runtime and a single client). The newcomer
	// starts with empty tables and attracts load purely through
	// self-organization.
	JoinProxyAt []uint64
}

// withDefaults fills unset fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = ADC
	}
	if c.Proxies == 0 {
		c.Proxies = 5
	}
	if c.SingleTable == 0 {
		c.SingleTable = 20_000
	}
	if c.MultipleTable == 0 {
		c.MultipleTable = 20_000
	}
	if c.CachingTable == 0 {
		c.CachingTable = 10_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Entry == "" {
		c.Entry = EntryRandom
	}
	if c.Clients == 0 {
		c.Clients = 1
	}
	if c.Window == 0 {
		c.Window = 5000
	}
	if c.Runtime == "" {
		c.Runtime = RuntimeSequential
	}
	if c.Backend == "" {
		c.Backend = BackendBTree
	}
	return c
}

// toInternal converts to the internal cluster configuration.
func (c Config) toInternal() (cluster.Config, error) {
	c = c.withDefaults()
	algo, err := cluster.ParseAlgorithm(string(c.Algorithm))
	if err != nil {
		return cluster.Config{}, err
	}
	var entry sim.EntryPolicy
	switch c.Entry {
	case EntryRandom:
		entry = sim.EntryRandom
	case EntryRoundRobin:
		entry = sim.EntryRoundRobin
	case EntryFixed:
		entry = sim.EntryFixed
	default:
		return cluster.Config{}, fmt.Errorf("adc: unknown entry policy %q", c.Entry)
	}
	var rt cluster.Runtime
	switch c.Runtime {
	case RuntimeSequential:
		rt = cluster.RuntimeSequential
	case RuntimeAgents:
		rt = cluster.RuntimeAgents
	case RuntimeTCP:
		rt = cluster.RuntimeTCP
	case RuntimeVirtualTime:
		rt = cluster.RuntimeVirtualTime
	default:
		return cluster.Config{}, fmt.Errorf("adc: unknown runtime %q", c.Runtime)
	}
	var latency sim.LatencyModel
	if c.LatencyModel != nil {
		latency = sim.LatencyModel{
			ClientProxy: c.LatencyModel.ClientProxy,
			ProxyProxy:  c.LatencyModel.ProxyProxy,
			ProxyOrigin: c.LatencyModel.ProxyOrigin,
			Service:     c.LatencyModel.Service,
		}
	}
	backend, ok := core.ParseBackend(string(c.Backend))
	if !ok {
		return cluster.Config{}, fmt.Errorf("adc: unknown backend %q", c.Backend)
	}
	return cluster.Config{
		Algorithm:  algo,
		NumProxies: c.Proxies,
		Tables: core.Config{
			SingleSize:    c.SingleTable,
			MultipleSize:  c.MultipleTable,
			CachingSize:   c.CachingTable,
			Backend:       backend,
			SingleScan:    c.SingleScan,
			CacheAdmitAll: c.CacheLRU,
			AgingOff:      c.AgingOff,
		},
		MaxHops:          c.MaxHops,
		Seed:             c.Seed,
		EntryPolicy:      entry,
		Clients:          c.Clients,
		Window:           c.Window,
		SampleEvery:      uint64(c.SampleEvery),
		Runtime:          rt,
		Latency:          latency,
		OpenLoopInterval: c.OpenLoopInterval,
		Poisson:          c.Poisson,
		JoinProxyAt:      c.JoinProxyAt,
	}, nil
}

// Point is one time-series sample: windowed and cumulative hit rate and
// hops, keyed by completed requests.
type Point struct {
	Requests   uint64
	HitRate    float64
	CumHitRate float64
	Hops       float64
	CumHops    float64
}

// ProxyStats are one proxy's event counters after a run.
type ProxyStats struct {
	Requests        uint64
	LocalHits       uint64
	ForwardLearned  uint64
	ForwardRandom   uint64
	ForwardOrigin   uint64
	LoopsDetected   uint64
	RepliesSeen     uint64
	CacheInsertions uint64
	CacheEvictions  uint64
}

// Result is the outcome of one simulation.
type Result struct {
	// Requests and Hits count completed requests and proxy-cache hits.
	Requests uint64
	Hits     uint64
	// HitRate is Hits/Requests over the whole run.
	HitRate float64
	// Hops is the mean message transfers per request (§V.2.2).
	Hops float64
	// PathLen is the mean number of proxies on the forwarding path.
	PathLen float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// MeanResponse and MaxResponse are virtual-time response times in
	// ticks; zero unless the run used RuntimeVirtualTime.
	MeanResponse float64
	MaxResponse  float64
	// Series holds time-series samples when SampleEvery > 0.
	Series []Point
	// ProxyStats has one entry per proxy, indexed by proxy ID.
	ProxyStats []ProxyStats
	// OriginResolved counts requests the origin server had to answer.
	OriginResolved uint64
}

// Run builds a cluster for cfg and replays src against it.
func Run(cfg Config, src Source) (*Result, error) {
	icfg, err := cfg.toInternal()
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("adc: workload source must not be nil")
	}
	res, err := cluster.Run(icfg, sourceAdapter{src})
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}

func convertResult(res *cluster.Result) *Result {
	out := &Result{
		Requests:       res.Summary.Requests,
		Hits:           res.Summary.Hits,
		HitRate:        res.Summary.HitRate,
		Hops:           res.Summary.Hops,
		PathLen:        res.Summary.PathLen,
		Elapsed:        res.Elapsed,
		MeanResponse:   res.Summary.MeanResponse,
		MaxResponse:    res.Summary.MaxResponse,
		OriginResolved: res.OriginResolved,
	}
	for _, p := range res.Series {
		out.Series = append(out.Series, Point{
			Requests:   p.Requests,
			HitRate:    p.HitRate,
			CumHitRate: p.CumHitRate,
			Hops:       p.Hops,
			CumHops:    p.CumHops,
		})
	}
	for _, s := range res.ProxyStats {
		out.ProxyStats = append(out.ProxyStats, ProxyStats(s))
	}
	return out
}
