// Command adcgen generates the synthetic three-phase workload (the
// PolyMix-4 substitution, DESIGN.md §3) and writes it as a binary or text
// trace for exactly repeatable experiments.
//
// Examples:
//
//	adcgen -o trace.bin                       # default 400k-request stream
//	adcgen -requests 3990000 -o paper.bin     # paper-scale trace
//	adcgen -format text -o trace.txt          # one object ID per line
//	adcgen -stats                             # print phase/popularity stats only
//	adcgen -from-squid access.log -o real.bin # convert a Squid log to a trace
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/adc-sim/adc"
	"github.com/adc-sim/adc/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adcgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adcgen", flag.ContinueOnError)
	var (
		requests   = fs.Int("requests", 400_000, "stream length")
		population = fs.Int("population", 1000, "hot object population (0: 20% of fill)")
		alpha      = fs.Float64("alpha", 0.8, "Zipf popularity exponent")
		oneTimers  = fs.Float64("onetimers", 0.3, "request-phase one-timer probability")
		seed       = fs.Int64("seed", 1, "random seed")
		out        = fs.String("o", "", "output file (required unless -stats)")
		format     = fs.String("format", "binary", "output format: binary or text")
		stats      = fs.Bool("stats", false, "print stream statistics instead of writing")
		fromSquid  = fs.String("from-squid", "", "convert a Squid access.log into a trace instead of generating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *fromSquid != "" {
		return convertSquid(*fromSquid, *out)
	}

	cfg := adc.WorkloadConfig{
		Requests:     *requests,
		Population:   *population,
		Alpha:        *alpha,
		OneTimerProb: *oneTimers,
		Seed:         *seed,
	}
	gen, err := adc.NewWorkload(cfg)
	if err != nil {
		return err
	}

	if *stats {
		return printStats(gen)
	}
	if *out == "" {
		return fmt.Errorf("output file required (-o), or use -stats")
	}

	switch *format {
	case "binary":
		if err := adc.SaveTraceFile(*out, gen); err != nil {
			return err
		}
	case "text":
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close() //nolint:errcheck // double close guarded below
		if err := writeText(f, gen); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want binary or text)", *format)
	}
	fmt.Printf("wrote %d requests to %s (%s)\n", *requests, *out, *format)
	return nil
}

// convertSquid parses a Squid access.log and writes it as a binary trace.
func convertSquid(logPath, out string) error {
	if out == "" {
		return fmt.Errorf("output file required (-o)")
	}
	f, err := os.Open(logPath)
	if err != nil {
		return err
	}
	defer f.Close() //nolint:errcheck // read-only file
	src, stats, err := trace.ParseSquidLog(f)
	if err != nil {
		return err
	}
	outF, err := os.Create(out)
	if err != nil {
		return err
	}
	defer outF.Close() //nolint:errcheck // close error checked below
	if err := trace.Write(outF, src); err != nil {
		return err
	}
	if err := outF.Close(); err != nil {
		return err
	}
	fmt.Printf("converted %d requests (%d distinct URLs, %d malformed lines skipped) to %s\n",
		stats.Requests, stats.Distinct, stats.Malformed, out)
	return nil
}

func writeText(f *os.File, src adc.Source) error {
	for {
		obj, ok := src.Next()
		if !ok {
			return nil
		}
		if _, err := fmt.Fprintln(f, obj); err != nil {
			return err
		}
	}
}

func printStats(gen *adc.Workload) error {
	fillEnd, phase2End := gen.Boundaries()
	st := adc.AnalyzeWorkload(gen)
	fmt.Printf("requests          %d\n", st.Requests)
	fmt.Printf("phases            fill [0,%d)  request-I [%d,%d)  request-II [%d,%d)\n",
		fillEnd, fillEnd, phase2End, phase2End, st.Requests)
	fmt.Printf("distinct objects  %d\n", st.Distinct)
	fmt.Printf("hot population    %d\n", gen.Population())
	fmt.Printf("one-timer objects %d (%.1f%% of objects)\n",
		st.OneTimers, 100*float64(st.OneTimers)/float64(st.Distinct))
	fmt.Printf("recurring traffic %.1f%% of requests (warm-cache ceiling)\n", 100*st.RecurringShare)
	fmt.Printf("hottest object    %d requests\n", st.MaxObjectRequests)
	fmt.Printf("top 1%% objects    %.1f%% of requests\n", 100*st.Top1Share)
	fmt.Printf("top 10%% objects   %.1f%% of requests\n", 100*st.Top10Share)
	return nil
}
