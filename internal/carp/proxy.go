package carp

import (
	"fmt"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/lru"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/sim"
)

// Proxy is one member of the CARP baseline array, following §V.1.1 of the
// paper exactly:
//
//	"A proxy in the CARP algorithm tries to resolve incoming requests by
//	means of its locally cached data and forwards the unresolved request
//	in accordance to a globally known hashing function ... If the second
//	proxy cannot resolve the forwarded request, the request will be
//	assigned to the origin server. After the request got resolved the
//	second proxy will store the received data replacing existing
//	information based on the LRU algorithm and forward the request
//	directly to the requesting client, bypassing the first proxy."
type Proxy struct {
	id     ids.NodeID
	hasher Assigner
	cache  *lru.Cache[ids.ObjectID, struct{}]
	stats  metrics.ProxyStats
	tracer *obs.Tracer
}

var _ sim.Node = (*Proxy)(nil)

// Assigner is the globally known object→proxy mapping. Hasher (CARP's
// highest-random-weight hash) is the paper's baseline; internal/chash's
// consistent-hashing ring is the extension comparator. Every proxy in an
// array must hold an equivalent Assigner.
type Assigner interface {
	Assign(obj ids.ObjectID) ids.NodeID
}

var _ Assigner = (*Hasher)(nil)

// Config assembles one CARP proxy.
type Config struct {
	// ID is the proxy's node ID.
	ID ids.NodeID
	// Hasher is the globally known hash (identical across proxies).
	Hasher Assigner
	// CacheSize bounds the local LRU cache, in objects — comparable to
	// the ADC caching-table size.
	CacheSize int
}

// New builds a CARP proxy.
func New(cfg Config) (*Proxy, error) {
	if !cfg.ID.IsProxy() {
		return nil, fmt.Errorf("carp: %v is not a proxy ID", cfg.ID)
	}
	if cfg.Hasher == nil {
		return nil, fmt.Errorf("carp: proxy %v needs a hasher", cfg.ID)
	}
	if cfg.CacheSize <= 0 {
		return nil, fmt.Errorf("carp: cache size must be positive, got %d", cfg.CacheSize)
	}
	return &Proxy{
		id:     cfg.ID,
		hasher: cfg.Hasher,
		cache:  lru.New[ids.ObjectID, struct{}](cfg.CacheSize),
	}, nil
}

// ID implements sim.Node.
func (p *Proxy) ID() ids.NodeID { return p.id }

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() metrics.ProxyStats { return p.stats }

// CacheLen returns the number of cached objects.
func (p *Proxy) CacheLen() int { return p.cache.Len() }

// SetTracer installs the request tracer (before the run starts).
func (p *Proxy) SetTracer(t *obs.Tracer) { p.tracer = t }

// Handle implements sim.Node.
func (p *Proxy) Handle(ctx sim.Context, m msg.Message) {
	switch t := m.(type) {
	case *msg.Request:
		p.receiveRequest(ctx, t)
	case *msg.Reply:
		p.receiveReply(ctx, t)
	}
}

func (p *Proxy) receiveRequest(ctx sim.Context, req *msg.Request) {
	p.stats.Requests++

	// Local cache first.
	if _, ok := p.cache.Get(req.Object); ok {
		p.stats.LocalHits++
		if p.tracer.Enabled(obs.KindHit) {
			e := obs.Ev(obs.KindHit, p.id)
			e.At = sim.TraceNow(ctx)
			e.Req = req.ID
			e.Obj = req.Object
			e.Loc = p.id
			e.Hops = int32(req.Hops)
			p.tracer.Emit(e)
		}
		rep := sim.Resolve(ctx, req)
		rep.Resolver = p.id
		rep.Cached = true
		// Reply directly to the client, bypassing any first proxy. Keep
		// the (empty) path's backing array so it recycles with the reply.
		rep.Path = rep.Path[:0]
		rep.To = rep.Client
		ctx.Send(rep)
		return
	}

	assigned := p.hasher.Assign(req.Object)
	if assigned != p.id {
		// First-hit proxy: hand over to the assigned proxy. The
		// path stays empty because the reply will bypass us.
		p.stats.ForwardLearned++
		req.Sender = p.id
		req.To = assigned
		p.traceForward(ctx, req, obs.ReasonHashed)
		ctx.Send(req)
		return
	}

	// We are the assigned proxy and missed: fetch from the origin. The
	// path records us so the reply comes back here for caching.
	p.stats.ForwardOrigin++
	req.Sender = p.id
	req.Path = append(req.Path, p.id)
	req.To = ids.Origin
	p.traceForward(ctx, req, obs.ReasonSelfOrigin)
	ctx.Send(req)
}

// traceForward emits one forward event for req as routed (req.To set).
func (p *Proxy) traceForward(ctx sim.Context, req *msg.Request, reason int64) {
	if !p.tracer.Enabled(obs.KindForward) {
		return
	}
	e := obs.Ev(obs.KindForward, p.id)
	e.At = sim.TraceNow(ctx)
	e.Req = req.ID
	e.Obj = req.Object
	e.To = req.To
	e.Hops = int32(req.Hops)
	e.Arg = reason
	p.tracer.Emit(e)
}

func (p *Proxy) receiveReply(ctx sim.Context, rep *msg.Reply) {
	p.stats.RepliesSeen++
	// Store the received data with LRU replacement, then forward
	// directly to the client.
	evicted := p.cache.Put(rep.Object, struct{}{})
	if evicted {
		p.stats.CacheEvictions++
	}
	p.stats.CacheInsertions++
	rep.Resolver = p.id
	rep.Cached = true
	rep.Path = rep.Path[:0]
	rep.To = rep.Client
	if p.tracer.Enabled(obs.KindBackward) {
		// CARP has no mapping tables; model the LRU insert as a
		// none→caching transition so the outcome decodes uniformly.
		e := obs.Ev(obs.KindBackward, p.id)
		e.At = sim.TraceNow(ctx)
		e.Req = rep.ID
		e.Obj = rep.Object
		e.To = rep.To
		e.Loc = p.id
		e.Hops = int32(rep.Hops)
		e.Arg = obs.EncodeOutcome(0, 1, evicted, false, false)
		p.tracer.Emit(e)
	}
	ctx.Send(rep)
}
