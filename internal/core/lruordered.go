package core

import "github.com/adc-sim/adc/internal/ids"

// lruOrdered is an Ordered implementation that orders by recency of update
// instead of aged average: Insert always places the entry at the
// most-recent end and evicts the least recently updated entry when full.
// Together with Config.CacheAdmitAll it turns the caching table into the
// "typical LRU algorithm" the paper compares selective caching against
// (§III.4) — the ablation baseline, not part of the ADC algorithm proper.
type lruOrdered struct {
	capacity   int
	head, tail *lruNode // head.next = most recently inserted
	size       int
	index      map[ids.ObjectID]*lruNode
}

type lruNode struct {
	entry      *Entry
	prev, next *lruNode
}

var _ Ordered = (*lruOrdered)(nil)

func newLRUOrdered(capacity int) *lruOrdered {
	t := &lruOrdered{
		capacity: capacity,
		head:     &lruNode{},
		tail:     &lruNode{},
		index:    make(map[ids.ObjectID]*lruNode, capacity),
	}
	t.head.next = t.tail
	t.tail.prev = t.head
	return t
}

func (t *lruOrdered) Len() int { return t.size }
func (t *lruOrdered) Cap() int { return t.capacity }

func (t *lruOrdered) Contains(obj ids.ObjectID) bool {
	_, ok := t.index[obj]
	return ok
}

func (t *lruOrdered) Get(obj ids.ObjectID) *Entry {
	if n, ok := t.index[obj]; ok {
		return n.entry
	}
	return nil
}

func (t *lruOrdered) Remove(obj ids.ObjectID) *Entry {
	n, ok := t.index[obj]
	if !ok {
		return nil
	}
	t.unlink(n)
	delete(t.index, obj)
	return n.entry
}

func (t *lruOrdered) Insert(e *Entry) *Entry {
	if t.capacity == 0 {
		return e
	}
	var evicted *Entry
	if t.size >= t.capacity {
		evicted = t.RemoveWorst()
	}
	n := &lruNode{entry: e}
	n.prev = t.head
	n.next = t.head.next
	t.head.next.prev = n
	t.head.next = n
	t.index[e.Object] = n
	t.size++
	return evicted
}

func (t *lruOrdered) RemoveWorst() *Entry {
	if t.size == 0 {
		return nil
	}
	n := t.tail.prev
	t.unlink(n)
	delete(t.index, n.entry.Object)
	return n.entry
}

func (t *lruOrdered) WorstKey() (int64, bool) {
	if t.size == 0 {
		return 0, false
	}
	return t.tail.prev.entry.Key(), true
}

// Entries returns entries from most to least recently updated; "ascending
// key order" does not apply to the recency ordering.
func (t *lruOrdered) Entries() []*Entry {
	out := make([]*Entry, 0, t.size)
	for n := t.head.next; n != t.tail; n = n.next {
		out = append(out, n.entry)
	}
	return out
}

func (t *lruOrdered) unlink(n *lruNode) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
	t.size--
}
