package cluster

import (
	"math"
	"reflect"
	"testing"

	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/trace"
)

// parallelShardCounts are the widths the acceptance criterion names.
var parallelShardCounts = []int{1, 2, 4, 8}

// requireSameRunResult compares every deterministic field of two Results
// (Elapsed is wall clock and legitimately differs).
func requireSameRunResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	sw, sg := want.Summary, got.Summary
	sw.Elapsed, sg.Elapsed = 0, 0
	if sw != sg {
		t.Errorf("%s: summaries differ:\nwant %+v\n got %+v", label, sw, sg)
	}
	if !reflect.DeepEqual(want.Series, got.Series) {
		t.Errorf("%s: time series differ", label)
	}
	if !reflect.DeepEqual(want.ProxyStats, got.ProxyStats) {
		t.Errorf("%s: proxy stats differ:\nwant %+v\n got %+v", label, want.ProxyStats, got.ProxyStats)
	}
	if want.Delivered != got.Delivered {
		t.Errorf("%s: delivered = %d, want %d", label, got.Delivered, want.Delivered)
	}
	if want.OriginResolved != got.OriginResolved {
		t.Errorf("%s: origin resolved = %d, want %d", label, got.OriginResolved, want.OriginResolved)
	}
	if want.Injected != got.Injected || want.Completion != got.Completion {
		t.Errorf("%s: injected/completion = %d/%v, want %d/%v",
			label, got.Injected, got.Completion, want.Injected, want.Completion)
	}
	if want.LeakedPending != got.LeakedPending {
		t.Errorf("%s: leaked pending = %d, want %d", label, got.LeakedPending, want.LeakedPending)
	}
}

// TestParallelGoldenDeterminism is the tentpole gate: the sharded engine
// must reproduce the sequential virtual-time golden run byte for byte at
// shards ∈ {1, 2, 4, 8}. The headline numbers are additionally pinned
// against the same hardcoded constants TestGoldenDeterminism guards, so a
// simultaneous drift of both engines cannot slip through the comparison.
func TestParallelGoldenDeterminism(t *testing.T) {
	oracle, err := Run(goldenConfig(RuntimeVirtualTime), trace.NewSliceSource(goldenTrace()))
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-9
	if oracle.Delivered != 23482 || oracle.Summary.Requests != 4000 || oracle.Summary.Hits != 1290 {
		t.Fatalf("sequential oracle drifted from the golden run: delivered=%d requests=%d hits=%d",
			oracle.Delivered, oracle.Summary.Requests, oracle.Summary.Hits)
	}
	if math.Abs(oracle.Summary.MeanResponse-103492.05) > eps || oracle.Summary.MaxResponse != 211400 {
		t.Fatalf("sequential oracle drifted from the golden run: response %v/%v",
			oracle.Summary.MeanResponse, oracle.Summary.MaxResponse)
	}
	for _, shards := range parallelShardCounts {
		cfg := goldenConfig(RuntimeParallel)
		cfg.Shards = shards
		res, err := Run(cfg, trace.NewSliceSource(goldenTrace()))
		if err != nil {
			t.Fatal(err)
		}
		requireSameRunResult(t, cfg.Runtime.String()+"/"+string(rune('0'+shards)), oracle, res)
	}
}

// TestParallelOpenLoopDeterminism repeats the gate under open-loop
// injection — many requests in flight, wide timestamp cohorts, the regime
// the parallel engine exists for.
func TestParallelOpenLoopDeterminism(t *testing.T) {
	build := func(rt Runtime, shards int) Config {
		cfg := goldenConfig(rt)
		cfg.Shards = shards
		cfg.Clients = 6
		cfg.OpenLoopInterval = 900
		cfg.Poisson = true
		return cfg
	}
	oracle, err := Run(build(RuntimeVirtualTime, 0), trace.NewSliceSource(goldenTrace()))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range parallelShardCounts {
		res, err := Run(build(RuntimeParallel, shards), trace.NewSliceSource(goldenTrace()))
		if err != nil {
			t.Fatal(err)
		}
		requireSameRunResult(t, "open-loop", oracle, res)
	}
}

// TestParallelAllAlgorithms runs every caching scheme on the parallel
// runtime against the virtual-time oracle: the engine contract is
// scheme-agnostic, so CARP, consistent hashing, the hierarchy and the
// coordinator (whose extra node sits outside the proxy ID block) must all
// agree, not just ADC.
func TestParallelAllAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{CARP, CHash, Hierarchical, Coordinator} {
		t.Run(alg.String(), func(t *testing.T) {
			build := func(rt Runtime, shards int) Config {
				cfg := goldenConfig(rt)
				cfg.Algorithm = alg
				cfg.Shards = shards
				return cfg
			}
			oracle, err := Run(build(RuntimeVirtualTime, 0), trace.NewSliceSource(goldenTrace()))
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 3, 4} {
				res, err := Run(build(RuntimeParallel, shards), trace.NewSliceSource(goldenTrace()))
				if err != nil {
					t.Fatal(err)
				}
				requireSameRunResult(t, alg.String(), oracle, res)
			}
		})
	}
}

// TestParallelValidation pins the runtime's feature gates: the parallel
// engine covers the lossless protocol only, and Shards is meaningless on
// any other runtime.
func TestParallelValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"plain parallel", func(c *Config) {}, true},
		{"explicit shards", func(c *Config) { c.Shards = 4 }, true},
		{"open loop allowed", func(c *Config) { c.OpenLoopInterval = 1000 }, true},
		{"recovery allowed", func(c *Config) { c.Recovery = sim.DefaultRecovery() }, false},
		{"negative shards", func(c *Config) { c.Shards = -1 }, false},
		{"shards on vtime", func(c *Config) { c.Runtime = RuntimeVirtualTime; c.Shards = 2 }, false},
		{"shards on sequential", func(c *Config) { c.Runtime = RuntimeSequential; c.Shards = 2 }, false},
		{"faults", func(c *Config) { c.Faults = &sim.FaultPlan{Loss: 0.1} }, false},
		{"proxy crash", func(c *Config) { c.CrashProxyAt = []ProxyCrash{{Proxy: 1, At: 100}} }, false},
		{"tracer", func(c *Config) { c.Tracer = obs.New(obs.KindInject) }, false},
		{"metrics every", func(c *Config) { c.MetricsEvery = 10_000 }, false},
		{"churn", func(c *Config) { c.JoinProxyAt = []uint64{100}; c.Clients = 1 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := goldenConfig(RuntimeParallel)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("expected a validation error, got nil")
			}
		})
	}
}
