// Package transport runs a proxy system over real TCP sockets: every node
// gets its own listener on the loopback interface and every hop travels
// through the kernel's network stack as a length-prefixed binary frame
// (internal/wire). This is the in-repo equivalent of the paper's
// distributed deployment — "we distributed the agents in such a fashion
// that each host runs exactly one ADC-agent" (§V.1.2) — and the testbed
// for its claim that distributed and single-process runs agree.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/wire"
)

// Network hosts a set of nodes, each behind its own TCP listener.
// Build with NewNetwork, add nodes with Register, then call Run.
type Network struct {
	endpoints map[ids.NodeID]*endpoint
	addrs     map[ids.NodeID]string
	wg        sync.WaitGroup

	mu      sync.Mutex
	started bool
	closed  bool
}

// endpoint is one node's listener plus its outgoing connection cache.
type endpoint struct {
	net  *Network
	node sim.Node
	ln   net.Listener

	// handleMu serializes Handle: a node is an agent with a single
	// logical mailbox even when several TCP peers deliver concurrently.
	handleMu sync.Mutex

	// connsMu guards the lazily dialed outgoing connections.
	connsMu sync.Mutex
	conns   map[ids.NodeID]net.Conn
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		endpoints: make(map[ids.NodeID]*endpoint),
		addrs:     make(map[ids.NodeID]string),
	}
}

// Register opens a loopback listener for n. It must be called before Run.
func (nw *Network) Register(n sim.Node) error {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.started {
		return errors.New("transport: Register after Run")
	}
	if _, dup := nw.endpoints[n.ID()]; dup {
		return fmt.Errorf("transport: duplicate node %v", n.ID())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("transport: listen for %v: %w", n.ID(), err)
	}
	nw.endpoints[n.ID()] = &endpoint{
		net:   nw,
		node:  n,
		ln:    ln,
		conns: make(map[ids.NodeID]net.Conn),
	}
	nw.addrs[n.ID()] = ln.Addr().String()
	return nil
}

// Addr returns the listen address of a registered node (test support).
func (nw *Network) Addr(id ids.NodeID) (string, bool) {
	a, ok := nw.addrs[id]
	return a, ok
}

// Run starts the accept loops, injects Starter traffic, waits for done to
// close, then tears everything down. Like the other runtimes, node state
// is safe to read after Run returns.
func (nw *Network) Run(done <-chan struct{}) error {
	nw.mu.Lock()
	if nw.started {
		nw.mu.Unlock()
		return errors.New("transport: Run called twice")
	}
	nw.started = true
	nw.mu.Unlock()

	for _, ep := range nw.endpoints {
		ep := ep
		nw.wg.Add(1)
		go func() {
			defer nw.wg.Done()
			ep.acceptLoop()
		}()
	}

	// Inject initial traffic. Starters send through their own endpoint
	// so replies flow back over TCP.
	for _, ep := range nw.endpoints {
		if s, ok := ep.node.(sim.Starter); ok {
			s.Start(ep)
		}
	}

	<-done

	nw.mu.Lock()
	nw.closed = true
	nw.mu.Unlock()
	for _, ep := range nw.endpoints {
		ep.close()
	}
	nw.wg.Wait()
	return nil
}

func (nw *Network) isClosed() bool {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.closed
}

func (ep *endpoint) acceptLoop() {
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return // listener closed during shutdown
		}
		ep.net.wg.Add(1)
		go func() {
			defer ep.net.wg.Done()
			ep.readLoop(conn)
		}()
	}
}

func (ep *endpoint) readLoop(conn net.Conn) {
	defer conn.Close() //nolint:errcheck // best-effort close on a read path
	for {
		m, err := wire.ReadMessage(conn)
		if err != nil {
			return // EOF or shutdown
		}
		ep.handleMu.Lock()
		ep.node.Handle(ep, m)
		ep.handleMu.Unlock()
	}
}

var _ sim.Context = (*endpoint)(nil)

// Send implements sim.Context: it counts the hop, then writes the frame on
// a cached connection to the destination, dialing on first use.
func (ep *endpoint) Send(m msg.Message) {
	sim.CountHop(m)
	conn, err := ep.connTo(m.Dest())
	if err != nil {
		// During shutdown sends can race listener teardown; outside
		// shutdown an unroutable destination is a wiring bug that
		// surfaces as a stalled closed loop in tests.
		return
	}
	if err := wire.WriteMessage(conn, m); err != nil {
		// Drop the broken connection; the next send re-dials.
		ep.connsMu.Lock()
		if ep.conns[m.Dest()] == conn {
			delete(ep.conns, m.Dest())
		}
		ep.connsMu.Unlock()
		conn.Close() //nolint:errcheck // already on the error path
	}
}

func (ep *endpoint) connTo(dst ids.NodeID) (net.Conn, error) {
	ep.connsMu.Lock()
	defer ep.connsMu.Unlock()
	if conn, ok := ep.conns[dst]; ok {
		return conn, nil
	}
	if ep.net.isClosed() {
		return nil, errors.New("transport: network closed")
	}
	addr, ok := ep.net.addrs[dst]
	if !ok {
		return nil, fmt.Errorf("transport: no address for %v", dst)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %v: %w", dst, err)
	}
	ep.conns[dst] = conn
	return conn, nil
}

func (ep *endpoint) close() {
	ep.ln.Close() //nolint:errcheck // shutdown path
	ep.connsMu.Lock()
	defer ep.connsMu.Unlock()
	for id, conn := range ep.conns {
		conn.Close() //nolint:errcheck // shutdown path
		delete(ep.conns, id)
	}
}
