// Tablesweep: the paper's parameter-sensitivity question — which of the
// three mapping tables actually buys hit rate? — answered through the
// public API (Figs. 13–14 in miniature).
//
//	go run ./examples/tablesweep
package main

import (
	"fmt"
	"log"

	"github.com/adc-sim/adc"
)

func main() {
	const (
		requests   = 120_000
		population = 1_000
	)

	// Sweep each table through 2×..8× of a base size while holding the
	// other two at the reference configuration, exactly like §V.3.
	ref := adc.Config{
		Proxies:       5,
		SingleTable:   2_000,
		MultipleTable: 2_000,
		CachingTable:  1_000,
		Seed:          7,
	}
	sizes := []int{500, 1_000, 2_000, 3_000}

	fmt.Println("table     size   hit-rate   hops")
	for _, table := range []string{"caching", "multiple", "single"} {
		for _, size := range sizes {
			cfg := ref
			switch table {
			case "caching":
				cfg.CachingTable = size
			case "multiple":
				cfg.MultipleTable = size
			case "single":
				cfg.SingleTable = size
			}
			workload, err := adc.NewWorkload(adc.WorkloadConfig{
				Requests:   requests,
				Population: population,
				Seed:       7,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := adc.Run(cfg, workload)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s %5d   %.4f     %.2f\n", table, size, res.HitRate, res.Hops)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape (paper Fig. 13): the caching table dominates the")
	fmt.Println("hit rate; single and multiple sizes barely matter once big enough.")
}
