package obs

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

// belief returns a backward event teaching node that obj lives at loc.
func belief(seq uint64, node ids.NodeID, obj ids.ObjectID, loc ids.NodeID) Event {
	return Event{Seq: seq, Kind: KindBackward, Node: node, Obj: obj, To: 0, Loc: loc}
}

func TestConvergenceTimesAgreement(t *testing.T) {
	obj := ids.ObjectID(1)
	m := ConvergenceTimes([]Event{
		belief(1, 0, obj, 3),
		belief(2, 1, obj, 3),
		belief(3, 2, obj, 3),
	})
	c := m[obj]
	if c == nil {
		t.Fatal("object missing from convergence map")
	}
	if !c.Converged {
		t.Fatal("uniform beliefs not converged")
	}
	// A single believer is already uniform, so agreement starts at seq 1.
	if c.FirstSeen != 1 || c.StableFrom != 1 {
		t.Errorf("FirstSeen=%d StableFrom=%d, want 1,1", c.FirstSeen, c.StableFrom)
	}
	if c.FinalLoc != 3 || c.Believers != 3 {
		t.Errorf("FinalLoc=%v Believers=%d, want 3,3", c.FinalLoc, c.Believers)
	}
	if c.Time() != 0 {
		t.Errorf("Time() = %d, want 0 (stable from first sight)", c.Time())
	}
}

func TestConvergenceTimesDisagreementThenAgreement(t *testing.T) {
	obj := ids.ObjectID(1)
	m := ConvergenceTimes([]Event{
		belief(1, 0, obj, 3), // uniform (one believer)
		belief(5, 1, obj, 4), // disagreement breaks it
		belief(9, 1, obj, 3), // re-learns; uniform again from seq 9
	})
	c := m[obj]
	if !c.Converged {
		t.Fatal("re-agreed beliefs not converged")
	}
	if c.StableFrom != 9 {
		t.Errorf("StableFrom = %d, want 9 (start of final uninterrupted agreement)", c.StableFrom)
	}
	if c.Time() != 8 {
		t.Errorf("Time() = %d, want 8", c.Time())
	}
}

func TestConvergenceTimesNeverAgreed(t *testing.T) {
	obj := ids.ObjectID(1)
	m := ConvergenceTimes([]Event{
		belief(1, 0, obj, 3),
		belief(2, 1, obj, 4),
	})
	c := m[obj]
	if c.Converged {
		t.Fatal("split beliefs reported converged")
	}
	if c.Time() != 0 {
		t.Errorf("unconverged Time() = %d, want 0", c.Time())
	}
	if c.FinalLoc != ids.None || c.Believers != 0 {
		t.Errorf("unconverged FinalLoc=%v Believers=%d", c.FinalLoc, c.Believers)
	}
}

func TestConvergenceTimesInvalidateAndHit(t *testing.T) {
	obj := ids.ObjectID(1)
	hit := Event{Seq: 3, Kind: KindHit, Node: 2, Obj: obj, To: ids.None, Loc: 2}
	inv := Event{Seq: 4, Kind: KindInvalidate, Node: 0, Obj: obj, To: ids.None, Loc: ids.None}
	m := ConvergenceTimes([]Event{
		belief(1, 0, obj, 3),
		belief(2, 1, obj, 2), // split: 0 believes 3, 1 believes 2
		hit,                  // proxy 2 believes itself (2); still split
		inv,                  // invalidate removes 0's belief → uniform on 2
	})
	c := m[obj]
	if !c.Converged {
		t.Fatal("post-invalidate agreement not converged")
	}
	if c.FinalLoc != 2 || c.Believers != 2 {
		t.Errorf("FinalLoc=%v Believers=%d, want 2,2", c.FinalLoc, c.Believers)
	}
	if c.StableFrom != 4 {
		t.Errorf("StableFrom = %d, want 4", c.StableFrom)
	}
}

func TestConvergenceTimesIgnoresLoclessBackward(t *testing.T) {
	obj := ids.ObjectID(1)
	m := ConvergenceTimes([]Event{
		{Seq: 1, Kind: KindBackward, Node: 0, Obj: obj, To: 0, Loc: ids.None},
	})
	if len(m) != 0 {
		t.Errorf("loc-less backward created %d convergence entries", len(m))
	}
}

func TestSummarizeConvergence(t *testing.T) {
	m := map[ids.ObjectID]*Convergence{
		1: {Obj: 1, Converged: true, FirstSeen: 10, StableFrom: 30}, // time 20
		2: {Obj: 2, Converged: true, FirstSeen: 5, StableFrom: 105}, // time 100
		3: {Obj: 3, Converged: false},
	}
	s := SummarizeConvergence(m)
	if s.Objects != 3 || s.Converged != 2 || s.Unconverged != 1 {
		t.Errorf("census = %+v", s)
	}
	if s.MeanTime != 60 {
		t.Errorf("MeanTime = %v, want 60", s.MeanTime)
	}
	if s.MaxTime != 100 {
		t.Errorf("MaxTime = %v, want 100", s.MaxTime)
	}
	empty := SummarizeConvergence(nil)
	if empty.Objects != 0 || empty.MeanTime != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}
