package stats

import "sort"

// Load-imbalance statistics for per-proxy request shares. Backwarding
// concentrates each hot object on a single proxy, so a Zipf workload shows
// up directly in these numbers; they are the headline metric the
// hot-object replication controller must improve.

// MaxMeanRatio returns max(xs)/mean(xs) — how much hotter the hottest
// shard runs than the average shard. 1.0 is a perfectly even spread; the
// number of shards is the worst case (all load on one shard). Returns
// ErrEmpty for an empty set and 0 when the mean is zero.
func MaxMeanRatio(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum, max float64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 0, nil
	}
	return max * float64(len(xs)) / sum, nil
}

// Gini returns the Gini coefficient of xs (0 = perfectly even, → 1 =
// maximally concentrated), the standard scale-free inequality measure.
// Values are assumed non-negative. It does not mutate xs. Returns ErrEmpty
// for an empty set and 0 when all values are zero.
func Gini(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var sum, weighted float64
	for i, x := range sorted {
		sum += x
		weighted += float64(i+1) * x
	}
	if sum == 0 {
		return 0, nil
	}
	return (2*weighted - (n+1)*sum) / (n * sum), nil
}
