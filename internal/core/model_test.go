package core

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

// refTables is a deliberately naive executable model of the paper's
// Update_Entry (Fig. 8): plain slices, re-sorted from scratch after every
// operation. The real Tables must agree with it on every observable after
// every step — a model-based test that pins the promotion semantics
// independently of the optimised data structures.
type refTables struct {
	singleCap, multipleCap, cachingCap int
	single                             []*refEntry // index 0 = top (most recent)
	multiple                           []*refEntry // ascending (key, object)
	caching                            []*refEntry // ascending (key, object)
}

type refEntry struct {
	obj  ids.ObjectID
	loc  ids.NodeID
	last int64
	avg  int64
	hits int64
}

func (e *refEntry) key() int64 { return e.avg - e.last }

func (e *refEntry) calcAverage(now int64) {
	gap := now - e.last
	if e.hits <= 1 {
		e.avg = gap
	} else {
		e.avg = (e.avg + gap) / 2
	}
	e.hits++
	e.last = now
}

func refLess(a, b *refEntry) bool {
	if a.key() != b.key() {
		return a.key() < b.key()
	}
	return a.obj < b.obj
}

func (r *refTables) sortOrdered() {
	sort.SliceStable(r.multiple, func(i, j int) bool { return refLess(r.multiple[i], r.multiple[j]) })
	sort.SliceStable(r.caching, func(i, j int) bool { return refLess(r.caching[i], r.caching[j]) })
}

func removeFrom(list []*refEntry, obj ids.ObjectID) ([]*refEntry, *refEntry) {
	for i, e := range list {
		if e.obj == obj {
			return append(list[:i], list[i+1:]...), e
		}
	}
	return list, nil
}

func (r *refTables) admits(list []*refEntry, capacity int, e *refEntry) bool {
	if capacity == 0 {
		return false
	}
	if len(list) < capacity {
		return true
	}
	worst := list[len(list)-1]
	return e.key() < worst.key()
}

// pushSingleTop inserts on top of the LRU single-table, dropping the
// bottom entry when full.
func (r *refTables) pushSingleTop(e *refEntry) {
	if len(r.single) >= r.singleCap {
		r.single = r.single[:len(r.single)-1]
	}
	r.single = append([]*refEntry{e}, r.single...)
}

// update mirrors Fig. 8 exactly.
func (r *refTables) update(obj ids.ObjectID, loc ids.NodeID, now int64) {
	defer r.sortOrdered()

	// Part 1: caching table.
	if list, e := removeFrom(r.caching, obj); e != nil {
		r.caching = list
		e.calcAverage(now)
		e.loc = loc
		r.caching = append(r.caching, e)
		return
	}

	// Part 2: multiple-table.
	if list, e := removeFrom(r.multiple, obj); e != nil {
		r.multiple = list
		e.calcAverage(now)
		e.loc = loc
		r.sortOrdered() // keep worst-identification exact
		if r.admits(r.caching, r.cachingCap, e) {
			if len(r.caching) >= r.cachingCap {
				worst := r.caching[len(r.caching)-1]
				r.caching = r.caching[:len(r.caching)-1]
				r.multiple = append(r.multiple, worst)
			}
			r.caching = append(r.caching, e)
		} else {
			r.multiple = append(r.multiple, e)
		}
		return
	}

	// Part 3: single-table.
	if list, e := removeFrom(r.single, obj); e != nil {
		r.single = list
		e.calcAverage(now)
		e.loc = loc
		if r.admits(r.multiple, r.multipleCap, e) {
			if len(r.multiple) >= r.multipleCap {
				worst := r.multiple[len(r.multiple)-1]
				r.multiple = r.multiple[:len(r.multiple)-1]
				r.pushSingleTop(worst)
			}
			r.multiple = append(r.multiple, e)
		} else {
			r.pushSingleTop(e)
		}
		return
	}

	// Part 4: new entry.
	r.pushSingleTop(&refEntry{obj: obj, loc: loc, last: now, avg: 0, hits: 1})
}

func compareState(t *testing.T, step int, tbl *Tables, ref *refTables) {
	t.Helper()
	checkList := func(name string, got []*Entry, want []*refEntry) {
		if len(got) != len(want) {
			t.Fatalf("step %d: %s length %d, model %d", step, name, len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.Object != w.obj || g.Location != w.loc || g.Last != w.last ||
				g.Avg != w.avg || g.Hits != w.hits {
				t.Fatalf("step %d: %s[%d] = {%v %v %d %d %d}, model {%v %v %d %d %d}",
					step, name, i,
					g.Object, g.Location, g.Last, g.Avg, g.Hits,
					w.obj, w.loc, w.last, w.avg, w.hits)
			}
		}
	}
	checkList("caching", tbl.Caching().Entries(), ref.caching)
	checkList("multiple", tbl.Multiple().Entries(), ref.multiple)
	checkList("single", tbl.Single().Entries(), ref.single)
}

// TestTablesMatchExecutableModel runs long random request streams through
// the real Tables and the naive model and demands identical state after
// every update — across all three ordered-table backends and several
// capacity shapes.
func TestTablesMatchExecutableModel(t *testing.T) {
	shapes := []struct{ s, m, c int }{
		{4, 3, 2},
		{8, 4, 4},
		{2, 1, 1},
		{16, 8, 2},
	}
	for _, backend := range []Backend{BackendBTree, BackendSlice, BackendSkipList, BackendList} {
		for _, shape := range shapes {
			tbl, err := NewTables(Config{
				SingleSize: shape.s, MultipleSize: shape.m, CachingSize: shape.c,
				Backend: backend,
			})
			if err != nil {
				t.Fatal(err)
			}
			ref := &refTables{singleCap: shape.s, multipleCap: shape.m, cachingCap: shape.c}
			rng := rand.New(rand.NewSource(int64(shape.s*100 + shape.m)))
			now := int64(0)
			for step := 0; step < 4000; step++ {
				now += int64(rng.Intn(3)) // repeated timestamps allowed
				obj := ids.ObjectID(rng.Intn(24))
				loc := ids.NodeID(rng.Intn(4))
				tbl.Update(obj, loc, now)
				ref.update(obj, loc, now)
				compareState(t, step, tbl, ref)
			}
		}
	}
}
