// Command benchjson converts `go test -bench` output on stdin into a JSON
// record suitable for tracking benchmark results in the repository
// (BENCH_engine.json). Each benchmark line becomes one entry with its
// ns/op and allocs/op plus the git commit the numbers were measured at.
//
// Usage:
//
//	go test -bench 'BenchmarkVEngine|BenchmarkEngineADC' -run '^$' ./internal/sim/ | benchjson > BENCH_engine.json
//
// Lines that are not benchmark results (the goos/pkg header, PASS/ok
// trailers) pass through unparsed; anything that parses is recorded.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iterations"`
	NsPerOp  float64 `json:"ns_per_op"`
	BytesOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric values (e.g. events/s, ns/event).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// File is the BENCH_engine.json schema.
type File struct {
	GitSHA     string  `json:"git_sha"`
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
	// Baseline embeds the pre-optimization numbers the current ones are
	// compared against (-baseline flag).
	Baseline *File `json:"baseline,omitempty"`
}

func main() {
	sha := flag.String("sha", "", "record this commit instead of git rev-parse HEAD")
	baseline := flag.String("baseline", "", "embed this prior BENCH_engine.json as the baseline")
	flag.Parse()
	if err := run(*sha, *baseline); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(sha, baselinePath string) error {
	if sha == "" {
		sha = gitSHA()
	}
	out := File{
		GitSHA: sha,
		Date:   time.Now().UTC().Format(time.RFC3339),
	}
	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return err
		}
		var base File
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
		}
		base.Baseline = nil // one level of history only
		out.Baseline = &base
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "go: ") || strings.HasPrefix(line, "goos:") {
			continue
		}
		if v, ok := strings.CutPrefix(line, "go version "); ok {
			out.GoVersion = strings.Fields(v)[0]
			continue
		}
		if e, ok := parseBenchLine(line); ok {
			out.Benchmarks = append(out.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(out.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkVEngineADC-8  16  70250639 ns/op  4341913 events/s  22666666 B/op  197591 allocs/op
func parseBenchLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{
		Name:  trimProcsSuffix(fields[0]),
		Iters: iters,
	}
	// Results come as (value, unit) pairs after the iteration count.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesOp = v
		case "allocs/op":
			e.AllocsOp = v
		default:
			if e.Extra == nil {
				e.Extra = map[string]float64{}
			}
			e.Extra[unit] = v
		}
	}
	if e.NsPerOp == 0 {
		return Entry{}, false
	}
	return e, true
}

// trimProcsSuffix strips the numeric -N GOMAXPROCS suffix go test appends
// to benchmark names, so entries compare across machines.
func trimProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// gitSHA returns the current commit, or "unknown" outside a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
