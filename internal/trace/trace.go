// Package trace persists request streams so experiments can be repeated
// bit-for-bit — the reproducibility concern that pushed the paper's authors
// from ad-hoc server logs to a synthetic benchmark ("a lack of description
// that could allow a third person to repeat our test cases", §V.1.6).
//
// The binary format is a fixed header followed by unsigned-varint object
// IDs. A text format (one decimal object ID per line, '#' comments) is
// provided for interoperability with external tools.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/workload"
)

// magic identifies the binary trace format ("ADCTRC" + version byte).
var magic = [8]byte{'A', 'D', 'C', 'T', 'R', 'C', 0, 1}

// ErrBadMagic marks a stream that is not a binary ADC trace.
var ErrBadMagic = errors.New("trace: bad magic (not an ADC trace file)")

// Write encodes the full contents of src to w in the binary format.
func Write(w io.Writer, src workload.Source) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(src.Total()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: write count: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	written := 0
	for {
		obj, ok := src.Next()
		if !ok {
			break
		}
		n := binary.PutUvarint(buf[:], uint64(obj))
		if _, err := bw.Write(buf[:n]); err != nil {
			return fmt.Errorf("trace: write request %d: %w", written, err)
		}
		written++
	}
	if written != src.Total() {
		return fmt.Errorf("trace: source emitted %d requests, declared %d", written, src.Total())
	}
	return bw.Flush()
}

// Reader replays a binary trace as a workload.Source.
type Reader struct {
	br    *bufio.Reader
	total int
	read  int
	err   error
}

var _ workload.Source = (*Reader)(nil)

// NewReader validates the header and prepares replay.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if got != magic {
		return nil, ErrBadMagic
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: read count: %w", err)
	}
	return &Reader{br: br, total: int(binary.LittleEndian.Uint64(cnt[:]))}, nil
}

// Total implements workload.Source.
func (r *Reader) Total() int { return r.total }

// Next implements workload.Source.
func (r *Reader) Next() (ids.ObjectID, bool) {
	if r.err != nil || r.read >= r.total {
		return 0, false
	}
	v, err := binary.ReadUvarint(r.br)
	if err != nil {
		r.err = fmt.Errorf("trace: read request %d: %w", r.read, err)
		return 0, false
	}
	r.read++
	return ids.ObjectID(v), true
}

// Err returns the first decoding error encountered by Next, if any.
func (r *Reader) Err() error { return r.err }

// WriteText encodes src as one decimal object ID per line.
func WriteText(w io.Writer, src workload.Source) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# ADC trace, %d requests\n", src.Total())
	for {
		obj, ok := src.Next()
		if !ok {
			break
		}
		if _, err := bw.WriteString(strconv.FormatUint(uint64(obj), 10)); err != nil {
			return fmt.Errorf("trace: write text: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("trace: write text: %w", err)
		}
	}
	return bw.Flush()
}

// ReadText parses a text trace fully into memory and returns it as a
// Source. Blank lines and '#' comments are skipped.
func ReadText(r io.Reader) (workload.Source, error) {
	var objs []ids.ObjectID
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		objs = append(objs, ids.ObjectID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return NewSliceSource(objs), nil
}

// SliceSource replays an in-memory request list. It is also the unit-test
// workhorse for driving clusters with hand-crafted request sequences.
type SliceSource struct {
	objs []ids.ObjectID
	pos  int
}

var _ workload.Source = (*SliceSource)(nil)

// NewSliceSource wraps objs; the slice is not copied.
func NewSliceSource(objs []ids.ObjectID) *SliceSource {
	return &SliceSource{objs: objs}
}

// Next implements workload.Source.
func (s *SliceSource) Next() (ids.ObjectID, bool) {
	if s.pos >= len(s.objs) {
		return 0, false
	}
	obj := s.objs[s.pos]
	s.pos++
	return obj, true
}

// Total implements workload.Source.
func (s *SliceSource) Total() int { return len(s.objs) }

// Reset rewinds the source for another replay.
func (s *SliceSource) Reset() { s.pos = 0 }

// Drain reads every remaining request from src into a slice.
func Drain(src workload.Source) []ids.ObjectID {
	out := make([]ids.ObjectID, 0, src.Total())
	for {
		obj, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, obj)
	}
}
