package core

import (
	"sort"

	"github.com/adc-sim/adc/internal/ids"
)

// Ordered is a bounded table kept in ascending order of Entry.Key — the
// shared shape of the multiple-table (§III.3.2) and the caching table
// (§III.3.3). "This order allows the simple identification of the object
// with the worst average time and quick insertions/deletions" (§III.3.2).
//
// An entry's Key must stay constant while it is stored; callers remove an
// entry, mutate it (CalcAverage, Location), and re-insert it, exactly as
// the paper's Update_Entry does.
type Ordered interface {
	// Len returns the number of stored entries.
	Len() int
	// Cap returns the configured capacity.
	Cap() int
	// Contains reports whether obj has an entry.
	Contains(obj ids.ObjectID) bool
	// Get returns the entry for obj without removing it, or nil.
	Get(obj ids.ObjectID) *Entry
	// Remove takes the entry for obj out of the table; nil if absent.
	Remove(obj ids.ObjectID) *Entry
	// Insert places e at its ordered position (the paper's
	// InsertOrdered). If the table is full, the worst entry — the one
	// with the largest key, possibly e itself — is evicted and
	// returned; otherwise the return is nil.
	Insert(e *Entry) (evicted *Entry)
	// RemoveWorst evicts and returns the entry with the largest key
	// (the paper's RemoveLastEntry), or nil when empty.
	RemoveWorst() *Entry
	// WorstKey returns the largest key in the table; ok is false when
	// the table is empty.
	WorstKey() (key int64, ok bool)
	// Entries returns the entries in ascending key order. The slice is
	// freshly allocated; the entries are shared.
	Entries() []*Entry
}

// Backend selects the data structure behind an Ordered table.
type Backend int

// Supported ordered-table backends.
const (
	// BackendSlice is a sorted slice with binary search — the paper's
	// own structure ("insertion and deletion at the ordered
	// multiple-table is mostly operated by binary search algorithms",
	// §V.3.3). O(log n) search, O(n) insert/delete due to shifting.
	BackendSlice Backend = iota
	// BackendSkipList is a deterministic skip list — the "more adapted
	// data structure [that] should provide speed-ups" the paper calls
	// for in §V.3.3. O(log n) for every operation.
	BackendSkipList
	// BackendList is the fully paper-faithful sorted linked list with
	// element-wise search, used by the Fig. 15 timing reproduction.
	// O(n) everything; do not use outside that experiment.
	BackendList
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendSlice:
		return "slice"
	case BackendSkipList:
		return "skiplist"
	case BackendList:
		return "list"
	default:
		return "unknown"
	}
}

// NewOrdered returns an empty ordered table with the given capacity using
// the selected backend. Capacity must be non-negative (a zero-capacity
// table rejects every insert).
func NewOrdered(capacity int, backend Backend) Ordered {
	switch backend {
	case BackendSkipList:
		return newSkipTable(capacity)
	case BackendList:
		return newListTable(capacity)
	default:
		return newSliceTable(capacity)
	}
}

// sliceTable is the sorted-slice backend.
type sliceTable struct {
	capacity int
	entries  []*Entry // ascending by (Key, Object)
	index    map[ids.ObjectID]*Entry
}

var _ Ordered = (*sliceTable)(nil)

func newSliceTable(capacity int) *sliceTable {
	return &sliceTable{
		capacity: capacity,
		entries:  make([]*Entry, 0, capacity),
		index:    make(map[ids.ObjectID]*Entry, capacity),
	}
}

func (t *sliceTable) Len() int { return len(t.entries) }
func (t *sliceTable) Cap() int { return t.capacity }

func (t *sliceTable) Contains(obj ids.ObjectID) bool {
	_, ok := t.index[obj]
	return ok
}

func (t *sliceTable) Get(obj ids.ObjectID) *Entry { return t.index[obj] }

// position finds the index of e in the slice via binary search on
// (Key, Object). e must be present.
func (t *sliceTable) position(e *Entry) int {
	i := sort.Search(len(t.entries), func(i int) bool {
		return !less(t.entries[i], e)
	})
	// i now points at the first entry not less than e, which is e itself
	// because (Key, Object) is unique per table.
	return i
}

func (t *sliceTable) Remove(obj ids.ObjectID) *Entry {
	e, ok := t.index[obj]
	if !ok {
		return nil
	}
	i := t.position(e)
	copy(t.entries[i:], t.entries[i+1:])
	t.entries = t.entries[:len(t.entries)-1]
	delete(t.index, obj)
	return e
}

func (t *sliceTable) Insert(e *Entry) *Entry {
	if t.capacity == 0 {
		return e
	}
	i := sort.Search(len(t.entries), func(i int) bool {
		return !less(t.entries[i], e)
	})
	t.entries = append(t.entries, nil)
	copy(t.entries[i+1:], t.entries[i:])
	t.entries[i] = e
	t.index[e.Object] = e
	if len(t.entries) > t.capacity {
		return t.RemoveWorst()
	}
	return nil
}

func (t *sliceTable) RemoveWorst() *Entry {
	if len(t.entries) == 0 {
		return nil
	}
	e := t.entries[len(t.entries)-1]
	t.entries = t.entries[:len(t.entries)-1]
	delete(t.index, e.Object)
	return e
}

func (t *sliceTable) WorstKey() (int64, bool) {
	if len(t.entries) == 0 {
		return 0, false
	}
	return t.entries[len(t.entries)-1].Key(), true
}

func (t *sliceTable) Entries() []*Entry {
	out := make([]*Entry, len(t.entries))
	copy(out, t.entries)
	return out
}
