package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/workload"
)

func TestBinaryRoundTrip(t *testing.T) {
	objs := []ids.ObjectID{1, 5, 1 << 40, 0, 42, 42, 7}
	var buf bytes.Buffer
	if err := Write(&buf, NewSliceSource(objs)); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != len(objs) {
		t.Fatalf("Total = %d, want %d", r.Total(), len(objs))
	}
	got := Drain(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(got) != len(objs) {
		t.Fatalf("drained %d, want %d", len(got), len(objs))
	}
	for i := range objs {
		if got[i] != objs[i] {
			t.Errorf("request %d = %v, want %v", i, got[i], objs[i])
		}
	}
}

func TestBinaryRoundTripGeneratedWorkload(t *testing.T) {
	gen, err := workload.New(workload.DefaultConfig(5000))
	if err != nil {
		t.Fatal(err)
	}
	want := Drain(gen)
	gen.Reset()

	var buf bytes.Buffer
	if err := Write(&buf, gen); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(r)
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(strings.NewReader("not a trace file at all"))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(strings.NewReader("ADC")); err == nil {
		t.Error("truncated header must fail")
	}
}

func TestTruncatedBody(t *testing.T) {
	objs := []ids.ObjectID{1, 2, 3, 4, 5}
	var buf bytes.Buffer
	if err := Write(&buf, NewSliceSource(objs)); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	_ = Drain(r)
	if r.Err() == nil {
		t.Error("truncated body must surface an error via Err()")
	}
}

func TestTextRoundTrip(t *testing.T) {
	objs := []ids.ObjectID{10, 20, 30}
	var buf bytes.Buffer
	if err := WriteText(&buf, NewSliceSource(objs)); err != nil {
		t.Fatal(err)
	}
	src, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(src)
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("text round trip = %v", got)
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1\n  2 \n# mid\n3\n"
	src, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(src)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("parsed %v", got)
	}
}

func TestReadTextRejectsGarbage(t *testing.T) {
	if _, err := ReadText(strings.NewReader("1\nxyz\n")); err == nil {
		t.Error("garbage line must fail")
	}
}

func TestSliceSourceReset(t *testing.T) {
	s := NewSliceSource([]ids.ObjectID{1, 2})
	if got := Drain(s); len(got) != 2 {
		t.Fatalf("first drain = %v", got)
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted source must report !ok")
	}
	s.Reset()
	if got := Drain(s); len(got) != 2 {
		t.Errorf("post-reset drain = %v", got)
	}
}
