package workload

import (
	"fmt"
	"math/rand"

	"github.com/adc-sim/adc/internal/ids"
)

// ShiftConfig describes a non-stationary workload whose hot set is
// replaced by a disjoint one every Period requests — the "new set of
// request patterns" the paper's future work asks for (§VI) and the
// scenario that exercises self-organization: after each shift the system
// must expire the stale mappings (aging) and converge on new locations
// (backwarding) with no outside help.
type ShiftConfig struct {
	// TotalRequests is the stream length.
	TotalRequests int
	// Period is the number of requests between hot-set shifts.
	Period int
	// Population is the hot-set size of each epoch.
	Population int
	// Alpha is the Zipf popularity exponent within an epoch.
	// Default 0.8.
	Alpha float64
	// OneTimerProb mixes in never-repeated objects. Default 0 (the
	// shifts themselves provide the churn).
	OneTimerProb float64
	// Seed makes the stream deterministic. Default 1.
	Seed int64
}

// withDefaults fills unset fields.
func (c ShiftConfig) withDefaults() ShiftConfig {
	if c.Alpha == 0 {
		c.Alpha = 0.8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OneTimerProb < 0 {
		c.OneTimerProb = 0
	}
	return c
}

// Validate reports the first configuration error.
func (c ShiftConfig) Validate() error {
	c = c.withDefaults()
	if c.TotalRequests <= 0 {
		return fmt.Errorf("workload: TotalRequests must be positive, got %d", c.TotalRequests)
	}
	if c.Period <= 0 {
		return fmt.Errorf("workload: Period must be positive, got %d", c.Period)
	}
	if c.Population <= 0 {
		return fmt.Errorf("workload: Population must be positive, got %d", c.Population)
	}
	if c.OneTimerProb >= 1 {
		return fmt.Errorf("workload: OneTimerProb must be below 1, got %v", c.OneTimerProb)
	}
	return nil
}

// ShiftGenerator emits the shifting-hot-set stream. Epoch e draws from
// object IDs in [e·epochBase, e·epochBase + Population), so consecutive
// hot sets are fully disjoint.
type ShiftGenerator struct {
	cfg       ShiftConfig
	zipf      *Zipf
	rng       *rand.Rand
	pos       int
	oneTimers uint64
}

var _ Source = (*ShiftGenerator)(nil)

// epochBase spaces the epochs' ID ranges; one-timers live above
// oneTimerBase like in the stationary generator.
const epochBase = uint64(1) << 32

// NewShift builds a shifting-workload generator.
func NewShift(cfg ShiftConfig) (*ShiftGenerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	zipf, err := NewZipf(cfg.Population, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	g := &ShiftGenerator{cfg: cfg, zipf: zipf}
	g.Reset()
	return g, nil
}

// Reset rewinds the stream.
func (g *ShiftGenerator) Reset() {
	g.pos = 0
	g.oneTimers = 0
	g.rng = rand.New(rand.NewSource(g.cfg.Seed + 2))
}

// Total implements Source.
func (g *ShiftGenerator) Total() int { return g.cfg.TotalRequests }

// Epochs returns the number of hot-set epochs in the stream.
func (g *ShiftGenerator) Epochs() int {
	return (g.cfg.TotalRequests + g.cfg.Period - 1) / g.cfg.Period
}

// EpochAt returns the epoch index of stream position i.
func (g *ShiftGenerator) EpochAt(i int) int { return i / g.cfg.Period }

// Next implements Source.
func (g *ShiftGenerator) Next() (ids.ObjectID, bool) {
	if g.pos >= g.cfg.TotalRequests {
		return 0, false
	}
	epoch := uint64(g.pos / g.cfg.Period)
	g.pos++
	if g.cfg.OneTimerProb > 0 && g.rng.Float64() < g.cfg.OneTimerProb {
		g.oneTimers++
		return ids.ObjectID(oneTimerBase + g.oneTimers), true
	}
	rank := g.zipf.Rank(g.rng)
	return ids.ObjectID(epoch*epochBase + uint64(rank) + 1), true
}
