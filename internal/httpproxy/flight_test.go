package httpproxy

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
)

// slowOrigin is an origin stand-in whose responses take `delay`, widening
// the miss window so every concurrent client is guaranteed to arrive while
// the first chain is still in flight — the deterministic version of a
// flash crowd.
type slowOrigin struct {
	srv     *httptest.Server
	fetches atomic.Uint64
}

func newSlowOrigin(delay time.Duration) *slowOrigin {
	o := &slowOrigin{}
	o.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obj, err := parseObjectPath(r.URL.Path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		o.fetches.Add(1)
		time.Sleep(delay)
		w.Header().Set(HeaderOrigin, "1")
		_, _ = w.Write(Payload(obj))
	}))
	return o
}

// stormProxy builds a single proxy whose only peer is itself, backed by a
// slow origin: a miss random-forwards to itself, trips loop detection, and
// resolves at the origin — the shortest chain that still exercises the
// full forwarding path.
func stormProxy(t *testing.T, origin string, cfg Config) *Proxy {
	t.Helper()
	cfg.OriginURL = origin
	if cfg.Tables == (core.Config{}) {
		cfg.Tables = core.Config{SingleSize: 64, MultipleSize: 64, CachingSize: 64}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p, err := NewProxy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	p.SetPeers(map[ids.NodeID]string{p.ID(): p.URL()})
	return p
}

// stormGet issues one entry request and returns the status code.
func stormGet(t *testing.T, p *Proxy, obj ids.ObjectID, reqID string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ObjectURL(p.URL(), obj), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderRequestID, reqID)
	resp, err := sharedClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck // read side
	if resp.StatusCode == http.StatusOK && string(body) != string(Payload(obj)) {
		t.Errorf("payload corruption for %v: %q", obj, body)
	}
	return resp.StatusCode
}

// TestMissStormCoalesces is the singleflight contract: N concurrent entry
// requests for one cold object produce exactly one origin fetch and N
// correct replies.
func TestMissStormCoalesces(t *testing.T) {
	const clients = 32
	origin := newSlowOrigin(150 * time.Millisecond)
	defer origin.srv.Close()
	p := stormProxy(t, origin.srv.URL, Config{ID: 0})

	obj := ids.ObjectID(999)
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			if code := stormGet(t, p, obj, "storm-"+strconv.Itoa(c)); code != http.StatusOK {
				t.Errorf("client %d: status %d", c, code)
			}
		}(c)
	}
	wg.Wait()

	if got := origin.fetches.Load(); got != 1 {
		t.Errorf("origin fetched %d times, want exactly 1", got)
	}
	if got := p.Stats().CoalescedMisses; got != clients-1 {
		t.Errorf("CoalescedMisses = %d, want %d", got, clients-1)
	}
}

// TestMissStormNoCoalesce is the ablation: with singleflight disabled the
// same storm hits the origin once per client.
func TestMissStormNoCoalesce(t *testing.T) {
	const clients = 8
	origin := newSlowOrigin(150 * time.Millisecond)
	defer origin.srv.Close()
	p := stormProxy(t, origin.srv.URL, Config{ID: 0, NoCoalesce: true})

	obj := ids.ObjectID(999)
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			if code := stormGet(t, p, obj, "nc-"+strconv.Itoa(c)); code != http.StatusOK {
				t.Errorf("client %d: status %d", c, code)
			}
		}(c)
	}
	wg.Wait()

	if got := origin.fetches.Load(); got != clients {
		t.Errorf("origin fetched %d times, want %d (one per client)", got, clients)
	}
	if got := p.Stats().CoalescedMisses; got != 0 {
		t.Errorf("CoalescedMisses = %d, want 0 with coalescing disabled", got)
	}
}

// TestAdmissionShedsAtBound floods a proxy bounded to 2 active entry
// requests (no queue) with 10 concurrent clients for distinct objects: 2
// are admitted, 8 are shed with 429 + Retry-After. The admitted chains
// forward through the proxy itself while it is saturated — forwarded hops
// bypassing the gate is what keeps that from deadlocking.
func TestAdmissionShedsAtBound(t *testing.T) {
	const (
		clients   = 10
		maxActive = 2
	)
	origin := newSlowOrigin(300 * time.Millisecond)
	defer origin.srv.Close()
	p := stormProxy(t, origin.srv.URL, Config{ID: 0, MaxActive: maxActive, MaxQueue: -1})

	var ok, shed atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			// Distinct objects so coalescing cannot mask admission.
			switch code := stormGet(t, p, ids.ObjectID(1000+c), "gate-"+strconv.Itoa(c)); code {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
			default:
				t.Errorf("client %d: status %d", c, code)
			}
		}(c)
	}
	wg.Wait()

	if ok.Load() != maxActive || shed.Load() != clients-maxActive {
		t.Errorf("ok=%d shed=%d, want %d admitted and %d shed",
			ok.Load(), shed.Load(), maxActive, clients-maxActive)
	}
	if got := p.Stats().Shed; got != clients-maxActive {
		t.Errorf("Stats().Shed = %d, want %d", got, clients-maxActive)
	}
}

// TestGateBounds covers the gate state machine directly, including the
// bounded wait queue and the nil (unlimited) gate.
func TestGateBounds(t *testing.T) {
	g := newGate(1, -1) // one slot, no queue
	if !g.enter() {
		t.Fatal("first enter must succeed")
	}
	if g.enter() {
		t.Fatal("second enter must fail with no queue")
	}
	g.leave()
	if !g.enter() {
		t.Fatal("enter after leave must succeed")
	}
	g.leave()

	q := newGate(1, 1) // one slot, one queue seat
	if !q.enter() {
		t.Fatal("slot enter must succeed")
	}
	acquired := make(chan bool)
	go func() { acquired <- q.enter() }() // takes the queue seat
	waitDepth := func(want int64) {
		for start := time.Now(); q.depth() != want; {
			if time.Since(start) > 5*time.Second {
				t.Errorf("queue depth never reached %d", want)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitDepth(1)
	if q.enter() {
		t.Fatal("enter must fail once the queue seat is taken")
	}
	q.leave() // hands the slot to the queued waiter
	if !<-acquired {
		t.Fatal("queued waiter must acquire the freed slot")
	}
	q.leave()

	var nilGate *gate
	if !nilGate.enter() {
		t.Fatal("nil gate must admit everything")
	}
	nilGate.leave()
	if nilGate.depth() != 0 {
		t.Fatal("nil gate has no queue")
	}
}

// TestFlightGroupShares exercises the flightGroup on its own: concurrent
// do() calls for one key run fn once and share the result; a later call
// after completion runs fn again (the flight is retired, not cached).
func TestFlightGroupShares(t *testing.T) {
	const waiters = 10
	var g flightGroup
	var calls atomic.Uint64
	release := make(chan struct{})
	fn := func() flightResult {
		calls.Add(1)
		<-release
		return flightResult{status: http.StatusOK, body: []byte("shared")}
	}

	results := make(chan flightResult, waiters)
	sharedCount := atomic.Uint64{}
	var wg sync.WaitGroup
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			defer wg.Done()
			res, shared := g.do(1, fn)
			if shared {
				sharedCount.Add(1)
			}
			results <- res
		}()
	}
	// Wait until the leader is inside fn, then give the joiners a beat to
	// pile onto the flight before releasing it.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	close(results)

	if calls.Load() != 1 {
		t.Errorf("fn ran %d times, want 1", calls.Load())
	}
	for res := range results {
		if string(res.body) != "shared" || res.status != http.StatusOK {
			t.Errorf("waiter got %+v, want the shared result", res)
		}
	}
	if sharedCount.Load() != waiters-1 {
		t.Errorf("%d waiters reported shared, want %d", sharedCount.Load(), waiters-1)
	}

	// The flight is retired: a fresh do() runs fn again.
	ran := false
	res, shared := g.do(1, func() flightResult {
		ran = true
		return flightResult{status: http.StatusOK, body: []byte("fresh")}
	})
	if !ran || shared || string(res.body) != "fresh" {
		t.Errorf("post-completion do() must run fresh: ran=%v shared=%v body=%q", ran, shared, res.body)
	}
}
