package sim

import (
	"container/heap"
	"fmt"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
)

// LatencyModel assigns a virtual-time cost to every message transfer. The
// units are abstract ticks; the experiments use microseconds so results
// read naturally. The paper counts hops precisely because "a hop is
// regarded as the message transfer" (§V.2.2) — a latency model turns those
// hop counts into the response times the paper discusses qualitatively
// ("ADC has longer systems response than the hashing algorithm").
type LatencyModel struct {
	// ClientProxy is the client↔proxy link latency.
	ClientProxy int64
	// ProxyProxy is the proxy↔proxy link latency.
	ProxyProxy int64
	// ProxyOrigin is the proxy↔origin link latency (usually the far,
	// expensive one).
	ProxyOrigin int64
	// Service is the per-message processing delay at the receiver.
	Service int64
}

// DefaultLatencyModel is a WAN-flavoured model: proxies near the clients,
// the origin far away.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		ClientProxy: 5_000,  // 5 ms
		ProxyProxy:  10_000, // 10 ms
		ProxyOrigin: 50_000, // 50 ms
		Service:     100,    // 0.1 ms
	}
}

// cost returns the virtual delay for a transfer from a to b.
func (l LatencyModel) cost(a, b ids.NodeID) int64 {
	switch {
	case a == ids.Origin || b == ids.Origin:
		return l.ProxyOrigin + l.Service
	case a.IsClient() || b.IsClient():
		return l.ClientProxy + l.Service
	default:
		return l.ProxyProxy + l.Service
	}
}

// Clock is implemented by contexts that carry virtual time; nodes that
// measure latency (the clients) type-assert for it.
type Clock interface {
	// VNow returns the current virtual time in ticks.
	VNow() int64
}

// Scheduler is implemented by contexts that can deliver a message to the
// calling node after a virtual delay; open-loop traffic sources use it as
// their timer.
type Scheduler interface {
	// After delivers m at VNow()+delay.
	After(delay int64, m msg.Message)
}

// VEngine is the virtual-time discrete-event engine: messages are
// delivered in timestamp order, each transfer delayed by the latency
// model. Like Engine it is single-threaded and fully deterministic (ties
// break by enqueue sequence).
type VEngine struct {
	nodes   map[ids.NodeID]Node
	latency LatencyModel
	pq      eventQueue
	now     int64
	seq     uint64
	// current is the node whose Handle is executing, so Send can price
	// the link correctly (the sender is implicit in sim.Context).
	current ids.NodeID

	// drop, when set, discards matching messages at Send time — fault
	// injection for probing the paper's §III.1 assumption that "we
	// don't expect the loss of messages". Timer events (After) are
	// never dropped; only network transfers are.
	drop func(m msg.Message) bool

	delivered uint64
	dropped   uint64
}

// SetDropFilter installs a deterministic loss model: any Send for which fn
// returns true is silently discarded. The closed-loop protocol has no
// retransmission (the paper assumes lossless transport), so dropping a
// message strands its request chain — which is exactly what the fault-
// injection tests demonstrate.
func (e *VEngine) SetDropFilter(fn func(m msg.Message) bool) { e.drop = fn }

// Dropped returns the number of discarded messages.
func (e *VEngine) Dropped() uint64 { return e.dropped }

type event struct {
	at  int64
	seq uint64
	m   msg.Message
}

// NewVEngine returns an empty virtual-time engine.
func NewVEngine(latency LatencyModel) *VEngine {
	return &VEngine{
		nodes:   make(map[ids.NodeID]Node),
		latency: latency,
		current: ids.None,
	}
}

// Register adds a node before Run.
func (e *VEngine) Register(n Node) error {
	if _, dup := e.nodes[n.ID()]; dup {
		return fmt.Errorf("sim: duplicate node %v", n.ID())
	}
	e.nodes[n.ID()] = n
	return nil
}

var (
	_ Context   = (*VEngine)(nil)
	_ Clock     = (*VEngine)(nil)
	_ Scheduler = (*VEngine)(nil)
)

// VNow implements Clock.
func (e *VEngine) VNow() int64 { return e.now }

// Send implements Context: the message arrives after the modelled link
// latency; the hop is counted exactly as in the other engines.
func (e *VEngine) Send(m msg.Message) {
	CountHop(m)
	if e.drop != nil && e.drop(m) {
		e.dropped++
		return
	}
	e.schedule(e.latency.cost(e.current, m.Dest()), m)
}

// After implements Scheduler.
func (e *VEngine) After(delay int64, m msg.Message) {
	if delay < 0 {
		delay = 0
	}
	e.schedule(delay, m)
}

func (e *VEngine) schedule(delay int64, m msg.Message) {
	e.seq++
	heap.Push(&e.pq, event{at: e.now + delay, seq: e.seq, m: m})
}

// Delivered returns the number of messages delivered so far.
func (e *VEngine) Delivered() uint64 { return e.delivered }

// Run starts the Starter nodes and processes events until the queue
// drains, advancing virtual time monotonically.
func (e *VEngine) Run() error {
	for _, n := range e.nodes {
		if s, ok := n.(Starter); ok {
			e.current = n.ID()
			s.Start(e)
		}
	}
	e.current = ids.None
	for e.pq.Len() > 0 {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.at
		n, ok := e.nodes[ev.m.Dest()]
		if !ok {
			return fmt.Errorf("sim: message for unregistered node %v", ev.m.Dest())
		}
		e.delivered++
		e.current = n.ID()
		n.Handle(e, ev.m)
		e.current = ids.None
	}
	return nil
}

// eventQueue is a min-heap over (at, seq).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}
