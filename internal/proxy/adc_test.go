package proxy

import (
	"testing"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/trace"
)

func testTables() core.Config {
	return core.Config{SingleSize: 64, MultipleSize: 32, CachingSize: 16}
}

// rig assembles n ADC proxies plus an origin on a fresh engine.
func rig(t *testing.T, n int) (*sim.Engine, []*ADC) {
	t.Helper()
	peerIDs := make([]ids.NodeID, n)
	for i := range peerIDs {
		peerIDs[i] = ids.NodeID(i)
	}
	eng := sim.NewEngine()
	proxies := make([]*ADC, n)
	for i := range proxies {
		p, err := New(Config{ID: ids.NodeID(i), Peers: peerIDs, Tables: testTables(), Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		proxies[i] = p
		if err := eng.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Register(sim.NewOrigin()); err != nil {
		t.Fatal(err)
	}
	return eng, proxies
}

// sink records replies addressed to a client.
type sink struct {
	id      ids.NodeID
	replies []*msg.Reply
}

func (s *sink) ID() ids.NodeID { return s.id }
func (s *sink) Handle(_ sim.Context, m msg.Message) {
	if rep, ok := m.(*msg.Reply); ok {
		s.replies = append(s.replies, rep)
	}
}

func send(t *testing.T, eng *sim.Engine, s *sink, to ids.NodeID, obj ids.ObjectID, counter uint64) *msg.Reply {
	t.Helper()
	before := len(s.replies)
	eng.Send(&msg.Request{
		To:     to,
		ID:     ids.NewRequestID(0, counter),
		Object: obj,
		Client: s.id,
		Sender: s.id,
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.replies) != before+1 {
		t.Fatalf("expected exactly one reply, got %d new", len(s.replies)-before)
	}
	return s.replies[len(s.replies)-1]
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ID: ids.Origin, Peers: []ids.NodeID{0}, Tables: testTables()}); err == nil {
		t.Error("non-proxy ID must fail")
	}
	if _, err := New(Config{ID: 0, Tables: testTables()}); err == nil {
		t.Error("empty peer set must fail")
	}
	if _, err := New(Config{ID: 0, Peers: []ids.NodeID{0}}); err == nil {
		t.Error("invalid table config must fail")
	}
}

func TestEveryRequestResolves(t *testing.T) {
	// Invariant 4 (DESIGN.md §10): every request terminates with exactly
	// one reply to the client and pending state drains.
	eng, proxies := rig(t, 4)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 200; i++ {
		send(t, eng, s, ids.NodeID(i%4), ids.ObjectID(i%37), i)
	}
	if len(s.replies) != 200 {
		t.Fatalf("replies = %d, want 200", len(s.replies))
	}
	for _, p := range proxies {
		if p.PendingLen() != 0 {
			t.Errorf("proxy %v has %d dangling pending entries", p.ID(), p.PendingLen())
		}
	}
}

func TestUnexpectedReplyIsCountedAndHarmless(t *testing.T) {
	// Defensive reply handling: a reply with no live pending entry —
	// expired by the recovery TTL, a duplicate from a retransmitted
	// chain, or arriving at a restarted proxy — must be counted, must not
	// resurrect or underflow loop-detection state, and still backwards
	// normally (its routing needs only its own path).
	eng, proxies := rig(t, 3)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}

	// A run of ordinary traffic so tables are warm and pending is empty.
	for i := uint64(1); i <= 50; i++ {
		send(t, eng, s, ids.NodeID(i%3), ids.ObjectID(i%7), i)
	}
	if n := proxies[0].Stats().UnexpectedReplies; n != 0 {
		t.Fatalf("lossless traffic produced %d unexpected replies", n)
	}

	// An unsolicited reply: its RequestID was never pending anywhere.
	eng.Send(&msg.Reply{
		To:       0,
		ID:       ids.NewRequestID(0, 9999),
		Object:   3,
		Client:   s.id,
		Resolver: 1,
		Cached:   true,
	})
	before := len(s.replies)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := proxies[0].Stats().UnexpectedReplies; got != 1 {
		t.Errorf("UnexpectedReplies = %d, want 1", got)
	}
	if len(s.replies) != before+1 {
		t.Errorf("unsolicited reply did not backward to the client (got %d new)", len(s.replies)-before)
	}
	for _, p := range proxies {
		if p.PendingLen() != 0 {
			t.Errorf("proxy %v resurrected pending state: %d entries", p.ID(), p.PendingLen())
		}
	}

	// The system keeps working: more traffic resolves and drains cleanly.
	for i := uint64(100); i < 150; i++ {
		send(t, eng, s, ids.NodeID(i%3), ids.ObjectID(i%7), i)
	}
	for _, p := range proxies {
		if p.PendingLen() != 0 {
			t.Errorf("proxy %v has %d dangling pending entries", p.ID(), p.PendingLen())
		}
	}
}

func TestFirstRequestGoesThroughOriginAndCreatesEntries(t *testing.T) {
	eng, proxies := rig(t, 3)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	rep := send(t, eng, s, 0, 99, 1)
	if !rep.FromOrigin {
		t.Error("first request for an object must come from the origin")
	}
	if rep.Resolver == ids.None {
		t.Error("a proxy on the backwarding path must have claimed resolver")
	}
	// Every path proxy must now have an entry for the object, pointing
	// at the same resolver (backwarding agreement, invariant 6) —
	// except the resolver itself, whose entry says THIS.
	for _, p := range proxies {
		e, kind := p.Tables().Lookup(99)
		if kind == core.KindNone {
			continue // not on the path
		}
		if e.Location != rep.Resolver {
			t.Errorf("proxy %v maps object to %v, want %v", p.ID(), e.Location, rep.Resolver)
		}
	}
}

func TestBackwardingAgreement(t *testing.T) {
	// After enough traffic, all proxies that know an object agree on
	// one location for it once it is cached and hit repeatedly.
	eng, proxies := rig(t, 5)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	const obj = 7
	counter := uint64(0)
	for round := 0; round < 40; round++ {
		for entry := 0; entry < 5; entry++ {
			counter++
			send(t, eng, s, ids.NodeID(entry), obj, counter)
		}
	}
	// The object must be cached somewhere by now.
	cachedAt := []ids.NodeID{}
	for _, p := range proxies {
		if p.Tables().IsCached(obj) {
			cachedAt = append(cachedAt, p.ID())
		}
	}
	if len(cachedAt) == 0 {
		t.Fatal("hot object never got cached")
	}
	// Every proxy's mapping must point at a proxy that caches the
	// object (or be a cache holder itself).
	isCacher := make(map[ids.NodeID]bool, len(cachedAt))
	for _, id := range cachedAt {
		isCacher[id] = true
	}
	for _, p := range proxies {
		e, kind := p.Tables().Lookup(obj)
		if kind == core.KindNone {
			t.Errorf("proxy %v forgot the hot object", p.ID())
			continue
		}
		if !isCacher[e.Location] {
			t.Errorf("proxy %v maps hot object to %v which does not cache it (cachers: %v)",
				p.ID(), e.Location, cachedAt)
		}
	}
}

func TestHotObjectServedFromCacheEventually(t *testing.T) {
	eng, proxies := rig(t, 3)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := uint64(1); i <= 60; i++ {
		rep := send(t, eng, s, ids.NodeID(i%3), 5, i)
		if !rep.FromOrigin {
			hits++
		}
	}
	if hits < 40 {
		t.Errorf("hot object hit only %d/60 times", hits)
	}
	var localHits uint64
	for _, p := range proxies {
		localHits += p.Stats().LocalHits
	}
	if localHits == 0 {
		t.Error("no proxy recorded a local hit")
	}
}

func TestMaxHopsBoundsPath(t *testing.T) {
	peerIDs := []ids.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	eng := sim.NewEngine()
	for _, id := range peerIDs {
		p, err := New(Config{ID: id, Peers: peerIDs, Tables: testTables(), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Register(sim.NewOrigin()); err != nil {
		t.Fatal(err)
	}
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	const maxHops = 2
	for i := uint64(1); i <= 100; i++ {
		eng.Send(&msg.Request{
			To:      ids.NodeID(i % 8),
			ID:      ids.NewRequestID(0, i),
			Object:  ids.ObjectID(1000 + i), // all cold: worst-case walks
			Client:  s.id,
			Sender:  s.id,
			MaxHops: maxHops,
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		rep := s.replies[len(s.replies)-1]
		// The path may exceed MaxHops by exactly one entry: the proxy
		// that observes the bound still appends itself before
		// forwarding to the origin.
		if rep.PathLen > maxHops+1 {
			t.Fatalf("request %d path length %d exceeds bound %d", i, rep.PathLen, maxHops+1)
		}
	}
}

func TestLoopDetectionSendsToOrigin(t *testing.T) {
	// Two proxies, object unknown: force proxy 0 to pick proxy 1, and
	// proxy 1 to pick proxy 0 by making its only peer choice loop back.
	// With peers = {0, 1}, random choice may self-loop or bounce; in
	// either case the search must terminate and record a loop or reach
	// the origin via the THIS rule — never run forever.
	eng, proxies := rig(t, 2)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		send(t, eng, s, 0, ids.ObjectID(500+i), i)
	}
	var loops uint64
	for _, p := range proxies {
		loops += p.Stats().LoopsDetected
	}
	if loops == 0 {
		t.Error("50 cold walks over 2 proxies should detect at least one loop")
	}
}

func TestReplyPathRetracesForwardPath(t *testing.T) {
	// Hop conservation: hops = pathLen (client→…→resolver side) +
	// pathLen backwarding + 2 endpoints for origin-resolved requests:
	// total = 2·(pathLen)+2 when the origin resolves,
	// and 2·pathLen + 2 when a proxy at the end of the path resolves
	// (its own two transfers are counted in the formula's endpoints).
	eng, _ := rig(t, 4)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		rep := send(t, eng, s, ids.NodeID(i%4), ids.ObjectID(i), i)
		var want int
		if rep.FromOrigin {
			want = 2*rep.PathLen + 2
		} else {
			// Resolver proxy is not on Path: client→path→resolver
			// is PathLen+1 transfers, backwarding the same.
			want = 2 * (rep.PathLen + 1)
		}
		if rep.Hops != want {
			t.Fatalf("request %d: hops = %d, want %d (pathLen %d, origin %v)",
				i, rep.Hops, want, rep.PathLen, rep.FromOrigin)
		}
	}
}

func TestThisEntryForwardsToOrigin(t *testing.T) {
	// Build a proxy whose table says THIS for an uncached object; a
	// request must go straight to the origin (§III.3.2).
	peerIDs := []ids.NodeID{0}
	p, err := New(Config{ID: 0, Peers: peerIDs, Tables: testTables(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Tables().Update(123, 0, 1) // creates single-table entry with loc=THIS

	eng := sim.NewEngine()
	if err := eng.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(sim.NewOrigin()); err != nil {
		t.Fatal(err)
	}
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	rep := send(t, eng, s, 0, 123, 1)
	if !rep.FromOrigin {
		t.Error("THIS entry for uncached object must resolve at the origin")
	}
	if rep.PathLen != 1 {
		t.Errorf("PathLen = %d, want 1 (direct to origin)", rep.PathLen)
	}
	if p.Stats().ForwardOrigin == 0 {
		t.Error("ForwardOrigin counter not incremented")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// Invariant 5: identical seeds/config ⇒ identical results.
	run := func() (uint64, uint64) {
		eng, proxies := rig(t, 5)
		s := &sink{id: ids.Client(0)}
		if err := eng.Register(s); err != nil {
			t.Fatal(err)
		}
		hits := uint64(0)
		for i := uint64(1); i <= 300; i++ {
			rep := send(t, eng, s, ids.NodeID(i%5), ids.ObjectID(i%50), i)
			if !rep.FromOrigin {
				hits++
			}
		}
		var localTimes uint64
		for _, p := range proxies {
			localTimes += uint64(p.LocalTime())
		}
		return hits, localTimes
	}
	h1, t1 := run()
	h2, t2 := run()
	if h1 != h2 || t1 != t2 {
		t.Errorf("two identical runs diverged: (%d,%d) vs (%d,%d)", h1, t1, h2, t2)
	}
}

func TestLocalClockCountsRequestsOnly(t *testing.T) {
	eng, proxies := rig(t, 2)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	send(t, eng, s, 0, 1, 1)
	var reqs, clocks int64
	for _, p := range proxies {
		reqs += int64(p.Stats().Requests)
		clocks += p.LocalTime()
	}
	if clocks != reqs {
		t.Errorf("local clocks %d != requests received %d (replies must not tick the clock)",
			clocks, reqs)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, proxies := rig(t, 3)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 120; i++ {
		send(t, eng, s, ids.NodeID(i%3), ids.ObjectID(i%10), i)
	}
	var total ProxyTotals
	for _, p := range proxies {
		st := p.Stats()
		total.Requests += st.Requests
		total.Forwards += st.ForwardLearned + st.ForwardRandom + st.ForwardOrigin
		total.LocalHits += st.LocalHits
	}
	if total.Requests == 0 || total.Forwards == 0 {
		t.Fatal("stats not accumulating")
	}
	// Every received request either hit locally or was forwarded
	// exactly once (to a peer or the origin).
	if total.LocalHits+total.Forwards != total.Requests {
		t.Errorf("hits(%d) + forwards(%d) != requests(%d)",
			total.LocalHits, total.Forwards, total.Requests)
	}
}

// ProxyTotals aggregates counters for the accounting identity test.
type ProxyTotals struct {
	Requests  uint64
	Forwards  uint64
	LocalHits uint64
}

func TestWorksWithClientDriver(t *testing.T) {
	// End-to-end smoke with the real closed-loop client.
	peerIDs := []ids.NodeID{0, 1, 2}
	eng := sim.NewEngine()
	for _, id := range peerIDs {
		p, err := New(Config{ID: id, Peers: peerIDs, Tables: testTables(), Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Register(sim.NewOrigin()); err != nil {
		t.Fatal(err)
	}
	objs := make([]ids.ObjectID, 500)
	for i := range objs {
		objs[i] = ids.ObjectID(i % 20)
	}
	cl, err := sim.NewClient(sim.ClientConfig{
		Source:  trace.NewSliceSource(objs),
		Proxies: peerIDs,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(cl); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Done() {
		t.Fatal("client did not finish")
	}
	if cl.Collector().CumHitRate() < 0.5 {
		t.Errorf("hit rate %.3f too low for a 20-object working set",
			cl.Collector().CumHitRate())
	}
}
