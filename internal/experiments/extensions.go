package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/adc-sim/adc/internal/cluster"
	"github.com/adc-sim/adc/internal/core"
)

// The experiments in this file go beyond the paper's figures: they cover
// the parameters the paper declares available but unused ("maximum number
// of hops ... can be used but were not applied in our latest work", §V.1),
// the design claims it makes without data (selective caching beats LRU,
// §III.4; aging expires stale objects, §III.4), and the data-structure
// replacement it proposes as future work (§V.3.3).

// MaxHopsPoint is one run of the max-hops study.
type MaxHopsPoint struct {
	// MaxHops is the forwarding bound (0 = unbounded, the paper's
	// setting).
	MaxHops int
	// HitRate is the post-fill hit rate.
	HitRate float64
	// Hops is the post-fill mean hops per request.
	Hops float64
}

// MaxHopsSweep measures how bounding the random search changes hit rate
// and cost: tight bounds cut searches short (fewer hops, fewer hits),
// loose bounds converge to the unbounded loop-terminated behaviour.
func MaxHopsSweep(p Profile, bounds []int) ([]MaxHopsPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(bounds) == 0 {
		bounds = []int{1, 2, 3, 4, 6, 8, 0}
	}
	tr, err := p.trace()
	if err != nil {
		return nil, err
	}
	fillEnd, _ := tr.Boundaries()
	out := make([]MaxHopsPoint, len(bounds))
	err = p.forEach("maxhops", len(bounds), func(_ context.Context, i int) (uint64, error) {
		b := bounds[i]
		cfg := p.ClusterConfig(cluster.ADC, p.Tables(), uint64(fillEnd))
		cfg.MaxHops = b
		res, err := cluster.Run(cfg, tr.Cursor())
		if err != nil {
			return 0, fmt.Errorf("experiments: maxhops %d: %w", b, err)
		}
		hit, hops := postFillRates(res, fillEnd)
		out[i] = MaxHopsPoint{MaxHops: b, HitRate: hit, Hops: hops}
		return res.Delivered, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AblationResult compares the full ADC algorithm against one disabled
// mechanism.
type AblationResult struct {
	// Name identifies the ablation ("selective-vs-lru", "aging-off").
	Name string
	// Full is the post-fill hit rate with the mechanism enabled.
	Full float64
	// Ablated is the post-fill hit rate with it disabled.
	Ablated float64
	// FullHops and AblatedHops are the matching hop averages.
	FullHops    float64
	AblatedHops float64
}

// SelectiveCachingAblation quantifies §III.4's claim that "our algorithm
// works better with the approach of selective caching and an ordered table
// than a table based on a typical LRU algorithm" by swapping the caching
// table for an admit-everything LRU.
func SelectiveCachingAblation(p Profile) (*AblationResult, error) {
	return p.ablate("selective-vs-lru", func(t *core.Config) { t.CacheAdmitAll = true })
}

// AgingAblation disables the aging rule of Fig. 4, letting objects that
// were hot in the past squat in the tables forever.
func AgingAblation(p Profile) (*AblationResult, error) {
	return p.ablate("aging-off", func(t *core.Config) { t.AgingOff = true })
}

func (p Profile) ablate(name string, disable func(*core.Config)) (*AblationResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tr, err := p.trace()
	if err != nil {
		return nil, err
	}
	fillEnd, _ := tr.Boundaries()
	// arms[0] is the full algorithm, arms[1] the ablated one; the two
	// runs are independent and fan out together.
	arms := []func(*core.Config){nil, disable}
	labels := []string{"full", "ablated"}
	var hitRates, hopRates [2]float64
	err = p.forEach("ablation:"+name, len(arms), func(_ context.Context, i int) (uint64, error) {
		tables := p.Tables()
		if arms[i] != nil {
			arms[i](&tables)
		}
		res, err := cluster.Run(p.ClusterConfig(cluster.ADC, tables, uint64(fillEnd)), tr.Cursor())
		if err != nil {
			return 0, fmt.Errorf("experiments: %s %s run: %w", name, labels[i], err)
		}
		hitRates[i], hopRates[i] = postFillRates(res, fillEnd)
		return res.Delivered, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name: name, Full: hitRates[0], Ablated: hitRates[1],
		FullHops: hopRates[0], AblatedHops: hopRates[1],
	}, nil
}

// BackendPoint is one run of the ordered-table backend study: the same
// simulation on the paper's structures versus the proposed replacement.
type BackendPoint struct {
	// Backend names the ordered-table implementation.
	Backend core.Backend
	// SingleScan reports whether the O(n) single-table was used.
	SingleScan bool
	// Elapsed is the wall-clock runtime.
	Elapsed time.Duration
	// HitRate confirms the backends are behaviourally identical.
	HitRate float64
}

// BackendComparison times the same simulation across table backends —
// the "more adapted data structure should provide speed-ups in the future
// versions of this algorithm" (§V.3.3) claim, quantified.
func BackendComparison(p Profile, requests int) ([]BackendPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	type variant struct {
		backend core.Backend
		scan    bool
	}
	variants := []variant{
		{core.BackendList, true},      // the paper's implementation
		{core.BackendSlice, false},    // binary search + unified directory
		{core.BackendSkipList, false}, // the proposed replacement
		{core.BackendBTree, false},    // the default block B-tree
	}
	wcfg := p.WorkloadConfig()
	if requests > 0 {
		wcfg.TotalRequests = p.scaled(requests)
	}
	tr, err := p.traceFor(wcfg)
	if err != nil {
		return nil, err
	}
	out := make([]BackendPoint, len(variants))
	err = p.forEach("backends", len(variants), func(_ context.Context, i int) (uint64, error) {
		v := variants[i]
		tables := p.Tables()
		tables.Backend = v.backend
		tables.SingleScan = v.scan
		res, err := cluster.Run(p.ClusterConfig(cluster.ADC, tables, 0), tr.Cursor())
		if err != nil {
			return 0, fmt.Errorf("experiments: backend %v: %w", v.backend, err)
		}
		out[i] = BackendPoint{
			Backend:    v.backend,
			SingleScan: v.scan,
			Elapsed:    res.Elapsed,
			HitRate:    res.Summary.HitRate,
		}
		return res.Delivered, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
