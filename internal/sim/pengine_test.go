package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/proxy"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/trace"
)

// pengineShardCounts are the partition widths every determinism test runs
// at: the degenerate single shard, even splits, an uneven split (3 shards
// over 5 proxies), and more shards than this machine may have cores.
var pengineShardCounts = []int{1, 2, 3, 4, 8}

// engineRunner abstracts VEngine/PEngine for the comparison rigs.
type engineRunner interface {
	registrar
	Run() error
	Delivered() uint64
}

// rigResult captures everything observable from a run: per-client metric
// summaries and series, per-proxy protocol stats, and the engine's delivery
// count. Byte-identical engines must agree on all of it.
type rigResult struct {
	summaries []metrics.Summary
	series    [][]metrics.Point
	proxies   []metrics.ProxyStats
	delivered uint64
}

// pengineRig parameterizes one engine-comparison workload.
type pengineRig struct {
	latency  sim.LatencyModel
	proxies  int
	clients  int
	requests int
	// openLoop switches from closed-loop clients to open-loop injection
	// (many requests in flight); poisson randomizes the arrival gaps.
	openLoop bool
	poisson  bool
}

// run wires the rig onto eng, runs it, and snapshots the observable state.
func (r pengineRig) run(t *testing.T, eng engineRunner) rigResult {
	t.Helper()
	proxies := make([]*proxy.ADC, r.proxies)
	proxyIDs := make([]ids.NodeID, r.proxies)
	for i := range proxyIDs {
		proxyIDs[i] = ids.NodeID(i)
	}
	for i := range proxies {
		p, err := proxy.New(proxy.Config{
			ID:     ids.NodeID(i),
			Peers:  proxyIDs,
			Tables: core.Config{SingleSize: 400, MultipleSize: 400, CachingSize: 200},
			Seed:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		proxies[i] = p
		if err := eng.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Register(sim.NewOrigin()); err != nil {
		t.Fatal(err)
	}
	collectors := make([]*metrics.Collector, r.clients)
	for i := 0; i < r.clients; i++ {
		collectors[i] = metrics.NewCollector(metrics.WithSampleEvery(50))
		objs := benchObjects(r.requests, 300)
		var (
			cl  sim.Node
			err error
		)
		if r.openLoop {
			cl, err = sim.NewOpenLoopClient(sim.OpenLoopConfig{
				Index:         i,
				Source:        trace.NewSliceSource(objs),
				Proxies:       proxyIDs,
				Policy:        sim.EntryRandom,
				Seed:          int64(i + 1),
				Collector:     collectors[i],
				IntervalTicks: 700,
				Poisson:       r.poisson,
			})
		} else {
			cl, err = sim.NewClient(sim.ClientConfig{
				Index:     i,
				Source:    trace.NewSliceSource(objs),
				Proxies:   proxyIDs,
				Policy:    sim.EntryRandom,
				Seed:      int64(i + 1),
				Collector: collectors[i],
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Register(cl); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	res := rigResult{delivered: eng.Delivered()}
	for _, c := range collectors {
		res.summaries = append(res.summaries, c.Summary())
		res.series = append(res.series, append([]metrics.Point(nil), c.Series()...))
	}
	for _, p := range proxies {
		res.proxies = append(res.proxies, p.Stats())
	}
	return res
}

// compare runs the rig on the sequential oracle and on the parallel engine
// at every shard count, requiring identical observable results.
func (r pengineRig) compare(t *testing.T) {
	t.Helper()
	want := r.run(t, sim.NewVEngine(r.latency))
	for _, shards := range pengineShardCounts {
		part, err := ids.NewShardMap(shards, r.proxies)
		if err != nil {
			t.Fatal(err)
		}
		got := r.run(t, sim.NewPEngine(r.latency, part))
		label := fmt.Sprintf("shards=%d", shards)
		if want.delivered != got.delivered {
			t.Errorf("%s: delivered %d, sequential delivered %d", label, got.delivered, want.delivered)
		}
		if !reflect.DeepEqual(want.summaries, got.summaries) {
			t.Errorf("%s: client summaries diverge\n got %+v\nwant %+v", label, got.summaries, want.summaries)
		}
		if !reflect.DeepEqual(want.series, got.series) {
			t.Errorf("%s: client time series diverge", label)
		}
		if !reflect.DeepEqual(want.proxies, got.proxies) {
			t.Errorf("%s: proxy stats diverge\n got %+v\nwant %+v", label, got.proxies, want.proxies)
		}
	}
}

// TestPEngineMatchesVEngineClosedLoop pins the tentpole guarantee at the
// engine level: the sharded engine's observable output is identical to the
// sequential oracle at every shard count, including shard counts that do
// not divide the proxy span.
func TestPEngineMatchesVEngineClosedLoop(t *testing.T) {
	pengineRig{
		latency:  sim.DefaultLatencyModel(),
		proxies:  5,
		clients:  6,
		requests: 400,
	}.compare(t)
}

// TestPEngineMatchesVEngineOpenLoop drives wide cohorts: open-loop clients
// with identical fixed intervals inject at the same virtual instants, so
// cohorts span shards and the cross-shard merge does real work. The poisson
// variant staggers arrivals so cohort membership shifts every window.
func TestPEngineMatchesVEngineOpenLoop(t *testing.T) {
	for _, poisson := range []bool{false, true} {
		name := "fixed"
		if poisson {
			name = "poisson"
		}
		t.Run(name, func(t *testing.T) {
			pengineRig{
				latency:  sim.DefaultLatencyModel(),
				proxies:  5,
				clients:  8,
				requests: 200,
				openLoop: true,
				poisson:  poisson,
			}.compare(t)
		})
	}
}

// TestPEngineMatchesVEngineDegenerateLatency collapses the latency model to
// a single tick so nearly every event in the run shares a timestamp —
// maximal cohort width, maximal merge pressure, and the regime where a
// sequence-numbering bug would surface immediately.
func TestPEngineMatchesVEngineDegenerateLatency(t *testing.T) {
	pengineRig{
		latency:  sim.LatencyModel{ClientProxy: 1, ProxyProxy: 1, ProxyOrigin: 1, Service: 0},
		proxies:  5,
		clients:  8,
		requests: 300,
		openLoop: true,
	}.compare(t)
}

// TestPEngineParallelMergePath forces the parallel rank+push merge (the
// production path for million-event cohorts) onto a small workload by
// dropping the serial-merge threshold to one emission, and requires the
// results to stay identical to the sequential oracle.
func TestPEngineParallelMergePath(t *testing.T) {
	defer sim.SetParallelMergeMin(1)()
	pengineRig{
		latency:  sim.DefaultLatencyModel(),
		proxies:  5,
		clients:  8,
		requests: 200,
		openLoop: true,
	}.compare(t)
}

// TestPEngineUnregisteredNode checks the error path survives sharding.
func TestPEngineUnregisteredNode(t *testing.T) {
	part, err := ids.NewShardMap(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewPEngine(sim.DefaultLatencyModel(), part)
	buildADCArrayT(t, eng, 2)
	// A client that addresses a proxy outside the rig.
	bogus, err := sim.NewClient(sim.ClientConfig{
		Source:  trace.NewSliceSource(benchObjects(1, 10)),
		Proxies: []ids.NodeID{7},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(bogus); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err == nil {
		t.Fatal("expected unregistered-node error, got nil")
	}
}

// TestPEngineDuplicateRegister mirrors the sequential engines' contract.
func TestPEngineDuplicateRegister(t *testing.T) {
	part, err := ids.NewShardMap(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewPEngine(sim.DefaultLatencyModel(), part)
	if err := eng.Register(sim.NewOrigin()); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(sim.NewOrigin()); err == nil {
		t.Fatal("expected duplicate-node error, got nil")
	}
}

// buildADCArrayT is buildADCArray for tests (the shared helper takes a
// *testing.B).
func buildADCArrayT(t *testing.T, eng registrar, nProxies int) []ids.NodeID {
	t.Helper()
	proxyIDs := make([]ids.NodeID, nProxies)
	for i := range proxyIDs {
		proxyIDs[i] = ids.NodeID(i)
	}
	for _, id := range proxyIDs {
		p, err := proxy.New(proxy.Config{
			ID:     id,
			Peers:  proxyIDs,
			Tables: core.Config{SingleSize: 2000, MultipleSize: 2000, CachingSize: 1000},
			Seed:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Register(sim.NewOrigin()); err != nil {
		t.Fatal(err)
	}
	return proxyIDs
}
