package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/adc-sim/adc/internal/ids"
)

// wireEvent is the JSONL schema, one object per line. Node references are
// raw NodeID values (-1 None, -2 origin, <= -10 clients); kind is the
// stable string name. All fields are emitted — "to":-1 is meaningfully
// different from "to":0 (Proxy[0]), so nothing is omitempty'd away.
type wireEvent struct {
	Seq  uint64 `json:"seq"`
	At   int64  `json:"at"`
	Kind string `json:"kind"`
	Node int32  `json:"node"`
	Req  uint64 `json:"req"`
	Obj  uint64 `json:"obj"`
	To   int32  `json:"to"`
	Loc  int32  `json:"loc"`
	Prev uint64 `json:"prev"`
	Hops int32  `json:"hops"`
	Arg  int64  `json:"arg"`
}

func toWire(e Event) wireEvent {
	return wireEvent{
		Seq: e.Seq, At: e.At, Kind: e.Kind.String(),
		Node: int32(e.Node), Req: uint64(e.Req), Obj: uint64(e.Obj),
		To: int32(e.To), Loc: int32(e.Loc), Prev: uint64(e.Prev),
		Hops: e.Hops, Arg: e.Arg,
	}
}

func fromWire(w wireEvent) (Event, error) {
	k, ok := ParseKind(w.Kind)
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", w.Kind)
	}
	return Event{
		Seq: w.Seq, At: w.At, Kind: k,
		Node: ids.NodeID(w.Node), Req: ids.RequestID(w.Req),
		Obj: ids.ObjectID(w.Obj), To: ids.NodeID(w.To),
		Loc: ids.NodeID(w.Loc), Prev: ids.RequestID(w.Prev),
		Hops: w.Hops, Arg: w.Arg,
	}, nil
}

// WriteJSONL writes events as JSON Lines, one event per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(toWire(e)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines trace back into events. Blank lines are
// skipped; any malformed line is an error naming its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var w wireEvent
		if err := json.Unmarshal(b, &w); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		e, err := fromWire(w)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Validate checks a trace against the event schema: sequence numbers must
// be strictly increasing, kinds known, and each kind must carry the fields
// its semantics require (forwards a destination, retries a predecessor,
// hits a location, …). It returns the first violation.
func Validate(events []Event) error {
	var lastSeq uint64
	for i, e := range events {
		where := func(msg string, args ...any) error {
			return fmt.Errorf("event %d (seq %d, %s): %s", i, e.Seq, e.Kind, fmt.Sprintf(msg, args...))
		}
		if int(e.Kind) >= int(numKinds) {
			return fmt.Errorf("event %d: unknown kind %d", i, int(e.Kind))
		}
		if e.Seq <= lastSeq {
			return where("sequence not strictly increasing (prev %d)", lastSeq)
		}
		lastSeq = e.Seq
		switch e.Kind {
		case KindInject, KindRetry:
			if e.Req == 0 {
				return where("missing request id")
			}
			if !e.Node.IsClient() {
				return where("emitter %v is not a client", e.Node)
			}
			if e.Kind == KindRetry && e.Prev == 0 {
				return where("retry without superseded attempt id")
			}
		case KindForward:
			if e.To == ids.None {
				return where("forward without destination")
			}
			if e.Req == 0 {
				return where("missing request id")
			}
		case KindHit:
			if e.Loc == ids.None {
				return where("hit without location")
			}
		case KindBackward:
			if e.To == ids.None {
				return where("backward without next destination")
			}
		case KindDeliver:
			if !e.Node.IsClient() {
				return where("delivery at %v, not a client", e.Node)
			}
		case KindDrop:
			if e.To == ids.None {
				return where("drop without destination")
			}
		case KindTimeout, KindAbandon, KindStaleReply:
			if e.Req == 0 {
				return where("missing request id")
			}
		case KindExpire, KindInvalidate, KindOriginResolve:
			// Node-local housekeeping; no required references beyond Node.
		}
	}
	return nil
}
