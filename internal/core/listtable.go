package core

import "github.com/adc-sim/adc/internal/ids"

// listTable is the paper-faithful ordered-table backend: a sorted doubly
// linked list searched element-wise, the structure whose cost the paper
// measures in Fig. 15 ("Both accesses are extremely time consuming and a
// more adapted data structure should provide speed-ups", §V.3.3). Every
// operation is O(n) with pointer-chasing constants; it exists for the
// timing reproduction and the backend ablation, not for production use.
//
// The list is intrusive: entries link through their embedded prev/next
// fields, so no per-node allocation happens.
type listTable struct {
	capacity   int
	head, tail Entry // sentinels; ascending key order between them
	size       int
}

var _ Ordered = (*listTable)(nil)

func newListTable(capacity int) *listTable {
	t := &listTable{capacity: capacity}
	t.head.next = &t.tail
	t.tail.prev = &t.head
	return t
}

func (t *listTable) Len() int { return t.size }
func (t *listTable) Cap() int { return t.capacity }

func (t *listTable) find(obj ids.ObjectID) *Entry {
	for e := t.head.next; e != &t.tail; e = e.next {
		if e.Object == obj {
			return e
		}
	}
	return nil
}

func (t *listTable) Contains(obj ids.ObjectID) bool { return t.find(obj) != nil }

func (t *listTable) Get(obj ids.ObjectID) *Entry { return t.find(obj) }

func (t *listTable) Remove(obj ids.ObjectID) *Entry {
	e := t.find(obj)
	if e == nil {
		return nil
	}
	t.unlink(e)
	return e
}

// RemoveEntry unlinks a known-present entry in O(1) via its intrusive
// links; only the paper-faithful by-object search is element-wise.
func (t *listTable) RemoveEntry(e *Entry) { t.unlink(e) }

func (t *listTable) Insert(e *Entry) *Entry {
	if t.capacity == 0 {
		return e
	}
	// Walk to the first entry not less than e and insert before it.
	at := t.head.next
	for at != &t.tail && less(at, e) {
		at = at.next
	}
	e.prev = at.prev
	e.next = at
	at.prev.next = e
	at.prev = e
	t.size++
	if t.size > t.capacity {
		return t.RemoveWorst()
	}
	return nil
}

func (t *listTable) RemoveWorst() *Entry {
	if t.size == 0 {
		return nil
	}
	e := t.tail.prev
	t.unlink(e)
	return e
}

func (t *listTable) WorstKey() (int64, bool) {
	if t.size == 0 {
		return 0, false
	}
	return t.tail.prev.Key(), true
}

func (t *listTable) Each(fn func(*Entry) bool) {
	for e := t.head.next; e != &t.tail; e = e.next {
		if !fn(e) {
			return
		}
	}
}

func (t *listTable) Entries() []*Entry {
	out := make([]*Entry, 0, t.size)
	for e := t.head.next; e != &t.tail; e = e.next {
		out = append(out, e)
	}
	return out
}

func (t *listTable) unlink(e *Entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	t.size--
}
