package metrics

import (
	"math"
	"testing"
	"time"
)

func TestCollectorCounts(t *testing.T) {
	c := NewCollector(metricsTestOpts()...)
	c.Record(true, 4, 1)
	c.Record(false, 6, 2)
	c.Record(true, 2, 0)
	if c.Requests() != 3 || c.Hits() != 2 {
		t.Errorf("requests/hits = %d/%d", c.Requests(), c.Hits())
	}
	if got := c.CumHitRate(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("CumHitRate = %v", got)
	}
	if got := c.CumHops(); math.Abs(got-4) > 1e-12 {
		t.Errorf("CumHops = %v", got)
	}
	if got := c.MeanPathLen(); math.Abs(got-1) > 1e-12 {
		t.Errorf("MeanPathLen = %v", got)
	}
}

func metricsTestOpts() []Option {
	return []Option{WithWindow(2), WithSampleEvery(2)}
}

func TestCollectorWindow(t *testing.T) {
	c := NewCollector(WithWindow(2), WithSampleEvery(0))
	c.Record(true, 1, 0)
	c.Record(true, 1, 0)
	c.Record(false, 1, 0)
	// Window of 2 now holds {hit, miss}.
	if got := c.WindowHitRate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("WindowHitRate = %v, want 0.5", got)
	}
}

func TestCollectorSeries(t *testing.T) {
	c := NewCollector(WithWindow(10), WithSampleEvery(2))
	for i := 0; i < 6; i++ {
		c.Record(i%2 == 0, 3, 1)
	}
	series := c.Series()
	if len(series) != 3 {
		t.Fatalf("series length = %d, want 3", len(series))
	}
	for i, p := range series {
		if p.Requests != uint64(2*(i+1)) {
			t.Errorf("sample %d at %d requests", i, p.Requests)
		}
		if p.Hops != 3 || p.CumHops != 3 {
			t.Errorf("sample %d hops = %v/%v", i, p.Hops, p.CumHops)
		}
	}
}

func TestCollectorSeriesDisabled(t *testing.T) {
	c := NewCollector(WithSampleEvery(0))
	for i := 0; i < 100; i++ {
		c.Record(true, 1, 1)
	}
	if len(c.Series()) != 0 {
		t.Error("series must be empty when sampling is disabled")
	}
}

func TestCollectorElapsed(t *testing.T) {
	c := NewCollector()
	c.Start()
	time.Sleep(time.Millisecond)
	c.Stop()
	if c.Elapsed() <= 0 {
		t.Error("Elapsed must be positive after Start/Stop")
	}
}

func TestSummarySnapshot(t *testing.T) {
	c := NewCollector(WithSampleEvery(0))
	c.Record(true, 4, 2)
	c.Record(false, 8, 4)
	s := c.Summary()
	if s.Requests != 2 || s.Hits != 1 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.HitRate-0.5) > 1e-12 || math.Abs(s.Hops-6) > 1e-12 || math.Abs(s.PathLen-3) > 1e-12 {
		t.Errorf("summary rates = %+v", s)
	}
}

func TestHopsHistogram(t *testing.T) {
	c := NewCollector(WithSampleEvery(0))
	c.Record(true, 2, 1)
	c.Record(true, 2, 1)
	c.Record(false, 5, 2)
	h := c.HopsHistogram()
	if h.Total() != 3 || h.Count(2) != 2 || h.Count(5) != 1 {
		t.Errorf("histogram = %v", h.Buckets())
	}
}

func TestProxyStatsAddAndRate(t *testing.T) {
	a := ProxyStats{Requests: 10, LocalHits: 4, ForwardRandom: 3}
	b := ProxyStats{Requests: 30, LocalHits: 6, LoopsDetected: 2}
	a.Add(b)
	if a.Requests != 40 || a.LocalHits != 10 || a.ForwardRandom != 3 || a.LoopsDetected != 2 {
		t.Errorf("merged = %+v", a)
	}
	if got := a.LocalHitRate(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("LocalHitRate = %v", got)
	}
	var zero ProxyStats
	if zero.LocalHitRate() != 0 {
		t.Error("zero stats hit rate must be 0")
	}
}
