package experiments

import (
	"reflect"
	"testing"

	"github.com/adc-sim/adc/internal/cluster"
)

// replicationProfile pins the reference scenario: 8 proxies, cluster seed
// 7, workload seed 3 — the configuration whose windowed-load win over
// stock ADC the cluster-level test asserts.
func replicationProfile() Profile {
	p := DefaultProfile()
	p.Proxies = 8
	p.Seed = 7
	p.Window = 100
	return p
}

func TestReplicationSweep(t *testing.T) {
	p := replicationProfile()
	opts := ReplicationOptions{
		Thresholds:   []int{2},
		MaxReplicas:  []int{7},
		WorkloadSeed: 3,
	}
	pts, err := ReplicationSweep(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 3 baselines + 1×1 grid.
	if len(pts) != 4 {
		t.Fatalf("%d points, want 4", len(pts))
	}
	for i, pt := range pts {
		if pt.HitRate <= 0 || pt.HitRate >= 1 {
			t.Errorf("point %d: implausible hit rate %v", i, pt.HitRate)
		}
		if pt.P99Response <= 0 {
			t.Errorf("point %d: missing p99 response", i)
		}
		if pt.MeanWindowShare <= 0 || pt.MeanWindowPeak <= 0 {
			t.Errorf("point %d: missing windowed load stats %+v", i, pt)
		}
		if pt.CachedEntries <= 0 {
			t.Errorf("point %d: no cached entries at run end", i)
		}
		if !pt.Replicated && (pt.ReplicaPushes != 0 || pt.ReplicaDrops != 0 || pt.ReplicaHits != 0) {
			t.Errorf("point %d: baseline row grew replica counters: %+v", i, pt)
		}
	}
	stock, replicated := pts[0], pts[3]
	if stock.Algorithm != cluster.ADC || replicated.Algorithm != cluster.ADC ||
		pts[1].Algorithm != cluster.CARP || pts[2].Algorithm != cluster.CHash {
		t.Fatalf("unexpected grid order: %+v", pts)
	}
	if replicated.ReplicaPushes == 0 || replicated.ReplicaHits == 0 {
		t.Errorf("controller never engaged: %+v", replicated)
	}
	// The headline claim, through the sweep path this time: the windowed
	// load spread flattens versus stock ADC on the identical stream.
	if replicated.MeanWindowShare >= stock.MeanWindowShare {
		t.Errorf("windowed spread did not improve: %.4f (replicated) vs %.4f (stock)",
			replicated.MeanWindowShare, stock.MeanWindowShare)
	}
	t.Logf("stock mws=%.4f mwp=%.1f | replicated mws=%.4f mwp=%.1f pushes=%d hits=%d",
		stock.MeanWindowShare, stock.MeanWindowPeak,
		replicated.MeanWindowShare, replicated.MeanWindowPeak,
		replicated.ReplicaPushes, replicated.ReplicaHits)
}

// TestReplicationSweepIndexStable re-runs the sweep at a different worker
// width and demands bit-identical, identically-ordered results.
func TestReplicationSweepIndexStable(t *testing.T) {
	opts := ReplicationOptions{
		Thresholds:   []int{2},
		MaxReplicas:  []int{4, 7},
		Requests:     12_000,
		WorkloadSeed: 3,
	}
	seq := replicationProfile()
	seq.Parallelism = 1
	par := replicationProfile()
	par.Parallelism = 4

	a, err := ReplicationSweep(seq, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplicationSweep(par, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("sweep results depend on parallelism:\n%+v\n%+v", a, b)
	}
}
