package ids

import "sort"

// denseLimit bounds how far the dense arrays of a Table grow. Proxy and
// client IDs are assigned contiguously from zero by every wiring layer, so
// in practice all lookups are dense; the limit only guards against a
// hand-crafted huge ID forcing a gigabyte of nil slots. IDs beyond it fall
// back to the sparse map.
const denseLimit = 1 << 20

// Table is a NodeID-keyed lookup optimised for the engines' dispatch hot
// path. The ID space is exploited directly: proxies (0,1,2,…) and clients
// (Client(0), Client(1), …) index flat slices, the origin has a dedicated
// slot, and only out-of-range stragglers pay for a map. Get is a bounds
// check plus an array load — no hashing — which is what makes delivering
// tens of millions of events per second possible.
//
// The zero value is ready to use. Table is not safe for concurrent
// mutation; engines populate it during registration and only read it while
// running.
type Table[T any] struct {
	proxies   []T
	proxySet  []bool
	clients   []T
	clientSet []bool
	origin    T
	originSet bool
	sparse    map[NodeID]T
	n         int
}

// Len returns the number of stored entries.
func (t *Table[T]) Len() int { return t.n }

// Get returns the entry for id, if present.
func (t *Table[T]) Get(id NodeID) (T, bool) {
	if id >= 0 {
		if i := int(id); i < len(t.proxies) {
			return t.proxies[i], t.proxySet[i]
		}
	} else if id <= clientBase {
		if i := int(clientBase - id); i < len(t.clients) {
			return t.clients[i], t.clientSet[i]
		}
	} else if id == Origin {
		return t.origin, t.originSet
	}
	v, ok := t.sparse[id]
	return v, ok
}

// Put stores v under id. It reports false (and stores nothing) when id is
// already present.
func (t *Table[T]) Put(id NodeID, v T) bool {
	switch {
	case id >= 0 && int64(id) < denseLimit:
		i := int(id)
		for i >= len(t.proxies) {
			t.proxies = append(t.proxies, *new(T))
			t.proxySet = append(t.proxySet, false)
		}
		if t.proxySet[i] {
			return false
		}
		t.proxies[i], t.proxySet[i] = v, true
	case id <= clientBase && int64(clientBase-id) < denseLimit:
		i := int(clientBase - id)
		for i >= len(t.clients) {
			t.clients = append(t.clients, *new(T))
			t.clientSet = append(t.clientSet, false)
		}
		if t.clientSet[i] {
			return false
		}
		t.clients[i], t.clientSet[i] = v, true
	case id == Origin:
		if t.originSet {
			return false
		}
		t.origin, t.originSet = v, true
	default:
		if _, dup := t.sparse[id]; dup {
			return false
		}
		if t.sparse == nil {
			t.sparse = make(map[NodeID]T)
		}
		t.sparse[id] = v
	}
	t.n++
	return true
}

// Ascending calls fn for every entry in ascending NodeID order (clients
// from the most negative ID up, then the origin, then proxies from zero).
// The deterministic order is what makes engine start-up reproducible.
func (t *Table[T]) Ascending(fn func(id NodeID, v T)) {
	var sparseIDs []NodeID
	for id := range t.sparse {
		sparseIDs = append(sparseIDs, id)
	}
	sort.Slice(sparseIDs, func(i, j int) bool { return sparseIDs[i] < sparseIDs[j] })
	next := 0
	emitSparseBelow := func(limit NodeID) {
		for next < len(sparseIDs) && sparseIDs[next] < limit {
			fn(sparseIDs[next], t.sparse[sparseIDs[next]])
			next++
		}
	}
	// Clients: Client(i) = clientBase - i, so ascending NodeID means
	// descending index.
	for i := len(t.clients) - 1; i >= 0; i-- {
		if t.clientSet[i] {
			id := clientBase - NodeID(i)
			emitSparseBelow(id)
			fn(id, t.clients[i])
		}
	}
	emitSparseBelow(Origin)
	if t.originSet {
		fn(Origin, t.origin)
	}
	emitSparseBelow(0)
	for i := range t.proxies {
		if t.proxySet[i] {
			id := NodeID(i)
			emitSparseBelow(id)
			fn(id, t.proxies[i])
		}
	}
	emitSparseBelow(NodeID(1<<31 - 1))
}
