package sim

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/metrics"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/trace"
)

// delayProbe records the virtual arrival time of every request it sees.
type delayProbe struct {
	id      ids.NodeID
	arrived []int64
	reply   bool
}

func (p *delayProbe) ID() ids.NodeID { return p.id }
func (p *delayProbe) Handle(ctx Context, m msg.Message) {
	clk := ctx.(Clock)
	req, ok := m.(*msg.Request)
	if !ok {
		return
	}
	p.arrived = append(p.arrived, clk.VNow())
	if p.reply {
		rep := msg.ReplyTo(req)
		rep.Resolver = p.id
		rep.To = req.Client
		ctx.Send(rep)
	}
}

func TestVEngineLatencyModelCost(t *testing.T) {
	l := LatencyModel{ClientProxy: 5, ProxyProxy: 10, ProxyOrigin: 50, Service: 1}
	cases := []struct {
		a, b ids.NodeID
		want int64
	}{
		{ids.Client(0), 2, 6},
		{2, ids.Client(0), 6},
		{1, 2, 11},
		{3, ids.Origin, 51},
		{ids.Origin, 3, 51},
	}
	for _, tc := range cases {
		if got := l.cost(tc.a, tc.b); got != tc.want {
			t.Errorf("cost(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestVEngineDelaysDelivery(t *testing.T) {
	l := LatencyModel{ClientProxy: 7, ProxyProxy: 3, ProxyOrigin: 50}
	eng := NewVEngine(l)
	probe := &delayProbe{id: 0}
	if err := eng.Register(probe); err != nil {
		t.Fatal(err)
	}
	// Injection from outside any node (current = None → not client, not
	// origin → proxy-proxy price).
	eng.Send(&msg.Request{To: 0, Object: 1, Client: ids.Client(0)})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(probe.arrived) != 1 || probe.arrived[0] != 3 {
		t.Errorf("arrived = %v, want [3]", probe.arrived)
	}
}

func TestVEngineTimestampOrder(t *testing.T) {
	eng := NewVEngine(LatencyModel{})
	probe := &delayProbe{id: 0}
	if err := eng.Register(probe); err != nil {
		t.Fatal(err)
	}
	// Schedule out of order; delivery must be by timestamp.
	eng.After(30, &msg.Request{To: 0, Object: 30})
	eng.After(10, &msg.Request{To: 0, Object: 10})
	eng.After(20, &msg.Request{To: 0, Object: 20})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(probe.arrived) != 3 {
		t.Fatalf("arrived %d messages", len(probe.arrived))
	}
	if probe.arrived[0] != 10 || probe.arrived[1] != 20 || probe.arrived[2] != 30 {
		t.Errorf("arrival times = %v, want [10 20 30]", probe.arrived)
	}
}

func TestVEngineTieBreaksBySequence(t *testing.T) {
	eng := NewVEngine(LatencyModel{})
	seen := []ids.ObjectID{}
	node := &funcNode{id: 0, fn: func(_ Context, m msg.Message) {
		if req, ok := m.(*msg.Request); ok {
			seen = append(seen, req.Object)
		}
	}}
	if err := eng.Register(node); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		eng.After(42, &msg.Request{To: 0, Object: ids.ObjectID(i)})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, obj := range seen {
		if obj != ids.ObjectID(i+1) {
			t.Fatalf("tie order = %v, want FIFO by enqueue", seen)
		}
	}
}

type funcNode struct {
	id ids.NodeID
	fn func(Context, msg.Message)
}

func (n *funcNode) ID() ids.NodeID                  { return n.id }
func (n *funcNode) Handle(c Context, m msg.Message) { n.fn(c, m) }

func TestVEngineUnroutable(t *testing.T) {
	eng := NewVEngine(LatencyModel{})
	eng.Send(&msg.Request{To: 9})
	if err := eng.Run(); err == nil {
		t.Error("unroutable message must error")
	}
}

func TestClosedLoopClientRecordsResponseTime(t *testing.T) {
	l := LatencyModel{ClientProxy: 100, ProxyProxy: 10, ProxyOrigin: 1000}
	eng := NewVEngine(l)
	echo := &delayProbe{id: 0, reply: true}
	if err := eng.Register(echo); err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector(metrics.WithSampleEvery(0))
	cl, err := NewClient(ClientConfig{
		Source:    trace.NewSliceSource([]ids.ObjectID{1, 2, 3}),
		Proxies:   []ids.NodeID{0},
		Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(cl); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Round trip = client→proxy (100) + proxy→client (100) = 200.
	if got := col.Response().Mean(); got != 200 {
		t.Errorf("mean response = %v, want 200", got)
	}
	if col.Response().N() != 3 {
		t.Errorf("response samples = %d, want 3", col.Response().N())
	}
}

func TestOpenLoopClientValidation(t *testing.T) {
	src := trace.NewSliceSource([]ids.ObjectID{1})
	if _, err := NewOpenLoopClient(OpenLoopConfig{Proxies: []ids.NodeID{0}, IntervalTicks: 1}); err == nil {
		t.Error("missing source must fail")
	}
	if _, err := NewOpenLoopClient(OpenLoopConfig{Source: src, IntervalTicks: 1}); err == nil {
		t.Error("missing proxies must fail")
	}
	if _, err := NewOpenLoopClient(OpenLoopConfig{Source: src, Proxies: []ids.NodeID{0}}); err == nil {
		t.Error("zero interval must fail")
	}
}

func TestOpenLoopClientInjectsAtRate(t *testing.T) {
	// Slow echo: replies take 1000 ticks round trip while requests
	// arrive every 100 ticks — the open loop must keep multiple
	// requests outstanding and still complete them all.
	l := LatencyModel{ClientProxy: 500, ProxyProxy: 1, ProxyOrigin: 1}
	eng := NewVEngine(l)
	echo := &delayProbe{id: 0, reply: true}
	if err := eng.Register(echo); err != nil {
		t.Fatal(err)
	}
	objs := make([]ids.ObjectID, 50)
	for i := range objs {
		objs[i] = ids.ObjectID(i)
	}
	col := metrics.NewCollector(metrics.WithSampleEvery(0))
	done := false
	cl, err := NewOpenLoopClient(OpenLoopConfig{
		Source:        trace.NewSliceSource(objs),
		Proxies:       []ids.NodeID{0},
		Collector:     col,
		IntervalTicks: 100,
		OnDone:        func() { done = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(cl); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done || !cl.Done() {
		t.Fatal("open-loop client did not finish")
	}
	if col.Requests() != 50 {
		t.Errorf("completed %d requests, want 50", col.Requests())
	}
	if cl.Outstanding() != 0 {
		t.Errorf("outstanding = %d after completion", cl.Outstanding())
	}
	// Fixed spacing: arrivals at the proxy must be exactly 100 apart.
	for i := 1; i < len(echo.arrived); i++ {
		if echo.arrived[i]-echo.arrived[i-1] != 100 {
			t.Fatalf("arrival gap %d at %d, want 100",
				echo.arrived[i]-echo.arrived[i-1], i)
		}
	}
	// Response time = 2×500 regardless of concurrency.
	if got := col.Response().Mean(); got != 1000 {
		t.Errorf("mean response = %v, want 1000", got)
	}
}

func TestOpenLoopClientPoissonDeterministic(t *testing.T) {
	run := func() []int64 {
		eng := NewVEngine(LatencyModel{ClientProxy: 1})
		echo := &delayProbe{id: 0, reply: true}
		if err := eng.Register(echo); err != nil {
			t.Fatal(err)
		}
		objs := make([]ids.ObjectID, 30)
		cl, err := NewOpenLoopClient(OpenLoopConfig{
			Source:        trace.NewSliceSource(objs),
			Proxies:       []ids.NodeID{0},
			IntervalTicks: 50,
			Poisson:       true,
			Seed:          7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Register(cl); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return echo.arrived
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 30 {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("poisson arrivals not deterministic at %d", i)
		}
		if i > 1 && a[i]-a[i-1] != a[i-1]-a[i-2] {
			varied = true
		}
	}
	if !varied {
		t.Error("poisson gaps look fixed")
	}
}

func TestOpenLoopClientPanicsWithoutScheduler(t *testing.T) {
	cl, err := NewOpenLoopClient(OpenLoopConfig{
		Source:        trace.NewSliceSource([]ids.ObjectID{1}),
		Proxies:       []ids.NodeID{0},
		IntervalTicks: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Start on a non-virtual-time engine must panic")
		}
	}()
	cl.Start(NewEngine()) // plain engine: no Scheduler
}
