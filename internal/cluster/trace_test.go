package cluster

import (
	"testing"

	"github.com/adc-sim/adc/internal/obs"
	"github.com/adc-sim/adc/internal/sim"
	"github.com/adc-sim/adc/internal/trace"
)

// TestTracingIsObservationallyPure: attaching a tracer must not change a
// single simulation observable — the tracer only watches. Runs the golden
// workload with and without a tracer and compares full summaries.
func TestTracingIsObservationallyPure(t *testing.T) {
	for _, rt := range []Runtime{RuntimeSequential, RuntimeVirtualTime} {
		t.Run(rt.String(), func(t *testing.T) {
			base, err := Run(goldenConfig(rt), trace.NewSliceSource(goldenTrace()))
			if err != nil {
				t.Fatal(err)
			}
			cfg := goldenConfig(rt)
			cfg.Tracer = obs.New()
			traced, err := Run(cfg, trace.NewSliceSource(goldenTrace()))
			if err != nil {
				t.Fatal(err)
			}
			// Elapsed is wall-clock; everything else must match exactly.
			base.Summary.Elapsed = 0
			traced.Summary.Elapsed = 0
			if base.Summary != traced.Summary {
				t.Errorf("tracing changed the summary:\nbase   %+v\ntraced %+v", base.Summary, traced.Summary)
			}
			if base.Delivered != traced.Delivered || base.OriginResolved != traced.OriginResolved {
				t.Errorf("tracing changed delivery counts: %d/%d vs %d/%d",
					base.Delivered, base.OriginResolved, traced.Delivered, traced.OriginResolved)
			}
			if cfg.Tracer.Len() == 0 {
				t.Error("tracer recorded nothing")
			}
		})
	}
}

// TestTraceWellFormed: a lossless traced run must produce a schema-valid
// trace whose reconstructed trees account for every injected request — all
// delivered, single-attempt, and none orphaned.
func TestTraceWellFormed(t *testing.T) {
	cfg := goldenConfig(RuntimeVirtualTime)
	cfg.Tracer = obs.New()
	res, err := Run(cfg, trace.NewSliceSource(goldenTrace()))
	if err != nil {
		t.Fatal(err)
	}
	events := cfg.Tracer.Events()
	if err := obs.Validate(events); err != nil {
		t.Fatalf("trace fails validation: %v", err)
	}

	var injects, delivers uint64
	for _, e := range events {
		switch e.Kind {
		case obs.KindInject:
			injects++
		case obs.KindDeliver:
			delivers++
		}
	}
	if injects != res.Summary.Requests {
		t.Errorf("inject events = %d, want %d", injects, res.Summary.Requests)
	}
	if delivers != res.Summary.Requests {
		t.Errorf("deliver events = %d, want %d", delivers, res.Summary.Requests)
	}

	trees := obs.BuildTrees(events)
	if uint64(len(trees)) != res.Summary.Requests {
		t.Fatalf("%d trees, want %d", len(trees), res.Summary.Requests)
	}
	for _, tr := range trees {
		if tr.Orphan {
			t.Fatalf("orphan tree %v in a lossless trace", tr.Attempts[0].ID)
		}
		if !tr.Delivered() {
			t.Fatalf("undelivered tree %v in a lossless closed-loop run", tr.Attempts[0].ID)
		}
		if len(tr.Attempts) != 1 {
			t.Fatalf("tree %v has %d attempts without loss", tr.Attempts[0].ID, len(tr.Attempts))
		}
	}
}

// TestTraceRetransmissionTrees is the end-to-end recovery-tracing contract:
// under ~1% message loss with the recovery protocol on, every retransmitted
// request must reconstruct as one tree whose Retry events chain to attempts
// inside the same tree — never as orphan fragments.
func TestTraceRetransmissionTrees(t *testing.T) {
	cfg := goldenConfig(RuntimeVirtualTime)
	cfg.Tracer = obs.New()
	cfg.Faults = &sim.FaultPlan{Seed: 7, Loss: 0.01}
	cfg.Recovery = sim.DefaultRecovery()
	res, err := Run(cfg, trace.NewSliceSource(goldenTrace()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Retries == 0 {
		t.Fatal("no retries at 1% loss; the test exercises nothing")
	}
	events := cfg.Tracer.Events()
	if err := obs.Validate(events); err != nil {
		t.Fatalf("trace fails validation: %v", err)
	}

	trees := obs.BuildTrees(events)
	var retransmitted int
	for _, tr := range trees {
		if tr.Orphan {
			t.Fatalf("orphan tree %v: a retry lost its predecessor link", tr.Attempts[0].ID)
		}
		if len(tr.Attempts) > 1 {
			retransmitted++
		}
	}
	if retransmitted == 0 {
		t.Fatal("no multi-attempt trees despite retries")
	}

	// Every Retry event's Prev must resolve to an attempt in the same tree,
	// and retry events must equal the engine's retry counter.
	var retryEvents uint64
	for _, e := range events {
		if e.Kind != obs.KindRetry {
			continue
		}
		retryEvents++
		tr := obs.TreeFor(trees, e.Req)
		if tr == nil {
			t.Fatalf("retry %v belongs to no tree", e.Req)
		}
		if obs.TreeFor(trees, e.Prev) != tr {
			t.Fatalf("retry %v and its predecessor %v are in different trees", e.Req, e.Prev)
		}
	}
	if retryEvents != res.Summary.Retries {
		t.Errorf("retry events = %d, engine counted %d", retryEvents, res.Summary.Retries)
	}
}

// TestMetricsBuckets: the time-series recorder's windows must re-add to the
// end-of-run summary and carry per-proxy occupancy snapshots.
func TestMetricsBuckets(t *testing.T) {
	cfg := goldenConfig(RuntimeVirtualTime)
	cfg.MetricsEvery = 50_000
	res, err := Run(cfg, trace.NewSliceSource(goldenTrace()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buckets) == 0 {
		t.Fatal("no buckets recorded")
	}
	var injected, completed, hits uint64
	var prevEnd int64
	for i, b := range res.Buckets {
		if b.End != b.Start+cfg.MetricsEvery {
			t.Errorf("bucket %d: window [%d,%d) is not %d wide", i, b.Start, b.End, cfg.MetricsEvery)
		}
		if i > 0 && b.Start != prevEnd {
			t.Errorf("bucket %d: starts at %d, previous ended at %d", i, b.Start, prevEnd)
		}
		prevEnd = b.End
		injected += b.Injected
		completed += b.Completed
		hits += b.Hits
		if len(b.Occupancy) != cfg.NumProxies || len(b.Cached) != cfg.NumProxies {
			t.Errorf("bucket %d: %d/%d proxy snapshots, want %d", i, len(b.Occupancy), len(b.Cached), cfg.NumProxies)
		}
	}
	if injected != res.Summary.Requests || completed != res.Summary.Requests {
		t.Errorf("bucket totals injected=%d completed=%d, want %d", injected, completed, res.Summary.Requests)
	}
	if hits != res.Summary.Hits {
		t.Errorf("bucket hits = %d, want %d", hits, res.Summary.Hits)
	}
}

// TestTraceConfigValidation: tracing and metrics are engine features — the
// concurrency runtimes must refuse them loudly rather than silently record
// nothing.
func TestTraceConfigValidation(t *testing.T) {
	cfg := goldenConfig(RuntimeAgents)
	cfg.Tracer = obs.New()
	if _, err := Run(cfg, trace.NewSliceSource(goldenTrace())); err == nil {
		t.Error("tracer on the agents runtime accepted")
	}
	cfg = goldenConfig(RuntimeSequential)
	cfg.MetricsEvery = 1000
	if _, err := Run(cfg, trace.NewSliceSource(goldenTrace())); err == nil {
		t.Error("metrics on the clockless sequential runtime accepted")
	}
}
