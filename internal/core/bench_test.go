package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

// Micro-benchmarks for the ordered-table backends: the paper's Fig. 15
// bottleneck (list), its own implementation (slice + binary search), and
// the proposed replacement (skip list). Run with
// `go test -bench=Ordered ./internal/core`.

func benchmarkOrderedUpdate(b *testing.B, backend Backend, size int) {
	tbl := NewOrdered(size, backend)
	rng := rand.New(rand.NewSource(1))
	// Pre-fill.
	for i := 0; i < size; i++ {
		tbl.Insert(mkBenchEntry(ids.ObjectID(i), int64(rng.Intn(1_000_000))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := ids.ObjectID(rng.Intn(size))
		if e := tbl.Remove(obj); e != nil {
			e.Avg = int64(rng.Intn(1_000_000))
			tbl.Insert(e)
		} else {
			tbl.Insert(mkBenchEntry(obj, int64(rng.Intn(1_000_000))))
		}
	}
}

func mkBenchEntry(obj ids.ObjectID, key int64) *Entry {
	return &Entry{Object: obj, Avg: key, Hits: 2}
}

func BenchmarkOrderedUpdate(b *testing.B) {
	for _, backend := range []Backend{BackendSlice, BackendSkipList, BackendList} {
		for _, size := range []int{1_000, 10_000} {
			// The list backend at 10k is painfully slow by design;
			// keep it to show the gap, it is the whole point.
			b.Run(fmt.Sprintf("%s/%d", backend, size), func(b *testing.B) {
				benchmarkOrderedUpdate(b, backend, size)
			})
		}
	}
}

// BenchmarkTablesUpdate measures the full Update_Entry state machine at
// the paper's reference table shape (scaled 1/10).
func BenchmarkTablesUpdate(b *testing.B) {
	for _, backend := range []Backend{BackendSlice, BackendSkipList} {
		b.Run(backend.String(), func(b *testing.B) {
			tbl, err := NewTables(Config{
				SingleSize: 2000, MultipleSize: 2000, CachingSize: 1000,
				Backend: backend,
			})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tbl.Update(ids.ObjectID(rng.Intn(5000)), ids.NodeID(rng.Intn(5)), int64(i))
			}
		})
	}
}

// BenchmarkSingleTable contrasts the O(1) indexed single-table with the
// paper's O(n) scan variant.
func BenchmarkSingleTable(b *testing.B) {
	for _, scan := range []bool{false, true} {
		name := "indexed"
		if scan {
			name = "scan"
		}
		b.Run(name, func(b *testing.B) {
			tbl := NewSingleTable(2000, scan)
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 2000; i++ {
				tbl.InsertTop(NewEntry(ids.ObjectID(i), 0, int64(i)))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				obj := ids.ObjectID(rng.Intn(4000))
				if e := tbl.Remove(obj); e != nil {
					tbl.InsertTop(e)
				} else {
					tbl.InsertTop(NewEntry(obj, 0, int64(i)))
				}
			}
		})
	}
}
