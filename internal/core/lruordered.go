package core

import "github.com/adc-sim/adc/internal/ids"

// lruOrdered is an Ordered implementation that orders by recency of update
// instead of aged average: Insert always places the entry at the
// most-recent end and evicts the least recently updated entry when full.
// Together with Config.CacheAdmitAll it turns the caching table into the
// "typical LRU algorithm" the paper compares selective caching against
// (§III.4) — the ablation baseline, not part of the ADC algorithm proper.
//
// Entries link through their intrusive prev/next fields; head.next is the
// most recently inserted entry. By-object search is a walk (hot-path
// membership lives in the Tables directory).
type lruOrdered struct {
	capacity   int
	head, tail Entry
	size       int
}

var _ Ordered = (*lruOrdered)(nil)

func newLRUOrdered(capacity int) *lruOrdered {
	t := &lruOrdered{capacity: capacity}
	t.head.next = &t.tail
	t.tail.prev = &t.head
	return t
}

func (t *lruOrdered) Len() int { return t.size }
func (t *lruOrdered) Cap() int { return t.capacity }

func (t *lruOrdered) find(obj ids.ObjectID) *Entry {
	for e := t.head.next; e != &t.tail; e = e.next {
		if e.Object == obj {
			return e
		}
	}
	return nil
}

func (t *lruOrdered) Contains(obj ids.ObjectID) bool { return t.find(obj) != nil }

func (t *lruOrdered) Get(obj ids.ObjectID) *Entry { return t.find(obj) }

func (t *lruOrdered) Remove(obj ids.ObjectID) *Entry {
	e := t.find(obj)
	if e == nil {
		return nil
	}
	t.unlink(e)
	return e
}

// RemoveEntry unlinks a known-present entry in O(1).
func (t *lruOrdered) RemoveEntry(e *Entry) { t.unlink(e) }

func (t *lruOrdered) Insert(e *Entry) *Entry {
	if t.capacity == 0 {
		return e
	}
	var evicted *Entry
	if t.size >= t.capacity {
		evicted = t.RemoveWorst()
	}
	e.prev = &t.head
	e.next = t.head.next
	t.head.next.prev = e
	t.head.next = e
	t.size++
	return evicted
}

func (t *lruOrdered) RemoveWorst() *Entry {
	if t.size == 0 {
		return nil
	}
	e := t.tail.prev
	t.unlink(e)
	return e
}

func (t *lruOrdered) WorstKey() (int64, bool) {
	if t.size == 0 {
		return 0, false
	}
	return t.tail.prev.Key(), true
}

// Each walks entries from most to least recently updated; "ascending key
// order" does not apply to the recency ordering.
func (t *lruOrdered) Each(fn func(*Entry) bool) {
	for e := t.head.next; e != &t.tail; e = e.next {
		if !fn(e) {
			return
		}
	}
}

// Entries returns entries from most to least recently updated.
func (t *lruOrdered) Entries() []*Entry {
	out := make([]*Entry, 0, t.size)
	for e := t.head.next; e != &t.tail; e = e.next {
		out = append(out, e)
	}
	return out
}

func (t *lruOrdered) unlink(e *Entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	t.size--
}
