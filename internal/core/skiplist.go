package core

import "github.com/adc-sim/adc/internal/ids"

// skipTable is the skip-list backend for Ordered — an O(log n) pointer
// structure alternative to the sorted slice's O(n) shifting.
//
// Level coins come from a private xorshift generator with a fixed seed, so
// a simulation run is bit-for-bit reproducible regardless of backend.
type skipTable struct {
	capacity int
	head     *skipNode
	size     int
	level    int
	rng      uint64
}

const skipMaxLevel = 24

type skipNode struct {
	entry   *Entry
	forward []*skipNode
	// backward supports O(1) access to the worst (last) entry.
	backward *skipNode
}

var _ Ordered = (*skipTable)(nil)

func newSkipTable(capacity int) *skipTable {
	return &skipTable{
		capacity: capacity,
		head:     &skipNode{forward: make([]*skipNode, skipMaxLevel)},
		level:    1,
		rng:      0x9e3779b97f4a7c15,
	}
}

// randLevel draws a geometric level with p = 1/2 from the xorshift stream.
func (t *skipTable) randLevel() int {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 7
	t.rng ^= t.rng << 17
	lvl := 1
	for v := t.rng; v&1 == 1 && lvl < skipMaxLevel; v >>= 1 {
		lvl++
	}
	return lvl
}

func (t *skipTable) Len() int { return t.size }
func (t *skipTable) Cap() int { return t.capacity }

// Get searches by object along level 0 — a linear walk used only by the
// legacy ablation path and direct unit tests; the hot path resolves
// membership through the Tables directory.
func (t *skipTable) Get(obj ids.ObjectID) *Entry {
	for x := t.head.forward[0]; x != nil; x = x.forward[0] {
		if x.entry.Object == obj {
			return x.entry
		}
	}
	return nil
}

func (t *skipTable) Contains(obj ids.ObjectID) bool { return t.Get(obj) != nil }

// findPredecessors fills update with, per level, the last node whose entry
// is strictly less than e.
func (t *skipTable) findPredecessors(e *Entry, update *[skipMaxLevel]*skipNode) {
	x := t.head
	for i := t.level - 1; i >= 0; i-- {
		for x.forward[i] != nil && less(x.forward[i].entry, e) {
			x = x.forward[i]
		}
		update[i] = x
	}
}

func (t *skipTable) Remove(obj ids.ObjectID) *Entry {
	e := t.Get(obj)
	if e == nil {
		return nil
	}
	t.removeEntry(e)
	return e
}

// RemoveEntry removes a known-present entry, located by its (Key, Object)
// position in O(log n).
func (t *skipTable) RemoveEntry(e *Entry) { t.removeEntry(e) }

func (t *skipTable) removeEntry(e *Entry) {
	var update [skipMaxLevel]*skipNode
	t.findPredecessors(e, &update)
	target := update[0].forward[0]
	// target is the node holding e: (Key, Object) is unique per table.
	for i := 0; i < t.level; i++ {
		if update[i].forward[i] != target {
			break
		}
		update[i].forward[i] = target.forward[i]
	}
	if target.forward[0] != nil {
		target.forward[0].backward = update[0]
	}
	for t.level > 1 && t.head.forward[t.level-1] == nil {
		t.level--
	}
	t.size--
}

func (t *skipTable) Insert(e *Entry) *Entry {
	if t.capacity == 0 {
		return e
	}
	var update [skipMaxLevel]*skipNode
	t.findPredecessors(e, &update)

	lvl := t.randLevel()
	if lvl > t.level {
		for i := t.level; i < lvl; i++ {
			update[i] = t.head
		}
		t.level = lvl
	}
	n := &skipNode{entry: e, forward: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.forward[i] = update[i].forward[i]
		update[i].forward[i] = n
	}
	n.backward = update[0]
	if n.forward[0] != nil {
		n.forward[0].backward = n
	}
	t.size++
	if t.size > t.capacity {
		return t.RemoveWorst()
	}
	return nil
}

func (t *skipTable) RemoveWorst() *Entry {
	worst := t.last()
	if worst == nil {
		return nil
	}
	e := worst.entry
	t.removeEntry(e)
	return e
}

func (t *skipTable) WorstKey() (int64, bool) {
	worst := t.last()
	if worst == nil {
		return 0, false
	}
	return worst.entry.Key(), true
}

// last returns the node with the largest key, or nil when empty. It walks
// the top levels, which is O(log n); the backward pointer of a tail node is
// maintained but walking from head keeps the invariants simpler.
func (t *skipTable) last() *skipNode {
	x := t.head
	for i := t.level - 1; i >= 0; i-- {
		for x.forward[i] != nil {
			x = x.forward[i]
		}
	}
	if x == t.head {
		return nil
	}
	return x
}

func (t *skipTable) Each(fn func(*Entry) bool) {
	for x := t.head.forward[0]; x != nil; x = x.forward[0] {
		if !fn(x.entry) {
			return
		}
	}
}

func (t *skipTable) Entries() []*Entry {
	out := make([]*Entry, 0, t.size)
	for x := t.head.forward[0]; x != nil; x = x.forward[0] {
		out = append(out, x.entry)
	}
	return out
}
