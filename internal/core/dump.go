package core

import (
	"fmt"
	"io"
	"strings"
)

// DumpTable writes an ordered or LRU table in the layout of the paper's
// sample figures (Figs. 1–3): OBJ-ID, PROXY, LAST, AVG, HITS. The now
// argument lets the dump show aged averages next to the stored ones.
func DumpTable(w io.Writer, title string, entries []*Entry, now int64) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d entries)\n", title, len(entries))
	fmt.Fprintf(&b, "%-14s %-10s %6s %6s %6s %6s\n",
		"OBJ-ID", "PROXY", "LAST", "AVG", "HITS", "AGED")
	for _, e := range entries {
		fmt.Fprintf(&b, "%s %6d\n", e, e.AgedAverage(now))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Dump writes all three tables of t in paper order.
func (t *Tables) Dump(w io.Writer, now int64) error {
	if err := DumpTable(w, "Caching Table", t.caching.Entries(), now); err != nil {
		return err
	}
	if err := DumpTable(w, "Multiple-Table", t.multiple.Entries(), now); err != nil {
		return err
	}
	return DumpTable(w, "Single-Table", t.single.Entries(), now)
}
