package cluster

import (
	"reflect"
	"testing"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/trace"
)

// TestRunDeterminism asserts that two identically configured runs produce
// identical results. With multiple clients sharing the proxies' state and
// random streams, the Starter firing order is observable: engines must
// start clients in ascending NodeID order, not map-iteration order.
func TestRunDeterminism(t *testing.T) {
	for _, rt := range []Runtime{RuntimeSequential, RuntimeVirtualTime} {
		t.Run(rt.String(), func(t *testing.T) {
			objs := make([]ids.ObjectID, 4000)
			state := uint64(0xDEADBEEFCAFE)
			for i := range objs {
				state = state*6364136223846793005 + 1442695040888963407
				objs[i] = ids.ObjectID(state % 800)
			}
			run := func() *Result {
				res, err := Run(Config{
					Algorithm:   ADC,
					NumProxies:  5,
					Tables:      core.Config{SingleSize: 200, MultipleSize: 200, CachingSize: 100},
					Seed:        42,
					Clients:     3,
					SampleEvery: 500,
					Runtime:     rt,
				}, trace.NewSliceSource(objs))
				if err != nil {
					t.Fatal(err)
				}
				return res
			}

			a, b := run(), run()
			if a.Delivered == 0 || a.Delivered != b.Delivered {
				t.Errorf("delivered: run1 %d, run2 %d", a.Delivered, b.Delivered)
			}
			sa, sb := a.Summary, b.Summary
			sa.Elapsed, sb.Elapsed = 0, 0 // wall clock, legitimately differs
			if sa != sb {
				t.Errorf("summaries differ:\nrun1 %+v\nrun2 %+v", sa, sb)
			}
			if !reflect.DeepEqual(a.Series, b.Series) {
				t.Error("time series differ between identical runs")
			}
			if !reflect.DeepEqual(a.ProxyStats, b.ProxyStats) {
				t.Errorf("proxy stats differ:\nrun1 %+v\nrun2 %+v", a.ProxyStats, b.ProxyStats)
			}
		})
	}
}
