package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestSpanRingWraparound fills a ring past capacity and checks the snapshot
// is the newest spans oldest-first with an accurate drop count.
func TestSpanRingWraparound(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 10; i++ {
		r.Add(Span{ID: uint64(i + 1), Start: int64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
	got := r.Snapshot()
	for i, s := range got {
		if want := uint64(7 + i); s.ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d", i, s.ID, want)
		}
	}

	// Under capacity: no drops, insertion order.
	r2 := NewSpanRing(8)
	r2.Add(Span{ID: 1})
	r2.Add(Span{ID: 2})
	if r2.Dropped() != 0 || r2.Len() != 2 {
		t.Errorf("under-capacity ring: dropped=%d len=%d", r2.Dropped(), r2.Len())
	}
	if s := r2.Snapshot(); len(s) != 2 || s[0].ID != 1 || s[1].ID != 2 {
		t.Errorf("snapshot = %+v", s)
	}

	// Nil ring is the disabled state.
	var nilRing *SpanRing
	nilRing.Add(Span{ID: 1})
	if nilRing.Len() != 0 || nilRing.Snapshot() != nil || nilRing.Dropped() != 0 {
		t.Error("nil ring should record nothing")
	}
}

// TestMergeDumpsSkewAlignment injects a known clock skew into one proxy's
// dump and checks alignment recovers the true cross-proxy ordering.
func TestMergeDumpsSkewAlignment(t *testing.T) {
	const skew = 5_000_000 // proxy 1's clock runs 5s ahead
	scrapeAt := int64(1_000_000_000)
	dumps := []SpanDump{
		{
			Node: 0, NowUs: scrapeAt, ScrapedUs: scrapeAt,
			Spans: []Span{{Trace: 1, ID: 1, Node: 0, Stage: SpanServer, Start: 100, End: 400}},
		},
		{
			// Span physically started at 200 but this proxy's stamps are
			// +skew; its NowUs exposes the same offset.
			Node: 1, NowUs: scrapeAt + skew, ScrapedUs: scrapeAt,
			Spans: []Span{{Trace: 1, ID: 2, Parent: 1, Node: 1, Stage: SpanForward, Start: 200 + skew, End: 300 + skew}},
		},
	}
	merged := MergeDumps(dumps)
	if len(merged) != 2 {
		t.Fatalf("merged %d spans, want 2", len(merged))
	}
	if merged[0].ID != 1 || merged[1].ID != 2 {
		t.Fatalf("alignment lost ordering: %+v", merged)
	}
	if merged[1].Start != 200 || merged[1].End != 300 {
		t.Errorf("skewed span aligned to [%d,%d], want [200,300]", merged[1].Start, merged[1].End)
	}
	// No ScrapedUs → pass-through.
	raw := MergeDumps([]SpanDump{{Node: 2, NowUs: 99, Spans: []Span{{Trace: 2, ID: 3, Start: 7, End: 9}}}})
	if raw[0].Start != 7 {
		t.Errorf("unscraped dump was shifted: %+v", raw[0])
	}
}

// TestBuildSpanTrees covers the three classifications: complete, truncated
// (error present, structure intact), and orphaned (missing parent/root).
func TestBuildSpanTrees(t *testing.T) {
	spans := []Span{
		// Trace 1: complete two-proxy tree.
		{Trace: 1, ID: 1, Node: 0, Stage: SpanServer, Start: 0, End: 100},
		{Trace: 1, ID: 2, Parent: 1, Node: 0, Stage: SpanForward, Start: 10, End: 90, Detail: "Proxy[1]"},
		{Trace: 1, ID: 3, Parent: 2, Node: 1, Stage: SpanServer, Start: 20, End: 80},
		{Trace: 1, ID: 4, Parent: 3, Node: 1, Stage: SpanOrigin, Start: 30, End: 70},
		// Trace 2: truncated — the forward into a killed peer errored.
		{Trace: 2, ID: 5, Node: 0, Stage: SpanServer, Start: 200, End: 300},
		{Trace: 2, ID: 6, Parent: 5, Node: 0, Stage: SpanForward, Start: 210, End: 290, Err: "connection refused"},
		// Trace 3: orphaned — parent 99 never surfaced.
		{Trace: 3, ID: 7, Node: 2, Stage: SpanServer, Start: 400, End: 500},
		{Trace: 3, ID: 8, Parent: 99, Node: 3, Stage: SpanOrigin, Start: 410, End: 490},
	}
	trees := BuildSpanTrees(spans)
	if len(trees) != 3 {
		t.Fatalf("built %d trees, want 3", len(trees))
	}
	states := []TreeState{TreeComplete, TreeTruncated, TreeOrphaned}
	for i, want := range states {
		if got := trees[i].State(); got != want {
			t.Errorf("tree %d state = %v, want %v", i, got, want)
		}
	}
	// Structure of the complete tree: server → forward → server → origin.
	root := trees[0].Root
	if root == nil || root.ID != 1 || len(root.Children) != 1 {
		t.Fatalf("trace 1 root = %+v", root)
	}
	if fwd := root.Children[0]; fwd.ID != 2 || len(fwd.Children) != 1 || fwd.Children[0].ID != 3 {
		t.Errorf("trace 1 forward chain broken: %+v", root.Children[0])
	}

	c := CensusSpanTrees(trees)
	if c.Trees != 3 || c.Complete != 1 || c.Truncated != 1 || c.Orphaned != 1 || c.Spans != 8 {
		t.Errorf("census = %+v", c)
	}
	if got, want := c.CompleteFraction(), 2.0/3.0; got != want {
		t.Errorf("CompleteFraction = %v, want %v", got, want)
	}

	var buf bytes.Buffer
	FormatSpanTree(&buf, trees[0])
	out := buf.String()
	if !strings.Contains(out, "complete") || !strings.Contains(out, SpanOrigin) {
		t.Errorf("FormatSpanTree output:\n%s", out)
	}
}

// TestBuildSpanTreesDoubleRoot: two Parent==0 spans in one trace keep the
// earliest as root and flag the other as an orphan.
func TestBuildSpanTreesDoubleRoot(t *testing.T) {
	trees := BuildSpanTrees([]Span{
		{Trace: 9, ID: 2, Node: 1, Stage: SpanServer, Start: 50, End: 60},
		{Trace: 9, ID: 1, Node: 0, Stage: SpanServer, Start: 0, End: 100},
	})
	if len(trees) != 1 {
		t.Fatalf("trees = %d", len(trees))
	}
	tr := trees[0]
	if tr.Root == nil || tr.Root.ID != 1 {
		t.Fatalf("root = %+v, want ID 1 (earliest)", tr.Root)
	}
	if len(tr.Orphans) != 1 || tr.Orphans[0].ID != 2 || tr.State() != TreeOrphaned {
		t.Errorf("double root not flagged: orphans=%+v state=%v", tr.Orphans, tr.State())
	}
}

// TestWriteChromeSpans sanity-checks the export is valid JSON with one
// duration event per span plus per-trace process metadata.
func TestWriteChromeSpans(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 1, Node: 0, Stage: SpanServer, Start: 1000, End: 1100},
		{Trace: 1, ID: 2, Parent: 1, Node: 1, Stage: SpanForward, Start: 1010, End: 1090},
		{Trace: 2, ID: 3, Node: 0, Stage: SpanServer, Start: 2000, End: 2050, Err: "boom"},
	}
	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var durs, metas int
	for _, e := range f.TraceEvents {
		switch e["ph"] {
		case "X":
			durs++
		case "M":
			metas++
		}
	}
	if durs != 3 || metas != 2 {
		t.Errorf("durs=%d metas=%d, want 3 and 2:\n%s", durs, metas, buf.String())
	}
}

// TestSpanDumpRoundTrip: the /debug/trace JSON schema survives a marshal
// cycle with field names intact (adctrace farm depends on them).
func TestSpanDumpRoundTrip(t *testing.T) {
	d := SpanDump{
		Proxy: "Proxy[3]", Node: 3, NowUs: 123456, Dropped: 7,
		Spans: []Span{{Trace: 1, ID: 2, Parent: 3, Node: 3, Stage: SpanServer, Obj: 42, Start: 10, End: 20, Detail: "d", Err: "e"}},
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"proxy"`, `"now_us"`, `"dropped"`, `"trace"`, `"start_us"`, `"end_us"`} {
		if !strings.Contains(string(b), field) {
			t.Errorf("dump JSON missing %s: %s", field, b)
		}
	}
	var back SpanDump
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", back) != fmt.Sprintf("%+v", d) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, d)
	}
}
