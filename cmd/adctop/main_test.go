package main

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/adc-sim/adc/internal/core"
	"github.com/adc-sim/adc/internal/httpproxy"
	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/promtext"
)

// TestScrapeAndRenderAgainstFarm drives a real farm and checks adctop's
// scrape → render path end to end: the snapshot must carry the proxy's own
// counters and the rendered frame must show every proxy and a server-stage
// latency row.
func TestScrapeAndRenderAgainstFarm(t *testing.T) {
	f, err := httpproxy.NewFarm(httpproxy.FarmConfig{
		Proxies: 2,
		Tables:  core.Config{SingleSize: 128, MultipleSize: 128, CachingSize: 32},
		Seed:    11,
		Tracing: httpproxy.Tracing{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	for i := 0; i < 80; i++ {
		if _, err := f.Get(i%2, ids.ObjectID(i%11+1), "top-"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}

	client := &http.Client{Timeout: 5 * time.Second}
	targets := []string{f.Proxies[0].URL(), f.Proxies[1].URL()}
	snaps := scrapeAll(client, targets)
	for i, s := range snaps {
		if s.err != nil {
			t.Fatalf("scrape %d: %v", i, s.err)
		}
		if want := f.Proxies[i].ID().String(); s.proxy != want {
			t.Errorf("snapshot %d identifies as %q, want %q", i, s.proxy, want)
		}
		if s.requests == 0 || len(s.stages) == 0 {
			t.Errorf("snapshot %d is empty: requests=%v stages=%d", i, s.requests, len(s.stages))
		}
	}

	var b strings.Builder
	render(&b, snaps, nil, 0) // the -once form: lifetime values
	out := b.String()
	for _, want := range []string{"2/2 up", "Proxy[0]", "Proxy[1]", "server", "lifetime"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered frame missing %q:\n%s", want, out)
		}
	}

	// Second frame with deltas: more traffic, then render against prev.
	for i := 0; i < 40; i++ {
		if _, err := f.Get(i%2, ids.ObjectID(i%11+1), "top2-"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	cur := scrapeAll(client, targets)
	b.Reset()
	render(&b, cur, snaps, time.Second)
	if out := b.String(); !strings.Contains(out, "req/s") {
		t.Errorf("delta frame missing rate unit:\n%s", out)
	}

	// A dead target renders as DOWN without disturbing the live rows.
	dead := append(targets, "http://127.0.0.1:1/")
	snaps = scrapeAll(client, dead)
	b.Reset()
	render(&b, snaps, nil, 0)
	if out := b.String(); !strings.Contains(out, "DOWN") || !strings.Contains(out, "2/3 up") {
		t.Errorf("dead proxy not rendered as DOWN:\n%s", out)
	}
}

func TestCounterDelta(t *testing.T) {
	if got := counterDelta(10, 4); got != 6 {
		t.Errorf("counterDelta(10,4) = %v, want 6", got)
	}
	// Counter reset (proxy restart): report the post-restart value.
	if got := counterDelta(3, 100); got != 3 {
		t.Errorf("counterDelta(3,100) = %v, want 3", got)
	}
}

func TestDeltaBuckets(t *testing.T) {
	prev := []promtext.Bucket{{LE: 0.001, Cum: 2}, {LE: 0.01, Cum: 5}}
	cur := []promtext.Bucket{{LE: 0.001, Cum: 3}, {LE: 0.01, Cum: 9}}
	d := deltaBuckets(cur, prev)
	if d[0].Cum != 1 || d[1].Cum != 4 {
		t.Errorf("deltaBuckets = %+v", d)
	}
	// Reset falls back to the current cumulative shape.
	if d := deltaBuckets(prev, cur); d[0].Cum != 2 || d[1].Cum != 5 {
		t.Errorf("reset fallback = %+v", d)
	}
}
