package carp

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
	"github.com/adc-sim/adc/internal/sim"
)

func members(n int) []ids.NodeID {
	out := make([]ids.NodeID, n)
	for i := range out {
		out[i] = ids.NodeID(i)
	}
	return out
}

func TestHasherDeterministic(t *testing.T) {
	h1 := NewHasher(members(5))
	h2 := NewHasher(members(5))
	for obj := ids.ObjectID(0); obj < 1000; obj++ {
		if h1.Assign(obj) != h2.Assign(obj) {
			t.Fatalf("hashers disagree on %v", obj)
		}
	}
}

func TestHasherBalance(t *testing.T) {
	h := NewHasher(members(5))
	counts := make(map[ids.NodeID]int)
	const n = 50000
	for obj := ids.ObjectID(0); obj < n; obj++ {
		counts[h.Assign(obj)]++
	}
	for id, c := range counts {
		if c < n/5*8/10 || c > n/5*12/10 {
			t.Errorf("member %v owns %d of %d (want ≈%d)", id, c, n, n/5)
		}
	}
}

func TestHasherMinimalDisruption(t *testing.T) {
	// CARP's selling point: adding a member remaps only ≈1/(n+1) of the
	// objects and never moves an object between two surviving members.
	before := NewHasher(members(5))
	after := NewHasher(members(6))
	const n = 20000
	moved := 0
	for obj := ids.ObjectID(0); obj < n; obj++ {
		a, b := before.Assign(obj), after.Assign(obj)
		if a != b {
			moved++
			if b != ids.NodeID(5) {
				t.Fatalf("object %v moved between surviving members %v → %v", obj, a, b)
			}
		}
	}
	frac := float64(moved) / n
	if frac < 0.10 || frac > 0.24 {
		t.Errorf("moved fraction = %.3f, want ≈1/6", frac)
	}
}

// carpRig builds an array of CARP proxies plus origin on an engine.
func carpRig(t *testing.T, n, cacheSize int) (*sim.Engine, []*Proxy, *Hasher) {
	t.Helper()
	h := NewHasher(members(n))
	eng := sim.NewEngine()
	proxies := make([]*Proxy, n)
	for i := range proxies {
		p, err := New(Config{ID: ids.NodeID(i), Hasher: h, CacheSize: cacheSize})
		if err != nil {
			t.Fatal(err)
		}
		proxies[i] = p
		if err := eng.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Register(sim.NewOrigin()); err != nil {
		t.Fatal(err)
	}
	return eng, proxies, h
}

type sink struct {
	id      ids.NodeID
	replies []*msg.Reply
}

func (s *sink) ID() ids.NodeID { return s.id }
func (s *sink) Handle(_ sim.Context, m msg.Message) {
	if rep, ok := m.(*msg.Reply); ok {
		s.replies = append(s.replies, rep)
	}
}

func send(t *testing.T, eng *sim.Engine, s *sink, to ids.NodeID, obj ids.ObjectID, counter uint64) *msg.Reply {
	t.Helper()
	before := len(s.replies)
	eng.Send(&msg.Request{
		To: to, ID: ids.NewRequestID(0, counter), Object: obj,
		Client: s.id, Sender: s.id,
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.replies) != before+1 {
		t.Fatalf("want exactly one reply, got %d new", len(s.replies)-before)
	}
	return s.replies[len(s.replies)-1]
}

func TestConfigValidation(t *testing.T) {
	h := NewHasher(members(2))
	if _, err := New(Config{ID: ids.Origin, Hasher: h, CacheSize: 4}); err == nil {
		t.Error("non-proxy ID must fail")
	}
	if _, err := New(Config{ID: 0, CacheSize: 4}); err == nil {
		t.Error("nil hasher must fail")
	}
	if _, err := New(Config{ID: 0, Hasher: h}); err == nil {
		t.Error("zero cache size must fail")
	}
}

func TestMissFetchesFromOriginAndCaches(t *testing.T) {
	eng, proxies, h := carpRig(t, 3, 8)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	const obj = 42
	assigned := h.Assign(obj)
	entry := (assigned + 1) % 3 // deliberately not the assigned proxy

	rep := send(t, eng, s, entry, obj, 1)
	if !rep.FromOrigin {
		t.Error("first request must be a miss")
	}
	// Hops: client→entry, entry→assigned, assigned→origin,
	// origin→assigned, assigned→client = 5.
	if rep.Hops != 5 {
		t.Errorf("miss hops = %d, want 5", rep.Hops)
	}
	if !proxies[assigned].cache.Contains(obj) {
		t.Error("assigned proxy must cache the fetched object")
	}
	for i, p := range proxies {
		if ids.NodeID(i) != assigned && p.cache.Contains(obj) {
			t.Errorf("proxy %d cached an object it is not assigned", i)
		}
	}

	// Second request through another proxy: remote hit, 3 hops, bypass.
	rep = send(t, eng, s, entry, obj, 2)
	if rep.FromOrigin {
		t.Error("second request must hit")
	}
	if rep.Hops != 3 {
		t.Errorf("remote hit hops = %d, want 3", rep.Hops)
	}

	// Entry at the assigned proxy itself: local hit, 2 hops.
	rep = send(t, eng, s, assigned, obj, 3)
	if rep.FromOrigin || rep.Hops != 2 {
		t.Errorf("local hit = origin:%v hops:%d, want hit with 2 hops", rep.FromOrigin, rep.Hops)
	}
}

func TestAssignedProxyMissGoesDirectToOrigin(t *testing.T) {
	eng, _, h := carpRig(t, 3, 8)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	const obj = 7
	rep := send(t, eng, s, h.Assign(obj), obj, 1)
	if !rep.FromOrigin {
		t.Error("want origin miss")
	}
	// client→assigned, assigned→origin, origin→assigned,
	// assigned→client = 4.
	if rep.Hops != 4 {
		t.Errorf("hops = %d, want 4", rep.Hops)
	}
}

func TestLRUEvictionUnderChurn(t *testing.T) {
	eng, proxies, _ := carpRig(t, 2, 4)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		send(t, eng, s, ids.NodeID(i%2), ids.ObjectID(i), i)
	}
	for i, p := range proxies {
		if p.CacheLen() > 4 {
			t.Errorf("proxy %d cache grew to %d > 4", i, p.CacheLen())
		}
		if p.Stats().CacheEvictions == 0 {
			t.Errorf("proxy %d never evicted under churn", i)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, proxies, _ := carpRig(t, 3, 16)
	s := &sink{id: ids.Client(0)}
	if err := eng.Register(s); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 150; i++ {
		send(t, eng, s, ids.NodeID(i%3), ids.ObjectID(i%12), i)
	}
	var req, hit, fwd, orig uint64
	for _, p := range proxies {
		st := p.Stats()
		req += st.Requests
		hit += st.LocalHits
		fwd += st.ForwardLearned
		orig += st.ForwardOrigin
	}
	if hit+fwd+orig != req {
		t.Errorf("hits(%d)+forwards(%d)+origin(%d) != requests(%d)", hit, fwd, orig, req)
	}
	if hit == 0 {
		t.Error("a 12-object working set must produce hits")
	}
}
