package sim

import (
	"fmt"

	"github.com/adc-sim/adc/internal/ids"
	"github.com/adc-sim/adc/internal/msg"
)

// PEngine is the sharded parallel virtual-time engine: the same
// discrete-event semantics as VEngine — messages delivered in (timestamp,
// enqueue sequence) order, transfers delayed by the latency model — but
// executed across per-core shards so one simulation can hold tens of
// thousands of proxies and millions of clients.
//
// Every node is owned by exactly one shard (ids.ShardMap partitions the
// NodeID space), and each shard owns a private flat 4-ary event heap, a
// message freelist, and its own virtual clock. Execution proceeds in
// cohorts: the engine repeatedly finds the minimum pending timestamp t and
// lets every shard holding events at t execute them concurrently. That is
// safe because handlers only touch their own node's state (the Node
// contract all in-repo agents follow — each proxy owns its tables, rng and
// stats and interacts with the world exclusively through messages), so
// cohort members at different nodes cannot observe each other regardless
// of interleaving.
//
// Determinism is exact, not statistical: the engine is gated on producing
// byte-identical experiment outputs to VEngine at any shard count. The
// mechanism is the emission merge. During a cohort, Sends are not pushed
// into heaps immediately; each shard buffers them as (parent sequence
// number, emission index) pairs — the shard pops its cohort events in
// ascending sequence order, so each buffer comes out already sorted. When
// the cohort completes, the buffers are merged across shards in (parent
// seq, emission index) order and assigned consecutive global sequence
// numbers. Because the sequential engine delivers a timestamp cohort in
// exactly ascending sequence order and assigns child sequence numbers in
// exactly emission order, the merged assignment reproduces VEngine's
// enqueue counter value for value — and with identical (at, seq) pairs on
// every event, delivery order (and therefore every result byte) is
// identical. Zero-delay emissions re-enter the current timestamp as a
// follow-up cohort, which again matches the sequential pop order.
//
// Cohorts that live entirely on one shard execute inline on the
// coordinator goroutine with no synchronization at all, so sparse regimes
// (few nodes, closed-loop traffic) degrade to roughly sequential speed;
// wide regimes (many clients injecting at once) fan out across all shards
// and amortize the two channel rendezvous per cohort over thousands to
// millions of events. Large merges are parallelized too: each shard ranks
// its own emissions against the other shards' sorted buffers (two-pointer
// counting), then each destination shard pushes its incoming events —
// both phases produce the same sequence values as the serial merge.
//
// PEngine supports the lossless protocol only: fault plans, drop filters,
// tracing and time-series recording are features of the sequential
// engines (a global loss rng drawn in delivery order cannot be reproduced
// under sharded execution without giving up byte-identical results). The
// cluster layer enforces this at validation time.
type PEngine struct {
	latency LatencyModel
	part    ids.ShardMap
	nodes   ids.Table[Node] // read-only while running
	shards  []*pshard

	// seq is the global enqueue counter, identical step for step to
	// VEngine's. Only the coordinator advances it, at cohort merges.
	seq uint64

	// starting marks the single-threaded Start phase, where emissions
	// bypass the cohort buffers and schedule directly (exactly like
	// VEngine's pre-run Sends).
	starting bool
}

// parallelMergeMin is the cohort emission count below which the serial
// S-way merge on the coordinator beats the two extra barrier rounds of the
// parallel rank+push path. It is a variable only so tests can force the
// parallel path on small workloads; both paths assign identical sequence
// numbers, so the setting never affects results.
var parallelMergeMin = 2048

// pcmd is one coordinator→worker phase command.
type pcmd struct {
	phase pphase
	t     int64  // phaseExec: the cohort timestamp
	base  uint64 // phaseRank: first sequence number of the cohort's emissions
}

type pphase int8

const (
	phaseExec pphase = iota
	phaseRank
	phasePush
)

// pemit is one buffered emission awaiting the cohort merge.
type pemit struct {
	pseq uint64 // sequence number of the emitting (parent) event
	seq  uint64 // assigned global sequence number (rank phase)
	at   int64  // absolute delivery time
	dest int32  // destination shard
	m    msg.Message
}

// pshard is one shard: a slice of the node space with its own heap,
// freelist and clock. It implements the full node-facing context surface
// (Context, Clock, Scheduler, Recycler), so agents cannot tell it apart
// from VEngine.
type pshard struct {
	eng *PEngine
	idx int

	pq eventQueue
	fl msg.Freelist

	now     int64
	current ids.NodeID
	curSeq  uint64

	// emits buffers the cohort's Sends in (pseq, emission index) order.
	emits []pemit

	delivered uint64
	err       error

	// mergeHead is the coordinator's cursor into emits during the serial
	// merge.
	mergeHead int

	cmd  chan pcmd
	done chan struct{}
}

var (
	_ Context   = (*pshard)(nil)
	_ Clock     = (*pshard)(nil)
	_ Scheduler = (*pshard)(nil)
	_ Recycler  = (*pshard)(nil)
)

// NewPEngine returns an empty parallel engine over the given partition.
func NewPEngine(latency LatencyModel, part ids.ShardMap) *PEngine {
	e := &PEngine{latency: latency, part: part}
	e.shards = make([]*pshard, part.Shards())
	for i := range e.shards {
		e.shards[i] = &pshard{
			eng:     e,
			idx:     i,
			current: ids.None,
			cmd:     make(chan pcmd, 1),
			done:    make(chan struct{}, 1),
		}
	}
	return e
}

// Shards returns the shard count (test and progress-display support).
func (e *PEngine) Shards() int { return len(e.shards) }

// Register adds a node before Run. The owning shard is derived from the
// partition; registration itself is single-threaded.
func (e *PEngine) Register(n Node) error {
	if !e.nodes.Put(n.ID(), n) {
		return fmt.Errorf("sim: duplicate node %v", n.ID())
	}
	return nil
}

// Delivered returns the number of delivered messages, summed across
// shards. Call it only after Run has returned.
func (e *PEngine) Delivered() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.delivered
	}
	return n
}

// Run starts the Starter nodes in ascending NodeID order (single-threaded,
// exactly like the sequential engines) and then processes timestamp
// cohorts until every shard's queue drains.
func (e *PEngine) Run() error {
	e.starting = true
	e.nodes.Ascending(func(id ids.NodeID, n Node) {
		if st, ok := n.(Starter); ok {
			s := e.shards[e.part.ShardOf(id)]
			s.current = id
			st.Start(s)
			s.current = ids.None
		}
	})
	e.starting = false

	parallel := len(e.shards) > 1
	if parallel {
		for _, s := range e.shards {
			go s.loop()
		}
		defer func() {
			for _, s := range e.shards {
				close(s.cmd)
			}
		}()
	}

	active := make([]*pshard, 0, len(e.shards))
	for {
		// Cohort pick: the minimum pending timestamp across shards.
		var t int64
		found := false
		for _, s := range e.shards {
			if s.pq.Len() > 0 {
				if h := s.pq.ev[0].at; !found || h < t {
					t, found = h, true
				}
			}
		}
		if !found {
			return nil
		}
		active = active[:0]
		for _, s := range e.shards {
			if s.pq.Len() > 0 && s.pq.ev[0].at == t {
				active = append(active, s)
			}
		}

		// Execute the cohort. A single-shard cohort runs inline on this
		// goroutine — no channel round trip — which keeps sparse runs at
		// sequential speed.
		if len(active) == 1 {
			active[0].exec(t)
		} else {
			for _, s := range active {
				s.cmd <- pcmd{phase: phaseExec, t: t}
			}
			for _, s := range active {
				<-s.done
			}
		}
		for _, s := range active {
			if s.err != nil {
				return s.err
			}
		}

		// Merge the cohort's emissions into the shard heaps, assigning
		// the exact sequence numbers the sequential engine would have.
		total := 0
		for _, s := range active {
			total += len(s.emits)
		}
		if total == 0 {
			continue
		}
		if !parallel || total < parallelMergeMin {
			e.mergeSerial()
		} else {
			base := e.seq + 1
			for _, s := range e.shards {
				s.cmd <- pcmd{phase: phaseRank, base: base}
			}
			for _, s := range e.shards {
				<-s.done
			}
			for _, s := range e.shards {
				s.cmd <- pcmd{phase: phasePush}
			}
			for _, s := range e.shards {
				<-s.done
			}
			e.seq += uint64(total)
			for _, s := range e.shards {
				// Keep the capacity; stale message pointers in the spare
				// slots alias freelist entries and are overwritten next
				// cohort.
				s.emits = s.emits[:0]
			}
		}
	}
}

// mergeSerial drains every shard's emission buffer in (pseq, emission
// index) order, assigning consecutive sequence numbers and pushing each
// event into its destination heap. pseq values are globally unique (each
// parent event executes on exactly one shard), so picking the smallest
// head is a total, deterministic order.
func (e *PEngine) mergeSerial() {
	for {
		var best *pshard
		for _, s := range e.shards {
			if s.mergeHead < len(s.emits) {
				if best == nil || s.emits[s.mergeHead].pseq < best.emits[best.mergeHead].pseq {
					best = s
				}
			}
		}
		if best == nil {
			break
		}
		em := &best.emits[best.mergeHead]
		best.mergeHead++
		e.seq++
		e.shards[em.dest].pq.push(event{at: em.at, seq: e.seq, m: em.m})
		em.m = nil
	}
	for _, s := range e.shards {
		s.mergeHead = 0
		s.emits = s.emits[:0]
	}
}

// loop is the worker goroutine: it executes phase commands until the
// coordinator closes the channel. All shard state is handed back and forth
// through the cmd/done rendezvous, which provides the happens-before edges
// that keep the engine race-clean.
func (s *pshard) loop() {
	for cmd := range s.cmd {
		switch cmd.phase {
		case phaseExec:
			s.exec(cmd.t)
		case phaseRank:
			s.rank(cmd.base)
		case phasePush:
			s.pushMerged()
		}
		s.done <- struct{}{}
	}
}

// exec delivers every queued event with timestamp t, in ascending sequence
// order, buffering emissions for the merge.
func (s *pshard) exec(t int64) {
	s.now = t
	for s.pq.Len() > 0 && s.pq.ev[0].at == t {
		ev := s.pq.pop()
		n, ok := s.eng.nodes.Get(ev.m.Dest())
		if !ok {
			s.err = fmt.Errorf("sim: message for unregistered node %v", ev.m.Dest())
			return
		}
		s.delivered++
		s.curSeq = ev.seq
		s.current = n.ID()
		n.Handle(s, ev.m)
		s.current = ids.None
	}
}

// rank assigns each of this shard's buffered emissions its global sequence
// number: base plus its rank in the cross-shard (pseq, emission index)
// merge order. The rank is the emission's own index plus, per foreign
// shard, the count of foreign emissions with smaller pseq — a two-pointer
// sweep over each sorted buffer. The values are identical to what
// mergeSerial would assign.
func (s *pshard) rank(base uint64) {
	mine := s.emits
	for i := range mine {
		mine[i].seq = base + uint64(i)
	}
	for _, o := range s.eng.shards {
		if o == s || len(o.emits) == 0 {
			continue
		}
		other := o.emits
		j := 0
		for i := range mine {
			for j < len(other) && other[j].pseq < mine[i].pseq {
				j++
			}
			mine[i].seq += uint64(j)
		}
	}
}

// pushMerged pushes every cohort emission destined to this shard into its
// heap. Insertion order does not matter for determinism: (at, seq) pairs
// are unique, so the pop sequence is independent of heap shape.
func (s *pshard) pushMerged() {
	for _, o := range s.eng.shards {
		for i := range o.emits {
			if em := &o.emits[i]; em.dest == int32(s.idx) {
				s.pq.push(event{at: em.at, seq: em.seq, m: em.m})
			}
		}
	}
}

// VNow implements Clock.
func (s *pshard) VNow() int64 { return s.now }

// Send implements Context: the transfer is priced by the latency model and
// buffered for the cohort merge (or scheduled directly during Start).
func (s *pshard) Send(m msg.Message) {
	CountHop(m)
	s.schedule(s.eng.latency.cost(s.current, m.Dest()), m)
}

// After implements Scheduler.
func (s *pshard) After(delay int64, m msg.Message) {
	if delay < 0 {
		delay = 0
	}
	s.schedule(delay, m)
}

func (s *pshard) schedule(delay int64, m msg.Message) {
	e := s.eng
	if e.starting {
		// Single-threaded Start phase: assign the global sequence number
		// immediately, exactly as VEngine does for pre-run Sends.
		e.seq++
		e.shards[e.part.ShardOf(m.Dest())].pq.push(event{at: s.now + delay, seq: e.seq, m: m})
		return
	}
	s.emits = append(s.emits, pemit{
		pseq: s.curSeq,
		at:   s.now + delay,
		dest: int32(e.part.ShardOf(m.Dest())),
		m:    m,
	})
}

// AcquireRequest implements Recycler.
func (s *pshard) AcquireRequest() *msg.Request { return s.fl.GetRequest() }

// AcquireReply implements Recycler.
func (s *pshard) AcquireReply() *msg.Reply { return s.fl.GetReply() }

// ReleaseRequest implements Recycler.
func (s *pshard) ReleaseRequest(r *msg.Request) { s.fl.PutRequest(r) }

// ReleaseReply implements Recycler.
func (s *pshard) ReleaseReply(r *msg.Reply) { s.fl.PutReply(r) }
