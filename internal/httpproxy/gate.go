package httpproxy

import "sync/atomic"

// Admission control. A proxy has finite concurrency: past some point every
// extra in-flight request only adds queueing delay and, eventually, memory
// pressure and collapse. The gate bounds entry-request concurrency with a
// semaphore plus a bounded wait queue; requests beyond both are shed with
// 429 Too Many Requests so the caller (and the load generator's shed
// counters) see the overload instead of a growing tail.
//
// Only entry requests (X-Adc-Forwards == 0) pass the gate. Forwarded hops
// already consumed an admission slot at their entry proxy, and gating them
// mid-chain could deadlock a chain that revisits a saturated proxy.

// Default admission bounds; Config.MaxActive/MaxQueue override.
const (
	defaultMaxActive = 1024
	defaultMaxQueue  = 4096
)

// gate is a counting semaphore with a bounded waiting room. A nil *gate
// admits everything.
type gate struct {
	sem      chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

// newGate builds a gate admitting maxActive concurrent holders with up to
// maxQueue waiters. maxActive < 0 disables admission control (nil gate);
// maxQueue < 0 means shed immediately once the active slots are full.
func newGate(maxActive, maxQueue int) *gate {
	if maxActive == 0 {
		maxActive = defaultMaxActive
	}
	if maxQueue == 0 {
		maxQueue = defaultMaxQueue
	}
	if maxActive < 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{sem: make(chan struct{}, maxActive), maxQueue: int64(maxQueue)}
}

// enter claims an admission slot, waiting in the bounded queue if the
// active set is full. It reports false when the request must be shed.
func (g *gate) enter() bool {
	if g == nil {
		return true
	}
	select {
	case g.sem <- struct{}{}:
		return true
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return false
	}
	g.sem <- struct{}{}
	g.queued.Add(-1)
	return true
}

// leave releases a slot claimed by enter.
func (g *gate) leave() {
	if g != nil {
		<-g.sem
	}
}

// depth reports the current number of queued waiters (introspection).
func (g *gate) depth() int64 {
	if g == nil {
		return 0
	}
	return g.queued.Load()
}
