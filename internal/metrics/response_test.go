package metrics

import (
	"math"
	"testing"
)

func TestRecordResponse(t *testing.T) {
	c := NewCollector(WithSampleEvery(0))
	for _, v := range []int64{100, 200, 300} {
		c.RecordResponse(v)
	}
	if got := c.Response().Mean(); math.Abs(got-200) > 1e-12 {
		t.Errorf("mean response = %v, want 200", got)
	}
	if got := c.Response().Max(); got != 300 {
		t.Errorf("max response = %v, want 300", got)
	}
	s := c.Summary()
	if math.Abs(s.MeanResponse-200) > 1e-12 || s.MaxResponse != 300 {
		t.Errorf("summary response = %v/%v", s.MeanResponse, s.MaxResponse)
	}
}

func TestSummaryWithoutResponses(t *testing.T) {
	c := NewCollector(WithSampleEvery(0))
	c.Record(true, 2, 1)
	s := c.Summary()
	if s.MeanResponse != 0 || s.MaxResponse != 0 {
		t.Errorf("response fields must be zero without virtual time: %+v", s)
	}
}
