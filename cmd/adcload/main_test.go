package main

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// smokeConfig is a short, low-rate run sized for CI: enough traffic to
// produce hits but well under a second of wall time per phase.
func smokeConfig() config {
	return config{
		Proxies:    2,
		Single:     256,
		Multiple:   256,
		Caching:    128,
		Seed:       1,
		Rate:       500,
		Duration:   time.Second,
		Conns:      8,
		Profile:    "zipf",
		Population: 64,
		Alpha:      0.8,
		Warm:       256,
	}
}

// TestRunSmoke is the farm-smoke gate: a short open-loop run must complete
// every scheduled request without errors, serve a nonzero hit rate from a
// warmed farm, and tear down without leaking goroutines.
func TestRunSmoke(t *testing.T) {
	before := runtime.NumGoroutine()

	rep, err := run(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("run reported %d errors", rep.Errors)
	}
	if rep.Completed != uint64(rep.Scheduled) {
		t.Errorf("completed %d of %d scheduled requests", rep.Completed, rep.Scheduled)
	}
	if rep.Hits == 0 {
		t.Error("warmed farm served zero hits")
	}
	if rep.AchievedRate < rep.OfferedRate*0.5 {
		t.Errorf("achieved %.0f req/s of %.0f offered — farm cannot sustain the smoke rate",
			rep.AchievedRate, rep.OfferedRate)
	}
	if rep.P50us <= 0 || rep.P999us < rep.P50us {
		t.Errorf("implausible latency quantiles: p50=%v p99.9=%v", rep.P50us, rep.P999us)
	}
	if len(rep.Proxies) != 2 {
		t.Fatalf("report covers %d proxies, want 2", len(rep.Proxies))
	}
	var perProxy uint64
	for _, p := range rep.Proxies {
		perProxy += p.Requests
	}
	if perProxy < rep.Completed {
		t.Errorf("proxies saw %d requests, fewer than the %d completed", perProxy, rep.Completed)
	}

	// Goroutine-leak check: everything run() started (farm servers,
	// workers, pooled connections) must wind down once it returns. Idle
	// HTTP connections take a beat to notice their server closed, so
	// poll rather than assert immediately.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before run, %d after\n%s",
				before, now, truncateStacks(string(buf[:n])))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestObjectStreamProfiles checks every -profile generates the requested
// stream length within the population, and unknown names fail.
func TestObjectStreamProfiles(t *testing.T) {
	cfg := smokeConfig()
	for _, profile := range []string{"paper", "zipf", "uniform"} {
		cfg.Profile = profile
		objs, err := objectStream(cfg, 1000)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		if len(objs) != 1000 {
			t.Errorf("%s: generated %d objects, want 1000", profile, len(objs))
		}
	}
	cfg.Profile = "nope"
	if _, err := objectStream(cfg, 10); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown profile must fail naming the profile, got %v", err)
	}
}

// truncateStacks keeps leak dumps readable in CI logs.
func truncateStacks(s string) string {
	const max = 8 << 10
	if len(s) <= max {
		return s
	}
	return s[:max] + "\n... (truncated)"
}
