package chash

import (
	"testing"

	"github.com/adc-sim/adc/internal/ids"
)

func members(n int) []ids.NodeID {
	out := make([]ids.NodeID, n)
	for i := range out {
		out[i] = ids.NodeID(i)
	}
	return out
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(members(3), -1); err == nil {
		t.Error("negative replicas must fail")
	}
	r, err := NewRing(members(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
	if err := r.Add(0); err == nil {
		t.Error("duplicate Add must fail")
	}
	if err := r.Remove(9); err == nil {
		t.Error("Remove of absent member must fail")
	}
}

func TestRingEmptyAssign(t *testing.T) {
	r, err := NewRing(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Assign(1); got != ids.None {
		t.Errorf("empty ring Assign = %v, want None", got)
	}
}

func TestRingDeterministic(t *testing.T) {
	a, _ := NewRing(members(4), 0)
	b, _ := NewRing(members(4), 0)
	for obj := ids.ObjectID(0); obj < 2000; obj++ {
		if a.Assign(obj) != b.Assign(obj) {
			t.Fatalf("rings disagree on %v", obj)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, _ := NewRing(members(5), 0)
	counts := make(map[ids.NodeID]int)
	const n = 50000
	for obj := ids.ObjectID(0); obj < n; obj++ {
		counts[r.Assign(obj)]++
	}
	for id, c := range counts {
		if c < n/5*7/10 || c > n/5*13/10 {
			t.Errorf("member %v owns %d of %d (want ≈%d ±30%%)", id, c, n, n/5)
		}
	}
}

func TestRingMinimalDisruptionOnJoin(t *testing.T) {
	before, _ := NewRing(members(5), 0)
	after, _ := NewRing(members(5), 0)
	if err := after.Add(5); err != nil {
		t.Fatal(err)
	}
	const n = 20000
	moved := 0
	for obj := ids.ObjectID(0); obj < n; obj++ {
		a, b := before.Assign(obj), after.Assign(obj)
		if a != b {
			moved++
			if b != ids.NodeID(5) {
				t.Fatalf("object %v moved between survivors %v → %v", obj, a, b)
			}
		}
	}
	frac := float64(moved) / n
	if frac < 0.08 || frac > 0.28 {
		t.Errorf("moved fraction = %.3f, want ≈1/6", frac)
	}
}

func TestRingRemoveRedistributes(t *testing.T) {
	r, _ := NewRing(members(3), 0)
	ownerBefore := make(map[ids.ObjectID]ids.NodeID)
	for obj := ids.ObjectID(0); obj < 5000; obj++ {
		ownerBefore[obj] = r.Assign(obj)
	}
	if err := r.Remove(1); err != nil {
		t.Fatal(err)
	}
	for obj, was := range ownerBefore {
		now := r.Assign(obj)
		if now == ids.NodeID(1) {
			t.Fatalf("object %v still assigned to removed member", obj)
		}
		if was != ids.NodeID(1) && now != was {
			t.Fatalf("object %v moved from surviving member %v to %v", obj, was, now)
		}
	}
}
