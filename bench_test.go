// Benchmarks regenerating each figure of the paper's evaluation (§V) plus
// the ablation studies DESIGN.md §5 calls out. Each benchmark iteration
// runs the complete experiment at 1/50 of paper scale so `go test -bench=.`
// finishes quickly; pass -scale via cmd/adcfigures for full-scale numbers.
// The reported metrics (hit rates, hop counts) are attached to the
// benchmark output via b.ReportMetric, so a bench run doubles as a
// regeneration of every headline number in EXPERIMENTS.md.
package adc_test

import (
	"testing"

	"github.com/adc-sim/adc"
)

// benchProfile is the scaled experiment profile used by every benchmark.
func benchProfile() adc.Profile {
	return adc.Profile{Scale: 0.02, Seed: 1}
}

// BenchmarkFigure11HitRate runs the ADC-vs-hashing comparison and reports
// the cumulative hit rates behind Fig. 11.
func BenchmarkFigure11HitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := adc.Compare(benchProfile(), false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.ADCHitRate, "adc-hit")
		b.ReportMetric(cmp.HashingHitRate, "hash-hit")
	}
}

// BenchmarkFigure12Hops reports the mean hops per request behind Fig. 12;
// the paper's claim is a ≈2-hop ADC premium.
func BenchmarkFigure12Hops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := adc.Compare(benchProfile(), false)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.ADCHops, "adc-hops")
		b.ReportMetric(cmp.HashingHops, "hash-hops")
		b.ReportMetric(cmp.ADCHops-cmp.HashingHops, "gap")
	}
}

// BenchmarkFigure13HitsByTableSize runs the three table sweeps behind
// Fig. 13 and reports the caching-table extremes (the dominant parameter).
func BenchmarkFigure13HitsByTableSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := adc.Sweep(benchProfile())
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := cachingExtremes(pts)
		b.ReportMetric(lo, "hit-cache-5k")
		b.ReportMetric(hi, "hit-cache-30k")
	}
}

func cachingExtremes(pts []adc.SweepPoint) (lo, hi float64) {
	first := true
	var minSize, maxSize int
	for _, pt := range pts {
		if pt.Table != "caching" {
			continue
		}
		if first || pt.Size < minSize {
			minSize, lo = pt.Size, pt.HitRate
		}
		if first || pt.Size > maxSize {
			maxSize, hi = pt.Size, pt.HitRate
		}
		first = false
	}
	return lo, hi
}

// BenchmarkFigure14HopsByTableSize reports the hop spread across the
// sweep; the paper claims the variation stays within ≈¼ hop.
func BenchmarkFigure14HopsByTableSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := adc.Sweep(benchProfile())
		if err != nil {
			b.Fatal(err)
		}
		minH, maxH := pts[0].Hops, pts[0].Hops
		for _, pt := range pts {
			if pt.Hops < minH {
				minH = pt.Hops
			}
			if pt.Hops > maxH {
				maxH = pt.Hops
			}
		}
		b.ReportMetric(maxH-minH, "hop-spread")
	}
}

// BenchmarkFigure15TimeByTableSize times the paper-faithful O(n) tables;
// the wall-clock growth with single-table size is Fig. 15's shape.
func BenchmarkFigure15TimeByTableSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := adc.TimingSweep(benchProfile())
		if err != nil {
			b.Fatal(err)
		}
		var loS, hiS float64
		var minSize, maxSize int
		first := true
		for _, pt := range pts {
			if pt.Table != "single" {
				continue
			}
			if first || pt.Size < minSize {
				minSize, loS = pt.Size, pt.Elapsed.Seconds()
			}
			if first || pt.Size > maxSize {
				maxSize, hiS = pt.Size, pt.Elapsed.Seconds()
			}
			first = false
		}
		b.ReportMetric(hiS/loS, "single-slowdown-x")
	}
}

// BenchmarkAblationSelectiveVsLRU quantifies §III.4's selective-caching
// claim.
func BenchmarkAblationSelectiveVsLRU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := adc.SelectiveCachingAblation(benchProfile())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Full-r.Ablated, "hit-delta")
	}
}

// BenchmarkAblationAging quantifies the Fig. 4 aging rule.
func BenchmarkAblationAging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := adc.AgingAblation(benchProfile())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Full-r.Ablated, "hit-delta")
	}
}

// BenchmarkAblationMaxHops sweeps the forwarding bound the paper leaves
// unused.
func BenchmarkAblationMaxHops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := adc.MaxHopsSweep(benchProfile(), []int{2, 0})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[1].HitRate-pts[0].HitRate, "unbounded-gain")
	}
}

// BenchmarkBackends times the identical simulation on the three
// ordered-table backends (§V.3.3's proposed speed-up).
func BenchmarkBackends(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := adc.BackendComparison(benchProfile())
		if err != nil {
			b.Fatal(err)
		}
		var list, skip float64
		for _, pt := range pts {
			switch pt.Backend {
			case "list+scan":
				list = pt.Elapsed.Seconds()
			case "skiplist":
				skip = pt.Elapsed.Seconds()
			}
		}
		if skip > 0 {
			b.ReportMetric(list/skip, "list-vs-skip-x")
		}
	}
}

// BenchmarkBaselines runs all five schemes over one workload and reports
// their post-fill hit rates — the §II/§III design-space comparison.
func BenchmarkBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := adc.Baselines(benchProfile())
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range pts {
			b.ReportMetric(pt.HitRate, pt.Algorithm+"-hit")
		}
	}
}

// BenchmarkResponseTime runs the §V.2.2 response-time comparison on the
// virtual-time engine (WAN latency model).
func BenchmarkResponseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := adc.ResponseTime(benchProfile(), 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ADCMean/1000, "adc-ms")
		b.ReportMetric(r.HashingMean/1000, "hash-ms")
	}
}

// BenchmarkSimulationThroughput measures raw simulator speed: requests per
// second through a five-proxy ADC system (the engine hot path).
func BenchmarkSimulationThroughput(b *testing.B) {
	w, err := adc.NewWorkload(adc.WorkloadConfig{Requests: 100_000, Population: 1000})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w.Reset()
		b.StartTimer()
		res, err := adc.Run(adc.Config{
			Proxies: 5, SingleTable: 2000, MultipleTable: 2000, CachingTable: 1000,
		}, w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Requests)/res.Elapsed.Seconds(), "req/s")
	}
}

// BenchmarkSweepSequential runs the Figs. 13–14 table sweep with the
// worker pool forced to one — the pre-parallel-runner baseline.
func BenchmarkSweepSequential(b *testing.B) {
	b.ReportAllocs()
	p := benchProfile()
	p.Parallel = 1
	for i := 0; i < b.N; i++ {
		if _, err := adc.Sweep(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel runs the identical sweep at the default pool
// width (GOMAXPROCS); the speed-up over BenchmarkSweepSequential is the
// parallel runner's headline number and scales with core count.
func BenchmarkSweepParallel(b *testing.B) {
	b.ReportAllocs()
	p := benchProfile()
	p.Parallel = 0 // GOMAXPROCS
	for i := 0; i < b.N; i++ {
		if _, err := adc.Sweep(p); err != nil {
			b.Fatal(err)
		}
	}
}
