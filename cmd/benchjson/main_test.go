package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBenchFile(t *testing.T, name string, f File) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareReportsDeltasAndRegressions(t *testing.T) {
	old := writeBenchFile(t, "old.json", File{
		GitSHA: "aaaa",
		Benchmarks: []Entry{
			{Name: "BenchmarkFast", NsPerOp: 100, AllocsOp: 4},
			{Name: "BenchmarkSlow", NsPerOp: 100, AllocsOp: 4},
			{Name: "BenchmarkGone", NsPerOp: 50},
		},
	})
	cur := writeBenchFile(t, "new.json", File{
		GitSHA: "bbbb",
		Benchmarks: []Entry{
			{Name: "BenchmarkFast", NsPerOp: 40, AllocsOp: 0},
			{Name: "BenchmarkSlow", NsPerOp: 150, AllocsOp: 4},
			{Name: "BenchmarkNew", NsPerOp: 10},
		},
	})

	var out strings.Builder
	code, err := runCompare([]string{old, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (BenchmarkSlow regressed 50%%)", code)
	}
	got := out.String()
	for _, want := range []string{"BenchmarkFast", "-60.0%", "REGRESSION", "+50.0%",
		"new only: BenchmarkNew", "old only: BenchmarkGone"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	// A looser threshold lets the same pair pass.
	code, err = runCompare([]string{"-threshold", "60", old, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0 at threshold 60%%", code)
	}
}

func TestCompareAgainstEmbeddedBaseline(t *testing.T) {
	cur := writeBenchFile(t, "new.json", File{
		GitSHA: "bbbb",
		Benchmarks: []Entry{
			{Name: "BenchmarkX", NsPerOp: 90},
		},
		Baseline: &File{
			GitSHA: "aaaa",
			Benchmarks: []Entry{
				{Name: "BenchmarkX", NsPerOp: 100},
			},
		},
	})
	var out strings.Builder
	code, err := runCompare([]string{cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "-10.0%") {
		t.Errorf("output missing improvement delta:\n%s", out.String())
	}

	noBase := writeBenchFile(t, "nobase.json", File{
		Benchmarks: []Entry{{Name: "BenchmarkX", NsPerOp: 1}},
	})
	if _, err := runCompare([]string{noBase}, &out); err == nil {
		t.Error("one-arg compare without embedded baseline must error")
	}
}

func TestCompareWarnsOnMachineMismatch(t *testing.T) {
	old := writeBenchFile(t, "old.json", File{
		GitSHA: "aaaa", NumCPU: 8, GoMaxProcs: 8,
		Benchmarks: []Entry{{Name: "BenchmarkX", NsPerOp: 100}},
	})
	cur := writeBenchFile(t, "new.json", File{
		GitSHA: "bbbb", NumCPU: 1, GoMaxProcs: 1,
		Benchmarks: []Entry{{Name: "BenchmarkX", NsPerOp: 100}},
	})
	var out strings.Builder
	code, err := runCompare([]string{old, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0 (mismatch warns, never fails)", code)
	}
	got := out.String()
	for _, want := range []string{
		"warning: NumCPU differs (old 8, new 1)",
		"warning: GOMAXPROCS differs (old 8, new 1)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	// Files recorded before the fields existed must not trip the warning.
	legacy := writeBenchFile(t, "legacy.json", File{
		GitSHA:     "cccc",
		Benchmarks: []Entry{{Name: "BenchmarkX", NsPerOp: 100}},
	})
	out.Reset()
	if _, err := runCompare([]string{legacy, cur}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "warning:") {
		t.Errorf("legacy file without machine fields must not warn:\n%s", out.String())
	}
}

func TestParseBenchLine(t *testing.T) {
	e, ok := parseBenchLine(
		"BenchmarkTablesUpdate/btree/hit-8  1000000  1234.5 ns/op  16 B/op  2 allocs/op")
	if !ok {
		t.Fatal("line must parse")
	}
	if e.Name != "BenchmarkTablesUpdate/btree/hit" {
		t.Errorf("name = %q", e.Name)
	}
	if e.NsPerOp != 1234.5 || e.BytesOp != 16 || e.AllocsOp != 2 {
		t.Errorf("values = %+v", e)
	}
	if _, ok := parseBenchLine("ok  \tgithub.com/adc-sim/adc\t2.1s"); ok {
		t.Error("trailer line must not parse")
	}
}
