package stats

// MovingAverage is a fixed-size sliding-window mean over the most recent
// observations. The paper reports hit rates "as a moving average over the
// last 5000 requests" (§V.2.1); this is that window.
//
// The implementation is a ring buffer with an incrementally maintained sum,
// so Add is O(1) and exact for the integer-valued observations (0/1 hits,
// hop counts) the harness feeds it.
type MovingAverage struct {
	buf  []float64
	sum  float64
	next int
	full bool
}

// NewMovingAverage returns a window of the given size. Size must be
// positive; NewMovingAverage panics otherwise because a zero-width window is
// a programming error, not a runtime condition.
func NewMovingAverage(size int) *MovingAverage {
	if size <= 0 {
		panic("stats: moving average window must be positive")
	}
	return &MovingAverage{buf: make([]float64, size)}
}

// Add slides the window forward by one observation.
func (m *MovingAverage) Add(x float64) {
	if m.full {
		m.sum -= m.buf[m.next]
	}
	m.buf[m.next] = x
	m.sum += x
	m.next++
	if m.next == len(m.buf) {
		m.next = 0
		m.full = true
	}
}

// N returns the number of observations currently in the window.
func (m *MovingAverage) N() int {
	if m.full {
		return len(m.buf)
	}
	return m.next
}

// Value returns the current window mean, or 0 when empty.
func (m *MovingAverage) Value() float64 {
	n := m.N()
	if n == 0 {
		return 0
	}
	return m.sum / float64(n)
}

// Size returns the configured window width.
func (m *MovingAverage) Size() int { return len(m.buf) }

// Reset empties the window without reallocating.
func (m *MovingAverage) Reset() {
	for i := range m.buf {
		m.buf[i] = 0
	}
	m.sum, m.next, m.full = 0, 0, false
}
