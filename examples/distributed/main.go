// Distributed: the same ADC system, but every proxy agent behind its own
// TCP listener on loopback — each hop is a real socket write of a binary
// frame. This mirrors the paper's eight-host deployment (§V.1.2) and its
// observation that the distributed run produces the same results as the
// single-process one; the example verifies that equivalence live.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"github.com/adc-sim/adc"
)

func main() {
	mk := func() adc.Source {
		w, err := adc.NewWorkload(adc.WorkloadConfig{
			Requests:   50_000,
			Population: 500,
			Seed:       99,
		})
		if err != nil {
			log.Fatal(err)
		}
		return w
	}
	cfg := adc.Config{
		Algorithm:     adc.ADC,
		Proxies:       8, // the paper's hardware: 8 machines
		SingleTable:   1_000,
		MultipleTable: 1_000,
		CachingTable:  500,
		Seed:          99,
	}

	// Run 1: deterministic in-process engine.
	cfg.Runtime = adc.RuntimeSequential
	seq, err := adc.Run(cfg, mk())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential:  hit %.4f  hops %.3f  %8v\n",
		seq.HitRate, seq.Hops, seq.Elapsed.Round(1e6))

	// Run 2: one goroutine per agent with channel mailboxes.
	cfg.Runtime = adc.RuntimeAgents
	agents, err := adc.Run(cfg, mk())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agents:      hit %.4f  hops %.3f  %8v\n",
		agents.HitRate, agents.Hops, agents.Elapsed.Round(1e6))

	// Run 3: every agent behind its own TCP listener.
	cfg.Runtime = adc.RuntimeTCP
	tcp, err := adc.Run(cfg, mk())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tcp sockets: hit %.4f  hops %.3f  %8v\n",
		tcp.HitRate, tcp.Hops, tcp.Elapsed.Round(1e6))

	if seq.Hits != agents.Hits || seq.Hits != tcp.Hits {
		log.Fatalf("runtimes diverged: %d / %d / %d hits", seq.Hits, agents.Hits, tcp.Hits)
	}
	fmt.Println("\nall three runtimes produced identical results, as §V.1.2 reports —")
	fmt.Println("closed-loop injection makes message order independent of the substrate.")
}
